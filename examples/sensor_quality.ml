(* A second domain: environmental sensor network quality assessment.

   An operations team stores raw sensor [readings].  Quality
   requirement: a reading counts only if the sensor's *station* was
   calibrated on the day of the reading.  The calibration log lives at
   the Station level; whether a *sensor* is calibrated is derived by
   downward dimensional navigation (a full TGD this time — no
   existentials needed because the lower-level schema adds no
   attributes).  Region-level roll-ups are upward-only and therefore
   answerable by first-order rewriting with no chase at all (§IV).

   Run with: dune exec examples/sensor_quality.exe *)

open Mdqa_multidim
open Mdqa_datalog
module Context = Mdqa_context.Context
module Assessment = Mdqa_context.Assessment
module R = Mdqa_relational

let v = Term.var
let c s = Term.Const (R.Value.sym s)
let sym = R.Value.sym
let tuple_syms l = R.Tuple.of_list (List.map sym l)
let section title = Printf.printf "\n=== %s ===\n\n" title

(* --- dimensions ---------------------------------------------------- *)

let location_dim =
  Dim_schema.linear ~name:"Location" [ "Sensor"; "Station"; "Region" ]

let clock_dim = Dim_schema.linear ~name:"Clock" [ "Instant"; "Day" ]

let stations = [ ("st1", "north"); ("st2", "north"); ("st3", "south"); ("st4", "south") ]
let sensors =
  List.concat_map
    (fun (st, _) -> [ (st ^ "a", st); (st ^ "b", st) ])
    stations

let days = [ "d1"; "d2"; "d3" ]

let reading_rows =
  (* (instant, sensor, value); instants are prefixed by their day *)
  [ ("d1-08:00", "st1a", 17.2); ("d1-14:00", "st1b", 18.9);
    ("d1-09:30", "st3a", 21.4); ("d2-08:15", "st2a", 16.8);
    ("d2-16:40", "st4a", 23.0); ("d3-07:50", "st1a", 15.5);
    ("d3-12:05", "st2b", 17.7) ]

let instants = List.map (fun (t, _, _) -> t) reading_rows

let location_instance =
  Dim_instance.make location_dim
    ~members:
      [ ("Sensor", List.map fst sensors);
        ("Station", List.map fst stations);
        ("Region", [ "north"; "south" ]) ]
    ~links:(sensors @ stations)

let clock_instance =
  Dim_instance.make clock_dim
    ~members:[ ("Instant", instants); ("Day", days) ]
    ~links:(List.map (fun t -> (t, String.sub t 0 2)) instants)

(* --- categorical relations ----------------------------------------- *)

let cat = R.Attribute.categorical
let plain = R.Attribute.plain

let calibration_log_schema =
  R.Rel_schema.make "calibration_log"
    [ cat "station" ~dimension:"Location" ~category:"Station";
      cat "day" ~dimension:"Clock" ~category:"Day";
      plain "technician" ]

let sensor_calibrated_schema =
  R.Rel_schema.make "sensor_calibrated"
    [ cat "sensor" ~dimension:"Location" ~category:"Sensor";
      cat "day" ~dimension:"Clock" ~category:"Day" ]

let region_calibrated_schema =
  R.Rel_schema.make "region_calibrated"
    [ cat "region" ~dimension:"Location" ~category:"Region";
      cat "day" ~dimension:"Clock" ~category:"Day" ]

let md_schema =
  Md_schema.make
    ~dimensions:[ location_dim; clock_dim ]
    ~relations:
      [ calibration_log_schema; sensor_calibrated_schema;
        region_calibrated_schema ]

let calibration_log =
  R.Relation.of_tuples calibration_log_schema
    (List.map tuple_syms
       [ [ "st1"; "d1"; "carol" ]; [ "st2"; "d2"; "dave" ];
         [ "st3"; "d1"; "carol" ]; [ "st1"; "d3"; "erin" ] ])

(* --- dimensional rules ---------------------------------------------- *)

(* downward, full: a station calibration covers all its sensors *)
let rule_down =
  Tgd.make ~name:"sensor_calibrated_down"
    ~body:
      [ Atom.make "calibration_log" [ v "ST"; v "D"; v "TECH" ];
        Atom.make "station_sensor" [ v "ST"; v "S" ] ]
    ~head:[ Atom.make "sensor_calibrated" [ v "S"; v "D" ] ]
    ()

(* upward: a region counts as calibrated when one of its stations is *)
let rule_up =
  Tgd.make ~name:"region_calibrated_up"
    ~body:
      [ Atom.make "calibration_log" [ v "ST"; v "D"; v "TECH" ];
        Atom.make "region_station" [ v "R"; v "ST" ] ]
    ~head:[ Atom.make "region_calibrated" [ v "R"; v "D" ] ]
    ()

(* st4 is decommissioned: calibrating it is an integrity violation *)
let nc_decommissioned =
  Nc.make ~name:"nc_st4_decommissioned"
    [ Atom.make "calibration_log" [ c "st4"; v "D"; v "TECH" ] ]

let data () =
  let inst = R.Instance.create () in
  let r = R.Instance.declare inst calibration_log_schema in
  R.Relation.iter (fun t -> ignore (R.Relation.add r t)) calibration_log;
  inst

let ontology () =
  Md_ontology.make ~schema:md_schema
    ~dim_instances:[ location_instance; clock_instance ]
    ~data:(data ()) ~rules:[ rule_down; rule_up ] ~ncs:[ nc_decommissioned ]
    ()

(* --- the instance under assessment and its quality context ---------- *)

let readings_schema = R.Rel_schema.of_names "readings" [ "instant"; "sensor"; "value" ]

let source () =
  let inst = R.Instance.create () in
  let r = R.Instance.declare inst readings_schema in
  List.iter
    (fun (t, s, value) ->
      ignore
        (R.Relation.add r (R.Tuple.of_list [ sym t; sym s; R.Value.real value ])))
    reading_rows;
  inst

let context () =
  Context.make ~ontology:(ontology ())
    ~mappings:[ { Context.source = "readings"; target = "readings_c" } ]
    ~rules:
      [ Tgd.make ~name:"readings_q"
          ~body:
            [ Atom.make "readings_c" [ v "T"; v "S"; v "V" ];
              Atom.make "sensor_calibrated" [ v "S"; v "D" ];
              Atom.make "day_instant" [ v "D"; v "T" ] ]
          ~head:[ Atom.make "readings_q" [ v "T"; v "S"; v "V" ] ]
          () ]
    ~quality_versions:[ ("readings", "readings_q") ]
    ()

let () =
  section "Sensor network: raw readings under assessment";
  R.Table_fmt.print ~title:"readings"
    (R.Instance.get (source ()) "readings");
  print_newline ();
  R.Table_fmt.print ~title:"calibration_log (at Station level)" calibration_log;

  section "Dimensional rules";
  Format.printf "downward (full, no existentials): %a@." Tgd.pp rule_down;
  Format.printf "upward:                           %a@." Tgd.pp rule_up;
  let m = ontology () in
  List.iter
    (fun info -> Format.printf "  analysis: %a@." Dim_rule.pp_info info)
    m.Md_ontology.rule_infos;

  section "Quality assessment";
  let assessment = Context.assess (context ()) ~source:(source ()) in
  Format.printf "chase: %a@."
    Chase.pp_outcome assessment.Context.chase.Chase.outcome;
  (match Context.quality_version assessment "readings" with
   | Some q ->
     print_newline ();
     R.Table_fmt.print ~title:"readings_q (calibrated-sensor readings only)" q;
     Format.printf "@.%a@." Assessment.pp_report (Assessment.report assessment)
   | None -> print_endline "no quality version");

  section "Upward-only fragment: FO rewriting, no chase";
  let up_only =
    Md_ontology.make ~schema:md_schema
      ~dim_instances:[ location_instance; clock_instance ]
      ~data:(data ()) ~rules:[ rule_up ] ()
  in
  Printf.printf "upward-only (syntactic check): %b\n"
    (Md_ontology.is_upward_only up_only);
  let q =
    Query.make ~name:"north_days" ~head:[ v "D" ]
      [ Atom.make "region_calibrated" [ c "north"; v "D" ] ]
  in
  (match Rewrite.rewrite (Md_ontology.program up_only) q with
   | Guard.Complete rw -> Format.printf "%a@." Rewrite.pp_rewriting rw
   | Guard.Degraded (_, e) ->
     Format.printf "rewriting degraded: %a@." Guard.pp_exhaustion e);
  (match Md_ontology.rewrite_answers up_only q with
   | Guard.Complete answers ->
     Format.printf "days the north region had a calibration: %a@."
       (Format.pp_print_list
          ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
          R.Tuple.pp)
       answers
   | Guard.Degraded (_, e) ->
     Format.printf "answers degraded: %a@." Guard.pp_exhaustion e);
  Format.print_flush ();

  section "Integrity: the decommissioned station";
  let bad_data = data () in
  ignore
    (R.Instance.add_tuple bad_data "calibration_log"
       (tuple_syms [ "st4"; "d2"; "frank" ]));
  let bad =
    Md_ontology.make ~schema:md_schema
      ~dim_instances:[ location_instance; clock_instance ]
      ~data:bad_data ~rules:[ rule_down ] ~ncs:[ nc_decommissioned ] ()
  in
  let r = Md_ontology.chase bad in
  Format.printf "chasing a log that calibrates st4: %a@." Chase.pp_outcome
    r.Chase.outcome
