(* Tests for the multidimensional layer: dimension schemas/instances,
   summarizability, MD schemas, dimensional rule analysis, ontology
   compilation, data-level navigation. *)

open Mdqa_multidim
open Mdqa_datalog
module R = Mdqa_relational
module Hospital = Mdqa_hospital.Hospital

let v = Term.var
let c s = Term.Const (R.Value.sym s)
let sym = R.Value.sym

(* ------------------------------------------------------------------ *)
(* Dim_schema *)

let hosp = Hospital.hospital_dim
let time = Hospital.time_dim

let test_schema_levels () =
  Alcotest.(check int) "Ward level" 0 (Dim_schema.level hosp "Ward");
  Alcotest.(check int) "Unit level" 1 (Dim_schema.level hosp "Unit");
  Alcotest.(check int) "Institution level" 2 (Dim_schema.level hosp "Institution");
  Alcotest.(check int) "All level" 3 (Dim_schema.level hosp Dim_schema.all)

let test_schema_relatives () =
  Alcotest.(check (list string)) "parents of Ward" [ "Unit" ]
    (Dim_schema.parents hosp "Ward");
  Alcotest.(check (list string)) "children of Unit" [ "Ward" ]
    (Dim_schema.children hosp "Unit");
  Alcotest.(check (list string)) "ancestors of Ward"
    [ "All"; "Institution"; "Unit" ]
    (Dim_schema.ancestors hosp "Ward");
  Alcotest.(check bool) "Institution ancestor of Ward" true
    (Dim_schema.is_ancestor hosp ~ancestor:"Institution" "Ward");
  Alcotest.(check bool) "Ward not its own ancestor" false
    (Dim_schema.is_ancestor hosp ~ancestor:"Ward" "Ward");
  Alcotest.(check (list string)) "bottoms" [ "Ward" ] (Dim_schema.bottoms hosp)

let test_schema_paths () =
  Alcotest.(check (list (list string))) "single path"
    [ [ "Ward"; "Unit"; "Institution" ] ]
    (Dim_schema.paths hosp ~source:"Ward" ~target:"Institution")

let test_schema_dag () =
  (* A non-linear DAG: Day rolls up to both Week and Month *)
  let d =
    Dim_schema.make ~name:"T2"
      ~edges:[ ("Day", "Week"); ("Day", "Month"); ("Week", "Year"); ("Month", "Year") ]
  in
  Alcotest.(check (list string)) "two parents" [ "Month"; "Week" ]
    (Dim_schema.parents d "Day");
  Alcotest.(check int) "two paths"
    2
    (List.length (Dim_schema.paths d ~source:"Day" ~target:"Year"))

let test_schema_cycle_rejected () =
  Alcotest.(check bool) "cycle raises" true
    (match
       Dim_schema.make ~name:"bad" ~edges:[ ("A", "B"); ("B", "A") ]
     with
     | exception Invalid_argument _ -> true
     | _ -> false)

let test_schema_all_not_child () =
  Alcotest.(check bool) "All as child raises" true
    (match Dim_schema.make ~name:"bad" ~edges:[ ("All", "B") ] with
     | exception Invalid_argument _ -> true
     | _ -> false)

(* ------------------------------------------------------------------ *)
(* Dim_instance *)

let hinst = Hospital.hospital_instance

let test_instance_members () =
  Alcotest.(check int) "4 wards" 4 (List.length (Dim_instance.members hinst "Ward"));
  Alcotest.(check (option string)) "W1 in Ward" (Some "Ward")
    (Dim_instance.category_of hinst (sym "W1"));
  Alcotest.(check (option string)) "all in All" (Some "All")
    (Dim_instance.category_of hinst Dim_instance.all_member)

let test_instance_rollup () =
  let up cat m = Dim_instance.rollup hinst (sym m) ~to_category:cat in
  Alcotest.(check (list string)) "W1 -> Standard" [ "Standard" ]
    (List.map R.Value.to_string (up "Unit" "W1"));
  Alcotest.(check (list string)) "W1 -> H1" [ "H1" ]
    (List.map R.Value.to_string (up "Institution" "W1"));
  Alcotest.(check (list string)) "W4 -> H2" [ "H2" ]
    (List.map R.Value.to_string (up "Institution" "W4"))

let test_instance_drilldown () =
  let down = Dim_instance.drilldown hinst (sym "Standard") ~to_category:"Ward" in
  Alcotest.(check (list string)) "Standard wards" [ "W1"; "W2" ]
    (List.map R.Value.to_string down);
  let down_h1 = Dim_instance.drilldown hinst (sym "H1") ~to_category:"Ward" in
  Alcotest.(check int) "H1 has three wards" 3 (List.length down_h1)

let test_instance_strict_homogeneous () =
  Alcotest.(check bool) "strict" true (Dim_instance.is_strict hinst);
  Alcotest.(check bool) "homogeneous" true (Dim_instance.is_homogeneous hinst);
  Alcotest.(check bool) "time strict" true
    (Dim_instance.is_strict Hospital.time_instance)

let test_instance_bad_links () =
  let raises f =
    match f () with exception Invalid_argument _ -> true | _ -> false
  in
  Alcotest.(check bool) "unknown member" true
    (raises (fun () ->
         Dim_instance.make hosp
           ~members:[ ("Ward", [ "W1" ]) ]
           ~links:[ ("W1", "Nowhere") ]));
  Alcotest.(check bool) "non-adjacent link" true
    (raises (fun () ->
         Dim_instance.make hosp
           ~members:
             [ ("Ward", [ "W1" ]); ("Institution", [ "H1" ]) ]
           ~links:[ ("W1", "H1") ]));
  Alcotest.(check bool) "duplicate member across categories" true
    (raises (fun () ->
         Dim_instance.make hosp
           ~members:[ ("Ward", [ "X" ]); ("Unit", [ "X" ]) ]
           ~links:[]))

(* Non-strict instance: W5 in two units. *)
let non_strict =
  Dim_instance.make hosp
    ~members:
      [ ("Ward", [ "W5" ]); ("Unit", [ "U1"; "U2" ]); ("Institution", [ "H" ]) ]
    ~links:[ ("W5", "U1"); ("W5", "U2"); ("U1", "H"); ("U2", "H") ]

let test_summarizability_non_strict () =
  Alcotest.(check bool) "not strict" false (Dim_instance.is_strict non_strict);
  let report = Summarizability.diagnose non_strict in
  Alcotest.(check bool) "diagnosed" false report.Summarizability.strict;
  Alcotest.(check bool) "has violation" true
    (List.exists
       (function Summarizability.Non_strict _ -> true | _ -> false)
       report.Summarizability.violations);
  Alcotest.(check bool) "ward->unit not summarizable" false
    (Summarizability.summarizable non_strict ~from_category:"Ward"
       ~to_category:"Unit");
  Alcotest.(check bool) "hospital ward->unit summarizable" true
    (Summarizability.summarizable hinst ~from_category:"Ward"
       ~to_category:"Unit")

let test_summarizability_non_covering () =
  (* W6 has no unit at all *)
  let inst =
    Dim_instance.make hosp
      ~members:
        [ ("Ward", [ "W6" ]); ("Unit", [ "U1" ]); ("Institution", [ "H" ]) ]
      ~links:[ ("U1", "H") ]
  in
  Alcotest.(check bool) "not homogeneous" false (Dim_instance.is_homogeneous inst);
  let report = Summarizability.diagnose inst in
  Alcotest.(check bool) "non-covering found" true
    (List.exists
       (function Summarizability.Non_covering _ -> true | _ -> false)
       report.Summarizability.violations)

(* ------------------------------------------------------------------ *)
(* Md_schema *)

let schema = Hospital.md_schema

let test_md_schema_naming () =
  Alcotest.(check string) "category pred" "ward" (Md_schema.category_pred "Ward");
  Alcotest.(check string) "camel category" "month_day"
    (Md_schema.category_pred "MonthDay");
  Alcotest.(check string) "pc pred" "unit_ward"
    (Md_schema.parent_child_pred ~parent:"Unit" ~child:"Ward")

let test_md_schema_position_kinds () =
  let kind = Md_schema.position_kind schema in
  (match kind "patient_ward" 0 with
   | Some (Md_schema.Category_pos { dimension = "Hospital"; category = "Ward" }) -> ()
   | _ -> Alcotest.fail "patient_ward[0] should be Ward");
  (match kind "patient_ward" 2 with
   | Some Md_schema.Plain_pos -> ()
   | _ -> Alcotest.fail "patient_ward[2] should be plain");
  (match kind "unit_ward" 0 with
   | Some (Md_schema.Category_pos { category = "Unit"; _ }) -> ()
   | _ -> Alcotest.fail "unit_ward[0] should be Unit");
  (match kind "ward" 0 with
   | Some (Md_schema.Category_pos { category = "Ward"; _ }) -> ()
   | _ -> Alcotest.fail "ward[0] should be Ward");
  Alcotest.(check bool) "unknown pred" true (kind "nonsense" 0 = None)

let test_md_schema_categorical_positions () =
  let pos = Md_schema.categorical_positions schema in
  Alcotest.(check bool) "patient_ward[0]" true (List.mem ("patient_ward", 0) pos);
  Alcotest.(check bool) "patient_ward[1]" true (List.mem ("patient_ward", 1) pos);
  Alcotest.(check bool) "patient_ward[2] not" false
    (List.mem ("patient_ward", 2) pos);
  Alcotest.(check bool) "unit_ward both" true
    (List.mem ("unit_ward", 0) pos && List.mem ("unit_ward", 1) pos)

let test_md_schema_validation () =
  let raises f =
    match f () with exception Invalid_argument _ -> true | _ -> false
  in
  Alcotest.(check bool) "unknown category" true
    (raises (fun () ->
         Md_schema.make ~dimensions:[ hosp ]
           ~relations:
             [ R.Rel_schema.make "r"
                 [ R.Attribute.categorical "x" ~dimension:"Hospital"
                     ~category:"Zone" ] ]));
  Alcotest.(check bool) "unknown dimension" true
    (raises (fun () ->
         Md_schema.make ~dimensions:[ hosp ]
           ~relations:
             [ R.Rel_schema.make "r"
                 [ R.Attribute.categorical "x" ~dimension:"Nope"
                     ~category:"Ward" ] ]));
  Alcotest.(check bool) "shared category name across dims" true
    (raises (fun () ->
         Md_schema.make
           ~dimensions:
             [ hosp; Dim_schema.linear ~name:"Other" [ "Ward"; "Zone" ] ]
           ~relations:[]))

(* ------------------------------------------------------------------ *)
(* Dim_rule *)

let test_rule7_analysis () =
  match Dim_rule.analyze schema Hospital.rule7 with
  | Ok info ->
    Alcotest.(check bool) "form 4" true (info.Dim_rule.form = Dim_rule.Form4);
    Alcotest.(check bool) "upward" true
      (info.Dim_rule.navigation = Dim_rule.Upward);
    Alcotest.(check (list string)) "Hospital dimension" [ "Hospital" ]
      info.Dim_rule.dimensions
  | Error e -> Alcotest.fail e

let test_rule8_analysis () =
  match Dim_rule.analyze schema Hospital.rule8 with
  | Ok info ->
    Alcotest.(check bool) "form 4" true (info.Dim_rule.form = Dim_rule.Form4);
    Alcotest.(check bool) "downward" true
      (info.Dim_rule.navigation = Dim_rule.Downward)
  | Error e -> Alcotest.fail e

let test_rule9_analysis () =
  match Dim_rule.analyze schema Hospital.rule9 with
  | Ok info ->
    Alcotest.(check bool) "form 10" true (info.Dim_rule.form = Dim_rule.Form10);
    Alcotest.(check bool) "downward" true
      (info.Dim_rule.navigation = Dim_rule.Downward)
  | Error e -> Alcotest.fail e

let test_rule_shared_plain_var_rejected () =
  (* patients joined on the non-categorical attribute: violates (4) *)
  let bad =
    Tgd.make ~name:"bad"
      ~body:
        [ Atom.make "patient_ward" [ v "W"; v "D"; v "P" ];
          Atom.make "patient_unit" [ v "U"; v "D2"; v "P" ] ]
      ~head:[ Atom.make "patient_unit" [ v "U"; v "D"; v "P" ] ]
      ()
  in
  (match Dim_rule.analyze schema bad with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "expected a form-(4) violation")

let test_rule_unknown_pred_rejected () =
  let bad =
    Tgd.make ~name:"bad2"
      ~body:[ Atom.make "mystery" [ v "X" ] ]
      ~head:[ Atom.make "patient_unit" [ v "U"; v "D"; v "X" ] ]
      ()
  in
  (match Dim_rule.analyze schema bad with
   | Error e ->
     Alcotest.(check bool) "mentions predicate" true
       (String.length e > 0)
   | Ok _ -> Alcotest.fail "expected unknown predicate error")

let test_rule10_level_violation () =
  (* generating data at a *higher* level with an existential: rejected *)
  let bad =
    Tgd.make ~name:"bad10"
      ~body:[ Atom.make "patient_ward" [ v "W"; v "D"; v "P" ] ]
      ~head:
        [ Atom.make "institution_unit" [ v "I"; v "U" ];
          Atom.make "discharge_patients" [ v "I"; v "D"; v "P" ] ]
      ()
  in
  (match Dim_rule.analyze schema bad with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "expected a form-(10) level violation")

let test_upward_only_detection () =
  Alcotest.(check bool) "rule7 alone is upward-only" true
    (Dim_rule.is_upward_only schema [ Hospital.rule7 ]);
  Alcotest.(check bool) "rule8 is not" false
    (Dim_rule.is_upward_only schema [ Hospital.rule7; Hospital.rule8 ])

(* ------------------------------------------------------------------ *)
(* Md_ontology *)

let test_ontology_instance_facts () =
  let m = Hospital.ontology () in
  let inst = Md_ontology.instance m in
  let card name = R.Relation.cardinal (R.Instance.get inst name) in
  Alcotest.(check int) "ward members" 4 (card "ward");
  Alcotest.(check int) "unit members" 3 (card "unit");
  Alcotest.(check int) "institution members" 2 (card "institution");
  Alcotest.(check int) "unit_ward links" 4 (card "unit_ward");
  Alcotest.(check int) "institution_unit links" 3 (card "institution_unit");
  Alcotest.(check int) "day_time links" 6 (card "day_time");
  Alcotest.(check int) "month_day links" 5 (card "month_day");
  Alcotest.(check bool) "unit_ward content" true
    (R.Relation.mem
       (R.Instance.get inst "unit_ward")
       (R.Tuple.of_list [ sym "Standard"; sym "W1" ]))

let test_ontology_referential_ok () =
  let m = Hospital.ontology () in
  Alcotest.(check int) "no violations" 0
    (List.length (Md_ontology.referential_violations m))

let test_ontology_referential_violation () =
  let data = R.Instance.create () in
  let pw = R.Instance.declare data Hospital.(R.Relation.schema patient_ward) in
  ignore (R.Relation.add pw (R.Tuple.of_list [ sym "W9"; sym "Sep/5"; sym "X" ]));
  let m =
    Md_ontology.make ~schema
      ~dim_instances:
        [ Hospital.hospital_instance; Hospital.time_instance;
          Hospital.device_instance ]
      ~data ()
  in
  match Md_ontology.referential_violations m with
  | [ viol ] ->
    Alcotest.(check string) "relation" "patient_ward" viol.Md_ontology.relation;
    Alcotest.(check int) "position" 0 viol.Md_ontology.position
  | l -> Alcotest.failf "expected 1 violation, got %d" (List.length l)

let test_ontology_classes () =
  let m = Hospital.ontology () in
  let report = Md_ontology.classes m in
  Alcotest.(check bool) "weakly sticky (paper claim)" true
    report.Classes.weakly_sticky;
  Alcotest.(check bool) "not sticky" false report.Classes.sticky;
  Alcotest.(check bool) "not linear" false report.Classes.linear

let test_ontology_separability () =
  let m = Hospital.ontology () in
  Alcotest.(check bool) "EGD (6) separable over categorical positions" true
    (Md_ontology.separability m).Separability.separable

let test_ontology_chase_saturates () =
  let m = Hospital.ontology () in
  let r = Md_ontology.chase m in
  Alcotest.(check bool) "saturated" true (r.Chase.outcome = Chase.Saturated);
  (* rule 8 invents shift nulls, rule 9 invents unit nulls *)
  Alcotest.(check bool) "nulls invented" true
    (r.Chase.stats.Chase.nulls_created >= 6)

let test_ontology_nc_fails_on_raw () =
  let m = Hospital.ontology ~raw_patient_ward:true () in
  let r = Md_ontology.chase m in
  (match r.Chase.outcome with
   | Chase.Failed (Chase.Nc_violation { nc; _ }) ->
     Alcotest.(check bool) "the intensive-care constraint" true
       (String.length nc.Nc.name > 0)
   | o -> Alcotest.failf "expected NC violation, got %a" Chase.pp_outcome o)

let test_ontology_upward_only () =
  Alcotest.(check bool) "upward fragment" true
    (Md_ontology.is_upward_only (Hospital.upward_ontology ()));
  Alcotest.(check bool) "full ontology not" false
    (Md_ontology.is_upward_only (Hospital.ontology ()))

let patient_unit_query =
  Query.make ~name:"pu" ~head:[ v "U"; v "D" ]
    [ Atom.make "patient_unit" [ v "U"; v "D"; c "Tom Waits" ] ]

let test_ontology_rewrite_agrees_with_chase () =
  let m = Hospital.upward_ontology () in
  let via_chase =
    match Md_ontology.certain_answers m patient_unit_query with
    | Query.Ok l -> l
    | _ -> Alcotest.fail "chase failed"
  in
  (match Md_ontology.rewrite_answers m patient_unit_query with
   | Guard.Complete via_rw ->
     Alcotest.(check int) "same size" (List.length via_chase)
       (List.length via_rw);
     Alcotest.(check bool) "same answers" true (via_chase = via_rw);
     Alcotest.(check bool) "nonempty" true (via_chase <> [])
   | Guard.Degraded (_, e) ->
     Alcotest.failf "degraded: %s" (Guard.resource_name e.Guard.resource));
  let via_proof = (Md_ontology.proof_answers m patient_unit_query).Proof.answers in
  Alcotest.(check bool) "proof agrees too" true (via_chase = via_proof)

(* ------------------------------------------------------------------ *)
(* Navigation vs rules *)

let test_navigation_rollup_equals_rule7 () =
  let rolled =
    Navigation.rollup Hospital.hospital_instance
      ~relation:Hospital.patient_ward ~position:0 ~to_category:"Unit"
      ~name:"patient_unit" ()
  in
  let m = Hospital.upward_ontology () in
  let r = Md_ontology.chase m in
  Alcotest.(check bool) "chase ok" true (r.Chase.outcome = Chase.Saturated);
  let via_chase = R.Instance.get r.Chase.instance "patient_unit" in
  Alcotest.(check bool) "same tuples" true
    (R.Tuple.Set.equal (R.Relation.to_set rolled) (R.Relation.to_set via_chase))

let test_navigation_drilldown_multiplies () =
  let down =
    Navigation.drilldown Hospital.hospital_instance
      ~relation:Hospital.working_schedules ~position:0 ~to_category:"Ward"
      ~null_positions:[ 3 ] ()
  in
  (* Standard x2 wards x3 rows=... ws rows: Intensive(1 ward), Standard
     Sep/5, Sep/6, Sep/9 (2 wards each), Terminal (1 ward) *)
  Alcotest.(check int) "row count" 8 (R.Relation.cardinal down);
  R.Relation.iter
    (fun t ->
      Alcotest.(check bool) "shift is null" true
        (R.Value.is_null (R.Tuple.get t 3)))
    down

let test_navigation_rollup_drops_unlinked () =
  (* a ward with no unit: its tuples vanish on roll-up *)
  let inst =
    Dim_instance.make hosp
      ~members:
        [ ("Ward", [ "WA"; "WB" ]); ("Unit", [ "U1" ]); ("Institution", [ "H" ]) ]
      ~links:[ ("WA", "U1"); ("U1", "H") ]
  in
  let rel =
    R.Relation.of_tuples Hospital.(R.Relation.schema patient_ward)
      [ R.Tuple.of_list [ sym "WA"; sym "Sep/5"; sym "p" ];
        R.Tuple.of_list [ sym "WB"; sym "Sep/5"; sym "q" ] ]
  in
  let rolled = Navigation.rollup inst ~relation:rel ~position:0 ~to_category:"Unit" () in
  Alcotest.(check int) "only linked ward survives" 1 (R.Relation.cardinal rolled)

(* ------------------------------------------------------------------ *)
(* DOT export (Figure 1) *)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_dim_schema_dot () =
  let dot = Dim_schema.to_dot hosp in
  Alcotest.(check bool) "digraph" true (contains ~needle:"digraph" dot);
  Alcotest.(check bool) "roll-up edge" true
    (contains ~needle:"\"Hospital.Ward\" -> \"Hospital.Unit\"" dot)

let test_md_schema_dot () =
  let dot = Md_schema.to_dot schema in
  Alcotest.(check bool) "one cluster per dimension" true
    (contains ~needle:"cluster_Hospital" dot
    && contains ~needle:"cluster_Time" dot
    && contains ~needle:"cluster_Device" dot);
  Alcotest.(check bool) "relation node" true
    (contains ~needle:"\"patient_ward\"" dot);
  Alcotest.(check bool) "attachment edge to Ward" true
    (contains ~needle:"\"patient_ward\" -> \"Hospital.Ward\"" dot)

(* ------------------------------------------------------------------ *)
(* Md_ontology constructor validation *)

let raises_invalid f =
  match f () with exception Invalid_argument _ -> true | _ -> false

let test_ontology_validation () =
  Alcotest.(check bool) "missing dimension instance" true
    (raises_invalid (fun () ->
         Md_ontology.make ~schema
           ~dim_instances:[ Hospital.hospital_instance ]
           ()));
  Alcotest.(check bool) "duplicate dimension instance" true
    (raises_invalid (fun () ->
         Md_ontology.make ~schema
           ~dim_instances:
             [ Hospital.hospital_instance; Hospital.hospital_instance;
               Hospital.time_instance; Hospital.device_instance ]
           ()));
  let bad_data = R.Instance.create () in
  ignore (R.Instance.declare bad_data (R.Rel_schema.of_names "mystery" [ "x" ]));
  Alcotest.(check bool) "undeclared relation in data" true
    (raises_invalid (fun () ->
         Md_ontology.make ~schema
           ~dim_instances:
             [ Hospital.hospital_instance; Hospital.time_instance;
               Hospital.device_instance ]
           ~data:bad_data ()));
  Alcotest.(check bool) "invalid dimensional rule" true
    (raises_invalid (fun () ->
         Md_ontology.make ~schema
           ~dim_instances:
             [ Hospital.hospital_instance; Hospital.time_instance;
               Hospital.device_instance ]
           ~rules:
             [ Tgd.make
                 ~body:[ Atom.make "mystery" [ v "X" ] ]
                 ~head:[ Atom.make "patient_unit" [ v "U"; v "D"; v "X" ] ]
                 () ]
           ()))

(* ------------------------------------------------------------------ *)
(* Aggregate *)

let sales_rel rows =
  let schema =
    R.Rel_schema.make "sales"
      [ R.Attribute.categorical "item" ~dimension:"Hospital" ~category:"Ward";
        R.Attribute.plain "amount" ]
  in
  R.Relation.of_tuples schema
    (List.map
       (fun (w, a) -> R.Tuple.of_list [ sym w; R.Value.real a ])
       rows)

let test_aggregate_sum () =
  let rel = sales_rel [ ("W1", 10.); ("W2", 5.); ("W3", 7.); ("W1", 3.) ] in
  match
    Aggregate.rollup hinst ~relation:rel ~group_position:0 ~to_category:"Unit"
      ~value_position:1 ~op:Aggregate.Sum ()
  with
  | Ok rows ->
    let find u =
      List.find (fun r -> R.Value.equal r.Aggregate.group (sym u)) rows
    in
    Alcotest.(check int) "two groups" 2 (List.length rows);
    Alcotest.(check bool) "standard sum" true
      (abs_float ((find "Standard").Aggregate.value -. 18.) < 1e-9);
    Alcotest.(check bool) "intensive sum" true
      (abs_float ((find "Intensive").Aggregate.value -. 7.) < 1e-9);
    Alcotest.(check int) "tuple counts" 3 (find "Standard").Aggregate.tuples
  | Error e -> Alcotest.fail e

let test_aggregate_ops () =
  let rel = sales_rel [ ("W1", 10.); ("W2", 4.) ] in
  let run op vp =
    match
      Aggregate.rollup hinst ~relation:rel ~group_position:0
        ~to_category:"Unit" ?value_position:vp ~op ()
    with
    | Ok [ r ] -> r.Aggregate.value
    | Ok l -> Alcotest.failf "expected one row, got %d" (List.length l)
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "count" true (run Aggregate.Count None = 2.0);
  Alcotest.(check bool) "avg" true (abs_float (run Aggregate.Avg (Some 1) -. 7.) < 1e-9);
  Alcotest.(check bool) "min" true (run Aggregate.Min (Some 1) = 4.0);
  Alcotest.(check bool) "max" true (run Aggregate.Max (Some 1) = 10.0)

let test_aggregate_guard () =
  let rel_ns =
    let schema =
      R.Rel_schema.make "s2"
        [ R.Attribute.categorical "w" ~dimension:"Hospital" ~category:"Ward";
          R.Attribute.plain "amount" ]
    in
    R.Relation.of_tuples schema
      [ R.Tuple.of_list [ sym "W5"; R.Value.real 6. ] ]
  in
  (match
     Aggregate.rollup non_strict ~relation:rel_ns ~group_position:0
       ~to_category:"Unit" ~value_position:1 ~op:Aggregate.Sum ()
   with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "expected summarizability refusal");
  (* forcing double-counts W5's value into both units *)
  (match
     Aggregate.rollup non_strict ~relation:rel_ns ~group_position:0
       ~to_category:"Unit" ~value_position:1 ~op:Aggregate.Sum ~check:false ()
   with
   | Ok rows -> Alcotest.(check int) "two groups from one tuple" 2 (List.length rows)
   | Error e -> Alcotest.fail e)

let test_aggregate_errors () =
  let rel = sales_rel [ ("W1", 10.) ] in
  let expect_error f =
    match f () with Error _ -> () | Ok _ -> Alcotest.fail "expected error"
  in
  expect_error (fun () ->
      Aggregate.rollup hinst ~relation:rel ~group_position:0
        ~to_category:"Unit" ~op:Aggregate.Sum ());
  expect_error (fun () ->
      Aggregate.rollup hinst ~relation:rel ~group_position:5
        ~to_category:"Unit" ~value_position:1 ~op:Aggregate.Sum ());
  expect_error (fun () ->
      (* Unit is not an ancestor of itself *)
      Aggregate.rollup hinst ~relation:rel ~group_position:0
        ~to_category:"Ward" ~value_position:1 ~op:Aggregate.Sum ());
  (* non-numeric value *)
  let rel_bad =
    let schema =
      R.Rel_schema.make "s3"
        [ R.Attribute.categorical "w" ~dimension:"Hospital" ~category:"Ward";
          R.Attribute.plain "amount" ]
    in
    R.Relation.of_tuples schema [ R.Tuple.of_list [ sym "W1"; sym "oops" ] ]
  in
  expect_error (fun () ->
      Aggregate.rollup hinst ~relation:rel_bad ~group_position:0
        ~to_category:"Unit" ~value_position:1 ~op:Aggregate.Sum ())

(* ------------------------------------------------------------------ *)
(* Properties *)

let gen_chain_instance =
  (* random 3-level instances: wards 0..n-1, units 0..m-1, random links *)
  QCheck.Gen.(
    let* n_wards = 1 -- 8 in
    let* n_units = 1 -- 4 in
    let* links =
      list_size (return n_wards)
        (map (fun u -> u mod n_units) (0 -- 100))
    in
    let wards = List.init n_wards (Printf.sprintf "w%d") in
    let units = List.init n_units (Printf.sprintf "u%d") in
    let ward_links =
      List.mapi (fun i u -> (Printf.sprintf "w%d" i, Printf.sprintf "u%d" u)) links
    in
    let unit_links = List.map (fun u -> (u, "h0")) units in
    return
      (Dim_instance.make Hospital.hospital_dim
         ~members:
           [ ("Ward", wards); ("Unit", units); ("Institution", [ "h0" ]) ]
         ~links:(ward_links @ unit_links)))

let instance_arb =
  QCheck.make
    ~print:(fun i -> Format.asprintf "%a" Dim_instance.pp i)
    gen_chain_instance

let prop_rollup_drilldown_galois =
  QCheck.Test.make ~name:"rollup/drilldown adjunction on members" ~count:200
    instance_arb (fun di ->
      (* u ∈ rollup(w) iff w ∈ drilldown(u) *)
      List.for_all
        (fun w ->
          List.for_all
            (fun u ->
              let up = Dim_instance.rollup di w ~to_category:"Unit" in
              let down = Dim_instance.drilldown di u ~to_category:"Ward" in
              List.mem u up = List.mem w down)
            (Dim_instance.members di "Unit"))
        (Dim_instance.members di "Ward"))

let prop_strict_singleton_rollup =
  QCheck.Test.make ~name:"strict instances have functional roll-ups"
    ~count:200 instance_arb (fun di ->
      QCheck.assume (Dim_instance.is_strict di);
      List.for_all
        (fun w ->
          List.length (Dim_instance.rollup di w ~to_category:"Institution") <= 1)
        (Dim_instance.members di "Ward"))

let prop_diagnose_consistent =
  QCheck.Test.make ~name:"summarizability report matches predicates"
    ~count:200 instance_arb (fun di ->
      let r = Summarizability.diagnose di in
      r.Summarizability.strict = Dim_instance.is_strict di
      && r.Summarizability.homogeneous = Dim_instance.is_homogeneous di)

(* grand-total invariant: when the ward->unit roll-up is summarizable,
   the per-unit sums add up to the plain total *)
let prop_aggregate_partition =
  QCheck.Test.make ~name:"checked Sum roll-up partitions the total"
    ~count:200
    (QCheck.pair instance_arb
       (QCheck.small_list (QCheck.make QCheck.Gen.(pair (0 -- 7) (0 -- 50)))))
    (fun (di, rows) ->
      let wards = Dim_instance.members di "Ward" in
      QCheck.assume (wards <> []);
      let rel =
        let schema =
          R.Rel_schema.make "sales"
            [ R.Attribute.categorical "w" ~dimension:"Hospital"
                ~category:"Ward";
              R.Attribute.plain "amount" ]
        in
        R.Relation.of_tuples schema
          (List.mapi
             (fun i (w, a) ->
               R.Tuple.of_list
                 [ List.nth wards (w mod List.length wards);
                   (* make tuples distinct so none collapse *)
                   R.Value.real (float_of_int ((a * 100) + i)) ])
             rows)
      in
      match
        Aggregate.rollup di ~relation:rel ~group_position:0
          ~to_category:"Unit" ~value_position:1 ~op:Aggregate.Sum ()
      with
      | Error _ -> QCheck.assume_fail ()  (* not summarizable: skip *)
      | Ok groups ->
        let total_direct =
          R.Relation.fold
            (fun t acc ->
              match R.Tuple.get t 1 with
              | R.Value.Real x -> acc +. x
              | _ -> acc)
            rel 0.0
        in
        let total_grouped =
          List.fold_left (fun acc r -> acc +. r.Aggregate.value) 0.0 groups
        in
        abs_float (total_direct -. total_grouped) < 1e-6)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_rollup_drilldown_galois; prop_strict_singleton_rollup;
      prop_diagnose_consistent; prop_aggregate_partition ]

let case name f = Alcotest.test_case name `Quick f

let suites =
  [ ( "multidim.schema",
      [ case "levels" test_schema_levels;
        case "parents/children/ancestors" test_schema_relatives;
        case "paths" test_schema_paths;
        case "non-linear DAG" test_schema_dag;
        case "cycle rejected" test_schema_cycle_rejected;
        case "All as child rejected" test_schema_all_not_child ] );
    ( "multidim.instance",
      [ case "members and categories" test_instance_members;
        case "roll-up" test_instance_rollup;
        case "drill-down" test_instance_drilldown;
        case "strictness/homogeneity" test_instance_strict_homogeneous;
        case "bad links rejected" test_instance_bad_links ] );
    ( "multidim.summarizability",
      [ case "non-strict diagnosis" test_summarizability_non_strict;
        case "non-covering diagnosis" test_summarizability_non_covering ] );
    ( "multidim.md_schema",
      [ case "predicate naming" test_md_schema_naming;
        case "position kinds" test_md_schema_position_kinds;
        case "categorical positions" test_md_schema_categorical_positions;
        case "validation" test_md_schema_validation ] );
    ( "multidim.dim_rule",
      [ case "rule (7): form 4 upward" test_rule7_analysis;
        case "rule (8): form 4 downward" test_rule8_analysis;
        case "rule (9): form 10 downward" test_rule9_analysis;
        case "shared plain variable rejected" test_rule_shared_plain_var_rejected;
        case "unknown predicate rejected" test_rule_unknown_pred_rejected;
        case "form 10 level violation" test_rule10_level_violation;
        case "upward-only detection" test_upward_only_detection ] );
    ( "multidim.ontology",
      [ case "compiled instance facts" test_ontology_instance_facts;
        case "referential constraints hold" test_ontology_referential_ok;
        case "referential violation detected" test_ontology_referential_violation;
        case "class report: weakly sticky" test_ontology_classes;
        case "EGD separability" test_ontology_separability;
        case "chase saturates with nulls" test_ontology_chase_saturates;
        case "closed-unit NC fires on raw data" test_ontology_nc_fails_on_raw;
        case "upward-only fragment detection" test_ontology_upward_only;
        case "rewrite/proof/chase agree" test_ontology_rewrite_agrees_with_chase
      ] );
    ( "multidim.dot",
      [ case "dimension DAG export" test_dim_schema_dot;
        case "Figure 1 export" test_md_schema_dot ] );
    ( "multidim.validation",
      [ case "ontology constructor errors" test_ontology_validation ] );
    ( "multidim.aggregate",
      [ case "sum by unit" test_aggregate_sum;
        case "count/avg/min/max" test_aggregate_ops;
        case "summarizability guard" test_aggregate_guard;
        case "error conditions" test_aggregate_errors ] );
    ( "multidim.navigation",
      [ case "rollup = rule (7) chase" test_navigation_rollup_equals_rule7;
        case "drilldown multiplies with nulls" test_navigation_drilldown_multiplies;
        case "rollup drops unlinked members" test_navigation_rollup_drops_unlinked
      ] );
    ("multidim.properties", qcheck_cases) ]
