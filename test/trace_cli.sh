#!/bin/sh
# Telemetry through the CLI: `mdqa chase --trace` must export valid
# Chrome trace-event JSON with spans for every chase round and rule
# firing, `mdqa trace verify` must validate it (and reject garbage),
# and the structured logger must honor --log-level and --log-json.
#
# Usage: trace_cli.sh MDQA_EXE HOSPITAL_DL
set -u

exe="$1"
prog="$2"
dir=$(mktemp -d "${TMPDIR:-/tmp}/mdqa_trace.XXXXXX")
trap 'rm -rf "$dir"' EXIT

fail() {
  echo "trace_cli FAIL: $1" >&2
  shift
  for f in "$@"; do
    echo "--- $f" >&2
    cat "$f" >&2
  done
  exit 1
}

# 1. traced chase writes a trace file and still computes the result
timeout 60 "$exe" chase "$prog" --trace "$dir/t.json" > "$dir/chase.out" \
  2>"$dir/chase.err" \
  || fail "traced chase must exit 0" "$dir/chase.err"
[ -s "$dir/t.json" ] || fail "no trace file written"
grep -q "outcome: saturated" "$dir/chase.out" \
  || fail "traced chase result changed" "$dir/chase.out"

# 2. the exported trace passes the checker, with the span taxonomy the
#    chase promises: validate, chase.round, rule.fire
timeout 60 "$exe" trace verify "$dir/t.json" \
    --require validate --require chase.round --require rule.fire \
    > "$dir/verify.out" 2>&1 \
  || fail "trace verify must accept a fresh trace" "$dir/verify.out"

# 3. a missing required span name is a verification failure (exit 1)
timeout 60 "$exe" trace verify "$dir/t.json" --require no.such.span \
  > /dev/null 2>&1
rc=$?
[ "$rc" -eq 1 ] || fail "verify --require no.such.span must exit 1, got $rc"

# 4. garbage is rejected, not crashed on
echo 'not json' > "$dir/garbage.json"
timeout 60 "$exe" trace verify "$dir/garbage.json" > /dev/null 2>&1
rc=$?
[ "$rc" -eq 1 ] || fail "verify on garbage must exit 1, got $rc"

# 5. a traced query also produces a valid trace (eval spans)
timeout 60 "$exe" query "$prog" --trace "$dir/q.json" > /dev/null 2>&1 \
  || fail "traced query must exit 0"
timeout 60 "$exe" trace verify "$dir/q.json" --require eval \
  > /dev/null 2>&1 || fail "query trace must contain eval spans"

# 6. --log-json emits parseable JSONL records on stderr at the chosen
#    level; --log-level error silences the info record
timeout 60 "$exe" chase "$prog" --log-json --log-level debug \
  > /dev/null 2>"$dir/log.err" || fail "chase with logging must exit 0"
if grep -qv '^{' "$dir/log.err"; then
  fail "--log-json stderr must be JSONL only" "$dir/log.err"
fi
grep -q '"level":"debug"' "$dir/log.err" \
  || fail "--log-level debug must emit debug records" "$dir/log.err"
timeout 60 "$exe" chase "$prog" --log-level error \
  > /dev/null 2>"$dir/quiet.err" || fail "quiet chase must exit 0"
[ -s "$dir/quiet.err" ] \
  && fail "--log-level error must silence info records" "$dir/quiet.err"

echo "trace_cli: all checks passed"
exit 0
