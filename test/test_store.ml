(* Fault-injection tests for the durability layer (Mdqa_store).

   The contract under test: whatever happens to the files — truncation
   at any byte, flipped bits, duplicated or foreign records, a crash
   between any two writes — recovery never raises, every recovered
   instance is a well-formed prefix of the chase's own mutation
   sequence, and resuming reaches the same fixpoint (same facts modulo
   the labels of nulls invented after the interruption) as an
   uninterrupted run. *)

open Mdqa_datalog
module R = Mdqa_relational
module Crc32 = Mdqa_store.Crc32
module Binio = Mdqa_store.Binio
module Snapshot = Mdqa_store.Snapshot
module Journal = Mdqa_store.Journal
module Store = Mdqa_store.Store
module Fsck = Mdqa_store.Fsck
module Scrub = Mdqa_store.Scrub

(* --- helpers --------------------------------------------------------- *)

let tmp_store () =
  let path = Filename.temp_file "mdqa_store_test" ".snap" in
  Sys.remove path;
  path

let cleanup path =
  let rm p = if Sys.file_exists p then Sys.remove p in
  List.iter rm
    [ path; path ^ ".journal"; path ^ ".tmp"; path ^ ".1"; path ^ ".2";
      path ^ ".3" ];
  let qdir = Fsck.quarantine_dir path in
  if Sys.file_exists qdir then begin
    Array.iter (fun f -> rm (Filename.concat qdir f)) (Sys.readdir qdir);
    Sys.rmdir qdir
  end;
  if Sys.file_exists (path ^ ".d") then Sys.rmdir (path ^ ".d")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let nasty_strings =
  [ ""; "plain"; "with space"; "comma,semi;colon"; "\"quoted\"";
    "line\nbreak"; "tab\there"; "nul\000byte"; "trailing\r\n"; "⊥";
    "⊥7 looks like a null"; String.make 300 'x' ]

let nasty_values =
  List.map R.Value.sym nasty_strings
  @ [ R.Value.int 0; R.Value.int 1; R.Value.int (-1); R.Value.int max_int;
      R.Value.int min_int; R.Value.real 0.; R.Value.real (-0.);
      R.Value.real 3.14159; R.Value.real 1e-300; R.Value.real infinity;
      R.Value.real neg_infinity; R.Value.Null 0; R.Value.Null 42;
      R.Value.Null 999999 ]

let mk_instance rels =
  let inst = R.Instance.create () in
  List.iter
    (fun (name, arity, tuples) ->
      ignore
        (R.Instance.declare inst
           (R.Rel_schema.of_names name (List.init arity (Printf.sprintf "c%d"))));
      List.iter
        (fun t -> ignore (R.Instance.add_tuple inst name (R.Tuple.of_list t)))
        tuples)
    rels;
  inst

let nasty_instance () =
  mk_instance
    [ ("empty_rel", 2, []);
      ("vals", 1, List.map (fun v -> [ v ]) nasty_values);
      ( "pairs", 3,
        [ [ R.Value.sym "a"; R.Value.Null 3; R.Value.int 7 ];
          [ R.Value.sym "nul\000"; R.Value.Null 3; R.Value.real nan ] ] ) ]

let stats_of (a, b, c, d, e) =
  { Chase.rounds = a; tgd_fires = b; triggers_checked = c; nulls_created = d;
    egd_merges = e }

let check_instance_equal what a b =
  Alcotest.(check bool) what true (R.Instance.equal a b)

(* Equality modulo the labels of nulls: rename by first appearance in
   the (deterministic) fact order, then compare; fall back to
   hom-equivalence for genuinely isomorphic-but-reordered images. *)
let normalize_nulls inst =
  let inst = R.Instance.copy inst in
  let mapping = Hashtbl.create 16 in
  let next = ref 0 in
  R.Instance.iter_facts
    (fun _ t ->
      List.iter
        (function
          | R.Value.Null k ->
            if not (Hashtbl.mem mapping k) then begin
              Hashtbl.add mapping k !next;
              incr next
            end
          | _ -> ())
        (R.Tuple.to_list t))
    inst;
  R.Instance.map_values inst (function
    | R.Value.Null k -> R.Value.Null (Hashtbl.find mapping k)
    | v -> v);
  inst

let equivalent a b =
  R.Instance.equal a b
  || R.Instance.equal (normalize_nulls a) (normalize_nulls b)
  || Core_inst.hom_equivalent a b

(* --- crc32 ----------------------------------------------------------- *)

let test_crc32_vectors () =
  (* CRC-32/ISO-HDLC check value *)
  Alcotest.(check int) "123456789" 0xCBF43926 (Crc32.digest "123456789");
  Alcotest.(check int) "empty" 0 (Crc32.digest "");
  Alcotest.(check int) "pos/len window" (Crc32.digest "456")
    (Crc32.digest ~pos:3 ~len:3 "123456789")

let test_crc32_sensitivity () =
  let s = "the quick brown fox" in
  let base = Crc32.digest s in
  String.iteri
    (fun i _ ->
      let b = Bytes.of_string s in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
      Alcotest.(check bool)
        (Printf.sprintf "flip at %d changes digest" i)
        true
        (Crc32.digest (Bytes.to_string b) <> base))
    s

(* --- binio ----------------------------------------------------------- *)

let roundtrip_instance inst =
  let b = Buffer.create 256 in
  Binio.instance b inst;
  let s = Buffer.contents b in
  let r = Binio.reader s in
  let back = Binio.read_instance r in
  Alcotest.(check bool) "reader consumed everything" true (Binio.at_end r);
  check_instance_equal "instance round-trips" inst back;
  s

let test_binio_roundtrip () = ignore (roundtrip_instance (nasty_instance ()))

let test_binio_truncation () =
  let s = roundtrip_instance (nasty_instance ()) in
  for len = 0 to String.length s - 1 do
    match Binio.read_instance (Binio.reader (String.sub s 0 len)) with
    | _ ->
      Alcotest.failf "prefix of %d/%d bytes decoded as a full instance" len
        (String.length s)
    | exception Binio.Corrupt _ -> ()
  done

let gen_value =
  QCheck.Gen.(
    frequency
      [ (4, map R.Value.sym (oneofl nasty_strings));
        (2, map R.Value.sym string_printable);
        (2, map R.Value.int int);
        (1, map R.Value.real (oneofl [ 0.; -1.5; 2.75e10; 1e-30 ]));
        (2, map (fun k -> R.Value.Null k) (int_bound 1000)) ])

let gen_instance =
  QCheck.Gen.(
    let* nrels = int_range 1 3 in
    let rel i =
      let* arity = int_range 1 3 in
      let* ntuples = int_bound 6 in
      let+ tuples = list_size (return ntuples) (list_size (return arity) gen_value) in
      (Printf.sprintf "r%d" i, arity, tuples)
    in
    let+ rels = flatten_l (List.init nrels rel) in
    mk_instance rels)

let instance_arb =
  QCheck.make ~print:(Format.asprintf "%a" R.Instance.pp) gen_instance

let test_binio_qcheck =
  QCheck.Test.make ~name:"binio instance round-trip" ~count:200 instance_arb
    (fun inst ->
      let b = Buffer.create 256 in
      Binio.instance b inst;
      let back = Binio.read_instance (Binio.reader (Buffer.contents b)) in
      R.Instance.equal inst back)

(* --- snapshot -------------------------------------------------------- *)

let nasty_snapshot () =
  { Snapshot.program_text = "p(X) :- q(X).\n% with ⊥ and \000 bytes";
    variant = Chase.Restricted;
    instance = nasty_instance ();
    null_base = 1000000;
    stats = stats_of (3, 14, 159, 26, 5);
    frontier =
      Some
        [ ("vals", [ R.Tuple.of_list [ R.Value.Null 3 ] ]);
          ("empty_rel", []) ] }

let check_snapshot_equal (a : Snapshot.t) (b : Snapshot.t) =
  Alcotest.(check string) "program text" a.program_text b.program_text;
  Alcotest.(check bool) "variant" true (a.variant = b.variant);
  check_instance_equal "instance" a.instance b.instance;
  Alcotest.(check int) "null base" a.null_base b.null_base;
  Alcotest.(check bool) "stats" true (a.stats = b.stats);
  Alcotest.(check bool) "frontier" true (a.frontier = b.frontier)

let test_snapshot_roundtrip () =
  let path = tmp_store () in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  let snap = nasty_snapshot () in
  let bytes = Snapshot.write ~path snap in
  Alcotest.(check bool) "reported size matches file" true
    (bytes = String.length (read_file path));
  Alcotest.(check bool) "no temp file left" false
    (Sys.file_exists (path ^ ".tmp"));
  match Snapshot.read ~path with
  | Error c -> Alcotest.failf "clean snapshot rejected: %s" c.Snapshot.reason
  | Ok back -> check_snapshot_equal snap back

let test_snapshot_qcheck =
  QCheck.Test.make ~name:"snapshot round-trip on random instances" ~count:60
    instance_arb (fun inst ->
      let path = tmp_store () in
      Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
      let snap =
        { Snapshot.program_text = "t(X,Y) :- e(X,Y)."; variant = Chase.Oblivious;
          instance = inst; null_base = 7; stats = stats_of (1, 2, 3, 4, 5);
          frontier = None }
      in
      ignore (Snapshot.write ~path snap);
      match Snapshot.read ~path with
      | Ok back -> R.Instance.equal inst back.Snapshot.instance
      | Error _ -> false)

let test_snapshot_truncation_sweep () =
  let path = tmp_store () in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  ignore (Snapshot.write ~path (nasty_snapshot ()));
  let image = read_file path in
  for len = 0 to String.length image - 1 do
    write_file path (String.sub image 0 len);
    match Snapshot.read ~path with
    | Ok _ ->
      Alcotest.failf "truncation to %d/%d bytes accepted" len
        (String.length image)
    | Error _ -> ()
    | exception e ->
      Alcotest.failf "truncation to %d bytes raised %s" len
        (Printexc.to_string e)
  done

let test_snapshot_bitflip_sweep () =
  let path = tmp_store () in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  let snap = nasty_snapshot () in
  ignore (Snapshot.write ~path snap);
  let image = read_file path in
  String.iteri
    (fun i c ->
      List.iter
        (fun bit ->
          let b = Bytes.of_string image in
          Bytes.set b i (Char.chr (Char.code c lxor (1 lsl bit)));
          write_file path (Bytes.to_string b);
          match Snapshot.read ~path with
          | Error _ -> ()
          | Ok back ->
            (* a flip the checksums cannot see must at least leave the
               image semantically intact (e.g. a bit of a CRC that the
               also-flipped payload recomputes — impossible for single
               flips, so really: fail loudly) *)
            check_snapshot_equal snap back;
            Alcotest.failf "bit %d of byte %d accepted undetected" bit i
          | exception e ->
            Alcotest.failf "bit %d of byte %d raised %s" bit i
              (Printexc.to_string e))
        [ 0; 7 ])
    image

(* --- journal --------------------------------------------------------- *)

let sample_records =
  [ Journal.Fact ("vals", R.Tuple.of_list [ R.Value.sym "nul\000"; R.Value.Null 3 ]);
    Journal.Fact ("vals", R.Tuple.of_list [ R.Value.int min_int; R.Value.real 1e300 ]);
    Journal.Merge { from_ = R.Value.Null 3; into = R.Value.Null 1 };
    Journal.Round { merged = true; stats = stats_of (1, 2, 3, 4, 5) };
    Journal.Fact ("t", R.Tuple.of_list [ R.Value.sym "a"; R.Value.sym "b" ]);
    Journal.Round { merged = false; stats = stats_of (2, 3, 4, 5, 6) } ]

let write_journal path records =
  let w = Journal.create ~path in
  List.iter (fun r -> ignore (Journal.append w r)) records;
  Journal.close w

let test_journal_roundtrip () =
  let path = tmp_store () in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  write_journal path sample_records;
  let r = Journal.read ~path in
  Alcotest.(check bool) "no truncation" true (r.Journal.truncation = None);
  Alcotest.(check bool) "records round-trip" true
    (List.map snd r.Journal.records = sample_records);
  Alcotest.(check int) "valid_bytes covers the file"
    (String.length (read_file path)) r.Journal.valid_bytes

let test_journal_truncation_sweep () =
  let path = tmp_store () in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  write_journal path sample_records;
  let image = read_file path in
  for len = 0 to String.length image - 1 do
    write_file path (String.sub image 0 len);
    match Journal.read ~path with
    | r ->
      let got = List.map snd r.Journal.records in
      let is_prefix =
        List.length got <= List.length sample_records
        && got
           = List.filteri
               (fun i _ -> i < List.length got)
               sample_records
      in
      Alcotest.(check bool)
        (Printf.sprintf "prefix property at %d bytes" len)
        true is_prefix
    | exception e ->
      Alcotest.failf "journal truncated to %d bytes raised %s" len
        (Printexc.to_string e)
  done

let test_journal_bitflip_sweep () =
  let path = tmp_store () in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  write_journal path sample_records;
  let image = read_file path in
  let original = (Journal.read ~path).Journal.records in
  String.iteri
    (fun i c ->
      let b = Bytes.of_string image in
      Bytes.set b i (Char.chr (Char.code c lxor 0x10));
      write_file path (Bytes.to_string b);
      match Journal.read ~path with
      | r ->
        (* whatever survives must be a verbatim prefix of the original
           record sequence — a flip can only truncate, never alter *)
        let rec is_prefix got orig =
          match (got, orig) with
          | [], _ -> true
          | (go, gr) :: gt, (oo, orr) :: ot ->
            go = oo && gr = orr && is_prefix gt ot
          | _ :: _, [] -> false
        in
        Alcotest.(check bool)
          (Printf.sprintf "prefix property after flip at byte %d" i)
          true
          (is_prefix r.Journal.records original)
      | exception e ->
        Alcotest.failf "flip at byte %d raised %s" i (Printexc.to_string e))
    image

(* --- store: checkpoint / crash / resume ------------------------------ *)

(* Existentials, null-merging EGD, recursion: every kind of journal
   record shows up, and interruptions at different points leave nulls,
   merges and frontiers in flight. *)
let program_text =
  String.concat "\n"
    [ "e(1, 2). e(2, 3). e(3, 4). e(4, 5).";
      "t(X, Y) :- e(X, Y).";
      "t(X, Z) :- t(X, Y), e(Y, Z).";
      "a(tom). a(ann).";
      "p(X, Y) :- a(X).";
      "q(X, Y) :- a(X).";
      "Y1 = Y2 :- p(X, Y1), q(X, Y2)."; "" ]

let parse text = (Parser.parse_string text).Parser.program

let full_chase ?(text = program_text) () =
  let program = parse text in
  Chase.run program (Program.instance_of_facts program)

exception Crash

(* A checkpoint that behaves like the process dying: the store's own
   hooks run for a while, then the world stops — no on_done, no final
   snapshot, possibly mid-round. *)
let crashing_checkpoint store ~after_facts =
  let inner = Store.checkpoint store in
  let seen = ref 0 in
  { inner with
    Chase.on_fact =
      (fun pred t ->
        if !seen >= after_facts then raise Crash;
        incr seen;
        inner.Chase.on_fact pred t);
    on_done = (fun ~instance:_ _ _ -> ()) }

let resume_to_completion path =
  match Store.resume ~path () with
  | Error e ->
    Alcotest.failf "resume failed: %s"
      (Format.asprintf "%a" Store.pp_load_error e)
  | Ok (r, recovery) -> (r, recovery)

let check_resumed_matches_full what (r : Chase.result) =
  let full = full_chase () in
  Alcotest.(check bool) (what ^ ": saturates") true
    (r.Chase.outcome = Chase.Saturated);
  Alcotest.(check bool)
    (what ^ ": same instance modulo null labels")
    true
    (equivalent full.Chase.instance r.Chase.instance)

let test_resume_after_guard_interrupt () =
  let program = parse program_text in
  for k = 1 to 24 do
    let path = tmp_store () in
    Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
    let guard = Guard.create ~max_steps:k () in
    let store =
      Store.create ~guard ~path ~program_text ~variant:Chase.Restricted ()
    in
    let r =
      Chase.run ~guard ~checkpoint:(Store.checkpoint store) program
        (Program.instance_of_facts program)
    in
    Alcotest.(check bool)
      (Printf.sprintf "no write error at k=%d" k)
      true
      (Store.write_error store = None);
    match r.Chase.outcome with
    | Chase.Failed _ -> Alcotest.failf "unexpected failure at k=%d" k
    | Chase.Saturated | Chase.Out_of_budget _ ->
      let resumed, recovery = resume_to_completion path in
      Alcotest.(check bool)
        (Printf.sprintf "clean journal at k=%d" k)
        true
        (recovery.Store.journal_truncation = None);
      check_resumed_matches_full (Printf.sprintf "k=%d" k) resumed
  done

let test_resume_after_crash () =
  for n = 1 to 16 do
    let path = tmp_store () in
    Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
    let program = parse program_text in
    let store =
      Store.create ~path ~program_text ~variant:Chase.Restricted ()
    in
    (match
       Chase.run
         ~checkpoint:(crashing_checkpoint store ~after_facts:n)
         program
         (Program.instance_of_facts program)
     with
    | _ -> ()  (* chase finished before the crash point *)
    | exception Crash -> Store.close store);
    let resumed, _ = resume_to_completion path in
    check_resumed_matches_full (Printf.sprintf "crash after %d facts" n)
      resumed
  done

let test_resume_of_resume () =
  let path = tmp_store () in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  let program = parse program_text in
  let guard = Guard.create ~max_steps:4 () in
  let store =
    Store.create ~guard ~path ~program_text ~variant:Chase.Restricted ()
  in
  ignore
    (Chase.run ~guard ~checkpoint:(Store.checkpoint store) program
       (Program.instance_of_facts program));
  (* first resume: also interrupted *)
  (match Store.resume ~guard:(Guard.create ~max_steps:4 ()) ~path () with
  | Error e -> Alcotest.failf "first resume: %s" (Format.asprintf "%a" Store.pp_load_error e)
  | Ok _ -> ());
  let resumed, _ = resume_to_completion path in
  check_resumed_matches_full "resume of resume" resumed

let test_resume_reaches_same_failure () =
  let text = program_text ^ "! :- t(1, 5).\n" in
  let program = parse text in
  let full = Chase.run program (Program.instance_of_facts program) in
  (match full.Chase.outcome with
  | Chase.Failed _ -> ()
  | _ -> Alcotest.fail "expected the full chase to fail its NC");
  let path = tmp_store () in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  let guard = Guard.create ~max_steps:5 () in
  let store =
    Store.create ~guard ~path ~program_text:text ~variant:Chase.Restricted ()
  in
  ignore
    (Chase.run ~guard ~checkpoint:(Store.checkpoint store) program
       (Program.instance_of_facts program));
  let resumed, _ = resume_to_completion path in
  Alcotest.(check bool) "resumed run fails the same NC" true
    (match resumed.Chase.outcome with Chase.Failed _ -> true | _ -> false)

let test_fresh_nulls_not_reused () =
  let path = tmp_store () in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  let program = parse program_text in
  let guard = Guard.create ~max_steps:6 () in
  let store =
    Store.create ~guard ~path ~program_text ~variant:Chase.Restricted ()
  in
  ignore
    (Chase.run ~guard ~checkpoint:(Store.checkpoint store) program
       (Program.instance_of_facts program));
  match Store.load ~path with
  | Error e ->
    Alcotest.failf "load: %s" (Format.asprintf "%a" Store.pp_load_error e)
  | Ok recovery ->
    let nulls_of inst =
      let s = ref [] in
      R.Instance.iter_facts
        (fun _ t ->
          List.iter
            (function
              | R.Value.Null k -> if not (List.mem k !s) then s := k :: !s
              | _ -> ())
            (R.Tuple.to_list t))
        inst;
      !s
    in
    let recovered = nulls_of recovery.Store.instance in
    let resumed, _ = resume_to_completion path in
    (* every null the resumed run invented (i.e. not present in the
       recovered image) carries a label >= the recovered base: labels
       from the interrupted run, even merged-away ones, are never
       re-issued *)
    List.iter
      (fun k ->
        if not (List.mem k recovered) then
          Alcotest.(check bool)
            (Printf.sprintf "fresh null %d respects base %d" k
               recovery.Store.null_base)
            true
            (k >= recovery.Store.null_base))
      (nulls_of resumed.Chase.instance)

(* --- store: replay edge cases ---------------------------------------- *)

let completed_store () =
  let path = tmp_store () in
  let program = parse program_text in
  let store =
    Store.create ~path ~program_text ~variant:Chase.Restricted ()
  in
  let r =
    Chase.run ~checkpoint:(Store.checkpoint store) program
      (Program.instance_of_facts program)
  in
  Alcotest.(check bool) "setup chase saturates" true
    (r.Chase.outcome = Chase.Saturated);
  (path, r)

let test_replay_tolerates_duplicates () =
  let path, r = completed_store () in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  (* crash-inside-compaction: the snapshot already holds these facts,
     the (not yet truncated) journal repeats them *)
  let dups =
    [ Journal.Fact ("t", R.Tuple.of_list [ R.Value.int 1; R.Value.int 2 ]);
      Journal.Fact ("t", R.Tuple.of_list [ R.Value.int 1; R.Value.int 2 ]);
      Journal.Fact ("e", R.Tuple.of_list [ R.Value.int 1; R.Value.int 2 ]) ]
  in
  write_journal (Store.journal_path path) dups;
  match Store.load ~path with
  | Error e -> Alcotest.failf "load: %s" (Format.asprintf "%a" Store.pp_load_error e)
  | Ok recovery ->
    Alcotest.(check int) "all duplicates replayed" (List.length dups)
      recovery.Store.replayed;
    Alcotest.(check bool) "no truncation" true
      (recovery.Store.journal_truncation = None);
    check_instance_equal "instance unchanged by duplicates"
      r.Chase.instance recovery.Store.instance

let test_replay_stops_at_foreign_record () =
  let path, r = completed_store () in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  write_journal (Store.journal_path path)
    [ Journal.Fact ("e", R.Tuple.of_list [ R.Value.int 9; R.Value.int 10 ]);
      Journal.Fact ("no_such_predicate", R.Tuple.of_list [ R.Value.int 1 ]);
      Journal.Fact ("e", R.Tuple.of_list [ R.Value.int 10; R.Value.int 11 ]) ];
  match Store.load ~path with
  | Error e -> Alcotest.failf "load: %s" (Format.asprintf "%a" Store.pp_load_error e)
  | Ok recovery ->
    Alcotest.(check int) "replay stopped after the valid prefix" 1
      recovery.Store.replayed;
    Alcotest.(check bool) "truncation reported" true
      (recovery.Store.journal_truncation <> None);
    Alcotest.(check bool) "prefix fact applied" true
      (R.Instance.total_tuples recovery.Store.instance
      = R.Instance.total_tuples r.Chase.instance + 1)

let test_replay_arity_mismatch () =
  let path, _ = completed_store () in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  write_journal (Store.journal_path path)
    [ Journal.Fact ("e", R.Tuple.of_list [ R.Value.int 1 ]) ];
  match Store.load ~path with
  | Error e -> Alcotest.failf "load: %s" (Format.asprintf "%a" Store.pp_load_error e)
  | Ok recovery ->
    Alcotest.(check int) "nothing replayed" 0 recovery.Store.replayed;
    Alcotest.(check bool) "truncation reported" true
      (recovery.Store.journal_truncation <> None)

let test_crash_mid_rename () =
  let path, r = completed_store () in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  (* a temp file from a writer that died before its rename *)
  write_file (path ^ ".tmp") "garbage from a dead writer \000\001\002";
  (match Store.load ~path with
  | Error e -> Alcotest.failf "load: %s" (Format.asprintf "%a" Store.pp_load_error e)
  | Ok recovery ->
    check_instance_equal "stale tmp ignored" r.Chase.instance
      recovery.Store.instance);
  let rep = Fsck.check ~path in
  Alcotest.(check bool) "H052 hint for the stale temp" true
    (List.exists (fun d -> d.Diag.code = "H052") rep.Fsck.diags)

let test_missing_store () =
  match Store.load ~path:"/nonexistent/dir/nothing.snap" with
  | Error (Store.No_store _) -> ()
  | Error e ->
    Alcotest.failf "expected No_store, got %s"
      (Format.asprintf "%a" Store.pp_load_error e)
  | Ok _ -> Alcotest.fail "load of a missing store succeeded"

let test_verify_clean_and_corrupt () =
  let path, _ = completed_store () in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  let rep = Fsck.check ~path in
  Alcotest.(check (list string)) "clean store has no diagnostics" []
    (List.map (fun d -> d.Diag.code) rep.Fsck.diags);
  Alcotest.(check bool) "summary lines present" true (rep.Fsck.infos <> []);
  Alcotest.(check int) "clean store exits 0" 0 (Fsck.exit_code rep);
  (* corrupt one payload byte: with a clean previous generation on disk
     the store is salvageable (exit 2), not fatal *)
  let image = read_file path in
  let b = Bytes.of_string image in
  Bytes.set b (Bytes.length b - 5)
    (Char.chr (Char.code (Bytes.get b (Bytes.length b - 5)) lxor 0xFF));
  write_file path (Bytes.to_string b);
  let rep = Fsck.check ~path in
  Alcotest.(check bool) "salvageable via a generation" true
    (rep.Fsck.status = Fsck.Salvageable);
  Alcotest.(check bool) "W051 names the clean generation" true
    (List.exists (fun d -> d.Diag.code = "W051") rep.Fsck.diags);
  Alcotest.(check int) "salvageable store exits 2" 2 (Fsck.exit_code rep);
  (* strip the generation chain: now nothing local can save it *)
  List.iter
    (fun g -> if Sys.file_exists g then Sys.remove g)
    [ Store.generation_path path 1; Store.generation_path path 2 ];
  let rep = Fsck.check ~path in
  Alcotest.(check bool) "E023 on corruption" true
    (List.exists (fun d -> d.Diag.code = "E023") rep.Fsck.diags);
  Alcotest.(check bool) "E032 once unrepairable" true
    (List.exists (fun d -> d.Diag.code = "E032") rep.Fsck.diags);
  Alcotest.(check int) "unrepairable store exits 1" 1 (Fsck.exit_code rep)

(* --- fsck: the salvage chain ----------------------------------------- *)

let flip_byte path off =
  let b = Bytes.of_string (read_file path) in
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x01));
  write_file path (Bytes.to_string b)

(* after a repair: the store must verify clean and, once resumed, reach
   the same fixpoint as an undamaged run (no data invented, none lost
   beyond what the salvage stage documented) *)
let check_repaired_store ~stage path =
  let post = Fsck.check ~path in
  if post.Fsck.status <> Fsck.Clean then
    Alcotest.failf "%s: repaired store does not verify clean" stage;
  let resumed, _ = resume_to_completion path in
  check_resumed_matches_full (stage ^ ": fixpoint after repair") resumed

let test_fsck_repair_journal_prefix () =
  let path, _ = completed_store () in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  (* idempotent duplicates followed by a torn/garbage tail: stage 1
     folds the valid prefix into a fresh snapshot and drops the rest *)
  let jpath = Store.journal_path path in
  write_journal jpath
    [ Journal.Fact ("t", R.Tuple.of_list [ R.Value.int 1; R.Value.int 2 ]);
      Journal.Fact ("e", R.Tuple.of_list [ R.Value.int 1; R.Value.int 2 ]) ];
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 jpath in
  output_string oc "\xde\xad\xbe\xef garbage from a torn write";
  close_out oc;
  let pre = Fsck.check ~path in
  Alcotest.(check bool) "damaged journal is salvageable" true
    (pre.Fsck.status = Fsck.Salvageable);
  let rep = Fsck.repair ~path () in
  Alcotest.(check bool) "repair reports success" true rep.Fsck.repaired;
  Alcotest.(check bool) "damaged journal quarantined" true
    (List.exists
       (fun q -> String.length q > 0 && Sys.file_exists q)
       rep.Fsck.quarantined);
  Alcotest.(check bool) "W052 reports the dropped bytes" true
    (List.exists (fun d -> d.Diag.code = "W052") rep.Fsck.diags);
  Alcotest.(check bool) "H056 points at the quarantine" true
    (List.exists (fun d -> d.Diag.code = "H056") rep.Fsck.diags);
  check_repaired_store ~stage:"journal-prefix" path

(* the satellite sweep: flip (or truncate at) every byte of the current
   snapshot; fsck --repair must hand back a verify-accepted store whose
   resumed fixpoint matches the pre-corruption ground truth (here via
   the generation stage — the journal-prefix stage is exercised above) *)
let test_fsck_bitflip_repair_sweep () =
  let path, _ = completed_store () in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  let gen1 = Store.generation_path path 1 in
  let jpath = Store.journal_path path in
  Alcotest.(check bool) "setup left a previous generation" true
    (Sys.file_exists gen1);
  let pristine = read_file path in
  let pristine_gen = read_file gen1 in
  let pristine_journal = read_file jpath in
  let restore () =
    write_file path pristine;
    write_file gen1 pristine_gen;
    write_file jpath pristine_journal;
    let qdir = Fsck.quarantine_dir path in
    if Sys.file_exists qdir then
      Array.iter
        (fun f -> Sys.remove (Filename.concat qdir f))
        (Sys.readdir qdir)
  in
  let repair_and_check ~what off =
    let rep = Fsck.repair ~path () in
    if not rep.Fsck.repaired then
      Alcotest.failf "%s at byte %d not repaired (status %s)" what off
        (Fsck.status_name rep.Fsck.status);
    (* a full resume per offset would dominate the suite's runtime:
       spot-check the recovered fixpoint end-to-end on a stride, and
       rely on the cheap re-verify for every other offset *)
    if off mod 17 = 0 then
      check_repaired_store ~stage:(Printf.sprintf "%s at %d" what off) path
    else
      let post = Fsck.check ~path in
      if post.Fsck.status <> Fsck.Clean then
        Alcotest.failf "%s at byte %d: repaired store not clean" what off
  in
  for off = 0 to String.length pristine - 1 do
    restore ();
    flip_byte path off;
    repair_and_check ~what:"flip" off
  done;
  for len = 0 to String.length pristine - 1 do
    restore ();
    write_file path (String.sub pristine 0 len);
    repair_and_check ~what:"truncation" len
  done;
  restore ()

let test_fsck_unrepairable_untouched () =
  let path, _ = completed_store () in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  List.iter
    (fun g -> if Sys.file_exists g then Sys.remove g)
    [ Store.generation_path path 1; Store.generation_path path 2 ];
  flip_byte path 4 (* magic byte of the only image: Bad_header *);
  let damaged = read_file path in
  let rep = Fsck.repair ~path () in
  Alcotest.(check bool) "not repaired" false rep.Fsck.repaired;
  Alcotest.(check bool) "unrepairable status" true
    (rep.Fsck.status = Fsck.Unrepairable);
  Alcotest.(check bool) "E032 reported" true
    (List.exists (fun d -> d.Diag.code = "E032") rep.Fsck.diags);
  Alcotest.(check int) "exits 1" 1 (Fsck.exit_code rep);
  (* never destroy evidence: without a peer the damaged bytes stay put *)
  Alcotest.(check bool) "damaged original untouched" true
    (read_file path = damaged);
  Alcotest.(check bool) "nothing quarantined" false
    (Sys.file_exists (Fsck.quarantine_dir path))

let test_fsck_repair_idempotent =
  QCheck.Test.make ~name:"fsck repair is idempotent" ~count:25
    QCheck.(pair bool small_nat)
    (fun (hit_journal, off) ->
      let path, _ = completed_store () in
      Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
      let target = if hit_journal then Store.journal_path path else path in
      let image = read_file target in
      flip_byte target (off mod max 1 (String.length image));
      let r1 = Fsck.repair ~path () in
      let snap1 = read_file path in
      let jrnl1 = read_file (Store.journal_path path) in
      let r2 = Fsck.repair ~path () in
      r1.Fsck.repaired
      && (not r2.Fsck.repaired) (* nothing left to repair *)
      && r2.Fsck.status = Fsck.Clean
      && read_file path = snap1
      && read_file (Store.journal_path path) = jrnl1)

let test_fsck_failed_resync_restores_originals () =
  let path, _ = completed_store () in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  List.iter
    (fun g -> if Sys.file_exists g then Sys.remove g)
    [ Store.generation_path path 1; Store.generation_path path 2 ];
  flip_byte path 4 (* Bad_header, no generations: only stage 3 applies *);
  let jpath = Store.journal_path path in
  let damaged = read_file path in
  let journal = read_file jpath in
  let called = ref false in
  let rep =
    Fsck.repair
      ~resync:(fun () ->
        called := true;
        Error "peer down")
      ~path ()
  in
  Alcotest.(check bool) "resync was attempted" true !called;
  Alcotest.(check bool) "still unrepairable" true
    (rep.Fsck.status = Fsck.Unrepairable);
  (* the failed sync must not leave the store emptied into quarantine *)
  Alcotest.(check bool) "damaged snapshot restored byte-identical" true
    (Sys.file_exists path && read_file path = damaged);
  Alcotest.(check bool) "journal restored byte-identical" true
    (Sys.file_exists jpath && read_file jpath = journal);
  Alcotest.(check (list string)) "nothing reported quarantined" []
    rep.Fsck.quarantined;
  let qdir = Fsck.quarantine_dir path in
  Alcotest.(check bool) "quarantine holds no files" true
    ((not (Sys.file_exists qdir)) || Array.length (Sys.readdir qdir) = 0)

let test_fsck_bad_program_salvaged () =
  let path, _ = completed_store () in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  (* a validly-encoded image whose program text no longer parses: the
     section CRCs cannot catch it, check must — and route it to the
     generation stage instead of calling it a mid-check race *)
  let snap = Result.get_ok (Snapshot.read ~path) in
  ignore
    (Snapshot.write ~path
       { snap with Snapshot.program_text = "this is not a datalog program ((" });
  let rep = Fsck.check ~path in
  Alcotest.(check bool) "salvageable via a generation" true
    (rep.Fsck.status = Fsck.Salvageable);
  Alcotest.(check bool) "damage kind is bad-program" true
    (List.exists (fun d -> d.Fsck.kind = Fsck.Bad_program) rep.Fsck.damage);
  let r = Fsck.repair ~path () in
  Alcotest.(check bool) "repaired from the generation" true r.Fsck.repaired;
  check_repaired_store ~stage:"bad-program" path

let test_scrub_clean_then_corrupt () =
  let path, _ = completed_store () in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  let s = Scrub.create ~budget:512 ~path () in
  Fun.protect ~finally:(fun () -> Scrub.close s) @@ fun () ->
  let spin_until_cycles ~expect_clean target =
    let found = ref 0 in
    let guard = ref 0 in
    while Scrub.cycles s < target && !guard < 100_000 do
      incr guard;
      let fs = Scrub.tick s in
      found := !found + List.length fs;
      if expect_clean && fs <> [] then
        Alcotest.failf "clean store produced a finding: %s"
          (Format.asprintf "%a" Scrub.pp_finding (List.hd fs))
    done;
    Alcotest.(check bool) "scrub cycles advance" true (Scrub.cycles s >= target);
    !found
  in
  ignore (spin_until_cycles ~expect_clean:true 2);
  Alcotest.(check bool) "bytes were scrubbed" true (Scrub.bytes_scrubbed s > 0);
  Alcotest.(check int) "no errors on a clean store" 0 (Scrub.errors_found s);
  (* one flipped payload byte: detected, and deduplicated across the
     following cycles — one fault, one finding *)
  flip_byte path (String.length (read_file path) - 5);
  let found = spin_until_cycles ~expect_clean:false 6 in
  Alcotest.(check int) "one corrupt byte, one finding" 1 found;
  Alcotest.(check int) "errors counter matches" 1 (Scrub.errors_found s)

(* serve closes the scrubber right after a repair rewrites the files
   under it, usually mid-walk on any store bigger than one tick's
   budget: the next tick must start a fresh cycle, not raise *)
let test_scrub_close_mid_walk_restarts () =
  let path = tmp_store () in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  let big =
    mk_instance
      [ ( "big", 1,
          List.init 64 (fun i ->
              [ R.Value.sym (String.make 100 'x' ^ string_of_int i) ]) ) ]
  in
  ignore
    (Snapshot.write ~path
       { Snapshot.program_text = "e(1,2)."; variant = Chase.Restricted;
         instance = big; null_base = 0; stats = stats_of (0, 0, 0, 0, 0);
         frontier = None });
  let s = Scrub.create ~budget:512 ~path () in
  Fun.protect ~finally:(fun () -> Scrub.close s) @@ fun () ->
  ignore (Scrub.tick s);
  Alcotest.(check int) "one tick leaves the walk mid-cycle" 0 (Scrub.cycles s);
  Scrub.close s;
  let guard = ref 0 in
  while Scrub.cycles s < 1 && !guard < 100_000 do
    incr guard;
    match Scrub.tick s with
    | [] -> ()
    | f :: _ ->
      Alcotest.failf "clean store produced a finding after close: %s"
        (Format.asprintf "%a" Scrub.pp_finding f)
  done;
  Alcotest.(check bool) "cycle completes after a mid-walk close" true
    (Scrub.cycles s >= 1);
  Alcotest.(check int) "no errors on a clean store" 0 (Scrub.errors_found s)

let test_checkpoint_bytes_accounted () =
  let path = tmp_store () in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  let program = parse program_text in
  let guard = Guard.create () in
  let store =
    Store.create ~guard ~path ~program_text ~variant:Chase.Restricted ()
  in
  ignore
    (Chase.run ~guard ~checkpoint:(Store.checkpoint store) program
       (Program.instance_of_facts program));
  let c = Guard.consumption guard in
  Alcotest.(check bool) "checkpoint bytes counted" true
    (c.Guard.checkpoint_bytes > 0)

let test_checkpoint_byte_budget_degrades () =
  let path = tmp_store () in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  let program = parse program_text in
  let guard = Guard.create ~max_checkpoint_bytes:64 () in
  let store =
    Store.create ~guard ~path ~program_text ~variant:Chase.Restricted ()
  in
  let r =
    Chase.run ~guard ~checkpoint:(Store.checkpoint store) program
      (Program.instance_of_facts program)
  in
  (match r.Chase.outcome with
  | Chase.Out_of_budget e ->
    Alcotest.(check string) "tripped on checkpoint bytes" "checkpoint bytes"
      (Guard.resource_name e.Guard.resource)
  | _ -> Alcotest.fail "expected an Out_of_budget outcome");
  (* the budget-tripped store is still resumable (without the budget) *)
  let resumed, _ = resume_to_completion path in
  check_resumed_matches_full "after byte-budget trip" resumed

(* --- suites ---------------------------------------------------------- *)

let qcheck = List.map QCheck_alcotest.to_alcotest

let suites =
  [ ( "store.codec",
      [ Alcotest.test_case "crc32 known vectors" `Quick test_crc32_vectors;
        Alcotest.test_case "crc32 flips any bit" `Quick test_crc32_sensitivity;
        Alcotest.test_case "binio round-trip (nasty values)" `Quick
          test_binio_roundtrip;
        Alcotest.test_case "binio rejects every truncation" `Quick
          test_binio_truncation ]
      @ qcheck [ test_binio_qcheck ] );
    ( "store.snapshot",
      [ Alcotest.test_case "round-trip" `Quick test_snapshot_roundtrip;
        Alcotest.test_case "truncation sweep (every prefix)" `Quick
          test_snapshot_truncation_sweep;
        Alcotest.test_case "bit-flip sweep" `Slow test_snapshot_bitflip_sweep ]
      @ qcheck [ test_snapshot_qcheck ] );
    ( "store.journal",
      [ Alcotest.test_case "round-trip" `Quick test_journal_roundtrip;
        Alcotest.test_case "truncation sweep (every byte)" `Quick
          test_journal_truncation_sweep;
        Alcotest.test_case "bit-flip sweep never raises" `Quick
          test_journal_bitflip_sweep ] );
    ( "store.resume",
      [ Alcotest.test_case "guard interrupt at every step budget" `Quick
          test_resume_after_guard_interrupt;
        Alcotest.test_case "crash after every fact count" `Quick
          test_resume_after_crash;
        Alcotest.test_case "resume of a resume" `Quick test_resume_of_resume;
        Alcotest.test_case "resume reaches the same failure" `Quick
          test_resume_reaches_same_failure;
        Alcotest.test_case "null labels never reused" `Quick
          test_fresh_nulls_not_reused ] );
    ( "store.recovery",
      [ Alcotest.test_case "replay tolerates duplicate records" `Quick
          test_replay_tolerates_duplicates;
        Alcotest.test_case "replay stops at foreign predicates" `Quick
          test_replay_stops_at_foreign_record;
        Alcotest.test_case "replay stops on arity mismatch" `Quick
          test_replay_arity_mismatch;
        Alcotest.test_case "crash mid-rename leaves store readable" `Quick
          test_crash_mid_rename;
        Alcotest.test_case "missing store is a No_store error" `Quick
          test_missing_store;
        Alcotest.test_case "verify: clean / salvageable / unrepairable" `Quick
          test_verify_clean_and_corrupt ] );
    ( "store.fsck",
      [ Alcotest.test_case "journal-prefix salvage" `Quick
          test_fsck_repair_journal_prefix;
        Alcotest.test_case "repair sweep: every flip and truncation" `Slow
          test_fsck_bitflip_repair_sweep;
        Alcotest.test_case "unrepairable store left untouched" `Quick
          test_fsck_unrepairable_untouched;
        Alcotest.test_case "failed peer re-sync restores the originals" `Quick
          test_fsck_failed_resync_restores_originals;
        Alcotest.test_case "bad program text salvaged via generation" `Quick
          test_fsck_bad_program_salvaged;
        Alcotest.test_case "scrub: clean pass, dedup after damage" `Quick
          test_scrub_clean_then_corrupt;
        Alcotest.test_case "scrub: close mid-walk restarts cleanly" `Quick
          test_scrub_close_mid_walk_restarts ]
      @ qcheck [ test_fsck_repair_idempotent ] );
    ( "store.guard",
      [ Alcotest.test_case "checkpoint bytes are accounted" `Quick
          test_checkpoint_bytes_accounted;
        Alcotest.test_case "checkpoint byte budget degrades the run" `Quick
          test_checkpoint_byte_budget_degrades ] ) ]
