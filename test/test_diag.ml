(* The diagnostics subsystem: golden corpus of malformed inputs, CSV
   error locations, parser recovery, and the no-escaping-exceptions
   property behind [mdqa check].

   Each corpus file under corpus/ embeds its expected report as
   trailing comment lines:

     % EXPECT error E015 @ 5

   and the test asserts that the produced diagnostics — severity, code
   and line, for every severity — match the expectations exactly. *)

open Mdqa_datalog
module R = Mdqa_relational
module Md_parser = Mdqa_context.Md_parser

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let corpus_dir = "corpus"

let corpus_files () =
  Sys.readdir corpus_dir |> Array.to_list |> List.sort compare
  |> List.filter (fun f ->
         Filename.check_suffix f ".mdq" || Filename.check_suffix f ".dl")
  |> List.map (fun f -> Filename.concat corpus_dir f)

(* "% EXPECT error E015 @ 5" -> ("error", "E015", 5) *)
let expectations text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         let line = String.trim line in
         match String.index_opt line 'E' with
         | Some _ when String.length line > 9 && String.sub line 0 8 = "% EXPECT"
           -> (
           match
             String.split_on_char ' '
               (String.trim (String.sub line 8 (String.length line - 8)))
           with
           | [ sev; code; "@"; ln ] -> Some (sev, code, int_of_string ln)
           | _ -> Alcotest.failf "malformed EXPECT line: %s" line)
         | _ -> None)

let severity_to_string = function
  | Diag.Error -> "error"
  | Diag.Warning -> "warning"
  | Diag.Hint -> "hint"

let check_diags path text =
  if Filename.check_suffix path ".mdq" then
    (Md_parser.check_string ~file:path text).Md_parser.diags
  else (Validate.check_string ~file:path text).Validate.diags

let test_corpus () =
  let files = corpus_files () in
  Alcotest.(check bool)
    "corpus has at least 12 files" true
    (List.length files >= 12);
  List.iter
    (fun path ->
      let text = read_file path in
      let expected = expectations text in
      if expected = [] then
        Alcotest.failf "%s: no EXPECT annotations" path;
      let got =
        List.map
          (fun (d : Diag.t) ->
            (severity_to_string d.Diag.severity, d.Diag.code,
             d.Diag.span.Diag.line))
          (check_diags path text)
      in
      let show (s, c, l) = Printf.sprintf "%s %s @ %d" s c l in
      Alcotest.(check (list string))
        path
        (List.sort compare (List.map show expected))
        (List.sort compare (List.map show got)))
    files

(* The ISSUE's acceptance bar: one multi-error input must yield at
   least two independent errors in a single pass. *)
let test_multi_error () =
  let text = read_file (Filename.concat corpus_dir "syntax_multi.mdq") in
  let diags = (Md_parser.check_string text).Md_parser.diags in
  let errors =
    List.filter (fun d -> d.Diag.severity = Diag.Error) diags
  in
  Alcotest.(check bool)
    "at least 2 independent errors from one input" true
    (List.length errors >= 2);
  let lines =
    List.sort_uniq compare
      (List.map (fun d -> d.Diag.span.Diag.line) errors)
  in
  Alcotest.(check bool) "errors on distinct lines" true
    (List.length lines >= 2)

let test_corpus_never_raises () =
  List.iter
    (fun path ->
      let text = read_file path in
      (* both checkers must accept any input without raising *)
      ignore (Validate.check_string ~file:path text);
      ignore (Md_parser.check_string ~file:path text))
    (corpus_files ())

let test_examples_clean () =
  List.iter
    (fun path ->
      let { Md_parser.diags; parsed } = Md_parser.check_file path in
      (match parsed with
       | Some _ -> ()
       | None -> Alcotest.failf "%s: did not parse" path);
      List.iter
        (fun (d : Diag.t) ->
          if d.Diag.severity <> Diag.Hint then
            Alcotest.failf "%s: unexpected %s: %s" path
              (severity_to_string d.Diag.severity)
              d.Diag.message)
        diags)
    [ "../examples/hospital.mdq"; "../examples/telecom.mdq" ]

(* parse_string must locate its error at the real declaration line —
   the old behavior was [Error { line = 0; _ }] for every semantic
   failure. *)
let test_error_lines () =
  let check_line input want =
    match Md_parser.parse_string input with
    | _ -> Alcotest.fail "expected Md_parser.Error"
    | exception Md_parser.Error { line; _ } ->
      Alcotest.(check int) "error line" want line
  in
  check_line
    "source readings(sensor, value).\nreadings(\"s1\", 17).\ncalib(\"c\").\n"
    3;
  check_line
    "dimension Loc {\n  category Sensor -> Station.\n  member \"x\" in \
     Nowhere.\n}\n"
    3

(* --- parser recovery ------------------------------------------------ *)

let test_recovery_counts () =
  let input =
    "p(a).\nq(X).\np(b).\nr(b) & s(c).\np(c).\n?ans(Y) :- t(Z).\np(d).\n"
  in
  let diags = Diag.collector () in
  let statements = Parser.parse_statements diags input in
  (* the 4 good facts survive; the 3 bad statements each produce
     diagnostics *)
  Alcotest.(check int) "recovered statements" 4 (List.length statements);
  Alcotest.(check bool) "three or more errors" true
    (Diag.error_count diags >= 3)

let test_recovery_no_progress_loop () =
  (* pathological inputs must terminate (forced single-token advance) *)
  List.iter
    (fun input -> ignore (Md_parser.check_string input))
    [ "}"; "}}}}"; "."; "...."; "dimension"; "dimension Loc {";
      "dimension Loc { category }"; ":-"; "p("; "\"unterminated" ]

(* --- CSV ------------------------------------------------------------ *)

let test_csv_row_col () =
  match
    R.Csv_io.relation_of_string_result ~name:"t" "a,b\n\nx\ny,z,w\nu,v\n"
  with
  | Ok _ -> Alcotest.fail "expected ragged-row errors"
  | Error errs ->
    let got =
      List.map (fun (e : R.Csv_io.error) -> (e.R.Csv_io.row, e.R.Csv_io.col)) errs
    in
    (* rows are absolute file lines (header = line 1, blank line
       skipped); col is the first offending cell *)
    Alcotest.(check (list (pair int int))) "error locations"
      [ (3, 2); (4, 3) ] got

let test_csv_empty () =
  (match R.Csv_io.relation_of_string_result ~name:"t" "" with
   | Ok _ -> Alcotest.fail "expected empty-input error"
   | Error [ e ] -> Alcotest.(check int) "row" 1 e.R.Csv_io.row
   | Error _ -> Alcotest.fail "expected exactly one error");
  (* the fail-fast wrapper still raises Failure, for compatibility *)
  (match R.Csv_io.relation_of_string ~name:"t" "" with
   | _ -> Alcotest.fail "expected Failure"
   | exception Failure _ -> ());
  match R.Csv_io.relation_of_string ~name:"t" "a,b\nx\n" with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure _ -> ()

let test_csv_ok_roundtrip () =
  match R.Csv_io.relation_of_string_result ~name:"t" "a,b\n1,x\n2,y\n" with
  | Error _ -> Alcotest.fail "clean CSV must load"
  | Ok r -> Alcotest.(check int) "rows" 2 (R.Relation.cardinal r)

(* --- collector / presentation --------------------------------------- *)

let test_exit_codes () =
  let e = Diag.make Diag.Error ~code:"E002" "boom" in
  let w = Diag.make Diag.Warning ~code:"W040" "hmm" in
  let h = Diag.make Diag.Hint ~code:"H050" "fyi" in
  Alcotest.(check int) "clean" 0 (Diag.exit_code []);
  Alcotest.(check int) "hints only" 0 (Diag.exit_code [ h ]);
  Alcotest.(check int) "warnings" 2 (Diag.exit_code [ h; w ]);
  Alcotest.(check int) "errors win" 1 (Diag.exit_code [ w; e ])

let test_never_located_at_zero () =
  let d = Diag.make ~line:0 Diag.Error ~code:"E002" "x" in
  Alcotest.(check int) "line clamped to 1" 1 d.Diag.span.Diag.line;
  (* and across the whole corpus *)
  List.iter
    (fun path ->
      let text = read_file path in
      List.iter
        (fun (d : Diag.t) ->
          if d.Diag.span.Diag.line < 1 then
            Alcotest.failf "%s: diagnostic at line %d" path
              d.Diag.span.Diag.line)
        (check_diags path text))
    (corpus_files ())

let test_json_report () =
  let text = read_file (Filename.concat corpus_dir "syntax_multi.mdq") in
  let diags = (Md_parser.check_string ~file:"f.mdq" text).Md_parser.diags in
  let json = Diag.to_json ~file:"f.mdq" diags in
  let contains sub =
    let n = String.length sub and m = String.length json in
    let rec go i =
      i + n <= m && (String.sub json i n = sub || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun sub ->
      Alcotest.(check bool) (Printf.sprintf "json contains %s" sub) true
        (contains sub))
    [ "\"file\":\"f.mdq\""; "\"diagnostics\":["; "\"severity\":\"error\"";
      "\"code\":\"E002\""; "\"line\":2" ]

(* No input may crash the checkers: random fuzzing over a token-ish
   alphabet. *)
let test_fuzz_never_raises =
  QCheck.Test.make ~count:300 ~name:"checkers never raise"
    QCheck.(
      string_gen_of_size (Gen.int_range 0 60)
        (Gen.oneof
           [ Gen.printable;
             Gen.oneofl
               [ '('; ')'; '{'; '}'; '.'; ','; ':'; '-'; '?'; '!'; '"';
                 '%'; '>'; '='; '\n'; ' ' ] ]))
    (fun s ->
      ignore (Validate.check_string s);
      ignore (Mdqa_context.Md_parser.check_string s);
      true)

let suites =
  [ ( "diag.corpus",
      [ Alcotest.test_case "golden corpus" `Quick test_corpus;
        Alcotest.test_case "multi-error accumulation" `Quick test_multi_error;
        Alcotest.test_case "no escaping exceptions" `Quick
          test_corpus_never_raises;
        Alcotest.test_case "examples are clean" `Quick test_examples_clean;
        Alcotest.test_case "semantic errors carry real lines" `Quick
          test_error_lines ] );
    ( "diag.recovery",
      [ Alcotest.test_case "statement resync counts" `Quick
          test_recovery_counts;
        Alcotest.test_case "pathological inputs terminate" `Quick
          test_recovery_no_progress_loop ] );
    ( "diag.csv",
      [ Alcotest.test_case "row and column numbers" `Quick test_csv_row_col;
        Alcotest.test_case "empty input" `Quick test_csv_empty;
        Alcotest.test_case "clean CSV loads" `Quick test_csv_ok_roundtrip ] );
    ( "diag.presentation",
      [ Alcotest.test_case "exit-code convention" `Quick test_exit_codes;
        Alcotest.test_case "never located at line 0" `Quick
          test_never_located_at_zero;
        Alcotest.test_case "json report" `Quick test_json_report;
        QCheck_alcotest.to_alcotest test_fuzz_never_raises ] ) ]
