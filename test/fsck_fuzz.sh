#!/bin/sh
# Exhaustive single-byte corruption sweep for `mdqa store fsck`, end to
# end through the CLI.  For EVERY byte offset of the snapshot and of
# the journal, flip one bit and demand the documented contract:
#
#   - `store fsck --repair` exits 0 (repaired: a fresh store that
#     `store verify` accepts) or 1 (unrepairable, E032) — never any
#     other code, never a crash, never a hang;
#   - after a successful repair, `mdqa resume` completes the chase
#     (spot-checked on a stride: the repaired image holds real data,
#     not invented bytes);
#   - with the generation chain stripped, header damage is declared
#     unrepairable (exit 1, E032 in the JSON report) and the damaged
#     file is left byte-identical — evidence is never destroyed.
#
# Usage: fsck_fuzz.sh MDQA_EXE
set -u

exe="$1"
dir=$(mktemp -d "${TMPDIR:-/tmp}/mdqa_fsck_fuzz.XXXXXX")
trap 'rm -rf "$dir"' EXIT
status=0

fail() {
  echo "fsck_fuzz FAIL: $*" >&2
  status=1
}

# xor one bit into $1 at offset $2 — a guaranteed real corruption,
# unlike overwriting with a constant that might already be there
flip() {
  b=$(od -An -tu1 -j "$2" -N1 "$1" | tr -d ' \t')
  printf "\\$(printf '%03o' $((b ^ 1)))" \
    | dd of="$1" bs=1 seek="$2" conv=notrunc 2>/dev/null
}

# A store small enough that an O(bytes) sweep of CLI invocations stays
# fast, but with every section kind (program, instance, chase state)
# and labeled nulls in play.
prog="$dir/prog.dl"
{
  i=1
  while [ "$i" -le 5 ]; do
    echo "e($i, $((i + 1)))."
    i=$((i + 1))
  done
  echo 't(X, Y) :- e(X, Y).'
  echo 't(X, Z) :- t(X, Y), e(Y, Z).'
  echo 'a(tom).'
  echo 'p(X, Y) :- a(X).'
} > "$prog"

ck="$dir/ck.snap"
jn="$ck.journal"

# interrupt the chase so the journal holds live records, then let the
# generation chain form
timeout 60 "$exe" chase "$prog" --checkpoint "$ck" --max-steps 6 \
  >/dev/null 2>&1
[ -f "$ck" ] || { fail "no snapshot written"; exit 1; }
[ -f "$ck.1" ] || { fail "no previous generation written"; exit 1; }
[ -f "$jn" ] || { fail "no journal written"; exit 1; }

cp "$ck" "$dir/snap.orig"
cp "$ck.1" "$dir/gen.orig"
cp "$jn" "$dir/jn.orig"

restore() {
  cp "$dir/snap.orig" "$ck"
  cp "$dir/gen.orig" "$ck.1"
  cp "$dir/jn.orig" "$jn"
  rm -rf "$ck.d" "$ck.2"
}

# one corrupted offset: repair, then hold the contract
sweep_one() {
  # $1 = damaged file label, $2 = offset
  timeout 30 "$exe" store fsck "$ck" --repair >/dev/null 2>&1
  got=$?
  case "$got" in
  0)
    timeout 30 "$exe" store verify "$ck" >/dev/null 2>&1 \
      || fail "$1 byte $2: repaired store rejected by verify"
    if [ $(($2 % 29)) -eq 0 ]; then
      timeout 60 "$exe" resume "$ck" >/dev/null 2>&1 \
        || fail "$1 byte $2: repaired store did not resume"
    fi
    ;;
  1) ;; # unrepairable is an acceptable, honest answer
  124) fail "$1 byte $2: fsck --repair hung" ;;
  *) fail "$1 byte $2: fsck --repair exited $got (want 0 or 1)" ;;
  esac
}

snap_size=$(wc -c < "$ck")
off=0
while [ "$off" -lt "$snap_size" ]; do
  restore
  flip "$ck" "$off"
  sweep_one snapshot "$off"
  off=$((off + 1))
done

jn_size=$(wc -c < "$jn")
off=0
while [ "$off" -lt "$jn_size" ]; do
  restore
  flip "$jn" "$off"
  sweep_one journal "$off"
  off=$((off + 1))
done

# no clean copy anywhere: exit 1, E032 in the report, evidence intact
restore
rm -f "$ck.1" "$ck.2"
flip "$ck" 2
cp "$ck" "$dir/damaged.bin"
out=$(timeout 30 "$exe" store fsck "$ck" --repair --json 2>/dev/null)
got=$?
[ "$got" -eq 1 ] || fail "unrepairable store: fsck --repair exited $got, want 1"
case "$out" in
*E032*) ;;
*) fail "unrepairable store: no E032 in the JSON report" ;;
esac
cmp -s "$ck" "$dir/damaged.bin" \
  || fail "unrepairable store: repair modified the damaged evidence"
[ -d "$ck.d/quarantine" ] \
  && fail "unrepairable store: evidence was quarantined with no replacement"

[ "$status" -eq 0 ] && echo "fsck_fuzz: every corruption repaired or refused"
exit $status
