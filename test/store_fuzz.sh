#!/bin/sh
# Fault-injection sweep for the checkpoint store, end to end through the
# CLI: interrupt a checkpointed chase, resume it; corrupt the files with
# dd (truncation, bit damage, garbage temp files) and demand that
# `mdqa store verify` and `mdqa resume` always terminate with a
# meaningful exit code (0 clean / 2 truncated journal / 1 corrupt
# snapshot) — never a crash, never a hang.
#
# Usage: store_fuzz.sh MDQA_EXE
set -u

exe="$1"
dir=$(mktemp -d "${TMPDIR:-/tmp}/mdqa_store_fuzz.XXXXXX")
trap 'rm -rf "$dir"' EXIT
status=0

run() {
  # $1 = label, $2 = expected exit code(s), space-separated; rest = command
  label="$1"
  want="$2"
  shift 2
  timeout 60 "$@" >/dev/null 2>&1
  got=$?
  if [ "$got" -eq 124 ]; then
    echo "store_fuzz FAIL: $label hung (killed after 60s)" >&2
    status=1
    return
  fi
  for w in $want; do
    [ "$got" -eq "$w" ] && return
  done
  echo "store_fuzz FAIL: $label exited $got, want one of: $want" >&2
  status=1
}

# A chase long enough to interrupt mid-way: transitive closure over a
# chain, plus an existential rule so labeled nulls are in play.
prog="$dir/prog.dl"
{
  i=1
  while [ "$i" -le 40 ]; do
    echo "e($i, $((i + 1)))."
    i=$((i + 1))
  done
  echo 't(X, Y) :- e(X, Y).'
  echo 't(X, Z) :- t(X, Y), e(Y, Z).'
  echo 'a(tom).'
  echo 'p(X, Y) :- a(X).'
} > "$prog"

ck="$dir/ck.snap"

# 1. interrupted chase leaves a resumable store
run "interrupted checkpoint chase" 2 \
  "$exe" chase "$prog" --checkpoint "$ck" --max-steps 50
[ -f "$ck" ] || { echo "store_fuzz FAIL: no snapshot written" >&2; status=1; }
run "verify after interruption" "0 2" "$exe" store verify "$ck"
run "resume completes" 0 "$exe" resume "$ck"
run "verify after resume" 0 "$exe" store verify "$ck"
run "resume of a completed store" 0 "$exe" resume "$ck"

# 2. truncated journal: recovered from the valid prefix (warning, not error)
run "re-interrupt" 2 "$exe" chase "$prog" --checkpoint "$ck" --max-steps 50
jn="$ck.journal"
if [ -f "$jn" ]; then
  size=$(wc -c < "$jn")
  half=$((size / 2))
  dd if="$jn" of="$jn.cut" bs=1 count="$half" 2>/dev/null
  mv "$jn.cut" "$jn"
  run "verify with torn journal" "0 2" "$exe" store verify "$ck"
  run "resume with torn journal" 0 "$exe" resume "$ck"
fi

# 3. corrupted snapshot: detected, reported, exit 1 — never a crash
run "make store" 2 "$exe" chase "$prog" --checkpoint "$ck" --max-steps 50
size=$(wc -c < "$ck")
for off in 0 8 12 20 $((size / 2)) $((size - 2)); do
  cp "$ck" "$ck.orig"
  printf '\377' | dd of="$ck" bs=1 seek="$off" conv=notrunc 2>/dev/null
  run "verify with snapshot byte $off damaged" "1 0" "$exe" store verify "$ck"
  run "resume with snapshot byte $off damaged" "1 0" "$exe" resume "$ck"
  mv "$ck.orig" "$ck"
done

# 4. truncated snapshot at several prefixes
for frac in 4 2; do
  cp "$ck" "$ck.orig"
  dd if="$ck.orig" of="$ck" bs=1 count=$((size / frac)) 2>/dev/null
  run "verify with snapshot cut to 1/$frac" 1 "$exe" store verify "$ck"
  run "resume with snapshot cut to 1/$frac" 1 "$exe" resume "$ck"
  mv "$ck.orig" "$ck"
done

# 5. stale temp file from a crashed writer: ignored (hint only)
echo "garbage from a dead writer" > "$ck.tmp"
run "verify with stale temp" "0 2" "$exe" store verify "$ck"
run "resume with stale temp" 0 "$exe" resume "$ck"
rm -f "$ck.tmp"

# 6. missing / foreign stores
run "verify of a missing store" 1 "$exe" store verify "$dir/nothing.snap"
run "resume of a missing store" 1 "$exe" resume "$dir/nothing.snap"
echo "this is not a snapshot" > "$dir/foreign.snap"
run "verify of a foreign file" 1 "$exe" store verify "$dir/foreign.snap"
run "resume of a foreign file" 1 "$exe" resume "$dir/foreign.snap"

[ "$status" -eq 0 ] && echo "store_fuzz: all recoveries behaved"
exit $status
