#!/bin/sh
# Fault-injection sweep for the checkpoint store, end to end through the
# CLI: interrupt a checkpointed chase, resume it; corrupt the files with
# dd (truncation, bit damage, garbage temp files) and demand that
# `mdqa store verify`, `mdqa store fsck [--repair]` and `mdqa resume`
# always terminate with a meaningful exit code (0 clean / 2 salvageable
# / 1 unrepairable) — never a crash, never a hang — and that --repair
# hands back a verified store with the originals quarantined.
#
# Usage: store_fuzz.sh MDQA_EXE
set -u

exe="$1"
dir=$(mktemp -d "${TMPDIR:-/tmp}/mdqa_store_fuzz.XXXXXX")
trap 'rm -rf "$dir"' EXIT
status=0

run() {
  # $1 = label, $2 = expected exit code(s), space-separated; rest = command
  label="$1"
  want="$2"
  shift 2
  timeout 60 "$@" >/dev/null 2>&1
  got=$?
  if [ "$got" -eq 124 ]; then
    echo "store_fuzz FAIL: $label hung (killed after 60s)" >&2
    status=1
    return
  fi
  for w in $want; do
    [ "$got" -eq "$w" ] && return
  done
  echo "store_fuzz FAIL: $label exited $got, want one of: $want" >&2
  status=1
}

# A chase long enough to interrupt mid-way: transitive closure over a
# chain, plus an existential rule so labeled nulls are in play.
prog="$dir/prog.dl"
{
  i=1
  while [ "$i" -le 40 ]; do
    echo "e($i, $((i + 1)))."
    i=$((i + 1))
  done
  echo 't(X, Y) :- e(X, Y).'
  echo 't(X, Z) :- t(X, Y), e(Y, Z).'
  echo 'a(tom).'
  echo 'p(X, Y) :- a(X).'
} > "$prog"

ck="$dir/ck.snap"

# 1. interrupted chase leaves a resumable store
run "interrupted checkpoint chase" 2 \
  "$exe" chase "$prog" --checkpoint "$ck" --max-steps 50
[ -f "$ck" ] || { echo "store_fuzz FAIL: no snapshot written" >&2; status=1; }
run "verify after interruption" "0 2" "$exe" store verify "$ck"
run "resume completes" 0 "$exe" resume "$ck"
run "verify after resume" 0 "$exe" store verify "$ck"
run "resume of a completed store" 0 "$exe" resume "$ck"

# 2. truncated journal: recovered from the valid prefix (warning, not error)
run "re-interrupt" 2 "$exe" chase "$prog" --checkpoint "$ck" --max-steps 50
jn="$ck.journal"
if [ -f "$jn" ]; then
  size=$(wc -c < "$jn")
  half=$((size / 2))
  dd if="$jn" of="$jn.cut" bs=1 count="$half" 2>/dev/null
  mv "$jn.cut" "$jn"
  run "verify with torn journal" "0 2" "$exe" store verify "$ck"
  run "resume with torn journal" 0 "$exe" resume "$ck"
fi

# 3. corrupted snapshot: detected and reported — exit 2 now that the
#    generation chain keeps a clean previous image to salvage from
#    (exit 0 when the damaged byte happened to already be 0xFF)
run "make store" 2 "$exe" chase "$prog" --checkpoint "$ck" --max-steps 50
size=$(wc -c < "$ck")
for off in 0 8 12 20 $((size / 2)) $((size - 2)); do
  cp "$ck" "$ck.orig"
  printf '\377' | dd of="$ck" bs=1 seek="$off" conv=notrunc 2>/dev/null
  run "verify with snapshot byte $off damaged" "2 0" "$exe" store verify "$ck"
  run "resume with snapshot byte $off damaged" "1 0" "$exe" resume "$ck"
  mv "$ck.orig" "$ck"
done

# 4. truncated snapshot at several prefixes: salvageable, and resume
#    (which never consults generations) still refuses
for frac in 4 2; do
  cp "$ck" "$ck.orig"
  dd if="$ck.orig" of="$ck" bs=1 count=$((size / frac)) 2>/dev/null
  run "verify with snapshot cut to 1/$frac" 2 "$exe" store verify "$ck"
  run "resume with snapshot cut to 1/$frac" 1 "$exe" resume "$ck"
  mv "$ck.orig" "$ck"
done

# 5. stale temp file from a crashed writer: ignored (hint only)
echo "garbage from a dead writer" > "$ck.tmp"
run "verify with stale temp" "0 2" "$exe" store verify "$ck"
run "resume with stale temp" 0 "$exe" resume "$ck"
rm -f "$ck.tmp"

# 6. fsck --repair: a truncated snapshot is salvaged from the
#    generation chain, the repaired store verifies clean and resumes,
#    and the damaged original lands in quarantine
dd if="$ck" of="$ck.cut" bs=1 count=$((size / 2)) 2>/dev/null
mv "$ck.cut" "$ck"
run "fsck reports salvageable" 2 "$exe" store fsck "$ck"
run "fsck --repair salvages" 0 "$exe" store fsck "$ck" --repair
run "verify after repair" 0 "$exe" store verify "$ck"
run "fsck --json after repair" 0 "$exe" store fsck "$ck" --json
run "resume after repair" 0 "$exe" resume "$ck"
[ -d "$ck.d/quarantine" ] && [ -n "$(ls -A "$ck.d/quarantine")" ] || {
  echo "store_fuzz FAIL: repair left no quarantined evidence" >&2
  status=1
}

# 7. fsck --repair with no clean copy anywhere: exit 1 with E032 and
#    the damaged bytes left exactly where they were (evidence, not data)
rm -f "$ck.1" "$ck.2" "$ck.3"
printf '\377\376' | dd of="$ck" bs=1 seek=2 conv=notrunc 2>/dev/null
cp "$ck" "$ck.damaged"
run "fsck of an unrepairable store" 1 "$exe" store fsck "$ck"
run "fsck --repair of an unrepairable store" 1 "$exe" store fsck "$ck" --repair
run "fsck --repair --json of an unrepairable store" 1 \
  "$exe" store fsck "$ck" --repair --json
cmp -s "$ck" "$ck.damaged" || {
  echo "store_fuzz FAIL: repair touched unrepairable evidence" >&2
  status=1
}
rm -f "$ck.damaged"

# 8. missing / foreign stores
run "verify of a missing store" 1 "$exe" store verify "$dir/nothing.snap"
run "resume of a missing store" 1 "$exe" resume "$dir/nothing.snap"
echo "this is not a snapshot" > "$dir/foreign.snap"
run "verify of a foreign file" 1 "$exe" store verify "$dir/foreign.snap"
run "resume of a foreign file" 1 "$exe" resume "$dir/foreign.snap"

[ "$status" -eq 0 ] && echo "store_fuzz: all recoveries behaved"
exit $status
