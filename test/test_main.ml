let () =
  Alcotest.run "mdqa"
    (Test_relational.suites @ Test_datalog.suites @ Test_multidim.suites
    @ Test_hospital.suites @ Test_telecom.suites @ Test_extensions.suites
    @ Test_tutorial.suites @ Test_guard.suites @ Test_diag.suites
    @ Test_store.suites @ Test_server.suites @ Test_replication.suites
    @ Test_obs.suites)
