#!/bin/sh
# Chaos harness for `mdqa serve`: kill it mid-request, break its store,
# feed it garbage, oversize and slow-loris requests, overload it, soak
# it — and demand that every reply carries a status, the store is never
# corrupted, a restart answers identically, and SIGTERM drains cleanly.
#
# Usage: chaos_serve.sh MDQA_EXE
set -u

exe="$1"
dir=$(mktemp -d "${TMPDIR:-/tmp}/mdqa_chaos.XXXXXX")
trap 'kill -9 "${pid:-0}" 2>/dev/null; rm -rf "$dir"' EXIT

fail() {
  echo "chaos_serve FAIL: $1" >&2
  shift
  for f in "$@"; do
    echo "--- $f" >&2
    tail -40 "$f" >&2
  done
  exit 1
}

# A program with enough derived facts that queries do real work.
prog="$dir/prog.dl"
{
  i=1
  while [ "$i" -le 60 ]; do
    echo "e($i, $((i + 1)))."
    i=$((i + 1))
  done
  echo 't(X, Y) :- e(X, Y).'
  echo 't(X, Z) :- t(X, Y), e(Y, Z).'
} > "$prog"

sock="$dir/s.sock"
store="$dir/store.snap"
q='q(X, Y) :- t(X, Y)'

start_server() {
  # shellcheck disable=SC2086
  "$exe" serve "$prog" --socket "$sock" --store "$store" \
    --checkpoint-every 5 --read-timeout 1 --max-request-bytes 2048 \
    --drain-grace 5 $EXTRA_FLAGS 2>>"$dir/server.err" &
  pid=$!
  # wait for readiness: the retrying client backs off through ENOENT /
  # connection-refused while the listener comes up
  printf '{"kind":"ping"}\n' | timeout 30 "$exe" remote --retry "$sock" \
    > /dev/null 2>&1 || fail "server never became ready" "$dir/server.err"
}
EXTRA_FLAGS=""

# ---------------------------------------------------------------- baseline
start_server
"$exe" query --remote "$sock" -q "$q" > "$dir/baseline.out" 2>/dev/null
[ -s "$dir/baseline.out" ] || fail "no baseline answers" "$dir/server.err"

# ------------------------------------------- SIGKILL mid-request, restart
# Fire requests continuously and pull the plug mid-flight.
( while :; do printf '{"kind":"query","query":"%s"}\n' "$q"; done \
  | "$exe" remote "$sock" > /dev/null 2>&1 ) &
flood=$!
sleep 0.4
kill -9 "$pid" 2>/dev/null
wait "$pid" 2>/dev/null
kill "$flood" 2>/dev/null
wait "$flood" 2>/dev/null

# the store must never be corrupt, whatever the kill interrupted
timeout 60 "$exe" store verify "$store" > "$dir/verify1.out" 2>&1
v=$?
[ "$v" -eq 0 ] || [ "$v" -eq 2 ] \
  || fail "store verify exited $v after SIGKILL" "$dir/verify1.out"

# a restart (warm-started from that store) must answer byte-identically
start_server
"$exe" query --remote "$sock" -q "$q" > "$dir/restarted.out" 2>/dev/null
cmp -s "$dir/baseline.out" "$dir/restarted.out" \
  || fail "restart answers differ from baseline" \
       "$dir/baseline.out" "$dir/restarted.out"

# ------------------------------------------------- store fault injection
# Root ignores chmod -w, so break the snapshot path itself: a directory
# where the snapshot file should be makes every rename fail.
rm -f "$store"
mkdir "$store"
i=0
while [ "$i" -lt 25 ]; do
  printf '{"kind":"query","query":"%s"}\n' "$q"
  i=$((i + 1))
done | "$exe" remote "$sock" > "$dir/faulted.out" 2>&1 \
  || fail "server dropped requests during store faults" "$dir/server.err"
n=$(grep -c '"status":"complete"' "$dir/faulted.out")
[ "$n" -eq 25 ] \
  || fail "queries must stay complete while the store fails (got $n/25)" \
       "$dir/faulted.out" "$dir/server.err"
printf '{"kind":"health"}\n' | "$exe" remote "$sock" > "$dir/health_open.out"
grep -q '"state":"open"' "$dir/health_open.out" \
  || fail "breaker must trip open after repeated checkpoint failures" \
       "$dir/health_open.out" "$dir/server.err"

# the trip must be visible on the metrics endpoint as a gauge transition
timeout 30 "$exe" metrics --remote "$sock" > "$dir/metrics_open.out" 2>&1 \
  || fail "metrics scrape must work while the breaker is open" \
       "$dir/metrics_open.out" "$dir/server.err"
grep -q '^mdqa_server_breaker_state 1$' "$dir/metrics_open.out" \
  || fail "open breaker must read as mdqa_server_breaker_state 1" \
       "$dir/metrics_open.out"

# heal the disk; after the cooldown a half-open probe must re-close it
rmdir "$store"
sleep 1.2
i=0
while [ "$i" -lt 15 ]; do
  printf '{"kind":"query","query":"%s"}\n' "$q"
  i=$((i + 1))
  sleep 0.1
done | "$exe" remote "$sock" > /dev/null 2>&1
printf '{"kind":"health"}\n' | "$exe" remote "$sock" > "$dir/health_closed.out"
grep -q '"state":"closed"' "$dir/health_closed.out" \
  || fail "breaker must close again once the disk recovers" \
       "$dir/health_closed.out" "$dir/server.err"
[ -f "$store" ] || fail "healed store must be re-snapshotted" "$dir/server.err"
timeout 30 "$exe" metrics --remote "$sock" > "$dir/metrics_closed.out" 2>&1 \
  || fail "metrics scrape must work after the breaker closes" \
       "$dir/metrics_closed.out" "$dir/server.err"
grep -q '^mdqa_server_breaker_state 0$' "$dir/metrics_closed.out" \
  || fail "healed breaker must read as mdqa_server_breaker_state 0" \
       "$dir/metrics_closed.out"
trips=$(grep '^mdqa_server_breaker_trips ' "$dir/metrics_closed.out" \
  | awk '{print $2}')
[ "${trips:-0}" -ge 1 ] \
  || fail "breaker trips gauge must record the open (got ${trips:-none})" \
       "$dir/metrics_closed.out"

# ------------------------------- malformed, oversized, slow-loris probes
# malformed: an E024 reply, and the connection stays usable
printf 'this is not json\n{"kind":"ping"}\n' | "$exe" remote "$sock" \
  > "$dir/malformed.out" 2>&1
grep -q '"code":"E024"' "$dir/malformed.out" \
  || fail "malformed request must be answered E024" "$dir/malformed.out"
grep -q '"status":"complete"' "$dir/malformed.out" \
  || fail "connection must survive a malformed request" "$dir/malformed.out"

# oversized: E025, connection closed
{
  printf '{"kind":"query","query":"'
  i=0
  while [ "$i" -lt 300 ]; do
    printf 'xxxxxxxxxx'
    i=$((i + 1))
  done
  printf '"}\n'
} | "$exe" remote "$sock" > "$dir/oversized.out" 2>&1
grep -q '"code":"E025"' "$dir/oversized.out" \
  || fail "oversized request must be answered E025" "$dir/oversized.out"

# slow-loris: dribble bytes slower than --read-timeout; the server must
# cut the connection and keep serving everyone else
printf '{"kind":"query","query":"%s"}\n' "$q" \
  | timeout 30 "$exe" remote "$sock" --slow 0.05 > "$dir/loris.out" 2>&1
printf '{"kind":"ping"}\n' | "$exe" remote "$sock" > "$dir/after_loris.out" \
  || fail "server must survive a slow-loris client" "$dir/server.err"
grep -q '"status":"complete"' "$dir/after_loris.out" \
  || fail "server must keep answering after a slow-loris cut" \
       "$dir/after_loris.out"

# ------------------------------------------------------- overload shedding
# a burst beyond the admission queue must be shed with degraded:overload,
# never queued without bound and never dropped without a reply
kill -TERM "$pid" 2>/dev/null
wait "$pid" 2>/dev/null
EXTRA_FLAGS="--max-queue 4"
start_server
EXTRA_FLAGS=""
i=0
while [ "$i" -lt 60 ]; do
  printf '{"kind":"query","query":"%s","id":%d}\n' "$q" "$i"
  i=$((i + 1))
done | "$exe" remote "$sock" --burst > "$dir/burst.out" 2>&1
replies=$(grep -c '"status"' "$dir/burst.out")
[ "$replies" -eq 60 ] \
  || fail "every burst request needs a reply (got $replies/60)" \
       "$dir/burst.out" "$dir/server.err"
grep -q '"degraded":"overload"' "$dir/burst.out" \
  || fail "a 60-deep burst against a 4-deep queue must shed" "$dir/burst.out"
grep -q '"status":"complete"' "$dir/burst.out" \
  || fail "admitted burst requests must still be answered" "$dir/burst.out"

# ------------------------------------------------------------------- soak
# 500 mixed requests: valid queries, pings, health, malformed lines, and
# a store fault injected (and healed) along the way.
soak="$dir/soak.in"
i=0
while [ "$i" -lt 500 ]; do
  case $((i % 5)) in
    0) printf '{"kind":"query","query":"%s","id":%d}\n' "$q" "$i" ;;
    1) printf '{"kind":"ping","id":%d}\n' "$i" ;;
    2) printf '{"kind":"health","id":%d}\n' "$i" ;;
    3) printf 'garbage line %d\n' "$i" ;;
    4) printf '{"kind":"query","query":"broken(","id":%d}\n' "$i" ;;
  esac
  i=$((i + 1))
done > "$soak"
( sleep 0.5; rm -f "$store"; mkdir "$store"; sleep 1; rmdir "$store" ) &
faulter=$!
timeout 120 "$exe" remote "$sock" < "$soak" > "$dir/soak.out" 2>&1 \
  || fail "soak client failed" "$dir/soak.out" "$dir/server.err"
wait "$faulter" 2>/dev/null
replies=$(grep -c '"status"' "$dir/soak.out")
[ "$replies" -eq 500 ] \
  || fail "soak: got $replies/500 replies with a status" \
       "$dir/soak.out" "$dir/server.err"
if grep -Eq 'Fatal error|Raised at|Raised by' "$dir/server.err"; then
  fail "unhandled exception in server stderr during soak" "$dir/server.err"
fi
kill -0 "$pid" 2>/dev/null || fail "server died during soak" "$dir/server.err"

# ----------------------------------------- metrics against ground truth
# This server instance answered exactly 1 readiness ping, 60 burst
# requests and 500 soak requests; the exposition renders before its own
# reply is counted, so the per-status reply totals must sum to 561, the
# shed counter must equal the overload replies the clients actually saw,
# and nothing may have crashed.
timeout 30 "$exe" metrics --remote "$sock" > "$dir/metrics_soak.out" 2>&1 \
  || fail "metrics scrape must work after the soak" \
       "$dir/metrics_soak.out" "$dir/server.err"
answered=$(grep '^mdqa_server_replies_total' "$dir/metrics_soak.out" \
  | awk '{s += $2} END {printf "%d", s}')
[ "$answered" -eq 561 ] \
  || fail "reply totals must sum to 1+60+500=561 (got $answered)" \
       "$dir/metrics_soak.out"
crashed=$(grep '^mdqa_server_crashed_total ' "$dir/metrics_soak.out" \
  | awk '{print $2}')
[ "${crashed:-0}" -eq 0 ] \
  || fail "crashed-request counter must stay 0 (got $crashed)" \
       "$dir/metrics_soak.out" "$dir/server.err"
shed=$(grep '^mdqa_server_shed_total ' "$dir/metrics_soak.out" \
  | awk '{print $2}')
overloads=$(cat "$dir/burst.out" "$dir/soak.out" \
  | grep -c '"degraded":"overload"')
[ "${shed:-0}" -eq "$overloads" ] \
  || fail "shed counter ($shed) must match overload replies ($overloads)" \
       "$dir/metrics_soak.out"

# --------------------------------------------------------- graceful drain
kill -TERM "$pid"
wait "$pid" 2>/dev/null
drain_rc=$?
{ [ "$drain_rc" -eq 0 ] || [ "$drain_rc" -eq 2 ]; } \
  || fail "drain must exit 0 or 2, got $drain_rc" "$dir/server.err"
[ ! -e "$sock" ] || fail "socket file must be removed on drain"

# the drained store must be clean and a fresh server must still agree
timeout 60 "$exe" store verify "$store" > "$dir/verify2.out" 2>&1
v=$?
[ "$v" -eq 0 ] || [ "$v" -eq 2 ] \
  || fail "store verify exited $v after drain" "$dir/verify2.out"
start_server
"$exe" query --remote "$sock" -q "$q" > "$dir/final.out" 2>/dev/null
cmp -s "$dir/baseline.out" "$dir/final.out" \
  || fail "post-chaos answers differ from baseline" \
       "$dir/baseline.out" "$dir/final.out"
kill -TERM "$pid" 2>/dev/null
wait "$pid" 2>/dev/null

echo "chaos_serve: survived SIGKILL, store faults, garbage, slow-loris, overload and a 500-request soak"
exit 0
