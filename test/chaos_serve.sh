#!/bin/sh
# Chaos harness for `mdqa serve`: kill it mid-request, break its store,
# feed it garbage, oversize and slow-loris requests, overload it, soak
# it — and demand that every reply carries a status, the store is never
# corrupted, a restart answers identically, and SIGTERM drains cleanly.
#
# A second battery targets the supervised worker pool: failpoint-driven
# worker crashes (E029 + restart), SIGKILLed workers mid-burst, hung
# workers tripping the watchdog (W049), a kill-storm collapsing the
# pool (H054 refusals while the control plane stays up), and failpoint
# hit counters aggregated across workers into the parent's metrics.
#
# A third battery (repl-chaos) targets hot-standby replication: a
# standby syncs to byte-identical store files, serves W050-tagged
# stale reads, exports lag metrics, survives a repl.ship failpoint,
# refuses divergent stores with E030 — and when the primary is
# SIGKILLed under a failover-client burst, promotes itself with zero
# acknowledged-reply loss.
#
# A fourth battery (scrub-chaos) targets the online scrubber: a byte
# flipped under the live server is detected exactly once, trips the
# checkpoint breaker, is repaired from the generation chain, and the
# breaker heals — queries are answered throughout; a standby that
# fails scrub re-syncs from its primary.
#
# Usage: chaos_serve.sh MDQA_EXE
#
# CHAOS_WORKERS=N (default 0) additionally runs the *entire* baseline
# battery through an N-worker pool, proving the supervised path meets
# every contract the inline path does.
set -u

exe="$1"
dir=$(mktemp -d "${TMPDIR:-/tmp}/mdqa_chaos.XXXXXX")
trap 'kill -9 "${pid:-0}" 2>/dev/null; rm -rf "$dir"' EXIT

fail() {
  echo "chaos_serve FAIL: $1" >&2
  shift
  for f in "$@"; do
    echo "--- $f" >&2
    tail -40 "$f" >&2
  done
  exit 1
}

# A program with enough derived facts that queries do real work.
prog="$dir/prog.dl"
{
  i=1
  while [ "$i" -le 60 ]; do
    echo "e($i, $((i + 1)))."
    i=$((i + 1))
  done
  echo 't(X, Y) :- e(X, Y).'
  echo 't(X, Z) :- t(X, Y), e(Y, Z).'
} > "$prog"

sock="$dir/s.sock"
store="$dir/store.snap"
q='q(X, Y) :- t(X, Y)'

# CHAOS_WORKERS > 0 pushes every baseline phase through the worker pool.
CHAOS_WORKERS="${CHAOS_WORKERS:-0}"
WORKER_FLAGS=""
if [ "$CHAOS_WORKERS" -gt 0 ] 2>/dev/null; then
  WORKER_FLAGS="--workers $CHAOS_WORKERS --watchdog 10"
fi

start_server() {
  # shellcheck disable=SC2086
  "$exe" serve "$prog" --socket "$sock" --store "$store" \
    --checkpoint-every 5 --read-timeout 1 --max-request-bytes 2048 \
    --drain-grace 5 $WORKER_FLAGS $EXTRA_FLAGS 2>>"$dir/server.err" &
  pid=$!
  # wait for readiness: the retrying client backs off through ENOENT /
  # connection-refused while the listener comes up
  printf '{"kind":"ping"}\n' | timeout 30 "$exe" remote --retry "$sock" \
    > /dev/null 2>&1 || fail "server never became ready" "$dir/server.err"
}
EXTRA_FLAGS=""

# ---------------------------------------------------------------- baseline
start_server
"$exe" query --remote "$sock" -q "$q" > "$dir/baseline.out" 2>/dev/null
[ -s "$dir/baseline.out" ] || fail "no baseline answers" "$dir/server.err"

# ------------------------------------------- SIGKILL mid-request, restart
# Fire requests continuously and pull the plug mid-flight.
( while :; do printf '{"kind":"query","query":"%s"}\n' "$q"; done \
  | "$exe" remote "$sock" > /dev/null 2>&1 ) &
flood=$!
sleep 0.4
kill -9 "$pid" 2>/dev/null
wait "$pid" 2>/dev/null
kill "$flood" 2>/dev/null
wait "$flood" 2>/dev/null

# the store must never be corrupt, whatever the kill interrupted
timeout 60 "$exe" store verify "$store" > "$dir/verify1.out" 2>&1
v=$?
[ "$v" -eq 0 ] || [ "$v" -eq 2 ] \
  || fail "store verify exited $v after SIGKILL" "$dir/verify1.out"

# a restart (warm-started from that store) must answer byte-identically
start_server
"$exe" query --remote "$sock" -q "$q" > "$dir/restarted.out" 2>/dev/null
cmp -s "$dir/baseline.out" "$dir/restarted.out" \
  || fail "restart answers differ from baseline" \
       "$dir/baseline.out" "$dir/restarted.out"

# ------------------------------------------------- store fault injection
# Root ignores chmod -w, so break the snapshot path itself: a directory
# where the snapshot file should be makes every rename fail.
rm -f "$store"
mkdir "$store"
i=0
while [ "$i" -lt 25 ]; do
  printf '{"kind":"query","query":"%s"}\n' "$q"
  i=$((i + 1))
done | "$exe" remote "$sock" > "$dir/faulted.out" 2>&1 \
  || fail "server dropped requests during store faults" "$dir/server.err"
n=$(grep -c '"status":"complete"' "$dir/faulted.out")
[ "$n" -eq 25 ] \
  || fail "queries must stay complete while the store fails (got $n/25)" \
       "$dir/faulted.out" "$dir/server.err"
printf '{"kind":"health"}\n' | "$exe" remote "$sock" > "$dir/health_open.out"
grep -q '"state":"open"' "$dir/health_open.out" \
  || fail "breaker must trip open after repeated checkpoint failures" \
       "$dir/health_open.out" "$dir/server.err"

# the trip must be visible on the metrics endpoint as a gauge transition
timeout 30 "$exe" metrics --remote "$sock" > "$dir/metrics_open.out" 2>&1 \
  || fail "metrics scrape must work while the breaker is open" \
       "$dir/metrics_open.out" "$dir/server.err"
grep -q '^mdqa_server_breaker_state 1$' "$dir/metrics_open.out" \
  || fail "open breaker must read as mdqa_server_breaker_state 1" \
       "$dir/metrics_open.out"

# heal the disk; after the cooldown a half-open probe must re-close it
rmdir "$store"
sleep 1.2
i=0
while [ "$i" -lt 15 ]; do
  printf '{"kind":"query","query":"%s"}\n' "$q"
  i=$((i + 1))
  sleep 0.1
done | "$exe" remote "$sock" > /dev/null 2>&1
printf '{"kind":"health"}\n' | "$exe" remote "$sock" > "$dir/health_closed.out"
grep -q '"state":"closed"' "$dir/health_closed.out" \
  || fail "breaker must close again once the disk recovers" \
       "$dir/health_closed.out" "$dir/server.err"
[ -f "$store" ] || fail "healed store must be re-snapshotted" "$dir/server.err"
timeout 30 "$exe" metrics --remote "$sock" > "$dir/metrics_closed.out" 2>&1 \
  || fail "metrics scrape must work after the breaker closes" \
       "$dir/metrics_closed.out" "$dir/server.err"
grep -q '^mdqa_server_breaker_state 0$' "$dir/metrics_closed.out" \
  || fail "healed breaker must read as mdqa_server_breaker_state 0" \
       "$dir/metrics_closed.out"
trips=$(grep '^mdqa_server_breaker_trips ' "$dir/metrics_closed.out" \
  | awk '{print $2}')
[ "${trips:-0}" -ge 1 ] \
  || fail "breaker trips gauge must record the open (got ${trips:-none})" \
       "$dir/metrics_closed.out"

# ------------------------------- malformed, oversized, slow-loris probes
# malformed: an E024 reply, and the connection stays usable
printf 'this is not json\n{"kind":"ping"}\n' | "$exe" remote "$sock" \
  > "$dir/malformed.out" 2>&1
grep -q '"code":"E024"' "$dir/malformed.out" \
  || fail "malformed request must be answered E024" "$dir/malformed.out"
grep -q '"status":"complete"' "$dir/malformed.out" \
  || fail "connection must survive a malformed request" "$dir/malformed.out"

# oversized: E025, connection closed
{
  printf '{"kind":"query","query":"'
  i=0
  while [ "$i" -lt 300 ]; do
    printf 'xxxxxxxxxx'
    i=$((i + 1))
  done
  printf '"}\n'
} | "$exe" remote "$sock" > "$dir/oversized.out" 2>&1
grep -q '"code":"E025"' "$dir/oversized.out" \
  || fail "oversized request must be answered E025" "$dir/oversized.out"

# slow-loris: dribble bytes slower than --read-timeout; the server must
# cut the connection and keep serving everyone else
printf '{"kind":"query","query":"%s"}\n' "$q" \
  | timeout 30 "$exe" remote "$sock" --slow 0.05 > "$dir/loris.out" 2>&1
printf '{"kind":"ping"}\n' | "$exe" remote "$sock" > "$dir/after_loris.out" \
  || fail "server must survive a slow-loris client" "$dir/server.err"
grep -q '"status":"complete"' "$dir/after_loris.out" \
  || fail "server must keep answering after a slow-loris cut" \
       "$dir/after_loris.out"

# ------------------------------------------------------- overload shedding
# a burst beyond the admission queue must be shed with degraded:overload,
# never queued without bound and never dropped without a reply
kill -TERM "$pid" 2>/dev/null
wait "$pid" 2>/dev/null
EXTRA_FLAGS="--max-queue 4"
start_server
EXTRA_FLAGS=""
i=0
while [ "$i" -lt 60 ]; do
  printf '{"kind":"query","query":"%s","id":%d}\n' "$q" "$i"
  i=$((i + 1))
done | "$exe" remote "$sock" --burst > "$dir/burst.out" 2>&1
replies=$(grep -c '"status"' "$dir/burst.out")
[ "$replies" -eq 60 ] \
  || fail "every burst request needs a reply (got $replies/60)" \
       "$dir/burst.out" "$dir/server.err"
grep -q '"degraded":"overload"' "$dir/burst.out" \
  || fail "a 60-deep burst against a 4-deep queue must shed" "$dir/burst.out"
grep -q '"status":"complete"' "$dir/burst.out" \
  || fail "admitted burst requests must still be answered" "$dir/burst.out"

# ------------------------------------------------------------------- soak
# 500 mixed requests: valid queries, pings, health, malformed lines, and
# a store fault injected (and healed) along the way.
soak="$dir/soak.in"
i=0
while [ "$i" -lt 500 ]; do
  case $((i % 5)) in
    0) printf '{"kind":"query","query":"%s","id":%d}\n' "$q" "$i" ;;
    1) printf '{"kind":"ping","id":%d}\n' "$i" ;;
    2) printf '{"kind":"health","id":%d}\n' "$i" ;;
    3) printf 'garbage line %d\n' "$i" ;;
    4) printf '{"kind":"query","query":"broken(","id":%d}\n' "$i" ;;
  esac
  i=$((i + 1))
done > "$soak"
( sleep 0.5; rm -f "$store"; mkdir "$store"; sleep 1; rmdir "$store" ) &
faulter=$!
timeout 120 "$exe" remote "$sock" < "$soak" > "$dir/soak.out" 2>&1 \
  || fail "soak client failed" "$dir/soak.out" "$dir/server.err"
wait "$faulter" 2>/dev/null
replies=$(grep -c '"status"' "$dir/soak.out")
[ "$replies" -eq 500 ] \
  || fail "soak: got $replies/500 replies with a status" \
       "$dir/soak.out" "$dir/server.err"
if grep -Eq 'Fatal error|Raised at|Raised by' "$dir/server.err"; then
  fail "unhandled exception in server stderr during soak" "$dir/server.err"
fi
kill -0 "$pid" 2>/dev/null || fail "server died during soak" "$dir/server.err"

# ----------------------------------------- metrics against ground truth
# This server instance answered exactly 1 readiness ping, 60 burst
# requests and 500 soak requests; the exposition renders before its own
# reply is counted, so the per-status reply totals must sum to 561, the
# shed counter must equal the overload replies the clients actually saw,
# and nothing may have crashed.
timeout 30 "$exe" metrics --remote "$sock" > "$dir/metrics_soak.out" 2>&1 \
  || fail "metrics scrape must work after the soak" \
       "$dir/metrics_soak.out" "$dir/server.err"
answered=$(grep '^mdqa_server_replies_total' "$dir/metrics_soak.out" \
  | awk '{s += $2} END {printf "%d", s}')
[ "$answered" -eq 561 ] \
  || fail "reply totals must sum to 1+60+500=561 (got $answered)" \
       "$dir/metrics_soak.out"
crashed=$(grep '^mdqa_server_crashed_total ' "$dir/metrics_soak.out" \
  | awk '{print $2}')
[ "${crashed:-0}" -eq 0 ] \
  || fail "crashed-request counter must stay 0 (got $crashed)" \
       "$dir/metrics_soak.out" "$dir/server.err"
shed=$(grep '^mdqa_server_shed_total ' "$dir/metrics_soak.out" \
  | awk '{print $2}')
overloads=$(cat "$dir/burst.out" "$dir/soak.out" \
  | grep -c '"degraded":"overload"')
[ "${shed:-0}" -eq "$overloads" ] \
  || fail "shed counter ($shed) must match overload replies ($overloads)" \
       "$dir/metrics_soak.out"

# --------------------------------------------------------- graceful drain
kill -TERM "$pid"
wait "$pid" 2>/dev/null
drain_rc=$?
{ [ "$drain_rc" -eq 0 ] || [ "$drain_rc" -eq 2 ]; } \
  || fail "drain must exit 0 or 2, got $drain_rc" "$dir/server.err"
[ ! -e "$sock" ] || fail "socket file must be removed on drain"

# the drained store must be clean and a fresh server must still agree
timeout 60 "$exe" store verify "$store" > "$dir/verify2.out" 2>&1
v=$?
[ "$v" -eq 0 ] || [ "$v" -eq 2 ] \
  || fail "store verify exited $v after drain" "$dir/verify2.out"
start_server
"$exe" query --remote "$sock" -q "$q" > "$dir/final.out" 2>/dev/null
cmp -s "$dir/baseline.out" "$dir/final.out" \
  || fail "post-chaos answers differ from baseline" \
       "$dir/baseline.out" "$dir/final.out"
kill -TERM "$pid" 2>/dev/null
wait "$pid" 2>/dev/null

# ======================================================================
# Supervised worker-pool battery.  Fresh servers per phase, no store:
# these phases target the supervisor, not checkpointing.
# ======================================================================
werr="$dir/worker.err"

start_pool() {
  # $1 = MDQA_FAILPOINTS spec ("" for none); the rest are serve flags
  fpspec="$1"
  shift
  MDQA_FAILPOINTS="$fpspec" "$exe" serve "$prog" --socket "$sock" \
    --drain-grace 5 "$@" 2>>"$werr" &
  pid=$!
  printf '{"kind":"ping"}\n' | timeout 30 "$exe" remote --retry "$sock" \
    > /dev/null 2>&1 || fail "pool server never became ready" "$werr"
}

stop_pool() {
  kill -TERM "$pid" 2>/dev/null
  wait "$pid" 2>/dev/null
  rc=$?
  { [ "$rc" -eq 0 ] || [ "$rc" -eq 2 ]; } \
    || fail "pool drain must exit 0 or 2, got $rc" "$werr"
}

queries() {
  i=0
  while [ "$i" -lt "$1" ]; do
    printf '{"kind":"query","query":"%s","id":%d}\n' "$q" "$i"
    i=$((i + 1))
  done
}

health_field() {
  printf '{"kind":"health"}\n' | "$exe" remote "$sock" 2>/dev/null \
    | sed -n "s/.*\"$1\":\([0-9]*\).*/\1/p" | head -1
}

# ------------------------------- W1: scripted crashes, E029, restarts
# Every worker's third request aborts the worker (hit counters are
# per-process, so each fresh worker crashes on *its* third request).
# Each crash costs exactly one E029 reply; the pool keeps answering.
start_pool 'worker.request=crash@3' --workers 4 --watchdog 10
queries 40 | timeout 60 "$exe" remote "$sock" > "$dir/w1.out" 2>&1
replies=$(grep -c '"status"' "$dir/w1.out")
[ "$replies" -eq 40 ] \
  || fail "W1: every request needs a reply (got $replies/40)" \
       "$dir/w1.out" "$werr"
grep -q '"code":"E029"' "$dir/w1.out" \
  || fail "W1: a crash mid-request must be answered E029" "$dir/w1.out"
grep -q '"status":"complete"' "$dir/w1.out" \
  || fail "W1: the pool must keep completing queries between crashes" \
       "$dir/w1.out"
restarts=$(health_field restarts)
[ "${restarts:-0}" -ge 1 ] \
  || fail "W1: crashed workers must be restarted (restarts=${restarts:-none})" \
       "$werr"
# the retrying client absorbs worker crashes entirely: same answers as
# the pre-chaos baseline, exit 0, no E029 surfacing to the caller
"$exe" query --remote "$sock" -q "$q" > "$dir/w1_retry.out" 2>/dev/null \
  || fail "W1: retrying client must absorb a worker crash" \
       "$dir/w1_retry.out" "$werr"
cmp -s "$dir/baseline.out" "$dir/w1_retry.out" \
  || fail "W1: answers after crash-retry differ from baseline" \
       "$dir/baseline.out" "$dir/w1_retry.out"
stop_pool

# --------------------------- W2: SIGKILL k of N workers mid-burst
if command -v pgrep > /dev/null 2>&1; then
  start_pool '' --workers 4 --watchdog 10
  queries 200 | timeout 60 "$exe" remote "$sock" --burst > "$dir/w2.out" 2>&1 &
  burst=$!
  sleep 0.2
  kids=$(pgrep -P "$pid" | head -2)
  # shellcheck disable=SC2086
  [ -n "$kids" ] && kill -9 $kids 2>/dev/null
  wait "$burst" 2>/dev/null
  replies=$(grep -c '"status"' "$dir/w2.out")
  [ "$replies" -eq 200 ] \
    || fail "W2: SIGKILL mid-burst must not lose replies (got $replies/200)" \
         "$dir/w2.out" "$werr"
  kill -0 "$pid" 2>/dev/null \
    || fail "W2: the parent must survive worker SIGKILLs" "$werr"
  sleep 0.5
  restarts=$(health_field restarts)
  [ "${restarts:-0}" -ge 1 ] \
    || fail "W2: SIGKILLed workers must restart (restarts=${restarts:-none})" \
         "$werr"
  alive=$(health_field alive)
  [ "${alive:-0}" -eq 4 ] \
    || fail "W2: the pool must heal back to 4 alive (got ${alive:-none})" \
         "$werr"
  stop_pool
else
  echo "chaos_serve: pgrep unavailable, skipping W2 (worker SIGKILL)" >&2
fi

# ----------------------------- W3: hung worker tripped by the watchdog
# Every fresh worker's first request hangs 30s; the 2s watchdog must
# SIGKILL it and answer W049 long before the client's 15s patience.
start_pool 'worker.request=hang:30@1' --workers 2 --watchdog 2
printf '{"kind":"query","query":"%s","id":0}\n' "$q" \
  | timeout 15 "$exe" remote "$sock" > "$dir/w3.out" 2>&1
grep -q '"code":"W049"' "$dir/w3.out" \
  || fail "W3: a hung worker must be answered W049 within the deadline" \
       "$dir/w3.out" "$werr"
printf '{"kind":"ping"}\n' | timeout 10 "$exe" remote "$sock" \
  > "$dir/w3_ping.out" 2>&1
grep -q '"status":"complete"' "$dir/w3_ping.out" \
  || fail "W3: the control plane must answer during a hang" \
       "$dir/w3_ping.out" "$werr"
sleep 0.3
kills=$(health_field watchdog_kills)
[ "${kills:-0}" -ge 1 ] \
  || fail "W3: watchdog_kills must count the kill (got ${kills:-none})" "$werr"
stop_pool

# -------------------- W4: kill-storm collapses the pool to H054 refusals
# Every dispatched request crashes its worker.  Nothing completes, each
# request is answered E029 or refused H054, the parent keeps answering
# pings, and restarts stay bounded by requests + pool size.
start_pool 'worker.request=crash' --workers 2 --watchdog 10
queries 20 | timeout 60 "$exe" remote "$sock" --burst > "$dir/w4.out" 2>&1
replies=$(grep -c '"status"' "$dir/w4.out")
[ "$replies" -eq 20 ] \
  || fail "W4: the storm must not lose replies (got $replies/20)" \
       "$dir/w4.out" "$werr"
grep -q '"code":"E029"' "$dir/w4.out" \
  || fail "W4: dispatched requests must surface E029" "$dir/w4.out"
grep -q '"code":"H054"' "$dir/w4.out" \
  || fail "W4: a dead pool must refuse queued queries with H054" "$dir/w4.out"
if grep -q '"status":"complete"' "$dir/w4.out"; then
  fail "W4: nothing can complete when every request crashes its worker" \
    "$dir/w4.out"
fi
printf '{"kind":"ping"}\n' | timeout 10 "$exe" remote "$sock" \
  > "$dir/w4_ping.out" 2>&1
grep -q '"status":"complete"' "$dir/w4_ping.out" \
  || fail "W4: the parent must answer pings through the storm" \
       "$dir/w4_ping.out" "$werr"
restarts=$(health_field restarts)
[ "${restarts:-0}" -le 22 ] \
  || fail "W4: restarts must stay bounded (got ${restarts:-none} > 22)" "$werr"
stop_pool

# --------------- W5: worker failpoint hits aggregate into parent metrics
# delay:10 fires on every worker request without failing it; the hit
# counters piggybacked on reply envelopes must sum to exactly the
# number of pooled queries in the parent's exposition.
start_pool 'worker.request=delay:10' --workers 2 --watchdog 10
queries 6 | timeout 30 "$exe" remote "$sock" > "$dir/w5.out" 2>&1
n=$(grep -c '"status":"complete"' "$dir/w5.out")
[ "$n" -eq 6 ] \
  || fail "W5: delayed requests must still complete (got $n/6)" \
       "$dir/w5.out" "$werr"
timeout 30 "$exe" metrics --remote "$sock" > "$dir/w5_metrics.out" 2>&1 \
  || fail "W5: metrics scrape failed" "$dir/w5_metrics.out" "$werr"
grep -q 'mdqa_failpoint_hits_total{name="worker.request"} 6' \
  "$dir/w5_metrics.out" \
  || fail "W5: worker failpoint hits must aggregate to 6 in parent metrics" \
       "$dir/w5_metrics.out"
stop_pool

# ------------------------------ W6: degenerate 1-worker pool, clean drain
start_pool '' --workers 1
{
  i=0
  while [ "$i" -lt 20 ]; do
    case $((i % 4)) in
      0 | 1) printf '{"kind":"query","query":"%s","id":%d}\n' "$q" "$i" ;;
      2) printf '{"kind":"ping","id":%d}\n' "$i" ;;
      3) printf '{"kind":"health","id":%d}\n' "$i" ;;
    esac
    i=$((i + 1))
  done
} | timeout 30 "$exe" remote "$sock" > "$dir/w6.out" 2>&1
replies=$(grep -c '"status"' "$dir/w6.out")
[ "$replies" -eq 20 ] \
  || fail "W6: got $replies/20 replies from a 1-worker pool" \
       "$dir/w6.out" "$werr"
"$exe" query --remote "$sock" -q "$q" > "$dir/w6_q.out" 2>/dev/null
cmp -s "$dir/baseline.out" "$dir/w6_q.out" \
  || fail "W6: pooled answers differ from the inline baseline" \
       "$dir/baseline.out" "$dir/w6_q.out"
stop_pool
[ "$rc" -eq 0 ] \
  || fail "W6: a clean pooled load must drain to exit 0 (got $rc)" "$werr"

if grep -Eq 'Fatal error|Raised at|Raised by' "$werr"; then
  fail "unhandled exception in server stderr during the worker battery" "$werr"
fi

# ======================================================================
# Replication battery (repl-chaos): a hot standby syncs byte-identically,
# serves stale-tagged reads, survives ship failpoints, refuses divergent
# stores, and — the drill — takes over with zero acknowledged-reply loss
# when the primary is SIGKILLed mid-burst.
# ======================================================================
psock="$dir/p.sock"; ssock="$dir/repl_s.sock"
pstore="$dir/p.snap"; sstore="$dir/repl_s.snap"
perr="$dir/primary.err"; serr="$dir/standby.err"
trap 'kill -9 "${pid:-0}" "${ppid:-0}" "${spid:-0}" 2>/dev/null; rm -rf "$dir"' EXIT

start_primary() {
  # $1 = MDQA_FAILPOINTS spec ("" for none)
  MDQA_FAILPOINTS="$1" "$exe" serve "$prog" --socket "$psock" \
    --store "$pstore" --checkpoint-every 5 --drain-grace 5 2>>"$perr" &
  ppid=$!
  printf '{"kind":"ping"}\n' | timeout 30 "$exe" remote --retry "$psock" \
    > /dev/null 2>&1 || fail "replication primary never became ready" "$perr"
}

start_standby() {
  "$exe" serve --socket "$ssock" --store "$sstore" --replica-of "$psock" \
    --repl-interval 0.2 --promote-after 4 --drain-grace 5 2>>"$serr" &
  spid=$!
  # readiness implies the initial sync completed: the standby only
  # listens once its store matches the primary's
  printf '{"kind":"ping"}\n' | timeout 30 "$exe" remote --retry "$ssock" \
    > /dev/null 2>&1 || fail "standby never became ready" "$serr" "$perr"
}

stop_rc() {
  kill -TERM "$1" 2>/dev/null
  wait "$1" 2>/dev/null
  rc=$?
  { [ "$rc" -eq 0 ] || [ "$rc" -eq 2 ]; } \
    || fail "replication drain must exit 0 or 2, got $rc" "$perr" "$serr"
}

# ---------------- R1: sync, byte-identity, stale reads, lag visibility
start_primary ''
"$exe" query --remote "$psock" -q "$q" > "$dir/repl_baseline.out" 2>/dev/null
[ -s "$dir/repl_baseline.out" ] || fail "no primary baseline" "$perr"
start_standby

# byte-identical store files — checked BEFORE any promotion, since a
# promoted standby rewrites its snapshot with a forced checkpoint
cmp -s "$pstore" "$sstore" \
  || fail "standby snapshot must be byte-identical to the primary's" "$serr"
if [ -f "$pstore.journal" ] && [ -s "$pstore.journal" ]; then
  cmp -s "$pstore.journal" "$sstore.journal" \
    || fail "standby journal must be byte-identical to the primary's" "$serr"
fi

# reads on the standby answer complete, tagged as stale (W050)
printf '{"kind":"query","query":"%s"}\n' "$q" \
  | timeout 30 "$exe" remote "$ssock" > "$dir/repl_stale.out" 2>&1
grep -q '"status":"complete"' "$dir/repl_stale.out" \
  || fail "standby must answer reads" "$dir/repl_stale.out" "$serr"
grep -q '"warning":"W050"' "$dir/repl_stale.out" \
  || fail "standby reads must carry the W050 stale tag" "$dir/repl_stale.out"
"$exe" query --remote "$ssock" -q "$q" > "$dir/repl_s_q.out" 2>/dev/null
cmp -s "$dir/repl_baseline.out" "$dir/repl_s_q.out" \
  || fail "standby answers differ from the primary's" \
       "$dir/repl_baseline.out" "$dir/repl_s_q.out"

# the standby is not a ship source (E031) and reports its role
printf '{"kind":"repl.fetch","what":"snapshot","offset":0,"len":64,"epoch":0}\n' \
  | timeout 30 "$exe" remote "$ssock" > "$dir/repl_fetch_s.out" 2>&1
grep -q '"code":"E031"' "$dir/repl_fetch_s.out" \
  || fail "a standby must refuse repl.fetch with E031" "$dir/repl_fetch_s.out"
printf '{"kind":"health"}\n' | timeout 30 "$exe" remote "$ssock" \
  > "$dir/repl_health_s.out" 2>&1
grep -q '"role":"standby"' "$dir/repl_health_s.out" \
  || fail "standby health must report role standby" "$dir/repl_health_s.out"

# replication lag is exported on the standby's metrics endpoint
timeout 30 "$exe" metrics --remote "$ssock" > "$dir/repl_metrics_s.out" 2>&1 \
  || fail "standby metrics scrape failed" "$dir/repl_metrics_s.out" "$serr"
grep -q '^mdqa_replication_lag_bytes ' "$dir/repl_metrics_s.out" \
  || fail "standby must export mdqa_replication_lag_bytes" \
       "$dir/repl_metrics_s.out"
grep -q '^mdqa_replication_role 1$' "$dir/repl_metrics_s.out" \
  || fail "an unpromoted standby must export role gauge 1" \
       "$dir/repl_metrics_s.out"

# -------------- R2: the drill — SIGKILL the primary under failover load
queries 80 | timeout 120 "$exe" remote --retry "$psock,$ssock" \
  > "$dir/repl_burst.out" 2>"$dir/repl_burst.err" &
burst=$!
sleep 0.4
kill -9 "$ppid" 2>/dev/null
wait "$ppid" 2>/dev/null
wait "$burst" 2>/dev/null
replies=$(grep -c '"status"' "$dir/repl_burst.out")
[ "$replies" -eq 80 ] \
  || fail "failover burst lost acknowledged replies (got $replies/80)" \
       "$dir/repl_burst.out" "$dir/repl_burst.err" "$serr"
errors=$(grep -c '"status":"error"' "$dir/repl_burst.out")
[ "$errors" -eq 0 ] \
  || fail "failover burst must not surface errors (got $errors)" \
       "$dir/repl_burst.out"

# the standby must detect the loss and promote itself
i=0
while [ "$i" -lt 100 ]; do
  printf '{"kind":"health"}\n' | timeout 10 "$exe" remote "$ssock" \
    > "$dir/repl_health_p.out" 2>/dev/null
  grep -q '"promoted":true' "$dir/repl_health_p.out" && break
  i=$((i + 1))
  sleep 0.2
done
grep -q '"promoted":true' "$dir/repl_health_p.out" \
  || fail "standby never promoted after primary loss" \
       "$dir/repl_health_p.out" "$serr"

# `mdqa promote` is idempotent on an already-promoted server
timeout 30 "$exe" promote --remote "$ssock" > "$dir/repl_promote.out" 2>&1 \
  || fail "mdqa promote must exit 0 on a promoted server" \
       "$dir/repl_promote.out" "$serr"

# promoted: answers untagged, role gauge 2, store verifies clean
printf '{"kind":"query","query":"%s"}\n' "$q" \
  | timeout 30 "$exe" remote "$ssock" > "$dir/repl_fresh.out" 2>&1
grep -q '"status":"complete"' "$dir/repl_fresh.out" \
  || fail "promoted standby must answer" "$dir/repl_fresh.out" "$serr"
if grep -q '"warning":"W050"' "$dir/repl_fresh.out"; then
  fail "a promoted standby must not tag reads stale" "$dir/repl_fresh.out"
fi
"$exe" query --remote "$ssock" -q "$q" > "$dir/repl_final.out" 2>/dev/null
cmp -s "$dir/repl_baseline.out" "$dir/repl_final.out" \
  || fail "promoted standby answers differ from the old primary's" \
       "$dir/repl_baseline.out" "$dir/repl_final.out"
timeout 30 "$exe" metrics --remote "$ssock" > "$dir/repl_metrics_p.out" 2>&1
grep -q '^mdqa_replication_role 2$' "$dir/repl_metrics_p.out" \
  || fail "a promoted standby must export role gauge 2" \
       "$dir/repl_metrics_p.out"
stop_rc "$spid"
timeout 60 "$exe" store verify "$sstore" > "$dir/repl_verify.out" 2>&1
v=$?
[ "$v" -eq 0 ] || [ "$v" -eq 2 ] \
  || fail "promoted standby store verify exited $v" "$dir/repl_verify.out"

# ---------------- R3: ship failpoint — the sync retries through E027
rm -f "$pstore" "$pstore.journal" "$sstore" "$sstore.journal"
start_primary 'repl.ship=err@1'
start_standby
timeout 30 "$exe" metrics --remote "$psock" > "$dir/repl_fp.out" 2>&1
grep -q 'mdqa_failpoint_hits_total{name="repl.ship"}' "$dir/repl_fp.out" \
  || fail "repl.ship failpoint must fire and be counted" "$dir/repl_fp.out"
"$exe" query --remote "$ssock" -q "$q" > "$dir/repl_fp_q.out" 2>/dev/null
cmp -s "$dir/repl_baseline.out" "$dir/repl_fp_q.out" \
  || fail "standby synced through the failpoint must answer the baseline" \
       "$dir/repl_baseline.out" "$dir/repl_fp_q.out"
stop_rc "$spid"
stop_rc "$ppid"

# ---------------- R4: divergence — a foreign store is refused with E030
prog2="$dir/prog2.dl"
printf 'f(1).\ng(X) :- f(X).\n' > "$prog2"
"$exe" chase "$prog2" --checkpoint "$dir/div.snap" > /dev/null 2>&1 \
  || fail "divergent checkpoint chase failed"
start_primary ''
timeout 30 "$exe" serve --socket "$dir/div.sock" --store "$dir/div.snap" \
  --replica-of "$psock" > "$dir/repl_div.out" 2>&1
drc=$?
[ "$drc" -ne 0 ] || fail "a divergent standby must refuse to start" \
  "$dir/repl_div.out"
grep -q 'E030' "$dir/repl_div.out" \
  || fail "divergence must be reported as E030" "$dir/repl_div.out"
stop_rc "$ppid"

for f in "$perr" "$serr"; do
  if grep -Eq 'Fatal error|Raised at|Raised by' "$f"; then
    fail "unhandled exception in replication battery stderr" "$f"
  fi
done

# ======================================================================
# Scrub battery (scrub-chaos): `--scrub-interval` re-verifies the store
# CRCs from the select loop.  A byte flipped under the running server
# is detected (exactly once — findings deduplicate), trips the
# checkpoint breaker, is repaired from the generation chain on the next
# scrub tick, and the breaker heals — while every query keeps being
# answered.  A standby that fails scrub re-syncs from its primary.
# ======================================================================
scsock="$dir/scrub.sock"; scstore="$dir/scrub.snap"
scerr="$dir/scrub.err"
trap 'kill -9 "${pid:-0}" "${ppid:-0}" "${spid:-0}" "${scpid:-0}" 2>/dev/null; rm -rf "$dir"' EXIT

# xor one bit into $1 at offset $2 (a guaranteed change, unlike
# overwriting with a constant)
flipb() {
  b=$(od -An -tu1 -j "$2" -N1 "$1" | tr -d ' \t')
  printf "\\$(printf '%03o' $((b ^ 1)))" \
    | dd of="$1" bs=1 seek="$2" conv=notrunc 2>/dev/null
}

scrub_metric() {
  # $1 = metric name; prints its value (0 when absent)
  timeout 30 "$exe" metrics --remote "$scsock" 2>/dev/null \
    | awk -v m="$1" '$1 == m { print $2; found = 1 } END { if (!found) print 0 }'
}

"$exe" serve "$prog" --socket "$scsock" --store "$scstore" \
  --checkpoint-every 5 --scrub-interval 0.2 --drain-grace 5 2>>"$scerr" &
scpid=$!
printf '{"kind":"ping"}\n' | timeout 30 "$exe" remote --retry "$scsock" \
  > /dev/null 2>&1 || fail "scrub server never became ready" "$scerr"
"$exe" query --remote "$scsock" -q "$q" > "$dir/scrub_baseline.out" 2>/dev/null
[ -s "$dir/scrub_baseline.out" ] || fail "no scrub baseline" "$scerr"

# force a periodic checkpoint so the generation chain exists to salvage
# from (rotation needs a second snapshot write)
i=0
while [ "$i" -lt 6 ]; do
  printf '{"kind":"query","query":"%s"}\n' "$q"
  i=$((i + 1))
done | timeout 30 "$exe" remote "$scsock" > /dev/null 2>&1
[ -f "$scstore.1" ] || fail "no generation after periodic checkpoints" "$scerr"

# S1: a clean store scrubs quietly; progress and the generation chain
# are visible as metrics
sleep 1
[ "$(scrub_metric mdqa_store_scrub_bytes_total)" -gt 0 ] \
  || fail "scrubber reported no bytes scrubbed on a clean store" "$scerr"
[ "$(scrub_metric mdqa_store_scrub_errors_total)" -eq 0 ] \
  || fail "scrubber found errors in a clean store" "$scerr"
[ "$(scrub_metric mdqa_store_generation)" -ge 1 ] \
  || fail "mdqa_store_generation gauge must count the chain" "$scerr"

# S2: flip one byte under the live server: detected exactly once
size=$(wc -c < "$scstore")
flipb "$scstore" $((size - 3))
i=0
while [ "$(scrub_metric mdqa_store_scrub_errors_total)" -eq 0 ]; do
  i=$((i + 1))
  [ "$i" -le 50 ] || fail "scrub never detected the flipped byte" "$scerr"
  sleep 0.2
done

# the finding trips the checkpoint breaker (gauge transition 0 -> 1)
timeout 30 "$exe" metrics --remote "$scsock" > "$dir/scrub_open.out" 2>&1
grep -q '^mdqa_server_breaker_state 1$' "$dir/scrub_open.out" \
  || fail "scrub finding must trip the breaker open" \
       "$dir/scrub_open.out" "$scerr"

# ... while queries keep being answered, byte-identically
"$exe" query --remote "$scsock" -q "$q" > "$dir/scrub_during.out" 2>/dev/null
cmp -s "$dir/scrub_baseline.out" "$dir/scrub_during.out" \
  || fail "answers changed while the store was damaged" \
       "$dir/scrub_baseline.out" "$dir/scrub_during.out"

# S3: the one-shot repair runs on the next tick and the walk restarts
i=0
while [ "$(scrub_metric mdqa_store_scrub_repairs_total)" -eq 0 ]; do
  i=$((i + 1))
  [ "$i" -le 50 ] || fail "scrub never attempted the one-shot repair" "$scerr"
  sleep 0.2
done
[ -d "$scstore.d/quarantine" ] \
  || fail "scrub repair left no quarantined evidence" "$scerr"

# the breaker heals: checkpoints start succeeding again once the
# cooldown lets a half-open probe through
i=0
while :; do
  j=0
  while [ "$j" -lt 5 ]; do
    printf '{"kind":"query","query":"%s"}\n' "$q"
    j=$((j + 1))
  done | timeout 30 "$exe" remote "$scsock" > /dev/null 2>&1
  printf '{"kind":"health"}\n' | timeout 30 "$exe" remote "$scsock" \
    > "$dir/scrub_health.out" 2>&1
  grep -q '"state":"closed"' "$dir/scrub_health.out" && break
  i=$((i + 1))
  [ "$i" -le 40 ] || fail "breaker never healed after the scrub repair" \
    "$dir/scrub_health.out" "$scerr"
  sleep 0.5
done

# exactly one injected fault => exactly one counted error, even after
# many more scrub cycles (findings deduplicate per offset)
sleep 1
[ "$(scrub_metric mdqa_store_scrub_errors_total)" -eq 1 ] \
  || fail "scrub error counter must reflect exactly the injected faults" \
       "$scerr"

kill -TERM "$scpid" 2>/dev/null
wait "$scpid" 2>/dev/null
rc=$?
{ [ "$rc" -eq 0 ] || [ "$rc" -eq 2 ]; } \
  || fail "scrub server drain must exit 0 or 2, got $rc" "$scerr"
timeout 60 "$exe" store verify "$scstore" > "$dir/scrub_verify.out" 2>&1 \
  || fail "store must verify clean after the scrub battery" \
       "$dir/scrub_verify.out" "$scerr"

# S4: a standby that fails scrub re-syncs from its primary
rm -f "$pstore" "$pstore.journal" "$sstore" "$sstore.journal"
start_primary ''
"$exe" serve --socket "$ssock" --store "$sstore" --replica-of "$psock" \
  --repl-interval 0.2 --promote-after 1000 --scrub-interval 0.2 \
  --drain-grace 5 2>>"$serr" &
spid=$!
printf '{"kind":"ping"}\n' | timeout 30 "$exe" remote --retry "$ssock" \
  > /dev/null 2>&1 || fail "scrubbing standby never became ready" "$serr"
size=$(wc -c < "$sstore")
flipb "$sstore" $((size - 3))
i=0
while ! cmp -s "$pstore" "$sstore"; do
  i=$((i + 1))
  [ "$i" -le 100 ] || fail "standby never re-synced after failing scrub" \
    "$serr" "$perr"
  sleep 0.2
done
"$exe" query --remote "$ssock" -q "$q" > "$dir/scrub_standby.out" 2>/dev/null
cmp -s "$dir/repl_baseline.out" "$dir/scrub_standby.out" \
  || fail "re-synced standby answers differ from the primary's" \
       "$dir/repl_baseline.out" "$dir/scrub_standby.out"
stop_rc "$spid"
stop_rc "$ppid"

if grep -Eq 'Fatal error|Raised at|Raised by' "$scerr"; then
  fail "unhandled exception in scrub battery stderr" "$scerr"
fi

echo "chaos_serve: survived SIGKILL, store faults, garbage, slow-loris, overload, a 500-request soak, a worker-pool battery (crash/kill/hang/storm/metrics), a replication battery (sync/stale-reads/failover-promote/failpoints/divergence), and a scrub battery (detect/trip/repair/heal, standby re-sync) with CHAOS_WORKERS=$CHAOS_WORKERS"
exit 0
