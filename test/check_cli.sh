#!/bin/sh
# Exit-code conventions of `mdqa check` (0 clean / 2 warnings / 1
# errors), the one-pass multi-error report, the --json output, and the
# validation-first behavior of the other subcommands.
#
# Usage: check_cli.sh MDQA_EXE
set -u

exe="$1"

status=0

expect() {
  # $1 = label, $2 = expected exit code, rest = command
  label="$1"
  want="$2"
  shift 2
  timeout 60 "$@" >/dev/null 2>&1
  got=$?
  if [ "$got" -ne "$want" ]; then
    echo "check-cli FAIL: $label exited $got, want $want" >&2
    status=1
  fi
}

expect "check clean .mdq" 0 "$exe" check ../examples/hospital.mdq
expect "check clean .mdq" 0 "$exe" check ../examples/telecom.mdq
expect "check warnings" 2 "$exe" check corpus/nonstrict.mdq
expect "check warnings (.dl)" 2 "$exe" check corpus/undefined_pred.dl
expect "check errors" 1 "$exe" check corpus/syntax_multi.mdq
expect "check --json errors" 1 "$exe" check --json corpus/syntax_multi.mdq
expect "check missing file" 1 "$exe" check corpus/no_such_file.mdq
expect "context pre-validation" 1 "$exe" context corpus/syntax_multi.mdq
expect "chase pre-validation" 1 "$exe" chase corpus/nonground_fact.dl
expect "query pre-validation" 1 "$exe" query corpus/arity_clash.dl

# one pass reports every error: at least 2 "error E..." diagnostics
n=$(timeout 60 "$exe" check corpus/syntax_multi.mdq 2>/dev/null \
      | grep -c "error E")
if [ "$n" -lt 2 ]; then
  echo "check-cli FAIL: want >=2 error lines in one pass, got $n" >&2
  status=1
fi

# --json emits the machine-readable report
if ! timeout 60 "$exe" check --json corpus/syntax_multi.mdq 2>/dev/null \
       | grep -q '"diagnostics":\['; then
  echo "check-cli FAIL: --json did not emit a diagnostics array" >&2
  status=1
fi

[ "$status" -eq 0 ] && echo "check-cli: all exit codes as documented"
exit $status
