(* Tests for the extension modules: CQ containment/minimization, UCQ
   pruning in the rewriter, subset repairs, and the .mdq context file
   format. *)

open Mdqa_datalog
open Mdqa_context
module R = Mdqa_relational
module Hospital = Mdqa_hospital.Hospital

let v = Term.var
let s x = Term.sym x
let atom p args = Atom.make p args
let sym = R.Value.sym
let tuple_testable = Alcotest.testable R.Tuple.pp R.Tuple.equal

(* ------------------------------------------------------------------ *)
(* Containment *)

let q_path2 =
  (* q(X) :- e(X,Y), e(Y,Z) *)
  Query.make ~head:[ v "X" ] [ atom "e" [ v "X"; v "Y" ]; atom "e" [ v "Y"; v "Z" ] ]

let q_edge =
  (* q(X) :- e(X,Y) *)
  Query.make ~head:[ v "X" ] [ atom "e" [ v "X"; v "Y" ] ]

let test_containment_basic () =
  (* two-step sources are a subset of one-step sources *)
  Alcotest.(check bool) "path2 ⊆ edge" true
    (Containment.contained ~sub:q_path2 ~super:q_edge);
  Alcotest.(check bool) "edge ⊄ path2" false
    (Containment.contained ~sub:q_edge ~super:q_path2)

let test_containment_constants () =
  let qa = Query.make ~head:[ v "X" ] [ atom "e" [ v "X"; s "a" ] ] in
  Alcotest.(check bool) "e(X,a) ⊆ e(X,Y)" true
    (Containment.contained ~sub:qa ~super:q_edge);
  Alcotest.(check bool) "e(X,Y) ⊄ e(X,a)" false
    (Containment.contained ~sub:q_edge ~super:qa)

let test_containment_alpha_equivalence () =
  let q1 = Query.make ~head:[ v "A" ] [ atom "e" [ v "A"; v "B" ] ] in
  Alcotest.(check bool) "alpha-equivalent" true
    (Containment.equivalent q1 q_edge)

let test_containment_head_matters () =
  (* same body, different head position: not contained *)
  let q_src = Query.make ~head:[ v "X" ] [ atom "e" [ v "X"; v "Y" ] ] in
  let q_dst = Query.make ~head:[ v "Y" ] [ atom "e" [ v "X"; v "Y" ] ] in
  Alcotest.(check bool) "src vs dst" false
    (Containment.contained ~sub:q_src ~super:q_dst)

let test_containment_cmps_conservative () =
  let with_cmp =
    Query.make ~head:[ v "X" ]
      ~cmps:[ Atom.Cmp.make Atom.Cmp.Neq (v "X") (s "a") ]
      [ atom "e" [ v "X"; v "Y" ] ]
  in
  (* narrowing: with_cmp ⊆ plain *)
  Alcotest.(check bool) "cmp query contained in plain" true
    (Containment.contained ~sub:with_cmp ~super:q_edge);
  (* sound refusal in the other direction *)
  Alcotest.(check bool) "plain not contained in cmp query" false
    (Containment.contained ~sub:q_edge ~super:with_cmp)

let test_minimize () =
  (* q(X) :- e(X,Y), e(X,Z): the second atom is redundant *)
  let q =
    Query.make ~head:[ v "X" ]
      [ atom "e" [ v "X"; v "Y" ]; atom "e" [ v "X"; v "Z" ] ]
  in
  let m = Containment.minimize q in
  Alcotest.(check int) "one atom left" 1 (List.length m.Query.body);
  Alcotest.(check bool) "still equivalent" true (Containment.equivalent q m);
  (* a genuinely non-redundant query is untouched *)
  let m2 = Containment.minimize q_path2 in
  Alcotest.(check int) "path query keeps both atoms" 2
    (List.length m2.Query.body)

let test_prune_ucq () =
  let kept = Containment.prune_ucq [ q_edge; q_path2 ] in
  Alcotest.(check int) "subsumed disjunct dropped" 1 (List.length kept);
  Alcotest.(check bool) "the general one kept" true
    (Containment.equivalent (List.hd kept) q_edge);
  (* equivalent disjuncts collapse to the first *)
  let q_edge' = Query.make ~head:[ v "A" ] [ atom "e" [ v "A"; v "B" ] ] in
  Alcotest.(check int) "equivalent pair collapses" 1
    (List.length (Containment.prune_ucq [ q_edge; q_edge' ]))

let test_rewrite_pruning_integration () =
  (* pu(U,P) :- pw(W,P), uw(U,W) and pu is also derived from itself via
     copy rule: copy(U,P) :- pu(U,P); query over copy unfolds to both
     pu and the join; the pu disjunct subsumes nothing here, so both
     survive; with an extra redundant rule the pruner kicks in. *)
  let tgd body head = Tgd.make ~body ~head () in
  let p =
    Program.make
      ~tgds:
        [ tgd [ atom "pu" [ v "U"; v "P" ] ] [ atom "copy" [ v "U"; v "P" ] ];
          (* redundant second derivation of copy *)
          tgd
            [ atom "pu" [ v "U"; v "P" ]; atom "unit" [ v "U" ] ]
            [ atom "copy" [ v "U"; v "P" ] ] ]
      ()
  in
  let q = Query.make ~head:[ v "P" ] [ atom "copy" [ v "U"; v "P" ] ] in
  (match Rewrite.rewrite ~prune:false p q with
   | Guard.Complete r ->
     Alcotest.(check int) "unpruned has 3 disjuncts" 3 (List.length r.Rewrite.ucq)
   | Guard.Degraded (_, e) ->
     Alcotest.failf "degraded: %s" (Guard.resource_name e.Guard.resource));
  (match Rewrite.rewrite ~prune:true p q with
   | Guard.Complete r ->
     Alcotest.(check int) "pruned drops the guarded variant" 2
       (List.length r.Rewrite.ucq);
     Alcotest.(check int) "reports 1 pruned" 1 r.Rewrite.pruned
   | Guard.Degraded (_, e) ->
     Alcotest.failf "degraded: %s" (Guard.resource_name e.Guard.resource))

(* ------------------------------------------------------------------ *)
(* Repair *)

let nc_bad = Nc.make ~name:"no_bad" [ atom "p" [ v "X" ]; atom "bad" [ v "X" ] ]

let repair_instance rows =
  let inst = R.Instance.create () in
  ignore (R.Instance.declare inst (R.Rel_schema.of_names "p" [ "a" ]));
  ignore (R.Instance.declare inst (R.Rel_schema.of_names "bad" [ "a" ]));
  List.iter
    (fun (rel, x) ->
      ignore (R.Instance.add_tuple inst rel (R.Tuple.of_list [ sym x ])))
    rows;
  inst

let test_repair_violations () =
  let p = Program.make ~ncs:[ nc_bad ] () in
  let inst = repair_instance [ ("p", "x"); ("bad", "x"); ("p", "y") ] in
  match Repair.violations p inst ~deletable:(fun r -> r = "p") with
  | Ok [ w ] ->
    Alcotest.(check string) "constraint" "no_bad" w.Repair.constraint_name;
    Alcotest.(check int) "only the deletable tuple listed" 1
      (List.length w.Repair.deletions)
  | Ok l -> Alcotest.failf "expected 1 witness, got %d" (List.length l)
  | Error e -> Alcotest.fail e

let test_repair_unrepairable () =
  let p = Program.make ~ncs:[ nc_bad ] () in
  let inst = repair_instance [ ("p", "x"); ("bad", "x") ] in
  (* nothing deletable: unrepairable *)
  (match Repair.violations p inst ~deletable:(fun _ -> false) with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "expected unrepairable error")

let test_repair_derived_rejected () =
  let tgd = Tgd.make ~body:[ atom "q" [ v "X" ] ] ~head:[ atom "p" [ v "X" ] ] () in
  let p = Program.make ~tgds:[ tgd ] ~ncs:[ nc_bad ] () in
  let inst = repair_instance [] in
  (match Repair.violations p inst ~deletable:(fun _ -> true) with
   | Error e -> Alcotest.(check bool) "mentions derived" true
       (String.length e > 0)
   | Ok _ -> Alcotest.fail "expected derived-predicate error")

let test_repair_hitting_sets () =
  (* two violations sharing one tuple: minimal repairs are {shared} and
     {other1, other2} *)
  let d rel x = { Repair.relation = rel; tuple = R.Tuple.of_list [ sym x ] } in
  let witnesses =
    [ { Repair.constraint_name = "c1"; deletions = [ d "p" "shared"; d "p" "a" ] };
      { Repair.constraint_name = "c2"; deletions = [ d "p" "shared"; d "p" "b" ] } ]
  in
  let repairs = Guard.value (Repair.repairs witnesses) in
  Alcotest.(check int) "two minimal repairs" 2 (List.length repairs);
  Alcotest.(check bool) "singleton repair present" true
    (List.exists (fun r -> List.length r = 1) repairs);
  Alcotest.(check bool) "pair repair present" true
    (List.exists (fun r -> List.length r = 2) repairs);
  let greedy = Repair.greedy_repair witnesses in
  Alcotest.(check int) "greedy picks the shared tuple" 1 (List.length greedy)

let test_repair_apply () =
  let inst = repair_instance [ ("p", "x"); ("p", "y") ] in
  let out =
    Repair.apply inst
      [ { Repair.relation = "p"; tuple = R.Tuple.of_list [ sym "x" ] } ]
  in
  Alcotest.(check int) "one left" 1 (R.Relation.cardinal (R.Instance.get out "p"));
  Alcotest.(check int) "original untouched" 2
    (R.Relation.cardinal (R.Instance.get inst "p"))

let test_repair_hospital_discard () =
  (* the paper's Example 1: the raw PatientWard has Tom in W3
     (Intensive) on Sep/7; the repair discards exactly that tuple and
     the pipeline then computes Table II *)
  let ctx = Hospital.context ~raw_patient_ward:true () in
  match Repair.assess_repaired ctx ~source:(Hospital.source ()) with
  | Error e -> Alcotest.fail e
  | Ok (a, removed) ->
    Alcotest.(check int) "one tuple discarded" 1 (List.length removed);
    let d = List.hd removed in
    Alcotest.(check string) "from patient_ward" "patient_ward"
      d.Repair.relation;
    Alcotest.check tuple_testable "the W3/Sep7 tuple"
      (R.Tuple.of_list [ sym "W3"; sym "Sep/7"; sym "Tom Waits" ])
      d.Repair.tuple;
    Alcotest.(check bool) "assessment saturates" true
      (a.Context.chase.Chase.outcome = Chase.Saturated);
    (match Context.quality_version a "measurements" with
     | Some q ->
       Alcotest.(check bool) "Table II recovered" true
         (R.Tuple.Set.equal (R.Relation.to_set q)
            (R.Relation.to_set Hospital.expected_measurements_q))
     | None -> Alcotest.fail "no quality version")

let test_repair_cautious_answers () =
  let ctx = Hospital.context ~raw_patient_ward:true () in
  match Repair.cautious_answers ctx ~source:(Hospital.source ()) Hospital.doctor_query with
  | Ok (Guard.Complete answers) ->
    Alcotest.(check (list tuple_testable)) "row 1 certain under all repairs"
      [ R.Tuple.of_list [ sym "Sep/5-12:10"; sym "Tom Waits"; R.Value.real 38.2 ] ]
      answers
  | Ok (Guard.Degraded (_, e)) ->
    Alcotest.failf "degraded: %s" (Guard.resource_name e.Guard.resource)
  | Error e -> Alcotest.fail e

let test_repair_consistent_context_noop () =
  let ctx = Hospital.context () in
  match Repair.assess_repaired ctx ~source:(Hospital.source ()) with
  | Ok (_, removed) -> Alcotest.(check int) "nothing discarded" 0 (List.length removed)
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Md_parser (.mdq format) *)

let mdq_text =
  {|
    dimension Loc {
      category Sensor -> Station.
      member "s1" in Sensor -> "st1".
      member "s2" in Sensor -> "st1".
      member "st1" in Station.
    }
    relation calib(station in Loc.Station, tech).
    relation sensor_ok(sensor in Loc.Sensor).
    source readings(sensor, value).
    map readings -> readings_c.
    quality readings -> readings_q.

    calib("st1", "carol").
    readings("s1", 17).
    readings("s2", 9).

    sensor_ok(S) :- calib(ST, T), station_sensor(ST, S).
    readings_q(S, V) :- readings_c(S, V), sensor_ok(S).
    ?q(S) :- readings(S, V).
  |}

let test_mdq_parse_structure () =
  let p = Md_parser.parse_string mdq_text in
  Alcotest.(check int) "one query" 1 (List.length p.Md_parser.queries);
  Alcotest.(check int) "one dimensional rule" 1
    (List.length p.Md_parser.ontology.Mdqa_multidim.Md_ontology.rules);
  Alcotest.(check int) "one context rule" 1
    (List.length p.Md_parser.context.Context.rules);
  Alcotest.(check int) "source facts loaded" 2
    (R.Relation.cardinal (R.Instance.get p.Md_parser.source "readings"))

let mdq_simple =
  {|
    dimension Loc {
      category Sensor -> Station.
      member "s1" in Sensor -> "st1".
      member "s2" in Sensor -> "st2".
      member "st1" in Station.
      member "st2" in Station.
    }
    relation calib(station in Loc.Station, tech).
    relation sensor_ok(sensor in Loc.Sensor).
    source readings(sensor, value).
    map readings -> readings_c.
    quality readings -> readings_q.

    calib("st1", "carol").
    readings("s1", 17).
    readings("s2", 9).

    sensor_ok(S) :- calib(ST, T), station_sensor(ST, S).
    readings_q(S, V) :- readings_c(S, V), sensor_ok(S).
    ?q(S) :- readings(S, V).
  |}

let test_mdq_quality_pipeline () =
  let p = Md_parser.parse_string mdq_simple in
  let a = Context.assess p.Md_parser.context ~source:p.Md_parser.source in
  Alcotest.(check bool) "saturated" true
    (a.Context.chase.Chase.outcome = Chase.Saturated);
  (match Context.quality_version a "readings" with
   | Some q ->
     Alcotest.(check int) "only calibrated-station reading" 1
       (R.Relation.cardinal q);
     Alcotest.(check bool) "it is s1's" true
       (R.Relation.mem q (R.Tuple.of_list [ sym "s1"; R.Value.int 17 ]))
   | None -> Alcotest.fail "no quality version");
  (* clean answers of the embedded query *)
  (match Context.clean_answers a (List.hd p.Md_parser.queries) with
   | Some answers ->
     Alcotest.(check (list tuple_testable)) "only s1 is a quality answer"
       [ R.Tuple.of_list [ sym "s1" ] ]
       answers
   | None -> Alcotest.fail "inconsistent")

let test_mdq_hospital_file () =
  (* the shipped example file parses and, with repair, reproduces the
     paper end to end *)
  let p = Md_parser.parse_file "../examples/hospital.mdq" in
  Alcotest.(check int) "two queries" 2 (List.length p.Md_parser.queries);
  match Repair.assess_repaired p.Md_parser.context ~source:p.Md_parser.source with
  | Error e -> Alcotest.fail e
  | Ok (a, removed) ->
    Alcotest.(check int) "the W3 tuple discarded" 1 (List.length removed);
    (match Context.quality_version a "measurements" with
     | Some q -> Alcotest.(check int) "Table II size" 2 (R.Relation.cardinal q)
     | None -> Alcotest.fail "no quality version")

let test_mdq_external_sources () =
  (* quality = reading from a calibrated station whose technician is on
     the certified list — the list is a closed external source *)
  let text =
    {|
      dimension Loc {
        category Sensor -> Station.
        member "s1" in Sensor -> "st1".
        member "s2" in Sensor -> "st2".
        member "st1" in Station.
        member "st2" in Station.
      }
      relation calib(station in Loc.Station, tech).
      relation sensor_ok(sensor in Loc.Sensor).
      source readings(sensor, value).
      external certified(tech).
      map readings -> readings_c.
      quality readings -> readings_q.

      calib("st1", "carol").
      calib("st2", "mallory").
      certified("carol").
      readings("s1", 17).
      readings("s2", 9).

      sensor_ok(S) :- calib(ST, T), station_sensor(ST, S), certified(T).
      readings_q(S, V) :- readings_c(S, V), sensor_ok(S).
    |}
  in
  let p = Md_parser.parse_string text in
  Alcotest.(check int) "external captured" 1
    (List.length p.Md_parser.context.Context.externals);
  (* the sensor_ok rule mentions the external predicate: classified as
     a contextual rule, not a dimensional one *)
  Alcotest.(check int) "contextual rules" 2
    (List.length p.Md_parser.context.Context.rules);
  let a = Context.assess p.Md_parser.context ~source:p.Md_parser.source in
  (match Context.quality_version a "readings" with
   | Some q ->
     Alcotest.(check int) "only carol's station qualifies" 1
       (R.Relation.cardinal q);
     Alcotest.(check bool) "s1 kept" true
       (R.Relation.mem q (R.Tuple.of_list [ sym "s1"; R.Value.int 17 ]))
   | None -> Alcotest.fail "no quality version");
  (* and the serializer round-trips the external *)
  let text' =
    Md_pretty.context_to_string ~source:p.Md_parser.source p.Md_parser.context
  in
  let p2 = Md_parser.parse_string text' in
  Alcotest.(check int) "external survives round-trip" 1
    (List.length p2.Md_parser.context.Context.externals)

let test_mdq_telecom_file () =
  (* the shipped, serializer-generated telecom file reproduces the
     fixture's quality pipeline, DAG dimension included *)
  let p = Md_parser.parse_file "../examples/telecom.mdq" in
  let cal =
    List.find
      (fun d ->
        Mdqa_multidim.Dim_schema.name (Mdqa_multidim.Dim_instance.schema d)
        = "Calendar")
      p.Md_parser.ontology.Mdqa_multidim.Md_ontology.dim_instances
  in
  Alcotest.(check (list string)) "DAG parents preserved" [ "Month"; "Week" ]
    (Mdqa_multidim.Dim_schema.parents
       (Mdqa_multidim.Dim_instance.schema cal)
       "Day");
  let a = Context.assess p.Md_parser.context ~source:p.Md_parser.source in
  (match Context.quality_version a "cdr" with
   | Some q -> Alcotest.(check int) "3 quality CDRs" 3 (R.Relation.cardinal q)
   | None -> Alcotest.fail "no quality version");
  match Context.clean_answers a (List.hd p.Md_parser.queries) with
  | Some [ t ] ->
    Alcotest.check tuple_testable "alice week 2"
      (R.Tuple.of_list [ sym "d10"; sym "c3" ])
      t
  | _ -> Alcotest.fail "expected exactly one quality answer"

let test_mdq_errors () =
  let bad input =
    match Md_parser.parse_string input with
    | exception Md_parser.Error _ -> ()
    | _ -> Alcotest.failf "expected .mdq error on %S" input
  in
  (* fact over undeclared predicate *)
  bad {| dimension D { category C. member "m" in C. } mystery(a). |};
  (* unknown category in a relation *)
  bad
    {| dimension D { category C. member "m" in C. }
       relation r(x in D.Nope). |};
  (* invalid dimensional rule: shared variable at plain position *)
  bad
    {| dimension D { category C1 -> C2. member "m" in C1 -> "n". member "n" in C2. }
       relation r(x in D.C1, y).
       relation r2(x in D.C2, y).
       r2(U, Y) :- r(W, Y), c2_c1(U, W), r(W2, Y). |};
  (* member in unknown category *)
  bad {| dimension D { member "m" in Nowhere. } |};
  (* unterminated dimension block *)
  bad {| dimension D { category C. |}

(* ------------------------------------------------------------------ *)
(* Md_pretty: .mdq serialization round-trips *)

let test_md_pretty_roundtrip_simple () =
  let p1 = Md_parser.parse_string mdq_simple in
  let text =
    Md_pretty.context_to_string ~source:p1.Md_parser.source
      ~queries:p1.Md_parser.queries p1.Md_parser.context
  in
  let p2 = Md_parser.parse_string text in
  (* the reparsed context computes the same quality version *)
  let a1 = Context.assess p1.Md_parser.context ~source:p1.Md_parser.source in
  let a2 = Context.assess p2.Md_parser.context ~source:p2.Md_parser.source in
  match
    (Context.quality_version a1 "readings", Context.quality_version a2 "readings")
  with
  | Some q1, Some q2 ->
    Alcotest.(check bool) "same quality version" true
      (R.Tuple.Set.equal (R.Relation.to_set q1) (R.Relation.to_set q2))
  | _ -> Alcotest.fail "quality version missing after round-trip"

let test_md_pretty_roundtrip_hospital () =
  let p1 = Md_parser.parse_file "../examples/hospital.mdq" in
  let text =
    Md_pretty.context_to_string ~source:p1.Md_parser.source
      ~queries:p1.Md_parser.queries p1.Md_parser.context
  in
  let p2 = Md_parser.parse_string text in
  Alcotest.(check int) "queries preserved" 2 (List.length p2.Md_parser.queries);
  (* same end-to-end result (with repair, since the raw tuple is in) *)
  match Repair.assess_repaired p2.Md_parser.context ~source:p2.Md_parser.source with
  | Error e -> Alcotest.fail e
  | Ok (a, removed) ->
    Alcotest.(check int) "repair still finds the tuple" 1 (List.length removed);
    (match Context.quality_version a "measurements" with
     | Some q -> Alcotest.(check int) "Table II size" 2 (R.Relation.cardinal q)
     | None -> Alcotest.fail "no quality version")

let test_md_pretty_exports_generator () =
  (* programmatically built contexts (the scaled generator) export to
     parseable .mdq *)
  let g = Hospital.Gen.default in
  let ctx = Hospital.Gen.context g in
  let text = Md_pretty.ontology_to_string ctx.Context.ontology in
  Alcotest.(check bool) "nonempty" true (String.length text > 1000);
  (* the ontology fragment alone must parse *)
  let p = Md_parser.parse_string text in
  Alcotest.(check int) "rules preserved" 2
    (List.length p.Md_parser.ontology.Mdqa_multidim.Md_ontology.rules)

(* ------------------------------------------------------------------ *)
(* Properties: containment, pruning, repairs *)

let gen_cq =
  QCheck.Gen.(
    let var = oneofl [ "X"; "Y"; "Z" ] in
    let term =
      oneof [ map v var; map s (oneofl [ "c1"; "c2" ]) ]
    in
    let gen_atom =
      oneof
        [ map (fun t -> atom "a" [ t ]) term;
          map (fun t -> atom "b" [ t ]) term;
          map2 (fun t u -> atom "e" [ t; u ]) term term ]
    in
    let* extra = list_size (0 -- 3) gen_atom in
    (* first atom anchors the head variable *)
    let* anchor =
      oneof
        [ map (fun t -> atom "e" [ v "X"; t ]) term;
          return (atom "a" [ v "X" ]) ]
    in
    return (Query.make ~head:[ v "X" ] (anchor :: extra)))

let cq_arb =
  QCheck.make ~print:(Format.asprintf "%a" Query.pp) gen_cq

let gen_small_instance =
  QCheck.Gen.(
    let const = oneofl [ "c1"; "c2"; "c3" ] in
    let* facts_a = list_size (0 -- 3) const in
    let* facts_b = list_size (0 -- 3) const in
    let* facts_e = list_size (0 -- 5) (pair const const) in
    return
      (let inst = R.Instance.create () in
       ignore (R.Instance.declare inst (R.Rel_schema.of_names "a" [ "x" ]));
       ignore (R.Instance.declare inst (R.Rel_schema.of_names "b" [ "x" ]));
       ignore (R.Instance.declare inst (R.Rel_schema.of_names "e" [ "x"; "y" ]));
       List.iter
         (fun x ->
           ignore (R.Instance.add_tuple inst "a" (R.Tuple.of_list [ sym x ])))
         facts_a;
       List.iter
         (fun x ->
           ignore (R.Instance.add_tuple inst "b" (R.Tuple.of_list [ sym x ])))
         facts_b;
       List.iter
         (fun (x, y) ->
           ignore
             (R.Instance.add_tuple inst "e" (R.Tuple.of_list [ sym x; sym y ])))
         facts_e;
       inst))

let instance_arb =
  QCheck.make ~print:(Format.asprintf "%a" R.Instance.pp) gen_small_instance

let prop_containment_reflexive =
  QCheck.Test.make ~name:"containment is reflexive" ~count:200 cq_arb
    (fun q -> Containment.contained ~sub:q ~super:q)

let prop_containment_narrowing =
  QCheck.Test.make ~name:"adding an atom narrows a query" ~count:200
    (QCheck.pair cq_arb cq_arb) (fun (q, extra_src) ->
      let narrowed =
        Query.make ~head:q.Query.head (q.Query.body @ extra_src.Query.body)
      in
      Containment.contained ~sub:narrowed ~super:q)

let prop_containment_semantic =
  QCheck.Test.make ~name:"containment is sound on random instances"
    ~count:300
    (QCheck.triple cq_arb cq_arb instance_arb)
    (fun (q1, q2, inst) ->
      QCheck.assume (Containment.contained ~sub:q1 ~super:q2);
      let a1 = Query.certain inst q1 and a2 = Query.certain inst q2 in
      List.for_all (fun t -> List.mem t a2) a1)

let prop_minimize_equivalent =
  QCheck.Test.make ~name:"minimize preserves equivalence and is idempotent"
    ~count:200 cq_arb (fun q ->
      let m = Containment.minimize q in
      Containment.equivalent q m
      && List.length (Containment.minimize m).Query.body
         = List.length m.Query.body)

let prop_prune_preserves_union =
  QCheck.Test.make ~name:"UCQ pruning preserves the union's answers"
    ~count:200
    (QCheck.pair (QCheck.list_of_size (QCheck.Gen.int_range 1 4) cq_arb)
       instance_arb)
    (fun (ucq, inst) ->
      let answers qs =
        List.fold_left
          (fun acc q ->
            List.fold_left
              (fun acc t -> R.Tuple.Set.add t acc)
              acc (Query.certain inst q))
          R.Tuple.Set.empty qs
      in
      R.Tuple.Set.equal (answers ucq) (answers (Containment.prune_ucq ucq)))

(* random witness structures for repair properties *)
let gen_witnesses =
  QCheck.Gen.(
    let deletion =
      map
        (fun i ->
          { Repair.relation = "p"; tuple = R.Tuple.of_list [ R.Value.int i ] })
        (0 -- 5)
    in
    list_size (1 -- 4)
      (let* ds = list_size (1 -- 3) deletion in
       return { Repair.constraint_name = "c"; deletions = ds }))

let witnesses_arb =
  QCheck.make
    ~print:(fun ws ->
      String.concat "; "
        (List.map
           (fun w ->
             String.concat ","
               (List.map
                  (fun d -> Format.asprintf "%a" R.Tuple.pp d.Repair.tuple)
                  w.Repair.deletions))
           ws))
    gen_witnesses

let hits_all repair ws =
  List.for_all
    (fun w ->
      List.exists
        (fun d -> List.exists (fun d' -> d = d') w.Repair.deletions)
        repair)
    ws

let prop_repairs_hit_all =
  QCheck.Test.make ~name:"every repair hits every violation" ~count:200
    witnesses_arb (fun ws ->
      let rs = Guard.value (Repair.repairs ws) in
      rs <> [] && List.for_all (fun r -> hits_all r ws) rs)

let prop_repairs_minimal =
  QCheck.Test.make ~name:"repairs are pairwise incomparable" ~count:200
    witnesses_arb (fun ws ->
      let rs = Guard.value (Repair.repairs ws) in
      let subset a b = List.for_all (fun d -> List.mem d b) a in
      List.for_all
        (fun r ->
          List.for_all (fun r' -> r == r' || not (subset r' r)) rs)
        rs)

let prop_greedy_repairs =
  QCheck.Test.make ~name:"greedy repair hits every violation" ~count:200
    witnesses_arb (fun ws -> hits_all (Repair.greedy_repair ws) ws)

let extension_qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_containment_reflexive; prop_containment_narrowing;
      prop_containment_semantic; prop_minimize_equivalent;
      prop_prune_preserves_union; prop_repairs_hit_all;
      prop_repairs_minimal; prop_greedy_repairs ]

(* ------------------------------------------------------------------ *)
(* Provenance / Explain *)

let test_provenance_disabled_by_default () =
  let p = Program.make () in
  let r = Chase.run p (repair_instance []) in
  Alcotest.(check bool) "no table" true (r.Chase.provenance = None);
  (match Explain.why r "p" (R.Tuple.of_list [ sym "x" ]) with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "expected error without provenance")

let test_provenance_simple_chain () =
  let tgd body head = Tgd.make ~body ~head () in
  let p =
    Program.make
      ~tgds:
        [ Tgd.make ~name:"r1" ~body:[ atom "a" [ v "X" ] ]
            ~head:[ atom "b" [ v "X" ] ] ();
          Tgd.make ~name:"r2" ~body:[ atom "b" [ v "X" ] ]
            ~head:[ atom "c" [ v "X" ] ] () ]
      ~facts:[ atom "a" [ s "k" ] ]
      ()
  in
  ignore tgd;
  let r = Chase.run ~provenance:true p (R.Instance.create ()) in
  match Explain.why r "c" (R.Tuple.of_list [ sym "k" ]) with
  | Error e -> Alcotest.fail e
  | Ok tree ->
    Alcotest.(check int) "depth 2" 2 (Explain.depth tree);
    Alcotest.(check (list string)) "rules" [ "r1"; "r2" ]
      (Explain.rules_used tree);
    Alcotest.(check int) "one extensional leaf" 1
      (List.length (Explain.extensional_support tree));
    Alcotest.(check string) "leaf is a(k)" "a"
      (fst (List.hd (Explain.extensional_support tree)))

let test_provenance_extensional_fact () =
  let p = Program.make ~facts:[ atom "a" [ s "k" ] ] () in
  let r = Chase.run ~provenance:true p (R.Instance.create ()) in
  match Explain.why r "a" (R.Tuple.of_list [ sym "k" ]) with
  | Ok tree ->
    Alcotest.(check int) "depth 0" 0 (Explain.depth tree);
    Alcotest.(check bool) "no rule" true (tree.Explain.rule = None)
  | Error e -> Alcotest.fail e

let test_provenance_missing_fact () =
  let p = Program.make ~facts:[ atom "a" [ s "k" ] ] () in
  let r = Chase.run ~provenance:true p (R.Instance.create ()) in
  (match Explain.why r "a" (R.Tuple.of_list [ sym "zz" ]) with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "expected error for absent fact")

let test_provenance_egd_remap () =
  (* emp(X) -> ∃D dept(X,D); EGD merges the invented null into "hr";
     provenance must be keyed by the merged fact *)
  let p =
    Program.make
      ~tgds:
        [ Tgd.make ~name:"mkdept" ~body:[ atom "emp" [ v "X" ] ]
            ~head:[ atom "dept" [ v "X"; v "D" ] ] () ]
      ~egds:
        [ Egd.make
            ~body:
              [ atom "dept" [ v "X"; v "D1" ]; atom "dept" [ v "X"; v "D2" ] ]
            (v "D1") (v "D2") ]
      ~facts:[ atom "emp" [ s "ann" ]; atom "dept" [ s "ann"; s "hr" ] ]
      ()
  in
  let r = Chase.run ~variant:Chase.Oblivious ~provenance:true p (R.Instance.create ()) in
  Alcotest.(check bool) "saturated" true (r.Chase.outcome = Chase.Saturated);
  (* after merging, dept(ann,hr) exists; its recorded derivation (if
     the invented fact merged into it) must reference remapped facts *)
  match Explain.why r "dept" (R.Tuple.of_list [ sym "ann"; sym "hr" ]) with
  | Ok tree ->
    List.iter
      (fun (_, t) ->
        Alcotest.(check bool) "no stale nulls in support" false
          (R.Tuple.has_null t))
      (Explain.extensional_support tree)
  | Error e -> Alcotest.fail e

let test_context_explain () =
  let a =
    Context.assess ~provenance:true (Hospital.context ())
      ~source:(Hospital.source ())
  in
  let row1 =
    R.Tuple.of_list [ sym "Sep/5-12:10"; sym "Tom Waits"; R.Value.real 38.2 ]
  in
  match Context.explain a "measurements" row1 with
  | Error e -> Alcotest.fail e
  | Ok tree ->
    Alcotest.(check bool) "uses rule (7)" true
      (List.mem "rule7_patient_unit" (Explain.rules_used tree));
    Alcotest.(check bool) "rests on the ward assignment" true
      (List.exists
         (fun (p, _) -> p = "patient_ward")
         (Explain.extensional_support tree));
    Alcotest.(check bool) "depth covers the quality pipeline" true
      (Explain.depth tree >= 3)

let test_context_explain_requires_provenance () =
  let a = Context.assess (Hospital.context ()) ~source:(Hospital.source ()) in
  let row1 =
    R.Tuple.of_list [ sym "Sep/5-12:10"; sym "Tom Waits"; R.Value.real 38.2 ]
  in
  (match Context.explain a "measurements" row1 with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "expected error without provenance")

let case name f = Alcotest.test_case name `Quick f

let suites =
  [ ( "containment",
      [ case "basic containment" test_containment_basic;
        case "constants narrow queries" test_containment_constants;
        case "alpha equivalence" test_containment_alpha_equivalence;
        case "head positions matter" test_containment_head_matters;
        case "comparisons handled conservatively" test_containment_cmps_conservative;
        case "minimization" test_minimize;
        case "UCQ pruning" test_prune_ucq;
        case "rewriter integration" test_rewrite_pruning_integration ] );
    ( "repair",
      [ case "violation witnesses" test_repair_violations;
        case "unrepairable detected" test_repair_unrepairable;
        case "derived predicates rejected" test_repair_derived_rejected;
        case "minimal hitting sets" test_repair_hitting_sets;
        case "apply is non-destructive" test_repair_apply;
        case "Example 1: discard the intensive-care tuple"
          test_repair_hospital_discard;
        case "cautious answers" test_repair_cautious_answers;
        case "consistent context: no-op" test_repair_consistent_context_noop
      ] );
    ( "md_parser",
      [ case "structure classification" test_mdq_parse_structure;
        case "quality pipeline" test_mdq_quality_pipeline;
        case "shipped hospital.mdq reproduces the paper"
          test_mdq_hospital_file;
        case "error reporting" test_mdq_errors;
        case "external sources (Fig. 2 E_i)" test_mdq_external_sources;
        case "shipped telecom.mdq (DAG dimension)" test_mdq_telecom_file;
        case "pretty round-trip (sensors)" test_md_pretty_roundtrip_simple;
        case "pretty round-trip (hospital)" test_md_pretty_roundtrip_hospital;
        case "generator exports to .mdq" test_md_pretty_exports_generator ] );
    ( "explain",
      [ case "provenance off by default" test_provenance_disabled_by_default;
        case "simple rule chain" test_provenance_simple_chain;
        case "extensional facts have depth 0" test_provenance_extensional_fact;
        case "absent facts rejected" test_provenance_missing_fact;
        case "EGD merges remap provenance" test_provenance_egd_remap;
        case "quality tuple explanation" test_context_explain;
        case "explain requires provenance" test_context_explain_requires_provenance
      ] );
    ("extensions.properties", extension_qcheck_cases) ]
