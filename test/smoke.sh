#!/bin/sh
# Degradation smoke test for the CLI: every example pipeline run under
# a tiny budget must exit 2 (degraded, partial result printed) within
# the time limit — never crash, never hang, never exit 0 pretending the
# result is complete.
#
# Usage: smoke.sh MDQA_EXE FILE.mdq...
set -u

exe="$1"
shift

status=0

run() {
  # $1 = label, $2 = expected exit code, rest = command
  label="$1"
  want="$2"
  shift 2
  timeout 60 "$@" >/dev/null 2>&1
  got=$?
  if [ "$got" -eq 124 ]; then
    echo "smoke FAIL: $label hung (killed after 60s)" >&2
    status=1
  elif [ "$got" -ne "$want" ]; then
    echo "smoke FAIL: $label exited $got, want $want" >&2
    status=1
  fi
}

for f in "$@"; do
  # Intentionally-inconsistent examples (hospital.mdq) need --repair so
  # the budget — not the constraint violation — decides the outcome.
  # Others (telecom.mdq, whose constraint mentions a derived predicate)
  # must run without it.
  if timeout 60 "$exe" context "$f" >/dev/null 2>&1; then
    repair=""
  else
    repair="--repair"
  fi
  # sanity: an unconstrained run completes with exit 0
  run "$f unconstrained" 0 "$exe" context "$f" $repair
  run "$f --max-steps 1" 2 "$exe" context "$f" $repair --max-steps 1
  run "$f --timeout 0" 2 "$exe" context "$f" $repair --timeout 0
done

[ "$status" -eq 0 ] && echo "smoke: all degraded runs exited 2"
exit $status
