(* Tests for the relational substrate: values, tuples, relations,
   instances, algebra, table formatting, CSV round-trips. *)

open Mdqa_relational

let v_sym s = Value.sym s
let v_int i = Value.int i

let value_testable = Alcotest.testable Value.pp Value.equal
let tuple_testable = Alcotest.testable Tuple.pp Tuple.equal

let tup vs = Tuple.of_list vs
let syms ss = tup (List.map v_sym ss)

(* ------------------------------------------------------------------ *)
(* Value *)

let test_value_order () =
  Alcotest.(check bool) "sym < int" true (Value.compare (v_sym "z") (v_int 0) < 0);
  Alcotest.(check bool) "int < real" true
    (Value.compare (v_int 5) (Value.real 1.0) < 0);
  Alcotest.(check bool) "const < null" true
    (Value.compare (Value.real 9.9) (Value.Null 1) < 0);
  Alcotest.(check bool) "null by label" true
    (Value.compare (Value.Null 1) (Value.Null 2) < 0)

let test_value_null_predicates () =
  Alcotest.(check bool) "null is null" true (Value.is_null (Value.Null 3));
  Alcotest.(check bool) "sym not null" false (Value.is_null (v_sym "a"));
  Alcotest.(check bool) "sym is constant" true (Value.is_constant (v_sym "a"));
  Alcotest.(check bool) "null not constant" false
    (Value.is_constant (Value.Null 3))

let test_value_string_roundtrip () =
  let cases =
    [ v_sym "Tom"; v_sym "Tom Waits"; v_int 42; v_int (-7); Value.real 37.5;
      Value.Null 12; v_sym "W1"; v_sym "Sep/5-12:10" ]
  in
  List.iter
    (fun v ->
      Alcotest.check value_testable
        (Format.asprintf "roundtrip %a" Value.pp v)
        v
        (Value.of_string (Value.to_string v)))
    cases

let test_value_of_string_forms () =
  Alcotest.check value_testable "underscore null" (Value.Null 7)
    (Value.of_string "_:7");
  Alcotest.check value_testable "int" (v_int 10) (Value.of_string "10");
  Alcotest.check value_testable "real" (Value.real 1.5) (Value.of_string "1.5");
  Alcotest.check value_testable "bare sym" (v_sym "ward") (Value.of_string "ward")

let test_fresh_gen () =
  let g = Value.Fresh.create () in
  let a = Value.Fresh.next g and b = Value.Fresh.next g in
  Alcotest.(check bool) "distinct" false (Value.equal a b);
  Alcotest.(check int) "count" 2 (Value.Fresh.count g);
  let g2 = Value.Fresh.create ~start:100 () in
  Alcotest.check value_testable "start respected" (Value.Null 100)
    (Value.Fresh.next g2)

(* ------------------------------------------------------------------ *)
(* Tuple *)

let test_tuple_basic () =
  let t = syms [ "a"; "b"; "c" ] in
  Alcotest.(check int) "arity" 3 (Tuple.arity t);
  Alcotest.check value_testable "get" (v_sym "b") (Tuple.get t 1);
  Alcotest.check tuple_testable "set" (syms [ "a"; "x"; "c" ])
    (Tuple.set t 1 (v_sym "x"));
  Alcotest.check tuple_testable "set leaves original" (syms [ "a"; "b"; "c" ]) t

let test_tuple_project_append () =
  let t = syms [ "a"; "b"; "c"; "d" ] in
  Alcotest.check tuple_testable "project" (syms [ "d"; "b" ])
    (Tuple.project t [ 3; 1 ]);
  Alcotest.check tuple_testable "append"
    (syms [ "a"; "b"; "c"; "d"; "x" ])
    (Tuple.append t (syms [ "x" ]))

let test_tuple_has_null () =
  Alcotest.(check bool) "no null" false (Tuple.has_null (syms [ "a" ]));
  Alcotest.(check bool) "null" true
    (Tuple.has_null (tup [ v_sym "a"; Value.Null 1 ]))

let test_tuple_bounds () =
  let t = syms [ "a" ] in
  Alcotest.check_raises "get oob"
    (Invalid_argument "Tuple.get: position 1 out of range") (fun () ->
      ignore (Tuple.get t 1))

(* ------------------------------------------------------------------ *)
(* Relation / Instance *)

let schema_ab = Rel_schema.of_names "r" [ "a"; "b" ]

let test_relation_add_mem () =
  let r = Relation.create schema_ab in
  Alcotest.(check bool) "first add" true (Relation.add r (syms [ "x"; "y" ]));
  Alcotest.(check bool) "dup add" false (Relation.add r (syms [ "x"; "y" ]));
  Alcotest.(check bool) "mem" true (Relation.mem r (syms [ "x"; "y" ]));
  Alcotest.(check int) "cardinal" 1 (Relation.cardinal r)

let test_relation_arity_check () =
  let r = Relation.create schema_ab in
  Alcotest.check_raises "arity"
    (Invalid_argument "Relation r: arity mismatch (schema 2, tuple 1)")
    (fun () -> ignore (Relation.add r (syms [ "x" ])))

let test_relation_scan () =
  let r = Relation.create schema_ab in
  ignore (Relation.add r (syms [ "x"; "1" ]));
  ignore (Relation.add r (syms [ "x"; "2" ]));
  ignore (Relation.add r (syms [ "y"; "1" ]));
  Alcotest.(check int) "scan x" 2
    (List.length (Relation.scan r [ (0, v_sym "x") ]));
  Alcotest.(check int) "scan x,2" 1
    (List.length (Relation.scan r [ (0, v_sym "x"); (1, v_sym "2") ]));
  Alcotest.(check int) "scan none" 0
    (List.length (Relation.scan r [ (0, v_sym "zz") ]));
  Alcotest.(check int) "scan all" 3 (List.length (Relation.scan r []))

let test_relation_scan_after_add () =
  (* Index maintenance: scans stay correct after further inserts. *)
  let r = Relation.create schema_ab in
  ignore (Relation.add r (syms [ "x"; "1" ]));
  ignore (Relation.scan r [ (0, v_sym "x") ]);
  ignore (Relation.add r (syms [ "x"; "2" ]));
  Alcotest.(check int) "post-insert scan" 2
    (List.length (Relation.scan r [ (0, v_sym "x") ]))

let test_relation_map_values () =
  let r = Relation.create schema_ab in
  ignore (Relation.add r (tup [ Value.Null 1; v_sym "k" ]));
  ignore (Relation.add r (tup [ v_sym "c"; v_sym "k" ]));
  Relation.map_values r (fun v ->
      if Value.equal v (Value.Null 1) then v_sym "c" else v);
  Alcotest.(check int) "merged" 1 (Relation.cardinal r);
  Alcotest.(check bool) "contains merged" true
    (Relation.mem r (syms [ "c"; "k" ]))

let test_relation_remove () =
  let r = Relation.create schema_ab in
  ignore (Relation.add r (syms [ "x"; "1" ]));
  Alcotest.(check bool) "remove" true (Relation.remove r (syms [ "x"; "1" ]));
  Alcotest.(check bool) "remove absent" false
    (Relation.remove r (syms [ "x"; "1" ]));
  Alcotest.(check int) "empty" 0 (Relation.cardinal r)

let test_instance_declare () =
  let i = Instance.create () in
  let r = Instance.declare i schema_ab in
  Alcotest.(check bool) "same relation back" true
    (r == Instance.declare i schema_ab);
  Alcotest.check_raises "schema clash"
    (Invalid_argument "Instance.declare: schema clash for r") (fun () ->
      ignore (Instance.declare i (Rel_schema.of_names "r" [ "a" ])))

let test_instance_copy_independent () =
  let i = Instance.create () in
  ignore (Instance.declare i schema_ab);
  ignore (Instance.add_tuple i "r" (syms [ "x"; "y" ]));
  let j = Instance.copy i in
  ignore (Instance.add_tuple j "r" (syms [ "p"; "q" ]));
  Alcotest.(check int) "original unchanged" 1
    (Relation.cardinal (Instance.get i "r"));
  Alcotest.(check int) "copy extended" 2
    (Relation.cardinal (Instance.get j "r"));
  Alcotest.(check bool) "equal detects difference" false (Instance.equal i j)

let test_instance_merge () =
  let i = Instance.create () in
  ignore (Instance.declare i schema_ab);
  ignore (Instance.add_tuple i "r" (syms [ "x"; "y" ]));
  let j = Instance.create () in
  ignore (Instance.declare j schema_ab);
  ignore (Instance.add_tuple j "r" (syms [ "p"; "q" ]));
  ignore (Instance.declare j (Rel_schema.of_names "s" [ "c" ]));
  ignore (Instance.add_tuple j "s" (syms [ "z" ]));
  Instance.merge_into ~dst:i ~src:j;
  Alcotest.(check int) "r merged" 2 (Relation.cardinal (Instance.get i "r"));
  Alcotest.(check int) "s created" 1 (Relation.cardinal (Instance.get i "s"));
  Alcotest.(check int) "total" 3 (Instance.total_tuples i)

(* ------------------------------------------------------------------ *)
(* Algebra *)

let rel name rows =
  let arity = match rows with [] -> 0 | r :: _ -> List.length r in
  let schema =
    Rel_schema.of_names name (List.init arity (Printf.sprintf "c%d"))
  in
  Relation.of_tuples schema (List.map syms rows)

let sorted_rows r =
  List.map
    (fun t -> List.map Value.to_string (Tuple.to_list t))
    (Relation.to_list r)

let rows_testable = Alcotest.(list (list string))

let test_algebra_select_project () =
  let r = rel "r" [ [ "a"; "p" ]; [ "b"; "q" ]; [ "a"; "r" ] ] in
  let sel = Algebra.select_eq 0 (v_sym "a") r in
  Alcotest.check rows_testable "select" [ [ "a"; "p" ]; [ "a"; "r" ] ]
    (sorted_rows sel);
  let proj = Algebra.project [ 0 ] r in
  Alcotest.check rows_testable "project dedups" [ [ "a" ]; [ "b" ] ]
    (sorted_rows proj)

let test_algebra_union_diff_intersect () =
  let r = rel "r" [ [ "a" ]; [ "b" ] ] and s = rel "s" [ [ "b" ]; [ "c" ] ] in
  Alcotest.check rows_testable "union" [ [ "a" ]; [ "b" ]; [ "c" ] ]
    (sorted_rows (Algebra.union r s));
  Alcotest.check rows_testable "diff" [ [ "a" ] ]
    (sorted_rows (Algebra.diff r s));
  Alcotest.check rows_testable "intersect" [ [ "b" ] ]
    (sorted_rows (Algebra.intersect r s))

let test_algebra_join () =
  let r = rel "r" [ [ "a"; "p" ]; [ "b"; "q" ] ] in
  let s = rel "s" [ [ "p"; "x" ]; [ "p"; "y" ]; [ "r"; "z" ] ] in
  let j = Algebra.join [ (1, 0) ] r s in
  Alcotest.check rows_testable "join"
    [ [ "a"; "p"; "p"; "x" ]; [ "a"; "p"; "p"; "y" ] ]
    (sorted_rows j)

let test_algebra_natural_join () =
  let rs = Rel_schema.of_names "r" [ "w"; "p" ] in
  let ss = Rel_schema.of_names "s" [ "u"; "w" ] in
  let r =
    Relation.of_tuples rs [ syms [ "W1"; "tom" ]; syms [ "W3"; "lou" ] ]
  in
  let s =
    Relation.of_tuples ss [ syms [ "Std"; "W1" ]; syms [ "Std"; "W2" ] ]
  in
  let j = Algebra.natural_join r s in
  Alcotest.(check int) "one match" 1 (Relation.cardinal j);
  Alcotest.(check int) "common attr kept once" 3 (Relation.arity j);
  Alcotest.check rows_testable "content" [ [ "W1"; "tom"; "Std" ] ]
    (sorted_rows j)

let test_algebra_product () =
  let r = rel "r" [ [ "a" ]; [ "b" ] ] and s = rel "s" [ [ "x" ] ] in
  Alcotest.(check int) "product size" 2
    (Relation.cardinal (Algebra.product r s))

let test_algebra_inputs_unchanged () =
  let r = rel "r" [ [ "a"; "p" ] ] in
  ignore (Algebra.project [ 0 ] r);
  ignore (Algebra.select_eq 0 (v_sym "a") r);
  Alcotest.(check int) "input intact" 1 (Relation.cardinal r);
  Alcotest.(check int) "input arity intact" 2 (Relation.arity r)

(* ------------------------------------------------------------------ *)
(* Table_fmt / Csv_io *)

let test_table_render () =
  let r = rel "t" [ [ "a"; "p" ] ] in
  let s = Table_fmt.render ~title:"T" r in
  Alcotest.(check bool) "has title" true (String.length s > 0 && s.[0] = 'T');
  Alcotest.(check bool) "has row number" true
    (String.exists (fun c -> c = '1') s);
  let lines = String.split_on_char '\n' s in
  Alcotest.(check bool) "at least 6 lines" true (List.length lines >= 6)

let test_table_render_ragged_rejected () =
  Alcotest.check_raises "ragged"
    (Invalid_argument "Table_fmt.render_rows: row 0 has 1 cells, want 2")
    (fun () -> ignore (Table_fmt.render_rows ~header:[ "a"; "b" ] [ [ "x" ] ]))

(* The tests go through the Result API; the raising wrappers are
   compat-only and covered by test_diag. *)
let parse_csv_exn ~name text =
  match Csv_io.relation_of_string_result ~name text with
  | Ok r -> r
  | Error (e :: _) ->
    Alcotest.failf "CSV parse failed: %s" (Format.asprintf "%a" Csv_io.pp_error e)
  | Error [] -> Alcotest.fail "CSV parse failed with no errors"

let test_csv_roundtrip () =
  let schema = Rel_schema.of_names "m" [ "time"; "patient"; "value" ] in
  let r =
    Relation.of_tuples schema
      [ tup [ v_sym "Sep/5-12:10"; v_sym "Tom Waits"; Value.real 38.2 ];
        tup [ v_sym "Sep/6-11:50"; v_sym "Tom, Waits"; Value.Null 4 ] ]
  in
  let r' = parse_csv_exn ~name:"m" (Csv_io.relation_to_string r) in
  Alcotest.(check int) "cardinal" 2 (Relation.cardinal r');
  Alcotest.(check bool) "tuples preserved" true
    (Tuple.Set.equal (Relation.to_set r) (Relation.to_set r'))

let test_csv_quoting () =
  let cell = Csv_io.cell_of_value (v_sym "a,b") in
  Alcotest.(check bool) "comma quoted" true (cell.[0] = '"');
  Alcotest.check value_testable "roundtrip via of_string" (v_sym "a,b")
    (Csv_io.value_of_cell (Value.to_string (v_sym "a,b")))

let test_csv_file_roundtrip () =
  let schema = Rel_schema.of_names "m" [ "a"; "b" ] in
  let r =
    Relation.of_tuples schema
      [ tup [ v_sym "x"; v_int 1 ]; tup [ v_sym "long value, quoted"; v_int 2 ] ]
  in
  let path = Filename.temp_file "mdqa_test" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csv_io.save_relation path r;
      match Csv_io.load_relation_result ~name:"m" path with
      | Error _ -> Alcotest.fail "clean CSV file rejected"
      | Ok r' ->
        Alcotest.(check bool) "roundtrip through a file" true
          (Tuple.Set.equal (Relation.to_set r) (Relation.to_set r')))

let test_csv_malformed () =
  Alcotest.(check bool) "ragged row rejected" true
    (match Csv_io.relation_of_string_result ~name:"m" "a,b\nonly_one\n" with
     | Error _ -> true
     | Ok _ -> false);
  Alcotest.(check bool) "empty input rejected" true
    (match Csv_io.relation_of_string_result ~name:"m" "" with
     | Error _ -> true
     | Ok _ -> false)

(* ------------------------------------------------------------------ *)
(* Properties *)

let value_gen =
  QCheck.Gen.(
    oneof
      [ map Value.sym (string_size ~gen:(char_range 'a' 'z') (1 -- 6));
        map Value.int (0 -- 1000);
        map (fun n -> Value.Null n) (0 -- 50) ])

let value_arb = QCheck.make ~print:Value.to_string value_gen

let tuple_gen = QCheck.Gen.(map Tuple.of_list (list_size (1 -- 5) value_gen))
let tuple_arb = QCheck.make ~print:(Format.asprintf "%a" Tuple.pp) tuple_gen

let prop_value_compare_total =
  QCheck.Test.make ~name:"Value.compare is antisymmetric" ~count:300
    (QCheck.pair value_arb value_arb) (fun (a, b) ->
      let c = Value.compare a b and c' = Value.compare b a in
      (c = 0) = (c' = 0) && (c > 0) = (c' < 0))

let prop_value_roundtrip =
  QCheck.Test.make ~name:"Value to/of_string roundtrip" ~count:300 value_arb
    (fun v -> Value.equal v (Value.of_string (Value.to_string v)))

let prop_tuple_project_id =
  QCheck.Test.make ~name:"Tuple.project all positions = id" ~count:200
    tuple_arb (fun t ->
      Tuple.equal t (Tuple.project t (List.init (Tuple.arity t) Fun.id)))

let prop_relation_add_idempotent =
  QCheck.Test.make ~name:"Relation insert is idempotent" ~count:200
    (QCheck.list_of_size (QCheck.Gen.int_bound 20)
       (QCheck.make QCheck.Gen.(pair (0 -- 5) (0 -- 5))))
    (fun pairs ->
      let schema = Rel_schema.of_names "p" [ "a"; "b" ] in
      let r1 = Relation.create schema and r2 = Relation.create schema in
      List.iter
        (fun (a, b) ->
          let t = tup [ v_int a; v_int b ] in
          ignore (Relation.add r1 t);
          ignore (Relation.add r2 t);
          ignore (Relation.add r2 t))
        pairs;
      Relation.equal r1 r2)

let prop_csv_roundtrip =
  QCheck.Test.make ~name:"CSV relation roundtrip" ~count:100
    (QCheck.list_of_size (QCheck.Gen.int_bound 15)
       (QCheck.pair value_arb value_arb))
    (fun rows ->
      let schema = Rel_schema.of_names "p" [ "a"; "b" ] in
      let r =
        Relation.of_tuples schema (List.map (fun (a, b) -> tup [ a; b ]) rows)
      in
      match Csv_io.relation_of_string_result ~name:"p"
              (Csv_io.relation_to_string r)
      with
      | Error _ -> false
      | Ok r' -> Tuple.Set.equal (Relation.to_set r) (Relation.to_set r'))

let prop_union_commutes =
  let mk rows =
    Relation.of_tuples
      (Rel_schema.of_names "p" [ "a" ])
      (List.map (fun v -> tup [ v ]) rows)
  in
  QCheck.Test.make ~name:"Algebra.union commutes on tuple sets" ~count:150
    (QCheck.pair (QCheck.small_list value_arb) (QCheck.small_list value_arb))
    (fun (xs, ys) ->
      let a = mk xs and b = mk ys in
      Tuple.Set.equal
        (Relation.to_set (Algebra.union a b))
        (Relation.to_set (Algebra.union b a)))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_value_compare_total; prop_value_roundtrip; prop_tuple_project_id;
      prop_relation_add_idempotent; prop_csv_roundtrip; prop_union_commutes ]

let case name f = Alcotest.test_case name `Quick f

let suites =
  [ ( "relational.value",
      [ case "ordering across kinds" test_value_order;
        case "null predicates" test_value_null_predicates;
        case "string roundtrip" test_value_string_roundtrip;
        case "of_string surface forms" test_value_of_string_forms;
        case "fresh null generator" test_fresh_gen ] );
    ( "relational.tuple",
      [ case "basic access and update" test_tuple_basic;
        case "project and append" test_tuple_project_append;
        case "has_null" test_tuple_has_null;
        case "bounds checking" test_tuple_bounds ] );
    ( "relational.relation",
      [ case "add/mem/cardinal" test_relation_add_mem;
        case "arity enforcement" test_relation_arity_check;
        case "indexed scan" test_relation_scan;
        case "scan after insert" test_relation_scan_after_add;
        case "map_values merges nulls" test_relation_map_values;
        case "remove" test_relation_remove ] );
    ( "relational.instance",
      [ case "declare idempotent + clash" test_instance_declare;
        case "copy independence" test_instance_copy_independent;
        case "merge_into" test_instance_merge ] );
    ( "relational.algebra",
      [ case "select/project" test_algebra_select_project;
        case "union/diff/intersect" test_algebra_union_diff_intersect;
        case "equi-join" test_algebra_join;
        case "natural join" test_algebra_natural_join;
        case "product" test_algebra_product;
        case "operators leave inputs unchanged" test_algebra_inputs_unchanged
      ] );
    ( "relational.io",
      [ case "table render" test_table_render;
        case "table ragged rejected" test_table_render_ragged_rejected;
        case "csv roundtrip" test_csv_roundtrip;
        case "csv file roundtrip" test_csv_file_roundtrip;
        case "csv malformed input" test_csv_malformed;
        case "csv quoting" test_csv_quoting ] );
    ("relational.properties", qcheck_cases) ]
