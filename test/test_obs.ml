(* Properties and unit tests for the telemetry subsystem (lib/obs).

   The metrics registry's merge is the load-bearing algebra: snapshots
   taken on different registries (per-run, per-service) must combine
   associatively and commutatively without losing observations, or the
   exposition lies.  The tracer's begin/end pairing must survive
   exceptions, or nesting depths drift and exported traces are
   malformed.  Both are checked with random inputs, alongside direct
   tests of bucketing, exposition rendering, trace export and the
   logger. *)

module Metrics = Mdqa_obs.Metrics
module Trace = Mdqa_obs.Trace
module Logger = Mdqa_obs.Logger
module Jsonl = Mdqa_server.Jsonl

(* --- histogram properties -------------------------------------------- *)

(* Integer-valued observations keep float sums exact, so count/sum
   preservation can be checked with [=]. *)
let obs_list_gen = QCheck.Gen.(list_size (int_bound 40) (int_bound 1000))

let obs_list_arb =
  QCheck.make ~print:QCheck.Print.(list int) obs_list_gen

let snapshot_of obs =
  let m = Metrics.create () in
  let h = Metrics.histogram m ~help:"test histogram" "test_seconds" in
  List.iter (fun v -> Metrics.observe h (float_of_int v)) obs;
  Metrics.snapshot m

let histo snap =
  match Metrics.find_histogram snap "test_seconds" with
  | Some h -> h
  | None -> { Metrics.hcount = 0; hsum = 0.; hbuckets = [] }

let sum_int l = List.fold_left ( + ) 0 l

let prop_merge_commutative =
  QCheck.Test.make ~name:"snapshot merge is commutative" ~count:200
    (QCheck.pair obs_list_arb obs_list_arb) (fun (a, b) ->
      Metrics.merge (snapshot_of a) (snapshot_of b)
      = Metrics.merge (snapshot_of b) (snapshot_of a))

let prop_merge_associative =
  QCheck.Test.make ~name:"snapshot merge is associative" ~count:200
    (QCheck.triple obs_list_arb obs_list_arb obs_list_arb) (fun (a, b, c) ->
      let sa = snapshot_of a and sb = snapshot_of b and sc = snapshot_of c in
      Metrics.merge (Metrics.merge sa sb) sc
      = Metrics.merge sa (Metrics.merge sb sc))

let prop_merge_preserves_count_sum =
  QCheck.Test.make ~name:"merge preserves histogram count and sum" ~count:200
    (QCheck.pair obs_list_arb obs_list_arb) (fun (a, b) ->
      let h = histo (Metrics.merge (snapshot_of a) (snapshot_of b)) in
      h.Metrics.hcount = List.length a + List.length b
      && h.Metrics.hsum = float_of_int (sum_int a + sum_int b)
      && sum_int (List.map snd h.Metrics.hbuckets) = h.Metrics.hcount)

let prop_bucketing =
  QCheck.Test.make ~name:"observations land in their log2 bucket" ~count:200
    QCheck.(float_range 1e-9 1e12) (fun v ->
      let m = Metrics.create () in
      let h = Metrics.histogram m "test_seconds" in
      Metrics.observe h v;
      let snap = Metrics.snapshot m in
      match (histo snap).Metrics.hbuckets with
      | [ (e, 1) ] ->
        v < Metrics.bucket_upper e && v >= Metrics.bucket_upper e /. 2.
      | _ -> false)

(* --- counter properties ---------------------------------------------- *)

let prop_counter_monotone =
  QCheck.Test.make ~name:"counters only go up" ~count:200
    QCheck.(list_of_size Gen.(int_bound 30) (int_bound 100)) (fun incs ->
      let m = Metrics.create () in
      let c = Metrics.counter m "ups_total" in
      List.for_all
        (fun n ->
          let before = Metrics.counter_value c in
          Metrics.add c n;
          Metrics.counter_value c = before + n)
        incs)

let test_counter_rejects_negative () =
  let m = Metrics.create () in
  let c = Metrics.counter m "t_total" in
  Alcotest.check_raises "add -1 raises"
    (Invalid_argument "Metrics.add: negative increment") (fun () ->
      Metrics.add c (-1))

let test_register_kind_clash () =
  let m = Metrics.create () in
  ignore (Metrics.counter m "x");
  (match Metrics.gauge m "x" with
  | _ -> Alcotest.fail "re-registering x as a gauge must raise"
  | exception Invalid_argument _ -> ());
  (* same name and kind is idempotent: both handles hit one cell *)
  let c1 = Metrics.counter m "x" and c2 = Metrics.counter m "x" in
  Metrics.inc c1;
  Metrics.inc c2;
  Alcotest.(check int) "shared cell" 2 (Metrics.counter_value c1)

(* --- span nesting under exceptions ----------------------------------- *)

exception Boom

(* A random tree of spans, some of which raise: whatever happens, every
   span closes (depth back to 0), every exported duration is >= 0, and
   the event count equals the number of spans entered. *)
let span_tree_gen =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        let leaf = map (fun b -> `Leaf b) bool in
        if n <= 0 then leaf
        else
          frequency
            [ (1, leaf);
              (2,
               map2
                 (fun raises kids -> `Node (raises, kids))
                 bool
                 (list_size (int_bound 3) (self (n / 2)))) ]))

let rec span_count = function
  | `Leaf _ -> 1
  | `Node (_, kids) -> 1 + List.fold_left (fun a k -> a + span_count k) 0 kids

let rec run_tree t =
  match t with
  | `Leaf raises ->
    Trace.with_span "leaf" (fun () -> if raises then raise Boom)
  | `Node (raises, kids) ->
    Trace.with_span "node" (fun () ->
        List.iter (fun k -> try run_tree k with Boom -> ()) kids;
        if raises then raise Boom)

let rec tree_print = function
  | `Leaf b -> Printf.sprintf "L%b" b
  | `Node (b, kids) ->
    Printf.sprintf "N%b(%s)" b (String.concat "," (List.map tree_print kids))

let prop_spans_survive_exceptions =
  QCheck.Test.make ~name:"span begin/end pairs survive exceptions" ~count:200
    (QCheck.make ~print:tree_print span_tree_gen) (fun tree ->
      let tr = Trace.create () in
      Trace.install tr;
      Fun.protect ~finally:Trace.uninstall (fun () ->
          (try run_tree tree with Boom -> ());
          Trace.depth tr = 0
          && List.length (Trace.events tr) = span_count tree
          && List.for_all
               (fun e -> e.Trace.dur >= 0. && e.Trace.depth >= 1)
               (Trace.events tr)))

(* --- trace export ----------------------------------------------------- *)

let test_export_is_valid_json () =
  let now = ref 0. in
  let clock () =
    now := !now +. 0.001;
    !now
  in
  let tr = Trace.create ~clock () in
  Trace.install tr;
  Fun.protect ~finally:Trace.uninstall (fun () ->
      Trace.with_span "outer" ~attrs:[ ("k", "v \"quoted\"") ] (fun () ->
          Trace.with_span "inner" (fun () -> ());
          Trace.instant "mark"));
  match Jsonl.parse (Trace.export_json tr) with
  | Error e -> Alcotest.failf "export does not parse: %s" e
  | Ok json ->
    let events =
      match Option.bind (Jsonl.member "traceEvents" json) Jsonl.to_list with
      | Some evs -> evs
      | None -> Alcotest.fail "no traceEvents"
    in
    Alcotest.(check int) "three events" 3 (List.length events);
    List.iter
      (fun ev ->
        Alcotest.(check bool) "has name" true (Jsonl.str_field "name" ev <> None);
        Alcotest.(check bool) "has ts" true (Jsonl.num_field "ts" ev <> None);
        match Jsonl.str_field "ph" ev with
        | Some "X" ->
          Alcotest.(check bool) "X has dur" true
            (match Jsonl.num_field "dur" ev with
            | Some d -> d >= 0.
            | None -> false)
        | Some "i" -> ()
        | other ->
          Alcotest.failf "unexpected ph %s" (Option.value ~default:"-" other))
      events

let test_ring_buffer_drops_oldest () =
  let tr = Trace.create ~capacity:4 () in
  Trace.install tr;
  Fun.protect ~finally:Trace.uninstall (fun () ->
      for i = 1 to 10 do
        Trace.with_span (string_of_int i) (fun () -> ())
      done);
  let names = List.map (fun e -> e.Trace.name) (Trace.events tr) in
  Alcotest.(check (list string)) "keeps the newest" [ "7"; "8"; "9"; "10" ]
    names;
  Alcotest.(check int) "counts the dropped" 6 (Trace.dropped tr)

(* --- prometheus exposition -------------------------------------------- *)

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let test_prometheus_exposition () =
  let m = Metrics.create () in
  let c =
    Metrics.counter m ~help:"requests" ~labels:[ ("kind", "query") ]
      "req_total"
  in
  Metrics.add c 3;
  Metrics.set (Metrics.gauge m ~help:"queue depth" "depth") 2.5;
  let h = Metrics.histogram m ~help:"latency" "lat_seconds" in
  Metrics.observe h 0.75;
  Metrics.observe h 3.;
  let text = Metrics.to_prometheus (Metrics.snapshot m) in
  List.iter
    (fun line ->
      Alcotest.(check bool) (Printf.sprintf "exposition has %S" line) true
        (contains text line))
    [ "# TYPE req_total counter";
      "# HELP req_total requests";
      "req_total{kind=\"query\"} 3";
      "depth 2.5";
      "# TYPE lat_seconds histogram";
      "lat_seconds_count 2";
      "lat_seconds_sum 3.75";
      "+Inf\"} 2" ]

(* --- logger ------------------------------------------------------------ *)

let with_captured_logger f =
  let buf = Buffer.create 256 in
  Logger.set_output (fun line ->
      Buffer.add_string buf line;
      Buffer.add_char buf '\n');
  Logger.set_clock (fun () -> 1754000000.5);
  Fun.protect
    ~finally:(fun () ->
      Logger.set_level Logger.Info;
      Logger.set_json false;
      Logger.set_clock Unix.gettimeofday;
      Logger.set_output (fun line ->
          prerr_string line;
          prerr_newline ();
          flush stderr))
    (fun () -> f buf)

let test_logger_json_and_levels () =
  with_captured_logger @@ fun buf ->
  Logger.set_json true;
  Logger.set_level Logger.Info;
  Logger.debug "suppressed";
  Logger.info
    ~fields:
      [ ("n", Logger.Int 7); ("f", Logger.Float 1.5);
        ("ok", Logger.Bool true); ("s", Logger.Str "a \"b\"") ]
    "served";
  let lines =
    String.split_on_char '\n' (String.trim (Buffer.contents buf))
  in
  Alcotest.(check int) "one record (debug suppressed)" 1 (List.length lines);
  match Jsonl.parse (List.hd lines) with
  | Error e -> Alcotest.failf "JSONL record does not parse: %s" e
  | Ok json ->
    Alcotest.(check (option string)) "level" (Some "info")
      (Jsonl.str_field "level" json);
    Alcotest.(check (option string)) "msg" (Some "served")
      (Jsonl.str_field "msg" json);
    Alcotest.(check (option string)) "string field" (Some "a \"b\"")
      (Jsonl.str_field "s" json);
    Alcotest.(check bool) "ts is ISO8601 UTC" true
      (match Jsonl.str_field "ts" json with
      | Some ts ->
        String.length ts = 24
        && ts.[4] = '-' && ts.[10] = 'T' && ts.[23] = 'Z'
      | None -> false)

let test_logger_text_format () =
  with_captured_logger @@ fun buf ->
  Logger.set_level Logger.Warn;
  Logger.info "suppressed";
  Logger.warn ~fields:[ ("addr", Logger.Str "a b") ] "listening";
  let line = String.trim (Buffer.contents buf) in
  Alcotest.(check bool) "has level" true (contains line " warn ");
  Alcotest.(check bool) "has message" true (contains line "listening");
  Alcotest.(check bool) "quotes spaced values" true
    (contains line "addr=\"a b\"")

let test_level_of_string () =
  List.iter
    (fun (s, expect) ->
      Alcotest.(check bool) s true (Logger.level_of_string s = expect))
    [ ("debug", Some Logger.Debug); ("warning", Some Logger.Warn);
      ("ERROR", Some Logger.Error); ("loud", None) ]

(* ---------------------------------------------------------------------- *)

let case name f = Alcotest.test_case name `Quick f

let props = List.map QCheck_alcotest.to_alcotest

let suites =
  [ ( "obs.metrics",
      props
        [ prop_merge_commutative; prop_merge_associative;
          prop_merge_preserves_count_sum; prop_bucketing;
          prop_counter_monotone ]
      @ [ case "add rejects negative" test_counter_rejects_negative;
          case "registration kind clash" test_register_kind_clash;
          case "prometheus exposition" test_prometheus_exposition ] );
    ( "obs.trace",
      props [ prop_spans_survive_exceptions ]
      @ [ case "export is valid trace JSON" test_export_is_valid_json;
          case "ring buffer drops oldest" test_ring_buffer_drops_oldest ] );
    ( "obs.logger",
      [ case "JSONL records and level filtering" test_logger_json_and_levels;
        case "text format" test_logger_text_format;
        case "level parsing" test_level_of_string ] ) ]
