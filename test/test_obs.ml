(* Properties and unit tests for the telemetry subsystem (lib/obs).

   The metrics registry's merge is the load-bearing algebra: snapshots
   taken on different registries (per-run, per-service) must combine
   associatively and commutatively without losing observations, or the
   exposition lies.  The tracer's begin/end pairing must survive
   exceptions, or nesting depths drift and exported traces are
   malformed.  Both are checked with random inputs, alongside direct
   tests of bucketing, exposition rendering, trace export and the
   logger. *)

module Metrics = Mdqa_obs.Metrics
module Trace = Mdqa_obs.Trace
module Logger = Mdqa_obs.Logger
module Jsonl = Mdqa_server.Jsonl

(* --- histogram properties -------------------------------------------- *)

(* Integer-valued observations keep float sums exact, so count/sum
   preservation can be checked with [=]. *)
let obs_list_gen = QCheck.Gen.(list_size (int_bound 40) (int_bound 1000))

let obs_list_arb =
  QCheck.make ~print:QCheck.Print.(list int) obs_list_gen

let snapshot_of obs =
  let m = Metrics.create () in
  let h = Metrics.histogram m ~help:"test histogram" "test_seconds" in
  List.iter (fun v -> Metrics.observe h (float_of_int v)) obs;
  Metrics.snapshot m

let histo snap =
  match Metrics.find_histogram snap "test_seconds" with
  | Some h -> h
  | None -> { Metrics.hcount = 0; hsum = 0.; hbuckets = [] }

let sum_int l = List.fold_left ( + ) 0 l

let prop_merge_commutative =
  QCheck.Test.make ~name:"snapshot merge is commutative" ~count:200
    (QCheck.pair obs_list_arb obs_list_arb) (fun (a, b) ->
      Metrics.merge (snapshot_of a) (snapshot_of b)
      = Metrics.merge (snapshot_of b) (snapshot_of a))

let prop_merge_associative =
  QCheck.Test.make ~name:"snapshot merge is associative" ~count:200
    (QCheck.triple obs_list_arb obs_list_arb obs_list_arb) (fun (a, b, c) ->
      let sa = snapshot_of a and sb = snapshot_of b and sc = snapshot_of c in
      Metrics.merge (Metrics.merge sa sb) sc
      = Metrics.merge sa (Metrics.merge sb sc))

let prop_merge_preserves_count_sum =
  QCheck.Test.make ~name:"merge preserves histogram count and sum" ~count:200
    (QCheck.pair obs_list_arb obs_list_arb) (fun (a, b) ->
      let h = histo (Metrics.merge (snapshot_of a) (snapshot_of b)) in
      h.Metrics.hcount = List.length a + List.length b
      && h.Metrics.hsum = float_of_int (sum_int a + sum_int b)
      && sum_int (List.map snd h.Metrics.hbuckets) = h.Metrics.hcount)

let prop_bucketing =
  QCheck.Test.make ~name:"observations land in their log2 bucket" ~count:200
    QCheck.(float_range 1e-9 1e12) (fun v ->
      let m = Metrics.create () in
      let h = Metrics.histogram m "test_seconds" in
      Metrics.observe h v;
      let snap = Metrics.snapshot m in
      match (histo snap).Metrics.hbuckets with
      | [ (e, 1) ] ->
        v < Metrics.bucket_upper e && v >= Metrics.bucket_upper e /. 2.
      | _ -> false)

(* --- counter properties ---------------------------------------------- *)

let prop_counter_monotone =
  QCheck.Test.make ~name:"counters only go up" ~count:200
    QCheck.(list_of_size Gen.(int_bound 30) (int_bound 100)) (fun incs ->
      let m = Metrics.create () in
      let c = Metrics.counter m "ups_total" in
      List.for_all
        (fun n ->
          let before = Metrics.counter_value c in
          Metrics.add c n;
          Metrics.counter_value c = before + n)
        incs)

let test_counter_rejects_negative () =
  let m = Metrics.create () in
  let c = Metrics.counter m "t_total" in
  Alcotest.check_raises "add -1 raises"
    (Invalid_argument "Metrics.add: negative increment") (fun () ->
      Metrics.add c (-1))

let test_register_kind_clash () =
  let m = Metrics.create () in
  ignore (Metrics.counter m "x");
  (match Metrics.gauge m "x" with
  | _ -> Alcotest.fail "re-registering x as a gauge must raise"
  | exception Invalid_argument _ -> ());
  (* same name and kind is idempotent: both handles hit one cell *)
  let c1 = Metrics.counter m "x" and c2 = Metrics.counter m "x" in
  Metrics.inc c1;
  Metrics.inc c2;
  Alcotest.(check int) "shared cell" 2 (Metrics.counter_value c1)

(* --- span nesting under exceptions ----------------------------------- *)

exception Boom

(* A random tree of spans, some of which raise: whatever happens, every
   span closes (depth back to 0), every exported duration is >= 0, and
   the event count equals the number of spans entered. *)
let span_tree_gen =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        let leaf = map (fun b -> `Leaf b) bool in
        if n <= 0 then leaf
        else
          frequency
            [ (1, leaf);
              (2,
               map2
                 (fun raises kids -> `Node (raises, kids))
                 bool
                 (list_size (int_bound 3) (self (n / 2)))) ]))

let rec span_count = function
  | `Leaf _ -> 1
  | `Node (_, kids) -> 1 + List.fold_left (fun a k -> a + span_count k) 0 kids

let rec run_tree t =
  match t with
  | `Leaf raises ->
    Trace.with_span "leaf" (fun () -> if raises then raise Boom)
  | `Node (raises, kids) ->
    Trace.with_span "node" (fun () ->
        List.iter (fun k -> try run_tree k with Boom -> ()) kids;
        if raises then raise Boom)

let rec tree_print = function
  | `Leaf b -> Printf.sprintf "L%b" b
  | `Node (b, kids) ->
    Printf.sprintf "N%b(%s)" b (String.concat "," (List.map tree_print kids))

let prop_spans_survive_exceptions =
  QCheck.Test.make ~name:"span begin/end pairs survive exceptions" ~count:200
    (QCheck.make ~print:tree_print span_tree_gen) (fun tree ->
      let tr = Trace.create () in
      Trace.install tr;
      Fun.protect ~finally:Trace.uninstall (fun () ->
          (try run_tree tree with Boom -> ());
          Trace.depth tr = 0
          && List.length (Trace.events tr) = span_count tree
          && List.for_all
               (fun e -> e.Trace.dur >= 0. && e.Trace.depth >= 1)
               (Trace.events tr)))

(* --- trace export ----------------------------------------------------- *)

let test_export_is_valid_json () =
  let now = ref 0. in
  let clock () =
    now := !now +. 0.001;
    !now
  in
  let tr = Trace.create ~clock () in
  Trace.install tr;
  Fun.protect ~finally:Trace.uninstall (fun () ->
      Trace.with_span "outer" ~attrs:[ ("k", "v \"quoted\"") ] (fun () ->
          Trace.with_span "inner" (fun () -> ());
          Trace.instant "mark"));
  match Jsonl.parse (Trace.export_json tr) with
  | Error e -> Alcotest.failf "export does not parse: %s" e
  | Ok json ->
    let events =
      match Option.bind (Jsonl.member "traceEvents" json) Jsonl.to_list with
      | Some evs -> evs
      | None -> Alcotest.fail "no traceEvents"
    in
    Alcotest.(check int) "three events" 3 (List.length events);
    List.iter
      (fun ev ->
        Alcotest.(check bool) "has name" true (Jsonl.str_field "name" ev <> None);
        Alcotest.(check bool) "has ts" true (Jsonl.num_field "ts" ev <> None);
        match Jsonl.str_field "ph" ev with
        | Some "X" ->
          Alcotest.(check bool) "X has dur" true
            (match Jsonl.num_field "dur" ev with
            | Some d -> d >= 0.
            | None -> false)
        | Some "i" -> ()
        | other ->
          Alcotest.failf "unexpected ph %s" (Option.value ~default:"-" other))
      events

let test_ring_buffer_drops_oldest () =
  let tr = Trace.create ~capacity:4 () in
  Trace.install tr;
  Fun.protect ~finally:Trace.uninstall (fun () ->
      for i = 1 to 10 do
        Trace.with_span (string_of_int i) (fun () -> ())
      done);
  let names = List.map (fun e -> e.Trace.name) (Trace.events tr) in
  Alcotest.(check (list string)) "keeps the newest" [ "7"; "8"; "9"; "10" ]
    names;
  Alcotest.(check int) "counts the dropped" 6 (Trace.dropped tr)

(* --- prometheus exposition -------------------------------------------- *)

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let test_prometheus_exposition () =
  let m = Metrics.create () in
  let c =
    Metrics.counter m ~help:"requests" ~labels:[ ("kind", "query") ]
      "req_total"
  in
  Metrics.add c 3;
  Metrics.set (Metrics.gauge m ~help:"queue depth" "depth") 2.5;
  let h = Metrics.histogram m ~help:"latency" "lat_seconds" in
  Metrics.observe h 0.75;
  Metrics.observe h 3.;
  let text = Metrics.to_prometheus (Metrics.snapshot m) in
  List.iter
    (fun line ->
      Alcotest.(check bool) (Printf.sprintf "exposition has %S" line) true
        (contains text line))
    [ "# TYPE req_total counter";
      "# HELP req_total requests";
      "req_total{kind=\"query\"} 3";
      "depth 2.5";
      "# TYPE lat_seconds histogram";
      "lat_seconds_count 2";
      "lat_seconds_sum 3.75";
      "+Inf\"} 2" ]

(* --- logger ------------------------------------------------------------ *)

let with_captured_logger f =
  let buf = Buffer.create 256 in
  Logger.set_output (fun line ->
      Buffer.add_string buf line;
      Buffer.add_char buf '\n');
  Logger.set_clock (fun () -> 1754000000.5);
  Fun.protect
    ~finally:(fun () ->
      Logger.set_level Logger.Info;
      Logger.set_json false;
      Logger.set_clock Unix.gettimeofday;
      Logger.set_output (fun line ->
          prerr_string line;
          prerr_newline ();
          flush stderr))
    (fun () -> f buf)

let test_logger_json_and_levels () =
  with_captured_logger @@ fun buf ->
  Logger.set_json true;
  Logger.set_level Logger.Info;
  Logger.debug "suppressed";
  Logger.info
    ~fields:
      [ ("n", Logger.Int 7); ("f", Logger.Float 1.5);
        ("ok", Logger.Bool true); ("s", Logger.Str "a \"b\"") ]
    "served";
  let lines =
    String.split_on_char '\n' (String.trim (Buffer.contents buf))
  in
  Alcotest.(check int) "one record (debug suppressed)" 1 (List.length lines);
  match Jsonl.parse (List.hd lines) with
  | Error e -> Alcotest.failf "JSONL record does not parse: %s" e
  | Ok json ->
    Alcotest.(check (option string)) "level" (Some "info")
      (Jsonl.str_field "level" json);
    Alcotest.(check (option string)) "msg" (Some "served")
      (Jsonl.str_field "msg" json);
    Alcotest.(check (option string)) "string field" (Some "a \"b\"")
      (Jsonl.str_field "s" json);
    Alcotest.(check bool) "ts is ISO8601 UTC" true
      (match Jsonl.str_field "ts" json with
      | Some ts ->
        String.length ts = 24
        && ts.[4] = '-' && ts.[10] = 'T' && ts.[23] = 'Z'
      | None -> false)

let test_logger_text_format () =
  with_captured_logger @@ fun buf ->
  Logger.set_level Logger.Warn;
  Logger.info "suppressed";
  Logger.warn ~fields:[ ("addr", Logger.Str "a b") ] "listening";
  let line = String.trim (Buffer.contents buf) in
  Alcotest.(check bool) "has level" true (contains line " warn ");
  Alcotest.(check bool) "has message" true (contains line "listening");
  Alcotest.(check bool) "quotes spaced values" true
    (contains line "addr=\"a b\"")

let test_level_of_string () =
  List.iter
    (fun (s, expect) ->
      Alcotest.(check bool) s true (Logger.level_of_string s = expect))
    [ ("debug", Some Logger.Debug); ("warning", Some Logger.Warn);
      ("ERROR", Some Logger.Error); ("loud", None) ]

(* --- profiler properties ---------------------------------------------- *)

module Profile = Mdqa_obs.Profile

(* Snapshots are generated by replaying op scripts against a collector
   with a fake integer clock, so every accumulated duration is an exact
   float and merge algebra can be checked with [=].  The ops exercise
   every table: rule counters, scoped atom visits, rounds, queries and
   phases. *)
let profile_snapshot_of ops =
  let tick = ref 0. in
  let clock () = !tick in
  let p = Profile.create ~clock () in
  Profile.install p;
  Fun.protect ~finally:Profile.uninstall @@ fun () ->
  List.iter
    (fun n ->
      let rname = Printf.sprintf "r%d" (n mod 3) in
      let h = Profile.rule p rname in
      match n mod 7 with
      | 0 -> Profile.add_trigger h
      | 1 -> Profile.add_fire h
      | 2 -> Profile.add_matches h (n mod 5)
      | 3 -> Profile.add_rule_seconds h (float_of_int (n mod 9))
      | 4 ->
        Profile.with_scope p rname (fun () ->
            Profile.atom_visit p ~idx:(n mod 2) ~pred:"p"
              ~scanned:(n mod 11) ~matched:(n mod 4))
      | 5 ->
        Profile.with_round (n mod 4) (fun () ->
            tick := !tick +. float_of_int (n mod 6))
      | _ ->
        Profile.with_query
          (Printf.sprintf "q%d" (n mod 2))
          (fun () -> tick := !tick +. 1.))
    ops;
  Profile.snapshot p

(* Structural equality, ignoring GC readings: the [with_round] op
   samples the real [Gc.quick_stat], so two replays of the same script
   may legitimately observe different collection counts.  The algebra
   under test (counter and duration combination) is unaffected. *)
let strip_gc (s : Profile.snapshot) =
  { s with
    Profile.rounds =
      List.map
        (fun (n, (r : Profile.round_stat)) ->
          ( n,
            { r with
              Profile.minor_collections = 0; major_collections = 0;
              heap_words = 0 } ))
        s.Profile.rounds }

let prop_profile_merge_commutative =
  QCheck.Test.make ~name:"profile merge is commutative" ~count:200
    (QCheck.pair obs_list_arb obs_list_arb) (fun (a, b) ->
      let sa = profile_snapshot_of a and sb = profile_snapshot_of b in
      Profile.merge sa sb = Profile.merge sb sa)

let prop_profile_merge_associative =
  QCheck.Test.make ~name:"profile merge is associative" ~count:200
    (QCheck.triple obs_list_arb obs_list_arb obs_list_arb) (fun (a, b, c) ->
      let sa = profile_snapshot_of a
      and sb = profile_snapshot_of b
      and sc = profile_snapshot_of c in
      Profile.merge (Profile.merge sa sb) sc
      = Profile.merge sa (Profile.merge sb sc))

let prop_profile_merge_identity =
  QCheck.Test.make ~name:"empty is the merge identity" ~count:200
    obs_list_arb (fun a ->
      let s = profile_snapshot_of a in
      Profile.merge s Profile.empty = s
      && Profile.merge Profile.empty s = s)

let prop_profile_merge_counts_sum =
  QCheck.Test.make ~name:"merge sums counters and durations" ~count:200
    (QCheck.pair obs_list_arb obs_list_arb) (fun (a, b) ->
      let sa = strip_gc (profile_snapshot_of a)
      and sb = strip_gc (profile_snapshot_of b) in
      let m = Profile.merge sa sb in
      let rule_fires (s : Profile.snapshot) =
        sum_int (List.map (fun (_, r) -> r.Profile.fires) s.Profile.rules)
      and atom_scans (s : Profile.snapshot) =
        sum_int (List.map (fun (_, a) -> a.Profile.scanned) s.Profile.atoms)
      and query_evals (s : Profile.snapshot) =
        sum_int (List.map (fun (_, q) -> q.Profile.evals) s.Profile.queries)
      in
      rule_fires m = rule_fires sa + rule_fires sb
      && atom_scans m = atom_scans sa + atom_scans sb
      && query_evals m = query_evals sa + query_evals sb
      && Profile.total_rule_seconds m
         = Profile.total_rule_seconds sa +. Profile.total_rule_seconds sb
      && Profile.total_query_seconds m
         = Profile.total_query_seconds sa +. Profile.total_query_seconds sb)

let prop_profile_json_parses =
  QCheck.Test.make ~name:"to_json is valid JSON with all sections"
    ~count:100 obs_list_arb (fun a ->
      let s = profile_snapshot_of a in
      match Jsonl.parse (Profile.to_json s) with
      | Error _ -> false
      | Ok json ->
        List.for_all
          (fun k -> Jsonl.member k json <> None)
          [ "rules"; "atoms"; "rounds"; "queries"; "phases" ])

let test_profile_scope_discipline () =
  let p = Profile.create ~clock:(fun () -> 0.) () in
  Profile.install p;
  Fun.protect ~finally:Profile.uninstall @@ fun () ->
  Alcotest.(check bool) "no scope outside with_scope" true
    (Profile.scoped () = None);
  (* an unscoped visit must attribute nothing *)
  Profile.atom_visit p ~idx:0 ~pred:"p" ~scanned:5 ~matched:2;
  Alcotest.(check int) "unscoped visit dropped" 0
    (List.length (Profile.snapshot p).Profile.atoms);
  Profile.with_scope p "r" (fun () ->
      Alcotest.(check bool) "scoped inside" true (Profile.scoped () <> None);
      Profile.atom_visit p ~idx:1 ~pred:"q" ~scanned:3 ~matched:3);
  Alcotest.(check bool) "scope restored" true (Profile.scoped () = None);
  match Profile.find_atom (Profile.snapshot p) ("r", 1, "q") with
  | Some a ->
    Alcotest.(check int) "scanned" 3 a.Profile.scanned;
    Alcotest.(check int) "matched" 3 a.Profile.matched
  | None -> Alcotest.fail "scoped visit not attributed"

let test_profile_off_is_transparent () =
  Alcotest.(check bool) "inactive by default" false (Profile.active ());
  (* the with_* hooks must reduce to plain calls when off *)
  let r = Profile.with_round 1 (fun () -> Profile.with_phase "x" (fun () -> 41 + 1)) in
  Alcotest.(check int) "value passes through" 42 r

(* The acceptance pin: profiling the paper's hospital assessment must
   attribute positive time to every rule provenance says derived a
   known quality fact.  A fake strictly-increasing clock makes "every
   enumerated rule accrues time" deterministic — no dependence on
   wall-clock resolution. *)
let test_profile_attributes_hospital_rules () =
  let module Context = Mdqa_context.Context in
  let module Hospital = Mdqa_hospital.Hospital in
  let module Explain = Mdqa_datalog.Explain in
  let module R = Mdqa_relational in
  let tick = ref 0. in
  let p = Profile.create ~clock:(fun () -> tick := !tick +. 1.; !tick) () in
  Profile.install p;
  Fun.protect ~finally:Profile.uninstall @@ fun () ->
  let a =
    Context.assess ~provenance:true (Hospital.context ())
      ~source:(Hospital.source ())
  in
  let snap = Profile.snapshot p in
  let row =
    R.Tuple.of_list
      [ R.Value.sym "Sep/5-12:10"; R.Value.sym "Tom Waits";
        R.Value.real 38.2 ]
  in
  match Context.explain a "measurements" row with
  | Error e -> Alcotest.fail e
  | Ok tree ->
    let used = Explain.rules_used tree in
    Alcotest.(check bool) "provenance names rules" true (used <> []);
    List.iter
      (fun rule ->
        match Profile.find_rule snap rule with
        | None -> Alcotest.failf "no profile entry for rule %s" rule
        | Some r ->
          Alcotest.(check bool)
            (Printf.sprintf "%s accrued time" rule)
            true
            (r.Profile.rule_seconds > 0.))
      used;
    Alcotest.(check bool) "chase phase recorded" true
      (Profile.find_phase snap "chase" <> None);
    Alcotest.(check bool) "assess phase recorded" true
      (Profile.find_phase snap "assess" <> None)

(* --- stats sidecar ----------------------------------------------------- *)

module Stats = Mdqa_store.Stats

let with_tmp_sidecar f =
  let store = Filename.temp_file "mdqa_stats" ".store" in
  let path = Stats.path_of store in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ store; path ])
    (fun () -> f ~store ~path)

let prop_stats_roundtrip =
  QCheck.Test.make ~name:"sidecar write/read round-trips" ~count:50
    obs_list_arb (fun ops ->
      let snap = profile_snapshot_of ops in
      with_tmp_sidecar (fun ~store:_ ~path ->
          Stats.write ~path snap;
          Stats.read ~path = Ok snap))

let prop_stats_corruption_detected =
  QCheck.Test.make ~name:"every single-byte flip is rejected" ~count:10
    obs_list_arb (fun ops ->
      let snap = profile_snapshot_of ops in
      with_tmp_sidecar (fun ~store:_ ~path ->
          Stats.write ~path snap;
          let ic = open_in_bin path in
          let raw =
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          in
          let ok = ref true in
          String.iteri
            (fun i c ->
              let damaged = Bytes.of_string raw in
              Bytes.set damaged i (Char.chr (Char.code c lxor 0x40));
              let oc = open_out_bin path in
              output_bytes oc damaged;
              close_out oc;
              match Stats.read ~path with
              | Error _ -> ()
              | Ok _ -> ok := false)
            raw;
          !ok))

let test_stats_record_accumulates () =
  let s1 = profile_snapshot_of [ 0; 1; 2; 3; 17 ]
  and s2 = profile_snapshot_of [ 7; 8; 9; 10; 24 ] in
  with_tmp_sidecar (fun ~store ~path ->
      Stats.record ~store s1;
      Stats.record ~store s2;
      match Stats.read ~path with
      | Error e -> Alcotest.fail e
      | Ok got ->
        Alcotest.(check bool) "merge of both runs" true
          (got = Profile.merge s1 s2))

let test_stats_read_absent_and_truncated () =
  with_tmp_sidecar (fun ~store:_ ~path ->
      (try Sys.remove path with Sys_error _ -> ());
      Alcotest.(check bool) "absent file is an error, not a crash" true
        (match Stats.read ~path with Error _ -> true | Ok _ -> false);
      let oc = open_out_bin path in
      output_string oc "MDQA";
      close_out oc;
      Alcotest.(check bool) "truncated header rejected" true
        (match Stats.read ~path with Error _ -> true | Ok _ -> false))

(* A damaged (or healthy) sidecar must be invisible to store triage:
   fsck walks the snapshot, journal and generations, never [path.stats]. *)
let test_stats_opaque_to_fsck () =
  let module Store = Mdqa_store.Store in
  let module Fsck = Mdqa_store.Fsck in
  let dir = Filename.temp_file "mdqa_fsck_stats" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "s.store" in
  let guard = Mdqa_datalog.Guard.unlimited () in
  let program_text = "p(a). q(X) :- p(X)." in
  let program = (Mdqa_datalog.Parser.parse_string program_text).Mdqa_datalog.Parser.program in
  let store =
    Store.create ~guard ~path ~program_text ~variant:Mdqa_datalog.Chase.Restricted ()
  in
  ignore
    (Mdqa_datalog.Chase.run ~guard ~checkpoint:(Store.checkpoint store)
       program (Mdqa_relational.Instance.create ()));
  let oc = open_out_bin (Stats.path_of path) in
  output_string oc "garbage, not a valid sidecar at all";
  close_out oc;
  let report = Fsck.check ~path in
  Alcotest.(check bool) "store stays clean under a damaged sidecar" true
    (report.Fsck.status = Fsck.Clean)

(* ---------------------------------------------------------------------- *)

let case name f = Alcotest.test_case name `Quick f

let props = List.map QCheck_alcotest.to_alcotest

let suites =
  [ ( "obs.metrics",
      props
        [ prop_merge_commutative; prop_merge_associative;
          prop_merge_preserves_count_sum; prop_bucketing;
          prop_counter_monotone ]
      @ [ case "add rejects negative" test_counter_rejects_negative;
          case "registration kind clash" test_register_kind_clash;
          case "prometheus exposition" test_prometheus_exposition ] );
    ( "obs.trace",
      props [ prop_spans_survive_exceptions ]
      @ [ case "export is valid trace JSON" test_export_is_valid_json;
          case "ring buffer drops oldest" test_ring_buffer_drops_oldest ] );
    ( "obs.logger",
      [ case "JSONL records and level filtering" test_logger_json_and_levels;
        case "text format" test_logger_text_format;
        case "level parsing" test_level_of_string ] );
    ( "obs.profile",
      props
        [ prop_profile_merge_commutative; prop_profile_merge_associative;
          prop_profile_merge_identity; prop_profile_merge_counts_sum;
          prop_profile_json_parses ]
      @ [ case "scope discipline" test_profile_scope_discipline;
          case "off is transparent" test_profile_off_is_transparent;
          case "hospital assessment attributes every used rule"
            test_profile_attributes_hospital_rules ] );
    ( "obs.stats",
      props [ prop_stats_roundtrip; prop_stats_corruption_detected ]
      @ [ case "record accumulates across runs" test_stats_record_accumulates;
          case "absent and truncated sidecars are errors"
            test_stats_read_absent_and_truncated;
          case "fsck treats the sidecar as opaque" test_stats_opaque_to_fsck ] ) ]
