(* End-to-end reproduction of the paper's running example: the quality
   context computes Table II from Table I, the doctor's quality query,
   Example 5's downward-navigation answer, Example 6's disjunctive
   downward rule, and the assessment metrics. *)

open Mdqa_datalog
open Mdqa_context
module R = Mdqa_relational
module Hospital = Mdqa_hospital.Hospital

let v = Term.var
let c s = Term.Const (R.Value.sym s)
let sym = R.Value.sym
let tuple_testable = Alcotest.testable R.Tuple.pp R.Tuple.equal

let assessment = lazy (Context.assess (Hospital.context ()) ~source:(Hospital.source ()))

let test_chase_saturates () =
  let a = Lazy.force assessment in
  Alcotest.(check bool) "saturated" true
    (a.Context.chase.Chase.outcome = Chase.Saturated)

(* Experiment T2: the computed quality version equals Table II. *)
let test_measurements_q_is_table2 () =
  let a = Lazy.force assessment in
  match Context.quality_version a "measurements" with
  | None -> Alcotest.fail "no quality version computed"
  | Some q ->
    Alcotest.(check int) "two quality tuples" 2 (R.Relation.cardinal q);
    Alcotest.(check bool) "equals Table II" true
      (R.Tuple.Set.equal (R.Relation.to_set q)
         (R.Relation.to_set Hospital.expected_measurements_q))

(* Experiment F2/E7: the doctor's query through the context. *)
let test_doctor_query () =
  let a = Lazy.force assessment in
  match Context.clean_answers a Hospital.doctor_query with
  | None -> Alcotest.fail "chase failed"
  | Some answers ->
    Alcotest.(check (list tuple_testable)) "row 1 of Table I"
      [ R.Tuple.of_list [ sym "Sep/5-12:10"; sym "Tom Waits"; R.Value.real 38.2 ] ]
      answers

let test_doctor_query_dirty_semantics () =
  (* Without the context, the same query over raw measurements also
     returns Lou Reed-free but unvetted data: rows at Sep/5 noon
     include Tom's row regardless of quality; with P unconstrained it
     would also include Lou's Sep/5-12:05. *)
  let src = Hospital.source () in
  let raw = Query.certain src Hospital.doctor_query in
  Alcotest.(check int) "raw answer is the same row here" 1 (List.length raw);
  let no_patient_filter =
    Query.make ~name:"window_only"
      ~cmps:
        [ Atom.Cmp.make Atom.Cmp.Ge (v "T") (c "Sep/5-11:45");
          Atom.Cmp.make Atom.Cmp.Le (v "T") (c "Sep/5-12:15") ]
      ~head:[ v "T"; v "P"; v "V" ]
      [ Atom.make "measurements" [ v "T"; v "P"; v "V" ] ]
  in
  Alcotest.(check int) "window without context: 2 rows (Tom + Lou)" 2
    (List.length (Query.certain src no_patient_filter))

(* Experiment T4/E5: downward navigation generates Mark's shifts. *)
let test_example5_downward () =
  let m = Hospital.ontology () in
  match Mdqa_multidim.Md_ontology.certain_answers m Hospital.example5_query with
  | Query.Ok answers ->
    Alcotest.(check (list tuple_testable)) "Sep/9"
      [ R.Tuple.of_list [ sym "Sep/9" ] ]
      answers
  | _ -> Alcotest.fail "chase failed"

let test_example5_via_proof () =
  let m = Hospital.ontology () in
  let r = Mdqa_multidim.Md_ontology.proof_answers m Hospital.example5_query in
  Alcotest.(check bool) "complete" true r.Proof.complete;
  Alcotest.(check (list tuple_testable)) "Sep/9 via DeterministicWSQAns"
    [ R.Tuple.of_list [ sym "Sep/9" ] ]
    r.Proof.answers

let test_example5_shift_unknown () =
  (* the generated shift attribute is a null: asking for the shift
     value yields no certain answer *)
  let m = Hospital.ontology () in
  let q =
    Query.make ~name:"shift_of_mark" ~head:[ v "S" ]
      [ Atom.make "shifts" [ c "W1"; c "Sep/9"; c "Mark"; v "S" ] ]
  in
  (match Mdqa_multidim.Md_ontology.certain_answers m q with
   | Query.Ok [] -> ()
   | Query.Ok l -> Alcotest.failf "expected none, got %d" (List.length l)
   | _ -> Alcotest.fail "chase failed")

(* Experiment T5/E6: rule (9) generates PatientUnit data with fresh
   unit nulls for discharged patients. *)
let test_rule9_disjunctive_downward () =
  let m = Hospital.ontology () in
  let r = Mdqa_multidim.Md_ontology.chase m in
  Alcotest.(check bool) "saturated" true (r.Chase.outcome = Chase.Saturated);
  let pu = R.Instance.get r.Chase.instance "patient_unit" in
  (* Elvis Costello only appears via discharge: his unit is a null *)
  let elvis =
    R.Relation.scan pu [ (2, sym "Elvis Costello") ]
  in
  Alcotest.(check int) "one tuple for Elvis" 1 (List.length elvis);
  Alcotest.(check bool) "unit is a null" true
    (R.Value.is_null (R.Tuple.get (List.hd elvis) 0));
  (* and the null is linked into institution_unit under H2 *)
  let iu = R.Instance.get r.Chase.instance "institution_unit" in
  let h2_units = R.Relation.scan iu [ (0, sym "H2") ] in
  Alcotest.(check bool) "null unit under H2" true
    (List.exists (fun t -> R.Value.is_null (R.Tuple.get t 1)) h2_units)

(* BCQ through the shared null (both atoms of rule (9)'s head). *)
let test_rule9_joint_query () =
  let m = Hospital.ontology () in
  let q =
    Query.boolean
      [ Atom.make "institution_unit" [ c "H2"; v "U" ];
        Atom.make "patient_unit" [ v "U"; c "Oct/5"; c "Elvis Costello" ] ]
  in
  (match Mdqa_multidim.Md_ontology.certain_answers m q with
   | Query.Ok _ -> ()
   | _ -> Alcotest.fail "chase failed");
  Alcotest.(check bool) "entailed via proof search" true
    (Proof.entails
       (Mdqa_multidim.Md_ontology.program m)
       (Mdqa_multidim.Md_ontology.instance m)
       q)

(* Assessment metrics: 2 of 6 measurements are up to quality. *)
let test_assessment_report () =
  let a = Lazy.force assessment in
  match Assessment.report a with
  | [ r ] ->
    Alcotest.(check string) "relation" "measurements" r.Assessment.relation;
    Alcotest.(check int) "original size" 6 r.Assessment.original_size;
    Alcotest.(check int) "kept" 2 r.Assessment.kept;
    Alcotest.(check int) "removed" 4 r.Assessment.removed;
    Alcotest.(check int) "added" 0 r.Assessment.added;
    Alcotest.(check bool) "ratio 1/3" true (abs_float (r.Assessment.ratio -. (2. /. 6.)) < 1e-9)
  | l -> Alcotest.failf "expected one report, got %d" (List.length l)

let test_quality_ratio_helpers () =
  let ratio =
    Assessment.quality_ratio ~original:Hospital.measurements
      ~quality:Hospital.expected_measurements_q
  in
  Alcotest.(check bool) "ratio" true (abs_float (ratio -. (2. /. 6.)) < 1e-9);
  Alcotest.(check int) "departure" 4
    (Assessment.departure ~original:Hospital.measurements
       ~quality:Hospital.expected_measurements_q)

(* The raw PatientWard (with the intensive-care tuple) makes the
   context inconsistent: assessment surfaces the NC violation. *)
let test_raw_context_inconsistent () =
  let a =
    Context.assess (Hospital.context ~raw_patient_ward:true ())
      ~source:(Hospital.source ())
  in
  (match a.Context.chase.Chase.outcome with
   | Chase.Failed (Chase.Nc_violation _) -> ()
   | o -> Alcotest.failf "expected NC violation, got %a" Chase.pp_outcome o);
  Alcotest.(check bool) "no quality version" true
    (Context.quality_version a "measurements" = None);
  Alcotest.(check bool) "no clean answers" true
    (Context.clean_answers a Hospital.doctor_query = None)

(* Query rewriting Q -> Q^q is a pure predicate substitution. *)
let test_rewrite_query () =
  let ctx = Hospital.context () in
  let q' = Context.rewrite_query ctx Hospital.doctor_query in
  Alcotest.(check (list string)) "body predicate substituted"
    [ "measurements_q" ]
    (List.map Atom.pred q'.Query.body);
  Alcotest.(check int) "comparisons preserved" 3 (List.length q'.Query.cmps)

(* Upward-only methodology (§IV): answering the doctor-relevant
   PatientUnit query by FO rewriting matches the chase. *)
let test_upward_rewriting_methodology () =
  let m = Hospital.upward_ontology () in
  let q =
    Query.make ~name:"tom_units" ~head:[ v "U"; v "D" ]
      [ Atom.make "patient_unit" [ v "U"; v "D"; c "Tom Waits" ] ]
  in
  let expected =
    [ R.Tuple.of_list [ sym "Standard"; sym "Sep/5" ];
      R.Tuple.of_list [ sym "Standard"; sym "Sep/6" ];
      R.Tuple.of_list [ sym "Terminal"; sym "Sep/9" ] ]
  in
  (match Mdqa_multidim.Md_ontology.rewrite_answers m q with
   | Guard.Complete answers ->
     Alcotest.(check (list tuple_testable)) "exact units" expected answers
   | Guard.Degraded (_, e) ->
     Alcotest.failf "degraded: %s" (Guard.resource_name e.Guard.resource))

(* The scaled generator: quality pipeline works at size and the
   quality subset is the standard-unit, certified-nurse fraction. *)
let test_generator_pipeline () =
  let g = Hospital.Gen.default in
  let ctx = Hospital.Gen.context g in
  let src = Hospital.Gen.source g in
  let a = Context.assess ctx ~source:src in
  Alcotest.(check bool) "saturated" true
    (a.Context.chase.Chase.outcome = Chase.Saturated);
  match Context.quality_version a "measurements" with
  | None -> Alcotest.fail "no quality version"
  | Some q ->
    let total = R.Relation.cardinal (R.Instance.get src "measurements") in
    let qn = R.Relation.cardinal q in
    Alcotest.(check int) "total measurements" (g.Hospital.Gen.patients * g.Hospital.Gen.days) total;
    Alcotest.(check bool) "some but not all are quality" true
      (qn > 0 && qn < total)

let test_generator_referential_ok () =
  let g = Hospital.Gen.default in
  Alcotest.(check int) "no referential violations" 0
    (List.length
       (Mdqa_multidim.Md_ontology.referential_violations (Hospital.Gen.ontology g)))

let test_generator_doctor_query () =
  let g = Hospital.Gen.default in
  let a = Context.assess (Hospital.Gen.context g) ~source:(Hospital.Gen.source g) in
  match Context.clean_answers a (Hospital.Gen.doctor_query g) with
  | None -> Alcotest.fail "chase failed"
  | Some answers ->
    (* patient P0001 lives in ward of institution 1, unit 1 (standard):
       their day-1 measurement qualifies *)
    Alcotest.(check int) "one quality answer" 1 (List.length answers)

(* Incremental assessment: a new quality measurement arrives. *)
let test_incremental_assessment () =
  let a0 = Lazy.force assessment in
  (* Tom, Sep/5 at an instant already in the Time dimension: in the
     Standard unit, certified nurse on duty -> up to quality *)
  let new_row =
    R.Tuple.of_list [ sym "Sep/5-12:05"; sym "Tom Waits"; R.Value.real 37.9 ]
  in
  let a1 = Context.assess_incremental a0 ~added:[ ("measurements", new_row) ] in
  Alcotest.(check bool) "saturated" true
    (a1.Context.chase.Chase.outcome = Chase.Saturated);
  (match Context.quality_version a1 "measurements" with
   | Some q ->
     Alcotest.(check int) "three quality tuples now" 3 (R.Relation.cardinal q);
     Alcotest.(check bool) "contains the new row" true (R.Relation.mem q new_row)
   | None -> Alcotest.fail "no quality version");
  (* equal to a full re-assessment *)
  let source' = R.Instance.copy (Hospital.source ()) in
  ignore (R.Instance.add_tuple source' "measurements" new_row);
  let full = Context.assess (Hospital.context ()) ~source:source' in
  (match
     ( Context.quality_version a1 "measurements",
       Context.quality_version full "measurements" )
   with
   | Some q1, Some q2 ->
     Alcotest.(check bool) "incremental = full" true
       (R.Tuple.Set.equal (R.Relation.to_set q1) (R.Relation.to_set q2))
   | _ -> Alcotest.fail "missing quality versions");
  (* the original assessment object is unaffected *)
  (match Context.quality_version a0 "measurements" with
   | Some q -> Alcotest.(check int) "prior untouched" 2 (R.Relation.cardinal q)
   | None -> Alcotest.fail "prior lost")

let test_incremental_non_quality_row () =
  let a0 = Lazy.force assessment in
  (* Lou Reed is in the Terminal unit: the new row must NOT qualify *)
  let new_row =
    R.Tuple.of_list [ sym "Sep/6-11:50"; sym "Lou Reed"; R.Value.real 36.5 ]
  in
  let a1 = Context.assess_incremental a0 ~added:[ ("measurements", new_row) ] in
  match Context.quality_version a1 "measurements" with
  | Some q ->
    Alcotest.(check int) "still two quality tuples" 2 (R.Relation.cardinal q)
  | None -> Alcotest.fail "no quality version"

let case name f = Alcotest.test_case name `Quick f

let suites =
  [ ( "hospital.pipeline",
      [ case "context chase saturates" test_chase_saturates;
        case "T2: measurements_q equals Table II" test_measurements_q_is_table2;
        case "E7: doctor's quality query" test_doctor_query;
        case "raw query without context differs" test_doctor_query_dirty_semantics;
        case "assessment report (2 of 6)" test_assessment_report;
        case "quality ratio helpers" test_quality_ratio_helpers;
        case "raw patient_ward makes context inconsistent"
          test_raw_context_inconsistent;
        case "query rewriting Q -> Q^q" test_rewrite_query ] );
    ( "hospital.navigation",
      [ case "E5: Mark's dates via chase" test_example5_downward;
        case "E5: via DeterministicWSQAns" test_example5_via_proof;
        case "E5: shift value is not certain" test_example5_shift_unknown;
        case "E6: rule (9) null unit" test_rule9_disjunctive_downward;
        case "E6: joint query through shared null" test_rule9_joint_query;
        case "§IV: upward rewriting methodology" test_upward_rewriting_methodology
      ] );
    ( "hospital.incremental",
      [ case "new quality measurement" test_incremental_assessment;
        case "new non-quality measurement" test_incremental_non_quality_row ] );
    ( "hospital.generator",
      [ case "scaled pipeline" test_generator_pipeline;
        case "scaled referential integrity" test_generator_referential_ok;
        case "scaled doctor query" test_generator_doctor_query ] ) ]
