(* Tests for the Datalog± engine: unification, evaluation, chase,
   syntactic classes, separability, top-down proof search, rewriting,
   parser/pretty round-trips. *)

open Mdqa_datalog
module R = Mdqa_relational

let v = Term.var
let s = Term.sym
let atom p args = Atom.make p args
let tuple_testable = Alcotest.testable R.Tuple.pp R.Tuple.equal

let tuples_of_strings rows =
  List.map (fun r -> R.Tuple.of_list (List.map R.Value.sym r)) rows

let instance_of bindings =
  let inst = R.Instance.create () in
  List.iter
    (fun (name, arity, rows) ->
      ignore
        (R.Instance.declare inst
           (R.Rel_schema.of_names name (List.init arity (Printf.sprintf "c%d"))));
      List.iter
        (fun row -> ignore (R.Instance.add_tuple inst name row))
        (tuples_of_strings rows))
    bindings;
  inst

(* ------------------------------------------------------------------ *)
(* Unify / Subst *)

let test_unify_basic () =
  let a = atom "p" [ v "X"; s "a" ] and b = atom "p" [ s "b"; v "Y" ] in
  match Unify.unify a b with
  | None -> Alcotest.fail "expected unifier"
  | Some sub ->
    Alcotest.(check bool) "X -> b" true
      (Term.equal (Subst.walk sub (v "X")) (s "b"));
    Alcotest.(check bool) "Y -> a" true
      (Term.equal (Subst.walk sub (v "Y")) (s "a"))

let test_unify_clash () =
  Alcotest.(check bool) "constant clash" true
    (Unify.unify (atom "p" [ s "a" ]) (atom "p" [ s "b" ]) = None);
  Alcotest.(check bool) "pred mismatch" true
    (Unify.unify (atom "p" [ v "X" ]) (atom "q" [ v "X" ]) = None);
  Alcotest.(check bool) "arity mismatch" true
    (Unify.unify (atom "p" [ v "X" ]) (atom "p" [ v "X"; v "Y" ]) = None)

let test_unify_shared_var () =
  (* p(X, X) with p(a, Y): X->a, Y->a *)
  match Unify.unify (atom "p" [ v "X"; v "X" ]) (atom "p" [ s "a"; v "Y" ]) with
  | None -> Alcotest.fail "expected unifier"
  | Some sub ->
    Alcotest.(check bool) "Y via X" true
      (Term.equal (Subst.walk sub (v "Y")) (s "a"))

let test_match_one_way () =
  (* match_against binds only pattern vars *)
  Alcotest.(check bool) "target var not bindable" true
    (Unify.match_against ~pattern:(atom "p" [ s "a" ]) (atom "p" [ v "X" ])
     = None);
  Alcotest.(check bool) "pattern var binds" true
    (Unify.match_against ~pattern:(atom "p" [ v "X" ]) (atom "p" [ s "a" ])
     <> None)

let test_subst_conflict () =
  let sub = Subst.bind_exn Subst.empty "X" (s "a") in
  Alcotest.(check bool) "rebind same ok" true (Subst.bind sub "X" (s "a") <> None);
  Alcotest.(check bool) "rebind different fails" true
    (Subst.bind sub "X" (s "b") = None)

(* ------------------------------------------------------------------ *)
(* Eval *)

let edge_inst =
  instance_of [ ("e", 2, [ [ "a"; "b" ]; [ "b"; "c" ]; [ "c"; "d" ] ]) ]

let test_eval_join () =
  (* e(X,Y), e(Y,Z): paths of length 2 *)
  let body = [ atom "e" [ v "X"; v "Y" ]; atom "e" [ v "Y"; v "Z" ] ] in
  let answers = Eval.answers edge_inst body in
  Alcotest.(check int) "two paths" 2 (List.length answers)

let test_eval_constants_in_atoms () =
  let body = [ atom "e" [ s "a"; v "Y" ] ] in
  let answers = Eval.answers edge_inst body in
  Alcotest.(check int) "one" 1 (List.length answers);
  Alcotest.(check bool) "Y=b" true
    (Term.equal (Subst.walk (List.hd answers) (v "Y")) (s "b"))

let test_eval_cmps () =
  let body = [ atom "e" [ v "X"; v "Y" ] ] in
  let cmps = [ Atom.Cmp.make Atom.Cmp.Neq (v "X") (s "a") ] in
  Alcotest.(check int) "filtered" 2 (List.length (Eval.answers ~cmps edge_inst body))

let test_eval_missing_pred () =
  Alcotest.(check int) "no such pred" 0
    (List.length (Eval.answers edge_inst [ atom "zzz" [ v "X" ] ]))

let test_eval_delta () =
  (* delta = {e(b,c)}: matches of e(X,Y),e(Y,Z) using it *)
  let delta pred t =
    pred = "e"
    && R.Tuple.equal t (R.Tuple.of_list [ R.Value.sym "b"; R.Value.sym "c" ])
  in
  let body = [ atom "e" [ v "X"; v "Y" ]; atom "e" [ v "Y"; v "Z" ] ] in
  let ds = Eval.delta_answers edge_inst ~delta body in
  (* (a,b,c) uses it as second atom, (b,c,d) as first: both qualify *)
  Alcotest.(check int) "both matches involve delta" 2 (List.length ds);
  let none pred' t =
    ignore pred';
    ignore t;
    false
  in
  Alcotest.(check int) "empty delta, no matches" 0
    (List.length (Eval.delta_answers edge_inst ~delta:none body))

(* ------------------------------------------------------------------ *)
(* Chase *)

let tgd ?name body head = Tgd.make ?name ~body ~head ()

let test_chase_transitive_closure () =
  let p =
    Program.make
      ~tgds:
        [ tgd [ atom "e" [ v "X"; v "Y" ] ] [ atom "t" [ v "X"; v "Y" ] ];
          tgd
            [ atom "e" [ v "X"; v "Y" ]; atom "t" [ v "Y"; v "Z" ] ]
            [ atom "t" [ v "X"; v "Z" ] ] ]
      ()
  in
  let r = Chase.run p edge_inst in
  Alcotest.(check bool) "saturated" true (r.Chase.outcome = Chase.Saturated);
  let t = R.Instance.get r.Chase.instance "t" in
  (* closure of a->b->c->d: 3+2+1 = 6 pairs *)
  Alcotest.(check int) "closure size" 6 (R.Relation.cardinal t)

let test_chase_semi_naive_agrees () =
  let p =
    Program.make
      ~tgds:
        [ tgd [ atom "e" [ v "X"; v "Y" ] ] [ atom "t" [ v "X"; v "Y" ] ];
          tgd
            [ atom "t" [ v "X"; v "Y" ]; atom "t" [ v "Y"; v "Z" ] ]
            [ atom "t" [ v "X"; v "Z" ] ] ]
      ()
  in
  let r1 = Chase.run ~semi_naive:true p edge_inst in
  let r2 = Chase.run ~semi_naive:false p edge_inst in
  Alcotest.(check bool) "same instance" true
    (R.Instance.equal r1.Chase.instance r2.Chase.instance)

let test_chase_existential_nulls () =
  (* person(X) -> ∃Y father(X,Y) *)
  let p =
    Program.make
      ~tgds:[ tgd [ atom "person" [ v "X" ] ] [ atom "father" [ v "X"; v "Y" ] ] ]
      ()
  in
  let inst = instance_of [ ("person", 1, [ [ "ann" ]; [ "bob" ] ]) ] in
  let r = Chase.run p inst in
  Alcotest.(check bool) "saturated" true (r.Chase.outcome = Chase.Saturated);
  Alcotest.(check int) "two nulls" 2 r.Chase.stats.Chase.nulls_created;
  let father = R.Instance.get r.Chase.instance "father" in
  Alcotest.(check int) "two facts" 2 (R.Relation.cardinal father);
  R.Relation.iter
    (fun t -> Alcotest.(check bool) "null in pos 1" true
        (R.Value.is_null (R.Tuple.get t 1)))
    father

let test_chase_restricted_skips_satisfied () =
  (* person(X) -> ∃Y father(X,Y); ann already has a father *)
  let p =
    Program.make
      ~tgds:[ tgd [ atom "person" [ v "X" ] ] [ atom "father" [ v "X"; v "Y" ] ] ]
      ()
  in
  let inst =
    instance_of
      [ ("person", 1, [ [ "ann" ] ]); ("father", 2, [ [ "ann"; "carl" ] ]) ]
  in
  let r = Chase.run ~variant:Chase.Restricted p inst in
  Alcotest.(check int) "no nulls" 0 r.Chase.stats.Chase.nulls_created;
  let r2 = Chase.run ~variant:Chase.Oblivious p inst in
  Alcotest.(check int) "oblivious fires anyway" 1
    r2.Chase.stats.Chase.nulls_created

let test_chase_budget_on_divergent () =
  (* r(X,Y) -> ∃Z r(Y,Z): infinite chase, must stop on budget *)
  let p =
    Program.make
      ~tgds:
        [ tgd [ atom "r" [ v "X"; v "Y" ] ] [ atom "r" [ v "Y"; v "Z" ] ] ]
      ()
  in
  let inst = instance_of [ ("r", 2, [ [ "a"; "b" ] ]) ] in
  let r = Chase.run ~max_nulls:50 p inst in
  Alcotest.(check bool) "out of null budget" true
    (match r.Chase.outcome with
     | Chase.Out_of_budget { Guard.resource = Guard.Nulls; _ } -> true
     | _ -> false)

let test_chase_egd_merges_null () =
  (* emp(X) -> ∃D dept(X,D); EGD: dept(X,D1), dept(X,D2) -> D1=D2 with
     an extensional dept fact: the invented null must merge into it. *)
  let p =
    Program.make
      ~tgds:[ tgd [ atom "emp" [ v "X" ] ] [ atom "dept" [ v "X"; v "D" ] ] ]
      ~egds:
        [ Egd.make
            ~body:[ atom "dept" [ v "X"; v "D1" ]; atom "dept" [ v "X"; v "D2" ] ]
            (v "D1") (v "D2") ]
      ()
  in
  let inst =
    instance_of [ ("emp", 1, [ [ "ann" ] ]); ("dept", 2, [ [ "ann"; "hr" ] ]) ]
  in
  (* restricted chase never fires (head satisfied); force the
     interesting case with the oblivious variant *)
  let r = Chase.run ~variant:Chase.Oblivious p inst in
  Alcotest.(check bool) "saturated" true (r.Chase.outcome = Chase.Saturated);
  let dept = R.Instance.get r.Chase.instance "dept" in
  Alcotest.(check int) "merged to one fact" 1 (R.Relation.cardinal dept);
  Alcotest.(check bool) "no null remains" true
    (R.Relation.to_list dept |> List.for_all (fun t -> not (R.Tuple.has_null t)))

let test_chase_egd_constant_clash () =
  let p =
    Program.make
      ~egds:
        [ Egd.make
            ~body:[ atom "dept" [ v "X"; v "D1" ]; atom "dept" [ v "X"; v "D2" ] ]
            (v "D1") (v "D2") ]
      ()
  in
  let inst = instance_of [ ("dept", 2, [ [ "ann"; "hr" ]; [ "ann"; "it" ] ]) ] in
  let r = Chase.run p inst in
  (match r.Chase.outcome with
   | Chase.Failed (Chase.Egd_clash _) -> ()
   | o -> Alcotest.failf "expected EGD clash, got %a" Chase.pp_outcome o)

let test_chase_nc_violation () =
  let p =
    Program.make
      ~ncs:[ Nc.make [ atom "bad" [ v "X" ] ] ]
      ()
  in
  let inst = instance_of [ ("bad", 1, [ [ "x" ] ]) ] in
  let r = Chase.run p inst in
  (match r.Chase.outcome with
   | Chase.Failed (Chase.Nc_violation _) -> ()
   | o -> Alcotest.failf "expected NC violation, got %a" Chase.pp_outcome o)

let test_chase_nc_with_cmp () =
  let p =
    Program.make
      ~ncs:
        [ Nc.make
            ~cmps:[ Atom.Cmp.make Atom.Cmp.Gt (v "X") (Term.int 10) ]
            [ atom "m" [ v "X" ] ] ]
      ()
  in
  let ok = R.Instance.create () in
  ignore (R.Instance.declare ok (R.Rel_schema.of_names "m" [ "a" ]));
  ignore (R.Instance.add_tuple ok "m" (R.Tuple.of_list [ R.Value.int 5 ]));
  Alcotest.(check bool) "below threshold fine" true
    ((Chase.run p ok).Chase.outcome = Chase.Saturated);
  ignore (R.Instance.add_tuple ok "m" (R.Tuple.of_list [ R.Value.int 20 ]));
  (match (Chase.run p ok).Chase.outcome with
   | Chase.Failed (Chase.Nc_violation _) -> ()
   | o -> Alcotest.failf "expected violation, got %a" Chase.pp_outcome o)

let test_chase_input_not_mutated () =
  let p =
    Program.make
      ~tgds:[ tgd [ atom "person" [ v "X" ] ] [ atom "copy" [ v "X" ] ] ]
      ()
  in
  let inst = instance_of [ ("person", 1, [ [ "ann" ] ]) ] in
  ignore (Chase.run p inst);
  Alcotest.(check bool) "no copy relation in input" true
    (R.Instance.find inst "copy" = None)

let test_chase_multi_atom_head_shares_null () =
  (* discharge(I,P) -> ∃U inst_unit(I,U), patient_unit(U,P) *)
  let p =
    Program.make
      ~tgds:
        [ tgd
            [ atom "discharge" [ v "I"; v "P" ] ]
            [ atom "inst_unit" [ v "I"; v "U" ];
              atom "patient_unit" [ v "U"; v "P" ] ] ]
      ()
  in
  let inst = instance_of [ ("discharge", 2, [ [ "h1"; "tom" ] ]) ] in
  let r = Chase.run p inst in
  Alcotest.(check int) "one null" 1 r.Chase.stats.Chase.nulls_created;
  let iu = R.Instance.get r.Chase.instance "inst_unit" in
  let pu = R.Instance.get r.Chase.instance "patient_unit" in
  let null_of rel pos =
    match R.Relation.to_list rel with
    | [ t ] -> R.Tuple.get t pos
    | _ -> Alcotest.fail "expected singleton"
  in
  Alcotest.(check bool) "same null shared" true
    (R.Value.equal (null_of iu 1) (null_of pu 0))

(* ------------------------------------------------------------------ *)
(* Classes *)

(* σ: t(X,Z) :- r(X,Y), s(Y,Z) — not sticky (marked Y repeated) but WS *)
let prog_join =
  Program.make
    ~tgds:
      [ tgd
          [ atom "r" [ v "X"; v "Y" ]; atom "s" [ v "Y"; v "Z" ] ]
          [ atom "t" [ v "X"; v "Z" ] ] ]
    ()

(* σ: r(Y,Z) :- r(X,Y) with Z existential — linear, sticky, not WA *)
let prog_linear_cyclic =
  Program.make
    ~tgds:[ tgd [ atom "r" [ v "X"; v "Y" ] ] [ atom "r" [ v "Y"; v "Z" ] ] ]
    ()

(* adds s(X) :- r(X,Y), r(Y,X): marked repeated var at infinite-rank
   positions only — not weakly sticky *)
let prog_not_ws =
  Program.make
    ~tgds:
      [ tgd [ atom "r" [ v "X"; v "Y" ] ] [ atom "r" [ v "Y"; v "Z" ] ];
        tgd
          [ atom "r" [ v "X"; v "Y" ]; atom "r" [ v "Y"; v "X" ] ]
          [ atom "s" [ v "X" ] ] ]
    ()

let test_classes_join_program () =
  let c = Classes.classify prog_join in
  Alcotest.(check bool) "not linear" false c.Classes.linear;
  Alcotest.(check bool) "not guarded" false c.Classes.guarded;
  Alcotest.(check bool) "weakly guarded" true c.Classes.weakly_guarded;
  Alcotest.(check bool) "not sticky" false c.Classes.sticky;
  Alcotest.(check bool) "weakly sticky" true c.Classes.weakly_sticky;
  Alcotest.(check bool) "weakly acyclic" true c.Classes.weakly_acyclic

let test_classes_linear_cyclic () =
  let c = Classes.classify prog_linear_cyclic in
  Alcotest.(check bool) "linear" true c.Classes.linear;
  Alcotest.(check bool) "guarded" true c.Classes.guarded;
  Alcotest.(check bool) "sticky" true c.Classes.sticky;
  Alcotest.(check bool) "weakly sticky" true c.Classes.weakly_sticky;
  Alcotest.(check bool) "not weakly acyclic" false c.Classes.weakly_acyclic

let test_classes_not_ws () =
  let c = Classes.classify prog_not_ws in
  Alcotest.(check bool) "not sticky" false c.Classes.sticky;
  Alcotest.(check bool) "not weakly sticky" false c.Classes.weakly_sticky;
  let viols = Stickiness.weak_stickiness_violations prog_not_ws in
  Alcotest.(check int) "one violation" 1 (List.length viols);
  Alcotest.(check string) "on Y" "Y" (snd (List.hd viols))

let test_warded () =
  (* full programs have no harmful variables: trivially warded *)
  Alcotest.(check bool) "join program warded" true (Classes.is_warded prog_join);
  (* linear rules are warded: the single body atom is the ward *)
  Alcotest.(check bool) "linear cyclic warded" true
    (Classes.is_warded prog_linear_cyclic);
  (* two dangerous variables spread over two atoms: not warded *)
  let not_warded =
    Program.make
      ~tgds:
        [ tgd [ atom "p" [ v "X"; v "Y" ] ] [ atom "p" [ v "Y"; v "Z" ] ];
          tgd
            [ atom "p" [ v "X"; v "Z1" ]; atom "p" [ v "Y"; v "Z2" ] ]
            [ atom "t" [ v "X"; v "Y" ] ] ]
      ()
  in
  Alcotest.(check bool) "split dangerous vars: not warded" false
    (Classes.is_warded not_warded);
  Alcotest.(check bool) "report includes wardedness" true
    (Classes.classify prog_join).Classes.warded

let test_guarded_detection () =
  (* guard g(X,Y,Z) covers both body vars of the join *)
  let p =
    Program.make
      ~tgds:
        [ tgd
            [ atom "g" [ v "X"; v "Y"; v "Z" ]; atom "r" [ v "X"; v "Y" ] ]
            [ atom "t" [ v "X" ] ] ]
      ()
  in
  Alcotest.(check bool) "guarded" true (Classes.is_guarded p)

let test_position_graph_ranks () =
  let g = Position_graph.build prog_join in
  (* no existentials: every position has rank 0 *)
  List.iter
    (fun p ->
      Alcotest.(check (option int)) "rank 0" (Some 0) (Position_graph.rank g p))
    (Position_graph.positions g);
  let g2 = Position_graph.build prog_linear_cyclic in
  Alcotest.(check bool) "r positions infinite" true
    (List.length (Position_graph.infinite_rank_positions g2) = 2)

let test_position_graph_finite_special () =
  (* p(X) -> ∃Y q(X,Y): q[1] has rank 1, all finite *)
  let p =
    Program.make
      ~tgds:[ tgd [ atom "p" [ v "X" ] ] [ atom "q" [ v "X"; v "Y" ] ] ]
      ()
  in
  let g = Position_graph.build p in
  Alcotest.(check bool) "weakly acyclic" true (Position_graph.is_weakly_acyclic g);
  Alcotest.(check (option int)) "q[1] rank 1" (Some 1)
    (Position_graph.rank g ("q", 1));
  Alcotest.(check (option int)) "q[0] rank 0" (Some 0)
    (Position_graph.rank g ("q", 0))

let test_affected_positions () =
  (* p(X) -> ∃Y q(X,Y);  q(X,Y) -> t(Y): t[0] affected transitively *)
  let p =
    Program.make
      ~tgds:
        [ tgd [ atom "p" [ v "X" ] ] [ atom "q" [ v "X"; v "Y" ] ];
          tgd [ atom "q" [ v "X"; v "Y" ] ] [ atom "t" [ v "Y" ] ] ]
      ()
  in
  let g = Position_graph.build p in
  let affected = Position_graph.affected_positions g in
  Alcotest.(check bool) "q[1] affected" true (List.mem ("q", 1) affected);
  Alcotest.(check bool) "t[0] affected" true (List.mem ("t", 0) affected);
  Alcotest.(check bool) "q[0] not affected" false (List.mem ("q", 0) affected)

let test_separability () =
  (* EGD equating a variable at an affected position: not separable *)
  let p =
    Program.make
      ~tgds:[ tgd [ atom "p" [ v "X" ] ] [ atom "q" [ v "X"; v "Y" ] ] ]
      ~egds:
        [ Egd.make
            ~body:[ atom "q" [ v "X"; v "Y1" ]; atom "q" [ v "X"; v "Y2" ] ]
            (v "Y1") (v "Y2") ]
      ()
  in
  Alcotest.(check bool) "affected head: not separable" false
    (Separability.non_affected_heads p).Separability.separable;
  (* EGD on the key side only: separable *)
  let p2 =
    Program.make
      ~tgds:[ tgd [ atom "p" [ v "X" ] ] [ atom "q" [ v "X"; v "Y" ] ] ]
      ~egds:
        [ Egd.make
            ~body:[ atom "q" [ v "X1"; v "Y" ]; atom "q" [ v "X2"; v "Y" ] ]
            (v "X1") (v "X2") ]
      ()
  in
  Alcotest.(check bool) "non-affected heads: separable" true
    (Separability.non_affected_heads p2).Separability.separable;
  Alcotest.(check bool) "within categorical positions" true
    (Separability.within_positions p2 ~closed:[ ("q", 0) ]).Separability
      .separable

(* ------------------------------------------------------------------ *)
(* Query + certain answers *)

let test_query_certain_answers_filter_nulls () =
  (* person(X) -> ∃Y father(X,Y); ?q(Y) :- father(ann, Y) has no
     certain answer; ?q(X) :- father(X, Y) has ann *)
  let p =
    Program.make
      ~tgds:[ tgd [ atom "person" [ v "X" ] ] [ atom "father" [ v "X"; v "Y" ] ] ]
      ()
  in
  let inst = instance_of [ ("person", 1, [ [ "ann" ] ]) ] in
  let q1 = Query.make ~head:[ v "Y" ] [ atom "father" [ s "ann"; v "Y" ] ] in
  (match Query.certain_answers p inst q1 with
   | Query.Ok [] -> ()
   | Query.Ok l -> Alcotest.failf "expected none, got %d" (List.length l)
   | _ -> Alcotest.fail "chase issue");
  let q2 = Query.make ~head:[ v "X" ] [ atom "father" [ v "X"; v "Y" ] ] in
  (match Query.certain_answers p inst q2 with
   | Query.Ok [ t ] ->
     Alcotest.check tuple_testable "ann"
       (R.Tuple.of_list [ R.Value.sym "ann" ]) t
   | _ -> Alcotest.fail "expected exactly ann")

let test_query_boolean_entailment () =
  let p =
    Program.make
      ~tgds:[ tgd [ atom "person" [ v "X" ] ] [ atom "father" [ v "X"; v "Y" ] ] ]
      ()
  in
  let inst = instance_of [ ("person", 1, [ [ "ann" ] ]) ] in
  let yes = Query.boolean [ atom "father" [ s "ann"; v "Y" ] ] in
  let no = Query.boolean [ atom "father" [ s "bob"; v "Y" ] ] in
  (match Query.entails p inst yes with
   | Query.Ok b -> Alcotest.(check bool) "entailed" true b
   | _ -> Alcotest.fail "chase issue");
  (match Query.entails p inst no with
   | Query.Ok b -> Alcotest.(check bool) "not entailed" false b
   | _ -> Alcotest.fail "chase issue")

let test_query_inconsistent () =
  let p = Program.make ~ncs:[ Nc.make [ atom "bad" [ v "X" ] ] ] () in
  let inst = instance_of [ ("bad", 1, [ [ "x" ] ]) ] in
  let q = Query.boolean [ atom "bad" [ v "X" ] ] in
  (match Query.entails p inst q with
   | Query.Inconsistent _ -> ()
   | _ -> Alcotest.fail "expected Inconsistent")

(* ------------------------------------------------------------------ *)
(* Proof: DeterministicWSQAns *)

let test_proof_edb_only () =
  let p = Program.make () in
  let q = Query.make ~head:[ v "X" ] [ atom "e" [ v "X"; s "b" ] ] in
  let r = Proof.answer p edge_inst q in
  Alcotest.(check bool) "complete" true r.Proof.complete;
  Alcotest.(check (list tuple_testable)) "a"
    [ R.Tuple.of_list [ R.Value.sym "a" ] ]
    r.Proof.answers

let test_proof_via_rule () =
  let p =
    Program.make
      ~tgds:
        [ tgd [ atom "e" [ v "X"; v "Y" ] ] [ atom "t" [ v "X"; v "Y" ] ];
          tgd
            [ atom "e" [ v "X"; v "Y" ]; atom "t" [ v "Y"; v "Z" ] ]
            [ atom "t" [ v "X"; v "Z" ] ] ]
      ()
  in
  let q = Query.make ~head:[ v "Z" ] [ atom "t" [ s "a"; v "Z" ] ] in
  let r = Proof.answer p edge_inst q in
  Alcotest.(check int) "b, c, d reachable" 3 (List.length r.Proof.answers)

let test_proof_existential_not_answer () =
  (* father invented by rule: entailed as BCQ but no certain answer *)
  let p =
    Program.make
      ~tgds:[ tgd [ atom "person" [ v "X" ] ] [ atom "father" [ v "X"; v "Y" ] ] ]
      ()
  in
  let inst = instance_of [ ("person", 1, [ [ "ann" ] ]) ] in
  Alcotest.(check bool) "BCQ holds" true
    (Proof.entails p inst (Query.boolean [ atom "father" [ s "ann"; v "Y" ] ]));
  let r =
    Proof.answer p inst
      (Query.make ~head:[ v "Y" ] [ atom "father" [ s "ann"; v "Y" ] ])
  in
  Alcotest.(check int) "no certain answer" 0 (List.length r.Proof.answers)

let test_proof_existential_blocks_constant () =
  (* the invented null cannot equal a constant *)
  let p =
    Program.make
      ~tgds:[ tgd [ atom "person" [ v "X" ] ] [ atom "father" [ v "X"; v "Y" ] ] ]
      ()
  in
  let inst = instance_of [ ("person", 1, [ [ "ann" ] ]) ] in
  Alcotest.(check bool) "father(ann, carl) not entailed" false
    (Proof.entails p inst (Query.boolean [ atom "father" [ s "ann"; s "carl" ] ]))

let test_proof_multi_atom_head_lemma () =
  (* discharge(I,P) -> ∃U iu(I,U), pu(U,P).
     BCQ ?- iu(h1,U), pu(U,tom) needs the shared null: provable only
     via the sibling-lemma mechanism. *)
  let p =
    Program.make
      ~tgds:
        [ tgd
            [ atom "discharge" [ v "I"; v "P" ] ]
            [ atom "iu" [ v "I"; v "U" ]; atom "pu" [ v "U"; v "P" ] ] ]
      ()
  in
  let inst = instance_of [ ("discharge", 2, [ [ "h1"; "tom" ] ]) ] in
  Alcotest.(check bool) "joint query entailed" true
    (Proof.entails p inst
       (Query.boolean [ atom "iu" [ s "h1"; v "U" ]; atom "pu" [ v "U"; s "tom" ] ]));
  Alcotest.(check bool) "wrong patient rejected" false
    (Proof.entails p inst
       (Query.boolean [ atom "iu" [ s "h1"; v "U" ]; atom "pu" [ v "U"; s "bob" ] ]))

let test_proof_agrees_with_chase () =
  let p =
    Program.make
      ~tgds:
        [ tgd [ atom "e" [ v "X"; v "Y" ] ] [ atom "t" [ v "X"; v "Y" ] ];
          tgd
            [ atom "t" [ v "X"; v "Y" ]; atom "t" [ v "Y"; v "Z" ] ]
            [ atom "t" [ v "X"; v "Z" ] ] ]
      ()
  in
  let q = Query.make ~head:[ v "X"; v "Z" ] [ atom "t" [ v "X"; v "Z" ] ] in
  let via_chase =
    match Query.certain_answers p edge_inst q with
    | Query.Ok l -> l
    | _ -> Alcotest.fail "chase failed"
  in
  let via_proof = (Proof.answer p edge_inst q).Proof.answers in
  Alcotest.(check (list tuple_testable)) "same answers" via_chase via_proof

(* ------------------------------------------------------------------ *)
(* Rewrite *)

let test_rewrite_simple_unfold () =
  (* pu(U,P) :- pw(W,P), uw(U,W): query over pu rewrites to EDB *)
  let p =
    Program.make
      ~tgds:
        [ tgd
            [ atom "pw" [ v "W"; v "P" ]; atom "uw" [ v "U"; v "W" ] ]
            [ atom "pu" [ v "U"; v "P" ] ] ]
      ()
  in
  Alcotest.(check bool) "rewritable" true (Rewrite.rewritable p);
  let q = Query.make ~head:[ v "P" ] [ atom "pu" [ s "std"; v "P" ] ] in
  (match Rewrite.rewrite p q with
   | Guard.Complete r ->
     Alcotest.(check int) "two disjuncts" 2 (List.length r.Rewrite.ucq)
   | Guard.Degraded (_, e) ->
     Alcotest.failf "degraded: %s" (Guard.resource_name e.Guard.resource));
  let inst =
    instance_of
      [ ("pw", 2, [ [ "w1"; "tom" ]; [ "w3"; "lou" ] ]);
        ("uw", 2, [ [ "std"; "w1" ]; [ "int"; "w3" ] ]);
        ("pu", 2, [ [ "std"; "amy" ] ]) ]
  in
  (match Rewrite.answers p inst q with
   | Guard.Complete answers ->
     Alcotest.(check (list tuple_testable)) "tom via rule + amy extensional"
       (List.sort R.Tuple.compare
          [ R.Tuple.of_list [ R.Value.sym "tom" ];
            R.Tuple.of_list [ R.Value.sym "amy" ] ])
       answers
   | Guard.Degraded (_, e) ->
     Alcotest.failf "degraded: %s" (Guard.resource_name e.Guard.resource))

let test_rewrite_matches_chase () =
  let p =
    Program.make
      ~tgds:
        [ tgd
            [ atom "pw" [ v "W"; v "P" ]; atom "uw" [ v "U"; v "W" ] ]
            [ atom "pu" [ v "U"; v "P" ] ];
          tgd [ atom "pu" [ v "U"; v "P" ] ] [ atom "inpat" [ v "P" ] ] ]
      ()
  in
  let inst =
    instance_of
      [ ("pw", 2, [ [ "w1"; "tom" ]; [ "w2"; "lou" ] ]);
        ("uw", 2, [ [ "std"; "w1" ]; [ "std"; "w2" ] ]);
        ("pu", 2, []); ("inpat", 1, []) ]
  in
  let q = Query.make ~head:[ v "P" ] [ atom "inpat" [ v "P" ] ] in
  let via_chase =
    match Query.certain_answers p inst q with
    | Query.Ok l -> l
    | _ -> Alcotest.fail "chase failed"
  in
  (match Rewrite.answers p inst q with
   | Guard.Complete via_rw ->
     Alcotest.(check (list tuple_testable)) "agree" via_chase via_rw
   | Guard.Degraded (_, e) ->
     Alcotest.failf "degraded: %s" (Guard.resource_name e.Guard.resource))

let test_rewrite_existential_applicability () =
  (* ws(U,N) -> ∃Z shifts(U,N,Z).  Query with unshared var Z unfolds;
     query with constant at Z's position must not. *)
  let p =
    Program.make
      ~tgds:
        [ tgd
            [ atom "ws" [ v "U"; v "N" ] ]
            [ atom "shifts" [ v "U"; v "N"; v "Z" ] ] ]
      ()
  in
  let inst =
    instance_of [ ("ws", 2, [ [ "std"; "mark" ] ]); ("shifts", 3, []) ]
  in
  let q_free =
    Query.make ~head:[ v "U" ] [ atom "shifts" [ v "U"; s "mark"; v "Z" ] ]
  in
  (match Rewrite.answers p inst q_free with
   | Guard.Complete [ t ] ->
     Alcotest.check tuple_testable "std" (R.Tuple.of_list [ R.Value.sym "std" ]) t
   | Guard.Complete l ->
     Alcotest.failf "expected one answer, got %d" (List.length l)
   | Guard.Degraded (_, e) ->
     Alcotest.failf "degraded: %s" (Guard.resource_name e.Guard.resource));
  let q_const =
    Query.make ~head:[ v "U" ] [ atom "shifts" [ v "U"; s "mark"; s "night" ] ]
  in
  (match Rewrite.answers p inst q_const with
   | Guard.Complete [] -> ()
   | Guard.Complete l ->
     Alcotest.failf "expected no answers, got %d" (List.length l)
   | Guard.Degraded (_, e) ->
     Alcotest.failf "degraded: %s" (Guard.resource_name e.Guard.resource))

let test_rewrite_cyclic_errors () =
  let p =
    Program.make
      ~tgds:
        [ tgd [ atom "p" [ v "X" ] ] [ atom "q" [ v "X" ] ];
          tgd [ atom "q" [ v "X" ] ] [ atom "p" [ v "X" ] ] ]
      ()
  in
  Alcotest.(check bool) "not rewritable" false (Rewrite.rewritable p);
  let q = Query.make ~head:[ v "X" ] [ atom "p" [ v "X" ] ] in
  (* unfolding p <-> q actually reaches a fixpoint of 2 CQs here; the
     canonicalizer must recognize the alpha-equivalent repeats *)
  (match Rewrite.rewrite ~max_cqs:50 p q with
   | Guard.Complete r ->
     Alcotest.(check int) "two CQs" 2 (List.length r.Rewrite.ucq)
   | Guard.Degraded _ -> ())

(* ------------------------------------------------------------------ *)
(* Constructor validation *)

let raises_invalid f =
  match f () with exception Invalid_argument _ -> true | _ -> false

let test_constructor_validation () =
  Alcotest.(check bool) "empty TGD body" true
    (raises_invalid (fun () ->
         Tgd.make ~body:[] ~head:[ atom "p" [ v "X" ] ] ()));
  Alcotest.(check bool) "empty TGD head" true
    (raises_invalid (fun () -> Tgd.make ~body:[ atom "p" [ v "X" ] ] ~head:[] ()));
  Alcotest.(check bool) "EGD head var not in body" true
    (raises_invalid (fun () ->
         Egd.make ~body:[ atom "p" [ v "X" ] ] (v "X") (v "Z")));
  Alcotest.(check bool) "NC comparison var not in body" true
    (raises_invalid (fun () ->
         Nc.make
           ~cmps:[ Atom.Cmp.make Atom.Cmp.Gt (v "Z") (Term.int 1) ]
           [ atom "p" [ v "X" ] ]));
  Alcotest.(check bool) "query head var not in body" true
    (raises_invalid (fun () ->
         Query.make ~head:[ v "Z" ] [ atom "p" [ v "X" ] ]));
  Alcotest.(check bool) "program arity clash" true
    (raises_invalid (fun () ->
         Program.make
           ~facts:[ atom "p" [ s "a" ]; atom "p" [ s "a"; s "b" ] ]
           ()));
  Alcotest.(check bool) "non-ground program fact" true
    (raises_invalid (fun () -> Program.make ~facts:[ atom "p" [ v "X" ] ] ()))

let test_chase_trigger_budget () =
  (* max_steps bounds triggers even on terminating programs *)
  let p =
    Program.make
      ~tgds:[ tgd [ atom "e" [ v "X"; v "Y" ] ] [ atom "t" [ v "X"; v "Y" ] ] ]
      ()
  in
  let big =
    instance_of
      [ ("e", 2, List.init 50 (fun i -> [ Printf.sprintf "a%d" i; "b" ])) ]
  in
  let r = Chase.run ~max_steps:10 p big in
  Alcotest.(check bool) "step budget reported" true
    (match r.Chase.outcome with
     | Chase.Out_of_budget { Guard.resource = Guard.Steps; _ } -> true
     | _ -> false)

let test_chase_efficiency_guard () =
  (* regression guard: the linear copy chase checks no more triggers
     than a small multiple of the input *)
  let n = 500 in
  let p =
    Program.make
      ~tgds:[ tgd [ atom "e" [ v "X"; v "Y" ] ] [ atom "t" [ v "X"; v "Y" ] ] ]
      ()
  in
  let big =
    instance_of
      [ ("e", 2,
         List.init n (fun i ->
             [ Printf.sprintf "a%d" i; Printf.sprintf "b%d" i ])) ]
  in
  let r = Chase.run p big in
  Alcotest.(check bool) "saturated" true (r.Chase.outcome = Chase.Saturated);
  Alcotest.(check bool) "triggers linear in input" true
    (r.Chase.stats.Chase.triggers_checked <= 2 * n)

(* ------------------------------------------------------------------ *)
(* Budgets and truncation behaviour *)

let test_proof_depth_budget () =
  (* transitive closure over a long chain: small depth misses distant
     answers but stays complete=true (depth is a semantic bound, not a
     truncation) — while max_steps truncation reports complete=false *)
  let chain n =
    instance_of
      [ ("e", 2,
         List.init n (fun i ->
             [ Printf.sprintf "n%d" i; Printf.sprintf "n%d" (i + 1) ])) ]
  in
  let p =
    Program.make
      ~tgds:
        [ tgd [ atom "e" [ v "X"; v "Y" ] ] [ atom "t" [ v "X"; v "Y" ] ];
          tgd
            [ atom "e" [ v "X"; v "Y" ]; atom "t" [ v "Y"; v "Z" ] ]
            [ atom "t" [ v "X"; v "Z" ] ] ]
      ()
  in
  let q = Query.make ~head:[ v "Z" ] [ atom "t" [ s "n0"; v "Z" ] ] in
  let deep = Proof.answer ~max_depth:50 p (chain 10) q in
  Alcotest.(check int) "all 10 reachable" 10 (List.length deep.Proof.answers);
  let shallow = Proof.answer ~max_depth:3 p (chain 10) q in
  Alcotest.(check bool) "shallow finds fewer" true
    (List.length shallow.Proof.answers < 10);
  let truncated = Proof.answer ~max_steps:5 p (chain 10) q in
  Alcotest.(check bool) "step truncation flagged" false
    truncated.Proof.complete

let test_rewrite_max_cqs_budget () =
  let p =
    Program.make
      ~tgds:
        [ tgd [ atom "p" [ v "X" ] ] [ atom "q" [ v "X" ] ];
          tgd [ atom "q" [ v "X" ] ] [ atom "r" [ v "X" ] ];
          tgd [ atom "r" [ v "X" ] ] [ atom "q" [ v "X" ] ] ]
      ()
  in
  let query = Query.make ~head:[ v "X" ] [ atom "q" [ v "X" ] ] in
  (* the cycle q <-> r converges here; a budget of 1 must degrade,
     naming the CQ resource and carrying the disjuncts produced *)
  (match Rewrite.rewrite ~max_cqs:1 p query with
   | Guard.Degraded (r, e) ->
     Alcotest.(check bool) "cq resource named" true
       (e.Guard.resource = Guard.Cqs);
     Alcotest.(check bool) "partial ucq is non-empty" true
       (r.Rewrite.ucq <> [])
   | Guard.Complete _ -> Alcotest.fail "expected budget degradation")

(* ------------------------------------------------------------------ *)
(* Eval corner cases *)

let test_eval_duplicate_vars_in_atom () =
  (* p(X, X) only matches the diagonal *)
  let inst = instance_of [ ("p", 2, [ [ "a"; "a" ]; [ "a"; "b" ] ]) ] in
  Alcotest.(check int) "diagonal only" 1
    (List.length (Eval.answers inst [ atom "p" [ v "X"; v "X" ] ]))

let test_eval_cross_atom_constant_join () =
  let inst =
    instance_of [ ("p", 1, [ [ "a" ] ]); ("q", 2, [ [ "a"; "z" ] ]) ]
  in
  Alcotest.(check int) "join through shared var" 1
    (List.length
       (Eval.answers inst [ atom "p" [ v "X" ]; atom "q" [ v "X"; v "Y" ] ]))

(* ------------------------------------------------------------------ *)
(* Explain rendering *)

let test_explain_pp_smoke () =
  let p =
    Program.make
      ~tgds:
        [ Tgd.make ~name:"r1" ~body:[ atom "a" [ v "X" ] ]
            ~head:[ atom "b" [ v "X" ] ] () ]
      ~facts:[ atom "a" [ s "k" ] ]
      ()
  in
  let r = Chase.run ~provenance:true p (R.Instance.create ()) in
  let contains ~needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  match Explain.why r "b" (R.Tuple.of_list [ R.Value.sym "k" ]) with
  | Ok tree ->
    let text = Format.asprintf "%a" Explain.pp tree in
    Alcotest.(check bool) "names the rule" true (contains ~needle:"[r1]" text);
    Alcotest.(check bool) "marks the extensional leaf" true
      (contains ~needle:"(extensional)" text)
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Incremental chase *)

let tc_program =
  Program.make
    ~tgds:
      [ tgd [ atom "e" [ v "X"; v "Y" ] ] [ atom "t" [ v "X"; v "Y" ] ];
        tgd
          [ atom "t" [ v "X"; v "Y" ]; atom "t" [ v "Y"; v "Z" ] ]
          [ atom "t" [ v "X"; v "Z" ] ] ]
    ()

let test_extend_matches_full_rechase () =
  let base = instance_of [ ("e", 2, [ [ "a"; "b" ]; [ "b"; "c" ] ]) ] in
  let prior = Chase.run tc_program base in
  Alcotest.(check bool) "prior saturated" true
    (prior.Chase.outcome = Chase.Saturated);
  let new_fact = ("e", R.Tuple.of_list [ R.Value.sym "c"; R.Value.sym "d" ]) in
  let incr = Chase.extend tc_program prior ~facts:[ new_fact ] in
  Alcotest.(check bool) "incr saturated" true
    (incr.Chase.outcome = Chase.Saturated);
  let full =
    Chase.run tc_program
      (instance_of
         [ ("e", 2, [ [ "a"; "b" ]; [ "b"; "c" ]; [ "c"; "d" ] ]) ])
  in
  Alcotest.(check bool) "same instance as full re-chase" true
    (R.Instance.equal incr.Chase.instance full.Chase.instance);
  Alcotest.(check int) "closure complete" 6
    (R.Relation.cardinal (R.Instance.get incr.Chase.instance "t"))

let test_extend_cheaper_than_full () =
  (* the incremental run checks far fewer triggers *)
  let rows = List.init 30 (fun i -> [ Printf.sprintf "n%d" i; Printf.sprintf "n%d" (i + 1) ]) in
  let base = instance_of [ ("e", 2, rows) ] in
  let p =
    Program.make
      ~tgds:[ tgd [ atom "e" [ v "X"; v "Y" ] ] [ atom "t" [ v "X"; v "Y" ] ] ]
      ()
  in
  let prior = Chase.run p base in
  let incr =
    Chase.extend p prior
      ~facts:[ ("e", R.Tuple.of_list [ R.Value.sym "zz"; R.Value.sym "zz2" ]) ]
  in
  Alcotest.(check bool) "few triggers" true
    (incr.Chase.stats.Chase.triggers_checked
    < prior.Chase.stats.Chase.triggers_checked);
  Alcotest.(check int) "one new t fact" 31
    (R.Relation.cardinal (R.Instance.get incr.Chase.instance "t"))

let test_extend_carries_provenance () =
  let base = instance_of [ ("e", 2, [ [ "a"; "b" ] ]) ] in
  let prior = Chase.run ~provenance:true tc_program base in
  let incr =
    Chase.extend tc_program prior
      ~facts:[ ("e", R.Tuple.of_list [ R.Value.sym "b"; R.Value.sym "c" ]) ]
  in
  (* old and new derived facts both explainable *)
  (match
     Explain.why incr "t" (R.Tuple.of_list [ R.Value.sym "a"; R.Value.sym "b" ])
   with
   | Ok tree -> Alcotest.(check int) "old fact depth" 1 (Explain.depth tree)
   | Error e -> Alcotest.fail e);
  (match
     Explain.why incr "t" (R.Tuple.of_list [ R.Value.sym "a"; R.Value.sym "c" ])
   with
   | Ok tree -> Alcotest.(check bool) "new fact explained" true (Explain.depth tree >= 1)
   | Error e -> Alcotest.fail e)

let test_extend_detects_new_violation () =
  let p =
    Program.make
      ~ncs:[ Nc.make [ atom "p" [ v "X" ]; atom "bad" [ v "X" ] ] ]
      ()
  in
  let base = instance_of [ ("p", 1, [ [ "x" ] ]); ("bad", 1, []) ] in
  let prior = Chase.run p base in
  Alcotest.(check bool) "prior consistent" true
    (prior.Chase.outcome = Chase.Saturated);
  let incr =
    Chase.extend p prior ~facts:[ ("bad", R.Tuple.of_list [ R.Value.sym "x" ]) ]
  in
  (match incr.Chase.outcome with
   | Chase.Failed (Chase.Nc_violation _) -> ()
   | o -> Alcotest.failf "expected violation, got %a" Chase.pp_outcome o)

(* ------------------------------------------------------------------ *)
(* Stickiness marking internals *)

let test_marking_base_step () =
  (* t(X,Z) :- r(X,Y), s(Y,Z): Y is not in the head -> marked *)
  let m = Stickiness.mark prog_join in
  let the_tgd = List.hd prog_join.Program.tgds in
  Alcotest.(check bool) "Y marked" true (Stickiness.is_marked m the_tgd "Y");
  Alcotest.(check bool) "X unmarked" false (Stickiness.is_marked m the_tgd "X");
  Alcotest.(check bool) "r[1] marked position" true
    (List.mem ("r", 1) (Stickiness.marked_positions m));
  Alcotest.(check bool) "s[0] marked position" true
    (List.mem ("s", 0) (Stickiness.marked_positions m));
  Alcotest.(check int) "two marked occurrences" 2
    (List.length (Stickiness.marked_occurrences m))

let test_marking_propagation () =
  (* σa: s(X) :- t(X,Y)           — Y marked at t[1]
     σb: t(X,Y) :- u(X,Y)         — Y occurs in σb's head at marked
                                     position t[1]: propagate into u[1] *)
  let p =
    Program.make
      ~tgds:
        [ tgd ~name:"sa" [ atom "t" [ v "X"; v "Y" ] ] [ atom "s" [ v "X" ] ];
          tgd ~name:"sb" [ atom "u" [ v "X"; v "Y" ] ]
            [ atom "t" [ v "X"; v "Y" ] ] ]
      ()
  in
  let m = Stickiness.mark p in
  let sb = List.find (fun (t : Tgd.t) -> t.Tgd.name = "sb") p.Program.tgds in
  Alcotest.(check bool) "Y propagated into sb" true
    (Stickiness.is_marked m sb "Y");
  Alcotest.(check bool) "u[1] marked" true
    (List.mem ("u", 1) (Stickiness.marked_positions m))

(* ------------------------------------------------------------------ *)
(* Goal-directed restriction *)

let test_restrict_drops_irrelevant () =
  let p =
    Program.make
      ~tgds:
        [ tgd ~name:"keep1" [ atom "e" [ v "X"; v "Y" ] ]
            [ atom "t" [ v "X"; v "Y" ] ];
          tgd ~name:"keep2" [ atom "t" [ v "X"; v "Y" ] ]
            [ atom "goal" [ v "X" ] ];
          tgd ~name:"drop" [ atom "e" [ v "X"; v "Y" ] ]
            [ atom "unrelated" [ v "X" ] ] ]
      ()
  in
  let r = Program.restrict_to_goals p ~goals:[ "goal" ] in
  Alcotest.(check (list string)) "transitively relevant rules kept"
    [ "keep1"; "keep2" ]
    (List.sort compare (List.map (fun (t : Tgd.t) -> t.Tgd.name) r.Program.tgds))

let test_restrict_keeps_constraint_feeders () =
  (* a rule feeding only an NC body must survive *)
  let p =
    Program.make
      ~tgds:
        [ tgd ~name:"feeder" [ atom "e" [ v "X"; v "Y" ] ]
            [ atom "bad" [ v "X" ] ] ]
      ~ncs:[ Nc.make [ atom "bad" [ v "X" ] ] ]
      ()
  in
  let r = Program.restrict_to_goals p ~goals:[ "other" ] in
  Alcotest.(check int) "feeder kept" 1 (List.length r.Program.tgds)

let test_goal_directed_same_answers () =
  let p =
    Program.make
      ~tgds:
        [ tgd [ atom "e" [ v "X"; v "Y" ] ] [ atom "t" [ v "X"; v "Y" ] ];
          tgd [ atom "e" [ v "X"; v "Y" ] ] [ atom "noise" [ v "X"; v "Z" ] ] ]
      ()
  in
  let q = Query.make ~head:[ v "X" ] [ atom "t" [ v "X"; v "Y" ] ] in
  let a = Query.certain_answers p edge_inst q in
  let b = Query.certain_answers ~goal_directed:true p edge_inst q in
  (match a, b with
   | Query.Ok xs, Query.Ok ys ->
     Alcotest.(check bool) "same answers" true (xs = ys)
   | _ -> Alcotest.fail "chase failed");
  (* and the noise rule (with its unbounded existential) is not fired *)
  let restricted = Program.restrict_to_goals p ~goals:[ "t" ] in
  Alcotest.(check int) "one rule" 1 (List.length restricted.Program.tgds)

(* ------------------------------------------------------------------ *)
(* Core computation *)

let test_core_folds_redundant_null () =
  (* father(ann, ⊥1) is subsumed by father(ann, carl) *)
  let inst = R.Instance.create () in
  ignore (R.Instance.declare inst (R.Rel_schema.of_names "father" [ "a"; "b" ]));
  ignore
    (R.Instance.add_tuple inst "father"
       (R.Tuple.of_list [ R.Value.sym "ann"; R.Value.sym "carl" ]));
  ignore
    (R.Instance.add_tuple inst "father"
       (R.Tuple.of_list [ R.Value.sym "ann"; R.Value.Null 1 ]));
  let core = Core_inst.compute inst in
  Alcotest.(check int) "null folded away" 0 (Core_inst.null_count core);
  Alcotest.(check int) "one fact" 1
    (R.Relation.cardinal (R.Instance.get core "father"));
  Alcotest.(check bool) "hom equivalent" true
    (Core_inst.hom_equivalent inst core);
  Alcotest.(check int) "input untouched" 2
    (R.Relation.cardinal (R.Instance.get inst "father"))

let test_core_keeps_necessary_null () =
  (* father(bob, ⊥2) has no constant witness: must stay *)
  let inst = R.Instance.create () in
  ignore (R.Instance.declare inst (R.Rel_schema.of_names "father" [ "a"; "b" ]));
  ignore
    (R.Instance.add_tuple inst "father"
       (R.Tuple.of_list [ R.Value.sym "bob"; R.Value.Null 2 ]));
  let core = Core_inst.compute inst in
  Alcotest.(check int) "null kept" 1 (Core_inst.null_count core)

let test_core_oblivious_equals_restricted () =
  (* the oblivious chase of the hospital over-generates; its core is
     hom-equivalent to the restricted chase result *)
  let m = Mdqa_hospital.Hospital.ontology () in
  let module MO = Mdqa_multidim.Md_ontology in
  let restricted = MO.chase ~variant:Chase.Restricted m in
  let oblivious = MO.chase ~variant:Chase.Oblivious m in
  Alcotest.(check bool) "oblivious has more or equal nulls" true
    (Core_inst.null_count oblivious.Chase.instance
    >= Core_inst.null_count restricted.Chase.instance);
  let core = Core_inst.compute oblivious.Chase.instance in
  Alcotest.(check bool) "core no larger than restricted result" true
    (R.Instance.total_tuples core
    <= R.Instance.total_tuples restricted.Chase.instance);
  Alcotest.(check bool) "core hom-equivalent to restricted" true
    (Core_inst.hom_equivalent core restricted.Chase.instance)

(* ------------------------------------------------------------------ *)
(* Parser / Pretty *)

let test_parse_program () =
  let text =
    {|
      % the hospital example, abridged
      unit_ward(standard, w1).
      unit_ward(standard, w2).
      patient_ward(w1, "Sep/5", "Tom Waits").
      patient_unit(U, D, P) :- patient_ward(W, D, P), unit_ward(U, W).
      ! :- patient_ward(W, D, P), unit_ward(intensive, W).
      T1 = T2 :- therm(W1, T1), therm(W2, T2), unit_ward(U, W1), unit_ward(U, W2).
      ?q(D) :- patient_unit(standard, D, "Tom Waits").
    |}
  in
  let { Parser.program; queries } = Parser.parse_string text in
  Alcotest.(check int) "facts" 3 (List.length program.Program.facts);
  Alcotest.(check int) "tgds" 1 (List.length program.Program.tgds);
  Alcotest.(check int) "egds" 1 (List.length program.Program.egds);
  Alcotest.(check int) "ncs" 1 (List.length program.Program.ncs);
  Alcotest.(check int) "queries" 1 (List.length queries)

let test_parse_end_to_end () =
  let text =
    {|
      unit_ward(standard, w1).
      unit_ward(standard, w2).
      patient_ward(w1, sep5, tom).
      patient_unit(U, D, P) :- patient_ward(W, D, P), unit_ward(U, W).
      ?q(U) :- patient_unit(U, sep5, tom).
    |}
  in
  let { Parser.program; queries } = Parser.parse_string text in
  let inst = Program.instance_of_facts program in
  let q = List.hd queries in
  (match Query.certain_answers program inst q with
   | Query.Ok [ t ] ->
     Alcotest.check tuple_testable "standard"
       (R.Tuple.of_list [ R.Value.sym "standard" ])
       t
   | _ -> Alcotest.fail "expected exactly one answer")

let test_parse_existential_head () =
  let text = "shifts(W, D, N, Z) :- ws(U, D, N), uw(U, W)." in
  let { Parser.program; _ } = Parser.parse_string text in
  let t = List.hd program.Program.tgds in
  Alcotest.(check (list string)) "Z existential" [ "Z" ]
    (Term.Var_set.elements (Tgd.existential_vars t))

let test_parse_multi_atom_head () =
  let text = "iu(I, U), pu(U, D, P) :- discharge(I, D, P)." in
  let { Parser.program; _ } = Parser.parse_string text in
  let t = List.hd program.Program.tgds in
  Alcotest.(check int) "two head atoms" 2 (List.length t.Tgd.head);
  Alcotest.(check (list string)) "U existential" [ "U" ]
    (Term.Var_set.elements (Tgd.existential_vars t))

let test_parse_errors () =
  let bad input =
    match Parser.parse_string input with
    | exception Parser.Error _ -> ()
    | _ -> Alcotest.failf "expected syntax error on %S" input
  in
  bad "p(X).";  (* non-ground fact *)
  bad "p(a) :- .";  (* empty body *)
  bad "p(a";  (* unclosed *)
  bad "p(a)  q(b).";  (* missing period/turnstile *)
  bad "! :- X > 3.";  (* constraint without atoms *)
  bad "p(a, b, \"unterminated)."

let test_parse_comparisons () =
  let text = "?q(X) :- m(X, V), V >= 38, X != t2." in
  let q = List.hd (Parser.parse_string text).Parser.queries in
  Alcotest.(check int) "two comparisons" 2 (List.length q.Query.cmps)

let test_parse_query_helper () =
  let q = Parser.parse_query "q(X) :- e(X, Y)" in
  Alcotest.(check int) "one head var" 1 (List.length q.Query.head)

let test_pretty_roundtrip_fixed () =
  let text =
    {|
      unit_ward(standard, w1).
      patient_ward(w1, "Sep/5", "Tom Waits").
      patient_unit(U, D, P) :- patient_ward(W, D, P), unit_ward(U, W).
      shifts(W, D, N, Z) :- ws(U, D, N), uw(U, W).
      T1 = T2 :- therm(W1, T1), therm(W2, T2).
      ! :- pw(W, D, P), uw(intensive, W).
    |}
  in
  let p1 = (Parser.parse_string text).Parser.program in
  let printed = Pretty.program_to_string p1 in
  let p2 = (Parser.parse_string printed).Parser.program in
  Alcotest.(check string) "pretty fixpoint" printed
    (Pretty.program_to_string p2)

(* ------------------------------------------------------------------ *)
(* Properties *)

(* Random small full-TGD programs over fixed predicates; compare the
   three answering mechanisms (chase, top-down proof, rewriting). *)

let small_const = QCheck.Gen.oneofl [ "c1"; "c2"; "c3"; "c4" ]
let small_var = QCheck.Gen.oneofl [ "X"; "Y"; "Z" ]

let gen_fact =
  QCheck.Gen.(
    oneof
      [ map (fun c -> atom "a" [ s c ]) small_const;
        map (fun c -> atom "b" [ s c ]) small_const;
        map2 (fun c d -> atom "e" [ s c; s d ]) small_const small_const ])

(* Full TGDs: head vars drawn from body vars. *)
let gen_full_tgd =
  QCheck.Gen.(
    let gen_body_atom =
      oneof
        [ map (fun x -> atom "a" [ v x ]) small_var;
          map (fun x -> atom "b" [ v x ]) small_var;
          map2 (fun x y -> atom "e" [ v x; v y ]) small_var small_var ]
    in
    let* body = list_size (1 -- 2) gen_body_atom in
    let body_vars =
      List.concat_map (fun a -> Term.Var_set.elements (Atom.vars a)) body
    in
    match body_vars with
    | [] -> return None
    | v0 :: _ ->
      let* hv = oneofl body_vars in
      let* hp = oneofl [ `A; `B; `E ] in
      let head =
        match hp with
        | `A -> atom "a" [ v hv ]
        | `B -> atom "b" [ v hv ]
        | `E -> atom "e" [ v hv; v v0 ]
      in
      return (Some (tgd body [ head ])))

let gen_program =
  QCheck.Gen.(
    let* facts = list_size (1 -- 6) gen_fact in
    let* tgds = list_size (1 -- 3) gen_full_tgd in
    let tgds = List.filter_map Fun.id tgds in
    return (Program.make ~tgds ~facts ()))

let program_arb =
  QCheck.make ~print:Pretty.program_to_string gen_program

let query_a = Query.make ~head:[ v "X" ] [ atom "a" [ v "X" ] ]

let prop_proof_agrees_with_chase =
  QCheck.Test.make ~name:"proof search = chase certain answers" ~count:150
    program_arb (fun p ->
      let inst = Program.instance_of_facts p in
      match Query.certain_answers p inst query_a with
      | Query.Ok via_chase ->
        let r = Proof.answer ~max_depth:10 ~max_steps:100_000 p inst query_a in
        if r.Proof.complete then via_chase = r.Proof.answers
        else
          (* truncated searches must still be sound *)
          List.for_all (fun t -> List.mem t via_chase) r.Proof.answers
      | _ -> QCheck.assume_fail ())

let prop_rewrite_agrees_with_chase =
  QCheck.Test.make ~name:"rewriting = chase on acyclic programs" ~count:150
    program_arb (fun p ->
      QCheck.assume (Rewrite.rewritable p);
      let inst = Program.instance_of_facts p in
      match Query.certain_answers p inst query_a, Rewrite.answers p inst query_a with
      | Query.Ok via_chase, Guard.Complete via_rw -> via_chase = via_rw
      | _ -> QCheck.assume_fail ())

let prop_chase_idempotent =
  QCheck.Test.make ~name:"chasing a chased instance adds nothing" ~count:100
    program_arb (fun p ->
      let inst = Program.instance_of_facts p in
      let r1 = Chase.run p inst in
      let r2 = Chase.run p r1.Chase.instance in
      R.Instance.equal r1.Chase.instance r2.Chase.instance)

let prop_semi_naive_equals_naive =
  QCheck.Test.make ~name:"semi-naive chase = naive chase" ~count:100
    program_arb (fun p ->
      let inst = Program.instance_of_facts p in
      let a = Chase.run ~semi_naive:true p inst in
      let b = Chase.run ~semi_naive:false p inst in
      R.Instance.equal a.Chase.instance b.Chase.instance)

let prop_core_sound =
  QCheck.Test.make ~name:"core is a hom-equivalent retract" ~count:80
    program_arb (fun p ->
      let inst = Program.instance_of_facts p in
      let r = Chase.run p inst in
      QCheck.assume (r.Chase.outcome = Chase.Saturated);
      let core = Core_inst.compute r.Chase.instance in
      R.Instance.total_tuples core <= R.Instance.total_tuples r.Chase.instance
      && Core_inst.hom_equivalent core r.Chase.instance)

let prop_goal_directed_same =
  QCheck.Test.make ~name:"goal-directed chase preserves answers" ~count:100
    program_arb (fun p ->
      let inst = Program.instance_of_facts p in
      match
        ( Query.certain_answers p inst query_a,
          Query.certain_answers ~goal_directed:true p inst query_a )
      with
      | Query.Ok xs, Query.Ok ys -> xs = ys
      | _ -> QCheck.assume_fail ())

let prop_parser_total =
  (* the parser is total: any input either parses or raises
     Parser.Error — never a crash or another exception *)
  QCheck.Test.make ~name:"parser never crashes on arbitrary input" ~count:500
    (QCheck.make
       QCheck.Gen.(
         string_size ~gen:(map Char.chr (int_range 32 126)) (0 -- 60)))
    (fun input ->
      match Parser.parse_string input with
      | _ -> true
      | exception Parser.Error _ -> true)

let prop_parser_pretty_roundtrip =
  QCheck.Test.make ~name:"pretty -> parse -> pretty is a fixpoint" ~count:150
    program_arb (fun p ->
      let printed = Pretty.program_to_string p in
      let reparsed = (Parser.parse_string printed).Parser.program in
      String.equal printed (Pretty.program_to_string reparsed))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_proof_agrees_with_chase; prop_rewrite_agrees_with_chase;
      prop_chase_idempotent; prop_semi_naive_equals_naive;
      prop_core_sound; prop_goal_directed_same;
      prop_parser_total; prop_parser_pretty_roundtrip ]

let case name f = Alcotest.test_case name `Quick f

let suites =
  [ ( "datalog.unify",
      [ case "basic unification" test_unify_basic;
        case "clashes" test_unify_clash;
        case "shared variables" test_unify_shared_var;
        case "one-way matching" test_match_one_way;
        case "subst conflicts" test_subst_conflict ] );
    ( "datalog.eval",
      [ case "join evaluation" test_eval_join;
        case "constants in atoms" test_eval_constants_in_atoms;
        case "comparison filters" test_eval_cmps;
        case "missing predicate" test_eval_missing_pred;
        case "delta-restricted answers" test_eval_delta ] );
    ( "datalog.chase",
      [ case "transitive closure" test_chase_transitive_closure;
        case "semi-naive agrees with naive" test_chase_semi_naive_agrees;
        case "existential nulls" test_chase_existential_nulls;
        case "restricted skips satisfied heads" test_chase_restricted_skips_satisfied;
        case "budget stops divergent chase" test_chase_budget_on_divergent;
        case "EGD merges null with constant" test_chase_egd_merges_null;
        case "EGD constant clash fails" test_chase_egd_constant_clash;
        case "NC violation fails" test_chase_nc_violation;
        case "NC with comparisons" test_chase_nc_with_cmp;
        case "input instance untouched" test_chase_input_not_mutated;
        case "multi-atom head shares one null" test_chase_multi_atom_head_shares_null
      ] );
    ( "datalog.classes",
      [ case "join program: WS but not sticky" test_classes_join_program;
        case "linear cyclic: sticky, not WA" test_classes_linear_cyclic;
        case "non-WS program detected" test_classes_not_ws;
        case "wardedness" test_warded;
        case "guardedness" test_guarded_detection;
        case "position ranks" test_position_graph_ranks;
        case "finite special edge ranks" test_position_graph_finite_special;
        case "affected positions" test_affected_positions;
        case "separability conditions" test_separability ] );
    ( "datalog.query",
      [ case "certain answers filter nulls" test_query_certain_answers_filter_nulls;
        case "boolean entailment" test_query_boolean_entailment;
        case "inconsistency surfaces" test_query_inconsistent ] );
    ( "datalog.proof",
      [ case "EDB-only goals" test_proof_edb_only;
        case "goals via rules" test_proof_via_rule;
        case "existential gives no certain answer" test_proof_existential_not_answer;
        case "null never equals a constant" test_proof_existential_blocks_constant;
        case "multi-atom head lemma" test_proof_multi_atom_head_lemma;
        case "agrees with chase" test_proof_agrees_with_chase ] );
    ( "datalog.rewrite",
      [ case "simple unfolding + extensional disjunct" test_rewrite_simple_unfold;
        case "matches chase answers" test_rewrite_matches_chase;
        case "existential applicability" test_rewrite_existential_applicability;
        case "cyclic program handled" test_rewrite_cyclic_errors ] );
    ( "datalog.validation",
      [ case "constructor validation" test_constructor_validation;
        case "chase trigger budget" test_chase_trigger_budget;
        case "chase trigger-count regression guard" test_chase_efficiency_guard
      ] );
    ( "datalog.budgets",
      [ case "proof depth vs step truncation" test_proof_depth_budget;
        case "rewrite CQ budget" test_rewrite_max_cqs_budget ] );
    ( "datalog.eval_corners",
      [ case "duplicate variables in an atom" test_eval_duplicate_vars_in_atom;
        case "constant join across atoms" test_eval_cross_atom_constant_join
      ] );
    ( "datalog.explain_render",
      [ case "pp names rules and leaves" test_explain_pp_smoke ] );
    ( "datalog.incremental",
      [ case "extend matches full re-chase" test_extend_matches_full_rechase;
        case "extend checks fewer triggers" test_extend_cheaper_than_full;
        case "extend carries provenance" test_extend_carries_provenance;
        case "extend detects new violations" test_extend_detects_new_violation
      ] );
    ( "datalog.stickiness",
      [ case "base marking step" test_marking_base_step;
        case "marking propagation" test_marking_propagation ] );
    ( "datalog.goal_directed",
      [ case "drops irrelevant rules" test_restrict_drops_irrelevant;
        case "keeps constraint feeders" test_restrict_keeps_constraint_feeders;
        case "same answers, fewer rules" test_goal_directed_same_answers ] );
    ( "datalog.core",
      [ case "folds a redundant null" test_core_folds_redundant_null;
        case "keeps necessary nulls" test_core_keeps_necessary_null;
        case "core of oblivious = restricted (hospital)"
          test_core_oblivious_equals_restricted ] );
    ( "datalog.parser",
      [ case "program statements" test_parse_program;
        case "parse + chase end to end" test_parse_end_to_end;
        case "existential head" test_parse_existential_head;
        case "multi-atom head" test_parse_multi_atom_head;
        case "error reporting" test_parse_errors;
        case "comparisons in queries" test_parse_comparisons;
        case "parse_query helper" test_parse_query_helper;
        case "pretty round-trip" test_pretty_roundtrip_fixed ] );
    ("datalog.properties", qcheck_cases) ]
