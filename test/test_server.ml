(* Unit and property tests for the mdqa_server building blocks: backoff
   (the ISSUE's qcheck properties), circuit breaker transitions under an
   injected clock, admission-queue shedding, the JSONL codec, the wire
   protocol, and Guard.fork/absorb budget arithmetic.  The end-to-end
   loop — signals, socket faults, overload — is exercised by
   test/chaos_serve.sh. *)

open Mdqa_server
module Guard = Mdqa_datalog.Guard

(* --- backoff: full-jitter properties --------------------------------- *)

let policy_arb =
  QCheck.make
    ~print:(fun (base, cap_mult, attempts, budget) ->
      Printf.sprintf "base=%g cap=%g attempts=%d budget=%g" base
        (base *. cap_mult) attempts budget)
    QCheck.Gen.(
      quad
        (float_range 0.001 1.0)
        (float_range 1.0 100.0)
        (int_range 0 10)
        (float_range 0.0 20.0))

let mk_policy (base, cap_mult, attempts, budget) =
  Backoff.policy ~base ~cap:(base *. cap_mult) ~max_attempts:attempts ~budget
    ()

let prop_delay_within_bounds =
  QCheck.Test.make ~name:"backoff: jittered delay stays within [0, cap]"
    ~count:500
    QCheck.(pair policy_arb (pair (int_range 0 80) int))
    (fun (pspec, (attempt, seed)) ->
      let p = mk_policy pspec in
      let st = Random.State.make [| seed |] in
      let d = Backoff.delay p ~rand:(Random.State.float st) ~attempt in
      d >= 0. && d <= p.Backoff.cap
      && d <= Backoff.ceiling p ~attempt)

let prop_ceiling_monotone =
  QCheck.Test.make
    ~name:"backoff: ceiling is monotone and capped past the crossover"
    ~count:500
    QCheck.(pair policy_arb (int_range 0 79))
    (fun (pspec, attempt) ->
      let p = mk_policy pspec in
      let here = Backoff.ceiling p ~attempt in
      let next = Backoff.ceiling p ~attempt:(attempt + 1) in
      here <= next && next <= p.Backoff.cap
      && Backoff.ceiling p ~attempt:80 = p.Backoff.cap)

let prop_budget_bounds_sleep =
  QCheck.Test.make
    ~name:"backoff: retry budget bounds total sleep and attempt count"
    ~count:500
    QCheck.(pair policy_arb int)
    (fun (pspec, seed) ->
      let p = mk_policy pspec in
      let st = Random.State.make [| seed |] in
      let bo = Backoff.start p in
      let total = ref 0. in
      let rec drain () =
        match Backoff.next bo ~rand:(Random.State.float st) with
        | Some d ->
          total := !total +. d;
          drain ()
        | None -> ()
      in
      drain ();
      !total <= p.Backoff.budget +. 1e-9
      && Backoff.attempts bo <= p.Backoff.max_attempts
      && Float.abs (Backoff.slept bo -. !total) < 1e-9)

(* --- breaker: every transition under an injected clock --------------- *)

let test_breaker_trip_and_recover () =
  let now = ref 0. in
  let b =
    Breaker.create ~threshold:3 ~cooldown:1.0 ~cooldown_cap:60.0
      ~clock:(fun () -> !now)
      ()
  in
  Alcotest.(check bool) "starts closed" true (Breaker.state b = Breaker.Closed);
  Breaker.record_failure b;
  Breaker.record_failure b;
  Alcotest.(check bool) "below threshold stays closed" true (Breaker.allow b);
  Breaker.record_failure b;
  Alcotest.(check bool) "third failure trips open" false (Breaker.allow b);
  Alcotest.(check int) "one trip counted" 1 (Breaker.trips b);
  (match Breaker.retry_at b with
   | Some at -> Alcotest.(check (float 1e-9)) "half-opens at cooldown" 1.0 at
   | None -> Alcotest.fail "open breaker must expose retry_at");
  now := 1.5;
  Alcotest.(check bool) "cooldown elapsed: one probe allowed" true
    (Breaker.allow b);
  Alcotest.(check bool) "second probe refused while first in flight" false
    (Breaker.allow b);
  Breaker.record_failure b;
  Alcotest.(check string) "failed probe re-opens" "open" (Breaker.state_name b);
  (match Breaker.retry_at b with
   | Some at ->
     Alcotest.(check (float 1e-9)) "cooldown doubled" (1.5 +. 2.0) at
   | None -> Alcotest.fail "re-opened breaker must expose retry_at");
  now := 4.0;
  Alcotest.(check bool) "second probe window" true (Breaker.allow b);
  Breaker.record_success b;
  Alcotest.(check bool) "successful probe closes" true
    (Breaker.state b = Breaker.Closed);
  Alcotest.(check int) "failure count reset" 0 (Breaker.consecutive_failures b);
  (* cooldown reset too: next trip opens for the base cooldown again *)
  Breaker.record_failure b;
  Breaker.record_failure b;
  Breaker.record_failure b;
  match Breaker.retry_at b with
  | Some at -> Alcotest.(check (float 1e-9)) "cooldown reset" (4.0 +. 1.0) at
  | None -> Alcotest.fail "tripped breaker must expose retry_at"

let test_breaker_cooldown_cap () =
  let now = ref 0. in
  let b =
    Breaker.create ~threshold:1 ~cooldown:1.0 ~cooldown_cap:4.0
      ~clock:(fun () -> !now)
      ()
  in
  (* fail every probe: cooldown 1 -> 2 -> 4 -> capped at 4 *)
  Breaker.record_failure b;
  let fail_probe expected =
    now := Option.get (Breaker.retry_at b) +. 0.001;
    Alcotest.(check bool) "probe allowed" true (Breaker.allow b);
    Breaker.record_failure b;
    match Breaker.retry_at b with
    | Some at ->
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "cooldown %.0f" expected)
        expected (at -. !now +. 0.001 |> Float.round)
    | None -> Alcotest.fail "must be open"
  in
  fail_probe 2.;
  fail_probe 4.;
  fail_probe 4.;
  fail_probe 4.

(* --- admission queue -------------------------------------------------- *)

let test_admission_fifo_and_shed () =
  let q = Admission.create ~capacity:3 in
  Alcotest.(check bool) "accepts 1" true (Admission.offer q 1);
  Alcotest.(check bool) "accepts 2" true (Admission.offer q 2);
  Alcotest.(check bool) "accepts 3" true (Admission.offer q 3);
  Alcotest.(check bool) "sheds 4" false (Admission.offer q 4);
  Alcotest.(check bool) "sheds 5" false (Admission.offer q 5);
  Alcotest.(check int) "shed counted" 2 (Admission.shed q);
  Alcotest.(check int) "accepted counted" 3 (Admission.accepted q);
  Alcotest.(check (option int)) "fifo 1" (Some 1) (Admission.take q);
  Alcotest.(check (option int)) "fifo 2" (Some 2) (Admission.take q);
  Alcotest.(check bool) "freed capacity readmits" true (Admission.offer q 6);
  Alcotest.(check (option int)) "fifo 3" (Some 3) (Admission.take q);
  Alcotest.(check (option int)) "fifo 6" (Some 6) (Admission.take q);
  Alcotest.(check (option int)) "empty" None (Admission.take q);
  Alcotest.(check bool) "is_empty" true (Admission.is_empty q)

(* --- jsonl codec ------------------------------------------------------ *)

let jsonl_arb =
  let open QCheck.Gen in
  let scalar =
    oneof
      [ return Jsonl.Null;
        map (fun b -> Jsonl.Bool b) bool;
        map (fun n -> Jsonl.Num (float_of_int n)) (int_range (-1000) 1000);
        map (fun f -> Jsonl.Num f) (float_range (-1e6) 1e6);
        map (fun s -> Jsonl.Str s) (string_size ~gen:printable (int_range 0 12))
      ]
  in
  let value =
    sized (fun n ->
        fix
          (fun self n ->
            if n <= 0 then scalar
            else
              frequency
                [ (3, scalar);
                  (1, map (fun l -> Jsonl.List l)
                        (list_size (int_range 0 4) (self (n / 2))));
                  (1,
                   map (fun kvs -> Jsonl.Obj kvs)
                     (list_size (int_range 0 4)
                        (pair
                           (string_size ~gen:(char_range 'a' 'z')
                              (int_range 1 6))
                           (self (n / 2))))) ])
          (min n 8))
  in
  QCheck.make ~print:Jsonl.to_string value

let prop_jsonl_roundtrip =
  QCheck.Test.make ~name:"jsonl: parse (to_string v) = v" ~count:500 jsonl_arb
    (fun v -> Jsonl.parse (Jsonl.to_string v) = Ok v)

let prop_jsonl_total =
  QCheck.Test.make ~name:"jsonl: parse never raises on arbitrary bytes"
    ~count:1000
    (QCheck.make
       QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 0 255))
                     (int_range 0 64)))
    (fun s ->
      match Jsonl.parse s with Ok _ | Error _ -> true)

let test_jsonl_unicode () =
  (match Jsonl.parse {|"aé😀b"|} with
   | Ok (Jsonl.Str s) ->
     Alcotest.(check string) "utf-8 decoding" "a\xc3\xa9\xf0\x9f\x98\x80b" s
   | _ -> Alcotest.fail "unicode escapes must parse");
  (match Jsonl.parse {|"\ud83d"|} with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unpaired surrogate must be rejected");
  match Jsonl.parse {|{"a": 1} trailing|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing bytes must be rejected"

let test_jsonl_depth_limit () =
  let deep = String.make 600 '[' ^ String.make 600 ']' in
  match Jsonl.parse deep with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "600-deep nesting must be rejected"

(* --- protocol --------------------------------------------------------- *)

let test_parse_request_ok () =
  (match
     Protocol.parse_request
       {|{"kind":"query","query":"q(X) :- p(X)","id":7,"engine":"proof","timeout":0.5,"max_steps":100}|}
   with
   | Ok (Protocol.Query { query; engine; timeout; max_steps; id }) ->
     Alcotest.(check string) "query" "q(X) :- p(X)" query;
     Alcotest.(check bool) "engine" true (engine = Protocol.Proof);
     Alcotest.(check (option (float 1e-9))) "timeout" (Some 0.5) timeout;
     Alcotest.(check (option int)) "max_steps" (Some 100) max_steps;
     Alcotest.(check bool) "id echoed" true (id = Some (Jsonl.Num 7.))
   | _ -> Alcotest.fail "well-formed query must parse");
  match Protocol.parse_request {|{"kind":"health"}|} with
  | Ok (Protocol.Health { id = None }) -> ()
  | _ -> Alcotest.fail "health must parse"

let test_parse_request_bad () =
  let is_e024 input =
    match Protocol.parse_request input with
    | Error d -> d.Mdqa_datalog.Diag.code = "E024"
    | Ok _ -> false
  in
  List.iter
    (fun input ->
      Alcotest.(check bool)
        (Printf.sprintf "E024 for %s" input)
        true (is_e024 input))
    [ "not json";
      "[1,2,3]";
      {|{"no_kind": true}|};
      {|{"kind": "launch_missiles"}|};
      {|{"kind": "query"}|};
      {|{"kind": "query", "query": 42}|};
      {|{"kind": "query", "query": "q(X) :- p(X)", "engine": "warp"}|};
      {|{"kind": "query", "query": "q(X) :- p(X)", "timeout": -1}|};
      {|{"kind": "query", "query": "q(X) :- p(X)", "max_steps": 0}|} ]

let test_reply_roundtrip () =
  let t =
    Mdqa_relational.Tuple.of_list
      [ Mdqa_relational.Value.Sym "a"; Mdqa_relational.Value.Int 3;
        Mdqa_relational.Value.Null 2 ]
  in
  let line =
    Protocol.complete_reply ~id:(Jsonl.Num 9.) ~answers:(Some [ t ]) ()
  in
  Alcotest.(check bool) "newline-terminated" true
    (String.length line > 0 && line.[String.length line - 1] = '\n');
  (match Protocol.parse_reply (String.trim line) with
   | Ok r ->
     Alcotest.(check string) "status" "complete" r.Protocol.status;
     Alcotest.(check bool) "id" true (r.Protocol.id = Some (Jsonl.Num 9.));
     Alcotest.(check (option (list (list string))))
       "answers rendered" (Some [ [ "a"; "3"; "_:2" ] ])
       r.Protocol.answers
   | Error e -> Alcotest.fail e);
  let degraded =
    Protocol.degraded_reply ~code:"W047" ~reason:"overload" ~answers:None
      ~message:"shed" ()
  in
  match Protocol.parse_reply (String.trim degraded) with
  | Ok r ->
    Alcotest.(check string) "status" "degraded" r.Protocol.status;
    Alcotest.(check (option string)) "reason" (Some "overload")
      r.Protocol.reason;
    Alcotest.(check (option string)) "code" (Some "W047") r.Protocol.code
  | Error e -> Alcotest.fail e

(* --- Guard.fork / absorb ---------------------------------------------- *)

let consume_steps g n =
  for _ = 1 to n do
    Guard.count_step g
  done

let test_fork_caps_child_by_remaining () =
  let parent = Guard.create ~max_steps:10 () in
  consume_steps parent 4;
  let child = Guard.fork parent in
  consume_steps child 6;
  (match Guard.count_step child with
   | () -> Alcotest.fail "child must trip at the parent's remaining budget"
   | exception Guard.Exhausted e ->
     Alcotest.(check bool) "steps resource" true
       (e.Guard.resource = Guard.Steps));
  (* the child's trip never propagates to the parent *)
  Guard.count_step parent

let test_fork_requested_below_remaining () =
  let parent = Guard.create ~max_steps:100 () in
  let child = Guard.fork ~max_steps:3 parent in
  consume_steps child 3;
  match Guard.count_step child with
  | () -> Alcotest.fail "child must honour its own smaller budget"
  | exception Guard.Exhausted _ -> ()

let test_fork_requested_above_remaining () =
  let parent = Guard.create ~max_steps:10 () in
  consume_steps parent 8;
  let child = Guard.fork ~max_steps:1000 parent in
  consume_steps child 2;
  match Guard.count_step child with
  | () -> Alcotest.fail "child cannot exceed the parent's remaining budget"
  | exception Guard.Exhausted _ -> ()

let test_absorb_folds_consumption_back () =
  let parent = Guard.create ~max_steps:10 () in
  consume_steps parent 4;
  let child = Guard.fork parent in
  consume_steps child 6;
  Guard.absorb parent child;
  Alcotest.(check int) "parent sees child's consumption" 10
    (Guard.consumption parent).Guard.steps;
  match Guard.count_step parent with
  | () -> Alcotest.fail "absorbed consumption must count against the parent"
  | exception Guard.Exhausted _ -> ()

let test_absorb_never_raises () =
  let parent = Guard.create ~max_steps:5 () in
  let child = Guard.fork parent in
  consume_steps parent 5;
  (* child consumption pushes the parent past its limit; absorb itself
     must stay silent — the *next* count trips *)
  consume_steps child 5;
  Guard.absorb parent child;
  Alcotest.(check int) "over-limit after absorb" 10
    (Guard.consumption parent).Guard.steps

(* --- failpoints -------------------------------------------------------- *)

module Failpoint = Mdqa_obs.Failpoint

let test_failpoint_parse () =
  (match
     Failpoint.parse_spec
       "a=crash, b=exit:3@2 ,c=hang:1.5,d=delay:250@4+,e=err,f=off"
   with
   | Error e -> Alcotest.fail e
   | Ok entries ->
     let find n =
       match List.assoc_opt n entries with
       | Some e -> e
       | None -> Alcotest.fail (Printf.sprintf "entry %S missing" n)
     in
     let check_entry name expected =
       Alcotest.(check bool) name true (find name = expected)
     in
     check_entry "a" { Failpoint.action = Failpoint.Crash; trigger = Failpoint.Always };
     check_entry "b" { Failpoint.action = Failpoint.Exit 3; trigger = Failpoint.At 2 };
     check_entry "c" { Failpoint.action = Failpoint.Hang 1.5; trigger = Failpoint.Always };
     (* delay takes milliseconds on the wire, seconds internally *)
     check_entry "d" { Failpoint.action = Failpoint.Delay 0.25; trigger = Failpoint.From 4 };
     check_entry "e" { Failpoint.action = Failpoint.Err; trigger = Failpoint.Always };
     check_entry "f" { Failpoint.action = Failpoint.Off; trigger = Failpoint.Always });
  Alcotest.(check bool) "empty spec is fine" true (Failpoint.parse_spec "" = Ok []);
  List.iter
    (fun bad ->
      match Failpoint.parse_spec bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S must be rejected" bad))
    [ "nope"; "x=warp"; "x=exit:abc"; "x=hang:zz"; "x=delay:"; "x=crash@0";
      "x=crash@-1"; "x=crash@x+"; "=crash" ]

(* [true] when the hit raised Injected for that site. *)
let fp_fires name =
  match Failpoint.hit name with
  | () -> false
  | exception Failpoint.Injected n ->
    Alcotest.(check string) "exception names the site" name n;
    true

let test_failpoint_triggers () =
  Failpoint.disarm_all ();
  Failpoint.arm "t.at" { Failpoint.action = Failpoint.Err; trigger = Failpoint.At 2 };
  Alcotest.(check bool) "@2: hit 1 quiet" false (fp_fires "t.at");
  Alcotest.(check bool) "@2: hit 2 fires" true (fp_fires "t.at");
  Alcotest.(check bool) "@2: hit 3 quiet again" false (fp_fires "t.at");
  Failpoint.arm "t.from" { Failpoint.action = Failpoint.Err; trigger = Failpoint.From 2 };
  Alcotest.(check bool) "@2+: hit 1 quiet" false (fp_fires "t.from");
  Alcotest.(check bool) "@2+: hit 2 fires" true (fp_fires "t.from");
  Alcotest.(check bool) "@2+: hit 3 fires" true (fp_fires "t.from");
  Failpoint.arm "t.off" { Failpoint.action = Failpoint.Off; trigger = Failpoint.Always };
  Failpoint.hit "t.off";
  Failpoint.hit "t.off";
  Failpoint.hit "t.off";
  Alcotest.(check bool) "hits counted per site, sorted" true
    (Failpoint.hits () = [ ("t.at", 3); ("t.from", 3); ("t.off", 3) ]);
  (* unarmed sites cost nothing and count nothing *)
  Failpoint.hit "t.unarmed";
  Alcotest.(check int) "unarmed hit not counted" 3
    (List.length (Failpoint.hits ()));
  Failpoint.disarm_all ();
  Alcotest.(check bool) "disarm_all forgets counts" true (Failpoint.hits () = []);
  Failpoint.hit "t.at";
  Alcotest.(check bool) "disarmed site is inert" true (Failpoint.hits () = [])

let test_failpoint_arm () =
  Failpoint.disarm_all ();
  (match Failpoint.arm_spec "t.spec=err@1" with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "arm_spec: first hit fires" true (fp_fires "t.spec");
  Alcotest.(check bool) "arm_spec: second hit quiet" false (fp_fires "t.spec");
  (* re-arming keeps the hit count *)
  Failpoint.arm "t.spec" { Failpoint.action = Failpoint.Off; trigger = Failpoint.Always };
  Alcotest.(check int) "re-arm preserves counts" 2
    (List.assoc "t.spec" (Failpoint.hits ()));
  Unix.putenv "MDQA_FAILPOINTS" "t.env=off@2+";
  (match Failpoint.arm_env () with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  Failpoint.hit "t.env";
  Alcotest.(check int) "env-armed site counts" 1
    (List.assoc "t.env" (Failpoint.hits ()));
  Unix.putenv "MDQA_FAILPOINTS" "bogus";
  (match Failpoint.arm_env () with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "a bogus MDQA_FAILPOINTS must be rejected");
  Unix.putenv "MDQA_FAILPOINTS" "";
  Alcotest.(check bool) "empty env is Ok" true (Failpoint.arm_env () = Ok ());
  Failpoint.disarm_all ()

(* --- worker: frame codec, envelope, classification -------------------- *)

let test_frame_codec () =
  Fdio.ignore_sigpipe ();
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_nonblock a;
  let r = Worker.Frame.reader () in
  Alcotest.(check bool) "empty pipe: nothing" true
    (Worker.Frame.poll r a = `Nothing);
  let write fd s = ignore (Unix.write_substring fd s 0 (String.length s)) in
  (* two frames in one write arrive in order *)
  write b (Worker.Frame.encode "hello" ^ Worker.Frame.encode "world");
  (match Worker.Frame.poll r a with
   | `Frames [ "hello"; "world" ] -> ()
   | _ -> Alcotest.fail "expected both frames in order");
  (* a frame split mid-prefix survives partial delivery *)
  let big = String.make 100 'x' in
  let f = Worker.Frame.encode big in
  write b (String.sub f 0 2);
  Alcotest.(check bool) "partial prefix: nothing yet" true
    (Worker.Frame.poll r a = `Nothing);
  write b (String.sub f 2 (String.length f - 2));
  (match Worker.Frame.poll r a with
   | `Frames [ p ] -> Alcotest.(check string) "reassembled" big p
   | _ -> Alcotest.fail "expected the reassembled frame");
  Unix.close b;
  Alcotest.(check bool) "peer close is eof" true (Worker.Frame.poll r a = `Eof);
  Unix.close a

let test_frame_corrupt () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_nonblock a;
  let r = Worker.Frame.reader () in
  (* 0xFFFFFFFF little-endian: negative / far past max_payload *)
  ignore (Unix.write_substring b "\xff\xff\xff\xff" 0 4);
  (match Worker.Frame.poll r a with
   | `Error _ -> ()
   | _ -> Alcotest.fail "corrupt length prefix must be an error");
  Unix.close a;
  Unix.close b

let test_frame_read_blocking () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let msg = Worker.Frame.encode "payload" in
  ignore (Unix.write_substring a msg 0 (String.length msg));
  (match Worker.Frame.read_blocking b with
   | Some "payload" -> ()
   | _ -> Alcotest.fail "blocking read must return the payload");
  Unix.close a;
  Alcotest.(check bool) "eof is None" true (Worker.Frame.read_blocking b = None);
  Unix.close b

let test_envelope_roundtrip () =
  Failpoint.disarm_all ();
  Failpoint.arm "t.env2" { Failpoint.action = Failpoint.Off; trigger = Failpoint.Always };
  Failpoint.hit "t.env2";
  Failpoint.hit "t.env2";
  let env = Worker.envelope ~line:"the reply\n" ~status:"degraded" ~code:(Some "W049") in
  (match Worker.parse_envelope env with
   | Ok pr ->
     Alcotest.(check string) "line" "the reply\n" pr.Worker.line;
     Alcotest.(check string) "status" "degraded" pr.Worker.status;
     Alcotest.(check (option string)) "code" (Some "W049") pr.Worker.code;
     Alcotest.(check int) "failpoint counters piggybacked" 2
       (List.assoc "t.env2" pr.Worker.fp)
   | Error e -> Alcotest.fail e);
  Failpoint.disarm_all ();
  (match Worker.parse_envelope {|{"nope": 1}|} with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "envelope without status/line must be rejected");
  match Worker.parse_envelope "not json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage envelope must be rejected"

let test_classify () =
  let check_cls name expected status =
    Alcotest.(check bool) name true (Worker.classify status = expected)
  in
  check_cls "exit 0 is a recycle" Worker.Recycled (Unix.WEXITED 0);
  check_cls "exit 125 is a crash" (Worker.Crashed "exit 125") (Unix.WEXITED 125);
  check_cls "SIGKILL is a crash" (Worker.Crashed "SIGKILL")
    (Unix.WSIGNALED Sys.sigkill);
  check_cls "SIGSEGV is a crash" (Worker.Crashed "SIGSEGV")
    (Unix.WSIGNALED Sys.sigsegv);
  Alcotest.(check string) "signal_name" "SIGABRT" (Worker.signal_name Sys.sigabrt)

(* Failpoint-driven crash/exit classification against real forked
   processes: the same [hit] that fires in a worker, classified by the
   same [classify] the supervisor uses. *)
let test_classify_forked () =
  let status_after f =
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
      (try f () with _ -> ());
      Unix._exit 99
    | pid -> snd (Unix.waitpid [] pid)
  in
  Failpoint.disarm_all ();
  Failpoint.arm "t.die" { Failpoint.action = Failpoint.Crash; trigger = Failpoint.Always };
  Alcotest.(check bool) "crash action dies as SIGABRT" true
    (Worker.classify (status_after (fun () -> Failpoint.hit "t.die"))
     = Worker.Crashed "SIGABRT");
  Failpoint.arm "t.die" { Failpoint.action = Failpoint.Exit 7; trigger = Failpoint.Always };
  Alcotest.(check bool) "exit:7 action classifies as exit 7" true
    (Worker.classify (status_after (fun () -> Failpoint.hit "t.die"))
     = Worker.Crashed "exit 7");
  Failpoint.arm "t.die" { Failpoint.action = Failpoint.Exit 0; trigger = Failpoint.Always };
  Alcotest.(check bool) "exit:0 action classifies as a recycle" true
    (Worker.classify (status_after (fun () -> Failpoint.hit "t.die"))
     = Worker.Recycled);
  Failpoint.disarm_all ()

let test_should_retire () =
  let r = { Worker.max_requests = 100; max_heap_mb = 50. } in
  Alcotest.(check bool) "below both thresholds" false
    (Worker.should_retire ~served:99 ~heap_mb:10. r);
  Alcotest.(check bool) "request threshold" true
    (Worker.should_retire ~served:100 ~heap_mb:10. r);
  Alcotest.(check bool) "heap threshold" true
    (Worker.should_retire ~served:0 ~heap_mb:50.1 r);
  let off = { Worker.max_requests = 0; max_heap_mb = 0. } in
  Alcotest.(check bool) "zeroes disable retirement" false
    (Worker.should_retire ~served:1_000_000 ~heap_mb:4096. off)

(* --- client: retry classification ------------------------------------- *)

let parsed_reply line =
  match Protocol.parse_reply (String.trim line) with
  | Ok r -> r
  | Error e -> Alcotest.fail e

let test_client_retry_classification () =
  let overload =
    parsed_reply
      (Protocol.degraded_reply ~code:"W047" ~reason:"overload" ~answers:None
         ~message:"shed" ())
  in
  Alcotest.(check bool) "overload shed always retried" true
    (Client.should_retry_reply ~idempotent:true overload <> None
     && Client.should_retry_reply ~idempotent:false overload <> None);
  let e029 =
    parsed_reply
      (Protocol.error_reply
         (Mdqa_datalog.Diag.make Mdqa_datalog.Diag.Error ~code:"E029"
            "worker crashed while handling this request (SIGKILL)"))
  in
  Alcotest.(check bool) "E029 retried when idempotent" true
    (Client.should_retry_reply ~idempotent:true e029 <> None);
  Alcotest.(check bool) "E029 not retried otherwise" true
    (Client.should_retry_reply ~idempotent:false e029 = None);
  let complete = parsed_reply (Protocol.complete_reply ~answers:None ()) in
  Alcotest.(check bool) "complete never retried" true
    (Client.should_retry_reply ~idempotent:true complete = None);
  (* a watchdog kill is NOT retried: the same query would hang the
     next worker too *)
  let w049 =
    parsed_reply
      (Protocol.degraded_reply ~code:"W049" ~reason:"watchdog" ~answers:None
         ~message:"killed" ())
  in
  Alcotest.(check bool) "watchdog kill never retried" true
    (Client.should_retry_reply ~idempotent:true w049 = None)

(* --- supervisor: state machine under fake hooks ------------------------ *)

(* The supervisor does everything through its hooks record and the
   worker fds, so the whole state machine runs here with a fake clock,
   a recording kill, scripted reaps and a spawn that hands back a
   socketpair instead of forking. *)
type sim = {
  mutable now : float;
  mutable killed : int list;
  exits : (int * Unix.process_status) Queue.t;
  mutable next_pid : int;
  mutable peers : (int * Unix.file_descr) list;
      (** pid -> the would-be child's end of the pipe *)
  mutable spawned : int;
}

let sim () =
  Fdio.ignore_sigpipe ();
  { now = 0.;
    killed = [];
    exits = Queue.create ();
    next_pid = 900_001;
    peers = [];
    spawned = 0 }

let sim_hooks s =
  { Supervisor.clock = (fun () -> s.now);
    kill = (fun pid -> s.killed <- pid :: s.killed);
    wait_any = (fun () -> Queue.take_opt s.exits);
    wait_pid =
      (fun pid ->
        let found = ref None in
        let rest = Queue.create () in
        Queue.iter
          (fun (p, st) ->
            if !found = None && p = pid then found := Some (p, st)
            else Queue.add (p, st) rest)
          s.exits;
        Queue.clear s.exits;
        Queue.transfer rest s.exits;
        !found);
    rand = (fun x -> x) }

let fake_spawn s ~on_child:_ =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_nonblock a;
  let pid = s.next_pid in
  s.next_pid <- s.next_pid + 1;
  s.spawned <- s.spawned + 1;
  s.peers <- (pid, b) :: s.peers;
  { Worker.pid; fd = a; reader = Worker.Frame.reader () }

let sim_cleanup sup s =
  Supervisor.shutdown sup ~grace:0.;
  List.iter
    (fun (_, fd) -> try Unix.close fd with Unix.Unix_error _ -> ())
    s.peers

(* Write one framed envelope into a worker's pipe from the child side;
   a closed parent end (already reaped) is fine. *)
let send_frame s pid payload =
  match List.assoc_opt pid s.peers with
  | None -> ()
  | Some fd -> (
    let data = Worker.Frame.encode payload in
    try ignore (Unix.write_substring fd data 0 (String.length data))
    with Unix.Unix_error _ -> ())

let drain_fds sup =
  List.iter (fun fd -> Supervisor.handle_readable sup fd) (Supervisor.fds sup)

let wdl () = Guard.Clock.now () +. 5.

let recorder () =
  let replies = ref [] in
  let reply ~status ~code line = replies := (status, code, line) :: !replies in
  (replies, reply)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let test_sup_frame_reply () =
  let s = sim () in
  let replies, reply = recorder () in
  let sup =
    Supervisor.start ~hooks:(sim_hooks s) ~watchdog:3. ~count:1
      ~spawn:(fake_spawn s) ~on_child:ignore ()
  in
  let pid0 = s.next_pid - 1 in
  Alcotest.(check int) "one ready worker" 1 (Supervisor.ready sup);
  Alcotest.(check bool) "dispatch accepted" true
    (Supervisor.dispatch sup ~line:"{}" ~req_id:None ~write_deadline:(wdl ())
       ~reply);
  Alcotest.(check int) "one inflight" 1 (Supervisor.inflight sup);
  Alcotest.(check int) "busy, not ready" 0 (Supervisor.ready sup);
  send_frame s pid0 (Worker.envelope ~line:"ok\n" ~status:"complete" ~code:None);
  drain_fds sup;
  (match !replies with
   | [ ("complete", None, "ok\n") ] -> ()
   | _ -> Alcotest.fail "expected exactly the worker's reply");
  Alcotest.(check int) "slot back to ready" 1 (Supervisor.ready sup);
  Alcotest.(check int) "nothing inflight" 0 (Supervisor.inflight sup);
  (* long past the watchdog deadline: an answered slot is left alone *)
  s.now <- 100.;
  Supervisor.tick sup;
  Alcotest.(check int) "no late watchdog reply" 1 (List.length !replies);
  Alcotest.(check int) "no kills" 0 (List.length s.killed);
  sim_cleanup sup s

let test_sup_watchdog () =
  let s = sim () in
  let replies, reply = recorder () in
  let sup =
    Supervisor.start ~hooks:(sim_hooks s) ~watchdog:3. ~count:1
      ~spawn:(fake_spawn s) ~on_child:ignore ()
  in
  let pid0 = s.next_pid - 1 in
  ignore
    (Supervisor.dispatch sup ~line:"{}" ~req_id:None ~write_deadline:(wdl ())
       ~reply);
  s.now <- 4.;
  Supervisor.tick sup;
  (match !replies with
   | [ ("degraded", Some "W049", line) ] ->
     Alcotest.(check bool) "reply names the deadline" true
       (contains line "deadline")
   | _ -> Alcotest.fail "expected one W049 degraded reply");
  Alcotest.(check bool) "hung pid SIGKILLed" true (s.killed = [ pid0 ]);
  Alcotest.(check int) "watchdog_kills" 1 (Supervisor.watchdog_kills sup);
  Alcotest.(check int) "answered: nothing inflight" 0 (Supervisor.inflight sup);
  (* a late reply from the doomed worker is dropped *)
  send_frame s pid0 (Worker.envelope ~line:"late\n" ~status:"complete" ~code:None);
  drain_fds sup;
  Alcotest.(check int) "late frame dropped" 1 (List.length !replies);
  (* the reap classifies the SIGKILL as a crash but sends no E029 *)
  Queue.add (pid0, Unix.WSIGNALED Sys.sigkill) s.exits;
  Alcotest.(check int) "reaped" 1 (Supervisor.reap sup);
  Alcotest.(check int) "no extra reply at reap" 1 (List.length !replies);
  Alcotest.(check int) "restart counted" 1 (Supervisor.restarts sup);
  (* cooldown, then the slot comes back *)
  (match Supervisor.next_wakeup sup with
   | Some u -> s.now <- u
   | None -> Alcotest.fail "a cooldown must be scheduled");
  Supervisor.tick sup;
  Alcotest.(check int) "respawned" 2 s.spawned;
  Alcotest.(check int) "ready again" 1 (Supervisor.ready sup);
  sim_cleanup sup s

let test_sup_crash_e029 () =
  let s = sim () in
  let replies, reply = recorder () in
  let sup =
    Supervisor.start ~hooks:(sim_hooks s) ~count:1 ~spawn:(fake_spawn s)
      ~on_child:ignore ()
  in
  let pid0 = s.next_pid - 1 in
  ignore
    (Supervisor.dispatch sup ~line:"{}" ~req_id:None ~write_deadline:(wdl ())
       ~reply);
  Queue.add (pid0, Unix.WSIGNALED Sys.sigsegv) s.exits;
  Alcotest.(check int) "reaped" 1 (Supervisor.reap sup);
  (match !replies with
   | [ ("error", Some "E029", line) ] ->
     Alcotest.(check bool) "cause in the reply" true (contains line "SIGSEGV")
   | _ -> Alcotest.fail "expected exactly one E029 reply");
  Alcotest.(check int) "restart counted" 1 (Supervisor.restarts sup);
  Alcotest.(check int) "not a recycle" 0 (Supervisor.recycles sup);
  Alcotest.(check int) "nothing inflight" 0 (Supervisor.inflight sup);
  sim_cleanup sup s

let test_sup_recycle_idle () =
  let s = sim () in
  let replies, _reply = recorder () in
  let sup =
    Supervisor.start ~hooks:(sim_hooks s) ~count:1 ~spawn:(fake_spawn s)
      ~on_child:ignore ()
  in
  let pid0 = s.next_pid - 1 in
  Queue.add (pid0, Unix.WEXITED 0) s.exits;
  Alcotest.(check int) "reaped" 1 (Supervisor.reap sup);
  Alcotest.(check int) "recycle counted" 1 (Supervisor.recycles sup);
  Alcotest.(check int) "not a restart" 0 (Supervisor.restarts sup);
  Alcotest.(check int) "no reply for an idle exit" 0 (List.length !replies);
  (* recycling carries no backoff: the replacement spawns immediately *)
  Supervisor.tick sup;
  Alcotest.(check int) "respawned at once" 2 s.spawned;
  Alcotest.(check int) "ready" 1 (Supervisor.ready sup);
  sim_cleanup sup s

let test_sup_exit0_midrequest () =
  let s = sim () in
  let replies, reply = recorder () in
  let sup =
    Supervisor.start ~hooks:(sim_hooks s) ~count:1 ~spawn:(fake_spawn s)
      ~on_child:ignore ()
  in
  let pid0 = s.next_pid - 1 in
  ignore
    (Supervisor.dispatch sup ~line:"{}" ~req_id:None ~write_deadline:(wdl ())
       ~reply);
  Queue.add (pid0, Unix.WEXITED 0) s.exits;
  ignore (Supervisor.reap sup);
  (* an exit 0 with a request in hand is a fault, not a recycle: the
     client gets its E029 and the slot pays crash backoff *)
  (match !replies with
   | [ ("error", Some "E029", _) ] -> ()
   | _ -> Alcotest.fail "expected an E029 for the abandoned request");
  Alcotest.(check int) "classified as a crash" 1 (Supervisor.restarts sup);
  Alcotest.(check int) "not a recycle" 0 (Supervisor.recycles sup);
  sim_cleanup sup s

let test_sup_backoff () =
  let policy =
    Backoff.policy ~base:1. ~cap:8. ~max_attempts:1000 ~budget:1e9 ()
  in
  let s = sim () in
  let sup =
    Supervisor.start ~hooks:(sim_hooks s) ~policy ~healthy_after:5. ~count:1
      ~spawn:(fake_spawn s) ~on_child:ignore ()
  in
  let crash () =
    Queue.add (s.next_pid - 1, Unix.WSIGNALED Sys.sigsegv) s.exits;
    ignore (Supervisor.reap sup)
  in
  let delay () =
    match Supervisor.next_wakeup sup with
    | Some u -> u -. s.now
    | None -> Alcotest.fail "a cooldown must be scheduled"
  in
  let respawn () =
    (match Supervisor.next_wakeup sup with
     | Some u -> s.now <- u
     | None -> Alcotest.fail "a cooldown must be scheduled");
    Supervisor.tick sup
  in
  (* rand is the identity in sim_hooks, so delays are the full jitter
     ceiling: deterministic and strictly growing until the cap *)
  crash ();
  let d1 = delay () in
  Alcotest.(check bool) "first delay positive" true (d1 > 0.);
  respawn ();
  crash ();
  let d2 = delay () in
  Alcotest.(check bool) "instant re-crash: delay grows" true (d2 > d1);
  respawn ();
  for _ = 1 to 8 do
    crash ();
    Alcotest.(check bool) "delay never exceeds the cap" true
      (delay () <= 8. +. 1e-9);
    respawn ()
  done;
  (* a healthy uptime earns the attempts back *)
  s.now <- s.now +. 6.;
  crash ();
  Alcotest.(check (float 1e-9)) "healthy uptime resets the walk" d1 (delay ());
  sim_cleanup sup s

let test_sup_quorum () =
  let s = sim () in
  let _replies, reply = recorder () in
  let sup =
    Supervisor.start ~hooks:(sim_hooks s) ~count:2 ~min_ready:2
      ~spawn:(fake_spawn s) ~on_child:ignore ()
  in
  let p0 = s.next_pid - 2 and p1 = s.next_pid - 1 in
  Alcotest.(check bool) "quorum with both up" true (Supervisor.quorum sup);
  Alcotest.(check int) "alive" 2 (Supervisor.alive sup);
  Queue.add (p0, Unix.WSIGNALED Sys.sigkill) s.exits;
  Queue.add (p1, Unix.WSIGNALED Sys.sigkill) s.exits;
  Alcotest.(check int) "both reaped" 2 (Supervisor.reap sup);
  Alcotest.(check int) "none alive" 0 (Supervisor.alive sup);
  Alcotest.(check bool) "quorum lost" false (Supervisor.quorum sup);
  Alcotest.(check int) "min_ready exposed" 2 (Supervisor.min_ready sup);
  Alcotest.(check bool) "dispatch refused on a dead pool" false
    (Supervisor.dispatch sup ~line:"{}" ~req_id:None ~write_deadline:(wdl ())
       ~reply);
  (match Supervisor.next_wakeup sup with
   | Some u -> s.now <- u
   | None -> Alcotest.fail "cooldowns must be scheduled");
  Supervisor.tick sup;
  Alcotest.(check int) "both respawned" 4 s.spawned;
  Alcotest.(check bool) "quorum regained" true (Supervisor.quorum sup);
  sim_cleanup sup s

let test_sup_abort () =
  let s = sim () in
  let replies, reply = recorder () in
  let sup =
    Supervisor.start ~hooks:(sim_hooks s) ~count:1 ~spawn:(fake_spawn s)
      ~on_child:ignore ()
  in
  let pid0 = s.next_pid - 1 in
  ignore
    (Supervisor.dispatch sup ~line:"{}" ~req_id:None ~write_deadline:(wdl ())
       ~reply);
  Alcotest.(check int) "one aborted" 1
    (Supervisor.abort_inflight sup ~code:"H053" ~reason:"drain"
       ~message:"draining");
  (match !replies with
   | [ ("degraded", Some "H053", _) ] -> ()
   | _ -> Alcotest.fail "expected one H053 degraded reply");
  Alcotest.(check int) "second abort finds nothing" 0
    (Supervisor.abort_inflight sup ~code:"H053" ~reason:"drain"
       ~message:"draining");
  (* the worker's own answer arrives after the abort: dropped *)
  send_frame s pid0 (Worker.envelope ~line:"late\n" ~status:"complete" ~code:None);
  drain_fds sup;
  Alcotest.(check int) "late answer dropped" 1 (List.length !replies);
  sim_cleanup sup s

let test_sup_failover () =
  let s = sim () in
  let _replies, reply = recorder () in
  let sup =
    Supervisor.start ~hooks:(sim_hooks s) ~count:2 ~spawn:(fake_spawn s)
      ~on_child:ignore ()
  in
  let p0 = s.next_pid - 2 in
  (* break slot 0's pipe: its dispatch write will fail *)
  (match List.assoc_opt p0 s.peers with
   | Some fd -> Unix.close fd
   | None -> Alcotest.fail "peer fd tracked");
  s.peers <- List.remove_assoc p0 s.peers;
  Alcotest.(check bool) "dispatch fails over to the healthy worker" true
    (Supervisor.dispatch sup ~line:"{}" ~req_id:None ~write_deadline:(wdl ())
       ~reply);
  Alcotest.(check bool) "broken worker killed" true (List.mem p0 s.killed);
  Alcotest.(check int) "request landed on the sibling" 1 (Supervisor.busy sup);
  Alcotest.(check int) "one inflight" 1 (Supervisor.inflight sup);
  sim_cleanup sup s

(* --- supervisor: qcheck properties ------------------------------------ *)

let prop_next_attempts =
  QCheck.Test.make
    ~name:"supervisor: crash count resets after healthy uptime, else grows"
    ~count:500
    (QCheck.make
       ~print:(fun (h, u, a) ->
         Printf.sprintf "healthy_after=%g uptime=%g attempts=%d" h u a)
       QCheck.Gen.(
         triple (float_range 0.1 10.) (float_range 0. 20.) (int_range 0 50)))
    (fun (healthy_after, uptime, attempts) ->
      let n = Supervisor.next_attempts ~healthy_after ~uptime ~attempts in
      if uptime >= healthy_after then n = 1 else n = attempts + 1)

let prop_restart_delay_bounded =
  QCheck.Test.make
    ~name:"supervisor: restart delay bounded by the cap, monotone in attempts"
    ~count:500
    QCheck.(pair policy_arb (pair (int_range 1 60) int))
    (fun (pspec, (attempts, seed)) ->
      let p = mk_policy pspec in
      let st = Random.State.make [| seed |] in
      let d =
        Supervisor.restart_delay p ~rand:(Random.State.float st) ~attempts
      in
      let id x = x in
      let here = Supervisor.restart_delay p ~rand:id ~attempts in
      let next = Supervisor.restart_delay p ~rand:id ~attempts:(attempts + 1) in
      d >= 0. && d <= p.Backoff.cap && here <= next)

(* The exactly-once invariant: one dispatched request, an arbitrary
   interleaving of worker reply, worker death, watchdog expiry and
   no-op ticks, with a drain abort at the end — the client hears back
   exactly once no matter the order. *)
let prop_sup_single_reply =
  let event_gen = QCheck.Gen.oneofl [ `Frame; `Exit; `Watchdog; `Tick ] in
  let print_event = function
    | `Frame -> "frame"
    | `Exit -> "exit"
    | `Watchdog -> "watchdog"
    | `Tick -> "tick"
  in
  QCheck.Test.make
    ~name:"supervisor: a dispatched request is answered exactly once"
    ~count:150
    (QCheck.make
       ~print:(fun evs -> String.concat "," (List.map print_event evs))
       QCheck.Gen.(list_size (int_range 0 6) event_gen))
    (fun events ->
      let s = sim () in
      let policy =
        Backoff.policy ~base:0.1 ~cap:1. ~max_attempts:1000 ~budget:1e9 ()
      in
      let sup =
        Supervisor.start ~hooks:(sim_hooks s) ~policy ~watchdog:3. ~count:1
          ~spawn:(fake_spawn s) ~on_child:ignore ()
      in
      let pid0 = s.next_pid - 1 in
      let n_replies = ref 0 in
      let reply ~status:_ ~code:_ _ = incr n_replies in
      let ok =
        Supervisor.dispatch sup ~line:"{}" ~req_id:None
          ~write_deadline:(wdl ()) ~reply
      in
      let exited = ref false in
      List.iter
        (fun ev ->
          match ev with
          | `Frame ->
            send_frame s pid0
              (Worker.envelope ~line:"r\n" ~status:"complete" ~code:None);
            drain_fds sup
          | `Exit ->
            if not !exited then begin
              exited := true;
              Queue.add (pid0, Unix.WSIGNALED Sys.sigkill) s.exits
            end;
            ignore (Supervisor.reap sup)
          | `Watchdog ->
            s.now <- s.now +. 10.;
            Supervisor.tick sup
          | `Tick -> Supervisor.tick sup)
        events;
      ignore
        (Supervisor.abort_inflight sup ~code:"H053" ~reason:"drain"
           ~message:"draining");
      sim_cleanup sup s;
      ok && !n_replies = 1)

(* --- suites ----------------------------------------------------------- *)

let case name f = Alcotest.test_case name `Quick f

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_delay_within_bounds; prop_ceiling_monotone;
      prop_budget_bounds_sleep; prop_jsonl_roundtrip; prop_jsonl_total;
      prop_next_attempts; prop_restart_delay_bounded; prop_sup_single_reply ]

let suites =
  [ ( "server.backoff-breaker-admission",
      [ case "breaker: trip, probe, re-open, recover"
          test_breaker_trip_and_recover;
        case "breaker: cooldown doubles up to the cap"
          test_breaker_cooldown_cap;
        case "admission: fifo order and shed accounting"
          test_admission_fifo_and_shed ] );
    ( "server.protocol",
      [ case "jsonl: unicode escapes and trailing bytes" test_jsonl_unicode;
        case "jsonl: nesting depth limit" test_jsonl_depth_limit;
        case "parse_request: well-formed" test_parse_request_ok;
        case "parse_request: malformations are E024" test_parse_request_bad;
        case "replies round-trip through parse_reply" test_reply_roundtrip;
        case "client: which replies are retried" test_client_retry_classification ] );
    ( "server.failpoint",
      [ case "parse_spec: grammar, delay units, rejects" test_failpoint_parse;
        case "triggers: @N, @N+, off counting, disarm" test_failpoint_triggers;
        case "arm_spec / arm_env / re-arm keeps counts" test_failpoint_arm ] );
    ( "server.worker",
      [ case "frame codec: order, split delivery, eof" test_frame_codec;
        case "frame codec: corrupt length is an error" test_frame_corrupt;
        case "frame codec: blocking child read" test_frame_read_blocking;
        case "envelope round-trips with failpoint counters"
          test_envelope_roundtrip;
        case "exit classification" test_classify;
        case "failpoint-driven crash/exit classification (forked)"
          test_classify_forked;
        case "recycling thresholds" test_should_retire ] );
    ( "server.supervisor",
      [ case "worker reply answers once; watchdog stays quiet"
          test_sup_frame_reply;
        case "watchdog: W049 once, SIGKILL, restart after cooldown"
          test_sup_watchdog;
        case "crash mid-request: E029 exactly once" test_sup_crash_e029;
        case "idle exit 0 is a recycle, not a crash" test_sup_recycle_idle;
        case "exit 0 mid-request is a crash with E029"
          test_sup_exit0_midrequest;
        case "crash-loop backoff: capped, resets when healthy"
          test_sup_backoff;
        case "quorum flips with deaths and respawns" test_sup_quorum;
        case "drain aborts in-flight exactly once" test_sup_abort;
        case "dispatch fails over a broken worker pipe" test_sup_failover ] );
    ( "server.guard-fork",
      [ case "fork caps child by parent remaining"
          test_fork_caps_child_by_remaining;
        case "fork honours a smaller requested budget"
          test_fork_requested_below_remaining;
        case "fork clamps a larger requested budget"
          test_fork_requested_above_remaining;
        case "absorb folds consumption back"
          test_absorb_folds_consumption_back;
        case "absorb never raises" test_absorb_never_raises ] );
    ("server.properties", qcheck_cases) ]
