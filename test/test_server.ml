(* Unit and property tests for the mdqa_server building blocks: backoff
   (the ISSUE's qcheck properties), circuit breaker transitions under an
   injected clock, admission-queue shedding, the JSONL codec, the wire
   protocol, and Guard.fork/absorb budget arithmetic.  The end-to-end
   loop — signals, socket faults, overload — is exercised by
   test/chaos_serve.sh. *)

open Mdqa_server
module Guard = Mdqa_datalog.Guard

(* --- backoff: full-jitter properties --------------------------------- *)

let policy_arb =
  QCheck.make
    ~print:(fun (base, cap_mult, attempts, budget) ->
      Printf.sprintf "base=%g cap=%g attempts=%d budget=%g" base
        (base *. cap_mult) attempts budget)
    QCheck.Gen.(
      quad
        (float_range 0.001 1.0)
        (float_range 1.0 100.0)
        (int_range 0 10)
        (float_range 0.0 20.0))

let mk_policy (base, cap_mult, attempts, budget) =
  Backoff.policy ~base ~cap:(base *. cap_mult) ~max_attempts:attempts ~budget
    ()

let prop_delay_within_bounds =
  QCheck.Test.make ~name:"backoff: jittered delay stays within [0, cap]"
    ~count:500
    QCheck.(pair policy_arb (pair (int_range 0 80) int))
    (fun (pspec, (attempt, seed)) ->
      let p = mk_policy pspec in
      let st = Random.State.make [| seed |] in
      let d = Backoff.delay p ~rand:(Random.State.float st) ~attempt in
      d >= 0. && d <= p.Backoff.cap
      && d <= Backoff.ceiling p ~attempt)

let prop_ceiling_monotone =
  QCheck.Test.make
    ~name:"backoff: ceiling is monotone and capped past the crossover"
    ~count:500
    QCheck.(pair policy_arb (int_range 0 79))
    (fun (pspec, attempt) ->
      let p = mk_policy pspec in
      let here = Backoff.ceiling p ~attempt in
      let next = Backoff.ceiling p ~attempt:(attempt + 1) in
      here <= next && next <= p.Backoff.cap
      && Backoff.ceiling p ~attempt:80 = p.Backoff.cap)

let prop_budget_bounds_sleep =
  QCheck.Test.make
    ~name:"backoff: retry budget bounds total sleep and attempt count"
    ~count:500
    QCheck.(pair policy_arb int)
    (fun (pspec, seed) ->
      let p = mk_policy pspec in
      let st = Random.State.make [| seed |] in
      let bo = Backoff.start p in
      let total = ref 0. in
      let rec drain () =
        match Backoff.next bo ~rand:(Random.State.float st) with
        | Some d ->
          total := !total +. d;
          drain ()
        | None -> ()
      in
      drain ();
      !total <= p.Backoff.budget +. 1e-9
      && Backoff.attempts bo <= p.Backoff.max_attempts
      && Float.abs (Backoff.slept bo -. !total) < 1e-9)

(* --- breaker: every transition under an injected clock --------------- *)

let test_breaker_trip_and_recover () =
  let now = ref 0. in
  let b =
    Breaker.create ~threshold:3 ~cooldown:1.0 ~cooldown_cap:60.0
      ~clock:(fun () -> !now)
      ()
  in
  Alcotest.(check bool) "starts closed" true (Breaker.state b = Breaker.Closed);
  Breaker.record_failure b;
  Breaker.record_failure b;
  Alcotest.(check bool) "below threshold stays closed" true (Breaker.allow b);
  Breaker.record_failure b;
  Alcotest.(check bool) "third failure trips open" false (Breaker.allow b);
  Alcotest.(check int) "one trip counted" 1 (Breaker.trips b);
  (match Breaker.retry_at b with
   | Some at -> Alcotest.(check (float 1e-9)) "half-opens at cooldown" 1.0 at
   | None -> Alcotest.fail "open breaker must expose retry_at");
  now := 1.5;
  Alcotest.(check bool) "cooldown elapsed: one probe allowed" true
    (Breaker.allow b);
  Alcotest.(check bool) "second probe refused while first in flight" false
    (Breaker.allow b);
  Breaker.record_failure b;
  Alcotest.(check string) "failed probe re-opens" "open" (Breaker.state_name b);
  (match Breaker.retry_at b with
   | Some at ->
     Alcotest.(check (float 1e-9)) "cooldown doubled" (1.5 +. 2.0) at
   | None -> Alcotest.fail "re-opened breaker must expose retry_at");
  now := 4.0;
  Alcotest.(check bool) "second probe window" true (Breaker.allow b);
  Breaker.record_success b;
  Alcotest.(check bool) "successful probe closes" true
    (Breaker.state b = Breaker.Closed);
  Alcotest.(check int) "failure count reset" 0 (Breaker.consecutive_failures b);
  (* cooldown reset too: next trip opens for the base cooldown again *)
  Breaker.record_failure b;
  Breaker.record_failure b;
  Breaker.record_failure b;
  match Breaker.retry_at b with
  | Some at -> Alcotest.(check (float 1e-9)) "cooldown reset" (4.0 +. 1.0) at
  | None -> Alcotest.fail "tripped breaker must expose retry_at"

let test_breaker_cooldown_cap () =
  let now = ref 0. in
  let b =
    Breaker.create ~threshold:1 ~cooldown:1.0 ~cooldown_cap:4.0
      ~clock:(fun () -> !now)
      ()
  in
  (* fail every probe: cooldown 1 -> 2 -> 4 -> capped at 4 *)
  Breaker.record_failure b;
  let fail_probe expected =
    now := Option.get (Breaker.retry_at b) +. 0.001;
    Alcotest.(check bool) "probe allowed" true (Breaker.allow b);
    Breaker.record_failure b;
    match Breaker.retry_at b with
    | Some at ->
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "cooldown %.0f" expected)
        expected (at -. !now +. 0.001 |> Float.round)
    | None -> Alcotest.fail "must be open"
  in
  fail_probe 2.;
  fail_probe 4.;
  fail_probe 4.;
  fail_probe 4.

(* --- admission queue -------------------------------------------------- *)

let test_admission_fifo_and_shed () =
  let q = Admission.create ~capacity:3 in
  Alcotest.(check bool) "accepts 1" true (Admission.offer q 1);
  Alcotest.(check bool) "accepts 2" true (Admission.offer q 2);
  Alcotest.(check bool) "accepts 3" true (Admission.offer q 3);
  Alcotest.(check bool) "sheds 4" false (Admission.offer q 4);
  Alcotest.(check bool) "sheds 5" false (Admission.offer q 5);
  Alcotest.(check int) "shed counted" 2 (Admission.shed q);
  Alcotest.(check int) "accepted counted" 3 (Admission.accepted q);
  Alcotest.(check (option int)) "fifo 1" (Some 1) (Admission.take q);
  Alcotest.(check (option int)) "fifo 2" (Some 2) (Admission.take q);
  Alcotest.(check bool) "freed capacity readmits" true (Admission.offer q 6);
  Alcotest.(check (option int)) "fifo 3" (Some 3) (Admission.take q);
  Alcotest.(check (option int)) "fifo 6" (Some 6) (Admission.take q);
  Alcotest.(check (option int)) "empty" None (Admission.take q);
  Alcotest.(check bool) "is_empty" true (Admission.is_empty q)

(* --- jsonl codec ------------------------------------------------------ *)

let jsonl_arb =
  let open QCheck.Gen in
  let scalar =
    oneof
      [ return Jsonl.Null;
        map (fun b -> Jsonl.Bool b) bool;
        map (fun n -> Jsonl.Num (float_of_int n)) (int_range (-1000) 1000);
        map (fun f -> Jsonl.Num f) (float_range (-1e6) 1e6);
        map (fun s -> Jsonl.Str s) (string_size ~gen:printable (int_range 0 12))
      ]
  in
  let value =
    sized (fun n ->
        fix
          (fun self n ->
            if n <= 0 then scalar
            else
              frequency
                [ (3, scalar);
                  (1, map (fun l -> Jsonl.List l)
                        (list_size (int_range 0 4) (self (n / 2))));
                  (1,
                   map (fun kvs -> Jsonl.Obj kvs)
                     (list_size (int_range 0 4)
                        (pair
                           (string_size ~gen:(char_range 'a' 'z')
                              (int_range 1 6))
                           (self (n / 2))))) ])
          (min n 8))
  in
  QCheck.make ~print:Jsonl.to_string value

let prop_jsonl_roundtrip =
  QCheck.Test.make ~name:"jsonl: parse (to_string v) = v" ~count:500 jsonl_arb
    (fun v -> Jsonl.parse (Jsonl.to_string v) = Ok v)

let prop_jsonl_total =
  QCheck.Test.make ~name:"jsonl: parse never raises on arbitrary bytes"
    ~count:1000
    (QCheck.make
       QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 0 255))
                     (int_range 0 64)))
    (fun s ->
      match Jsonl.parse s with Ok _ | Error _ -> true)

let test_jsonl_unicode () =
  (match Jsonl.parse {|"aé😀b"|} with
   | Ok (Jsonl.Str s) ->
     Alcotest.(check string) "utf-8 decoding" "a\xc3\xa9\xf0\x9f\x98\x80b" s
   | _ -> Alcotest.fail "unicode escapes must parse");
  (match Jsonl.parse {|"\ud83d"|} with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unpaired surrogate must be rejected");
  match Jsonl.parse {|{"a": 1} trailing|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing bytes must be rejected"

let test_jsonl_depth_limit () =
  let deep = String.make 600 '[' ^ String.make 600 ']' in
  match Jsonl.parse deep with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "600-deep nesting must be rejected"

(* --- protocol --------------------------------------------------------- *)

let test_parse_request_ok () =
  (match
     Protocol.parse_request
       {|{"kind":"query","query":"q(X) :- p(X)","id":7,"engine":"proof","timeout":0.5,"max_steps":100}|}
   with
   | Ok (Protocol.Query { query; engine; timeout; max_steps; id }) ->
     Alcotest.(check string) "query" "q(X) :- p(X)" query;
     Alcotest.(check bool) "engine" true (engine = Protocol.Proof);
     Alcotest.(check (option (float 1e-9))) "timeout" (Some 0.5) timeout;
     Alcotest.(check (option int)) "max_steps" (Some 100) max_steps;
     Alcotest.(check bool) "id echoed" true (id = Some (Jsonl.Num 7.))
   | _ -> Alcotest.fail "well-formed query must parse");
  match Protocol.parse_request {|{"kind":"health"}|} with
  | Ok (Protocol.Health { id = None }) -> ()
  | _ -> Alcotest.fail "health must parse"

let test_parse_request_bad () =
  let is_e024 input =
    match Protocol.parse_request input with
    | Error d -> d.Mdqa_datalog.Diag.code = "E024"
    | Ok _ -> false
  in
  List.iter
    (fun input ->
      Alcotest.(check bool)
        (Printf.sprintf "E024 for %s" input)
        true (is_e024 input))
    [ "not json";
      "[1,2,3]";
      {|{"no_kind": true}|};
      {|{"kind": "launch_missiles"}|};
      {|{"kind": "query"}|};
      {|{"kind": "query", "query": 42}|};
      {|{"kind": "query", "query": "q(X) :- p(X)", "engine": "warp"}|};
      {|{"kind": "query", "query": "q(X) :- p(X)", "timeout": -1}|};
      {|{"kind": "query", "query": "q(X) :- p(X)", "max_steps": 0}|} ]

let test_reply_roundtrip () =
  let t =
    Mdqa_relational.Tuple.of_list
      [ Mdqa_relational.Value.Sym "a"; Mdqa_relational.Value.Int 3;
        Mdqa_relational.Value.Null 2 ]
  in
  let line =
    Protocol.complete_reply ~id:(Jsonl.Num 9.) ~answers:(Some [ t ]) ()
  in
  Alcotest.(check bool) "newline-terminated" true
    (String.length line > 0 && line.[String.length line - 1] = '\n');
  (match Protocol.parse_reply (String.trim line) with
   | Ok r ->
     Alcotest.(check string) "status" "complete" r.Protocol.status;
     Alcotest.(check bool) "id" true (r.Protocol.id = Some (Jsonl.Num 9.));
     Alcotest.(check (option (list (list string))))
       "answers rendered" (Some [ [ "a"; "3"; "_:2" ] ])
       r.Protocol.answers
   | Error e -> Alcotest.fail e);
  let degraded =
    Protocol.degraded_reply ~code:"W047" ~reason:"overload" ~answers:None
      ~message:"shed" ()
  in
  match Protocol.parse_reply (String.trim degraded) with
  | Ok r ->
    Alcotest.(check string) "status" "degraded" r.Protocol.status;
    Alcotest.(check (option string)) "reason" (Some "overload")
      r.Protocol.reason;
    Alcotest.(check (option string)) "code" (Some "W047") r.Protocol.code
  | Error e -> Alcotest.fail e

(* --- Guard.fork / absorb ---------------------------------------------- *)

let consume_steps g n =
  for _ = 1 to n do
    Guard.count_step g
  done

let test_fork_caps_child_by_remaining () =
  let parent = Guard.create ~max_steps:10 () in
  consume_steps parent 4;
  let child = Guard.fork parent in
  consume_steps child 6;
  (match Guard.count_step child with
   | () -> Alcotest.fail "child must trip at the parent's remaining budget"
   | exception Guard.Exhausted e ->
     Alcotest.(check bool) "steps resource" true
       (e.Guard.resource = Guard.Steps));
  (* the child's trip never propagates to the parent *)
  Guard.count_step parent

let test_fork_requested_below_remaining () =
  let parent = Guard.create ~max_steps:100 () in
  let child = Guard.fork ~max_steps:3 parent in
  consume_steps child 3;
  match Guard.count_step child with
  | () -> Alcotest.fail "child must honour its own smaller budget"
  | exception Guard.Exhausted _ -> ()

let test_fork_requested_above_remaining () =
  let parent = Guard.create ~max_steps:10 () in
  consume_steps parent 8;
  let child = Guard.fork ~max_steps:1000 parent in
  consume_steps child 2;
  match Guard.count_step child with
  | () -> Alcotest.fail "child cannot exceed the parent's remaining budget"
  | exception Guard.Exhausted _ -> ()

let test_absorb_folds_consumption_back () =
  let parent = Guard.create ~max_steps:10 () in
  consume_steps parent 4;
  let child = Guard.fork parent in
  consume_steps child 6;
  Guard.absorb parent child;
  Alcotest.(check int) "parent sees child's consumption" 10
    (Guard.consumption parent).Guard.steps;
  match Guard.count_step parent with
  | () -> Alcotest.fail "absorbed consumption must count against the parent"
  | exception Guard.Exhausted _ -> ()

let test_absorb_never_raises () =
  let parent = Guard.create ~max_steps:5 () in
  let child = Guard.fork parent in
  consume_steps parent 5;
  (* child consumption pushes the parent past its limit; absorb itself
     must stay silent — the *next* count trips *)
  consume_steps child 5;
  Guard.absorb parent child;
  Alcotest.(check int) "over-limit after absorb" 10
    (Guard.consumption parent).Guard.steps

(* --- suites ----------------------------------------------------------- *)

let case name f = Alcotest.test_case name `Quick f

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_delay_within_bounds; prop_ceiling_monotone;
      prop_budget_bounds_sleep; prop_jsonl_roundtrip; prop_jsonl_total ]

let suites =
  [ ( "server.backoff-breaker-admission",
      [ case "breaker: trip, probe, re-open, recover"
          test_breaker_trip_and_recover;
        case "breaker: cooldown doubles up to the cap"
          test_breaker_cooldown_cap;
        case "admission: fifo order and shed accounting"
          test_admission_fifo_and_shed ] );
    ( "server.protocol",
      [ case "jsonl: unicode escapes and trailing bytes" test_jsonl_unicode;
        case "jsonl: nesting depth limit" test_jsonl_depth_limit;
        case "parse_request: well-formed" test_parse_request_ok;
        case "parse_request: malformations are E024" test_parse_request_bad;
        case "replies round-trip through parse_reply" test_reply_roundtrip ] );
    ( "server.guard-fork",
      [ case "fork caps child by parent remaining"
          test_fork_caps_child_by_remaining;
        case "fork honours a smaller requested budget"
          test_fork_requested_below_remaining;
        case "fork clamps a larger requested budget"
          test_fork_requested_above_remaining;
        case "absorb folds consumption back"
          test_absorb_folds_consumption_back;
        case "absorb never raises" test_absorb_never_raises ] );
    ("server.properties", qcheck_cases) ]
