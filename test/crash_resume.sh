#!/bin/sh
# Crash-recovery smoke test: SIGKILL a checkpointed chase mid-run, then
# demand that `mdqa resume` completes it cleanly (exit 0) and that the
# resumed instance matches the one an uninterrupted run computes.
#
# The kill lands wherever it lands — possibly mid-journal-record,
# mid-snapshot-rename, or after saturation; recovery must cope with all
# of them, so the test is meaningful regardless of timing.
#
# Usage: crash_resume.sh MDQA_EXE
set -u

exe="$1"
dir=$(mktemp -d "${TMPDIR:-/tmp}/mdqa_crash.XXXXXX")
trap 'rm -rf "$dir"' EXIT

# Transitive closure over a long chain: hundreds of rounds, so the kill
# below reliably lands mid-chase.
prog="$dir/prog.dl"
{
  i=1
  while [ "$i" -le 300 ]; do
    echo "e($i, $((i + 1)))."
    i=$((i + 1))
  done
  echo 't(X, Y) :- e(X, Y).'
  echo 't(X, Z) :- t(X, Y), e(Y, Z).'
} > "$prog"

# Reference: the uninterrupted result (tables only, skip header lines).
timeout 120 "$exe" chase "$prog" --max-steps 100000000 > "$dir/full.out" 2>/dev/null
tail -n +3 "$dir/full.out" > "$dir/full.tables"

ck="$dir/ck.snap"
"$exe" chase "$prog" --checkpoint "$ck" --max-steps 100000000 \
  > /dev/null 2>&1 &
pid=$!
# Let it get through validation and some chase rounds, then pull the plug.
sleep 1
kill -9 "$pid" 2>/dev/null
wait "$pid" 2>/dev/null

if [ ! -f "$ck" ]; then
  echo "crash_resume FAIL: no snapshot on disk after SIGKILL" >&2
  exit 1
fi

# verify must terminate and never crash; torn tails are acceptable (0 or 2)
timeout 60 "$exe" store verify "$ck" > "$dir/verify.out" 2>&1
v=$?
if [ "$v" -ne 0 ] && [ "$v" -ne 2 ]; then
  echo "crash_resume FAIL: verify exited $v after SIGKILL" >&2
  cat "$dir/verify.out" >&2
  exit 1
fi

timeout 120 "$exe" resume "$ck" --max-steps 100000000 \
  > "$dir/resumed.out" 2>"$dir/resumed.err"
r=$?
if [ "$r" -ne 0 ]; then
  echo "crash_resume FAIL: resume exited $r" >&2
  cat "$dir/resumed.err" >&2
  exit 1
fi

tail -n +3 "$dir/resumed.out" > "$dir/resumed.tables"
if ! cmp -s "$dir/full.tables" "$dir/resumed.tables"; then
  echo "crash_resume FAIL: resumed instance differs from the full chase" >&2
  diff "$dir/full.tables" "$dir/resumed.tables" | head -20 >&2
  exit 1
fi

echo "crash_resume: killed mid-chase, resumed to the identical instance"
exit 0
