(* Fault-injection and unit tests for the replication plane
   (Mdqa_server.Replication) and client failover.

   The contract under test: a shipped snapshot+journal stream is
   exactly as crash-safe as the local files it copies — truncation at
   any byte and single-bit flips are either rejected (snapshot) or
   truncate to a clean prefix (journal), and any clean prefix installs
   to a store that `mdqa store verify` accepts.  The client, given a
   comma-separated endpoint list, rotates to the next endpoint on the
   dead-endpoint errno signature. *)

open Mdqa_datalog
module R = Mdqa_relational
module Crc32 = Mdqa_store.Crc32
module Snapshot = Mdqa_store.Snapshot
module Journal = Mdqa_store.Journal
module Store = Mdqa_store.Store
module Jsonl = Mdqa_server.Jsonl
module Backoff = Mdqa_server.Backoff
module Client = Mdqa_server.Client
module Sproto = Mdqa_server.Protocol
module Replication = Mdqa_server.Replication
module Metrics = Mdqa_obs.Metrics

(* --- helpers --------------------------------------------------------- *)

let tmp_store () =
  let path = Filename.temp_file "mdqa_repl_test" ".snap" in
  Sys.remove path;
  path

let cleanup path =
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ path; path ^ ".journal"; path ^ ".tmp" ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let stats_of (a, b, c, d, e) =
  { Chase.rounds = a; tgd_fires = b; triggers_checked = c; nulls_created = d;
    egd_merges = e }

let mk_instance rels =
  let inst = R.Instance.create () in
  List.iter
    (fun (name, arity, tuples) ->
      ignore
        (R.Instance.declare inst
           (R.Rel_schema.of_names name (List.init arity (Printf.sprintf "c%d"))));
      List.iter
        (fun t -> ignore (R.Instance.add_tuple inst name (R.Tuple.of_list t)))
        tuples)
    rels;
  inst

(* A small but representative primary store: a snapshot with nulls and
   an empty relation, plus a journal exercising every record kind. *)
let primary_snapshot () =
  { Snapshot.program_text = "t(X, Y) :- e(X, Y).";
    variant = Chase.Restricted;
    instance =
      mk_instance
        [ ("e", 2,
           [ [ R.Value.int 1; R.Value.int 2 ];
             [ R.Value.sym "a"; R.Value.Null 3 ] ]);
          ("t", 2, []) ];
    null_base = 7;
    stats = stats_of (1, 2, 3, 4, 5);
    frontier = None }

let journal_records =
  [ Journal.Fact ("t", R.Tuple.of_list [ R.Value.int 1; R.Value.int 2 ]);
    Journal.Fact ("t", R.Tuple.of_list [ R.Value.sym "a"; R.Value.Null 8 ]);
    Journal.Merge { from_ = R.Value.Null 8; into = R.Value.Null 3 };
    Journal.Round { merged = true; stats = stats_of (2, 4, 6, 8, 10) } ]

(* Writes snapshot + journal files at [path]; returns their raw bytes
   (the shipped stream). *)
let write_primary path =
  ignore (Snapshot.write ~path (primary_snapshot ()));
  let w = Journal.create ~path:(Store.journal_path path) in
  List.iter (fun r -> ignore (Journal.append w r)) journal_records;
  Journal.close w;
  (read_file path, read_file (Store.journal_path path))

let no_corruption_diags path =
  let rep = Mdqa_store.Fsck.check ~path in
  not
    (List.exists
       (fun d -> d.Diag.code = "E023")
       rep.Mdqa_store.Fsck.diags)

(* --- hex codec ------------------------------------------------------- *)

let test_hex_roundtrip () =
  let all = String.init 256 Char.chr in
  List.iter
    (fun s ->
      let h = Replication.to_hex s in
      Alcotest.(check bool)
        "hex is lowercase [0-9a-f]" true
        (String.for_all
           (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
           h);
      match Replication.of_hex h with
      | Ok back -> Alcotest.(check string) "round-trips" s back
      | Error e -> Alcotest.failf "of_hex rejected its own output: %s" e)
    [ ""; "x"; "nul\000byte"; all ];
  (match Replication.of_hex (String.uppercase_ascii (Replication.to_hex all)) with
  | Ok back -> Alcotest.(check string) "uppercase accepted" all back
  | Error e -> Alcotest.failf "uppercase rejected: %s" e);
  (match Replication.of_hex "abc" with
  | Ok _ -> Alcotest.fail "odd length accepted"
  | Error _ -> ());
  match Replication.of_hex "zz" with
  | Ok _ -> Alcotest.fail "non-hex digit accepted"
  | Error _ -> ()

let test_hex_qcheck =
  QCheck.Test.make ~name:"hex codec round-trips arbitrary bytes" ~count:200
    QCheck.(string_gen_of_size (QCheck.Gen.int_range 0 80) QCheck.Gen.char)
    (fun s ->
      match Replication.of_hex (Replication.to_hex s) with
      | Ok back -> back = s
      | Error _ -> false)

(* --- Source: chunked fetch ------------------------------------------- *)

let field name fields =
  match List.assoc_opt name fields with
  | Some v -> v
  | None -> Alcotest.failf "reply lacks %S" name

let num_field name fields =
  match Jsonl.to_num (field name fields) with
  | Some n -> int_of_float n
  | None -> Alcotest.failf "field %S is not a number" name

let data_field fields =
  match Jsonl.to_str (field "data" fields) with
  | Some h -> (
    match Replication.of_hex h with
    | Ok s -> s
    | Error e -> Alcotest.failf "undecodable data field: %s" e)
  | None -> Alcotest.fail "field \"data\" is not a string"

(* Reassemble a whole file through chunked fetches, checking every
   chunk's CRC, exactly as the follower does. *)
let fetch_all src ~what ~epoch =
  let buf = Buffer.create 256 in
  let rec go offset =
    match Replication.Source.fetch src ~what ~offset ~len:7 ~epoch with
    | Error d -> Alcotest.failf "fetch failed: %s" d.Diag.message
    | Ok fields ->
      let data = data_field fields in
      Alcotest.(check int)
        "chunk crc protects decoded bytes" (Crc32.digest data)
        (num_field "crc" fields);
      Buffer.add_string buf data;
      let total = num_field "total" fields in
      if data = "" || offset + String.length data >= total then
        (Buffer.contents buf, num_field "epoch" fields)
      else go (offset + String.length data)
  in
  go 0

let test_source_fetch_reassembly () =
  let path = tmp_store () in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  let image, journal = write_primary path in
  let src =
    Replication.Source.create ~metrics:(Metrics.create ())
      ~store_path:(Some path)
  in
  let shipped, epoch = fetch_all src ~what:`Snapshot ~epoch:0 in
  Alcotest.(check string) "snapshot ships byte-identically" image shipped;
  Alcotest.(check int) "epoch is the image CRC" (Crc32.digest image) epoch;
  let shipped_j, _ = fetch_all src ~what:`Journal ~epoch in
  Alcotest.(check string) "journal ships byte-identically" journal shipped_j;
  Alcotest.(check int) "hwm is the journal length"
    (String.length journal)
    (Replication.Source.hwm src)

let test_source_stale_epoch_restart () =
  let path = tmp_store () in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  let image, _ = write_primary path in
  let src =
    Replication.Source.create ~metrics:(Metrics.create ())
      ~store_path:(Some path)
  in
  let stale = Crc32.digest image + 1 in
  match
    Replication.Source.fetch src ~what:`Snapshot ~offset:0 ~len:64
      ~epoch:stale
  with
  | Error d -> Alcotest.failf "stale epoch errored: %s" d.Diag.message
  | Ok fields ->
    Alcotest.(check (option bool))
      "restart:true" (Some true)
      (Jsonl.to_bool (field "restart" fields));
    Alcotest.(check int) "carries the new epoch" (Crc32.digest image)
      (num_field "epoch" fields)

let test_source_no_store_refuses () =
  let src =
    Replication.Source.create ~metrics:(Metrics.create ()) ~store_path:None
  in
  (match
     Replication.Source.fetch src ~what:`Snapshot ~offset:0 ~len:64 ~epoch:0
   with
  | Ok _ -> Alcotest.fail "store-less fetch accepted"
  | Error d -> Alcotest.(check string) "refusal is E031" "E031" d.Diag.code);
  let fields = Replication.Source.status_fields src in
  Alcotest.(check (option bool))
    "shippable:false" (Some false)
    (Jsonl.to_bool (field "shippable" fields))

(* --- shipped-stream fault injection ---------------------------------- *)

let test_ship_snapshot_truncation_sweep () =
  let src_path = tmp_store () and dst = tmp_store () in
  Fun.protect
    ~finally:(fun () ->
      cleanup src_path;
      cleanup dst)
  @@ fun () ->
  let image, journal = write_primary src_path in
  for len = 0 to String.length image - 1 do
    match
      Store.install_stream ~path:dst ~snapshot:(String.sub image 0 len)
        ~journal
    with
    | Ok () ->
      Alcotest.failf "truncated ship (%d/%d bytes) installed" len
        (String.length image)
    | Error _ -> ()
    | exception e ->
      Alcotest.failf "truncated ship at %d bytes raised %s" len
        (Printexc.to_string e)
  done;
  (* the untampered stream installs and loads to the shipped image *)
  (match Store.install_stream ~path:dst ~snapshot:image ~journal with
  | Error e -> Alcotest.failf "clean ship rejected: %s" e
  | Ok () -> ());
  Alcotest.(check string) "installed snapshot is byte-identical" image
    (read_file dst);
  Alcotest.(check string) "installed journal is byte-identical" journal
    (read_file (Store.journal_path dst));
  match Store.load ~path:dst with
  | Error e ->
    Alcotest.failf "installed store failed to load: %s"
      (Format.asprintf "%a" Store.pp_load_error e)
  | Ok r ->
    Alcotest.(check int) "journal replayed in full"
      (List.length journal_records)
      r.Store.replayed

let test_ship_snapshot_bitflip_sweep () =
  let src_path = tmp_store () and dst = tmp_store () in
  Fun.protect
    ~finally:(fun () ->
      cleanup src_path;
      cleanup dst)
  @@ fun () ->
  let image, _ = write_primary src_path in
  String.iteri
    (fun i c ->
      List.iter
        (fun bit ->
          let b = Bytes.of_string image in
          Bytes.set b i (Char.chr (Char.code c lxor (1 lsl bit)));
          match
            Store.install_stream ~path:dst ~snapshot:(Bytes.to_string b)
              ~journal:""
          with
          | Ok () ->
            Alcotest.failf "bit %d of shipped byte %d installed undetected"
              bit i
          | Error _ -> ()
          | exception e ->
            Alcotest.failf "bit %d of byte %d raised %s" bit i
              (Printexc.to_string e))
        [ 0; 7 ])
    image

let test_ship_journal_truncation_sweep () =
  let src_path = tmp_store () and dst = tmp_store () in
  Fun.protect
    ~finally:(fun () ->
      cleanup src_path;
      cleanup dst)
  @@ fun () ->
  let image, journal = write_primary src_path in
  for len = 0 to String.length journal do
    (match
       Store.install_stream ~path:dst ~snapshot:image
         ~journal:(String.sub journal 0 len)
     with
    | Error e -> Alcotest.failf "ship with %d journal bytes rejected: %s" len e
    | Ok () -> ());
    let r = Journal.read ~path:(Store.journal_path dst) in
    let got = List.map snd r.Journal.records in
    let is_prefix =
      List.length got <= List.length journal_records
      && got
         = List.filteri (fun i _ -> i < List.length got) journal_records
    in
    Alcotest.(check bool)
      (Printf.sprintf "prefix property at %d journal bytes" len)
      true is_prefix;
    Alcotest.(check bool)
      (Printf.sprintf "verify accepts the prefix at %d bytes" len)
      true (no_corruption_diags dst)
  done

let test_ship_journal_bitflip_sweep () =
  let src_path = tmp_store () and dst = tmp_store () in
  Fun.protect
    ~finally:(fun () ->
      cleanup src_path;
      cleanup dst)
  @@ fun () ->
  let image, journal = write_primary src_path in
  String.iteri
    (fun i c ->
      let b = Bytes.of_string journal in
      Bytes.set b i (Char.chr (Char.code c lxor 0x10));
      (match
         Store.install_stream ~path:dst ~snapshot:image
           ~journal:(Bytes.to_string b)
       with
      | Error e -> Alcotest.failf "flip at byte %d rejected install: %s" i e
      | Ok () -> ());
      match Store.load ~path:dst with
      | Error e ->
        Alcotest.failf "flip at journal byte %d broke load: %s" i
          (Format.asprintf "%a" Store.pp_load_error e)
      | Ok r ->
        (* a flip can only truncate the record sequence, never alter it *)
        let replayed = r.Store.replayed in
        Alcotest.(check bool)
          (Printf.sprintf "replayed %d is a prefix after flip at %d" replayed
             i)
          true
          (replayed <= List.length journal_records))
    journal

let test_clean_prefix_qcheck =
  QCheck.Test.make
    ~name:"any clean prefix of a shipped stream installs to a verifiable store"
    ~count:60
    QCheck.(int_bound 10_000)
    (fun seed ->
      let src_path = tmp_store () and dst = tmp_store () in
      Fun.protect
        ~finally:(fun () ->
          cleanup src_path;
          cleanup dst)
      @@ fun () ->
      let image, journal = write_primary src_path in
      let len = seed mod (String.length journal + 1) in
      match
        Store.install_stream ~path:dst ~snapshot:image
          ~journal:(String.sub journal 0 len)
      with
      | Error _ -> false
      | Ok () -> (
        no_corruption_diags dst
        &&
        match Store.load ~path:dst with Ok _ -> true | Error _ -> false))

(* --- client failover ------------------------------------------------- *)

let test_client_endpoint_parsing () =
  let c = Client.create ~addr:" a.sock, b.sock,,host:7401 " () in
  Alcotest.(check (list string))
    "comma list parses trimmed, empties dropped"
    [ "a.sock"; "b.sock"; "host:7401" ]
    (Client.endpoints c);
  Alcotest.(check string) "starts at the first endpoint" "a.sock"
    (Client.current_addr c);
  Alcotest.(check int) "no rotations yet" 0 (Client.rotations c);
  Client.close c;
  let single = Client.create ~addr:"only.sock" () in
  Alcotest.(check (list string)) "single endpoint" [ "only.sock" ]
    (Client.endpoints single);
  Client.close single

let test_client_rotates_on_dead_endpoint () =
  let dir = Filename.temp_file "mdqa_repl_dir" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect ~finally:(fun () -> Unix.rmdir dir) @@ fun () ->
  let a = Filename.concat dir "a.sock"
  and b = Filename.concat dir "b.sock" in
  let policy = Backoff.policy ~base:0.001 ~cap:0.002 ~max_attempts:3 () in
  let c =
    Client.create ~policy
      ~rand:(fun _ -> 0.)
      ~addr:(a ^ "," ^ b)
      ()
  in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (* both endpoints dead (ENOENT): the roundtrip must fail, but only
     after rotating through the list *)
  (match Client.roundtrip c "{\"kind\":\"ping\"}" with
  | Ok _ -> Alcotest.fail "roundtrip to two dead endpoints succeeded"
  | Error _ -> ());
  Alcotest.(check bool) "rotated at least once" true (Client.rotations c >= 1)

let parse_reply_exn line =
  match Sproto.parse_reply line with
  | Ok r -> r
  | Error e -> Alcotest.failf "unparseable reply: %s" e

let test_should_retry_reply () =
  let overload =
    parse_reply_exn
      (Sproto.degraded_reply ~code:"W047" ~reason:"overload" ~answers:None
         ~message:"queue full" ())
  in
  let workers_down =
    parse_reply_exn
      (Sproto.degraded_reply ~code:"H054" ~reason:"workers" ~answers:None
         ~message:"pool below min-ready" ())
  in
  let crashed =
    parse_reply_exn
      (Sproto.error_reply
         (Diag.make Diag.Error ~code:"E029" "worker died"))
  in
  Alcotest.(check bool) "overload shed retried" true
    (Client.should_retry_reply ~idempotent:false overload <> None);
  Alcotest.(check bool) "H054 never retried (idempotent)" true
    (Client.should_retry_reply ~idempotent:true workers_down = None);
  Alcotest.(check bool) "H054 never retried (non-idempotent)" true
    (Client.should_retry_reply ~idempotent:false workers_down = None);
  Alcotest.(check bool) "E029 retried when idempotent" true
    (Client.should_retry_reply ~idempotent:true crashed <> None);
  Alcotest.(check bool) "E029 not retried otherwise" true
    (Client.should_retry_reply ~idempotent:false crashed = None)

(* --- follower -------------------------------------------------------- *)

let test_follower_unreachable_is_e031 () =
  let path = tmp_store () in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  let policy =
    Backoff.policy ~base:0.001 ~cap:0.002 ~max_attempts:1 ~budget:0.01 ()
  in
  let f =
    Replication.Follower.create ~policy
      ~rand:(fun _ -> 0.)
      ~primary:(path ^ ".nosuch.sock") ~store_path:path
      ~metrics:(Metrics.create ()) ()
  in
  Fun.protect ~finally:(fun () -> Replication.Follower.close f) @@ fun () ->
  match Replication.Follower.initial_sync f with
  | Ok () -> Alcotest.fail "sync against a dead primary succeeded"
  | Error d ->
    Alcotest.(check string) "unreachable primary is E031" "E031" d.Diag.code

let test_follower_promoted_ticks_idle () =
  let path = tmp_store () in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  let f =
    Replication.Follower.create ~primary:"/nonexistent.sock" ~store_path:path
      ~metrics:(Metrics.create ()) ()
  in
  Fun.protect ~finally:(fun () -> Replication.Follower.close f) @@ fun () ->
  Replication.Follower.mark_promoted f;
  Replication.Follower.mark_promoted f;
  Alcotest.(check bool) "promoted" true (Replication.Follower.promoted f);
  match
    Replication.Follower.tick f
      ~apply:(fun _ -> Alcotest.fail "promoted follower applied records")
      ~resync:(fun _ -> Alcotest.fail "promoted follower resynced")
  with
  | `Idle -> ()
  | `Applied _ | `Lost -> Alcotest.fail "promoted follower did not idle"

(* --- diag registry --------------------------------------------------- *)

let test_replication_codes_registered () =
  List.iter
    (fun (code, mnemonic) ->
      Alcotest.(check (option string))
        (code ^ " registered") (Some mnemonic) (Diag.describe code);
      Alcotest.(check bool)
        (code ^ " in the code table") true
        (List.mem_assoc code Diag.codes))
    [ ("E030", "replication-divergence"); ("E031", "replication-refused");
      ("W050", "stale-read"); ("H055", "promoted");
      ("E032", "unrepairable-store"); ("W051", "salvaged-from-generation");
      ("W052", "journal-records-dropped"); ("H056", "quarantined-file") ]

let suites =
  [ ( "replication.codec",
      [ Alcotest.test_case "hex round-trip and rejection" `Quick
          test_hex_roundtrip;
        QCheck_alcotest.to_alcotest test_hex_qcheck ] );
    ( "replication.source",
      [ Alcotest.test_case "chunked fetch reassembles byte-identically"
          `Quick test_source_fetch_reassembly;
        Alcotest.test_case "stale epoch answers restart" `Quick
          test_source_stale_epoch_restart;
        Alcotest.test_case "store-less source refuses (E031)" `Quick
          test_source_no_store_refuses ] );
    ( "replication.stream",
      [ Alcotest.test_case "shipped snapshot truncation sweep" `Quick
          test_ship_snapshot_truncation_sweep;
        Alcotest.test_case "shipped snapshot bit-flip sweep" `Quick
          test_ship_snapshot_bitflip_sweep;
        Alcotest.test_case "shipped journal truncation sweep" `Quick
          test_ship_journal_truncation_sweep;
        Alcotest.test_case "shipped journal bit-flip sweep" `Quick
          test_ship_journal_bitflip_sweep;
        QCheck_alcotest.to_alcotest test_clean_prefix_qcheck ] );
    ( "replication.failover",
      [ Alcotest.test_case "endpoint list parsing" `Quick
          test_client_endpoint_parsing;
        Alcotest.test_case "rotation on dead endpoints" `Quick
          test_client_rotates_on_dead_endpoint;
        Alcotest.test_case "reply retry classification" `Quick
          test_should_retry_reply ] );
    ( "replication.follower",
      [ Alcotest.test_case "unreachable primary is E031" `Quick
          test_follower_unreachable_is_e031;
        Alcotest.test_case "promoted follower idles" `Quick
          test_follower_promoted_ticks_idle ] );
    ( "replication.diag",
      [ Alcotest.test_case "codes registered" `Quick
          test_replication_codes_registered ] ) ]
