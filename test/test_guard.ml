(* Fault-injection tests for the unified resource guard.

   Every exhaustion path — deadline, memory watermark, cancellation,
   step / null / row / CQ / repair-branch budgets — is triggered
   deterministically (injected clock and heap sampler, [~check_every:1])
   and each public entry point must return a well-formed partial result
   naming the exhausted resource, never raise or hang. *)

open Mdqa_datalog
module R = Mdqa_relational
module Context = Mdqa_context.Context
module Repair = Mdqa_context.Repair
module Hospital = Mdqa_hospital.Hospital

let v = Term.var
let atom p args = Atom.make p args
let tgd ?name body head = Tgd.make ?name ~body ~head ()

let instance_of bindings =
  let inst = R.Instance.create () in
  List.iter
    (fun (name, arity, rows) ->
      ignore
        (R.Instance.declare inst
           (R.Rel_schema.of_names name (List.init arity (Printf.sprintf "c%d"))));
      List.iter
        (fun row ->
          ignore
            (R.Instance.add_tuple inst name
               (R.Tuple.of_list (List.map R.Value.sym row))))
        rows)
    bindings;
  inst

(* r(X,Y) -> ∃Z r(Y,Z): diverges without a budget *)
let divergent_program () =
  Program.make
    ~tgds:[ tgd [ atom "r" [ v "X"; v "Y" ] ] [ atom "r" [ v "Y"; v "Z" ] ] ]
    ()

let divergent_instance () = instance_of [ ("r", 2, [ [ "a"; "b" ] ]) ]

let resource_of_chase (r : Chase.result) =
  match r.Chase.outcome with
  | Chase.Out_of_budget e -> Some e.Guard.resource
  | _ -> None

let check_resource what expected got =
  Alcotest.(check string)
    what
    (Guard.resource_name expected)
    (match got with Some r -> Guard.resource_name r | None -> "(none)")

(* a well-formed partial chase result: the extensional seed is still
   there and the instance supports further (unguarded) evaluation *)
let check_partial_instance (r : Chase.result) =
  Alcotest.(check bool) "seed fact survives in the partial instance" true
    (Eval.exists r.Chase.instance
       [ atom "r" [ Term.sym "a"; Term.sym "b" ] ]);
  Alcotest.(check bool) "partial instance evaluates cleanly" true
    (List.length (Eval.answers r.Chase.instance [ atom "r" [ v "X"; v "Y" ] ])
    >= 1)

(* --- deadline ------------------------------------------------------- *)

let test_deadline_mid_chase () =
  (* a fake clock that advances 0.1s per observation: the 1s deadline
     expires after a handful of checks, mid-chase *)
  let t = ref 0. in
  let clock () =
    t := !t +. 0.1;
    !t
  in
  let guard = Guard.create ~timeout:1.0 ~clock ~check_every:1 () in
  let r = Chase.run ~guard (divergent_program ()) (divergent_instance ()) in
  check_resource "deadline named" Guard.Deadline (resource_of_chase r);
  check_partial_instance r;
  (match r.Chase.outcome with
   | Chase.Out_of_budget e ->
     Alcotest.(check bool) "used >= limit" true (e.Guard.used >= e.Guard.limit)
   | _ -> Alcotest.fail "expected Out_of_budget")

(* --- memory watermark ------------------------------------------------ *)

let test_memory_watermark () =
  (* a heap sampler that reports growth past the watermark after a few
     samples *)
  let samples = ref 0 in
  let heap_sampler () =
    incr samples;
    if !samples > 3 then 4096. else 1.
  in
  let guard = Guard.create ~max_memory_mb:512. ~heap_sampler ~check_every:1 () in
  let r = Chase.run ~guard (divergent_program ()) (divergent_instance ()) in
  check_resource "memory named" Guard.Memory (resource_of_chase r);
  check_partial_instance r

(* --- cancellation ---------------------------------------------------- *)

let test_cancellation () =
  let guard = Guard.create ~check_every:1 () in
  Guard.cancel guard;
  Alcotest.(check bool) "is_cancelled" true (Guard.is_cancelled guard);
  let r = Chase.run ~guard (divergent_program ()) (divergent_instance ()) in
  check_resource "cancellation named" Guard.Cancelled (resource_of_chase r);
  check_partial_instance r

(* --- step / null budgets --------------------------------------------- *)

let test_step_budget () =
  let guard = Guard.create ~max_steps:5 () in
  let r = Chase.run ~guard (divergent_program ()) (divergent_instance ()) in
  check_resource "steps named" Guard.Steps (resource_of_chase r);
  check_partial_instance r

let test_null_budget () =
  let guard = Guard.create ~max_nulls:5 () in
  let r = Chase.run ~guard (divergent_program ()) (divergent_instance ()) in
  check_resource "nulls named" Guard.Nulls (resource_of_chase r);
  check_partial_instance r;
  Alcotest.(check bool) "consumption records the nulls" true
    ((Guard.consumption guard).Guard.nulls >= 5)

(* --- eval row cap ----------------------------------------------------- *)

let test_eval_row_cap () =
  (* 6x6 cross join = 36 rows; cap at 4 *)
  let names = [ "a"; "b"; "c"; "d"; "e"; "f" ] in
  let inst = instance_of [ ("p", 1, List.map (fun x -> [ x ]) names) ] in
  let guard = Guard.create ~max_rows:4 ~check_every:1 () in
  match
    Eval.answers_guarded ~guard inst [ atom "p" [ v "X" ]; atom "p" [ v "Y" ] ]
  with
  | Guard.Complete _ -> Alcotest.fail "expected a row-cap degradation"
  | Guard.Degraded (partial, e) ->
    check_resource "rows named" Guard.Rows (Some e.Guard.resource);
    Alcotest.(check bool) "partial rows within one of the cap" true
      (List.length partial >= 4 && List.length partial <= 5);
    (* every partial row is a genuine match *)
    List.iter
      (fun s ->
        Alcotest.(check bool) "match is well-formed" true
          (match Subst.walk s (v "X") with
           | Term.Const c -> R.Value.is_constant c
           | _ -> false))
      partial

(* --- rewrite CQ cap --------------------------------------------------- *)

let test_rewrite_cq_cap () =
  (* q <-> r cycle: unfolding cycles until the CQ budget trips *)
  let p =
    Program.make
      ~tgds:
        [ tgd [ atom "p0" [ v "X" ] ] [ atom "q" [ v "X" ] ];
          tgd [ atom "q" [ v "X" ] ] [ atom "r" [ v "X" ] ];
          tgd [ atom "r" [ v "X" ] ] [ atom "q" [ v "X" ] ] ]
      ()
  in
  let q = Query.make ~head:[ v "X" ] [ atom "q" [ v "X" ] ] in
  let guard = Guard.create ~max_cqs:1 () in
  match Rewrite.rewrite ~guard p q with
  | Guard.Complete _ -> Alcotest.fail "expected a CQ-cap degradation"
  | Guard.Degraded (rw, e) ->
    check_resource "cqs named" Guard.Cqs (Some e.Guard.resource);
    Alcotest.(check bool) "partial UCQ is non-empty" true (rw.Rewrite.ucq <> []);
    (* every partial disjunct is still evaluable *)
    let inst = instance_of [ ("p0", 1, [ [ "a" ] ]); ("q", 1, []); ("r", 1, []) ] in
    List.iter
      (fun cq -> ignore (Query.certain inst cq))
      rw.Rewrite.ucq

(* --- repair branch budget ---------------------------------------------- *)

let test_repair_branch_budget () =
  let d x = { Repair.relation = "p"; tuple = R.Tuple.of_list [ R.Value.sym x ] } in
  (* many independent violations, two choices each: 2^n hitting sets *)
  let witnesses =
    List.init 8 (fun i ->
        { Repair.constraint_name = Printf.sprintf "c%d" i;
          deletions = [ d (Printf.sprintf "x%d" i); d (Printf.sprintf "y%d" i) ] })
  in
  let guard = Guard.create ~max_repair_branches:10 () in
  match Repair.repairs ~guard witnesses with
  | Guard.Complete _ -> Alcotest.fail "expected a branch-budget degradation"
  | Guard.Degraded (rs, e) ->
    check_resource "repair branches named" Guard.Repair_branches
      (Some e.Guard.resource);
    (* whatever was found is still a set of valid (complete) repairs *)
    List.iter
      (fun r ->
        Alcotest.(check bool) "partial repair hits every witness" true
          (List.for_all
             (fun w ->
               List.exists
                 (fun del -> List.mem del w.Repair.deletions)
                 r)
             witnesses))
      rs

(* --- Query end-to-end degradation -------------------------------------- *)

let test_query_degraded_partial_answers () =
  (* a terminating copy program, but the step budget stops the chase
     after a few of the 20 facts are copied *)
  let p =
    Program.make
      ~tgds:[ tgd [ atom "e" [ v "X" ] ] [ atom "t" [ v "X" ] ] ]
      ()
  in
  let inst =
    instance_of
      [ ("e", 1, List.init 20 (fun i -> [ Printf.sprintf "a%d" i ]));
        ("t", 1, []) ]
  in
  let q = Query.make ~head:[ v "X" ] [ atom "t" [ v "X" ] ] in
  let guard = Guard.create ~max_steps:5 () in
  match Query.certain_answers ~guard p inst q with
  | Query.Ok _ -> Alcotest.fail "expected degradation"
  | Query.Inconsistent _ -> Alcotest.fail "unexpected inconsistency"
  | Query.Degraded { partial; exhaustion; stats } ->
    check_resource "steps named" Guard.Steps (Some exhaustion.Guard.resource);
    Alcotest.(check bool) "some but not all answers" true
      (partial <> [] && List.length partial < 20);
    Alcotest.(check bool) "stats are populated" true (stats.Chase.tgd_fires > 0);
    Alcotest.(check bool) "partials are sound (all copied from e)" true
      (List.for_all
         (fun t ->
           Eval.holds_fact inst
             (Atom.make "e"
                (List.map (fun x -> Term.Const x) (R.Tuple.to_list t))))
         partial)

(* --- context assessment degradation ------------------------------------- *)

let test_context_degraded_assessment () =
  let ctx = Hospital.context () in
  let guard = Guard.create ~max_steps:8 () in
  let a = Context.assess ~guard ctx ~source:(Hospital.source ()) in
  (match Context.degradation a with
   | None -> Alcotest.fail "expected a degraded assessment"
   | Some e ->
     check_resource "steps named" Guard.Steps (Some e.Guard.resource));
  (* strict read refuses the partial chase; ~partial exposes it *)
  Alcotest.(check bool) "strict quality version withheld" true
    (Context.quality_version a "measurements" = None);
  (match Context.quality_version ~partial:true a "measurements" with
   | None -> Alcotest.fail "partial quality version missing"
   | Some q ->
     (* an under-approximation of the paper's Table II *)
     Alcotest.(check bool) "partial ⊆ Table II" true
       (R.Tuple.Set.subset (R.Relation.to_set q)
          (R.Relation.to_set Hospital.expected_measurements_q)));
  let report = Mdqa_context.Assessment.report ~partial:true a in
  Alcotest.(check bool) "partial report covers measurements" true
    (List.exists
       (fun (rr : Mdqa_context.Assessment.relation_report) ->
         rr.Mdqa_context.Assessment.relation = "measurements")
       report)

let test_context_unguarded_still_complete () =
  (* regression: without any guard the pipeline still saturates and
     reproduces Table II *)
  let a = Context.assess (Hospital.context ()) ~source:(Hospital.source ()) in
  Alcotest.(check bool) "no degradation" true (Context.degradation a = None);
  match Context.quality_version a "measurements" with
  | Some q ->
    Alcotest.(check bool) "Table II" true
      (R.Tuple.Set.equal (R.Relation.to_set q)
         (R.Relation.to_set Hospital.expected_measurements_q))
  | None -> Alcotest.fail "quality version missing"

(* --- cautious answers under a global guard ------------------------------ *)

let test_cautious_answers_degraded () =
  let ctx = Hospital.context ~raw_patient_ward:true () in
  let guard = Guard.create ~max_steps:8 () in
  match
    Repair.cautious_answers ~guard ctx ~source:(Hospital.source ())
      Hospital.doctor_query
  with
  | Error e -> Alcotest.fail e
  | Ok (Guard.Complete _) -> Alcotest.fail "expected degradation"
  | Ok (Guard.Degraded (answers, e)) ->
    check_resource "steps named" Guard.Steps (Some e.Guard.resource);
    (* the intersection over partial chases under-approximates the
       complete cautious answers (row 1 of Table I) *)
    Alcotest.(check bool) "partial ⊆ complete cautious answers" true
      (List.for_all
         (fun t ->
           R.Tuple.equal t
             (R.Tuple.of_list
                [ R.Value.sym "Sep/5-12:10"; R.Value.sym "Tom Waits";
                  R.Value.real 38.2 ]))
         answers)

(* --- guard bookkeeping --------------------------------------------------- *)

let test_guard_consumption_and_outcome_helpers () =
  let guard = Guard.create ~max_steps:3 () in
  Guard.count_step guard;
  Guard.count_step guard;
  let c = Guard.consumption guard in
  Alcotest.(check int) "steps counted" 2 c.Guard.steps;
  Alcotest.(check bool) "not tripped yet" true (Guard.exhaustion guard = None);
  Alcotest.(check int) "value of Complete" 7 (Guard.value (Guard.Complete 7));
  let e = { Guard.resource = Guard.Steps; limit = 3.; used = 4. } in
  Alcotest.(check int) "value of Degraded" 7
    (Guard.value (Guard.Degraded (7, e)));
  Alcotest.(check bool) "degraded detected" true
    (Guard.degraded (Guard.Degraded (7, e)) = Some e);
  Alcotest.(check bool) "map preserves exhaustion" true
    (match Guard.map string_of_int (Guard.Degraded (7, e)) with
     | Guard.Degraded ("7", e') -> e' = e
     | _ -> false)

let test_guard_trip_is_sticky () =
  (* once tripped, every later count re-raises with the same report *)
  let guard = Guard.create ~max_steps:1 () in
  Guard.count_step guard;
  (match Guard.count_step guard with
   | () -> Alcotest.fail "expected a trip"
   | exception Guard.Exhausted e ->
     Alcotest.(check bool) "steps" true (e.Guard.resource = Guard.Steps));
  match Guard.count_null guard with
  | () -> Alcotest.fail "expected the trip to stick"
  | exception Guard.Exhausted e ->
    Alcotest.(check bool) "same resource re-reported" true
      (e.Guard.resource = Guard.Steps)

let case name f = Alcotest.test_case name `Quick f

let suites =
  [ ( "guard.fault-injection",
      [ case "deadline mid-chase" test_deadline_mid_chase;
        case "memory watermark" test_memory_watermark;
        case "cancellation" test_cancellation;
        case "step budget" test_step_budget;
        case "null budget" test_null_budget;
        case "eval row cap" test_eval_row_cap;
        case "rewrite CQ cap" test_rewrite_cq_cap;
        case "repair branch budget" test_repair_branch_budget ] );
    ( "guard.degradation",
      [ case "query: partial answers + stats" test_query_degraded_partial_answers;
        case "context: partial assessment" test_context_degraded_assessment;
        case "context: unguarded still complete"
          test_context_unguarded_still_complete;
        case "cautious answers under a global guard"
          test_cautious_answers_degraded;
        case "consumption + outcome helpers"
          test_guard_consumption_and_outcome_helpers;
        case "trip is sticky" test_guard_trip_is_sticky ] ) ]
