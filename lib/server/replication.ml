module Diag = Mdqa_datalog.Diag
module Snapshot = Mdqa_store.Snapshot
module Journal = Mdqa_store.Journal
module Store = Mdqa_store.Store
module Crc32 = Mdqa_store.Crc32
module Metrics = Mdqa_obs.Metrics
module Failpoint = Mdqa_obs.Failpoint
module Logger = Mdqa_obs.Logger

(* Pull-based primary/standby replication over the ordinary JSONL
   protocol.  The standby drives everything: it fetches the primary's
   snapshot image in resumable CRC-checked hex chunks, installs it
   byte-identically with the local crash-recovery machinery, then
   heartbeats [repl.status] on an interval — each heartbeat both
   reports the high-water mark it has durably applied and learns
   whether the primary's journal grew (fetch + append + replay) or its
   snapshot changed epoch (full resync).  Pull keeps the primary's
   single-threaded event loop untouched: a fetch is just a request. *)

(* --- hex framing ------------------------------------------------------ *)

(* Binary store bytes ride inside JSON strings as lowercase hex.  2x
   the bytes on the wire, zero escaping hazards, and the chunk CRC is
   computed over the *decoded* bytes so corruption in either encoding
   or transport is caught before anything touches the local store. *)

let to_hex s =
  let b = Buffer.create (String.length s * 2) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then Error "odd-length hex"
  else
    let digit i =
      match s.[i] with
      | '0' .. '9' as c -> Ok (Char.code c - Char.code '0')
      | 'a' .. 'f' as c -> Ok (Char.code c - Char.code 'a' + 10)
      | 'A' .. 'F' as c -> Ok (Char.code c - Char.code 'A' + 10)
      | c -> Error (Printf.sprintf "bad hex digit %C at %d" c i)
    in
    let b = Bytes.create (n / 2) in
    let rec go i =
      if i >= n then Ok (Bytes.to_string b)
      else
        match (digit i, digit (i + 1)) with
        | Ok hi, Ok lo ->
          Bytes.set b (i / 2) (Char.chr ((hi lsl 4) lor lo));
          go (i + 2)
        | Error e, _ | _, Error e -> Error e
    in
    go 0

let default_chunk = 1 lsl 16

(* --- the primary side ------------------------------------------------- *)

module Source = struct
  type cache = {
    epoch : int;  (** CRC-32 of the whole image: the ship identity *)
    image : string;
    sections : (char * int) list;
    mtime : float;
    size : int;
  }

  type t = {
    store_path : string option;
    metrics : Metrics.t;
    mutable cache : cache option;
    mutable acked : int;  (** last standby-reported applied hwm; -1 none *)
    mutable last_heartbeat : float;  (** wall clock of the last repl.status *)
  }

  let create ~metrics ~store_path =
    { store_path; metrics; cache = None; acked = -1; last_heartbeat = nan }

  let refused message = Error (Diag.make Diag.Error ~code:"E031" message)

  (* (Re)load the snapshot image when the file changed underneath the
     cache.  mtime+size is advisory only — a same-second rewrite of the
     same fixpoint produces byte-identical images, so a stale hit is
     content-identical; anything else changes the size. *)
  let refresh t =
    match t.store_path with
    | None -> refused "this server has no --store: nothing to replicate"
    | Some path -> (
      let stat =
        match Unix.stat path with
        | s -> Some (s.Unix.st_mtime, s.Unix.st_size)
        | exception Unix.Unix_error _ -> None
      in
      match (t.cache, stat) with
      | Some c, Some (mtime, size) when c.mtime = mtime && c.size = size ->
        Ok c
      | _, _ -> (
        match Store.read_image ~path with
        | Error e -> refused (Printf.sprintf "cannot ship snapshot: %s" e)
        | Ok image -> (
          match Snapshot.section_crcs image with
          | Error c ->
            refused
              (Format.asprintf "local snapshot unreadable: %a"
                 Snapshot.pp_corruption c)
          | Ok sections ->
            let mtime, size =
              match stat with
              | Some s -> s
              | None -> (0., String.length image)
            in
            let c =
              { epoch = Crc32.digest image; image; sections; mtime; size }
            in
            t.cache <- Some c;
            Ok c)))

  let hwm t =
    match t.store_path with
    | None -> 0
    | Some path -> (
      match Store.read_journal_slice ~path ~offset:0 ~len:0 with
      | Ok (_, total) -> total
      | Error _ -> 0)

  let record_ack t acked =
    t.acked <- max t.acked acked;
    t.last_heartbeat <- Unix.gettimeofday ();
    Metrics.set
      (Metrics.gauge t.metrics
         ~help:"journal bytes the standby reports durably applied"
         "mdqa_replication_acked_bytes")
      (float_of_int t.acked);
    Metrics.set
      (Metrics.gauge t.metrics
         ~help:"journal bytes the standby still trails the primary by"
         "mdqa_replication_lag_bytes")
      (float_of_int (max 0 (hwm t - t.acked)))

  let status_fields t =
    match refresh t with
    | Error _ ->
      (* still answer: a primary without a shippable store says so *)
      [ ("epoch", Jsonl.Num 0.); ("snapshot_bytes", Jsonl.Num 0.);
        ("hwm", Jsonl.Num 0.); ("shippable", Jsonl.Bool false) ]
    | Ok c ->
      [ ("epoch", Jsonl.Num (float_of_int c.epoch));
        ("snapshot_bytes", Jsonl.Num (float_of_int (String.length c.image)));
        ("hwm", Jsonl.Num (float_of_int (hwm t)));
        ("shippable", Jsonl.Bool true);
        ("sections",
         Jsonl.Obj
           (List.map
              (fun (tag, crc) ->
                (String.make 1 tag, Jsonl.Num (float_of_int crc)))
              c.sections));
        ("acked", Jsonl.Num (float_of_int t.acked)) ]

  let chunk_fields ~what ~offset ~total ~epoch data =
    [ ("what", Jsonl.Str what);
      ("offset", Jsonl.Num (float_of_int offset));
      ("total", Jsonl.Num (float_of_int total));
      ("epoch", Jsonl.Num (float_of_int epoch));
      ("crc", Jsonl.Num (float_of_int (Crc32.digest data)));
      ("data", Jsonl.Str (to_hex data)) ]

  let count_fetch t what n =
    Metrics.inc
      (Metrics.counter t.metrics ~help:"replication chunks served"
         ~labels:[ ("what", what) ]
         "mdqa_replication_fetches_total");
    Metrics.add
      (Metrics.counter t.metrics ~help:"replication payload bytes served"
         ~labels:[ ("what", what) ]
         "mdqa_replication_shipped_bytes_total")
      n

  let fetch t ~what ~offset ~len ~epoch =
    match what with
    | `Snapshot -> (
      Failpoint.hit "repl.ship";
      match refresh t with
      | Error _ as e -> e
      | Ok c ->
        if epoch <> 0 && epoch <> c.epoch then
          (* the image changed since the standby started this ship:
             tell it to restart from offset 0 against the new epoch *)
          Ok
            [ ("what", Jsonl.Str "snapshot");
              ("restart", Jsonl.Bool true);
              ("epoch", Jsonl.Num (float_of_int c.epoch));
              ("total", Jsonl.Num (float_of_int (String.length c.image))) ]
        else begin
          let total = String.length c.image in
          let offset = min offset total in
          let n = min len (total - offset) in
          let data = String.sub c.image offset n in
          count_fetch t "snapshot" n;
          Ok (chunk_fields ~what:"snapshot" ~offset ~total ~epoch:c.epoch data)
        end)
    | `Journal -> (
      Failpoint.hit "repl.frame";
      match t.store_path with
      | None -> refused "this server has no --store: nothing to replicate"
      | Some path -> (
        match Store.read_journal_slice ~path ~offset ~len with
        | Error e -> refused (Printf.sprintf "cannot read journal: %s" e)
        | Ok (data, total) ->
          count_fetch t "journal" (String.length data);
          let epoch =
            match t.cache with Some c -> c.epoch | None -> epoch
          in
          Ok
            (chunk_fields ~what:"journal" ~offset:(min offset total) ~total
               ~epoch data)))
end

(* --- the standby side ------------------------------------------------- *)

module Follower = struct
  type t = {
    primary : string;
    store_path : string;
    client : Client.t;
    metrics : Metrics.t;
    interval : float;
    promote_after : int;  (** consecutive missed heartbeats; 0 = never *)
    chunk : int;
    policy : Backoff.policy;
    rand : float -> float;
    mutable epoch : int;  (** image CRC we are following; 0 = none yet *)
    mutable fetched_bytes : int;  (** raw journal bytes on local disk *)
    mutable applied_bytes : int;  (** valid prefix replayed into the warm instance *)
    mutable applied_records : int;
    mutable hwm : int;  (** the primary's journal length at last heartbeat *)
    mutable misses : int;
    mutable backoff : Backoff.t option;  (** live only while heartbeats miss *)
    mutable next_poll : float;
    mutable last_caught_up : float;  (** monotonic time we last matched hwm *)
    mutable promoted : bool;
    mutable rounds : int;
  }

  let mono () = Mdqa_datalog.Guard.Clock.now ()

  let create ?(policy = Backoff.default_policy) ?(rand = Random.float)
      ?(interval = 1.0) ?(promote_after = 5) ?(chunk = default_chunk)
      ~primary ~store_path ~metrics () =
    { primary;
      store_path;
      client = Client.create ~policy ~rand ~addr:primary ();
      metrics;
      interval;
      promote_after;
      chunk;
      policy;
      rand;
      epoch = 0;
      fetched_bytes = 0;
      applied_bytes = 0;
      applied_records = 0;
      hwm = 0;
      misses = 0;
      backoff = None;
      next_poll = 0.;
      last_caught_up = mono ();
      promoted = false;
      rounds = 0 }

  let primary_addr t = t.primary
  let promoted t = t.promoted
  let close t = Client.close t.client

  let gauge t name help v = Metrics.set (Metrics.gauge t.metrics ~help name) v

  let record_lag t =
    gauge t "mdqa_replication_lag_bytes"
      "journal bytes the standby still trails the primary by"
      (float_of_int (max 0 (t.hwm - t.applied_bytes)));
    gauge t "mdqa_replication_lag_seconds"
      "seconds since the standby last matched the primary's high-water mark"
      (mono () -. t.last_caught_up);
    gauge t "mdqa_replication_applied_bytes"
      "journal bytes durably applied by the standby"
      (float_of_int t.applied_bytes);
    gauge t "mdqa_replication_heartbeat_misses"
      "consecutive missed heartbeats against the primary"
      (float_of_int t.misses)

  let err code fmt = Printf.ksprintf (fun m -> Error (Diag.make Diag.Error ~code m)) fmt

  (* One protocol exchange with the primary.  Any outcome that is not
     a complete reply is a miss: the primary may be dead, restarting,
     draining or itself degraded — the distinction does not matter to
     the follower, only the count does. *)
  let exchange t line =
    match Client.roundtrip t.client line with
    | Ok r when r.Protocol.status = "complete" -> Ok r
    | Ok r ->
      Error
        (Printf.sprintf "primary answered %s%s" r.Protocol.status
           (match r.Protocol.code with Some c -> " " ^ c | None -> ""))
    | Error e -> Error e

  let num_field name json = Option.map int_of_float (Jsonl.num_field name json)

  let heartbeat t =
    let line =
      Jsonl.to_string
        (Jsonl.Obj
           [ ("kind", Jsonl.Str "repl.status");
             ("acked", Jsonl.Num (float_of_int t.applied_bytes)) ])
    in
    match exchange t line with
    | Error _ as e -> e
    | Ok r -> (
      let json = r.Protocol.json in
      match (num_field "epoch" json, num_field "hwm" json) with
      | Some epoch, Some hwm ->
        let role =
          Option.value ~default:"primary" (Jsonl.str_field "role" json)
        in
        let sections =
          match Jsonl.member "sections" json with
          | Some (Jsonl.Obj kvs) ->
            List.filter_map
              (fun (k, v) ->
                match (k, Jsonl.to_num v) with
                | k, Some crc when String.length k = 1 ->
                  Some (k.[0], int_of_float crc)
                | _ -> None)
              kvs
          | _ -> []
        in
        Ok (role, epoch, hwm, sections)
      | _ -> Error "repl.status reply missing epoch/hwm fields")

  (* Fetch one chunk; validates the per-chunk CRC over decoded bytes. *)
  let fetch_chunk t ~what ~offset ~epoch =
    let line =
      Jsonl.to_string
        (Jsonl.Obj
           [ ("kind", Jsonl.Str "repl.fetch");
             ("what", Jsonl.Str what);
             ("offset", Jsonl.Num (float_of_int offset));
             ("len", Jsonl.Num (float_of_int t.chunk));
             ("epoch", Jsonl.Num (float_of_int epoch)) ])
    in
    match exchange t line with
    | Error _ as e -> e
    | Ok r -> (
      let json = r.Protocol.json in
      match Jsonl.member "restart" json with
      | Some (Jsonl.Bool true) -> (
        match num_field "epoch" json with
        | Some e -> Ok (`Restart e)
        | None -> Error "restart reply missing epoch")
      | _ -> (
        match
          (Jsonl.str_field "data" json, num_field "crc" json,
           num_field "total" json, num_field "epoch" json)
        with
        | Some hex, Some crc, Some total, Some epoch -> (
          match of_hex hex with
          | Error e -> Error (Printf.sprintf "undecodable chunk: %s" e)
          | Ok data ->
            if Crc32.digest data <> crc then Error "chunk checksum mismatch"
            else Ok (`Chunk (data, total, epoch)))
        | _ -> Error "repl.fetch reply missing data/crc/total/epoch"))

  (* Pull [offset..total) of snapshot or journal into a buffer,
     resuming chunk by chunk; transient failures retry under the
     follower's own full-jitter policy.  A [`Restart] from the primary
     (epoch changed mid-ship) surfaces to the caller. *)
  let fetch_all t ~what ~epoch ~from =
    let buf = Buffer.create 4096 in
    let bo = ref (Backoff.start t.policy) in
    let rec go offset epoch =
      match fetch_chunk t ~what ~offset ~epoch with
      | Error why -> (
        match Backoff.next !bo ~rand:t.rand with
        | Some d ->
          Fdio.sleepf d;
          go offset epoch
        | None -> Error (Printf.sprintf "fetch %s: %s" what why))
      | Ok (`Restart e) -> Ok (`Restart e)
      | Ok (`Chunk (data, total, epoch)) ->
        bo := Backoff.start t.policy;
        Buffer.add_string buf data;
        let offset = offset + String.length data in
        if offset >= total || data = "" then
          Ok (`Done (Buffer.contents buf, total, epoch))
        else go offset epoch
    in
    go from epoch

  (* --- initial sync --------------------------------------------------- *)

  let local_journal_state t =
    let jr = Journal.read ~path:(Store.journal_path t.store_path) in
    let size =
      match Unix.stat (Store.journal_path t.store_path) with
      | s -> s.Unix.st_size
      | exception Unix.Unix_error _ -> 0
    in
    (jr, size)

  (* Divergence rules, checked before any byte is installed:
     - a primary serving a different *program* section is a different
       ontology, not a stale copy of ours: E030, never follow;
     - a local journal strictly ahead of the primary's high-water mark
       at the same epoch means *we* have state the primary lacks (a
       promoted standby being pointed back at its old primary): E030. *)
  let divergence_check t ~remote_epoch ~remote_hwm ~remote_sections =
    match Store.read_image ~path:t.store_path with
    | Error _ -> Ok `Fresh  (* nothing local: nothing to diverge *)
    | Ok local_image -> (
      match Snapshot.section_crcs local_image with
      | Error _ -> Ok `Fresh  (* local image unreadable: re-ship over it *)
      | Ok local_sections -> (
        let crc tag l = List.assoc_opt tag l in
        match (crc 'P' local_sections, crc 'P' remote_sections) with
        | Some lp, Some rp when lp <> rp ->
          err "E030"
            "program section CRC mismatch (local %d, primary %d): the \
             primary serves a different ontology; refusing to follow"
            lp rp
        | _ ->
          let local_epoch = Crc32.digest local_image in
          let _, local_size = local_journal_state t in
          if local_epoch = remote_epoch && local_size > remote_hwm then
            err "E030"
              "local journal (%d bytes) is ahead of the primary's \
               high-water mark (%d) at the same snapshot epoch: this \
               store has state the primary lacks; refusing to follow"
              local_size remote_hwm
          else if local_epoch = remote_epoch then Ok (`Resume local_size)
          else Ok `Fresh))

  let sync_stream t ~epoch ~hwm:_ =
    match fetch_all t ~what:"snapshot" ~epoch ~from:0 with
    | Error _ as e -> e
    | Ok (`Restart e) -> Ok (`Restart e)
    | Ok (`Done (image, total, epoch)) ->
      if String.length image <> total then
        Error
          (Printf.sprintf "snapshot ship incomplete: %d of %d bytes"
             (String.length image) total)
      else if Crc32.digest image <> epoch then
        Error "shipped snapshot image does not match its epoch CRC"
      else (
        match fetch_all t ~what:"journal" ~epoch ~from:0 with
        | Error _ as e -> e
        | Ok (`Restart e) -> Ok (`Restart e)
        | Ok (`Done (journal, _, _)) -> (
          match
            Store.install_stream ~path:t.store_path ~snapshot:image ~journal
          with
          | Error e -> Error (Printf.sprintf "install failed: %s" e)
          | Ok () -> Ok (`Installed epoch)))

  (* Bring the local store in line with the primary before the service
     warm-starts from it.  Blocking, with bounded retries; resumable
     mid-ship; total failure comes back as a located diagnostic. *)
  let initial_sync t =
    let t0 = mono () in
    let attempts = ref 0 in
    let bo = ref (Backoff.start t.policy) in
    let rec attempt () =
      incr attempts;
      match heartbeat t with
      | Error why -> retry ("primary unreachable: " ^ why)
      | Ok (role, epoch, hwm, sections) ->
        if role <> "primary" then
          retry (Printf.sprintf "replica-of target is a %s, not a primary" role)
        else (
          match divergence_check t ~remote_epoch:epoch ~remote_hwm:hwm
                  ~remote_sections:sections
          with
          | Error _ as e -> e  (* divergence never retries *)
          | Ok (`Resume local_size) ->
            (* same image, journal only behind: no snapshot re-ship *)
            finish ~epoch ~fetched:local_size
          | Ok `Fresh -> (
            match sync_stream t ~epoch ~hwm with
            | Error why -> retry why
            | Ok (`Restart _) -> retry "snapshot epoch changed mid-ship"
            | Ok (`Installed epoch) ->
              let _, size = local_journal_state t in
              finish ~epoch ~fetched:size))
    and retry why =
      match Backoff.next !bo ~rand:t.rand with
      | Some d ->
        Logger.warn
          ~fields:
            [ ("primary", Logger.Str t.primary);
              ("reason", Logger.Str why);
              ("attempt", Logger.Int !attempts) ]
          "replication sync retrying";
        Fdio.sleepf d;
        attempt ()
      | None ->
        err "E031" "cannot sync from %s after %d attempts: %s" t.primary
          !attempts why
    and finish ~epoch ~fetched =
      let jr, _ = local_journal_state t in
      t.epoch <- epoch;
      t.fetched_bytes <- fetched;
      t.applied_bytes <- jr.Journal.valid_bytes;
      t.applied_records <- List.length jr.Journal.records;
      t.hwm <- max t.hwm t.applied_bytes;
      t.last_caught_up <- mono ();
      t.next_poll <- mono () +. t.interval;
      Metrics.observe
        (Metrics.histogram t.metrics
           ~help:"duration of full standby syncs against the primary"
           "mdqa_replication_sync_seconds")
        (mono () -. t0);
      record_lag t;
      Ok ()
    in
    attempt ()

  (* --- steady-state following ----------------------------------------- *)

  let apply_new_records t ~apply =
    let jr, size = local_journal_state t in
    let fresh =
      List.filteri (fun i _ -> i >= t.applied_records) jr.Journal.records
      |> List.map snd
    in
    if fresh <> [] then apply fresh;
    t.fetched_bytes <- size;
    t.applied_bytes <- jr.Journal.valid_bytes;
    t.applied_records <- List.length jr.Journal.records;
    List.length fresh

  let miss t why =
    t.misses <- t.misses + 1;
    Metrics.inc
      (Metrics.counter t.metrics ~help:"heartbeats the primary failed to answer"
         "mdqa_replication_heartbeat_misses_total");
    let bo =
      match t.backoff with
      | Some bo -> bo
      | None ->
        let bo = Backoff.start t.policy in
        t.backoff <- Some bo;
        bo
    in
    let delay =
      match Backoff.next bo ~rand:t.rand with
      | Some d -> d
      | None ->
        (* budget spent: keep probing at the capped interval *)
        t.backoff <- None;
        t.policy.Backoff.cap
    in
    t.next_poll <- mono () +. delay;
    record_lag t;
    Logger.warn
      ~fields:
        [ ("primary", Logger.Str t.primary);
          ("misses", Logger.Int t.misses);
          ("reason", Logger.Str why) ]
      "replication heartbeat missed";
    if t.promote_after > 0 && t.misses >= t.promote_after then `Lost else `Idle

  (* One poll of the primary, due or not ([tick] gates on time).
     [apply] replays fresh journal records into the warm instance;
     [resync] replaces it wholesale after an epoch change. *)
  let poll t ~apply ~resync =
    let t0 = mono () in
    let finish r =
      Metrics.observe
        (Metrics.histogram t.metrics ~help:"standby poll duration"
           "mdqa_replication_poll_seconds")
        (mono () -. t0);
      record_lag t;
      r
    in
    match heartbeat t with
    | Error why -> finish (miss t why)
    | Ok (role, epoch, hwm, _sections) ->
      if role <> "primary" then finish (miss t ("primary became " ^ role))
      else begin
        t.misses <- 0;
        t.backoff <- None;
        t.rounds <- t.rounds + 1;
        Metrics.inc
          (Metrics.counter t.metrics ~help:"completed standby polls"
             "mdqa_replication_rounds_total");
        t.hwm <- hwm;
        t.next_poll <- mono () +. t.interval;
        let result =
          if epoch <> t.epoch || hwm < t.fetched_bytes then begin
            (* new snapshot epoch, or the journal shrank under us
               (compaction): re-ship the whole stream and swap the
               warm instance *)
            match sync_stream t ~epoch ~hwm with
            | Error why -> miss t ("resync failed: " ^ why)
            | Ok (`Restart _) -> miss t "snapshot epoch changed mid-resync"
            | Ok (`Installed epoch') -> (
              match Store.read_image ~path:t.store_path with
              | Error e -> miss t ("installed image unreadable: " ^ e)
              | Ok image -> (
                match Snapshot.of_string image with
                | Error c ->
                  miss t
                    (Format.asprintf "installed image corrupt: %a"
                       Snapshot.pp_corruption c)
                | Ok snap ->
                  resync snap;
                  t.epoch <- epoch';
                  t.applied_records <- 0;
                  t.applied_bytes <- 0;
                  t.fetched_bytes <- 0;
                  let n = apply_new_records t ~apply in
                  `Applied n))
          end
          else if hwm > t.fetched_bytes then begin
            match fetch_all t ~what:"journal" ~epoch ~from:t.fetched_bytes with
            | Error why -> miss t ("journal fetch failed: " ^ why)
            | Ok (`Restart _) -> miss t "snapshot epoch changed mid-fetch"
            | Ok (`Done (bytes, _, _)) -> (
              (* [fetch_all ~from] returns only the new suffix *)
              match Store.append_journal_bytes ~path:t.store_path bytes with
              | Error e -> miss t ("journal append failed: " ^ e)
              | Ok () ->
                let n = apply_new_records t ~apply in
                `Applied n)
          end
          else `Idle
        in
        if t.applied_bytes >= t.hwm then t.last_caught_up <- mono ();
        finish result
      end

  let tick t ~apply ~resync =
    if t.promoted || mono () < t.next_poll then `Idle
    else poll t ~apply ~resync

  let mark_promoted t =
    if not t.promoted then begin
      t.promoted <- true;
      Metrics.inc
        (Metrics.counter t.metrics ~help:"standby promotions to primary"
           "mdqa_replication_promotions_total")
    end

  let lag_fields t =
    [ ("lag_bytes", Jsonl.Num (float_of_int (max 0 (t.hwm - t.applied_bytes))));
      ("lag_s", Jsonl.Num (mono () -. t.last_caught_up));
      ("primary", Jsonl.Str t.primary) ]

  let status_fields t =
    [ ("primary", Jsonl.Str t.primary);
      ("epoch", Jsonl.Num (float_of_int t.epoch));
      ("applied_bytes", Jsonl.Num (float_of_int t.applied_bytes));
      ("applied_records", Jsonl.Num (float_of_int t.applied_records));
      ("hwm", Jsonl.Num (float_of_int t.hwm));
      ("misses", Jsonl.Num (float_of_int t.misses));
      ("rounds", Jsonl.Num (float_of_int t.rounds));
      ("promoted", Jsonl.Bool t.promoted) ]
end
