module Diag = Mdqa_datalog.Diag
module Guard = Mdqa_datalog.Guard
module Failpoint = Mdqa_obs.Failpoint

(* --- frame codec ------------------------------------------------------- *)

(* u32 LE length prefix + payload, over a socketpair.  The parent end
   is nonblocking (it lives in the select loop); the child end blocks —
   a worker with nothing to do costs nothing. *)
module Frame = struct
  let max_payload = 1 lsl 26 (* 64 MiB: way past any reply we build *)

  let encode payload =
    let n = String.length payload in
    if n > max_payload then invalid_arg "Frame.encode: payload too large";
    let b = Bytes.create (4 + n) in
    Bytes.set_int32_le b 0 (Int32.of_int n);
    Bytes.blit_string payload 0 b 4 n;
    Bytes.to_string b

  type reader = { buf : Buffer.t }

  let reader () = { buf = Buffer.create 256 }

  let decoded_length s =
    let v = Int32.to_int (Bytes.get_int32_le (Bytes.of_string s) 0) in
    if v < 0 || v > max_payload then None else Some v

  (* Pull every complete frame currently buffered; a partial frame
     stays put for the next readable event. *)
  let extract r =
    let rec go acc =
      let s = Buffer.contents r.buf in
      if String.length s < 4 then List.rev acc
      else
        match decoded_length s with
        | None -> raise Exit (* corrupt stream; caller treats as error *)
        | Some n ->
          if String.length s < 4 + n then List.rev acc
          else begin
            let payload = String.sub s 4 n in
            Buffer.clear r.buf;
            Buffer.add_substring r.buf s (4 + n) (String.length s - 4 - n);
            go (payload :: acc)
          end
    in
    go []

  let poll r fd =
    match Fdio.read_available fd ~max:65536 with
    | `Nothing -> `Nothing
    | `Eof -> `Eof
    | `Error e -> `Error e
    | `Data chunk -> (
      Buffer.add_string r.buf chunk;
      match extract r with
      | [] -> `Nothing
      | frames -> `Frames frames
      | exception Exit -> `Error "corrupt frame stream")

  (* Child side: block for one whole frame. *)
  let read_blocking fd =
    match Fdio.read_exact fd 4 with
    | Error `Eof -> None
    | Error (`Torn _ | `Unix _) -> None
    | Ok header -> (
      match decoded_length header with
      | None -> None
      | Some n -> (
        match Fdio.read_exact fd n with
        | Ok payload -> Some payload
        | Error _ -> None))
end

(* --- the one query path ------------------------------------------------ *)

type defaults = { timeout : float option; max_steps : int option }

(* Factored out of the server's inline branch so a reply is
   byte-identical whether it was computed in-process (workers = 0) or
   in a forked worker.  [stale] is the standby read path: complete
   answers get a W050 stale-read tag — the data is a replica of the
   primary's, correct as of the last applied journal frame but
   possibly behind it. *)
let answer_query ~svc ~defaults ?(stale = false) req =
  match req with
  | Protocol.Query { id; query; engine; timeout; max_steps } -> (
    let timeout =
      match timeout with Some _ -> timeout | None -> defaults.timeout
    in
    let max_steps =
      match max_steps with Some _ -> max_steps | None -> defaults.max_steps
    in
    match Service.query svc ?timeout ?max_steps ~engine query with
    | Service.Answers a ->
      let extra =
        if stale then
          [ ("stale", Jsonl.Bool true);
            ("warning", Jsonl.Str "W050");
            ("mnemonic", Jsonl.Str "stale-read") ]
        else []
      in
      ( Protocol.complete_reply ?id ~extra ~answers:(Some a) (),
        "complete",
        if stale then Some "W050" else None )
    | Service.Partial (a, e) ->
      ( Protocol.degraded_reply ?id
          ~reason:(Protocol.exhaustion_reason e)
          ~answers:(Some a)
          ~message:(Format.asprintf "%a" Guard.pp_exhaustion e)
          (),
        "degraded",
        None )
    | Service.Bad_query d ->
      (Protocol.error_reply ?id d, "error", Some d.Diag.code)
    | Service.Inconsistent msg ->
      ( Protocol.obj_reply ?id ~status:"error"
          [ ("inconsistent", Jsonl.Bool true); ("message", Jsonl.Str msg) ],
        "error",
        None ))
  | other ->
    (* the dispatcher never sends these; answer rather than die *)
    let id = Protocol.request_id other in
    ( Protocol.error_reply ?id
        (Diag.make Diag.Error ~code:"E024"
           (Printf.sprintf "worker cannot answer %S requests"
              (Protocol.request_kind other))),
      "error",
      Some "E024" )

(* Same crash-isolation contract as the inline path: one poisoned
   request costs one E027 reply, never the worker. *)
let answer_protected ~svc ~defaults req =
  match answer_query ~svc ~defaults req with
  | r -> r
  | exception e ->
    let id = Protocol.request_id req in
    ( Protocol.error_reply ?id
        (Diag.make Diag.Error ~code:"E027"
           (Printf.sprintf "request crashed: %s" (Printexc.to_string e))),
      "error",
      Some "E027" )

(* --- recycling --------------------------------------------------------- *)

type recycle = { max_requests : int; max_heap_mb : float }

let heap_mb () =
  let words = (Gc.quick_stat ()).Gc.heap_words in
  float_of_int (words * (Sys.word_size / 8)) /. (1024. *. 1024.)

let should_retire ~served ~heap_mb recycle =
  (recycle.max_requests > 0 && served >= recycle.max_requests)
  || (recycle.max_heap_mb > 0. && heap_mb > recycle.max_heap_mb)

(* --- reply envelope ---------------------------------------------------- *)

(* What travels back over the socketpair: the finished reply line plus
   enough bookkeeping for the parent to account it (status/code into
   the reply counters) and to mirror the child's failpoint hit
   counters into the parent registry (cumulative; the parent diffs
   against a per-spawn watermark). *)
let envelope ~line ~status ~code =
  Jsonl.to_string
    (Jsonl.Obj
       ([ ("status", Jsonl.Str status) ]
       @ (match code with
         | Some c -> [ ("code", Jsonl.Str c) ]
         | None -> [])
       @ [ ("line", Jsonl.Str line);
           ("fp",
            Jsonl.Obj
              (List.map
                 (fun (n, c) -> (n, Jsonl.Num (float_of_int c)))
                 (Failpoint.hits ()))) ]))

type parsed_reply = {
  line : string;
  status : string;
  code : string option;
  fp : (string * int) list;
}

let parse_envelope payload =
  match Jsonl.parse payload with
  | Error e -> Error e
  | Ok json -> (
    match (Jsonl.str_field "status" json, Jsonl.str_field "line" json) with
    | Some status, Some line ->
      let fp =
        match Jsonl.member "fp" json with
        | Some (Jsonl.Obj fields) ->
          List.filter_map
            (fun (n, v) ->
              Option.map (fun c -> (n, int_of_float c)) (Jsonl.to_num v))
            fields
        | _ -> []
      in
      Ok { line; status; code = Jsonl.str_field "code" json; fp }
    | _ -> Error "worker reply envelope missing status/line")

(* --- the child --------------------------------------------------------- *)

let child_loop ~svc ~defaults ~recycle fd =
  let served = ref 0 in
  let rec loop () =
    match Frame.read_blocking fd with
    | None -> Unix._exit 0 (* parent closed the pipe: clean retirement *)
    | Some request_line ->
      let line, status, code =
        match
          Failpoint.hit "worker.request";
          Protocol.parse_request request_line
        with
        | exception Failpoint.Injected name ->
          ( Protocol.error_reply
              (Diag.make Diag.Error ~code:"E027"
                 (Printf.sprintf "request crashed: injected failpoint %S"
                    name)),
            "error",
            Some "E027" )
        | Error d -> (Protocol.error_reply d, "error", Some d.Diag.code)
        | Ok req -> answer_protected ~svc ~defaults req
      in
      (match
         Fdio.write_all fd (Frame.encode (envelope ~line ~status ~code))
       with
      | Ok () -> ()
      | Error _ -> Unix._exit 0 (* parent went away *));
      incr served;
      if should_retire ~served:!served ~heap_mb:(heap_mb ()) recycle then
        Unix._exit 0
      else loop ()
  in
  loop ()

(* --- spawn / classify -------------------------------------------------- *)

type t = { pid : int; fd : Unix.file_descr; reader : Frame.reader }

let spawn ~svc ~defaults ~recycle ~on_child () =
  (* inherited stdio buffers flush in the child too unless emptied now *)
  flush stdout;
  flush stderr;
  let parent_end, child_end =
    Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0
  in
  match Unix.fork () with
  | 0 -> (
    let setup () =
      (try Unix.close parent_end with Unix.Unix_error _ -> ());
      on_child ();
      List.iter
        (fun s ->
          try Sys.set_signal s Sys.Signal_default
          with Invalid_argument _ | Sys_error _ -> ())
        [ Sys.sigterm; Sys.sigint; Sys.sigchld ];
      Fdio.ignore_sigpipe ();
      (* exactly one process may own the store file *)
      Service.disable_periodic_checkpoints svc
    in
    match setup () with
    | () -> child_loop ~svc ~defaults ~recycle child_end
    | exception _ -> Unix._exit 125)
  | pid ->
    (try Unix.close child_end with Unix.Unix_error _ -> ());
    Fdio.set_nonblock parent_end;
    { pid; fd = parent_end; reader = Frame.reader () }

let dispatch t ~write_deadline line =
  Fdio.write_all ~deadline:write_deadline t.fd (Frame.encode line)

let poll t = Frame.poll t.reader t.fd

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

type exit_class = Recycled | Crashed of string

let signal_name s =
  let known =
    [ (Sys.sigkill, "SIGKILL");
      (Sys.sigsegv, "SIGSEGV");
      (Sys.sigabrt, "SIGABRT");
      (Sys.sigbus, "SIGBUS");
      (Sys.sigterm, "SIGTERM");
      (Sys.sigint, "SIGINT");
      (Sys.sigfpe, "SIGFPE");
      (Sys.sigill, "SIGILL");
      (Sys.sigpipe, "SIGPIPE") ]
  in
  match List.assoc_opt s known with
  | Some n -> n
  | None -> Printf.sprintf "signal %d" s

let classify = function
  | Unix.WEXITED 0 -> Recycled
  | Unix.WEXITED n -> Crashed (Printf.sprintf "exit %d" n)
  | Unix.WSIGNALED s -> Crashed (signal_name s)
  | Unix.WSTOPPED s -> Crashed (Printf.sprintf "stopped by %s" (signal_name s))
