type endpoint = Unix_path of string | Tcp of string * int

type t = {
  endpoints : endpoint array;  (** at least one; [current] rotates *)
  policy : Backoff.policy;
  rand : float -> float;
  mutable current : int;
  mutable fd : Unix.file_descr option;
  ibuf : Buffer.t;
  mutable retries : int;
  mutable retried_total : int;
      (** roundtrips that needed at least one retry *)
  mutable rotations : int;  (** failovers to another endpoint *)
}

let parse_addr s =
  if String.contains s '/' then Unix_path s
  else
    match String.rindex_opt s ':' with
    | Some i when i > 0 && i < String.length s - 1 -> (
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some port -> Tcp (String.sub s 0 i, port)
      | None -> Unix_path s)
    | _ -> Unix_path s

let string_of_endpoint = function
  | Unix_path p -> p
  | Tcp (h, p) -> Printf.sprintf "%s:%d" h p

let create ?(policy = Backoff.default_policy) ?(rand = Random.float) ~addr () =
  Fdio.ignore_sigpipe ();
  let parts =
    String.split_on_char ',' addr
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let parts = if parts = [] then [ addr ] else parts in
  { endpoints = Array.of_list (List.map parse_addr parts);
    policy;
    rand;
    current = 0;
    fd = None;
    ibuf = Buffer.create 256;
    retries = 0;
    retried_total = 0;
    rotations = 0 }

let disconnect t =
  (match t.fd with
   | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
   | None -> ());
  t.fd <- None;
  Buffer.clear t.ibuf

let close = disconnect
let retries t = t.retries
let retried_total t = t.retried_total
let rotations t = t.rotations
let current_addr t = string_of_endpoint t.endpoints.(t.current)

let endpoints t =
  Array.to_list (Array.map string_of_endpoint t.endpoints)

(* Which parsed replies are worth retrying.  An overload shed always
   is (the server said "come back later").  An E029 — the request died
   with its worker — is a server-side fault that a fresh worker will
   almost surely not repeat, but re-sending is only safe when the
   request is idempotent; queries are, so the caller says so. *)
let should_retry_reply ~idempotent (r : Protocol.reply) =
  if r.Protocol.status = "degraded" && r.Protocol.reason = Some "overload"
  then Some "server overloaded"
  else if idempotent && r.Protocol.code = Some "E029" then
    Some "worker crashed mid-request"
  else None

(* The refused/unreachable signature of a dead endpoint.  These happen
   at connect time — before a single request byte is sent — so
   retrying is safe even for non-idempotent requests, and they are the
   failover trigger: rotate to the next endpoint before retrying. *)
let endpoint_down = function
  | Unix.Unix_error
      ( ( Unix.ECONNREFUSED | Unix.EHOSTUNREACH | Unix.ENETUNREACH
        | Unix.ENOENT | Unix.ETIMEDOUT ),
        _, _ ) ->
    true
  | _ -> false

let connect_fd ep =
  let attempt fd sockaddr =
    try
      Unix.connect fd sockaddr;
      Ok fd
    with e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (endpoint_down e, Printexc.to_string e)
  in
  match ep with
  | Unix_path path ->
    attempt
      (Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0)
      (Unix.ADDR_UNIX path)
  | Tcp (host, port) -> (
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    match
      try Unix.inet_addr_of_string host
      with _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with
    | inet -> attempt fd (Unix.ADDR_INET (inet, port))
    | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (endpoint_down e, Printexc.to_string e))

let ensure_connected t =
  match t.fd with
  | Some fd -> Ok fd
  | None -> (
    match connect_fd t.endpoints.(t.current) with
    | Ok fd ->
      t.fd <- Some fd;
      Ok fd
    | Error (down, msg) ->
      let failed = string_of_endpoint t.endpoints.(t.current) in
      if down && Array.length t.endpoints > 1 then begin
        t.current <- (t.current + 1) mod Array.length t.endpoints;
        t.rotations <- t.rotations + 1
      end;
      Error (Printf.sprintf "%s: %s" failed msg))

let read_reply t fd =
  let chunk = Bytes.create 65536 in
  let rec go () =
    let s = Buffer.contents t.ibuf in
    match String.index_opt s '\n' with
    | Some i ->
      let line = String.sub s 0 i in
      let rest = String.length s - i - 1 in
      Buffer.clear t.ibuf;
      Buffer.add_substring t.ibuf s (i + 1) rest;
      Ok line
    | None -> (
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> Error "connection closed by server"
      | n ->
        Buffer.add_subbytes t.ibuf chunk 0 n;
        go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))
  in
  go ()

let roundtrip ?(idempotent = true) t line =
  let bo = Backoff.start t.policy in
  let rec attempt () =
    let outcome =
      match ensure_connected t with
      (* connect-stage failure: the request was never sent, so the
         retry is safe regardless of idempotence (and may land on a
         rotated endpoint) *)
      | Error e -> `Transient e
      | Ok fd -> (
        match Fdio.write_all fd (line ^ "\n") with
        | Error e ->
          disconnect t;
          `Transient e
        | Ok () -> (
          match read_reply t fd with
          | Error e ->
            disconnect t;
            (* the request reached the server but its reply was lost
               (ECONNRESET, EOF mid-reply): it may have executed, so
               only an idempotent request may be re-sent *)
            if idempotent then `Transient e
            else `Permanent (Error (Printf.sprintf "reply lost (%s)" e))
          | Ok reply_line -> (
            match Protocol.parse_reply reply_line with
            | Error e -> `Permanent (Error e)
            | Ok r -> (
              match should_retry_reply ~idempotent r with
              | Some why -> `Transient why
              | None -> `Permanent (Ok r)))))
    in
    match outcome with
    | `Permanent r ->
      if Backoff.attempts bo > 0 then t.retried_total <- t.retried_total + 1;
      r
    | `Transient why -> (
      match Backoff.next bo ~rand:t.rand with
      | Some d ->
        t.retries <- t.retries + 1;
        Fdio.sleepf d;
        attempt ()
      | None ->
        if Backoff.attempts bo > 0 then t.retried_total <- t.retried_total + 1;
        Error
          (Printf.sprintf "retry budget exhausted after %d attempts (last: %s)"
             (Backoff.attempts bo) why))
  in
  attempt ()

let ping t = roundtrip t {|{"kind":"ping"}|}
