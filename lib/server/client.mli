(** Retrying client for the [mdqa serve] protocol, with multi-endpoint
    failover.

    Transient failures — the server restarting (connection refused, a
    vanished socket file), a torn connection, a [degraded:overload]
    shed — are retried under a {!Backoff} policy: exponential backoff
    with full jitter, bounded by both an attempt count and a
    cumulative-sleep budget.  Everything else (an error reply, garbage
    on the wire, budget exhausted) comes back as a value.  Never
    raises on I/O.

    Connect-stage failures are classified by errno.  The dead-endpoint
    signature (ECONNREFUSED, EHOSTUNREACH, ENETUNREACH, ENOENT,
    ETIMEDOUT) happens before a single request byte is sent, so the
    retry is safe even for non-idempotent requests — and when the
    client was given several endpoints, it rotates to the next one
    before retrying.  That is the whole failover story: point a client
    at ["primary,standby"] and a SIGKILL'd primary turns into one
    connection-refused miss, a rotation, and the reply coming from the
    standby. *)

type t

val create :
  ?policy:Backoff.policy ->
  ?rand:(float -> float) ->
  addr:string ->
  unit ->
  t
(** [addr] is one endpoint or a comma-separated failover list tried in
    order.  Each endpoint is a Unix socket path, or [host:port] when
    the suffix after the last [:] parses as a port and the string
    contains no [/].  No connection is made until the first
    {!roundtrip}. *)

val roundtrip :
  ?idempotent:bool -> t -> string -> (Protocol.reply, string) result
(** Send one request line (newline appended) and read one reply line,
    (re)connecting and retrying transient failures under the policy.
    [Ok] is any parsed reply that is not retryable — including
    [status = "error"] replies, which are the server speaking, not a
    transport failure.  [Error] means the retry budget ran out or the
    server answered with something unparseable.

    [idempotent] (default [true]: every request in the protocol is a
    read) additionally allows transparent re-sends when the reply was
    lost mid-read (ECONNRESET / EOF) or the server answered E029 (the
    request died with its worker — a fresh worker will answer).  With
    [~idempotent:false] a lost reply is a permanent error, since the
    request may already have executed. *)

val should_retry_reply :
  idempotent:bool -> Protocol.reply -> string option
(** The reply-classification half of the retry decision, exposed pure
    for tests: [Some reason] when a parsed reply should be retried
    (overload shed always; E029 only when idempotent). *)

val ping : t -> (Protocol.reply, string) result
(** [roundtrip {"kind":"ping"}] — readiness probing. *)

val retries : t -> int
(** Total retries taken over the life of this client. *)

val retried_total : t -> int
(** Roundtrips that needed at least one retry before resolving (in
    either direction) — the "how often was the first attempt not
    enough" number, vs {!retries} which counts every extra attempt. *)

val rotations : t -> int
(** Failovers taken: how often a dead-endpoint connect failure rotated
    the client to the next endpoint. *)

val current_addr : t -> string
(** The endpoint the next connection attempt will target. *)

val endpoints : t -> string list
(** All configured endpoints, in failover order. *)

val close : t -> unit
(** Drop the connection (idempotent); the next roundtrip reconnects. *)
