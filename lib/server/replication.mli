(** Primary/standby hot-standby replication for [mdqa serve].

    The design is pull-based and rides the ordinary JSONL protocol, so
    the primary's single-threaded event loop needs no new connection
    machinery: a standby is just a client that periodically sends
    [repl.status] (the heartbeat, which doubles as the carrier for the
    high-water mark it has durably applied) and [repl.fetch] (raw
    snapshot-image or journal bytes as hex chunks, each protected by a
    CRC-32 over the decoded bytes, resumable at any byte offset).

    The unit of ship identity is the {e epoch}: the CRC-32 of the
    primary's whole snapshot image.  Snapshot encoding is
    deterministic, so a primary that checkpoints an unchanged fixpoint
    keeps its epoch, and a standby that has the same epoch on disk
    skips the snapshot ship entirely and fetches only the journal
    suffix past what it already has.  An epoch change mid-ship makes
    the primary answer [restart:true] with the new epoch; the standby
    starts over from offset 0.

    Failure model (see DESIGN.md §14):
    - a torn journal tail shipped from the primary truncates on the
      standby exactly as a local crash would — recovery is literally
      the same code path;
    - a chunk CRC mismatch discards the chunk and retries;
    - divergence (the primary serves a different program section, or
      the local journal is {e ahead} of the primary's high-water mark
      at the same epoch) is E030 and never followed;
    - a primary that stops answering heartbeats for [promote_after]
      consecutive polls is declared lost; the server promotes the
      standby (H055). *)

val to_hex : string -> string
(** Lowercase hex of every byte. *)

val of_hex : string -> (string, string) result
(** Inverse of {!to_hex}; accepts upper- and lowercase.  [Error] on odd
    length or a non-hex digit. *)

val default_chunk : int
(** 64 KiB — the default [repl.fetch] length. *)

(** The primary side: serves [repl.status] / [repl.fetch] / records
    standby acks.  Purely reactive — owns no I/O loop. *)
module Source : sig
  type t

  val create : metrics:Mdqa_obs.Metrics.t -> store_path:string option -> t
  (** [store_path = None] (a store-less server) answers every fetch
      with E031: there is nothing to replicate. *)

  val fetch :
    t ->
    what:[ `Snapshot | `Journal ] ->
    offset:int ->
    len:int ->
    epoch:int ->
    ((string * Jsonl.t) list, Mdqa_datalog.Diag.t) result
  (** Reply fields for one [repl.fetch]: [what]/[offset]/[total]/
      [epoch]/[crc]/[data] (hex), or [restart:true] with the new epoch
      when [epoch <> 0] no longer matches the current image.  Failpoints
      [repl.ship] (snapshot) and [repl.frame] (journal) fire here.
      [Error] is an E031 diagnostic (no store, unreadable files). *)

  val record_ack : t -> int -> unit
  (** A standby reported [acked] applied journal bytes: update the
      lag gauges and the heartbeat clock. *)

  val status_fields : t -> (string * Jsonl.t) list
  (** Reply fields for [repl.status]: [epoch], [snapshot_bytes],
      [hwm], [shippable], per-section CRCs and the last ack. *)

  val hwm : t -> int
  (** The primary's current journal length, bytes. *)
end

(** The standby side: drives the sync and steady-state polling against
    the primary.  Owned by the standby server's event loop, which calls
    {!Follower.tick} between [select] rounds. *)
module Follower : sig
  type t

  val create :
    ?policy:Backoff.policy ->
    ?rand:(float -> float) ->
    ?interval:float ->
    ?promote_after:int ->
    ?chunk:int ->
    primary:string ->
    store_path:string ->
    metrics:Mdqa_obs.Metrics.t ->
    unit ->
    t
  (** [interval] (default 1 s) is the heartbeat period;
      [promote_after] (default 5; 0 = never) the consecutive missed
      heartbeats that declare the primary lost; [chunk] the fetch
      size.  [primary] is an address in {!Client.create} syntax. *)

  val initial_sync : t -> (unit, Mdqa_datalog.Diag.t) result
  (** Blocking: bring the local store in line with the primary before
      the service warm-starts from it.  Resumes an interrupted ship at
      the byte offset it left off; skips the snapshot entirely when
      the local epoch already matches.  [Error] is an E030
      (divergence — never retried) or E031 (primary unreachable after
      the retry budget) diagnostic. *)

  val tick :
    t ->
    apply:(Mdqa_store.Journal.record list -> unit) ->
    resync:(Mdqa_store.Snapshot.t -> unit) ->
    [ `Idle | `Applied of int | `Lost ]
  (** One scheduling quantum.  Does nothing ([`Idle]) until the next
      poll is due; otherwise heartbeats the primary and fetches /
      applies whatever is new: [apply] receives fresh journal records
      to replay into the warm instance, [resync] replaces the warm
      instance wholesale after an epoch change.  [`Lost] means
      [promote_after] consecutive heartbeats have now been missed —
      the caller decides whether to promote. *)

  val mark_promoted : t -> unit
  (** Stop following (ticks become [`Idle]); bumps the promotion
      counter.  Idempotent. *)

  val promoted : t -> bool

  val primary_addr : t -> string

  val lag_fields : t -> (string * Jsonl.t) list
  (** [lag_bytes] / [lag_s] / [primary] — merged into health replies. *)

  val status_fields : t -> (string * Jsonl.t) list
  (** The standby's own replication status, for [repl.status] asked of
      a standby: primary address, epoch, applied bytes/records,
      high-water mark, miss count, rounds, promoted flag. *)

  val close : t -> unit
end
