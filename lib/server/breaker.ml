type state =
  | Closed
  | Open of { until : float }
  | Half_open

type t = {
  threshold : int;
  cooldown : float;
  cooldown_cap : float;
  clock : unit -> float;
  mutable state : state;
  mutable failures : int;  (** consecutive, in [Closed] *)
  mutable trips : int;
  mutable current_cooldown : float;  (** doubles on every re-open *)
  mutable probe_taken : bool;  (** the single [Half_open] probe is out *)
}

let default_clock () = Unix.gettimeofday ()

let create ?(threshold = 3) ?(cooldown = 1.0) ?(cooldown_cap = 60.0) ?clock ()
    =
  if threshold < 1 then invalid_arg "Breaker.create: threshold < 1";
  if cooldown <= 0. then invalid_arg "Breaker.create: cooldown <= 0";
  if cooldown_cap < cooldown then
    invalid_arg "Breaker.create: cooldown_cap < cooldown";
  { threshold;
    cooldown;
    cooldown_cap;
    clock = Option.value ~default:default_clock clock;
    state = Closed;
    failures = 0;
    trips = 0;
    current_cooldown = cooldown;
    probe_taken = false }

let open_for t cooldown =
  t.trips <- t.trips + 1;
  t.probe_taken <- false;
  t.state <- Open { until = t.clock () +. cooldown }

let allow t =
  match t.state with
  | Closed -> true
  | Half_open ->
    if t.probe_taken then false
    else begin
      t.probe_taken <- true;
      true
    end
  | Open { until } ->
    if t.clock () >= until then begin
      t.state <- Half_open;
      t.probe_taken <- true;
      true
    end
    else false

let record_success t =
  t.state <- Closed;
  t.failures <- 0;
  t.probe_taken <- false;
  t.current_cooldown <- t.cooldown

let record_failure t =
  match t.state with
  | Closed ->
    t.failures <- t.failures + 1;
    if t.failures >= t.threshold then open_for t t.current_cooldown
  | Half_open ->
    (* the probe failed: back off harder before the next one *)
    t.current_cooldown <-
      Float.min t.cooldown_cap (t.current_cooldown *. 2.);
    open_for t t.current_cooldown
  | Open _ -> ()

(* Out-of-band trip: evidence from outside the protected call path
   (the scrubber finding a bad CRC on disk) opens the breaker at once,
   without waiting for [threshold] checkpoint failures. *)
let trip t =
  match t.state with
  | Open _ -> ()
  | Closed | Half_open -> open_for t t.current_cooldown

let state t = t.state
let consecutive_failures t = t.failures
let trips t = t.trips

let retry_at t = match t.state with Open { until } -> Some until | _ -> None

let state_name t =
  match t.state with
  | Closed -> "closed"
  | Open _ -> "open"
  | Half_open -> "half-open"
