type 'a t = {
  capacity : int;
  queue : 'a Queue.t;
  mutable shed : int;
  mutable accepted : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Admission.create: capacity < 1";
  { capacity; queue = Queue.create (); shed = 0; accepted = 0 }

let offer t x =
  if Queue.length t.queue >= t.capacity then begin
    t.shed <- t.shed + 1;
    false
  end
  else begin
    Queue.add x t.queue;
    t.accepted <- t.accepted + 1;
    true
  end

let take t = Queue.take_opt t.queue
let peek t = Queue.peek_opt t.queue

let length t = Queue.length t.queue
let capacity t = t.capacity
let is_empty t = Queue.is_empty t.queue
let shed t = t.shed
let accepted t = t.accepted
