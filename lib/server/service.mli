(** The warm query engine behind [mdqa serve].

    The paper's tractability argument (QA over weakly-sticky ontologies
    is PTIME in data complexity) only pays off if the chase fixpoint is
    computed {e once} and kept warm: a service loads an ontology —
    preferring a crash-safe store snapshot when one exists — chases to
    fixpoint under the server guard, and then answers every query by
    plain evaluation over the materialized instance.

    Robustness contract:
    - {!query} never raises: query syntax errors, unknown predicates,
      budget trips and an inconsistent ontology all come back as
      values.
    - Each request runs under a {!Mdqa_datalog.Guard.fork} of the
      server guard, so one hostile query can exhaust {e its} budget but
      not the server's.
    - Checkpoint writes go through a {!Breaker}: repeated I/O failures
      trip it open and the service keeps answering from memory —
      stale-but-consistent — probing the disk again after a backoff. *)

type t

val load :
  ?guard:Mdqa_datalog.Guard.t ->
  ?breaker:Breaker.t ->
  ?store:string ->
  ?metrics:Mdqa_obs.Metrics.t ->
  ?checkpoint_every:int ->
  ?keep_generations:int ->
  ?program_file:string ->
  unit ->
  (t, Mdqa_datalog.Diag.t list) result
(** Bring the service up.  When [store] names an existing snapshot the
    service warm-starts from it ([Store.resume]: replay + chase on to
    fixpoint) and [program_file] is not read; otherwise [program_file]
    is validated, chased (checkpointing into [store] when given), and
    served.  Validation or recovery failure is the returned diagnostic
    list.  [checkpoint_every] (default 64, [0] disables) re-snapshots
    the fixpoint every that many requests — self-healing if the on-disk
    image is lost or the disk recovers after failures. *)

val load_replica :
  ?guard:Mdqa_datalog.Guard.t ->
  ?breaker:Breaker.t ->
  ?metrics:Mdqa_obs.Metrics.t ->
  ?checkpoint_every:int ->
  ?keep_generations:int ->
  store:string ->
  unit ->
  (t, Mdqa_datalog.Diag.t list) result
(** Bring a {e standby's} service up from a store the replication layer
    just installed.  Unlike {!load}, nothing is re-chased and nothing
    is written — [Store.resume] would compact the journal and rewrite
    the snapshot, destroying the byte-identity with the primary that
    replication maintains.  Periodic checkpoints start disabled (the
    primary owns the bytes); a promotion re-enables them via
    {!enable_periodic_checkpoints}. *)

val store_path : t -> string option
(** The snapshot path of the attached store, if any — what the
    replication source ships and the follower installs into. *)

val install_snapshot : t -> Mdqa_store.Snapshot.t -> unit
(** Replace the warm fixpoint wholesale (a standby following a
    snapshot-epoch change). *)

val apply_replicated : t -> Mdqa_store.Journal.record list -> unit
(** Replay freshly shipped journal records into the warm instance —
    the in-memory mirror of on-disk journal replay. *)

val enable_periodic_checkpoints : t -> unit
(** Undo {!disable_periodic_checkpoints}: restore the cadence it
    saved.  A standby calls this at promotion, taking ownership of the
    store file.  No-op if checkpoints were never disabled. *)

type query_outcome =
  | Answers of Mdqa_relational.Tuple.t list  (** complete *)
  | Partial of Mdqa_relational.Tuple.t list * Mdqa_datalog.Guard.exhaustion
      (** a budget ran out (theirs or the warm chase's): sound
          under-approximation *)
  | Bad_query of Mdqa_datalog.Diag.t  (** E002 / E012: reply error *)
  | Inconsistent of string
      (** the warm chase failed a constraint; no meaningful answers *)

val query :
  t ->
  ?timeout:float ->
  ?max_steps:int ->
  engine:Protocol.engine ->
  string ->
  query_outcome
(** Answer one query given in surface syntax.  [timeout]/[max_steps]
    bound this request via a guard fork; consumption is folded back
    into the server guard afterwards.  Never raises. *)

val request_served : t -> unit
(** Count one served request; every [checkpoint_every]-th triggers a
    breaker-guarded {!checkpoint}. *)

val disable_periodic_checkpoints : t -> unit
(** Stop {!request_served} from ever checkpointing.  Forked worker
    children call this right after the fork: exactly one process — the
    supervisor parent — may own the store file, or two writers race on
    the same temp path. *)

val checkpoint :
  t ->
  force:bool ->
  [ `Written of int  (** bytes *)
  | `Breaker_open of float  (** skipped; retry at (clock time) *)
  | `Failed of string
  | `No_store ]
(** Snapshot the warm fixpoint through the circuit breaker.  [force]
    ignores an open breaker (the final drain checkpoint gets one last
    try regardless of history). *)

val health_fields : t -> (string * Jsonl.t) list
(** The service half of a health reply: warm-chase outcome, fixpoint
    age and size, guard consumption, breaker state, store status,
    requests served. *)

val ready : t -> bool * string
(** Is the service able to answer completely right now?  [false] comes
    with a reason (inconsistent ontology, degraded fixpoint). *)

val requests : t -> int
val guard : t -> Mdqa_datalog.Guard.t
val breaker : t -> Breaker.t

val metrics : t -> Mdqa_obs.Metrics.t
(** The service-lifetime metrics registry: the warm chase and the store
    record into it ([mdqa_chase_*], [mdqa_store_*]), the server layers
    its request instruments on top ([mdqa_server_*]). *)

val record_metrics : t -> unit
(** Refresh scrape-time gauges in {!metrics}: guard consumption
    ([mdqa_guard_*]), breaker state/trips, fixpoint facts/age/persisted
    and requests served.  Called before rendering an exposition. *)

val warm_saturated : t -> bool
(** Did the warm chase reach a true fixpoint? *)

val close : t -> unit
(** Release the store handle (idempotent). *)
