(** The [mdqa serve] event loop: fault-isolated, load-shedding,
    drain-capable.

    A single-threaded [select] loop owns a listening socket (Unix or
    TCP), reads line-delimited JSON requests ({!Protocol}) from any
    number of concurrent connections, and answers them from a warm
    {!Service}.  Every failure mode is contained:

    - a request that raises is answered with an E027 diagnostic and
      the loop continues — one poisoned query cannot take the server
      down;
    - requests beyond the admission queue's capacity are shed with an
      immediate [degraded:overload] (W047) reply — overload degrades
      latency for no one and never hangs;
    - a connection that dribbles bytes slower than the read deadline
      (slow-loris) is answered E026 and closed; one that exceeds the
      request size cap is answered E025 and closed;
    - SIGPIPE is ignored and reply writes are EINTR-safe and
      deadline-bounded, so a client vanishing mid-reply costs one
      connection, not the process;
    - SIGTERM/SIGINT starts a graceful drain: stop accepting, answer
      or degrade everything in flight within the grace period, write a
      final (breaker-bypassing) checkpoint, exit 0 — or 2 when
      anything had to be degraded on the way out.

    With [workers > 0] the loop keeps all of the above but answers
    queries through a {!Supervisor}-managed pool of forked workers
    sharing the warm fixpoint copy-on-write: a worker crash costs one
    E029 reply and a jittered-backoff restart, a hung worker is
    SIGKILLed at the watchdog deadline (W049), and when fewer than
    [min_ready] workers are alive queued queries are refused with H054
    instead of waiting on a dead pool.  Non-query requests (ping,
    health, ready, metrics, spans) are always answered inline — the
    control plane stays responsive through any worker storm. *)

type addr =
  | Unix_path of string  (** a filesystem socket; removed on exit *)
  | Tcp of string * int  (** bind host, port *)

type config = {
  addr : addr;
  max_queue : int;  (** admission-queue capacity (default 64) *)
  max_clients : int;  (** concurrent connections (default 128) *)
  read_timeout : float;  (** seconds to finish sending a line (10.) *)
  write_timeout : float;  (** seconds to accept a reply (10.) *)
  max_request_bytes : int;  (** request line cap (1 MiB) *)
  request_timeout : float option;  (** default per-request deadline *)
  request_max_steps : int option;  (** default per-request step budget *)
  drain_grace : float;  (** seconds to finish in-flight work on drain *)
  workers : int;  (** forked query workers; 0 (default) = inline *)
  watchdog : float option;  (** per-request worker hang deadline, seconds *)
  min_ready : int;  (** live workers required to accept queries (1) *)
  worker_max_requests : int;  (** recycle after this many requests; 0 = off *)
  worker_max_heap_mb : float;  (** recycle past this heap size; 0. = off *)
  scrub_interval : float option;
      (** with [Some s], re-verify the store's on-disk CRCs from the
          event loop, one bounded step every [s] seconds
          ({!Mdqa_store.Scrub}).  A finding trips the checkpoint
          breaker immediately and schedules a one-shot
          {!Mdqa_store.Fsck.repair} for the next step; a standby
          repairs by re-syncing from its primary.  Progress and
          findings are exported as [mdqa_store_scrub_bytes_total] /
          [mdqa_store_scrub_errors_total], and the
          [mdqa_store_generation] gauge tracks the generation chain.
          [None] (default) = off *)
  scrub_budget : int;  (** bytes verified per scrub step (64 KiB) *)
}

val default_config : addr -> config

val run : ?follower:Replication.Follower.t -> config -> Service.t -> int
(** Serve until a drain signal, then shut down cleanly.  Returns the
    process exit code: [0] when every request was answered completely
    and the final checkpoint (if a store is attached) succeeded, [2]
    when something was degraded — queued requests expired at drain,
    the final checkpoint failed, or the server guard tripped.

    With [follower] the server runs as a hot standby: between select
    rounds it ticks the follower (heartbeat the primary, fetch and
    apply journal frames, resync on an epoch change), answers queries
    read-only with a W050 stale-read tag, refuses [repl.fetch] (E031)
    and never writes the store — its on-disk bytes stay byte-identical
    to the primary's.  A [promote] request, or [promote_after]
    consecutive missed heartbeats, promotes it: following stops,
    periodic checkpoints resume, and one forced checkpoint makes the
    new primary's authority durable (H055).

    Never raises out of the loop; setup errors (socket in use,
    permission) raise before serving starts. *)
