module Diag = Mdqa_datalog.Diag
module Guard = Mdqa_datalog.Guard
module Value = Mdqa_relational.Value
module Tuple = Mdqa_relational.Tuple

type engine = Chase | Proof | Rewrite

type request =
  | Query of {
      id : Jsonl.t option;
      query : string;
      engine : engine;
      timeout : float option;
      max_steps : int option;
    }
  | Health of { id : Jsonl.t option }
  | Ready of { id : Jsonl.t option }
  | Ping of { id : Jsonl.t option }
  | Metrics of { id : Jsonl.t option }
  | Spans of { id : Jsonl.t option }
  | Profile of { id : Jsonl.t option }
  | Repl_status of { id : Jsonl.t option; acked : int option }
      (** a standby's heartbeat: the primary's replication status, and
          (when [acked] is given) the standby reporting the journal
          high-water mark it has durably applied *)
  | Repl_fetch of {
      id : Jsonl.t option;
      what : [ `Snapshot | `Journal ];
      offset : int;
      len : int;
      epoch : int;
          (** the snapshot-image CRC the standby is resuming against;
          [0] starts a fresh ship *)
    }
  | Promote of { id : Jsonl.t option }

let request_id = function
  | Query { id; _ } | Health { id } | Ready { id } | Ping { id }
  | Metrics { id } | Spans { id } | Profile { id } | Repl_status { id; _ }
  | Repl_fetch { id; _ } | Promote { id } ->
    id

let request_kind = function
  | Query _ -> "query"
  | Health _ -> "health"
  | Ready _ -> "ready"
  | Ping _ -> "ping"
  | Metrics _ -> "metrics"
  | Spans _ -> "spans"
  | Profile _ -> "profile"
  | Repl_status _ -> "repl.status"
  | Repl_fetch _ -> "repl.fetch"
  | Promote _ -> "promote"

let bad message = Error (Diag.make Diag.Error ~code:"E024" message)

let parse_request line =
  match Jsonl.parse line with
  | Error msg -> bad (Printf.sprintf "request is not valid JSON: %s" msg)
  | Ok (Jsonl.Obj _ as obj) -> (
    let id = Jsonl.member "id" obj in
    match Jsonl.str_field "kind" obj with
    | None -> bad "request object has no string \"kind\" field"
    | Some "health" -> Ok (Health { id })
    | Some "ready" -> Ok (Ready { id })
    | Some "ping" -> Ok (Ping { id })
    | Some "metrics" -> Ok (Metrics { id })
    | Some "spans" -> Ok (Spans { id })
    | Some "profile" -> Ok (Profile { id })
    | Some "promote" -> Ok (Promote { id })
    | Some "repl.status" ->
      let acked = Option.map int_of_float (Jsonl.num_field "acked" obj) in
      if Option.fold ~none:false ~some:(fun n -> n < 0) acked then
        bad "acked must be non-negative"
      else Ok (Repl_status { id; acked })
    | Some "repl.fetch" -> (
      match Jsonl.str_field "what" obj with
      | Some ("snapshot" | "journal" as w) ->
        let what = if w = "snapshot" then `Snapshot else `Journal in
        let int_field name default =
          match Jsonl.num_field name obj with
          | None -> Ok default
          | Some f ->
            let n = int_of_float f in
            if n < 0 then
              Error
                (Diag.make Diag.Error ~code:"E024"
                   (Printf.sprintf "%s must be non-negative" name))
            else Ok n
        in
        let ( let* ) r f = match r with Error _ as e -> e | Ok v -> f v in
        let* offset = int_field "offset" 0 in
        let* len = int_field "len" (1 lsl 16) in
        let* epoch = int_field "epoch" 0 in
        if len < 1 then bad "len must be at least 1"
        else Ok (Repl_fetch { id; what; offset; len; epoch })
      | Some other ->
        bad
          (Printf.sprintf "unknown repl.fetch target %S (want snapshot or journal)"
             other)
      | None -> bad "repl.fetch has no string \"what\" field")
    | Some "query" -> (
      match Jsonl.str_field "query" obj with
      | None -> bad "query request has no string \"query\" field"
      | Some query -> (
        let engine =
          match Jsonl.str_field "engine" obj with
          | None | Some "chase" -> Ok Chase
          | Some "proof" -> Ok Proof
          | Some "rewrite" -> Ok Rewrite
          | Some other ->
            bad
              (Printf.sprintf
                 "unknown engine %S (want chase, proof or rewrite)" other)
        in
        match engine with
        | Error _ as e -> e
        | Ok engine ->
          let timeout = Jsonl.num_field "timeout" obj in
          let max_steps =
            Option.map int_of_float (Jsonl.num_field "max_steps" obj)
          in
          if Option.fold ~none:false ~some:(fun t -> t <= 0.) timeout then
            bad "timeout must be positive"
          else if Option.fold ~none:false ~some:(fun n -> n < 1) max_steps
          then bad "max_steps must be at least 1"
          else Ok (Query { id; query; engine; timeout; max_steps })))
    | Some other -> bad (Printf.sprintf "unknown request kind %S" other))
  | Ok _ -> bad "request must be a JSON object"

(* --- replies --------------------------------------------------------- *)

let json_of_value = function
  | Value.Sym s -> Jsonl.Str s
  | Value.Int i -> Jsonl.Num (float_of_int i)
  | Value.Real r -> Jsonl.Num r
  | Value.Null k -> Jsonl.Obj [ ("null", Jsonl.Num (float_of_int k)) ]

let json_of_tuple t = Jsonl.List (List.map json_of_value (Tuple.to_list t))

let base ?id ~status fields =
  let id_field = match id with None -> [] | Some v -> [ ("id", v) ] in
  Jsonl.to_string
    (Jsonl.Obj ((id_field @ [ ("status", Jsonl.Str status) ]) @ fields))
  ^ "\n"

let answers_field = function
  | None -> []
  | Some tuples -> [ ("answers", Jsonl.List (List.map json_of_tuple tuples)) ]

let code_fields = function
  | None -> []
  | Some code -> (
    ("code", Jsonl.Str code)
    ::
    (match Diag.describe code with
     | Some m -> [ ("mnemonic", Jsonl.Str m) ]
     | None -> []))

let complete_reply ?id ?(extra = []) ~answers () =
  base ?id ~status:"complete" (answers_field answers @ extra)

let degraded_reply ?id ?code ~reason ~answers ~message () =
  base ?id ~status:"degraded"
    ([ ("degraded", Jsonl.Str reason) ]
    @ code_fields code
    @ answers_field answers
    @ [ ("message", Jsonl.Str message) ])

let error_reply ?id (d : Diag.t) =
  base ?id ~status:"error"
    (code_fields (Some d.Diag.code) @ [ ("message", Jsonl.Str d.Diag.message) ])

let obj_reply ?id ~status fields = base ?id ~status fields

let exhaustion_reason (e : Guard.exhaustion) =
  match e.Guard.resource with
  | Guard.Steps -> "steps"
  | Guard.Nulls -> "nulls"
  | Guard.Rows -> "rows"
  | Guard.Cqs -> "cqs"
  | Guard.Repair_branches -> "repair-branches"
  | Guard.Checkpoint_bytes -> "checkpoint-bytes"
  | Guard.Deadline -> "deadline"
  | Guard.Memory -> "memory"
  | Guard.Cancelled -> "cancelled"

(* --- client-side reading --------------------------------------------- *)

type reply = {
  id : Jsonl.t option;
  status : string;
  code : string option;
  reason : string option;
  message : string option;
  answers : string list list option;
  json : Jsonl.t;
}

let value_of_json = function
  | Jsonl.Str s -> s
  | Jsonl.Num f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      string_of_int (int_of_float f)
    else string_of_float f
  | Jsonl.Obj [ ("null", Jsonl.Num k) ] ->
    Printf.sprintf "_:%d" (int_of_float k)
  | v -> Jsonl.to_string v

let parse_reply line =
  match Jsonl.parse line with
  | Error msg -> Error (Printf.sprintf "reply is not valid JSON: %s" msg)
  | Ok (Jsonl.Obj _ as obj) -> (
    match Jsonl.str_field "status" obj with
    | None -> Error "reply has no \"status\" field"
    | Some status ->
      let answers =
        match Jsonl.member "answers" obj with
        | Some (Jsonl.List tuples) ->
          Some
            (List.map
               (fun t ->
                 match t with
                 | Jsonl.List vs -> List.map value_of_json vs
                 | v -> [ value_of_json v ])
               tuples)
        | _ -> None
      in
      Ok
        { id = Jsonl.member "id" obj;
          status;
          code = Jsonl.str_field "code" obj;
          reason = Jsonl.str_field "degraded" obj;
          message = Jsonl.str_field "message" obj;
          answers;
          json = obj })
  | Ok _ -> Error "reply must be a JSON object"
