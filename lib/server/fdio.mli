(** Signal-safe, deadline-bounded socket I/O.

    Every syscall a long-running server makes must survive two things
    the one-shot CLI never sees: EINTR (a drain signal or SIGCHLD
    landing mid-call) and EPIPE/ECONNRESET (a client disconnecting
    mid-reply).  These helpers retry the former and surface the latter
    as values, so neither can kill the accept loop or tear a frame.

    All deadlines are absolute times on [Guard.Clock] — the process's
    monotonic clock — never wall time, so an NTP step cannot expire a
    write early or stall a select. *)

val ignore_sigpipe : unit -> unit
(** Install [Signal_ignore] for SIGPIPE (idempotent).  Without it a
    client closing its socket mid-reply kills the whole process;
    with it the write fails with [EPIPE], which {!write_all} reports
    as a value. *)

val select_read :
  Unix.file_descr list ->
  timeout:float ->
  (Unix.file_descr list, Unix.error) result
(** [select] on read fds that survives EINTR: retried with the timeout
    recomputed against the original monotonic deadline, so a SIGCHLD
    storm from the worker pool cannot spin the event loop or surface
    [EINTR] to it.  [Ok []] on timeout. *)

val write_all :
  ?deadline:float -> Unix.file_descr -> string -> (unit, string) result
(** Write the whole string: short writes resume, EINTR retries,
    EAGAIN waits (via [select]) until [deadline] (absolute
    [Guard.Clock] time; no deadline when omitted).  A closed peer, a
    timeout or any other socket error is an [Error] — never an
    exception. *)

val read_available : Unix.file_descr -> max:int -> [
  | `Data of string  (** up to [max] bytes that were ready *)
  | `Eof  (** orderly shutdown by the peer *)
  | `Nothing  (** EAGAIN: nothing buffered right now *)
  | `Error of string  (** connection reset or other socket failure *)
]
(** One nonblocking read.  EINTR retries internally. *)

val read_exact :
  Unix.file_descr ->
  int ->
  (string, [ `Eof | `Torn of int | `Unix of string ]) result
(** Blocking read of exactly [n] bytes.  [`Eof] when the peer closed at
    a record boundary (zero bytes read), [`Torn got] when it closed
    mid-record, EINTR retries.  Worker children use this to block on
    their request pipe. *)

val set_nonblock : Unix.file_descr -> unit
val sleepf : float -> unit
(** [Unix.sleepf] that resumes after EINTR until the full duration has
    elapsed (measured on the monotonic clock). *)
