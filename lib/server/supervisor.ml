module Diag = Mdqa_datalog.Diag
module Metrics = Mdqa_obs.Metrics
module Logger = Mdqa_obs.Logger
module Failpoint = Mdqa_obs.Failpoint

(* --- injectable effects ------------------------------------------------ *)

(* Everything the supervisor does to the outside world goes through
   these, so the qcheck properties can run the whole state machine
   in-process: a fake clock, a recording kill, scripted reaps, a
   deterministic rand, and a spawn that hands back a socketpair
   instead of forking. *)
type hooks = {
  clock : unit -> float;
  kill : int -> unit;
  wait_any : unit -> (int * Unix.process_status) option;
  wait_pid : int -> (int * Unix.process_status) option;
  rand : float -> float;
}

let default_hooks =
  { clock = Mdqa_datalog.Guard.Clock.now;
    kill =
      (fun pid ->
        try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
    wait_any =
      (fun () ->
        match Unix.waitpid [ Unix.WNOHANG ] (-1) with
        | 0, _ -> None
        | pid, status -> Some (pid, status)
        | exception Unix.Unix_error (Unix.ECHILD, _, _) -> None
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> None);
    wait_pid =
      (fun pid ->
        match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ -> None
        | pid, status -> Some (pid, status)
        | exception Unix.Unix_error (Unix.ECHILD, _, _) -> None
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> None);
    rand = Random.float }

(* --- pure policy helpers (property-tested directly) ------------------- *)

(* Consecutive-crash count after one more crash: a worker that stayed
   up past [healthy_after] earned its attempts back, so a slow crash
   loop pays the base delay each time instead of walking to the cap. *)
let next_attempts ~healthy_after ~uptime ~attempts =
  if uptime >= healthy_after then 1 else attempts + 1

let restart_delay policy ~rand ~attempts =
  (* attempts is >= 1 here (it counts the crash that just happened);
     attempt 0 of the backoff curve is the first restart *)
  Backoff.delay policy ~rand ~attempt:(max 0 (attempts - 1))

(* --- state ------------------------------------------------------------- *)

type reply_fn = status:string -> code:string option -> string -> unit

type inflight = {
  reply : reply_fn;
  req_id : Jsonl.t option;
  started : float;
  deadline : float option;
  mutable answered : bool;
}

type phase =
  | Ready
  | Busy of inflight
  | Doomed  (** killed or dying; waiting for the reap *)
  | Cooling of float  (** no process; respawn at this clock time *)

type slot = {
  sid : int;
  mutable proc : Worker.t option;
  mutable phase : phase;
  mutable spawned_at : float;
  mutable attempts : int;  (** consecutive crashes, for backoff *)
  mutable served : int;
  mutable fp_seen : (string * int) list;
      (** failpoint watermark: counts already folded into the parent *)
}

type t = {
  slots : slot array;
  policy : Backoff.policy;
  healthy_after : float;
  watchdog : float option;
  min_ready : int;
  hooks : hooks;
  metrics : Metrics.t option;
  spawn : on_child:(unit -> unit) -> Worker.t;
  on_child : unit -> unit;
  mutable restarts : int;
  mutable recycles : int;
  mutable watchdog_kills : int;
}

let counter t name help =
  Option.map (fun m -> Metrics.counter m ~help name) t.metrics

let bump t name help =
  match counter t name help with Some c -> Metrics.inc c | None -> ()

(* --- spawning ---------------------------------------------------------- *)

let close_siblings t =
  Array.iter
    (fun s ->
      match s.proc with
      | Some w -> (try Unix.close w.Worker.fd with Unix.Unix_error _ -> ())
      | None -> ())
    t.slots

let do_spawn t slot =
  let on_child () =
    (* runs in the freshly forked child *)
    close_siblings t;
    t.on_child ()
  in
  match t.spawn ~on_child with
  | w ->
    slot.proc <- Some w;
    slot.phase <- Ready;
    slot.spawned_at <- t.hooks.clock ();
    slot.served <- 0;
    (* the child inherited the parent's counts at fork; only what it
       adds on top should be folded back *)
    slot.fp_seen <- Failpoint.hits ();
    Logger.info
      ~fields:
        [ ("slot", Logger.Int slot.sid); ("pid", Logger.Int w.Worker.pid) ]
      "worker spawned"
  | exception e ->
    (* fork/socketpair failure (EAGAIN, EMFILE): back off like a crash *)
    slot.attempts <- slot.attempts + 1;
    let d = restart_delay t.policy ~rand:t.hooks.rand ~attempts:slot.attempts in
    slot.phase <- Cooling (t.hooks.clock () +. d);
    Logger.error
      ~fields:
        [ ("slot", Logger.Int slot.sid);
          ("error", Logger.Str (Printexc.to_string e)) ]
      "worker spawn failed"

let start ?(hooks = default_hooks) ?metrics ?(policy = Backoff.default_policy)
    ?(healthy_after = 5.) ?watchdog ?(min_ready = 1) ~count ~spawn ~on_child
    () =
  let t =
    { slots =
        Array.init count (fun sid ->
            { sid;
              proc = None;
              phase = Cooling 0.;
              spawned_at = 0.;
              attempts = 0;
              served = 0;
              fp_seen = [] });
      policy;
      healthy_after;
      watchdog;
      min_ready;
      hooks;
      metrics;
      spawn;
      on_child;
      restarts = 0;
      recycles = 0;
      watchdog_kills = 0 }
  in
  Array.iter (fun slot -> do_spawn t slot) t.slots;
  t

(* --- introspection ----------------------------------------------------- *)

let count t = Array.length t.slots

let alive t =
  Array.fold_left
    (fun n s -> if s.proc <> None then n + 1 else n)
    0 t.slots

let ready t =
  Array.fold_left
    (fun n s -> match s.phase with Ready -> n + 1 | _ -> n)
    0 t.slots

let busy t =
  Array.fold_left
    (fun n s -> match s.phase with Busy _ -> n + 1 | _ -> n)
    0 t.slots

let inflight t =
  Array.fold_left
    (fun n s ->
      match s.phase with Busy i when not i.answered -> n + 1 | _ -> n)
    0 t.slots

let min_ready t = t.min_ready
let restarts t = t.restarts
let recycles t = t.recycles
let watchdog_kills t = t.watchdog_kills

let quorum t = alive t >= t.min_ready

let fds t =
  Array.fold_left
    (fun acc s ->
      match (s.proc, s.phase) with
      | Some w, (Ready | Busy _) -> w.Worker.fd :: acc
      | _ -> acc)
    [] t.slots

(* --- failpoint piggyback ---------------------------------------------- *)

let absorb_fp t slot fp =
  (match t.metrics with
  | None -> ()
  | Some m ->
    List.iter
      (fun (name, count) ->
        let seen =
          Option.value ~default:0 (List.assoc_opt name slot.fp_seen)
        in
        Failpoint.record_in m ~name (count - seen))
      fp);
  slot.fp_seen <-
    List.map
      (fun (name, count) ->
        ( name,
          max count (Option.value ~default:0 (List.assoc_opt name slot.fp_seen))
        ))
      fp

(* --- death and rebirth ------------------------------------------------- *)

let e029_line ~req_id ~cause =
  Protocol.error_reply ?id:req_id
    (Diag.make Diag.Error ~code:"E029"
       (Printf.sprintf "worker crashed while handling this request (%s)"
          cause))

let handle_exit t ~pid ~status =
  let found = ref false in
  Array.iter
    (fun slot ->
      match slot.proc with
      | Some w when w.Worker.pid = pid ->
        found := true;
        let uptime = t.hooks.clock () -. slot.spawned_at in
        let busy_unanswered =
          match slot.phase with
          | Busy i when not i.answered -> Some i
          | _ -> None
        in
        let cls =
          match Worker.classify status with
          | Worker.Recycled when busy_unanswered <> None ->
            (* exiting 0 mid-request is not a recycle, it's a fault *)
            Worker.Crashed "exit 0 mid-request"
          | c -> c
        in
        (match busy_unanswered with
        | Some i ->
          i.answered <- true;
          let cause =
            match cls with Worker.Crashed c -> c | Worker.Recycled -> "exit 0"
          in
          i.reply ~status:"error" ~code:(Some "E029")
            (e029_line ~req_id:i.req_id ~cause)
        | None -> ());
        Worker.close w;
        slot.proc <- None;
        (match cls with
        | Worker.Recycled ->
          t.recycles <- t.recycles + 1;
          bump t "mdqa_server_worker_recycles_total"
            "workers retired voluntarily (max-requests / max-heap)";
          slot.attempts <- 0;
          slot.phase <- Cooling 0.
        | Worker.Crashed cause ->
          t.restarts <- t.restarts + 1;
          bump t "mdqa_server_worker_restarts_total"
            "workers restarted after a crash";
          slot.attempts <-
            next_attempts ~healthy_after:t.healthy_after ~uptime
              ~attempts:slot.attempts;
          let d =
            restart_delay t.policy ~rand:t.hooks.rand ~attempts:slot.attempts
          in
          slot.phase <- Cooling (t.hooks.clock () +. d);
          Logger.error
            ~fields:
              [ ("slot", Logger.Int slot.sid);
                ("pid", Logger.Int pid);
                ("cause", Logger.Str cause);
                ("uptime_s", Logger.Float uptime);
                ("restart_in_s", Logger.Float d) ]
            "worker crashed")
      | _ -> ())
    t.slots;
  !found

(* Reap every child that has exited; returns how many were handled. *)
let reap t =
  let n = ref 0 in
  let rec go () =
    match t.hooks.wait_any () with
    | None -> ()
    | Some (pid, status) ->
      if handle_exit t ~pid ~status then incr n;
      go ()
  in
  go ();
  !n

(* --- dispatch ---------------------------------------------------------- *)

let doom t slot =
  match slot.proc with
  | None -> ()
  | Some w ->
    t.hooks.kill w.Worker.pid;
    (match slot.phase with
    | Busy _ -> () (* keep the inflight; the reap replies E029 *)
    | _ -> slot.phase <- Doomed)

let dispatch t ~line ~req_id ~write_deadline ~reply =
  let rec try_from i =
    if i >= Array.length t.slots then false
    else
      let slot = t.slots.(i) in
      match (slot.phase, slot.proc) with
      | Ready, Some w -> (
        match Worker.dispatch w ~write_deadline line with
        | Ok () ->
          let now = t.hooks.clock () in
          slot.phase <-
            Busy
              { reply;
                req_id;
                started = now;
                deadline = Option.map (fun d -> now +. d) t.watchdog;
                answered = false };
          true
        | Error e ->
          Logger.error
            ~fields:
              [ ("slot", Logger.Int slot.sid);
                ("error", Logger.Str e) ]
            "worker dispatch failed; replacing worker";
          doom t slot;
          try_from (i + 1))
      | _ -> try_from (i + 1)
  in
  try_from 0

(* --- replies ----------------------------------------------------------- *)

let handle_frame t slot payload =
  match Worker.parse_envelope payload with
  | Error e ->
    Logger.error
      ~fields:
        [ ("slot", Logger.Int slot.sid); ("error", Logger.Str e) ]
      "corrupt worker reply; replacing worker";
    (match slot.phase with
    | Busy i when not i.answered ->
      i.answered <- true;
      i.reply ~status:"error" ~code:(Some "E029")
        (e029_line ~req_id:i.req_id ~cause:"corrupt reply stream")
    | _ -> ());
    doom t slot
  | Ok pr -> (
    absorb_fp t slot pr.Worker.fp;
    slot.served <- slot.served + 1;
    match slot.phase with
    | Busy i when not i.answered ->
      i.answered <- true;
      i.reply ~status:pr.Worker.status ~code:pr.Worker.code pr.Worker.line;
      slot.phase <- Ready
    | Busy _ ->
      (* the watchdog already answered and killed this pid: drop the
         late reply, let the reap recycle the slot *)
      ()
    | _ -> ())

let handle_readable t fd =
  Array.iter
    (fun slot ->
      match slot.proc with
      | Some w when w.Worker.fd = fd -> (
        match Worker.poll w with
        | `Nothing -> ()
        | `Frames frames -> List.iter (handle_frame t slot) frames
        | `Eof -> (
          (* the child closed its end: it exited (or is exiting) *)
          match t.hooks.wait_pid w.Worker.pid with
          | Some (pid, status) -> ignore (handle_exit t ~pid ~status)
          | None -> (
            match slot.phase with
            | Busy _ -> () (* reap is imminent; E029 happens there *)
            | _ -> slot.phase <- Doomed))
        | `Error e ->
          Logger.error
            ~fields:
              [ ("slot", Logger.Int slot.sid); ("error", Logger.Str e) ]
            "worker pipe error; replacing worker";
          doom t slot)
      | _ -> ())
    t.slots

(* --- periodic work ----------------------------------------------------- *)

let tick t =
  let now = t.hooks.clock () in
  (* hang watchdog: a worker past its deadline gets the client a W049
     degraded reply immediately and a SIGKILL; the reap restarts it *)
  Array.iter
    (fun slot ->
      match (slot.phase, slot.proc) with
      | Busy i, Some w when (not i.answered)
                            && (match i.deadline with
                               | Some d -> now > d
                               | None -> false) ->
        i.answered <- true;
        t.hooks.kill w.Worker.pid;
        t.watchdog_kills <- t.watchdog_kills + 1;
        bump t "mdqa_server_watchdog_kills_total"
          "workers SIGKILLed for exceeding the request watchdog";
        i.reply ~status:"degraded" ~code:(Some "W049")
          (Protocol.degraded_reply ?id:i.req_id ~code:"W049"
             ~reason:"watchdog" ~answers:None
             ~message:
               (Printf.sprintf
                  "worker exceeded its %.1fs request deadline and was killed"
                  (Option.value ~default:0. t.watchdog))
             ());
        Logger.error
          ~fields:
            [ ("slot", Logger.Int slot.sid);
              ("pid", Logger.Int w.Worker.pid);
              ("busy_s", Logger.Float (now -. i.started)) ]
          "worker hung; killed by watchdog"
      | _ -> ())
    t.slots;
  (* respawns whose cooldown has passed *)
  Array.iter
    (fun slot ->
      match slot.phase with
      | Cooling until when now >= until && slot.proc = None -> do_spawn t slot
      | _ -> ())
    t.slots

(* The next moment tick has something to do: the earliest cooldown
   expiry or watchdog deadline.  None when nothing is pending. *)
let next_wakeup t =
  Array.fold_left
    (fun acc slot ->
      let candidate =
        match slot.phase with
        | Cooling until -> Some until
        | Busy i when not i.answered -> i.deadline
        | _ -> None
      in
      match (acc, candidate) with
      | None, c -> c
      | a, None -> a
      | Some a, Some c -> Some (Float.min a c))
    None t.slots

(* --- drain / shutdown -------------------------------------------------- *)

let abort_inflight t ~code ~reason ~message =
  let n = ref 0 in
  Array.iter
    (fun slot ->
      match slot.phase with
      | Busy i when not i.answered ->
        i.answered <- true;
        incr n;
        i.reply ~status:"degraded" ~code:(Some code)
          (Protocol.degraded_reply ?id:i.req_id ~code ~reason ~answers:None
             ~message ())
      | _ -> ())
    t.slots;
  !n

let shutdown t ~grace =
  (* closing the parent ends EOFs every idle worker, which exits 0 *)
  Array.iter
    (fun slot ->
      match slot.proc with
      | Some w -> (try Unix.close w.Worker.fd with Unix.Unix_error _ -> ())
      | None -> ())
    t.slots;
  let deadline = t.hooks.clock () +. grace in
  let rec wait_all () =
    let live =
      Array.exists (fun s -> s.proc <> None) t.slots
    in
    if live then
      if t.hooks.clock () >= deadline then
        (* stragglers (hung handlers) get the axe *)
        Array.iter
          (fun slot ->
            match slot.proc with
            | Some w ->
              t.hooks.kill w.Worker.pid;
              (match t.hooks.wait_pid w.Worker.pid with
              | Some (pid, status) -> ignore (handle_exit t ~pid ~status)
              | None ->
                (* record-keeping only; the process is dead or dying *)
                slot.proc <- None)
            | None -> ())
          t.slots
      else begin
        let reaped = reap t in
        if reaped = 0 then Fdio.sleepf 0.02;
        wait_all ()
      end
  in
  wait_all ()

(* --- metrics ----------------------------------------------------------- *)

let record_metrics t m =
  let set name help v = Metrics.set (Metrics.gauge m ~help name) v in
  set "mdqa_server_workers_configured" "size of the worker pool"
    (float_of_int (count t));
  set "mdqa_server_workers_alive" "workers with a live process"
    (float_of_int (alive t));
  set "mdqa_server_workers_ready" "workers idle and dispatchable"
    (float_of_int (ready t));
  set "mdqa_server_workers_busy" "workers handling a request"
    (float_of_int (busy t));
  (* make the counters visible in the exposition even before the first
     event of each kind *)
  ignore
    (Metrics.counter m ~help:"workers restarted after a crash"
       "mdqa_server_worker_restarts_total");
  ignore
    (Metrics.counter m
       ~help:"workers retired voluntarily (max-requests / max-heap)"
       "mdqa_server_worker_recycles_total");
  ignore
    (Metrics.counter m
       ~help:"workers SIGKILLed for exceeding the request watchdog"
       "mdqa_server_watchdog_kills_total")

let health_fields t =
  [ ("workers",
     Jsonl.Obj
       [ ("configured", Jsonl.Num (float_of_int (count t)));
         ("alive", Jsonl.Num (float_of_int (alive t)));
         ("ready", Jsonl.Num (float_of_int (ready t)));
         ("busy", Jsonl.Num (float_of_int (busy t)));
         ("min_ready", Jsonl.Num (float_of_int t.min_ready));
         ("restarts", Jsonl.Num (float_of_int t.restarts));
         ("recycles", Jsonl.Num (float_of_int t.recycles));
         ("watchdog_kills", Jsonl.Num (float_of_int t.watchdog_kills)) ]) ]
