module Diag = Mdqa_datalog.Diag
module Guard = Mdqa_datalog.Guard
module Metrics = Mdqa_obs.Metrics
module Trace = Mdqa_obs.Trace
module Logger = Mdqa_obs.Logger
module Failpoint = Mdqa_obs.Failpoint
module Store = Mdqa_store.Store
module Scrub = Mdqa_store.Scrub
module Fsck = Mdqa_store.Fsck

type addr = Unix_path of string | Tcp of string * int

type config = {
  addr : addr;
  max_queue : int;
  max_clients : int;
  read_timeout : float;
  write_timeout : float;
  max_request_bytes : int;
  request_timeout : float option;
  request_max_steps : int option;
  drain_grace : float;
  workers : int;  (** 0 = answer queries inline (no forked pool) *)
  watchdog : float option;  (** per-request hang deadline for workers *)
  min_ready : int;  (** below this many live workers, shed with H054 *)
  worker_max_requests : int;  (** recycle a worker after this many; 0 = off *)
  worker_max_heap_mb : float;  (** recycle past this heap size; 0 = off *)
  scrub_interval : float option;
      (** seconds between online store-scrub steps; [None] = off *)
  scrub_budget : int;  (** bytes the scrubber verifies per step *)
}

let default_config addr =
  { addr;
    max_queue = 64;
    max_clients = 128;
    read_timeout = 10.;
    write_timeout = 10.;
    max_request_bytes = 1 lsl 20;
    request_timeout = None;
    request_max_steps = None;
    drain_grace = 5.;
    workers = 0;
    watchdog = None;
    min_ready = 1;
    worker_max_requests = 10_000;
    worker_max_heap_mb = 0.;
    scrub_interval = None;
    scrub_budget = 65536 }

type conn = {
  fd : Unix.file_descr;
  peer : string;
  buf : Buffer.t;
  mutable line_started : float option;
      (** when the oldest unfinished request line began arriving *)
  mutable alive : bool;
}

type state = {
  cfg : config;
  svc : Service.t;
  mutable conns : conn list;
  queue : (conn * Protocol.request * string) Admission.t;
      (** the raw line rides along: a dispatched request crosses the
          worker pipe verbatim *)
  mutable sup : Supervisor.t option;
  source : Replication.Source.t;
      (** the ship side of replication; inert until a standby fetches *)
  follower : Replication.Follower.t option;
      (** present iff this server started as a standby (--replica-of) *)
  mutable draining : bool;
  mutable drain_deadline : float;
  mutable degraded_events : int;
      (** requests degraded for server reasons (drain, dead pool), not
          budget *)
  mutable crashed : int;
  mutable scrub : Scrub.t option;
      (** the online store scrubber (present iff [scrub_interval] is
          set and the service has a store) *)
  mutable scrub_due : float;
  mutable scrub_repair_pending : bool;
      (** a scrub finding requested a one-shot repair; it runs on the
          next scrub tick, so the tripped-breaker state is observable
          for at least one scrape *)
  mutable scrub_bytes_seen : int;  (** folded into the counter so far *)
  mutable scrub_errors_seen : int;
  mutable trace_dropped_seen : int;
      (** span-ring evictions already folded into
          [mdqa_trace_dropped_total] *)
}

(* A promoted standby IS a primary — on the wire it says so, so a
   cascading follower can point at it.  The distinction survives in
   health fields and the role gauge. *)
let standby st =
  match st.follower with
  | Some f -> not (Replication.Follower.promoted f)
  | None -> false

let role_name st = if standby st then "standby" else "primary"

let role_gauge_value st =
  match st.follower with
  | None -> 0.
  | Some f -> if Replication.Follower.promoted f then 2. else 1.

(* Monotonic: deadlines (drain, write, slow-loris, watchdog) must not
   move when NTP steps the wall clock.  Wall time is only for logs. *)
let now () = Guard.Clock.now ()

let addr_string = function
  | Unix_path p -> p
  | Tcp (h, p) -> Printf.sprintf "%s:%d" h p

let close_conn c =
  if c.alive then (
    c.alive <- false;
    try Unix.close c.fd with Unix.Unix_error _ -> ())

let send st c line =
  if c.alive then
    match
      Fdio.write_all ~deadline:(now () +. st.cfg.write_timeout) c.fd line
    with
    | Ok () -> ()
    | Error _ -> close_conn c

(* Every reply leaving the server is accounted here, so the exposition's
   per-status totals always sum to the requests answered — the chaos
   harness holds us to that. *)
let send_reply st c ~status ?code line =
  let m = Service.metrics st.svc in
  Metrics.inc
    (Metrics.counter m ~help:"replies sent, by status"
       ~labels:[ ("status", status) ]
       "mdqa_server_replies_total");
  (match code with
  | Some code ->
    Metrics.inc
      (Metrics.counter m ~help:"replies carrying a diagnostic code"
         ~labels:[ ("code", code) ]
         "mdqa_server_diag_replies_total")
  | None -> ());
  send st c line

let count_shed st =
  Metrics.inc
    (Metrics.counter (Service.metrics st.svc)
       ~help:"requests or connections shed under overload"
       "mdqa_server_shed_total")

let worker_defaults cfg =
  { Worker.timeout = cfg.request_timeout; max_steps = cfg.request_max_steps }

(* Promotion: stop following, take ownership of the store (periodic
   checkpoints back on, one forced immediately so the new primary's
   authority over the bytes is durable).  The [repl.promote] failpoint
   fires first, so fault injection can kill the promotion path before
   any state changes — retrying is then safe. *)
let promote st ~reason =
  match st.follower with
  | Some f when not (Replication.Follower.promoted f) ->
    Failpoint.hit "repl.promote";
    Replication.Follower.mark_promoted f;
    Service.enable_periodic_checkpoints st.svc;
    ignore (Service.checkpoint st.svc ~force:true);
    Logger.info
      ~fields:
        [ ("reason", Logger.Str reason);
          ("old_primary", Logger.Str (Replication.Follower.primary_addr f)) ]
      "mdqa serve: standby promoted to primary (H055)";
    true
  | _ -> false

(* --- socket setup ----------------------------------------------------- *)

let listen_socket = function
  | Unix_path path ->
    if Sys.file_exists path then (
      try Unix.unlink path with Unix.Unix_error _ -> ());
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    Fdio.set_nonblock fd;
    fd
  | Tcp (host, port) ->
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    let inet =
      try Unix.inet_addr_of_string host
      with _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
    in
    Unix.bind fd (Unix.ADDR_INET (inet, port));
    Unix.listen fd 64;
    Fdio.set_nonblock fd;
    fd

let remove_unix_path = function
  | Unix_path p -> ( try Unix.unlink p with Unix.Unix_error _ | Sys_error _ -> ())
  | Tcp _ -> ()

(* --- request answering ------------------------------------------------ *)

let server_fields st =
  [ ("queue",
     Jsonl.Obj
       [ ("depth", Jsonl.Num (float_of_int (Admission.length st.queue)));
         ("capacity", Jsonl.Num (float_of_int (Admission.capacity st.queue)));
         ("shed", Jsonl.Num (float_of_int (Admission.shed st.queue)));
         ("accepted",
          Jsonl.Num (float_of_int (Admission.accepted st.queue))) ]);
    ("connections",
     Jsonl.Num (float_of_int (List.length (List.filter (fun c -> c.alive) st.conns))));
    ("crashed_requests", Jsonl.Num (float_of_int st.crashed));
    ("draining", Jsonl.Bool st.draining);
    ("role", Jsonl.Str (role_name st)) ]
  @ (match st.follower with
    | Some f ->
      [ ("replication",
         Jsonl.Obj
           (Replication.Follower.lag_fields f
           @ [ ("promoted", Jsonl.Bool (Replication.Follower.promoted f)) ]))
      ]
    | None -> [])
  @ match st.sup with Some s -> Supervisor.health_fields s | None -> []

(* Refresh scrape-time gauges and render the Prometheus exposition.
   The reply counter for the metrics request itself is bumped after
   rendering, so an exposition never counts its own reply. *)
let exposition st =
  Service.record_metrics st.svc;
  let m = Service.metrics st.svc in
  let set name help v = Metrics.set (Metrics.gauge m ~help name) v in
  set "mdqa_server_admission_depth" "requests waiting in the admission queue"
    (float_of_int (Admission.length st.queue));
  set "mdqa_server_admission_capacity" "admission queue capacity"
    (float_of_int (Admission.capacity st.queue));
  set "mdqa_server_admission_accepted" "requests admitted to the queue"
    (float_of_int (Admission.accepted st.queue));
  set "mdqa_server_connections" "live client connections"
    (float_of_int (List.length (List.filter (fun c -> c.alive) st.conns)));
  set "mdqa_server_draining" "1 while the server drains"
    (if st.draining then 1. else 0.);
  set "mdqa_replication_role"
    "replication role (0=primary, 1=standby, 2=promoted standby)"
    (role_gauge_value st);
  (match Service.store_path st.svc with
  | Some p ->
    set "mdqa_store_generation" "previous snapshot generations on disk"
      (float_of_int (Store.generations ~path:p))
  | None -> ());
  (match st.sup with
  | Some s -> Supervisor.record_metrics s m
  | None -> ());
  (* Process heap health, so growth is observable without a bench run.
     [Gc.quick_stat] reads counters only — no heap traversal. *)
  let g = Gc.quick_stat () in
  set "mdqa_process_heap_words" "major heap size in words"
    (float_of_int g.Gc.heap_words);
  set "mdqa_process_minor_collections_total" "minor GC collections"
    (float_of_int g.Gc.minor_collections);
  set "mdqa_process_major_collections_total" "major GC collections"
    (float_of_int g.Gc.major_collections);
  (* Span-ring evictions, folded like the scrub counters: the tracer
     reports a lifetime total, the registry wants increments. *)
  (match Trace.installed () with
  | Some tr ->
    let dropped = Trace.dropped tr in
    Metrics.add
      (Metrics.counter m ~help:"trace spans evicted from the ring buffer"
         "mdqa_trace_dropped_total")
      (max 0 (dropped - st.trace_dropped_seen));
    st.trace_dropped_seen <- dropped
  | None -> ());
  Metrics.to_prometheus (Metrics.snapshot m)

let spans_json () =
  match Trace.installed () with
  | None -> Jsonl.List []
  | Some tr ->
    Jsonl.List
      (List.map
         (fun (e : Trace.event) ->
           Jsonl.Obj
             ([ ("name", Jsonl.Str e.Trace.name);
                ("ts", Jsonl.Num e.Trace.ts);
                ("dur", Jsonl.Num e.Trace.dur);
                ("depth", Jsonl.Num (float_of_int e.Trace.depth)) ]
             @
             match e.Trace.attrs with
             | [] -> []
             | attrs ->
               [ ("attrs",
                  Jsonl.Obj (List.map (fun (k, v) -> (k, Jsonl.Str v)) attrs))
               ]))
         (Trace.events tr))

let profile_json () =
  match Mdqa_obs.Profile.installed () with
  | None -> Jsonl.Obj []
  | Some p -> (
    match Jsonl.parse (Mdqa_obs.Profile.to_json (Mdqa_obs.Profile.snapshot p)) with
    | Ok j -> j
    | Error _ -> Jsonl.Obj [])

let answer st conn req =
  let id = Protocol.request_id req in
  let compute () =
    match req with
    | Protocol.Ping _ ->
      (Protocol.complete_reply ?id ~answers:None (), "complete", None)
    | Protocol.Health _ ->
      ( Protocol.obj_reply ?id ~status:"complete"
          (Service.health_fields st.svc
          @ [ ("server", Jsonl.Obj (server_fields st)) ]),
        "complete",
        None )
    | Protocol.Ready _ ->
      let ok, reason = Service.ready st.svc in
      ( Protocol.obj_reply ?id ~status:"complete"
          [ ("ready", Jsonl.Bool ok); ("reason", Jsonl.Str reason) ],
        "complete",
        None )
    | Protocol.Metrics _ ->
      ( Protocol.obj_reply ?id ~status:"complete"
          [ ("exposition", Jsonl.Str (exposition st)) ],
        "complete",
        None )
    | Protocol.Spans _ ->
      ( Protocol.obj_reply ?id ~status:"complete"
          [ ("spans", spans_json ()) ],
        "complete",
        None )
    | Protocol.Profile _ ->
      ( Protocol.obj_reply ?id ~status:"complete"
          [ ("profile", profile_json ());
            ("installed",
             Jsonl.Bool (Mdqa_obs.Profile.active ())) ],
        "complete",
        None )
    | Protocol.Repl_status { acked; _ } ->
      if standby st then
        (* a standby reports its own follower state; it has no
           standbys of its own to record acks from *)
        ( Protocol.obj_reply ?id ~status:"complete"
            (("role", Jsonl.Str "standby")
            :: Replication.Follower.status_fields (Option.get st.follower)),
          "complete",
          None )
      else begin
        Option.iter (Replication.Source.record_ack st.source) acked;
        ( Protocol.obj_reply ?id ~status:"complete"
            (("role", Jsonl.Str "primary")
            :: Replication.Source.status_fields st.source),
          "complete",
          None )
      end
    | Protocol.Repl_fetch { what; offset; len; epoch; _ } ->
      if standby st then
        let d =
          Diag.make Diag.Error ~code:"E031"
            "this server is a standby; fetch from its primary"
        in
        (Protocol.error_reply ?id d, "error", Some "E031")
      else (
        match Replication.Source.fetch st.source ~what ~offset ~len ~epoch with
        | Ok fields ->
          (Protocol.obj_reply ?id ~status:"complete" fields, "complete", None)
        | Error d -> (Protocol.error_reply ?id d, "error", Some d.Diag.code))
    | Protocol.Promote _ ->
      if promote st ~reason:"requested" then
        ( Protocol.obj_reply ?id ~status:"complete"
            [ ("promoted", Jsonl.Bool true);
              ("code", Jsonl.Str "H055");
              ("mnemonic", Jsonl.Str "promoted") ],
          "complete",
          Some "H055" )
      else
        ( Protocol.obj_reply ?id ~status:"complete"
            [ ("promoted", Jsonl.Bool false);
              ("role", Jsonl.Str (role_name st));
              ("message", Jsonl.Str "already a primary") ],
          "complete",
          None )
    | Protocol.Query _ ->
      (* the same code path a forked worker runs, so a reply is
         byte-identical with or without the pool; a following standby
         tags complete answers with the W050 stale-read warning *)
      Worker.answer_query ~svc:st.svc ~defaults:(worker_defaults st.cfg)
        ~stale:(standby st) req
  in
  let reply, status, code =
    match compute () with
    | r -> r
    | exception e ->
      (* crash isolation: one poisoned request costs one error reply *)
      st.crashed <- st.crashed + 1;
      Metrics.inc
        (Metrics.counter (Service.metrics st.svc)
           ~help:"requests whose handler raised" "mdqa_server_crashed_total");
      Logger.error
        ~fields:[ ("error", Logger.Str (Printexc.to_string e)) ]
        "request crashed";
      ( Protocol.error_reply ?id
          (Diag.make Diag.Error ~code:"E027"
             (Printf.sprintf "request crashed: %s" (Printexc.to_string e))),
        "error",
        Some "E027" )
  in
  send_reply st conn ~status ?code reply;
  Service.request_served st.svc

(* answer never lets an exception out: the reply computation is wrapped
   above, and [send] reports socket failures by closing the conn.  Each
   request is timed into the latency histogram and carries a
   [serve.request] span when a tracer is installed. *)
let answer st conn req =
  let m = Service.metrics st.svc in
  let kind = Protocol.request_kind req in
  Metrics.inc
    (Metrics.counter m ~help:"requests received, by kind"
       ~labels:[ ("kind", kind) ]
       "mdqa_server_requests_total");
  let t0 = Guard.Clock.now () in
  (try
     Trace.with_span "serve.request"
       ~attrs:[ ("kind", kind) ]
       (fun () -> answer st conn req)
   with e ->
     st.crashed <- st.crashed + 1;
     Logger.error
       ~fields:[ ("error", Logger.Str (Printexc.to_string e)) ]
       "request handling crashed");
  Metrics.observe
    (Metrics.histogram m ~help:"request handling latency"
       "mdqa_server_request_seconds")
    (Guard.Clock.now () -. t0)

(* --- admission -------------------------------------------------------- *)

let handle_line st conn line =
  let line = String.trim line in
  if line <> "" then
    match Protocol.parse_request line with
    | Error d ->
      (* malformed request: answer and keep the connection; the peer
         may have well-formed requests behind it *)
      send_reply st conn ~status:"error" ~code:d.Diag.code
        (Protocol.error_reply d)
    | Ok req ->
      if st.draining then (
        st.degraded_events <- st.degraded_events + 1;
        send_reply st conn ~status:"degraded" ~code:"H053"
          (Protocol.degraded_reply
             ?id:(Protocol.request_id req)
             ~code:"H053" ~reason:"drain" ~answers:None
             ~message:"server is draining; retry against a fresh instance"
             ()))
      else if not (Admission.offer st.queue (conn, req, line)) then (
        count_shed st;
        send_reply st conn ~status:"degraded" ~code:"W047"
          (Protocol.degraded_reply
             ?id:(Protocol.request_id req)
             ~code:"W047" ~reason:"overload" ~answers:None
             ~message:
               (Printf.sprintf
                  "admission queue full (%d); request shed, retry with backoff"
                  (Admission.capacity st.queue))
             ()))

let rec drain_lines st conn =
  let s = Buffer.contents conn.buf in
  match String.index_opt s '\n' with
  | None ->
    if String.length s > st.cfg.max_request_bytes then (
      send_reply st conn ~status:"error" ~code:"E025"
        (Protocol.error_reply
           (Diag.make Diag.Error ~code:"E025"
              (Printf.sprintf "request exceeds %d bytes"
                 st.cfg.max_request_bytes)));
      close_conn conn)
    else if s = "" then conn.line_started <- None
    else if conn.line_started = None then conn.line_started <- Some (now ())
  | Some i ->
    let line = String.sub s 0 i in
    let rest_len = String.length s - i - 1 in
    Buffer.clear conn.buf;
    Buffer.add_substring conn.buf s (i + 1) rest_len;
    conn.line_started <- (if rest_len > 0 then Some (now ()) else None);
    if String.length line > st.cfg.max_request_bytes then (
      send_reply st conn ~status:"error" ~code:"E025"
        (Protocol.error_reply
           (Diag.make Diag.Error ~code:"E025"
              (Printf.sprintf "request exceeds %d bytes"
                 st.cfg.max_request_bytes)));
      close_conn conn)
    else (
      handle_line st conn line;
      if conn.alive then drain_lines st conn)

let feed st conn =
  match Fdio.read_available conn.fd ~max:65536 with
  | `Nothing -> ()
  | `Eof | `Error _ -> close_conn conn
  | `Data chunk ->
    if conn.line_started = None then conn.line_started <- Some (now ());
    Buffer.add_string conn.buf chunk;
    drain_lines st conn

let check_slow_loris st =
  let t = now () in
  List.iter
    (fun c ->
      match c.line_started with
      | Some t0 when c.alive && t -. t0 > st.cfg.read_timeout ->
        send_reply st c ~status:"error" ~code:"E026"
          (Protocol.error_reply
             (Diag.make Diag.Error ~code:"E026"
                (Printf.sprintf
                   "request line not completed within %.1fs"
                   st.cfg.read_timeout)));
        close_conn c
      | _ -> ())
    st.conns

let rec accept_loop st lfd =
  match Unix.accept ~cloexec:true lfd with
  | exception
      Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
    ()
  | exception Unix.Unix_error _ -> ()
  | fd, sa ->
    Fdio.set_nonblock fd;
    let peer =
      match sa with
      | Unix.ADDR_UNIX _ -> "local"
      | Unix.ADDR_INET (a, p) ->
        Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
    in
    let c =
      { fd; peer; buf = Buffer.create 256; line_started = None; alive = true }
    in
    ignore c.peer;
    if
      List.length (List.filter (fun c -> c.alive) st.conns)
      >= st.cfg.max_clients
    then (
      (* connection-level shedding: refuse politely, don't hang *)
      count_shed st;
      send_reply st c ~status:"degraded" ~code:"W047"
        (Protocol.degraded_reply ~code:"W047" ~reason:"overload" ~answers:None
           ~message:"too many connections; retry with backoff" ());
      close_conn c)
    else st.conns <- c :: st.conns;
    accept_loop st lfd

(* --- dispatch to the pool --------------------------------------------- *)

(* The reply closure the supervisor invokes when the worker's frame
   (or its obituary) comes back: same accounting as an inline answer —
   reply counters via [send_reply], periodic checkpoints via
   [request_served], the latency histogram (measured dispatch-to-reply
   here) and the crash counter when the worker reported E027. *)
let dispatch_query st sup conn req line =
  let m = Service.metrics st.svc in
  let req_id = Protocol.request_id req in
  let t0 = now () in
  let reply ~status ~code out_line =
    (match code with
    | Some "E027" ->
      st.crashed <- st.crashed + 1;
      Metrics.inc
        (Metrics.counter m ~help:"requests whose handler raised"
           "mdqa_server_crashed_total")
    | _ -> ());
    send_reply st conn ~status ?code out_line;
    Service.request_served st.svc;
    Metrics.observe
      (Metrics.histogram m ~help:"request handling latency"
         "mdqa_server_request_seconds")
      (now () -. t0)
  in
  let accepted =
    Supervisor.dispatch sup ~line ~req_id
      ~write_deadline:(now () +. st.cfg.write_timeout)
      ~reply
  in
  if accepted then
    Metrics.inc
      (Metrics.counter m ~help:"requests received, by kind"
         ~labels:[ ("kind", Protocol.request_kind req) ]
         "mdqa_server_requests_total");
  accepted

let shed_dead_query st conn req =
  (* not enough live workers to promise progress: refuse the query
     outright rather than park it on a dead pool *)
  st.degraded_events <- st.degraded_events + 1;
  send_reply st conn ~status:"degraded" ~code:"H054"
    (Protocol.degraded_reply
       ?id:(Protocol.request_id req)
       ~code:"H054" ~reason:"workers" ~answers:None
       ~message:"worker pool unavailable (crash backoff); retry with backoff"
       ())

let process_queue st =
  match st.sup with
  | None ->
    let budget = ref (Admission.length st.queue) in
    while !budget > 0 do
      (match Admission.take st.queue with
       | None -> budget := 1
       | Some (conn, req, _line) -> answer st conn req);
      decr budget
    done
  | Some sup ->
    (* strict FIFO: a query head with no ready worker blocks the queue
       until a reply or a respawn frees one.  Below quorum, queries are
       refused outright (H054) instead of parking on a dead pool — but
       non-query requests are still answered inline: the control plane
       stays responsive through any worker storm. *)
    let continue = ref true in
    while !continue do
      match Admission.peek st.queue with
      | None -> continue := false
      | Some (conn, req, line) -> (
        match req with
        | Protocol.Query _ ->
          if not (Supervisor.quorum sup) then begin
            ignore (Admission.take st.queue);
            shed_dead_query st conn req
          end
          else if dispatch_query st sup conn req line then
            ignore (Admission.take st.queue)
          else continue := false
        | _ ->
          ignore (Admission.take st.queue);
          answer st conn req)
    done

let expire_queue st =
  let rec go () =
    match Admission.take st.queue with
    | None -> ()
    | Some (conn, req, _line) ->
      st.degraded_events <- st.degraded_events + 1;
      send_reply st conn ~status:"degraded" ~code:"H053"
        (Protocol.degraded_reply
           ?id:(Protocol.request_id req)
           ~code:"H053" ~reason:"drain" ~answers:None
           ~message:"drain deadline reached before this request ran" ());
      go ()
  in
  go ()

(* --- online scrub ------------------------------------------------------ *)

(* A scrub finding means the bytes under the server are not the bytes
   it wrote: trip the checkpoint breaker at once (evidence beats
   waiting for three checkpoint failures) and schedule one repair
   attempt for the next scrub tick — deferred a tick so the open
   breaker is scrapeable before repair heals it.  The service keeps
   answering from its in-memory fixpoint throughout. *)
let scrub_found st findings =
  List.iter
    (fun f ->
      Logger.warn
        ~fields:
          [ ("file", Logger.Str f.Scrub.file);
            ("offset", Logger.Int f.Scrub.offset);
            ("reason", Logger.Str f.Scrub.reason) ]
        "mdqa serve: scrub found store damage")
    findings;
  Breaker.trip (Service.breaker st.svc);
  st.scrub_repair_pending <- true

(* The one-shot repair: the fsck salvage chain, with a standby's
   stage 3 wired to a full re-sync from its primary (a standby's store
   must stay byte-identical to the primary's, so local salvage output
   would be divergence — re-shipping is the only honest repair). *)
let scrub_repair st =
  match Service.store_path st.svc with
  | None -> ()
  | Some path ->
    let resync =
      match st.follower with
      | Some f when not (Replication.Follower.promoted f) ->
        Some
          (fun () ->
            match Replication.Follower.initial_sync f with
            | Ok () -> Ok ()
            | Error d -> Error d.Diag.message)
      | _ -> None
    in
    Metrics.inc
      (Metrics.counter (Service.metrics st.svc)
         ~help:"scrub-triggered repair attempts"
         "mdqa_store_scrub_repairs_total");
    let rep = Fsck.repair ?resync ~path () in
    if rep.Fsck.repaired then
      Logger.info
        ~fields:
          [ ("path", Logger.Str path);
            ("quarantined",
             Logger.Str (String.concat "," rep.Fsck.quarantined)) ]
        "mdqa serve: scrub repair succeeded"
    else if rep.Fsck.status <> Fsck.Clean then
      Logger.error
        ~fields:
          [ ("path", Logger.Str path);
            ("status", Logger.Str (Fsck.status_name rep.Fsck.status)) ]
        "mdqa serve: scrub repair failed (E032); serving from memory only"

let scrub_tick st sc =
  let m = Service.metrics st.svc in
  if st.scrub_repair_pending then begin
    st.scrub_repair_pending <- false;
    (try scrub_repair st
     with e ->
       Logger.error
         ~fields:[ ("error", Logger.Str (Printexc.to_string e)) ]
         "mdqa serve: scrub repair crashed");
    (* restart the walk: the files under the scrubber just changed *)
    Scrub.close sc
  end
  else begin
    let findings = Scrub.tick sc in
    Metrics.add
      (Metrics.counter m ~help:"store bytes re-verified by the online scrubber"
         "mdqa_store_scrub_bytes_total")
      (max 0 (Scrub.bytes_scrubbed sc - st.scrub_bytes_seen));
    st.scrub_bytes_seen <- Scrub.bytes_scrubbed sc;
    Metrics.add
      (Metrics.counter m
         ~help:"store damage found by the online scrubber (injected faults \
                included)"
         "mdqa_store_scrub_errors_total")
      (max 0 (Scrub.errors_found sc - st.scrub_errors_seen));
    st.scrub_errors_seen <- Scrub.errors_found sc;
    if findings <> [] then scrub_found st findings
  end

(* --- the loop --------------------------------------------------------- *)

let drain_pipe fd =
  let b = Bytes.create 64 in
  let rec go () =
    match Unix.read fd b 0 64 with
    | 0 -> ()
    | _ -> go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

let run ?follower cfg svc =
  Fdio.ignore_sigpipe ();
  let lfd = listen_socket cfg.addr in
  let pr, pw = Unix.pipe ~cloexec:true () in
  Fdio.set_nonblock pr;
  Fdio.set_nonblock pw;
  let drain_flag = ref false in
  let wake () =
    try ignore (Unix.write pw (Bytes.of_string "x") 0 1)
    with Unix.Unix_error _ -> ()
  in
  let on_signal _ =
    drain_flag := true;
    wake ()
  in
  let prev_term = Sys.signal Sys.sigterm (Sys.Signal_handle on_signal) in
  let prev_int = Sys.signal Sys.sigint (Sys.Signal_handle on_signal) in
  let st =
    { cfg;
      svc;
      conns = [];
      queue = Admission.create ~capacity:cfg.max_queue;
      sup = None;
      source =
        Replication.Source.create ~metrics:(Service.metrics svc)
          ~store_path:(Service.store_path svc);
      follower;
      draining = false;
      drain_deadline = 0.;
      degraded_events = 0;
      crashed = 0;
      scrub = None;
      scrub_due = 0.;
      scrub_repair_pending = false;
      scrub_bytes_seen = 0;
      scrub_errors_seen = 0;
      trace_dropped_seen = 0 }
  in
  (match (cfg.scrub_interval, Service.store_path svc) with
  | Some _, Some path ->
    st.scrub <- Some (Scrub.create ~budget:cfg.scrub_budget ~path ())
  | _ -> ());
  (* Fork the pool only now: the children share the warmed-up fixpoint
     copy-on-write, and [on_child] (run in each fresh child, at every
     respawn) closes whatever parent fds exist at that moment. *)
  let prev_chld = ref None in
  if cfg.workers > 0 then begin
    let on_child () =
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      (try Unix.close pr with Unix.Unix_error _ -> ());
      (try Unix.close pw with Unix.Unix_error _ -> ());
      List.iter
        (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
        st.conns
    in
    let spawn ~on_child =
      Worker.spawn ~svc ~defaults:(worker_defaults cfg)
        ~recycle:
          { Worker.max_requests = cfg.worker_max_requests;
            max_heap_mb = cfg.worker_max_heap_mb }
        ~on_child ()
    in
    st.sup <-
      Some
        (Supervisor.start ~metrics:(Service.metrics svc)
           ?watchdog:cfg.watchdog ~min_ready:cfg.min_ready ~count:cfg.workers
           ~spawn ~on_child ());
    (* SIGCHLD only wakes the select; the reap happens in the loop *)
    prev_chld :=
      Some (Sys.signal Sys.sigchld (Sys.Signal_handle (fun _ -> wake ())))
  end;
  let listener_open = ref true in
  Logger.info
    ~fields:
      [ ("addr", Logger.Str (addr_string cfg.addr));
        ("workers", Logger.Int cfg.workers) ]
    "mdqa serve: listening";
  let finished = ref false in
  while not !finished do
    if !drain_flag && not st.draining then (
      st.draining <- true;
      st.drain_deadline <- now () +. cfg.drain_grace;
      if !listener_open then (
        (try Unix.close lfd with Unix.Unix_error _ -> ());
        listener_open := false;
        remove_unix_path cfg.addr);
      Logger.info
        ~fields:[ ("grace_s", Logger.Float cfg.drain_grace) ]
        "mdqa serve: draining");
    st.conns <- List.filter (fun c -> c.alive) st.conns;
    (match st.sup with
    | Some sup ->
      ignore (Supervisor.reap sup);
      Supervisor.tick sup
    | None -> ());
    let worker_fds =
      match st.sup with Some sup -> Supervisor.fds sup | None -> []
    in
    let read_fds =
      (if !listener_open then [ lfd ] else [])
      @ (pr :: worker_fds)
      @ List.map (fun c -> c.fd) st.conns
    in
    let tmo =
      match st.sup with
      | None -> if Admission.is_empty st.queue then 0.25 else 0.
      | Some sup -> (
        (* queued work makes progress only via a worker event or a
           scheduled tick, both of which wake the select; no spin *)
        match Supervisor.next_wakeup sup with
        | None -> 0.25
        | Some at -> Float.min 0.25 (Float.max 0. (at -. now ())))
    in
    let tmo =
      (* don't let an idle select oversleep the next scrub step *)
      match st.scrub with
      | Some _ when not st.draining ->
        Float.min tmo (Float.max 0. (st.scrub_due -. now ()))
      | _ -> tmo
    in
    (match Fdio.select_read read_fds ~timeout:tmo with
     | Error Unix.EBADF ->
       (* a conn closed underneath us; the alive filter above cleans
          it up next iteration *)
       st.conns <- List.filter (fun c -> c.alive) st.conns
     | Error _ -> ()
     | Ok ready ->
       if List.mem pr ready then drain_pipe pr;
       (match st.sup with
       | Some sup ->
         List.iter
           (fun fd ->
             if List.mem fd ready then Supervisor.handle_readable sup fd)
           worker_fds
       | None -> ());
       if !listener_open && List.mem lfd ready then accept_loop st lfd;
       List.iter
         (fun c -> if c.alive && List.mem c.fd ready then feed st c)
         st.conns);
    check_slow_loris st;
    process_queue st;
    (* the standby's replication quantum: heartbeat / fetch / apply
       when the poll interval is due.  A crash here (including an
       injected repl.* failpoint surfacing through the fetch path)
       costs one tick, never the serve loop. *)
    (match st.follower with
    | Some f when (not (Replication.Follower.promoted f)) && not st.draining
      -> (
      match
        Replication.Follower.tick f
          ~apply:(fun records -> Service.apply_replicated st.svc records)
          ~resync:(fun snap -> Service.install_snapshot st.svc snap)
      with
      | `Idle | `Applied _ -> ()
      | `Lost -> (
        Logger.warn
          ~fields:
            [ ("primary",
               Logger.Str (Replication.Follower.primary_addr f)) ]
          "mdqa serve: primary lost; promoting standby";
        try ignore (promote st ~reason:"primary-loss")
        with e ->
          Logger.error
            ~fields:[ ("error", Logger.Str (Printexc.to_string e)) ]
            "mdqa serve: promotion failed")
      | exception e ->
        Logger.error
          ~fields:[ ("error", Logger.Str (Printexc.to_string e)) ]
          "mdqa serve: replication tick crashed")
    | _ -> ());
    (* the scrub quantum: bounded byte verification between requests.
       A crash here (including an injected store.fsck fault in the
       repair path) costs one tick, never the serve loop. *)
    (match (st.scrub, cfg.scrub_interval) with
    | Some sc, Some interval when (not st.draining) && now () >= st.scrub_due
      -> (
      st.scrub_due <- now () +. interval;
      try scrub_tick st sc
      with e ->
        Logger.error
          ~fields:[ ("error", Logger.Str (Printexc.to_string e)) ]
          "mdqa serve: scrub tick crashed")
    | _ -> ());
    if st.draining then begin
      if now () > st.drain_deadline then begin
        expire_queue st;
        match st.sup with
        | Some sup ->
          let aborted =
            Supervisor.abort_inflight sup ~code:"H053" ~reason:"drain"
              ~message:"drain deadline reached before this request finished"
          in
          st.degraded_events <- st.degraded_events + aborted
        | None -> ()
      end;
      let inflight =
        match st.sup with Some sup -> Supervisor.inflight sup | None -> 0
      in
      if Admission.is_empty st.queue && inflight = 0 then finished := true
    end
  done;
  List.iter close_conn st.conns;
  Sys.set_signal Sys.sigterm prev_term;
  Sys.set_signal Sys.sigint prev_int;
  (match !prev_chld with
  | Some prev -> Sys.set_signal Sys.sigchld prev
  | None -> ());
  (match st.sup with
  | Some sup -> Supervisor.shutdown sup ~grace:2.
  | None -> ());
  (try Unix.close pr with Unix.Unix_error _ -> ());
  (try Unix.close pw with Unix.Unix_error _ -> ());
  Option.iter Scrub.close st.scrub;
  Option.iter Replication.Follower.close st.follower;
  let checkpoint_failed =
    if standby st then
      (* a following standby never writes the store: its on-disk bytes
         are the primary's, and must stay byte-identical for the next
         sync to resume instead of re-shipping *)
      false
    else
      match Service.checkpoint svc ~force:true with
    | `Written bytes ->
      Logger.info
        ~fields:[ ("bytes", Logger.Int bytes) ]
        "mdqa serve: final checkpoint";
      false
    | `No_store -> false
    | `Breaker_open _ -> false
    | `Failed msg ->
      Logger.error
        ~fields:[ ("error", Logger.Str msg) ]
        "mdqa serve: final checkpoint failed";
      true
    | exception e ->
      Logger.error
        ~fields:[ ("error", Logger.Str (Printexc.to_string e)) ]
        "mdqa serve: final checkpoint failed";
      true
  in
  Service.close svc;
  Logger.info
    ~fields:
      [ ("requests", Logger.Int (Service.requests svc));
        ("shed", Logger.Int (Admission.shed st.queue));
        ("crashed", Logger.Int st.crashed);
        ("degraded", Logger.Int st.degraded_events);
        ("worker_restarts",
         Logger.Int
           (match st.sup with Some s -> Supervisor.restarts s | None -> 0))
      ]
    "mdqa serve: drained";
  if
    st.degraded_events > 0 || checkpoint_failed
    || not (Service.warm_saturated svc)
  then 2
  else 0
