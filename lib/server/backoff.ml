type policy = {
  base : float;
  cap : float;
  max_attempts : int;
  budget : float;
}

let default_policy =
  { base = 0.05; cap = 2.0; max_attempts = 6; budget = 10.0 }

let policy ?(base = default_policy.base) ?(cap = default_policy.cap)
    ?(max_attempts = default_policy.max_attempts)
    ?(budget = default_policy.budget) () =
  if base <= 0. then invalid_arg "Backoff.policy: base <= 0";
  if cap < base then invalid_arg "Backoff.policy: cap < base";
  if max_attempts < 0 then invalid_arg "Backoff.policy: max_attempts < 0";
  if budget < 0. then invalid_arg "Backoff.policy: budget < 0";
  { base; cap; max_attempts; budget }

(* base * 2^attempt without float overflow: once the exponential passes
   the cap it stays there, so large attempt counts short-circuit. *)
let ceiling p ~attempt =
  let attempt = max 0 attempt in
  if attempt >= 60 then p.cap
  else Float.min p.cap (p.base *. Float.of_int (1 lsl attempt))

let delay p ~rand ~attempt =
  let bound = ceiling p ~attempt in
  Float.max 0. (Float.min bound (rand bound))

type t = { policy : policy; mutable attempts : int; mutable slept : float }

let start policy = { policy; attempts = 0; slept = 0. }

let attempts t = t.attempts
let slept t = t.slept

let next t ~rand =
  if t.attempts >= t.policy.max_attempts then None
  else begin
    let d = delay t.policy ~rand ~attempt:t.attempts in
    if t.slept +. d > t.policy.budget then None
    else begin
      t.attempts <- t.attempts + 1;
      t.slept <- t.slept +. d;
      Some d
    end
  end
