(** Bounded FIFO admission queue with load shedding.

    The server parks parsed requests here between event-loop
    iterations.  The capacity is the overload contract: an [offer]
    beyond it is refused immediately — the caller replies
    [degraded:overload] (W047) instead of letting latency grow without
    bound — and counted, so health reports expose how much traffic was
    shed.  Not thread-safe; the server loop is single-threaded. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument when [capacity < 1]. *)

val offer : 'a t -> 'a -> bool
(** Enqueue, or refuse ([false]) when full.  Refusals increment
    {!shed}. *)

val take : 'a t -> 'a option
(** Dequeue in arrival order. *)

val peek : 'a t -> 'a option
(** Head of the queue without removing it.  The supervised dispatch
    loop peeks before committing a request to a worker so that a
    dispatch refusal (no ready worker) leaves arrival order intact. *)

val length : 'a t -> int
val capacity : 'a t -> int
val is_empty : 'a t -> bool

val shed : 'a t -> int
(** Offers refused since creation. *)

val accepted : 'a t -> int
(** Offers admitted since creation. *)
