type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Bad of string

let max_depth = 512

type cursor = { s : string; mutable pos : int }

let fail c msg = raise (Bad (Printf.sprintf "byte %d: %s" c.pos msg))

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      true
    | _ -> false
  do
    ()
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail c (Printf.sprintf "expected '%c', found '%c'" ch x)
  | None -> fail c (Printf.sprintf "expected '%c', found end of input" ch)

let literal c word value =
  let n = String.length word in
  if
    c.pos + n <= String.length c.s
    && String.sub c.s c.pos n = word
  then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "expected %s" word)

let hex_digit c ch =
  match ch with
  | '0' .. '9' -> Char.code ch - Char.code '0'
  | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
  | _ -> fail c "bad hex digit in \\u escape"

(* \uXXXX escapes are decoded to UTF-8; surrogate pairs are combined. *)
let utf8_add buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let read_u16 c =
  let d () =
    match peek c with
    | Some ch ->
      advance c;
      hex_digit c ch
    | None -> fail c "unterminated \\u escape"
  in
  let a = d () in
  let b = d () in
  let x = d () in
  let y = d () in
  (a lsl 12) lor (b lsl 8) lor (x lsl 4) lor y

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
      advance c;
      match peek c with
      | None -> fail c "unterminated escape"
      | Some ch ->
        advance c;
        (match ch with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'u' ->
           let hi = read_u16 c in
           if hi >= 0xD800 && hi <= 0xDBFF then begin
             (* surrogate pair *)
             expect c '\\';
             expect c 'u';
             let lo = read_u16 c in
             if lo < 0xDC00 || lo > 0xDFFF then
               fail c "unpaired UTF-16 surrogate"
             else
               utf8_add buf
                 (0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00))
           end
           else if hi >= 0xDC00 && hi <= 0xDFFF then
             fail c "unpaired UTF-16 surrogate"
           else utf8_add buf hi
         | _ -> fail c (Printf.sprintf "bad escape '\\%c'" ch));
        go ()
    )
    | Some ch when Char.code ch < 0x20 -> fail c "control byte in string"
    | Some ch ->
      advance c;
      Buffer.add_char buf ch;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let consume_while pred =
    while match peek c with Some ch when pred ch -> advance c; true | _ -> false
    do ()
    done
  in
  if peek c = Some '-' then advance c;
  consume_while (function '0' .. '9' -> true | _ -> false);
  if peek c = Some '.' then begin
    advance c;
    consume_while (function '0' .. '9' -> true | _ -> false)
  end;
  (match peek c with
   | Some ('e' | 'E') ->
     advance c;
     (match peek c with Some ('+' | '-') -> advance c | _ -> ());
     consume_while (function '0' .. '9' -> true | _ -> false)
   | _ -> ());
  let text = String.sub c.s start (c.pos - start) in
  match float_of_string_opt text with
  | Some f -> f
  | None -> fail c (Printf.sprintf "bad number %S" text)

let rec parse_value c depth =
  if depth > max_depth then fail c "nesting too deep";
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec members () =
        skip_ws c;
        let key = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c (depth + 1) in
        fields := (key, v) :: !fields;
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          members ()
        | Some '}' -> advance c
        | _ -> fail c "expected ',' or '}' in object"
      in
      members ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else begin
      let items = ref [] in
      let rec elements () =
        let v = parse_value c (depth + 1) in
        items := v :: !items;
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          elements ()
        | Some ']' -> advance c
        | _ -> fail c "expected ',' or ']' in array"
      in
      elements ();
      List (List.rev !items)
    end
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> Num (parse_number c)
  | Some ch -> fail c (Printf.sprintf "unexpected '%c'" ch)

let parse s =
  let c = { s; pos = 0 } in
  match
    let v = parse_value c 0 in
    skip_ws c;
    if c.pos <> String.length s then fail c "trailing bytes after value";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

(* --- printing -------------------------------------------------------- *)

let escape buf s =
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | ch when Char.code ch < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char buf ch)
    s

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let to_string v =
  let buf = Buffer.create 128 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f ->
      (* JSON has no NaN/infinity; null is the least-surprising stand-in *)
      if Float.is_nan f || Float.abs f = infinity then
        Buffer.add_string buf "null"
      else Buffer.add_string buf (number_to_string f)
    | Str s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          go item)
        items;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          go v)
        fields;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* --- accessors ------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_num = function Num f -> Some f | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List l -> Some l | _ -> None

let str_field key v = Option.bind (member key v) to_str
let num_field key v = Option.bind (member key v) to_num
