open Mdqa_datalog
module R = Mdqa_relational
module Store = Mdqa_store.Store
module Snapshot = Mdqa_store.Snapshot
module Journal = Mdqa_store.Journal
module Metrics = Mdqa_obs.Metrics

type t = {
  program : Program.t;
  base : R.Instance.t;  (** extensional facts, for proof/rewrite *)
  mutable warm : Chase.result;  (** the materialized fixpoint *)
  guard : Guard.t;
  store : Store.t option;
  breaker : Breaker.t;
  metrics : Metrics.t;  (** service-lifetime registry *)
  mutable checkpoint_every : int;  (** 0 in worker children: the parent owns the disk *)
  mutable saved_checkpoint_every : int;
      (** what {!disable_periodic_checkpoints} hid, for a promoted
          standby to restore *)
  mutable fixpoint_at : float;  (** Guard.Clock time of materialization *)
  mutable requests : int;
  mutable last_checkpoint_error : string option;
  mutable persisted : bool;  (** the current fixpoint reached the disk *)
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let mk ~program ~base ~warm ~guard ~store ~breaker ~metrics ~checkpoint_every
    =
  { program;
    base;
    warm;
    guard;
    store;
    breaker;
    metrics;
    checkpoint_every;
    saved_checkpoint_every = 0;
    fixpoint_at = Guard.Clock.now ();
    requests = 0;
    last_checkpoint_error = None;
    persisted = false }

let diag_of_store_error path e =
  [ Diag.make ~file:path Diag.Error ~code:"E023"
      (Format.asprintf "%a" Store.pp_load_error e) ]

let load ?guard ?breaker ?store ?metrics ?(checkpoint_every = 64)
    ?keep_generations ?program_file () =
  let guard = match guard with Some g -> g | None -> Guard.unlimited () in
  let breaker = match breaker with Some b -> b | None -> Breaker.create () in
  let metrics =
    match metrics with Some m -> m | None -> Metrics.create ()
  in
  let warm_start path =
    match Store.resume ~guard ~metrics ~path () with
    | Error e -> Error (diag_of_store_error path e)
    | Ok (warm, recovery) ->
      (* Re-parse the stored program for the proof/rewrite engines and
         open a fresh handle for the service's own checkpoints. *)
      let parsed = Parser.parse_string recovery.Store.program_text in
      let program = parsed.Parser.program in
      let base = Program.instance_of_facts program in
      let st =
        Store.create ~guard ~metrics ?keep_generations ~path
          ~program_text:recovery.Store.program_text
          ~variant:recovery.Store.variant ()
      in
      Ok
        (mk ~program ~base ~warm ~guard ~store:(Some st) ~breaker ~metrics
           ~checkpoint_every)
  in
  let cold_start file =
    let { Validate.parsed; diags } = Validate.check_file file in
    match parsed with
    | None ->
      Error (List.filter (fun d -> d.Diag.severity = Diag.Error) diags)
    | Some { Parser.program; _ } ->
      let base = Program.instance_of_facts program in
      let st =
        Option.map
          (fun path ->
            Store.create ~guard ~metrics ?keep_generations ~path
              ~program_text:(read_file file) ~variant:Chase.Restricted ())
          store
      in
      let warm =
        Chase.run ~guard ~metrics
          ?checkpoint:(Option.map Store.checkpoint st)
          program base
      in
      let svc =
        mk ~program ~base ~warm ~guard ~store:st ~breaker ~metrics
          ~checkpoint_every
      in
      (match Option.bind st Store.write_error with
       | None -> svc.persisted <- st <> None
       | Some e ->
         Breaker.record_failure breaker;
         svc.last_checkpoint_error <- Some (Printexc.to_string e));
      Ok svc
  in
  match (store, program_file) with
  | Some path, _ when Sys.file_exists path -> warm_start path
  | _, Some file -> cold_start file
  | Some path, None -> Error (diag_of_store_error path (Store.No_store path))
  | None, None ->
    Error
      [ Diag.make Diag.Error ~code:"E024"
          "nothing to serve: no program file and no store snapshot" ]

(* A standby's service: warm-start from whatever the replication layer
   installed on disk, WITHOUT the resume machinery — [Store.resume]
   would re-chase and compact, rewriting the very files that must stay
   byte-identical to the primary's.  [Store.load] replays the
   journal's valid prefix over the snapshot and writes nothing; the
   inert store handle exists so a promotion can start checkpointing. *)
let load_replica ?guard ?breaker ?metrics ?(checkpoint_every = 64)
    ?keep_generations ~store:path () =
  let guard = match guard with Some g -> g | None -> Guard.unlimited () in
  let breaker = match breaker with Some b -> b | None -> Breaker.create () in
  let metrics =
    match metrics with Some m -> m | None -> Metrics.create ()
  in
  match Store.load ~path with
  | Error e -> Error (diag_of_store_error path e)
  | Ok r ->
    let parsed = Parser.parse_string r.Store.program_text in
    let program = parsed.Parser.program in
    let base = Program.instance_of_facts program in
    let warm =
      { Chase.instance = r.Store.instance;
        outcome = Chase.Saturated;
        stats = r.Store.stats;
        provenance = None }
    in
    let st =
      Store.create ~guard ~metrics ?keep_generations ~path
        ~program_text:r.Store.program_text ~variant:r.Store.variant ()
    in
    let svc =
      mk ~program ~base ~warm ~guard ~store:(Some st) ~breaker ~metrics
        ~checkpoint_every
    in
    svc.persisted <- true;
    (* exactly one process writes the store: the primary.  A promotion
       calls [enable_periodic_checkpoints] to take ownership. *)
    svc.saved_checkpoint_every <- svc.checkpoint_every;
    svc.checkpoint_every <- 0;
    Ok svc

let store_path t = Option.map Store.path t.store

(* Replace the warm fixpoint with a snapshot the replication layer just
   installed (a standby following an epoch change). *)
let install_snapshot t (snap : Snapshot.t) =
  t.warm <-
    { Chase.instance = snap.Snapshot.instance;
      outcome = Chase.Saturated;
      stats = snap.Snapshot.stats;
      provenance = None };
  t.fixpoint_at <- Guard.Clock.now ();
  t.persisted <- true

(* Replay freshly shipped journal records into the warm instance — the
   in-memory mirror of what [Store.load] does on disk.  [Fact] for a
   predicate the snapshot never declared can only mean the primary
   declared it after the snapshot epoch; declare it here too. *)
let apply_replicated t records =
  let inst = t.warm.Chase.instance in
  List.iter
    (fun record ->
      match record with
      | Journal.Fact (pred, tuple) ->
        let rel =
          match R.Instance.find inst pred with
          | Some rel -> rel
          | None ->
            R.Instance.declare inst
              (R.Rel_schema.of_names pred
                 (List.mapi
                    (fun i _ -> Printf.sprintf "a%d" (i + 1))
                    (R.Tuple.to_list tuple)))
        in
        ignore (R.Relation.add rel tuple)
      | Journal.Merge { from_; into } ->
        R.Instance.map_values inst (fun v ->
            if R.Value.equal v from_ then into else v)
      | Journal.Round { stats; _ } ->
        t.warm <- { t.warm with Chase.stats })
    records;
  t.fixpoint_at <- Guard.Clock.now ()

(* --- checkpointing through the breaker ------------------------------- *)

let checkpoint t ~force =
  match t.store with
  | None -> `No_store
  | Some st ->
    if not (force || Breaker.allow t.breaker) then
      `Breaker_open
        (Option.value ~default:0. (Breaker.retry_at t.breaker))
    else (
      match
        Store.checkpoint_now st ~instance:t.warm.Chase.instance
          ~stats:t.warm.Chase.stats
      with
      | Ok bytes ->
        Breaker.record_success t.breaker;
        Store.clear_write_error st;
        t.last_checkpoint_error <- None;
        t.persisted <- true;
        `Written bytes
      | Error e ->
        Breaker.record_failure t.breaker;
        let msg = Printexc.to_string e in
        t.last_checkpoint_error <- Some msg;
        t.persisted <- false;
        `Failed msg
      | exception Guard.Exhausted e ->
        (* the server's own checkpoint-byte budget: not an I/O fault *)
        t.last_checkpoint_error <-
          Some (Format.asprintf "%a" Guard.pp_exhaustion e);
        `Failed (Format.asprintf "%a" Guard.pp_exhaustion e))

let disable_periodic_checkpoints t =
  if t.checkpoint_every > 0 then t.saved_checkpoint_every <- t.checkpoint_every;
  t.checkpoint_every <- 0

let enable_periodic_checkpoints t =
  if t.checkpoint_every = 0 && t.saved_checkpoint_every > 0 then
    t.checkpoint_every <- t.saved_checkpoint_every

let request_served t =
  t.requests <- t.requests + 1;
  if
    t.checkpoint_every > 0
    && t.store <> None
    && t.requests mod t.checkpoint_every = 0
  then ignore (checkpoint t ~force:false)

(* --- query answering -------------------------------------------------- *)

type query_outcome =
  | Answers of R.Tuple.t list
  | Partial of R.Tuple.t list * Guard.exhaustion
  | Bad_query of Diag.t
  | Inconsistent of string

let unknown_predicates t q =
  List.filter
    (fun a ->
      let p = Atom.pred a in
      R.Instance.find t.warm.Chase.instance p = None
      && R.Instance.find t.base p = None)
    q.Query.body

let query t ?timeout ?max_steps ~engine qtext =
  match Parser.parse_query qtext with
  | exception Parser.Error { line; message; _ } ->
    Bad_query
      (Diag.make ~file:"<query>" ~line Diag.Error ~code:"E002" message)
  | q -> (
    match unknown_predicates t q with
    | a :: _ ->
      Bad_query
        (Diag.make ~file:"<query>" Diag.Error ~code:"E012"
           (Printf.sprintf "unknown predicate %s" (Atom.pred a)))
    | [] -> (
      match t.warm.Chase.outcome with
      | Chase.Failed f ->
        Inconsistent
          (Format.asprintf "%a" Chase.pp_outcome (Chase.Failed f))
      | warm_outcome ->
        let child = Guard.fork ?timeout ?max_steps t.guard in
        let result =
          match engine with
          | Protocol.Chase -> (
            (* the whole point of serving: evaluate over the warm
               fixpoint, no re-chase *)
            match
              Guard.protect child
                (fun () ->
                  Query.certain ~guard:child t.warm.Chase.instance q)
                ~partial:(fun () -> [])
            with
            | Guard.Complete answers -> (
              match warm_outcome with
              | Chase.Out_of_budget e ->
                (* sound under-approximation over a partial fixpoint *)
                Partial (answers, e)
              | _ -> Answers answers)
            | Guard.Degraded (answers, e) -> Partial (answers, e))
          | Protocol.Proof ->
            let r =
              Proof.answer ?max_steps t.program t.base q
            in
            if r.Proof.complete then Answers r.Proof.answers
            else
              Partial
                ( r.Proof.answers,
                  { Guard.resource = Guard.Steps;
                    limit = float_of_int (Option.value ~default:2_000_000
                                            max_steps);
                    used = float_of_int r.Proof.steps } )
          | Protocol.Rewrite -> (
            match Rewrite.answers ~guard:child t.program t.base q with
            | Guard.Complete answers -> Answers answers
            | Guard.Degraded (answers, e) -> Partial (answers, e))
        in
        Guard.absorb t.guard child;
        result))

(* --- introspection ---------------------------------------------------- *)

let warm_saturated t = t.warm.Chase.outcome = Chase.Saturated

let ready t =
  match t.warm.Chase.outcome with
  | Chase.Saturated -> (true, "warm fixpoint")
  | Chase.Out_of_budget e ->
    ( false,
      Format.asprintf "fixpoint degraded: %a" Guard.pp_exhaustion e )
  | Chase.Failed _ -> (false, "ontology inconsistent")

let health_fields t =
  let cons = Guard.consumption t.guard in
  let outcome =
    match t.warm.Chase.outcome with
    | Chase.Saturated -> "saturated"
    | Chase.Out_of_budget _ -> "degraded"
    | Chase.Failed _ -> "failed"
  in
  let breaker_fields =
    [ ("state", Jsonl.Str (Breaker.state_name t.breaker));
      ("consecutive_failures",
       Jsonl.Num (float_of_int (Breaker.consecutive_failures t.breaker)));
      ("trips", Jsonl.Num (float_of_int (Breaker.trips t.breaker))) ]
    @ (match Breaker.retry_at t.breaker with
       | Some at ->
         [ ("retry_in",
            Jsonl.Num (Float.max 0. (at -. Unix.gettimeofday ()))) ]
       | None -> [])
    @
    match t.last_checkpoint_error with
    | Some e -> [ ("last_error", Jsonl.Str e) ]
    | None -> []
  in
  [ ("fixpoint",
     Jsonl.Obj
       [ ("outcome", Jsonl.Str outcome);
         ("age_s", Jsonl.Num (Guard.Clock.now () -. t.fixpoint_at));
         ("facts",
          Jsonl.Num
            (float_of_int (R.Instance.total_tuples t.warm.Chase.instance)));
         ("persisted", Jsonl.Bool t.persisted) ]);
    ("guard",
     Jsonl.Obj
       [ ("steps", Jsonl.Num (float_of_int cons.Guard.steps));
         ("nulls", Jsonl.Num (float_of_int cons.Guard.nulls));
         ("rows", Jsonl.Num (float_of_int cons.Guard.rows));
         ("checkpoint_bytes",
          Jsonl.Num (float_of_int cons.Guard.checkpoint_bytes));
         ("elapsed_s", Jsonl.Num cons.Guard.elapsed);
         ("heap_mb", Jsonl.Num cons.Guard.heap_mb) ]);
    ("breaker", Jsonl.Obj breaker_fields);
    ("store", Jsonl.Bool (t.store <> None));
    ("requests", Jsonl.Num (float_of_int t.requests)) ]

let requests t = t.requests
let guard t = t.guard
let breaker t = t.breaker
let metrics t = t.metrics

(* Scrape-time gauges: point-in-time readings of service state that is
   not naturally a monotonic counter.  The breaker state encoding
   (0 = closed, 1 = open, 2 = half-open) makes trips visible as gauge
   transitions across scrapes. *)
let record_metrics t =
  let m = t.metrics in
  let set name help v = Metrics.set (Metrics.gauge m ~help name) v in
  Guard.record_metrics t.guard m;
  set "mdqa_server_breaker_state"
    "checkpoint breaker state (0=closed, 1=open, 2=half-open)"
    (match Breaker.state_name t.breaker with
    | "open" -> 1.
    | "half-open" -> 2.
    | _ -> 0.);
  set "mdqa_server_breaker_trips" "times the checkpoint breaker opened"
    (float_of_int (Breaker.trips t.breaker));
  set "mdqa_server_breaker_consecutive_failures"
    "consecutive checkpoint failures"
    (float_of_int (Breaker.consecutive_failures t.breaker));
  set "mdqa_server_requests" "requests served by the service"
    (float_of_int t.requests);
  set "mdqa_server_fixpoint_facts" "facts in the warm fixpoint"
    (float_of_int (R.Instance.total_tuples t.warm.Chase.instance));
  set "mdqa_server_fixpoint_age_seconds"
    "seconds since the warm fixpoint was materialized"
    (Guard.Clock.now () -. t.fixpoint_at);
  set "mdqa_server_fixpoint_persisted"
    "1 when the current fixpoint reached the disk"
    (if t.persisted then 1. else 0.)

let close t = match t.store with Some st -> Store.close st | None -> ()
