(** Minimal JSON values for the line-delimited server protocol.

    The wire format of [mdqa serve] is one JSON object per line
    (JSONL); this module is the whole codec — no external dependency,
    total parsing (malformed input is an [Error], never an exception),
    and printing that never emits a newline (so one value always stays
    one frame). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one JSON value.  Trailing non-whitespace, unterminated
    strings, bad escapes, deep nesting (beyond 512 levels) and every
    other malformation come back as [Error msg]. *)

val to_string : t -> string
(** Compact one-line rendering (no newlines, strings escaped). *)

(** {1 Accessors} — total, [None] on shape mismatch. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] otherwise. *)

val to_str : t -> string option
val to_num : t -> float option
val to_bool : t -> bool option
val to_list : t -> t list option

val str_field : string -> t -> string option
val num_field : string -> t -> float option
