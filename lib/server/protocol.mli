(** The line-delimited JSON protocol of [mdqa serve].

    One request per line, one reply per line.  Requests:

    {v
    {"kind": "query", "query": "q(X) :- p(X, Y)", "id": 7,
     "engine": "chase", "timeout": 0.5, "max_steps": 10000}
    {"kind": "health", "id": "h1"}
    {"kind": "ready"}
    {"kind": "ping"}
    {"kind": "metrics"}
    {"kind": "spans"}
    {"kind": "repl.status", "acked": 8192}
    {"kind": "repl.fetch", "what": "snapshot", "offset": 0,
     "len": 65536, "epoch": 0}
    {"kind": "promote"}
    v}

    [metrics] returns the server's metrics registry as a Prometheus
    text exposition (in the reply's ["exposition"] field); [spans]
    returns the tracer's buffered spans as a JSON list (["spans"]).

    The [repl.*] requests are the pull-based replication plane a
    standby drives against its primary (see {!Replication}): [status]
    doubles as the heartbeat and ack carrier, [fetch] ships raw
    snapshot-image or journal bytes as hex chunks with a per-chunk
    CRC-32.  [promote] turns a standby into a primary (idempotent on a
    primary).

    Replies always carry a ["status"] of ["complete"], ["degraded"] or
    ["error"] (the wire mirror of the CLI's 0/2/1 exit codes), echo the
    request ["id"] verbatim when one was given, and on degradation or
    error carry a stable diagnostic ["code"] (E024 invalid-request,
    E025 oversized-request, E026 request-timeout, E027 request-crashed,
    W047 overload-shed, W048 breaker-open) plus its mnemonic.

    Parsing is total: a malformed line becomes an [Error] diagnostic
    the server answers with, never an exception. *)

type engine = Chase | Proof | Rewrite

type request =
  | Query of {
      id : Jsonl.t option;
      query : string;  (** surface syntax, e.g. ["q(X) :- p(X, Y)"] *)
      engine : engine;
      timeout : float option;  (** per-request deadline, seconds *)
      max_steps : int option;  (** per-request chase-step budget *)
    }
  | Health of { id : Jsonl.t option }
  | Ready of { id : Jsonl.t option }
  | Ping of { id : Jsonl.t option }
  | Metrics of { id : Jsonl.t option }
  | Spans of { id : Jsonl.t option }
  | Profile of { id : Jsonl.t option }
      (** snapshot of the installed cost-attribution profiler *)
  | Repl_status of { id : Jsonl.t option; acked : int option }
      (** standby heartbeat; [acked] reports the journal high-water
          mark the standby has durably applied *)
  | Repl_fetch of {
      id : Jsonl.t option;
      what : [ `Snapshot | `Journal ];
      offset : int;  (** resume point, bytes *)
      len : int;  (** max chunk size, bytes (default 64 KiB) *)
      epoch : int;
          (** the snapshot-image CRC-32 the standby is resuming
              against; [0] starts a fresh ship *)
    }
  | Promote of { id : Jsonl.t option }

val request_id : request -> Jsonl.t option

val request_kind : request -> string
(** The wire name of the request's kind (metric label / span attr). *)

val parse_request : string -> (request, Mdqa_datalog.Diag.t) result
(** Malformed JSON, a non-object, an unknown ["kind"], a missing or
    non-string ["query"], an unknown ["engine"] — all come back as an
    E024 diagnostic whose message says what was wrong. *)

(** {1 Replies} — each renders to one newline-terminated line. *)

val json_of_value : Mdqa_relational.Value.t -> Jsonl.t
(** Symbols and numbers map to JSON strings and numbers; a labeled
    null [⊥k] maps to [{"null": k}] so clients can tell open-world
    placeholders from data. *)

val json_of_tuple : Mdqa_relational.Tuple.t -> Jsonl.t

val complete_reply :
  ?id:Jsonl.t -> ?extra:(string * Jsonl.t) list ->
  answers:Mdqa_relational.Tuple.t list option -> unit -> string
(** [answers = None] omits the field (ping replies). *)

val degraded_reply :
  ?id:Jsonl.t -> ?code:string ->
  reason:string ->
  answers:Mdqa_relational.Tuple.t list option ->
  message:string ->
  unit ->
  string
(** [reason] is machine-readable (["overload"], ["deadline"],
    ["steps"], ...); the wire status is ["degraded"]. *)

val error_reply : ?id:Jsonl.t -> Mdqa_datalog.Diag.t -> string

val obj_reply : ?id:Jsonl.t -> status:string -> (string * Jsonl.t) list -> string
(** Escape hatch for structured replies (health). *)

val exhaustion_reason : Mdqa_datalog.Guard.exhaustion -> string
(** The guard resource as a wire-stable reason token. *)

(** {1 Client-side reading} *)

type reply = {
  id : Jsonl.t option;
  status : string;  (** "complete" | "degraded" | "error" *)
  code : string option;
  reason : string option;
  message : string option;
  answers : string list list option;
      (** each tuple as rendered value strings, when present *)
  json : Jsonl.t;  (** the whole reply, for fields not modeled above *)
}

val parse_reply : string -> (reply, string) result
