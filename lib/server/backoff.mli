(** Exponential backoff with full jitter and a retry budget.

    The client side of a resilient service retries transient failures
    (connection refused during a restart, [degraded:overload] sheds)
    without stampeding the server: the delay before attempt [n] is
    drawn uniformly from [\[0, min (cap, base * 2^n)\]] ("full
    jitter", the strategy with the lowest collision rate in the AWS
    architecture-blog analysis), and two budgets bound the total
    effort — a maximum attempt count and a maximum cumulative sleep.

    The randomness source is injected so tests are deterministic. *)

type policy = {
  base : float;  (** first-retry ceiling, seconds; > 0 *)
  cap : float;  (** upper bound every delay is clamped to; >= base *)
  max_attempts : int;  (** retries allowed (0 = never retry) *)
  budget : float;  (** cumulative sleep allowed across all retries *)
}

val default_policy : policy
(** base 50 ms, cap 2 s, 6 attempts, 10 s total sleep. *)

val policy :
  ?base:float -> ?cap:float -> ?max_attempts:int -> ?budget:float -> unit ->
  policy
(** {!default_policy} with overrides.
    @raise Invalid_argument on a non-positive [base], a [cap] below
    [base], a negative [max_attempts] or a negative [budget]. *)

val ceiling : policy -> attempt:int -> float
(** [ceiling p ~attempt] is the un-jittered delay bound
    [min (cap, base * 2^attempt)] for the 0-based [attempt].  Monotone
    non-decreasing in [attempt]; equal to [cap] for every attempt past
    the point the exponential crosses it. *)

val delay : policy -> rand:(float -> float) -> attempt:int -> float
(** One jittered delay: [rand (ceiling p ~attempt)].  [rand b] must
    return a value in [\[0, b\]] ([Random.float] does); the result is
    clamped to that interval regardless, so a misbehaving [rand]
    cannot produce a negative or over-cap sleep. *)

(** {1 Stateful retry loop} *)

type t

val start : policy -> t

val attempts : t -> int
(** Retries taken so far. *)

val slept : t -> float
(** Cumulative sleep charged so far, seconds. *)

val next : t -> rand:(float -> float) -> float option
(** The next sleep to take, or [None] when the policy is out of
    retries — either [max_attempts] is spent or the delay would push
    the cumulative sleep past [budget].  The returned delay is already
    charged against the budget. *)
