(** The worker-pool supervisor.

    Owns N {!Worker} slots on behalf of the select-loop parent:
    dispatches query lines to ready workers, reads reply frames back,
    reaps dead children, classifies their exits (voluntary recycling
    vs crash), restarts crashed workers under a full-jitter capped
    backoff that resets after a healthy uptime, SIGKILLs workers that
    exceed the per-request hang watchdog (the client gets a W049
    degraded reply immediately), and answers E029 to exactly the
    client whose request died with its worker.

    The supervisor performs no I/O of its own except through the
    worker fds and the injectable {!hooks}, so the whole state machine
    is property-testable in-process with fake clocks, scripted reaps
    and spawn functions that return socketpairs instead of forking.

    Invariant the tests hold it to: each dispatched request is
    answered {e exactly once} — by the worker's reply, by the
    watchdog, by an E029 at the worker's death, or by
    {!abort_inflight} at the drain deadline, whichever comes first. *)

type hooks = {
  clock : unit -> float;  (** monotonic seconds *)
  kill : int -> unit;  (** SIGKILL this pid *)
  wait_any : unit -> (int * Unix.process_status) option;
      (** one nonblocking reap of any child *)
  wait_pid : int -> (int * Unix.process_status) option;
      (** one nonblocking reap of a specific pid *)
  rand : float -> float;  (** jitter source, as [Random.float] *)
}

val default_hooks : hooks
(** [Guard.Clock] + real [kill]/[waitpid]/[Random.float]. *)

(** {1 Pure policy helpers} *)

val next_attempts : healthy_after:float -> uptime:float -> attempts:int -> int
(** Consecutive-crash count after one more crash: resets to 1 when the
    worker had stayed up at least [healthy_after] seconds. *)

val restart_delay :
  Backoff.policy -> rand:(float -> float) -> attempts:int -> float
(** Jittered restart delay for a worker whose consecutive-crash count
    is [attempts] (>= 1): full-jitter exponential, clamped to the
    policy cap. *)

(** {1 The pool} *)

type t

type reply_fn = status:string -> code:string option -> string -> unit
(** How a finished reply line reaches the client: the server closes
    over the connection and its accounting. *)

val start :
  ?hooks:hooks ->
  ?metrics:Mdqa_obs.Metrics.t ->
  ?policy:Backoff.policy ->
  ?healthy_after:float ->
  ?watchdog:float ->
  ?min_ready:int ->
  count:int ->
  spawn:(on_child:(unit -> unit) -> Worker.t) ->
  on_child:(unit -> unit) ->
  unit ->
  t
(** Bring up [count] workers.  [spawn] is called once per (re)spawn
    with an [on_child] that must run first in the child — it closes
    sibling worker fds, then the caller's [on_child] (listener, client
    conns, self-pipe).  [watchdog] is the per-request hang deadline in
    seconds (none = hung workers are only caught by client timeouts);
    [healthy_after] (default 5 s) is the uptime that resets crash
    backoff; [policy] defaults to {!Backoff.default_policy}. *)

val dispatch :
  t ->
  line:string ->
  req_id:Jsonl.t option ->
  write_deadline:float ->
  reply:reply_fn ->
  bool
(** Hand one raw query line to a ready worker.  [false] when no worker
    is ready (the caller leaves the request queued).  A worker whose
    pipe refuses the write is killed and the next ready one tried. *)

val handle_readable : t -> Unix.file_descr -> unit
(** Drain one worker fd the select loop reported readable: complete
    reply frames answer their clients, EOF triggers a targeted reap. *)

val handle_exit : t -> pid:int -> status:Unix.process_status -> bool
(** Process one reaped child.  E029 to its client if it died
    mid-request, exit classification, backoff bookkeeping, cooldown
    scheduling.  [false] when the pid belongs to no slot (already
    handled, or not ours). *)

val reap : t -> int
(** Nonblocking [wait_any] loop; {!handle_exit} for each.  Returns how
    many slots were resolved.  Call on every loop iteration — SIGCHLD
    only wakes the select, this does the work. *)

val tick : t -> unit
(** Time-driven duties: fire the hang watchdog on overdue requests
    (W049 + SIGKILL) and respawn slots whose cooldown has passed. *)

val next_wakeup : t -> float option
(** Earliest clock time {!tick} has something scheduled (cooldown
    expiry or watchdog deadline); the select timeout should not sleep
    past it. *)

val abort_inflight : t -> code:string -> reason:string -> message:string -> int
(** Degraded-reply every unanswered in-flight request (drain deadline).
    Returns how many were aborted. *)

val shutdown : t -> grace:float -> unit
(** Close every worker pipe (idle workers EOF-exit voluntarily), reap
    for up to [grace] seconds, then SIGKILL stragglers. *)

(** {1 Introspection} *)

val count : t -> int
val alive : t -> int
val ready : t -> int
val busy : t -> int

val inflight : t -> int
(** Dispatched requests not yet answered by anything. *)

val min_ready : t -> int

val quorum : t -> bool
(** [alive >= min_ready]: below it the server sheds queries with H054
    instead of queueing into a dead pool. *)

val fds : t -> Unix.file_descr list
(** Worker fds to include in the select read set. *)

val restarts : t -> int
val recycles : t -> int
val watchdog_kills : t -> int

val record_metrics : t -> Mdqa_obs.Metrics.t -> unit
(** Scrape-time gauges ([mdqa_server_workers_*]) and counter family
    registration. *)

val health_fields : t -> (string * Jsonl.t) list
(** The ["workers"] object of a health reply. *)
