(* All deadlines here are absolute times on the Guard's monotonic
   clock: an NTP step must never spuriously expire (or extend) a write
   deadline or a select timeout.  Wall time is only for humans. *)
module Clock = Mdqa_datalog.Guard.Clock

let ignore_sigpipe () =
  (* Windows has no SIGPIPE; everything this library targets does. *)
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

let set_nonblock fd = Unix.set_nonblock fd

let sleepf duration =
  let until = Clock.now () +. duration in
  let rec go () =
    let remaining = until -. Clock.now () in
    if remaining > 0. then
      match Unix.sleepf remaining with
      | () -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

(* One select over read fds that survives EINTR: with SIGCHLD arriving
   routinely from the worker pool, a signal mid-select retries with the
   timeout recomputed against the monotonic deadline instead of
   surfacing [Unix_error (EINTR, _, _)] to the event loop. *)
let select_read fds ~timeout =
  let deadline = Clock.now () +. Float.max 0. timeout in
  let rec go () =
    let remaining = Float.max 0. (deadline -. Clock.now ()) in
    match Unix.select fds [] [] remaining with
    | ready, _, _ -> Ok ready
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      if Clock.now () >= deadline then Ok [] else go ()
    | exception Unix.Unix_error (e, _, _) -> Error e
  in
  go ()

(* Wait until [fd] is writable or the deadline passes. *)
let wait_writable fd deadline =
  let rec go () =
    let timeout =
      match deadline with
      | None -> 1.0
      | Some d ->
        let remaining = d -. Clock.now () in
        if remaining <= 0. then -1.0 else remaining
    in
    if timeout < 0. then `Timeout
    else
      match Unix.select [] [ fd ] [] timeout with
      | _, _ :: _, _ -> `Writable
      | _ -> go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let write_all ?deadline fd s =
  let n = String.length s in
  let rec go off =
    if off >= n then Ok ()
    else
      match Unix.write_substring fd s off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
        -> (
        match wait_writable fd deadline with
        | `Writable -> go off
        | `Timeout -> Error "write timed out")
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  in
  go 0

let read_available fd ~max =
  let buf = Bytes.create max in
  let rec go () =
    match Unix.read fd buf 0 max with
    | 0 -> `Eof
    | n -> `Data (Bytes.sub_string buf 0 n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      `Nothing
    | exception Unix.Unix_error (e, _, _) -> `Error (Unix.error_message e)
  in
  go ()

(* Blocking read of exactly [n] bytes; [None] on EOF at a record
   boundary, [Error] mid-record.  EINTR retries. *)
let read_exact fd n =
  let buf = Bytes.create n in
  let rec go off =
    if off >= n then Ok (Bytes.to_string buf)
    else
      match Unix.read fd buf off (n - off) with
      | 0 -> if off = 0 then Error `Eof else Error (`Torn off)
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (e, _, _) ->
        Error (`Unix (Unix.error_message e))
  in
  go 0
