let ignore_sigpipe () =
  (* Windows has no SIGPIPE; everything this library targets does. *)
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

let set_nonblock fd = Unix.set_nonblock fd

let sleepf duration =
  let until = Unix.gettimeofday () +. duration in
  let rec go () =
    let remaining = until -. Unix.gettimeofday () in
    if remaining > 0. then
      match Unix.sleepf remaining with
      | () -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

(* Wait until [fd] is writable or the deadline passes. *)
let wait_writable fd deadline =
  let rec go () =
    let timeout =
      match deadline with
      | None -> 1.0
      | Some d ->
        let remaining = d -. Unix.gettimeofday () in
        if remaining <= 0. then -1.0 else remaining
    in
    if timeout < 0. then `Timeout
    else
      match Unix.select [] [ fd ] [] timeout with
      | _, _ :: _, _ -> `Writable
      | _ -> go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let write_all ?deadline fd s =
  let n = String.length s in
  let rec go off =
    if off >= n then Ok ()
    else
      match Unix.write_substring fd s off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
        -> (
        match wait_writable fd deadline with
        | `Writable -> go off
        | `Timeout -> Error "write timed out")
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  in
  go 0

let read_available fd ~max =
  let buf = Bytes.create max in
  let rec go () =
    match Unix.read fd buf 0 max with
    | 0 -> `Eof
    | n -> `Data (Bytes.sub_string buf 0 n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      `Nothing
    | exception Unix.Unix_error (e, _, _) -> `Error (Unix.error_message e)
  in
  go ()
