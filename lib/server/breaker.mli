(** A circuit breaker for a fallible side effect (checkpoint I/O).

    The server keeps answering queries from its in-memory fixpoint
    even when the durability layer fails (full disk, read-only
    volume): after [threshold] consecutive failures the breaker trips
    {e open} and the protected operation is skipped — stale but
    consistent — until a cooldown elapses.  It then {e half-opens}:
    exactly one probe call is allowed through; success closes the
    breaker, failure re-opens it with a doubled (capped) cooldown.

    The clock is injected so tests drive every transition
    deterministically.  Not thread-safe; the server loop is
    single-threaded by design. *)

type state =
  | Closed  (** operations flow; failures are being counted *)
  | Open of { until : float }
      (** tripped: operations are skipped until the clock passes
          [until] *)
  | Half_open  (** cooldown elapsed: one probe is in flight *)

type t

val create :
  ?threshold:int ->
  ?cooldown:float ->
  ?cooldown_cap:float ->
  ?clock:(unit -> float) ->
  unit ->
  t
(** [threshold] consecutive failures trip the breaker (default 3);
    the first open lasts [cooldown] seconds (default 1.0), doubling on
    every re-open up to [cooldown_cap] (default 60.0). *)

val allow : t -> bool
(** Should the protected operation run now?  [Closed] and [Half_open]
    say yes; [Open] says no until the cooldown elapses, at which point
    the breaker half-opens and says yes exactly once — further [allow]
    calls during the probe say no. *)

val record_success : t -> unit
(** The protected operation succeeded: close the breaker, reset the
    failure count and the cooldown. *)

val record_failure : t -> unit
(** The protected operation failed.  In [Closed], counts toward
    [threshold]; reaching it trips the breaker.  In [Half_open], the
    probe failed: re-open with a doubled (capped) cooldown. *)

val trip : t -> unit
(** Open the breaker immediately on out-of-band evidence (the store
    scrubber finding corruption on disk), without waiting for
    [threshold] call failures.  Uses the current (possibly backed-off)
    cooldown; a no-op if already open. *)

val state : t -> state
val consecutive_failures : t -> int

val trips : t -> int
(** Times the breaker has opened since creation. *)

val retry_at : t -> float option
(** When an open breaker will next half-open (absolute clock time);
    [None] unless open. *)

val state_name : t -> string
(** ["closed"], ["open"] or ["half-open"] — for health reports. *)
