(** One forked query worker and its wire format.

    A worker is a fork of the warmed-up server process: it shares the
    materialized chase fixpoint copy-on-write, blocks on its half of a
    socketpair for length-prefixed request lines, answers each with
    the same code path the inline server uses, and ships the finished
    reply line back in a small JSON envelope.  Process boundaries are
    the fault-isolation contract: a segfault, a runaway allocation or
    an injected crash costs one worker and one E029 reply, never the
    accept loop.

    Children never checkpoint (the parent owns the store file) and
    exit with [Unix._exit] only — a forked child running [at_exit]
    handlers or flushing inherited buffers corrupts the parent's
    output. Exit status 0 means voluntary retirement (recycling, or
    EOF on the pipe at drain); anything else is a crash. *)

(** u32 little-endian length prefix + payload. *)
module Frame : sig
  val encode : string -> string

  type reader
  (** Parent-side accumulator for a nonblocking fd. *)

  val reader : unit -> reader

  val poll :
    reader ->
    Unix.file_descr ->
    [ `Frames of string list  (** complete payloads, in arrival order *)
    | `Nothing
    | `Eof
    | `Error of string ]

  val read_blocking : Unix.file_descr -> string option
  (** Child side: block for one whole frame; [None] on EOF or a torn
      stream (the parent is gone either way). *)
end

type defaults = { timeout : float option; max_steps : int option }
(** Server-config fallbacks applied when a query request carries no
    budget of its own. *)

val answer_query :
  svc:Service.t -> defaults:defaults -> ?stale:bool -> Protocol.request ->
  string * string * string option
(** [(reply_line, status, diag_code)] for a query request — the single
    code path behind both the inline (workers = 0) branch and the
    worker child, so replies are byte-identical either way.  Non-query
    requests (which the dispatcher never forwards) get an E024.
    [~stale:true] (a standby answering while it follows) tags complete
    replies with a W050 stale-read warning. *)

val answer_protected :
  svc:Service.t -> defaults:defaults -> Protocol.request ->
  string * string * string option
(** {!answer_query} under crash isolation: a raising handler becomes
    one E027 error reply. *)

type recycle = { max_requests : int; max_heap_mb : float }
(** Retirement thresholds; [0] / [0.] disables the respective check. *)

val should_retire : served:int -> heap_mb:float -> recycle -> bool

val heap_mb : unit -> float
(** Current major-heap size of this process, in MiB. *)

type parsed_reply = {
  line : string;  (** the finished reply line, written verbatim *)
  status : string;
  code : string option;
  fp : (string * int) list;
      (** child's cumulative failpoint hit counters *)
}

val envelope : line:string -> status:string -> code:string option -> string
val parse_envelope : string -> (parsed_reply, string) result

type t = { pid : int; fd : Unix.file_descr; reader : Frame.reader }

val spawn :
  svc:Service.t ->
  defaults:defaults ->
  recycle:recycle ->
  on_child:(unit -> unit) ->
  unit ->
  t
(** Fork one worker.  [on_child] runs first in the child and must
    close every fd the worker has no business holding (listener,
    client conns, self-pipe, sibling worker ends); then signal
    dispositions reset, periodic checkpoints are disabled, and the
    child enters its read-answer loop.  The returned parent end is
    nonblocking. *)

val dispatch :
  t -> write_deadline:float -> string -> (unit, string) result
(** Frame and send one raw request line to the worker.  [Error] means
    the pipe is broken or the write timed out — the caller should kill
    and replace the worker. *)

val poll :
  t -> [ `Frames of string list | `Nothing | `Eof | `Error of string ]
(** Drain readable reply frames from the parent end. *)

val close : t -> unit

type exit_class =
  | Recycled  (** WEXITED 0: voluntary retirement, not a failure *)
  | Crashed of string  (** cause, e.g. ["SIGSEGV"] or ["exit 125"] *)

val classify : Unix.process_status -> exit_class

val signal_name : int -> string
