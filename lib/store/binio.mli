(** Binary encoding substrate for the durability layer.

    Little-endian, length-prefixed, fully 8-bit-clean: strings are
    written as raw bytes behind a length, so values containing commas,
    quotes, newlines or NULs — the bytes that break textual formats —
    round-trip exactly.

    Decoding never trusts the input: every read is bounds-checked and
    malformed data raises {!Corrupt} with the offending byte offset,
    which {!Snapshot} and {!Journal} convert into located corruption
    reports.  No decoder in this module reads past the slice it was
    given. *)

exception Corrupt of { offset : int; reason : string }
(** Raised by readers on malformed input.  Always caught at the
    {!Snapshot}/{!Journal} boundary — it never escapes to callers of
    the store API. *)

(** {1 Writing} *)

val u8 : Buffer.t -> int -> unit
val u32 : Buffer.t -> int -> unit
(** @raise Invalid_argument outside [\[0, 0xFFFF_FFFF\]]. *)

val i64 : Buffer.t -> int -> unit
(** Full OCaml [int], sign-extended to 8 bytes. *)

val f64 : Buffer.t -> float -> unit
val str : Buffer.t -> string -> unit
(** [u32] byte length, then the raw bytes. *)

val value : Buffer.t -> Mdqa_relational.Value.t -> unit
val tuple : Buffer.t -> Mdqa_relational.Tuple.t -> unit
val schema : Buffer.t -> Mdqa_relational.Rel_schema.t -> unit
val relation : Buffer.t -> Mdqa_relational.Relation.t -> unit
val instance : Buffer.t -> Mdqa_relational.Instance.t -> unit

(** {1 Reading} *)

type reader
(** A cursor over an immutable byte slice. *)

val reader : ?offset:int -> string -> reader
(** [reader ~offset s] reads [s]; [offset] (default 0) is added to
    reported offsets so errors locate bytes in the enclosing file, not
    the slice. *)

val pos : reader -> int
(** Position within the slice (excluding the reporting offset). *)

val at_end : reader -> bool

val read_u8 : reader -> int
val read_u32 : reader -> int
val read_i64 : reader -> int
val read_f64 : reader -> float
val read_str : reader -> string

val read_value : reader -> Mdqa_relational.Value.t
val read_tuple : reader -> Mdqa_relational.Tuple.t
val read_schema : reader -> Mdqa_relational.Rel_schema.t
val read_relation : reader -> Mdqa_relational.Relation.t
val read_instance : reader -> Mdqa_relational.Instance.t
