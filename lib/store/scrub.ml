(* Incremental on-line scrubbing of a store's on-disk files.

   A server that only re-reads its snapshot at restart discovers bit
   rot exactly when it can least afford to: during crash recovery.  The
   scrubber re-verifies every CRC in the snapshot and journal
   continuously, a bounded number of bytes per select-loop tick, so a
   flipped bit is found while the previous generation is still fresh
   and a repair is cheap.

   Live-mutation safety — the files are being written while we read:

   - The snapshot fd is opened once per cycle and kept across ticks.  A
     checkpoint replaces the path by [rename], which leaves our fd on
     the old, immutable, complete image — we finish verifying that
     inode and pick up the new one next cycle.  No false positives.
   - The journal is appended to (and truncated by compaction, which
     keeps the same inode).  Growth past the size we started with is
     simply next cycle's work.  A frame that runs past the current EOF
     is a torn tail — the normal signature of an in-flight append or a
     crash, explicitly NOT damage (recovery truncates it).  Only a
     complete frame with a wrong CRC is damage, and before reporting it
     we re-stat the file: if the inode changed or shrank beneath the
     frame, the walk was invalidated by compaction and is abandoned
     silently.

   Findings are deduplicated per (inode, offset): a fault is reported
   once, not once per cycle, so an errors counter driven by this module
   counts faults, not passes over them.  After a repair the snapshot
   inode changes, which naturally re-arms reporting. *)

type finding = { file : string; offset : int; reason : string }

let pp_finding ppf f =
  Format.fprintf ppf "%s: byte %d: %s" f.file f.offset f.reason

type snap_phase =
  | S_open  (* next: open the snapshot fd *)
  | S_header  (* next: read + validate the 16-byte header *)
  | S_section of { left : int }  (* next: read a 9-byte section header *)
  | S_payload of {
      left : int;  (* sections after this one *)
      tag : char;
      end_off : int;  (* first byte past this payload *)
      expect : int;
      run : Crc32.running;
    }
  | S_done

type jrnl_phase =
  | J_open
  | J_frame
  | J_payload of { end_off : int; expect : int; run : Crc32.running }
  | J_done

type t = {
  path : string;
  budget : int;  (* max bytes verified per tick *)
  buf : bytes;
  seen : (int * int, unit) Hashtbl.t;  (* (inode, offset) already reported *)
  mutable snap_fd : Unix.file_descr option;
  mutable snap_ino : int;
  mutable snap_phase : snap_phase;
  mutable jrnl_fd : Unix.file_descr option;
  mutable jrnl_ino : int;
  mutable jrnl_phase : jrnl_phase;
  mutable off : int;  (* read offset into whichever file is active *)
  mutable bytes : int;
  mutable errors : int;
  mutable cycles : int;
}

let create ?(budget = 65536) ~path () =
  { path;
    budget = max 512 budget;
    buf = Bytes.create 65536;
    seen = Hashtbl.create 8;
    snap_fd = None;
    snap_ino = 0;
    snap_phase = S_open;
    jrnl_fd = None;
    jrnl_ino = 0;
    jrnl_phase = J_open;
    off = 0;
    bytes = 0;
    errors = 0;
    cycles = 0 }

let bytes_scrubbed t = t.bytes
let errors_found t = t.errors
let cycles t = t.cycles

let close_fd fdo =
  match fdo with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ()

(* [close] can land mid-walk (the server closes the scrubber after a
   repair rewrites the files under it), so the phases must come back to
   the opens with the fds: a phase that survived pointing past [*_open]
   would dereference a released fd on the next tick. *)
let close t =
  close_fd t.snap_fd;
  close_fd t.jrnl_fd;
  t.snap_fd <- None;
  t.jrnl_fd <- None;
  t.snap_phase <- S_open;
  t.jrnl_phase <- J_open;
  t.off <- 0

(* pread without moving any shared cursor state between phases. *)
let pread t fd ~off ~len =
  let len = min len (Bytes.length t.buf) in
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let rec go got =
    if got >= len then got
    else
      match Unix.read fd t.buf got (len - got) with
      | 0 -> got
      | n -> go (got + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go got
  in
  let got = go 0 in
  t.bytes <- t.bytes + got;
  got

let u32 b off =
  Char.code (Bytes.get b off)
  lor (Char.code (Bytes.get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.get b (off + 3)) lsl 24)

(* Report once per (inode, offset); injected faults bypass the cache
   because each injection is a distinct fault. *)
let report t out ~ino ~offset ~file reason =
  if not (Hashtbl.mem t.seen (ino, offset)) then begin
    Hashtbl.replace t.seen (ino, offset) ();
    t.errors <- t.errors + 1;
    out := { file; offset; reason } :: !out
  end

let fstat_ok fd = try Some (Unix.fstat fd) with Unix.Unix_error _ -> None

(* --- snapshot walk ---------------------------------------------------- *)

let snap_step t out budget =
  match (t.snap_phase, t.snap_fd) with
  | S_done, _ -> 0
  | S_open, _ -> (
    match Unix.openfile t.path [ Unix.O_RDONLY ] 0 with
    | fd ->
      t.snap_fd <- Some fd;
      t.snap_ino <-
        (match fstat_ok fd with Some st -> st.Unix.st_ino | None -> 0);
      t.off <- 0;
      t.snap_phase <- S_header;
      1
    | exception Unix.Unix_error (e, _, _) ->
      report t out ~ino:0 ~offset:0 ~file:t.path
        (Printf.sprintf "snapshot unreadable: %s" (Unix.error_message e));
      t.snap_phase <- S_done;
      1)
  | (S_header | S_section _ | S_payload _), None ->
    (* a [close] raced the walk: restart it rather than raise *)
    t.snap_phase <- S_open;
    t.off <- 0;
    0
  | S_header, Some fd -> (
    let got = pread t fd ~off:0 ~len:16 in
    if got < 16 then begin
      report t out ~ino:t.snap_ino ~offset:0 ~file:t.path
        "file shorter than the snapshot header";
      t.snap_phase <- S_done;
      got
    end
    else if Bytes.sub_string t.buf 0 8 <> Snapshot.magic then begin
      report t out ~ino:t.snap_ino ~offset:0 ~file:t.path
        "bad magic: not an mdqa snapshot";
      t.snap_phase <- S_done;
      got
    end
    else if u32 t.buf 8 <> Snapshot.version then begin
      report t out ~ino:t.snap_ino ~offset:8 ~file:t.path
        (Printf.sprintf "unsupported snapshot version %d" (u32 t.buf 8));
      t.snap_phase <- S_done;
      got
    end
    else begin
      t.off <- 16;
      t.snap_phase <- S_section { left = u32 t.buf 12 };
      got
    end)
  | S_section { left }, Some fd ->
    if left = 0 then begin
      t.snap_phase <- S_done;
      0
    end
    else begin
      let got = pread t fd ~off:t.off ~len:9 in
      if got < 9 then begin
        report t out ~ino:t.snap_ino ~offset:t.off ~file:t.path
          "snapshot ends mid-section-header";
        t.snap_phase <- S_done
      end
      else begin
        let tag = Bytes.get t.buf 0 in
        let len = u32 t.buf 1 and expect = u32 t.buf 5 in
        t.off <- t.off + 9;
        t.snap_phase <-
          S_payload
            { left = left - 1;
              tag;
              end_off = t.off + len;
              expect;
              run = Crc32.start }
      end;
      got
    end
  | S_payload p, Some fd ->
    let want = min budget (p.end_off - t.off) in
    if want > 0 then begin
      let got = pread t fd ~off:t.off ~len:want in
      if got = 0 then begin
        report t out ~ino:t.snap_ino ~offset:t.off ~file:t.path
          (Printf.sprintf "section '%c' cut short" p.tag);
        t.snap_phase <- S_done;
        0
      end
      else begin
        t.off <- t.off + got;
        t.snap_phase <-
          S_payload { p with run = Crc32.feed p.run t.buf ~pos:0 ~len:got };
        got
      end
    end
    else begin
      if Crc32.finish p.run <> p.expect then
        report t out ~ino:t.snap_ino ~offset:t.off ~file:t.path
          (Printf.sprintf "section '%c' checksum mismatch" p.tag);
      t.snap_phase <- S_section { left = p.left };
      0
    end

(* --- journal walk ------------------------------------------------------ *)

(* The walk is valid only while the fd still names the live journal and
   the file has not shrunk beneath the offset in question (compaction
   truncates in place).  Damage is reported only through this guard. *)
let jrnl_live t upto =
  match t.jrnl_fd with
  | None -> false
  | Some fd -> (
    match fstat_ok fd with
    | None -> false
    | Some st -> (
      st.Unix.st_size >= upto
      &&
      match Unix.stat (Store.journal_path t.path) with
      | pst -> pst.Unix.st_ino = st.Unix.st_ino
      | exception (Unix.Unix_error _ | Sys_error _) -> false))

let jrnl_step t out budget =
  let jpath = Store.journal_path t.path in
  match (t.jrnl_phase, t.jrnl_fd) with
  | J_done, _ -> 0
  | (J_frame | J_payload _), None ->
    (* a [close] raced the walk: restart it rather than raise *)
    t.jrnl_phase <- J_open;
    t.off <- 0;
    0
  | J_open, _ -> (
    match Unix.openfile jpath [ Unix.O_RDONLY ] 0 with
    | fd ->
      t.jrnl_fd <- Some fd;
      t.jrnl_ino <-
        (match fstat_ok fd with Some st -> st.Unix.st_ino | None -> 0);
      let got = pread t fd ~off:0 ~len:Journal.header_len in
      if got < Journal.header_len then
        (* a journal being created, or none: torn header = no records *)
        t.jrnl_phase <- J_done
      else if
        Bytes.sub_string t.buf 0 8 <> Journal.magic
        || u32 t.buf 8 <> Journal.version
      then begin
        if jrnl_live t Journal.header_len then
          report t out ~ino:t.jrnl_ino ~offset:0 ~file:jpath
            "bad or foreign journal header";
        t.jrnl_phase <- J_done
      end
      else begin
        t.off <- Journal.header_len;
        t.jrnl_phase <- J_frame
      end;
      got
    | exception Unix.Unix_error _ ->
      (* absent journal: a freshly-compacted store is resetting it *)
      t.jrnl_phase <- J_done;
      0)
  | J_frame, Some fd -> (
    let got = pread t fd ~off:t.off ~len:8 in
    if got < 8 then begin
      (* torn tail: the crash-normal ending, not damage *)
      t.jrnl_phase <- J_done;
      got
    end
    else
      let len = u32 t.buf 0 and expect = u32 t.buf 4 in
      match fstat_ok fd with
      | Some st when t.off + 8 + len > st.Unix.st_size ->
        (* frame runs past EOF: an append in flight or a torn tail *)
        t.jrnl_phase <- J_done;
        got
      | _ ->
        t.off <- t.off + 8;
        t.jrnl_phase <-
          J_payload { end_off = t.off + len; expect; run = Crc32.start };
        got)
  | J_payload p, Some fd ->
    let want = min budget (p.end_off - t.off) in
    if want > 0 then begin
      let got = pread t fd ~off:t.off ~len:want in
      if got = 0 then begin
        t.jrnl_phase <- J_done;
        0
      end
      else begin
        t.off <- t.off + got;
        t.jrnl_phase <-
          J_payload { p with run = Crc32.feed p.run t.buf ~pos:0 ~len:got };
        got
      end
    end
    else begin
      if Crc32.finish p.run <> p.expect && jrnl_live t p.end_off then
        report t out ~ino:t.jrnl_ino ~offset:t.off ~file:jpath
          "record checksum mismatch";
      t.jrnl_phase <- J_frame;
      0
    end

(* --- driver ----------------------------------------------------------- *)

let tick t =
  let out = ref [] in
  (match Mdqa_obs.Failpoint.hit "store.scrub" with
  | () -> (
    let budget = ref t.budget in
    let spin = ref 0 in
    (* each step returns bytes consumed; zero-cost steps (phase
       transitions) are bounded by [spin] so a tick always terminates *)
    while !budget > 0 && !spin < 64 do
      let used =
        if t.snap_phase <> S_done then snap_step t out !budget
        else if t.jrnl_phase <> J_done then jrnl_step t out !budget
        else begin
          (* cycle complete: release fds, start over next tick *)
          close t;
          t.cycles <- t.cycles + 1;
          t.snap_phase <- S_open;
          t.jrnl_phase <- J_open;
          budget := 0;
          0
        end
      in
      if used = 0 then incr spin else spin := 0;
      budget := !budget - used
    done)
  | exception Mdqa_obs.Failpoint.Injected msg ->
    (* a scripted fault counts as a detected fault: it exercises the
       trip-and-repair path without real corruption *)
    t.errors <- t.errors + 1;
    out := { file = t.path; offset = 0; reason = "fault injected: " ^ msg }
           :: !out);
  List.rev !out
