module Tuple = Mdqa_relational.Tuple
module Instance = Mdqa_relational.Instance
module Chase = Mdqa_datalog.Chase

type t = {
  program_text : string;
  variant : Chase.variant;
  instance : Instance.t;
  null_base : int;
  stats : Chase.stats;
  frontier : (string * Tuple.t list) list option;
}

type corruption = { offset : int; what : string; reason : string }

let magic = "MDQASNAP"
let version = 1

let pp_corruption ppf c =
  Format.fprintf ppf "byte %d (%s): %s" c.offset c.what c.reason

(* --- encoding -------------------------------------------------------- *)

let encode_program b s = Binio.str b s.program_text

let encode_instance b s = Binio.instance b s.instance

let encode_state b s =
  Binio.u8 b (match s.variant with Chase.Restricted -> 0 | Chase.Oblivious -> 1);
  Binio.i64 b s.null_base;
  Binio.i64 b s.stats.Chase.rounds;
  Binio.i64 b s.stats.Chase.tgd_fires;
  Binio.i64 b s.stats.Chase.triggers_checked;
  Binio.i64 b s.stats.Chase.nulls_created;
  Binio.i64 b s.stats.Chase.egd_merges;
  match s.frontier with
  | None -> Binio.u8 b 0
  | Some frontier ->
    Binio.u8 b 1;
    Binio.u32 b (List.length frontier);
    List.iter
      (fun (pred, tuples) ->
        Binio.str b pred;
        Binio.u32 b (List.length tuples);
        List.iter (Binio.tuple b) tuples)
      frontier

let sections = [ ('P', encode_program); ('I', encode_instance); ('C', encode_state) ]

let encode s =
  let out = Buffer.create 4096 in
  Buffer.add_string out magic;
  Binio.u32 out version;
  Binio.u32 out (List.length sections);
  List.iter
    (fun (tag, enc) ->
      let payload = Buffer.create 1024 in
      enc payload s;
      let payload = Buffer.contents payload in
      Binio.u8 out (Char.code tag);
      Binio.u32 out (String.length payload);
      Binio.u32 out (Crc32.digest payload);
      Buffer.add_string out payload)
    sections;
  Buffer.contents out

(* --- atomic write ---------------------------------------------------- *)

let fsync_dir dir =
  (* Directory fsync makes the rename itself durable; not all
     filesystems support it, so failures are ignored. *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    Unix.close fd
  | exception Unix.Unix_error _ -> ()

(* EINTR-safe and partial-write-safe: a signal mid-write (server drain,
   harness SIGCHLD) must not tear the temp image or skip the fsync. *)
let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let rec fsync_retry fd =
  try Unix.fsync fd
  with Unix.Unix_error (Unix.EINTR, _, _) -> fsync_retry fd

(* A pre-encoded image lands with the same tmp/fsync/rename discipline
   as a fresh one: replication installs shipped bytes verbatim, so a
   standby's snapshot is byte-identical to its primary's. *)
let write_raw ~path image =
  let tmp = path ^ ".tmp" in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      write_all fd image;
      fsync_retry fd);
  Unix.rename tmp path;
  fsync_dir (Filename.dirname path);
  String.length image

let write ~path s = write_raw ~path (encode s)

(* --- reading --------------------------------------------------------- *)

let decode_state r =
  let variant =
    match Binio.read_u8 r with
    | 0 -> Chase.Restricted
    | 1 -> Chase.Oblivious
    | v ->
      raise
        (Binio.Corrupt
           { offset = Binio.pos r;
             reason = Printf.sprintf "unknown chase variant %d" v })
  in
  let null_base = Binio.read_i64 r in
  let rounds = Binio.read_i64 r in
  let tgd_fires = Binio.read_i64 r in
  let triggers_checked = Binio.read_i64 r in
  let nulls_created = Binio.read_i64 r in
  let egd_merges = Binio.read_i64 r in
  let frontier =
    match Binio.read_u8 r with
    | 0 -> None
    | _ ->
      let n = Binio.read_u32 r in
      let rec preds k acc =
        if k = 0 then List.rev acc
        else begin
          let pred = Binio.read_str r in
          let m = Binio.read_u32 r in
          let rec tuples j acc =
            if j = 0 then List.rev acc
            else tuples (j - 1) (Binio.read_tuple r :: acc)
          in
          preds (k - 1) ((pred, tuples m []) :: acc)
        end
      in
      Some (preds n [])
  in
  ( variant,
    null_base,
    { Chase.rounds; tgd_fires; triggers_checked; nulls_created; egd_merges },
    frontier )

let of_string data =
  let fail offset what reason = Error { offset; what; reason } in
  (
    let len = String.length data in
    if len < String.length magic + 8 then
      fail len "header" "file shorter than the snapshot header"
    else if String.sub data 0 (String.length magic) <> magic then
      fail 0 "header" "bad magic: not an mdqa snapshot"
    else begin
      let r = Binio.reader ~offset:0 data in
      (* skip the magic *)
      for _ = 1 to String.length magic do ignore (Binio.read_u8 r) done;
      match
        let v = Binio.read_u32 r in
        if v <> version then
          raise
            (Binio.Corrupt
               { offset = 8;
                 reason =
                   Printf.sprintf "unsupported snapshot version %d (want %d)" v
                     version });
        let count = Binio.read_u32 r in
        let tbl = Hashtbl.create 4 in
        for _ = 1 to count do
          let tag = Char.chr (Binio.read_u8 r) in
          let plen = Binio.read_u32 r in
          let crc = Binio.read_u32 r in
          let start = Binio.pos r in
          if start + plen > len then
            raise
              (Binio.Corrupt
                 { offset = start;
                   reason =
                     Printf.sprintf
                       "section '%c' claims %d bytes but only %d remain" tag
                       plen (len - start) });
          let payload = String.sub data start plen in
          if Crc32.digest payload <> crc then
            raise
              (Binio.Corrupt
                 { offset = start;
                   reason =
                     Printf.sprintf "section '%c' checksum mismatch" tag });
          (* skip over the payload in the outer reader *)
          let r' = Binio.reader ~offset:start payload in
          Hashtbl.replace tbl tag r';
          for _ = 1 to plen do ignore (Binio.read_u8 r) done
        done;
        let section tag =
          match Hashtbl.find_opt tbl tag with
          | Some r' -> r'
          | None ->
            raise
              (Binio.Corrupt
                 { offset = len;
                   reason = Printf.sprintf "missing section '%c'" tag })
        in
        let program_text = Binio.read_str (section 'P') in
        let instance = Binio.read_instance (section 'I') in
        let variant, null_base, stats, frontier = decode_state (section 'C') in
        { program_text; variant; instance; null_base; stats; frontier }
      with
      | s -> Ok s
      | exception Binio.Corrupt { offset; reason } ->
        fail offset "snapshot" reason
    end)

let read ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error { offset = 0; what = "file"; reason = e }
  | exception End_of_file ->
    Error
      { offset = 0; what = "file"; reason = "unreadable (concurrent truncation)" }
  | data -> of_string data

(* Header walk only: the per-section CRCs without decoding any payload.
   Replication compares these at snapshot boundaries — a standby whose
   program section disagrees with its primary's is diverged, not stale,
   and must refuse to follow rather than silently fork. *)
let section_crcs data =
  let fail offset what reason = Error { offset; what; reason } in
  let len = String.length data in
  if len < String.length magic + 8 then
    fail len "header" "file shorter than the snapshot header"
  else if String.sub data 0 (String.length magic) <> magic then
    fail 0 "header" "bad magic: not an mdqa snapshot"
  else begin
    let r = Binio.reader ~offset:0 data in
    for _ = 1 to String.length magic do ignore (Binio.read_u8 r) done;
    match
      let v = Binio.read_u32 r in
      if v <> version then
        raise
          (Binio.Corrupt
             { offset = 8;
               reason =
                 Printf.sprintf "unsupported snapshot version %d (want %d)" v
                   version });
      let count = Binio.read_u32 r in
      let crcs = ref [] in
      for _ = 1 to count do
        let tag = Char.chr (Binio.read_u8 r) in
        let plen = Binio.read_u32 r in
        let crc = Binio.read_u32 r in
        let start = Binio.pos r in
        if start + plen > len then
          raise
            (Binio.Corrupt
               { offset = start;
                 reason =
                   Printf.sprintf
                     "section '%c' claims %d bytes but only %d remain" tag
                     plen (len - start) });
        crcs := (tag, crc) :: !crcs;
        for _ = 1 to plen do ignore (Binio.read_u8 r) done
      done;
      List.rev !crcs
    with
    | crcs -> Ok crcs
    | exception Binio.Corrupt { offset; reason } -> fail offset "snapshot" reason
  end
