module Tuple = Mdqa_relational.Tuple
module Value = Mdqa_relational.Value
module Chase = Mdqa_datalog.Chase

type record =
  | Fact of string * Tuple.t
  | Merge of { from_ : Value.t; into : Value.t }
  | Round of { merged : bool; stats : Chase.stats }

let magic = "MDQAJRNL"
let version = 1
let header_len = String.length magic + 4

(* --- encoding -------------------------------------------------------- *)

let encode_payload b = function
  | Fact (pred, t) ->
    Binio.u8 b 1;
    Binio.str b pred;
    Binio.tuple b t
  | Merge { from_; into } ->
    Binio.u8 b 2;
    Binio.value b from_;
    Binio.value b into
  | Round { merged; stats } ->
    Binio.u8 b 3;
    Binio.u8 b (if merged then 1 else 0);
    Binio.i64 b stats.Chase.rounds;
    Binio.i64 b stats.Chase.tgd_fires;
    Binio.i64 b stats.Chase.triggers_checked;
    Binio.i64 b stats.Chase.nulls_created;
    Binio.i64 b stats.Chase.egd_merges

let decode_payload r =
  match Binio.read_u8 r with
  | 1 ->
    let pred = Binio.read_str r in
    Fact (pred, Binio.read_tuple r)
  | 2 ->
    let from_ = Binio.read_value r in
    let into = Binio.read_value r in
    Merge { from_; into }
  | 3 ->
    let merged = Binio.read_u8 r <> 0 in
    let rounds = Binio.read_i64 r in
    let tgd_fires = Binio.read_i64 r in
    let triggers_checked = Binio.read_i64 r in
    let nulls_created = Binio.read_i64 r in
    let egd_merges = Binio.read_i64 r in
    Round
      { merged;
        stats =
          { Chase.rounds; tgd_fires; triggers_checked; nulls_created;
            egd_merges } }
  | tag ->
    raise
      (Binio.Corrupt
         { offset = Binio.pos r;
           reason = Printf.sprintf "unknown journal record tag %d" tag })

(* --- writing --------------------------------------------------------- *)

type writer = { fd : Unix.file_descr; mutable closed : bool }

(* EINTR-safe: a signal landing mid-write (SIGTERM starting a server
   drain, SIGCHLD from a harness) must not truncate a record. *)
let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let rec fsync_retry fd =
  try Unix.fsync fd
  with Unix.Unix_error (Unix.EINTR, _, _) -> fsync_retry fd

let create ~path =
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let b = Buffer.create 16 in
  Buffer.add_string b magic;
  Binio.u32 b version;
  write_all fd (Buffer.contents b);
  fsync_retry fd;
  { fd; closed = false }

let append w record =
  if w.closed then invalid_arg "Journal.append: writer is closed";
  let payload = Buffer.create 64 in
  encode_payload payload record;
  let payload = Buffer.contents payload in
  let frame = Buffer.create (String.length payload + 8) in
  Binio.u32 frame (String.length payload);
  Binio.u32 frame (Crc32.digest payload);
  Buffer.add_string frame payload;
  let frame = Buffer.contents frame in
  write_all w.fd frame;
  String.length frame

let sync w = if not w.closed then fsync_retry w.fd

let close w =
  if not w.closed then begin
    (try fsync_retry w.fd with Unix.Unix_error _ -> ());
    Unix.close w.fd;
    w.closed <- true
  end

(* --- recovery -------------------------------------------------------- *)

type truncation = { offset : int; reason : string }

type read_result = {
  records : (int * record) list;
  truncation : truncation option;
  valid_bytes : int;
}

let pp_truncation ppf t =
  Format.fprintf ppf "byte %d: %s" t.offset t.reason

let read ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e ->
    { records = [];
      truncation =
        Some { offset = 0; reason = "unreadable journal: " ^ e };
      valid_bytes = 0 }
  | exception End_of_file ->
    { records = [];
      truncation =
        Some
          { offset = 0;
            reason =
              "unreadable journal: file shrank mid-read (concurrent \
               truncation)" };
      valid_bytes = 0 }
  | data ->
    let len = String.length data in
    if len < header_len || String.sub data 0 (String.length magic) <> magic
    then
      { records = [];
        truncation =
          Some { offset = 0; reason = "bad or truncated journal header" };
        valid_bytes = 0 }
    else begin
      let ver =
        let r = Binio.reader ~offset:(String.length magic)
            (String.sub data (String.length magic) 4) in
        Binio.read_u32 r
      in
      if ver <> version then
        { records = [];
          truncation =
            Some
              { offset = String.length magic;
                reason =
                  Printf.sprintf "unsupported journal version %d (want %d)"
                    ver version };
          valid_bytes = 0 }
      else begin
        let records = ref [] in
        let pos = ref header_len in
        let stop = ref None in
        (* Walk frames; the first frame that does not fully check out
           truncates recovery at its first byte. *)
        while !stop = None && !pos < len do
          let start = !pos in
          let bad reason = stop := Some { offset = start; reason } in
          if len - start < 8 then bad "torn record frame (header cut short)"
          else begin
            let hdr = Binio.reader ~offset:start (String.sub data start 8) in
            let plen = Binio.read_u32 hdr in
            let crc = Binio.read_u32 hdr in
            if len - start - 8 < plen then
              bad
                (Printf.sprintf
                   "torn record: payload claims %d bytes, %d remain" plen
                   (len - start - 8))
            else begin
              let payload = String.sub data (start + 8) plen in
              if Crc32.digest payload <> crc then
                bad "record checksum mismatch"
              else
                match
                  let r = Binio.reader ~offset:(start + 8) payload in
                  let rec_ = decode_payload r in
                  if not (Binio.at_end r) then
                    raise
                      (Binio.Corrupt
                         { offset = start + 8 + Binio.pos r;
                           reason = "trailing bytes inside record" });
                  rec_
                with
                | rec_ ->
                  records := (start, rec_) :: !records;
                  pos := start + 8 + plen
                | exception Binio.Corrupt { reason; _ } -> bad reason
            end
          end
        done;
        { records = List.rev !records;
          truncation = !stop;
          valid_bytes = !pos }
      end
    end
