module Value = Mdqa_relational.Value
module Tuple = Mdqa_relational.Tuple
module Attribute = Mdqa_relational.Attribute
module Rel_schema = Mdqa_relational.Rel_schema
module Relation = Mdqa_relational.Relation
module Instance = Mdqa_relational.Instance

exception Corrupt of { offset : int; reason : string }

(* --- writing --------------------------------------------------------- *)

let u8 b n = Buffer.add_char b (Char.chr (n land 0xff))

let u32 b n =
  if n < 0 || n > 0xFFFFFFFF then invalid_arg "Binio.u32: out of range";
  u8 b n;
  u8 b (n lsr 8);
  u8 b (n lsr 16);
  u8 b (n lsr 24)

let i64 b n =
  let v = Int64.of_int n in
  for k = 0 to 7 do
    u8 b (Int64.to_int (Int64.shift_right_logical v (8 * k)))
  done

(* Floats travel as their raw IEEE-754 bits; [Int64.to_int] would lose
   the top bit, so the 8 bytes are emitted directly. *)
let f64 b x =
  let v = Int64.bits_of_float x in
  for k = 0 to 7 do
    u8 b (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * k)) 0xFFL))
  done

let str b s =
  u32 b (String.length s);
  Buffer.add_string b s

let value b = function
  | Value.Sym s ->
    u8 b 0;
    str b s
  | Value.Int n ->
    u8 b 1;
    i64 b n
  | Value.Real x ->
    u8 b 2;
    f64 b x
  | Value.Null k ->
    u8 b 3;
    i64 b k

let tuple b t =
  let vs = Tuple.to_list t in
  u32 b (List.length vs);
  List.iter (value b) vs

let attribute b (a : Attribute.t) =
  match Attribute.kind a with
  | Attribute.Plain ->
    u8 b 0;
    str b (Attribute.name a)
  | Attribute.Categorical { dimension; category } ->
    u8 b 1;
    str b (Attribute.name a);
    str b dimension;
    str b category

let schema b s =
  str b (Rel_schema.name s);
  let attrs = Rel_schema.attributes s in
  u32 b (List.length attrs);
  List.iter (attribute b) attrs

let relation b r =
  schema b (Relation.schema r);
  u32 b (Relation.cardinal r);
  List.iter (tuple b) (Relation.to_list r)

let instance b i =
  let rels = Instance.relations i in
  u32 b (List.length rels);
  List.iter (relation b) rels

(* --- reading --------------------------------------------------------- *)

type reader = { data : string; mutable p : int; base : int }

let reader ?(offset = 0) data = { data; p = 0; base = offset }
let pos r = r.p
let at_end r = r.p >= String.length r.data

let corrupt r reason = raise (Corrupt { offset = r.base + r.p; reason })

let need r n =
  if n < 0 || r.p + n > String.length r.data then
    corrupt r
      (Printf.sprintf "truncated: need %d more byte(s), %d left" n
         (String.length r.data - r.p))

let read_u8 r =
  need r 1;
  let v = Char.code r.data.[r.p] in
  r.p <- r.p + 1;
  v

let read_u32 r =
  need r 4;
  let b k = Char.code r.data.[r.p + k] in
  let v = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
  r.p <- r.p + 4;
  v

let read_raw_i64 r =
  need r 8;
  let v = ref 0L in
  for k = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8)
           (Int64.of_int (Char.code r.data.[r.p + k]))
  done;
  r.p <- r.p + 8;
  !v

let read_i64 r = Int64.to_int (read_raw_i64 r)
let read_f64 r = Int64.float_of_bits (read_raw_i64 r)

let read_str r =
  let n = read_u32 r in
  need r n;
  let s = String.sub r.data r.p n in
  r.p <- r.p + n;
  s

let read_value r =
  match read_u8 r with
  | 0 -> Value.Sym (read_str r)
  | 1 -> Value.Int (read_i64 r)
  | 2 -> Value.Real (read_f64 r)
  | 3 -> Value.Null (read_i64 r)
  | tag -> corrupt r (Printf.sprintf "unknown value tag %d" tag)

let read_tuple r =
  let n = read_u32 r in
  (* Each value is at least one byte, so a corrupt count fails fast on
     [need] instead of allocating unboundedly. *)
  let rec go k acc =
    if k = 0 then List.rev acc else go (k - 1) (read_value r :: acc)
  in
  Tuple.of_list (go n [])

let read_attribute r =
  match read_u8 r with
  | 0 -> Attribute.plain (read_str r)
  | 1 ->
    let name = read_str r in
    let dimension = read_str r in
    let category = read_str r in
    Attribute.categorical name ~dimension ~category
  | tag -> corrupt r (Printf.sprintf "unknown attribute tag %d" tag)

(* Construction functions validate (duplicate attributes, arity
   clashes); on CRC-passing but semantically bad data they raise
   [Invalid_argument], surfaced as corruption. *)
let build r f =
  try f () with Invalid_argument m -> corrupt r m

let read_schema r =
  let name = read_str r in
  let n = read_u32 r in
  let rec go k acc =
    if k = 0 then List.rev acc else go (k - 1) (read_attribute r :: acc)
  in
  let attrs = go n [] in
  build r (fun () -> Rel_schema.make name attrs)

let read_relation r =
  let s = read_schema r in
  let rel = Relation.create s in
  let n = read_u32 r in
  for _ = 1 to n do
    let t = read_tuple r in
    ignore (build r (fun () -> Relation.add rel t))
  done;
  rel

let read_instance r =
  let n = read_u32 r in
  let rec go k acc =
    if k = 0 then List.rev acc else go (k - 1) (read_relation r :: acc)
  in
  let rels = go n [] in
  build r (fun () -> Instance.of_relations rels)
