(** Incremental online verification of a store's on-disk CRCs.

    A scrubber re-reads the snapshot and journal continuously, a
    bounded number of bytes per {!tick}, so the single-threaded server
    loop can fold integrity checking between requests: bit rot is
    found while the previous generation is still fresh, not at the
    next crash recovery.

    The walk is safe against live mutation: the snapshot is verified
    through a retained fd (a checkpoint's [rename] leaves the fd on the
    old complete image), a journal frame past EOF is the normal torn
    tail of an in-flight append (never damage), and a journal CRC
    mismatch is reported only after re-checking that compaction did not
    truncate or replace the file mid-walk.  Each fault is reported once
    per (inode, offset), so a counter of findings counts faults, not
    scrub passes over them.

    The [store.scrub] failpoint fires on every tick; arming it with
    [err] makes the injection surface as a synthetic finding — the
    trip-and-repair path can be exercised without real corruption. *)

type finding = {
  file : string;
  offset : int;
  reason : string;
}

type t

val create : ?budget:int -> path:string -> unit -> t
(** A scrubber for the store at [path] (and its journal).  [budget]
    (default 64 KiB, floor 512) bounds the bytes verified per tick. *)

val tick : t -> finding list
(** Advance one bounded step; returns the new damage found this tick
    (usually []).  Never raises. *)

val cycles : t -> int
(** Completed full passes over snapshot + journal. *)

val bytes_scrubbed : t -> int
(** Total bytes read and verified since {!create}. *)

val errors_found : t -> int
(** Total findings reported since {!create} (injected faults
    included). *)

val close : t -> unit
(** Release the scrubber's fds.  The next {!tick} reopens and starts a
    fresh cycle. *)

val pp_finding : Format.formatter -> finding -> unit
