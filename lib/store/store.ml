module Instance = Mdqa_relational.Instance
module Relation = Mdqa_relational.Relation
module Tuple = Mdqa_relational.Tuple
module Value = Mdqa_relational.Value
module Chase = Mdqa_datalog.Chase
module Guard = Mdqa_datalog.Guard
module Diag = Mdqa_datalog.Diag
module Parser = Mdqa_datalog.Parser
module Metrics = Mdqa_obs.Metrics
module Trace = Mdqa_obs.Trace

let journal_path path = path ^ ".journal"
let generation_path path k = path ^ "." ^ string_of_int k

let generations ~path =
  let rec go k =
    if Sys.file_exists (generation_path path (k + 1)) then go (k + 1) else k
  in
  go 0

(* Keep the last [keep] committed images as path.1 (newest generation)
   .. path.[keep] (oldest).  The current image is hard-linked to path.1
   BEFORE the new one renames over path, so there is never an instant
   with zero complete snapshots on disk; a crash mid-rotation at worst
   leaves a duplicate generation, never a gap at path.  Best-effort:
   generations are redundancy, and a disk too sick to rename will make
   the snapshot write itself fail loudly a moment later. *)
let rotate_generations ~path ~keep =
  if keep > 0 && Sys.file_exists path then (
    try
      for k = keep - 1 downto 1 do
        let src = generation_path path k in
        if Sys.file_exists src then
          Unix.rename src (generation_path path (k + 1))
      done;
      let gen1 = generation_path path 1 in
      let tmp = gen1 ^ ".tmp" in
      (try Sys.remove tmp with Sys_error _ -> ());
      Unix.link path tmp;
      Unix.rename tmp gen1;
      Snapshot.fsync_dir (Filename.dirname path)
    with Unix.Unix_error _ | Sys_error _ -> ())

let zero_stats =
  { Chase.rounds = 0; tgd_fires = 0; triggers_checked = 0; nulls_created = 0;
    egd_merges = 0 }

(* Durability instruments, resolved once per store so the journal hot
   path pays two field bumps, not a registry lookup. *)
type instruments = {
  ck_total : Metrics.counter;
  ck_bytes : Metrics.counter;
  ck_seconds : Metrics.histogram;
  ck_failures : Metrics.counter;
  j_frames : Metrics.counter;
  j_bytes : Metrics.counter;
}

let instruments m =
  { ck_total =
      Metrics.counter m ~help:"snapshot checkpoints written"
        "mdqa_store_checkpoint_total";
    ck_bytes =
      Metrics.counter m ~help:"snapshot bytes written"
        "mdqa_store_checkpoint_bytes_total";
    ck_seconds =
      Metrics.histogram m ~help:"snapshot write duration"
        "mdqa_store_checkpoint_seconds";
    ck_failures =
      Metrics.counter m ~help:"failed snapshot writes"
        "mdqa_store_checkpoint_failures_total";
    j_frames =
      Metrics.counter m ~help:"journal frames appended"
        "mdqa_store_journal_frames_total";
    j_bytes =
      Metrics.counter m ~help:"journal bytes appended"
        "mdqa_store_journal_bytes_total" }

type t = {
  path : string;
  guard : Guard.t option;
  compact_bytes : int;
  keep_generations : int;
  program_text : string;
  variant : Chase.variant;
  ins : instruments;
  mutable writer : Journal.writer option;
  mutable journal_bytes : int;
  mutable max_null : int;  (** largest null label seen so far; -1 if none *)
  mutable start_frontier : (string * Tuple.t list) list option;
  mutable start_stats : Chase.stats;
  mutable write_error : exn option;
}

let create ?guard ?(compact_bytes = 4 * 1024 * 1024) ?(keep_generations = 2)
    ?metrics ~path ~program_text ~variant () =
  let m = match metrics with Some m -> m | None -> Metrics.create () in
  { path; guard; compact_bytes; keep_generations = max 0 keep_generations;
    program_text; variant; ins = instruments m;
    writer = None; journal_bytes = 0; max_null = -1; start_frontier = None;
    start_stats = zero_stats; write_error = None }

let write_error st = st.write_error
let clear_write_error st = st.write_error <- None

let close st =
  match st.writer with
  | None -> ()
  | Some w ->
    st.writer <- None;
    Journal.close w

(* Budget accounting runs AFTER the corresponding write so that the
   journal never lies about what happened; a [Guard.Exhausted] raised
   here propagates out of on_fact/on_merge and degrades the chase. *)
let account st n =
  match st.guard with
  | None -> ()
  | Some g -> Guard.count_checkpoint_bytes g n

let note_value st = function
  | Value.Null k -> if k > st.max_null then st.max_null <- k
  | _ -> ()

let note_tuple st t = List.iter (note_value st) (Tuple.to_list t)

let note_instance st inst = Instance.iter_facts (fun _ t -> note_tuple st t) inst

let write_snapshot st ~instance ~frontier ~stats =
  Trace.with_span "store.checkpoint" ~attrs:[ ("path", st.path) ] @@ fun () ->
  let t0 = Guard.Clock.now () in
  rotate_generations ~path:st.path ~keep:st.keep_generations;
  match
    Snapshot.write ~path:st.path
      { Snapshot.program_text = st.program_text; variant = st.variant;
        instance; null_base = st.max_null + 1; stats; frontier }
  with
  | bytes ->
    Metrics.inc st.ins.ck_total;
    Metrics.add st.ins.ck_bytes bytes;
    Metrics.observe st.ins.ck_seconds (Guard.Clock.now () -. t0);
    bytes
  | exception e ->
    Metrics.inc st.ins.ck_failures;
    raise e

(* Compaction: fold the journal into a fresh snapshot.  The snapshot
   rename commits FIRST; only then is the journal truncated.  A crash
   between the two leaves journal records that are already in the
   snapshot — replay is idempotent, so recovery is unaffected. *)
let compact st ~instance ~frontier ~stats =
  let snap_bytes = write_snapshot st ~instance ~frontier ~stats in
  (match st.writer with Some w -> Journal.close w | None -> ());
  st.writer <- Some (Journal.create ~path:(journal_path st.path));
  st.journal_bytes <- 0;
  account st snap_bytes

let append st record =
  match st.writer with
  | None -> ()
  | Some w ->
    let n = Journal.append w record in
    st.journal_bytes <- st.journal_bytes + n;
    Metrics.inc st.ins.j_frames;
    Metrics.add st.ins.j_bytes n;
    account st n

let checkpoint st =
  { Chase.on_start =
      (fun inst ->
        note_instance st inst;
        compact st ~instance:inst ~frontier:st.start_frontier
          ~stats:st.start_stats);
    on_fact =
      (fun pred tuple ->
        note_tuple st tuple;
        append st (Journal.Fact (pred, tuple)));
    on_merge =
      (fun ~from_ ~into ->
        note_value st from_;
        note_value st into;
        append st (Journal.Merge { from_; into }));
    on_round =
      (fun ~instance ~frontier stats ->
        append st (Journal.Round { merged = frontier = None; stats });
        (match st.writer with Some w -> Journal.sync w | None -> ());
        if st.journal_bytes >= st.compact_bytes then
          compact st ~instance ~frontier ~stats);
    on_done =
      (fun ~instance _outcome stats ->
        (* Must not raise: the chase result would be lost to a full
           disk or a tripped budget.  Failures land in [write_error]. *)
        try
          compact st ~instance ~frontier:None ~stats;
          close st
        with
        | Guard.Exhausted _ ->
          (* The guard was already tripped (that is why the run is
             ending); the final image is still written before the
             accounting tick re-raises.  Not a write failure. *)
          close st
        | e -> if st.write_error = None then st.write_error <- Some e);
  }

(* One-shot snapshot write for a long-running service: the caller (the
   server's circuit breaker) decides whether and when to retry, so
   failures come back as values instead of raising — except a tripped
   guard, which is the caller's own budget and must keep propagating. *)
let checkpoint_now st ~instance ~stats =
  match
    Mdqa_obs.Failpoint.hit "store.checkpoint";
    note_instance st instance;
    write_snapshot st ~instance ~frontier:None ~stats
  with
  | bytes ->
    account st bytes;
    Ok bytes
  | exception (Guard.Exhausted _ as e) -> raise e
  | exception e ->
    if st.write_error = None then st.write_error <- Some e;
    Error e

(* --- recovery -------------------------------------------------------- *)

type recovery = {
  program_text : string;
  variant : Chase.variant;
  instance : Instance.t;
  frontier : (string * Tuple.t) list option;
  null_base : int;
  stats : Chase.stats;
  replayed : int;
  journal_truncation : Journal.truncation option;
}

type load_error =
  | No_store of string
  | Corrupt_snapshot of Snapshot.corruption
  | Bad_program of { line : int; message : string }

let pp_load_error ppf = function
  | No_store p -> Format.fprintf ppf "no snapshot at %s" p
  | Corrupt_snapshot c ->
    Format.fprintf ppf "corrupt snapshot: %a" Snapshot.pp_corruption c
  | Bad_program { line; message } ->
    Format.fprintf ppf "stored program no longer parses (line %d): %s" line
      message

let flatten_frontier = function
  | None -> None
  | Some groups ->
    Some
      (List.concat_map (fun (p, ts) -> List.map (fun t -> (p, t)) ts) groups)

let group_frontier = function
  | None -> None
  | Some pairs ->
    let tbl = Hashtbl.create 16 in
    let order = ref [] in
    List.iter
      (fun (p, t) ->
        match Hashtbl.find_opt tbl p with
        | None ->
          Hashtbl.add tbl p (ref [ t ]);
          order := p :: !order
        | Some l -> l := t :: !l)
      pairs;
    Some
      (List.rev_map (fun p -> (p, List.rev !(Hashtbl.find tbl p))) !order)

(* [load] generalized over the file layout: fsck replays the journal
   over a PREVIOUS generation image when the current snapshot is rot. *)
let load_from ~snapshot:spath ~journal:jpath =
  if not (Sys.file_exists spath) then Error (No_store spath)
  else
    match Snapshot.read ~path:spath with
    | Error c -> Error (Corrupt_snapshot c)
    | Ok snap ->
      let inst = snap.Snapshot.instance in
      let jr =
        if Sys.file_exists jpath then Journal.read ~path:jpath
        else { Journal.records = []; truncation = None; valid_bytes = 0 }
      in
      let truncation = ref jr.Journal.truncation in
      let max_null = ref (snap.Snapshot.null_base - 1) in
      let note v =
        match v with
        | Value.Null k -> if k > !max_null then max_null := k
        | _ -> ()
      in
      (* Replay state: [segment] collects the facts appended since the
         last [Round] record (in reverse); a [Round] turns the segment
         into the current frontier.  A trailing segment (crash
         mid-round) is unioned into the frontier so the resumed round
         covers both the last completed delta and the partial one. *)
      let frontier = ref (flatten_frontier snap.Snapshot.frontier) in
      let segment = ref [] in
      let segment_merged = ref false in
      let stats = ref snap.Snapshot.stats in
      let replayed = ref 0 in
      let stopped = ref false in
      let stop offset reason =
        stopped := true;
        truncation := Some { Journal.offset; reason }
      in
      List.iter
        (fun (off, record) ->
          if not !stopped then
            match record with
            | Journal.Fact (pred, tuple) -> (
              match Instance.find inst pred with
              | None ->
                stop off
                  (Printf.sprintf
                     "journal fact for predicate %S absent from snapshot" pred)
              | Some rel ->
                if Relation.arity rel <> Tuple.arity tuple then
                  stop off
                    (Printf.sprintf
                       "journal fact arity %d does not match %S/%d"
                       (Tuple.arity tuple) pred (Relation.arity rel))
                else begin
                  (* Duplicates are expected after a crash inside
                     compaction (snapshot committed, journal not yet
                     truncated): [add] is a no-op then. *)
                  if Relation.add rel tuple then
                    segment := (pred, tuple) :: !segment;
                  List.iter note (Tuple.to_list tuple);
                  incr replayed
                end)
            | Journal.Merge { from_; into } ->
              Instance.map_values inst (fun v ->
                  if Value.equal v from_ then into else v);
              note into;
              segment_merged := true;
              incr replayed
            | Journal.Round { merged; stats = s } ->
              stats := s;
              frontier :=
                (if merged || !segment_merged then None
                 else Some (List.rev !segment));
              segment := [];
              segment_merged := false;
              incr replayed)
        jr.Journal.records;
      let frontier =
        if !segment_merged then None
        else
          match (!frontier, List.rev !segment) with
          | Some f, trailing -> Some (f @ trailing)
          | None, _ ->
            (* Unknown base frontier: only a full first round is sound,
               trailing facts or not. *)
            None
      in
      Ok
        { program_text = snap.Snapshot.program_text;
          variant = snap.Snapshot.variant;
          instance = inst;
          frontier;
          null_base = !max_null + 1;
          stats = !stats;
          replayed = !replayed;
          journal_truncation = !truncation }

let load ~path = load_from ~snapshot:path ~journal:(journal_path path)

let resume ?guard ?compact_bytes ?max_steps ?max_nulls ?metrics ~path () =
  match load ~path with
  | Error e -> Error e
  | Ok r -> (
    match Parser.parse_string r.program_text with
    | exception Parser.Error { line; message; _ } ->
      Error (Bad_program { line; message })
    | parsed ->
      let st =
        create ?guard ?compact_bytes ?metrics ~path
          ~program_text:r.program_text ~variant:r.variant ()
      in
      st.max_null <- r.null_base - 1;
      st.start_frontier <- group_frontier r.frontier;
      st.start_stats <- r.stats;
      let result =
        Chase.resume ~variant:r.variant ?guard ?max_steps ?max_nulls
          ~checkpoint:(checkpoint st) ?frontier:r.frontier
          ~null_base:r.null_base ~prior_stats:r.stats ?metrics
          parsed.Parser.program r.instance
      in
      Ok (result, r))

(* --- replication shipping -------------------------------------------- *)

(* The ship path moves a store's exact on-disk bytes: the snapshot
   image travels whole (its section CRCs validate it at the far end),
   the journal travels as byte slices appended verbatim — so the
   standby's recovery semantics (torn-tail truncation, idempotent
   replay) are literally the local crash-recovery code. *)

let path st = st.path

let read_file_string p =
  match
    let ic = open_in_bin p in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | data -> Ok data
  | exception Sys_error e -> Error e
  | exception End_of_file -> Error "unreadable (concurrent truncation)"

let read_image ~path =
  if not (Sys.file_exists path) then Error (Printf.sprintf "no snapshot at %s" path)
  else read_file_string path

let read_journal_slice ~path ~offset ~len =
  let jpath = journal_path path in
  if not (Sys.file_exists jpath) then Ok ("", 0)
  else
    match Unix.openfile jpath [ Unix.O_RDONLY ] 0 with
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
    | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          match
            let total = (Unix.fstat fd).Unix.st_size in
            let offset = min offset total in
            let want = max 0 (min len (total - offset)) in
            ignore (Unix.lseek fd offset Unix.SEEK_SET);
            let buf = Bytes.create want in
            let got = ref 0 in
            (let continue = ref true in
             while !continue && !got < want do
               match Unix.read fd buf !got (want - !got) with
               | 0 -> continue := false
               | n -> got := !got + n
               | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
             done);
            (Bytes.sub_string buf 0 !got, total)
          with
          | r -> Ok r
          | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))

(* EINTR-safe raw write used for installed journal bytes. *)
let write_string_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let rec fsync_retry fd =
  try Unix.fsync fd
  with Unix.Unix_error (Unix.EINTR, _, _) -> fsync_retry fd

let install_stream ~path ~snapshot ~journal =
  match Snapshot.of_string snapshot with
  | Error c ->
    Error
      (Format.asprintf "shipped snapshot rejected: %a" Snapshot.pp_corruption c)
  | Ok _ -> (
    match
      ignore (Snapshot.write_raw ~path snapshot);
      let jpath = journal_path path in
      (* The journal swap gets the same directory-fsync discipline as
         the snapshot rename: without it, a crash can resurrect the
         removed (stale) journal beside the freshly installed snapshot
         and replay deltas from a different epoch over it. *)
      if journal = "" then begin
        if Sys.file_exists jpath then begin
          Sys.remove jpath;
          Snapshot.fsync_dir (Filename.dirname jpath)
        end
      end
      else begin
        let fd =
          Unix.openfile (jpath ^ ".tmp")
            [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
            0o644
        in
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () ->
            write_string_all fd journal;
            fsync_retry fd);
        Unix.rename (jpath ^ ".tmp") jpath;
        Snapshot.fsync_dir (Filename.dirname jpath)
      end
    with
    | () -> Ok ()
    | exception Sys_error e -> Error e
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))

let append_journal_bytes ~path bytes =
  if bytes = "" then Ok ()
  else
    match
      Unix.openfile (journal_path path)
        [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
        0o644
    with
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
    | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          match
            write_string_all fd bytes;
            fsync_retry fd
          with
          | () -> Ok ()
          | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))

(* Inspection lives in {!Fsck}: [check] is the integrity report behind
   [mdqa store verify], [repair] the salvage chain behind
   [mdqa store fsck --repair]. *)
