(* Corruption triage and the salvage chain — the self-healing layer
   over {!Store}.

   [check] classifies damage without writing anything: it is the report
   behind [mdqa store verify].  [repair] executes the salvage chain —
   current snapshot + longest clean journal prefix, then the newest
   clean previous generation + journal replay, then (when the caller
   supplies one) a re-sync from a live peer — rewriting the store with
   the same tmp/fsync/rename discipline as every snapshot write.
   Damaged originals are never deleted: they are renamed into
   [<path>.d/quarantine/] before a fresh file takes their place, and
   every rewrite is ordered so that a crash at any point leaves a store
   no worse than the one repair started from. *)

module Diag = Mdqa_datalog.Diag
module Parser = Mdqa_datalog.Parser

type damage_kind =
  | Bad_header
  | Torn_tail
  | Crc_mismatch
  | Inapplicable
  | Unreadable
  | Bad_program

type damage = {
  file : string;
  kind : damage_kind;
  offset : int;
  reason : string;
}

type status = Clean | Salvageable | Unrepairable

type report = {
  path : string;
  status : status;
  damage : damage list;
  generations : int;
  plan : string option;
      (** the salvage stage [repair] would use (or used), human-readable *)
  repaired : bool;
  quarantined : string list;
  diags : Diag.t list;
  infos : string list;
}

let kind_name = function
  | Bad_header -> "bad-header"
  | Torn_tail -> "torn-tail"
  | Crc_mismatch -> "crc-mismatch"
  | Inapplicable -> "inapplicable-record"
  | Unreadable -> "unreadable"
  | Bad_program -> "bad-program"

let status_name = function
  | Clean -> "clean"
  | Salvageable -> "salvageable"
  | Unrepairable -> "unrepairable"

let exit_code r =
  match r.status with Clean -> 0 | Salvageable -> 2 | Unrepairable -> 1

(* --- classification --------------------------------------------------- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* The reader errors carry prose, not tags; triage keys on the stable
   phrases.  Classification only drives reporting — the salvage chain
   treats every kind the same way. *)
let classify_snapshot file (c : Snapshot.corruption) =
  let kind =
    if c.what = "file" then Unreadable
    else if c.what = "header" then Bad_header
    else if contains c.reason "remain" then Torn_tail
    else Crc_mismatch
  in
  { file; kind; offset = c.offset; reason = c.reason }

let classify_journal file (t : Journal.truncation) =
  let kind =
    if String.starts_with ~prefix:"unreadable journal" t.reason then Unreadable
    else if
      String.starts_with ~prefix:"bad or truncated journal header" t.reason
      || String.starts_with ~prefix:"unsupported journal version" t.reason
    then Bad_header
    else if String.starts_with ~prefix:"torn record" t.reason then Torn_tail
    else if
      contains t.reason "absent from snapshot"
      || contains t.reason "does not match"
    then Inapplicable
    else Crc_mismatch
  in
  { file; kind; offset = t.offset; reason = t.reason }

let pp_damage ppf d =
  Format.fprintf ppf "%s: byte %d (%s): %s" d.file d.offset (kind_name d.kind)
    d.reason

(* --- small file helpers ----------------------------------------------- *)

let file_size p =
  match (Unix.stat p).Unix.st_size with
  | s -> s
  | exception (Unix.Unix_error _ | Sys_error _) -> 0

let mkdir_p dir =
  let rec go d =
    if d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let quarantine_dir path = path ^ ".d" ^ Filename.dir_sep ^ "quarantine"

(* Numbered destinations keep every incident's evidence. *)
let quarantine_dest ~path file =
  let dir = quarantine_dir path in
  mkdir_p dir;
  let base = Filename.basename file in
  let rec pick n =
    let d = Filename.concat dir (Printf.sprintf "%s.%d" base n) in
    if Sys.file_exists d then pick (n + 1) else d
  in
  pick 1

(* Move (never delete) a damaged original out of the way.  Rename, not
   copy: it needs no read permission on a sick file, it is atomic, and
   the repair that follows writes a complete fresh file at the original
   path. *)
let quarantine ~path file =
  if not (Sys.file_exists file) then None
  else begin
    let dest = quarantine_dest ~path file in
    Unix.rename file dest;
    Snapshot.fsync_dir (quarantine_dir path);
    Snapshot.fsync_dir (Filename.dirname file);
    Some dest
  end

(* Preserve a damaged original WITHOUT vacating its path: a hard link
   into quarantine keeps the sick inode alive while a replacement
   commits over the path by rename, so there is no instant where the
   store has no file at all.  Degrades to the rename on filesystems
   without hard links. *)
let quarantine_link ~path file =
  if not (Sys.file_exists file) then None
  else begin
    let dest = quarantine_dest ~path file in
    (match Unix.link file dest with
     | () -> ()
     | exception Unix.Unix_error (_, _, _) -> Unix.rename file dest);
    Snapshot.fsync_dir (quarantine_dir path);
    Snapshot.fsync_dir (Filename.dirname file);
    Some dest
  end

(* A salvage base must both decode and carry a program that still
   parses: [resume] needs the program, so an image with valid CRCs but
   unparseable program text (a writer bug, not bit rot) is no base. *)
let program_parses text =
  match Parser.parse_string text with
  | _ -> true
  | exception Parser.Error _ -> false

let snapshot_usable path =
  match Snapshot.read ~path with
  | Error _ -> false
  | Ok snap -> program_parses snap.Snapshot.program_text

(* The newest previous generation usable as a salvage base. *)
let first_clean_generation path =
  let n = Store.generations ~path in
  let rec go k =
    if k > n then None
    else if snapshot_usable (Store.generation_path path k) then Some k
    else go (k + 1)
  in
  go 1

(* --- check ------------------------------------------------------------ *)

type collector = {
  mutable ds : Diag.t list;
  mutable is_ : string list;
  mutable qs : string list;
}

let collector () = { ds = []; is_ = []; qs = [] }
let addd c d = c.ds <- d :: c.ds
let info c fmt = Printf.ksprintf (fun s -> c.is_ <- s :: c.is_) fmt

let finish c ~path ~status ~damage ~plan ~repaired =
  let tmp = path ^ ".tmp" in
  if Sys.file_exists tmp then
    addd c
      (Diag.make ~file:tmp Diag.Hint ~code:"H052"
         "stale temporary snapshot from an interrupted write; it is \
          ignored and will be overwritten");
  { path;
    status;
    damage;
    generations = Store.generations ~path;
    plan;
    repaired;
    quarantined = List.rev c.qs;
    diags = List.rev c.ds;
    infos = List.rev c.is_ }

let recovery_infos c jpath (r : Store.recovery) =
  info c "snapshot: %d relations, %d tuples, null base %d"
    (List.length (Mdqa_relational.Instance.relations r.instance))
    (Mdqa_relational.Instance.total_tuples r.instance)
    r.null_base;
  info c "chase state: %d rounds, %d TGD fires, %d EGD merges%s"
    r.stats.Mdqa_datalog.Chase.rounds r.stats.Mdqa_datalog.Chase.tgd_fires
    r.stats.Mdqa_datalog.Chase.egd_merges
    (match r.frontier with
     | Some f -> Printf.sprintf "; frontier of %d facts" (List.length f)
     | None -> "; no frontier (full first round on resume)");
  if Sys.file_exists jpath then
    info c "journal: %d records replayed" r.replayed
  else info c "journal: absent"

let snapshot_damage_text path = function
  | Some d ->
    Format.asprintf "snapshot corrupt: %a" pp_damage d
  | None -> Printf.sprintf "no snapshot at %s" path

(* Classify the store without writing anything.  The status maps to the
   verify/fsck exit-code contract: Clean 0, Salvageable 2 (warnings
   only), Unrepairable 1 (E032). *)
let check ~path =
  let c = collector () in
  let jpath = Store.journal_path path in
  (* The current snapshot is not a salvage base: probe the generation
     chain.  [dmg = None] means the snapshot is missing outright. *)
  let salvage_via_generations dmg =
    let damage = Option.to_list dmg in
    match first_clean_generation path with
    | Some k ->
      addd c
        (Diag.make ~file:path Diag.Warning ~code:"W051"
           (Printf.sprintf
              "%s; generation %d (%s) is clean — `mdqa store fsck \
               --repair` will salvage from it"
              (snapshot_damage_text path dmg)
              k
              (Store.generation_path path k)));
      finish c ~path ~status:Salvageable ~damage
        ~plan:
          (Some
             (Printf.sprintf "salvage from generation %d + journal replay" k))
        ~repaired:false
    | None ->
      addd c
        (Diag.make ~file:path Diag.Error ~code:"E023"
           (snapshot_damage_text path dmg));
      let gens = Store.generations ~path in
      addd c
        (Diag.make ~file:path Diag.Error ~code:"E032"
           (if gens = 0 then
              "store unrepairable: no clean snapshot and no previous \
               generation to salvage from"
            else
              Printf.sprintf
                "store unrepairable: no clean snapshot and none of the %d \
                 previous generation(s) decode cleanly"
                gens));
      finish c ~path ~status:Unrepairable ~damage ~plan:None ~repaired:false
  in
  let bad_program_damage ~line ~message =
    { file = path;
      kind = Bad_program;
      offset = 0;
      reason =
        Printf.sprintf "stored program no longer parses (line %d): %s" line
          message }
  in
  let snapshot_state =
    if not (Sys.file_exists path) then `Missing
    else
      match Snapshot.read ~path with
      | Ok _ -> `Ok
      | Error corr -> `Damaged (classify_snapshot path corr)
  in
  match snapshot_state with
  | `Ok -> (
    match Store.load ~path with
    | Error (Store.Bad_program { line; message }) ->
      (* deterministic, not a race: the image decodes (CRCs rule out
         bit rot) but its program text cannot drive a resume *)
      salvage_via_generations (Some (bad_program_damage ~line ~message))
    | Error ((Store.No_store _ | Store.Corrupt_snapshot _) as e) ->
      (* the snapshot decoded a moment ago; only a race can land here *)
      addd c
        (Diag.make ~file:path Diag.Error ~code:"E023"
           (Format.asprintf "%a" Store.pp_load_error e));
      addd c
        (Diag.make ~file:path Diag.Error ~code:"E032"
           "store unrepairable: it changed underneath the check; re-run");
      finish c ~path ~status:Unrepairable ~damage:[] ~plan:None
        ~repaired:false
    | Ok r -> (
      match Parser.parse_string r.program_text with
      | exception Parser.Error { line; message; _ } ->
        salvage_via_generations (Some (bad_program_damage ~line ~message))
      | _ -> (
        recovery_infos c jpath r;
        match r.journal_truncation with
        | None ->
          finish c ~path ~status:Clean ~damage:[] ~plan:None ~repaired:false
        | Some t ->
          let d = classify_journal jpath t in
          addd c
            (Diag.make ~file:jpath Diag.Warning ~code:"W046"
               (Format.asprintf
                  "journal truncated at %a (%s); %d records recovered"
                  Journal.pp_truncation t (kind_name d.kind) r.replayed));
          finish c ~path ~status:Salvageable ~damage:[ d ]
            ~plan:
              (Some
                 (Printf.sprintf
                    "fold the %d recovered journal records into a fresh \
                     snapshot and drop the damaged suffix"
                    r.replayed))
            ~repaired:false)))
  | `Missing -> salvage_via_generations None
  | `Damaged d -> salvage_via_generations (Some d)

(* --- repair ----------------------------------------------------------- *)

let snapshot_of_recovery (r : Store.recovery) =
  (* [frontier = None] forces a full (always sound) first round on
     resume: the recovered frontier may predate records the salvage
     dropped, and soundness beats one round of restart cost. *)
  { Snapshot.program_text = r.program_text;
    variant = r.variant;
    instance = r.instance;
    null_base = r.null_base;
    stats = r.stats;
    frontier = None }

let fresh_journal jpath =
  Journal.close (Journal.create ~path:jpath);
  Snapshot.fsync_dir (Filename.dirname jpath)

let note_quarantined c what = function
  | None -> ()
  | Some dest ->
    c.qs <- dest :: c.qs;
    addd c
      (Diag.make ~file:dest Diag.Hint ~code:"H056"
         (Printf.sprintf "damaged %s preserved in quarantine" what))

(* Execute the salvage chain.  Every stage is ordered so an I/O failure
   or crash mid-repair leaves the store recoverable by a later repair:
   the local stages commit new data (rename) before the old file leaves
   its path (the damaged snapshot is preserved by a hard link, not
   moved), and the peer re-sync stage — which must vacate the damaged
   files before the ship installs — moves them straight back when the
   sync fails, so an unrepairable store keeps its original bytes. *)
let repair ?resync ~path () =
  Mdqa_obs.Failpoint.hit "store.fsck";
  let pre = check ~path in
  if pre.status = Clean then
    { pre with infos = pre.infos @ [ "store is clean; nothing to repair" ] }
  else begin
    let c = collector () in
    let jpath = Store.journal_path path in
    let attempt () =
      match (pre.status, pre.plan) with
      | Salvageable, _ when Sys.file_exists path && snapshot_usable path ->
        (* Stage 1: clean snapshot, damaged journal.  Fold the valid
           prefix in, then retire the journal.  The new snapshot
           commits FIRST: a failure after it leaves the journal's valid
           prefix replaying as idempotent no-ops. *)
        let r = Result.get_ok (Store.load ~path) in
        let jsize = file_size jpath in
        ignore (Snapshot.write ~path (snapshot_of_recovery r));
        note_quarantined c "journal" (quarantine ~path jpath);
        fresh_journal jpath;
        (match r.journal_truncation with
         | Some t ->
           addd c
             (Diag.make ~file:jpath Diag.Warning ~code:"W052"
                (Printf.sprintf
                   "dropped %d journal bytes past the valid prefix (%s); \
                    %d records were recovered into the new snapshot"
                   (max 0 (jsize - t.offset))
                   t.reason r.replayed))
         | None -> ());
        info c "repaired: folded %d journal records into a fresh snapshot"
          r.replayed;
        Ok ()
      | Salvageable, _ -> (
        (* Stage 2: damaged snapshot, clean previous generation.  The
           journal is replayed over the older image as far as it
           applies — replay is idempotent and stops at the first record
           the generation cannot absorb. *)
        match first_clean_generation path with
        | None -> Error "the clean generation vanished mid-repair"
        | Some k ->
          let gpath = Store.generation_path path k in
          (match Store.load_from ~snapshot:gpath ~journal:jpath with
           | Error e ->
             Error (Format.asprintf "%a" Store.pp_load_error e)
           | Ok r ->
             let jsize = file_size jpath in
             (* hard-link the damaged image into quarantine, then let
                the replacement rename over it: evidence preserved with
                no instant where [path] has no snapshot *)
             note_quarantined c "snapshot" (quarantine_link ~path path);
             ignore (Snapshot.write ~path (snapshot_of_recovery r));
             note_quarantined c "journal" (quarantine ~path jpath);
             fresh_journal jpath;
             addd c
               (Diag.make ~file:path Diag.Warning ~code:"W051"
                  (Printf.sprintf
                     "salvaged from generation %d (%s); %d journal records \
                      replayed on top"
                     k gpath r.replayed));
             (match r.journal_truncation with
              | Some t ->
                addd c
                  (Diag.make ~file:jpath Diag.Warning ~code:"W052"
                     (Printf.sprintf
                        "dropped %d journal bytes the generation could not \
                         absorb (%s)"
                        (max 0 (jsize - t.offset))
                        t.reason))
              | None -> ());
             info c "repaired: salvaged from generation %d" k;
             Ok ()))
      | Unrepairable, _ -> (
        (* Stage 3: nothing local is salvageable; re-sync from a live
           peer when the caller gave us one.  The damaged files move to
           quarantine BEFORE the sync (a corrupt local image could
           otherwise fail the peer's divergence check), but a failed
           sync moves them straight back: an unrepairable store is left
           byte-identical, not emptied into quarantine. *)
        match resync with
        | None -> Error "no local copy is salvageable"
        | Some sync ->
          let qs = quarantine ~path path in
          let qj = quarantine ~path jpath in
          (match sync () with
           | Ok () ->
             note_quarantined c "snapshot" qs;
             note_quarantined c "journal" qj;
             info c "repaired: store re-synced from peer";
             Ok ()
           | Error msg ->
             let restore what orig = function
               | None -> ()
               | Some dest ->
                 if Sys.file_exists orig then
                   (* the failed sync left something here; keep it and
                      keep the evidence where it is *)
                   note_quarantined c what (Some dest)
                 else begin
                   Unix.rename dest orig;
                   Snapshot.fsync_dir (Filename.dirname orig)
                 end
             in
             restore "snapshot" path qs;
             restore "journal" jpath qj;
             Error (Printf.sprintf "peer re-sync failed: %s" msg)))
      | Clean, _ -> Ok ()
    in
    let outcome =
      match attempt () with
      | r -> r
      | exception e -> Error (Printexc.to_string e)
    in
    match outcome with
    | Ok () ->
      let post = check ~path in
      { post with
        damage = pre.damage;
        plan = pre.plan;
        repaired = post.status = Clean;
        quarantined = List.rev c.qs;
        diags = List.rev c.ds @ post.diags;
        infos = List.rev c.is_ @ post.infos }
    | Error why ->
      addd c
        (Diag.make ~file:path Diag.Error ~code:"E032"
           (Printf.sprintf "store unrepairable: %s" why));
      List.iter
        (fun d ->
          if d.Diag.code = "E023" then addd c d)
        pre.diags;
      { pre with
        status = Unrepairable;
        repaired = false;
        quarantined = List.rev c.qs;
        diags = List.rev c.ds }
  end

(* --- rendering -------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | ch when Char.code ch < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char buf ch)
    s;
  Buffer.contents buf

let to_json r =
  let buf = Buffer.create 512 in
  let str s = Printf.sprintf "\"%s\"" (json_escape s) in
  Buffer.add_string buf
    (Printf.sprintf "{\"path\":%s,\"status\":%s,\"repaired\":%b,"
       (str r.path)
       (str (status_name r.status))
       r.repaired);
  Buffer.add_string buf
    (Printf.sprintf "\"generations\":%d,\"plan\":%s," r.generations
       (match r.plan with Some p -> str p | None -> "null"));
  Buffer.add_string buf "\"damage\":[";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"file\":%s,\"kind\":%s,\"offset\":%d,\"reason\":%s}"
           (str d.file)
           (str (kind_name d.kind))
           d.offset (str d.reason)))
    r.damage;
  Buffer.add_string buf "],\"quarantined\":[";
  List.iteri
    (fun i q ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (str q))
    r.quarantined;
  Buffer.add_string buf "],\"info\":[";
  List.iteri
    (fun i l ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (str l))
    r.infos;
  (* the diagnostics ride as the same object `mdqa check --json` emits,
     so downstream tooling shares one parser *)
  Buffer.add_string buf "],\"report\":";
  Buffer.add_string buf (Diag.to_json ~file:r.path r.diags);
  Buffer.add_char buf '}';
  Buffer.contents buf

let print_text r =
  List.iter print_endline r.infos;
  List.iter (fun d -> Format.printf "%a@." Diag.pp d) r.diags;
  (match r.plan with
   | Some p when not r.repaired -> Format.printf "salvage plan: %s@." p
   | _ -> ());
  Format.printf "status: %s%s (%a)@." (status_name r.status)
    (if r.repaired then " (repaired)" else "")
    Diag.pp_summary r.diags
