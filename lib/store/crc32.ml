(* CRC-32/ISO-HDLC: polynomial 0xEDB88320 (reflected), init and final
   xor 0xFFFFFFFF — the checksum of zlib, PNG and gzip, so stored files
   can be cross-checked with standard tools. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let mask = 0xFFFFFFFF

let run get ?(pos = 0) ?len data total =
  let len = Option.value ~default:(total - pos) len in
  if pos < 0 || len < 0 || pos + len > total then
    invalid_arg "Crc32.digest: out of bounds";
  let t = Lazy.force table in
  let c = ref mask in
  for i = pos to pos + len - 1 do
    c := t.((!c lxor Char.code (get data i)) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor mask

let digest ?pos ?len s = run String.unsafe_get ?pos ?len s (String.length s)

let digest_bytes ?pos ?len b =
  run Bytes.unsafe_get ?pos ?len b (Bytes.length b)

(* Streaming form, for walkers that cannot hold the whole file (the
   online scrubber checks a snapshot a few KiB per select-loop tick).
   The running value carries the un-finalized register; feed in chunks,
   finish applies the final xor.  [finish (feed (feed start a) b) =
   digest (a ^ b)]. *)

type running = int

let start = mask

let feed c b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Crc32.feed: out of bounds";
  let t = Lazy.force table in
  let c = ref c in
  for i = pos to pos + len - 1 do
    c := t.((!c lxor Char.code (Bytes.unsafe_get b i)) land 0xff)
         lxor (!c lsr 8)
  done;
  !c

let finish c = c lxor mask
