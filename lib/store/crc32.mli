(** CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven.

    Every section of a {!Snapshot} and every record of a {!Journal}
    carries a CRC of its payload so that torn writes, bit rot and
    truncation are detected on read instead of surfacing as garbage
    instances.  Checksums are kept as non-negative OCaml [int]s
    (always < 2{^32}). *)

val digest : ?pos:int -> ?len:int -> string -> int
(** CRC-32 of [len] bytes of [s] starting at [pos] (defaults: the whole
    string).  Result is in [\[0, 0xFFFF_FFFF\]]. *)

val digest_bytes : ?pos:int -> ?len:int -> bytes -> int

(** {1 Streaming} — for incremental walkers ({!Scrub}) that checksum a
    file a bounded number of bytes per tick instead of in one pass.
    [finish (feed start b)] equals [digest_bytes b]. *)

type running
(** An in-progress CRC register (not yet final-xored). *)

val start : running

val feed : running -> bytes -> pos:int -> len:int -> running

val finish : running -> int
(** The finalized checksum, comparable with {!digest}'s result. *)
