(** Corruption triage and the salvage chain for {!Store} files.

    A store's on-disk state is a snapshot, an append-only journal, and
    (since generational snapshots) a chain of previous committed images
    [path.1], [path.2], ...  [check] walks all of them and classifies
    what it finds; [repair] executes the salvage chain:

    + current snapshot + the longest clean journal prefix (folds the
      recovered records into a fresh snapshot, drops the damaged
      suffix);
    + the newest clean previous generation + journal replay (replay is
      idempotent and stops at the first record the older image cannot
      absorb);
    + a re-sync from a live peer, when the caller supplies one (the CLI
      wires [--from HOST:PORT] to the replication ship API).

    Repair never destroys evidence: every damaged original is preserved
    under [<path>.d/quarantine/] (numbered, never overwritten).  The
    local stages commit new data (tmp + fsync + rename) before any old
    file leaves its path (the damaged snapshot survives the rename via
    a hard link into quarantine) — a crash at any point mid-repair
    leaves a store no worse than the one repair started from.  The peer
    re-sync stage must move the damaged files aside before the ship
    installs; when the sync then fails they are moved straight back, so
    a store that no stage can save is reported [Unrepairable] with
    [E032] and keeps its original bytes; repair never invents data. *)

type damage_kind =
  | Bad_header  (** magic/version/length framing is wrong *)
  | Torn_tail  (** the file ends mid-structure — the crash signature *)
  | Crc_mismatch  (** framing intact, checksum wrong — bit rot *)
  | Inapplicable
      (** a well-formed journal record its base image cannot absorb
          (foreign predicate or arity) — version or epoch skew *)
  | Unreadable  (** the file cannot be opened or read at all *)
  | Bad_program
      (** the image decodes but its stored program text no longer
          parses — a writer bug, not bit rot (the section CRCs are
          intact); the image cannot drive a resume *)

type damage = {
  file : string;
  kind : damage_kind;
  offset : int;  (** first untrusted byte *)
  reason : string;
}

type status =
  | Clean
  | Salvageable  (** damaged, but a local salvage stage applies *)
  | Unrepairable
      (** no clean snapshot and no clean generation — only a peer
          re-sync can help *)

type report = {
  path : string;
  status : status;
  damage : damage list;
  generations : int;  (** previous generations present on disk *)
  plan : string option;
      (** the salvage stage [repair] would use (or used) *)
  repaired : bool;  (** [repair] ran its chain and re-verified clean *)
  quarantined : string list;  (** where damaged originals were moved *)
  diags : Mdqa_datalog.Diag.t list;
      (** located diagnostics: E023/E032 errors, W046/W051/W052
          warnings, H052/H056 hints *)
  infos : string list;  (** human-readable store summary / action log *)
}

val check : path:string -> report
(** Classify without writing anything.  Statuses align with
    {!Mdqa_datalog.Diag.exit_code}: [Clean] carries hints at most,
    [Salvageable] warnings, [Unrepairable] errors. *)

val repair :
  ?resync:(unit -> (unit, string) result) -> path:string -> unit -> report
(** Run the salvage chain and rewrite the store.  Idempotent: repairing
    a clean store is a no-op, and repairing twice changes nothing the
    second time.  [resync] is stage 3 — called only after the local
    stages are exhausted {e and} the damaged originals are quarantined,
    it must leave a fresh installable store at [path] (e.g. via
    {!Store.install_stream}); if it fails, the quarantined originals
    are restored to their paths (except any a partial install already
    replaced, which stay in quarantine).  Never raises: unexpected I/O
    failures come back as an [Unrepairable] report with [E032]. *)

val exit_code : report -> int
(** The verify/fsck CLI contract: [Clean] 0, [Salvageable] 2,
    [Unrepairable] 1. *)

val quarantine_dir : string -> string
(** [quarantine_dir path] is [path ^ ".d/quarantine"]. *)

val kind_name : damage_kind -> string
(** ["torn-tail"], ["crc-mismatch"], ... *)

val status_name : status -> string

val to_json : report -> string
(** One JSON object: path, status, repaired, generations, plan, damage,
    quarantined files, info lines, and the diagnostics as the same
    ["report"] object [mdqa check --json] emits. *)

val print_text : report -> unit
(** Human-readable rendering to stdout: info lines, one diagnostic per
    line ({!Mdqa_datalog.Diag.pp}), the salvage plan, and a status
    summary line. *)

val pp_damage : Format.formatter -> damage -> unit
