(** Crash-safe checkpoint stores for the chase.

    A store makes a long chase durable: its state on disk is a
    {!Snapshot} (the base image) plus a {!Journal} (the deltas since),
    kept at [path] and [path ^ ".journal"].  Attach a store to
    [Chase.run ~checkpoint] and every run — saturated, degraded by a
    {!Mdqa_datalog.Guard} budget, killed by the OS — leaves a resumable
    image behind; {!resume} replays it and continues to the same
    fixpoint the uninterrupted run reaches.

    {2 Crash-safety invariants}

    - Snapshot writes are atomic (write-temp, fsync, rename, fsync
      directory): [path] always holds a complete old or complete new
      image, never a torn one.
    - The journal is append-only with per-record CRCs; {!load} replays
      the longest valid prefix and {e truncates} at the first torn or
      corrupt record instead of failing.
    - Compaction (snapshot rewrite, journal reset) orders the snapshot
      rename {e before} the journal truncation, so a crash between the
      two only leaves redundant journal records — replay is idempotent
      (re-adding a fact and re-applying a merge are no-ops).
    - Recovery never raises: every failure mode is a value
      ({!Snapshot.corruption}, {!Journal.truncation}, {!load_error}).

    Checkpoint I/O is accounted to the attached guard as
    [Guard.Checkpoint_bytes]. *)

type t
(** An open store being written by a chase. *)

val journal_path : string -> string
(** [journal_path path] is [path ^ ".journal"]. *)

val generation_path : string -> int -> string
(** [generation_path path k] is [path ^ "." ^ k]: the k-th previous
    committed snapshot image, 1 = newest. *)

val generations : path:string -> int
(** How many previous generations are on disk (consecutive from 1). *)

val rotate_generations : path:string -> keep:int -> unit
(** Rotate the committed image at [path] into the generation chain
    before a new one replaces it: [path.k-1] renames to [path.k] for
    k = keep..2, then [path] is hard-linked to [path.1] — so there is
    never an instant with zero complete snapshots on disk.  Best-effort
    (generations are redundancy): I/O failures are swallowed, and
    [keep = 0] disables rotation.  Called automatically by every
    snapshot write of an open store. *)

val create :
  ?guard:Mdqa_datalog.Guard.t ->
  ?compact_bytes:int ->
  ?keep_generations:int ->
  ?metrics:Mdqa_obs.Metrics.t ->
  path:string ->
  program_text:string ->
  variant:Mdqa_datalog.Chase.variant ->
  unit ->
  t
(** A store for a fresh chase.  Nothing is written until the chase
    calls the [on_start] hook (so a run that fails validation leaves no
    files).  When the journal grows past [compact_bytes] (default
    4 MiB) it is folded into a fresh snapshot at the next round
    boundary.  Every snapshot write first rotates the previous
    committed image into the generation chain ([path.1] ..
    [path.keep_generations], default 2; 0 disables) so a later
    corruption of the current image is never the loss of the only
    copy — {!Fsck.repair} salvages from the newest clean generation.

    When [metrics] is given, checkpoint count/bytes/duration/failures
    and journal frame/byte counters ([mdqa_store_*]) are recorded
    there; snapshot writes emit a [store.checkpoint] span when a tracer
    is installed. *)

val checkpoint : t -> Mdqa_datalog.Chase.checkpoint
(** The hooks to pass as [Chase.run ~checkpoint].  [on_fact]/[on_merge]
    append journal records (and may raise [Guard.Exhausted] when a
    checkpoint byte budget trips — degrading the run); [on_round] syncs
    the journal and compacts if due; [on_done] writes the final
    snapshot and resets the journal, swallowing I/O errors into
    {!write_error} so the chase result is never lost to a full disk. *)

val write_error : t -> exn option
(** The first exception swallowed while finalizing the store, if any:
    the in-memory result is good, but the on-disk image may be stale. *)

val clear_write_error : t -> unit
(** Forget a recorded write failure — a long-running server does this
    when its circuit breaker half-opens and a probe write succeeds. *)

val checkpoint_now :
  t ->
  instance:Mdqa_relational.Instance.t ->
  stats:Mdqa_datalog.Chase.stats ->
  (int, exn) result
(** One-shot atomic snapshot of a live instance, for services that
    checkpoint on their own cadence instead of per chase round (the
    [mdqa serve] circuit breaker wraps this).  On success the written
    byte count is returned and accounted to the guard; on I/O failure
    the error is returned {e and} recorded in {!write_error} — nothing
    raises except the attached guard's own [Guard.Exhausted].  The
    on-disk image is never torn: the write is temp + fsync + rename
    like every snapshot write. *)

val close : t -> unit
(** Close the journal fd.  Idempotent; called automatically by
    [on_done]. *)

(** {1 Recovery} *)

type recovery = {
  program_text : string;
  variant : Mdqa_datalog.Chase.variant;
  instance : Mdqa_relational.Instance.t;
      (** snapshot image + replayed journal prefix: a well-formed
          prefix of the interrupted chase *)
  frontier : (string * Mdqa_relational.Tuple.t) list option;
      (** semi-naive delta to seed the resumed chase; [None] forces a
          full (always sound) first round *)
  null_base : int;  (** safe lower bound for fresh null labels *)
  stats : Mdqa_datalog.Chase.stats;
      (** cumulative stats at the last durable round boundary *)
  replayed : int;  (** journal records applied *)
  journal_truncation : Journal.truncation option;
      (** where and why journal replay stopped early, if it did *)
}

type load_error =
  | No_store of string  (** no snapshot at the path *)
  | Corrupt_snapshot of Snapshot.corruption
  | Bad_program of { line : int; message : string }
      (** the stored program text no longer parses (version skew) —
          only possible for {!resume}, {!load} does not parse *)

val load : path:string -> (recovery, load_error) result
(** Read snapshot + journal and replay.  Total: corruption comes back
    as [Error] (snapshot) or as [journal_truncation] (journal — the
    valid prefix is still returned). *)

val load_from :
  snapshot:string -> journal:string -> (recovery, load_error) result
(** {!load} over an explicit file pair.  {!Fsck.repair} uses it to
    replay the journal's valid prefix over a {e previous generation}
    image when the current snapshot is corrupt; replay stops (with a
    [journal_truncation] report) at the first record the older image
    cannot absorb. *)

val resume :
  ?guard:Mdqa_datalog.Guard.t ->
  ?compact_bytes:int ->
  ?max_steps:int ->
  ?max_nulls:int ->
  ?metrics:Mdqa_obs.Metrics.t ->
  path:string ->
  unit ->
  (Mdqa_datalog.Chase.result * recovery, load_error) result
(** {!load}, re-parse the stored program, compact the recovered image
    into a fresh snapshot (discarding any torn journal tail), and
    continue the chase — with checkpointing still on, so the resumed
    run is itself resumable.  Reaches the same saturated instance (same
    facts modulo the labels of nulls invented after the interruption)
    and the same outcome as an uninterrupted run. *)

(** {1 Replication shipping}

    A store replicates by shipping its exact on-disk bytes: the
    snapshot image travels whole (the section CRCs that protect it on
    disk validate it at the far end), the journal travels as raw byte
    slices appended verbatim to the standby's copy.  A standby
    therefore recovers a shipped stream with {e literally} the local
    crash-recovery code: torn tails truncate, replay is idempotent, and
    any clean prefix of the stream is a loadable store. *)

val path : t -> string
(** The snapshot path this store writes. *)

val read_image : path:string -> (string, string) result
(** The raw snapshot image at [path], for shipping.  [Error] for a
    missing or unreadable file; never raises. *)

val read_journal_slice :
  path:string -> offset:int -> len:int -> (string * int, string) result
(** Up to [len] raw journal bytes starting at [offset], plus the
    journal's current total length — the primary's high-water mark.  A
    missing journal reads as [("", 0)].  Never raises. *)

val install_stream :
  path:string -> snapshot:string -> journal:string -> (unit, string) result
(** Install a shipped stream as the local store: validate the snapshot
    image ({!Snapshot.of_string} — full CRC check), write it atomically,
    and replace the journal with the shipped bytes (which may be [""]:
    no journal).  A rejected image installs nothing. *)

val append_journal_bytes : path:string -> string -> (unit, string) result
(** Append raw shipped bytes to the local journal (fsynced).  Torn or
    partial frames are harmless: recovery truncates at the first
    invalid frame, exactly as after a local crash. *)

(** {1 Inspection}

    Integrity checking and repair live in {!Fsck}: [Fsck.check] is the
    report behind [mdqa store verify], [Fsck.repair] the salvage chain
    behind [mdqa store fsck --repair]. *)

val pp_load_error : Format.formatter -> load_error -> unit
