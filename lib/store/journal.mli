(** Append-only write-ahead journal of chase deltas.

    Between snapshots, every mutation the chase makes — a fact added, an
    EGD null merge, a round boundary — is appended here, so a crash
    loses at most the final torn record, never committed work.

    {2 On-disk format (version 1)}

    {v
    "MDQAJRNL"            magic, 8 bytes
    u32 version           = 1
    record*:
      u32 payload length
      u32 payload CRC-32
      payload:
        u8 tag            1 Fact | 2 Merge | 3 Round
        ...
    v}

    {2 Recovery semantics}

    {!read} {e never fails}: whatever is on disk, it returns the longest
    valid prefix of records plus an optional {!truncation} report
    locating the first byte that could not be trusted (torn tail after a
    crash, bit rot, a foreign file).  A missing or header-less journal
    reads as an empty one with a report.  Replaying a prefix of the
    journal over its snapshot always yields a well-formed instance — a
    prefix of the chase's own mutation sequence. *)

type record =
  | Fact of string * Mdqa_relational.Tuple.t
      (** a tuple the chase added to the named relation *)
  | Merge of { from_ : Mdqa_relational.Value.t; into : Mdqa_relational.Value.t }
      (** an EGD merge: every occurrence of [from_] was rewritten to
          [into] *)
  | Round of { merged : bool; stats : Mdqa_datalog.Chase.stats }
      (** a completed chase round.  The facts appended since the
          previous [Round] are exactly that round's semi-naive frontier;
          [merged] records whether an EGD merge invalidated it.  [stats]
          are cumulative, letting resume report true totals. *)

(** {1 Writing} *)

type writer

val create : path:string -> writer
(** Truncate/create the journal and write the header (fsynced).
    @raise Sys_error / Unix.Unix_error on I/O failure. *)

val append : writer -> record -> int
(** Append one record; returns its encoded size in bytes (frame
    included).  Data is flushed to the OS on every append; call {!sync}
    at durability points. *)

val sync : writer -> unit
(** fsync the journal file. *)

val close : writer -> unit
(** {!sync}, then close.  Idempotent. *)

(** {1 Recovery} *)

type truncation = {
  offset : int;  (** first untrusted byte *)
  reason : string;
}

type read_result = {
  records : (int * record) list;
      (** the longest valid prefix, in order, each with the byte offset
          of its frame — so corruption found later (during replay) can
          still be located *)
  truncation : truncation option;  (** [None]: the whole file was valid *)
  valid_bytes : int;  (** length of the trusted prefix *)
}

val read : path:string -> read_result
(** Total function: corruption of any shape (including a missing file)
    yields the valid prefix and a report, never an exception. *)

val pp_truncation : Format.formatter -> truncation -> unit

(** {1 Format constants} — for the sibling integrity walkers ({!Fsck},
    {!Scrub}) that stream over raw journal bytes. *)

val magic : string
(** ["MDQAJRNL"], 8 bytes. *)

val version : int

val header_len : int
(** Bytes before the first record frame: magic + u32 version. *)
