(* Engine-statistics sidecar: MAGIC, version, payload length, payload
   CRC, then a Binio-encoded Profile snapshot.  One CRC over the whole
   payload is enough here — unlike the snapshot/journal the sidecar is
   advisory, so on any damage the reader rejects the whole file and
   accumulation restarts rather than salvaging sections. *)

module Profile = Mdqa_obs.Profile

let magic = "MDQASTAT"
let version = 1
let path_of store = store ^ ".stats"

(* ---------------------------------------------------------- encoding *)

let encode_payload (s : Profile.snapshot) =
  let buf = Buffer.create 1024 in
  Binio.u32 buf (List.length s.Profile.rules);
  List.iter
    (fun (name, (r : Profile.rule_stat)) ->
      Binio.str buf name;
      Binio.i64 buf r.Profile.fires;
      Binio.i64 buf r.Profile.triggers;
      Binio.i64 buf r.Profile.matches;
      Binio.f64 buf r.Profile.rule_seconds)
    s.Profile.rules;
  Binio.u32 buf (List.length s.Profile.atoms);
  List.iter
    (fun ((scope, idx, pred), (a : Profile.atom_stat)) ->
      Binio.str buf scope;
      Binio.i64 buf idx;
      Binio.str buf pred;
      Binio.i64 buf a.Profile.scanned;
      Binio.i64 buf a.Profile.matched)
    s.Profile.atoms;
  Binio.u32 buf (List.length s.Profile.rounds);
  List.iter
    (fun (n, (r : Profile.round_stat)) ->
      Binio.i64 buf n;
      Binio.i64 buf r.Profile.round_count;
      Binio.f64 buf r.Profile.round_seconds;
      Binio.i64 buf r.Profile.minor_collections;
      Binio.i64 buf r.Profile.major_collections;
      Binio.i64 buf r.Profile.heap_words)
    s.Profile.rounds;
  Binio.u32 buf (List.length s.Profile.queries);
  List.iter
    (fun (name, (q : Profile.query_stat)) ->
      Binio.str buf name;
      Binio.i64 buf q.Profile.evals;
      Binio.f64 buf q.Profile.query_seconds)
    s.Profile.queries;
  Binio.u32 buf (List.length s.Profile.phases);
  List.iter
    (fun (name, (p : Profile.phase_stat)) ->
      Binio.str buf name;
      Binio.i64 buf p.Profile.calls;
      Binio.f64 buf p.Profile.phase_seconds)
    s.Profile.phases;
  Buffer.contents buf

let encode s =
  let payload = encode_payload s in
  let buf = Buffer.create (String.length payload + 32) in
  Buffer.add_string buf magic;
  Binio.u8 buf version;
  Binio.u32 buf (String.length payload);
  Binio.u32 buf (Crc32.digest payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

(* ---------------------------------------------------------- decoding *)

let read_list r f =
  let n = Binio.read_u32 r in
  List.init n (fun _ -> f r)

let decode_payload payload : Profile.snapshot =
  let r = Binio.reader payload in
  let rules =
    read_list r (fun r ->
        let name = Binio.read_str r in
        let fires = Binio.read_i64 r in
        let triggers = Binio.read_i64 r in
        let matches = Binio.read_i64 r in
        let rule_seconds = Binio.read_f64 r in
        (name, { Profile.fires; triggers; matches; rule_seconds }))
  in
  let atoms =
    read_list r (fun r ->
        let scope = Binio.read_str r in
        let idx = Binio.read_i64 r in
        let pred = Binio.read_str r in
        let scanned = Binio.read_i64 r in
        let matched = Binio.read_i64 r in
        ((scope, idx, pred), { Profile.scanned; matched }))
  in
  let rounds =
    read_list r (fun r ->
        let n = Binio.read_i64 r in
        let round_count = Binio.read_i64 r in
        let round_seconds = Binio.read_f64 r in
        let minor_collections = Binio.read_i64 r in
        let major_collections = Binio.read_i64 r in
        let heap_words = Binio.read_i64 r in
        ( n,
          { Profile.round_count; round_seconds; minor_collections;
            major_collections; heap_words } ))
  in
  let queries =
    read_list r (fun r ->
        let name = Binio.read_str r in
        let evals = Binio.read_i64 r in
        let query_seconds = Binio.read_f64 r in
        (name, { Profile.evals; query_seconds }))
  in
  let phases =
    read_list r (fun r ->
        let name = Binio.read_str r in
        let calls = Binio.read_i64 r in
        let phase_seconds = Binio.read_f64 r in
        (name, { Profile.calls; phase_seconds }))
  in
  if not (Binio.at_end r) then
    raise (Binio.Corrupt { offset = Binio.pos r; reason = "trailing bytes" });
  { Profile.rules; atoms; rounds; queries; phases }

let read ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | exception End_of_file -> Error (path ^ ": truncated sidecar")
  | raw -> (
    let header_len = String.length magic + 1 + 4 + 4 in
    if String.length raw < header_len then Error (path ^ ": truncated header")
    else if String.sub raw 0 (String.length magic) <> magic then
      Error (path ^ ": bad magic")
    else
      let r = Binio.reader ~offset:0 (String.sub raw (String.length magic)
                                        (String.length raw - String.length magic))
      in
      match
        let v = Binio.read_u8 r in
        if v <> version then
          raise
            (Binio.Corrupt
               { offset = Binio.pos r;
                 reason = Printf.sprintf "unsupported version %d" v });
        let len = Binio.read_u32 r in
        let crc = Binio.read_u32 r in
        let payload_start = String.length magic + Binio.pos r in
        if String.length raw - payload_start <> len then
          raise
            (Binio.Corrupt
               { offset = payload_start; reason = "payload length mismatch" });
        let payload = String.sub raw payload_start len in
        if Crc32.digest payload <> crc then
          raise
            (Binio.Corrupt { offset = payload_start; reason = "CRC mismatch" });
        decode_payload payload
      with
      | snap -> Ok snap
      | exception Binio.Corrupt { offset; reason } ->
        Error (Printf.sprintf "%s: corrupt sidecar at byte %d: %s" path offset
                 reason))

let write ~path snap = ignore (Snapshot.write_raw ~path (encode snap))

let record ~store snap =
  let path = path_of store in
  let prior =
    match read ~path with Ok s -> s | Error _ -> Profile.empty
  in
  write ~path (Profile.merge prior snap)
