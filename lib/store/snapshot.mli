(** Versioned, checksummed snapshots of a chase image.

    A snapshot is the durable base of a {!Store}: the full instance
    plus everything the chase needs to continue exactly where it
    stopped — the program source text, the chase variant, the fresh-null
    counter, cumulative statistics and the semi-naive frontier.

    {2 On-disk format (version 1)}

    {v
    "MDQASNAP"            magic, 8 bytes
    u32 version           = 1
    u32 section-count
    section*:
      u8  tag             'P' program | 'I' instance | 'C' chase state
      u32 payload length
      u32 payload CRC-32
      payload bytes
    v}

    Every section is independently checksummed; a snapshot is accepted
    only if the magic, version, every length and every CRC check out —
    otherwise {!read} returns a located {!corruption} (never raises).

    {2 Durability}

    {!write} is atomic and crash-safe: the image is written to
    [path ^ ".tmp"], fsynced, renamed over [path], and the directory is
    fsynced.  A crash at any point leaves either the old snapshot or
    the new one at [path], never a torn mixture; a stale [.tmp] from a
    crashed writer is ignored (and overwritten) by the next write. *)

type t = {
  program_text : string;
      (** the Datalog± source the image was chased under, so a store is
          self-contained: [mdqa resume] needs no program argument *)
  variant : Mdqa_datalog.Chase.variant;
  instance : Mdqa_relational.Instance.t;
  null_base : int;
      (** next fresh labeled-null id; at least one past every null ever
          invented, including nulls later merged away *)
  stats : Mdqa_datalog.Chase.stats;  (** cumulative across resumes *)
  frontier :
    (string * Mdqa_relational.Tuple.t list) list option;
      (** the semi-naive delta at the snapshot point: facts added by the
          last completed round.  [None] means the frontier is unknown
          (fresh image, or invalidated by an EGD merge) and the resumed
          chase must start with a full evaluation round. *)
}

type corruption = {
  offset : int;  (** byte offset into the snapshot file *)
  what : string;  (** which part: ["header"], ["section 'I'"], ... *)
  reason : string;
}

val write : path:string -> t -> int
(** Atomic, fsynced write; returns the number of bytes in the image.
    @raise Sys_error / Unix.Unix_error on I/O failure. *)

val read : path:string -> (t, corruption) result
(** Never raises: missing files, short reads, bad magic, unsupported
    versions, truncation and checksum mismatches all come back as
    [Error] with the first offending byte offset. *)

(** {2 Raw images} — the replication ship path.  A snapshot travels the
    wire as its exact on-disk bytes, so the CRCs that protect it on disk
    protect it in flight, and an installed standby image is
    byte-identical to its primary's. *)

val encode : t -> string
(** The full on-disk image (header + checksummed sections) as a string. *)

val of_string : string -> (t, corruption) result
(** Decode a raw image with exactly {!read}'s validation: magic,
    version, every length and every section CRC. *)

val write_raw : path:string -> string -> int
(** Install a pre-encoded image with {!write}'s atomic tmp/fsync/rename
    discipline.  The caller is expected to have validated it with
    {!of_string} first.
    @raise Sys_error / Unix.Unix_error on I/O failure. *)

val section_crcs : string -> ((char * int) list, corruption) result
(** Per-section CRC-32s of a raw image, from the section headers alone
    (no payload decode): [('P', crc); ('I', crc); ('C', crc)] for a
    version-1 image.  Divergence detection compares these across
    replicas at snapshot boundaries. *)

val pp_corruption : Format.formatter -> corruption -> unit

(** {2 Format constants and helpers} — for the sibling integrity
    walkers ({!Fsck}, {!Scrub}) that re-implement the header walk over
    raw bytes or an open fd. *)

val magic : string
(** ["MDQASNAP"], 8 bytes. *)

val version : int

val fsync_dir : string -> unit
(** Make a just-performed rename/unlink in [dir] durable.  Failures are
    ignored (not every filesystem supports directory fsync). *)
