(** Persisted engine-statistics sidecar.

    A CRC-checked binary file written next to a checkpoint store
    ([<store>.stats]) holding an accumulated {!Mdqa_obs.Profile}
    snapshot — per-rule costs and per-atom selectivities from past
    runs, the input a statistics-driven rule compiler needs before it
    has seen any data of its own.

    The sidecar is strictly additive metadata: the store layer never
    reads it to answer queries, [mdqa store verify]/[fsck] treat it as
    an opaque foreign file, and a missing or corrupt sidecar is never
    an error — [record] simply starts a fresh accumulation.  Writes go
    through the same tmp/fsync/rename discipline as {!Snapshot}, so a
    torn write leaves the previous sidecar intact. *)

val path_of : string -> string
(** [path_of store] is the sidecar path for a store at [store]
    ([store ^ ".stats"]). *)

val magic : string
(** ["MDQASTAT"]. *)

val version : int

val write : path:string -> Mdqa_obs.Profile.snapshot -> unit
(** Atomically replace the sidecar at [path] with the snapshot. *)

val read : path:string -> (Mdqa_obs.Profile.snapshot, string) result
(** [Error] describes a missing file, bad magic/version, CRC mismatch
    or truncated payload; it never raises. *)

val record : store:string -> Mdqa_obs.Profile.snapshot -> unit
(** Merge the snapshot into the sidecar next to [store] (an unreadable
    or absent sidecar contributes {!Mdqa_obs.Profile.empty}) and write
    the result back atomically. *)
