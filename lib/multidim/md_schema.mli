(** Schemas of the extended multidimensional model: SM = K ∪ O ∪ R.

    A schema bundles the dimension schemas with the categorical
    relation schemas and fixes the predicate naming used when the
    ontology is compiled to Datalog±:

    - K: each proper category [C] becomes the unary predicate
      [lowercase C] (e.g. [Ward] ↦ [ward]);
    - O: each child→parent edge becomes the binary predicate
      [parent_child] with the {e parent first}, as in the paper's
      [UnitWard(u, w)] (e.g. [Unit ← Ward] ↦ [unit_ward]);
    - R: categorical relations keep their declared names; their
      categorical attributes carry the dimension and category they are
      linked to (see {!Mdqa_relational.Attribute}).

    The top category [All] takes no predicate (the paper never
    navigates to it; every member trivially rolls up to [all]). *)

type t

type conflict = {
  subject : string;
      (** the name of the dimension or relation declaration at fault,
          so callers can attach a source location *)
  message : string;
}

val conflicts :
  dimensions:Dim_schema.t list ->
  relations:Mdqa_relational.Rel_schema.t list ->
  conflict list
(** Every schema-level conflict, in declaration order: duplicate
    dimension names, category names shared by two dimensions, ambiguous
    generated predicates, duplicate relation names, categorical
    attributes referencing unknown dimensions/categories, relation
    names colliding with generated K/O predicates.  Empty iff {!make}
    succeeds. *)

val make :
  dimensions:Dim_schema.t list ->
  relations:Mdqa_relational.Rel_schema.t list ->
  t
(** @raise Invalid_argument with the first of {!conflicts} when any
    exist. *)

val dimensions : t -> Dim_schema.t list
val dimension : t -> string -> Dim_schema.t option
val relations : t -> Mdqa_relational.Rel_schema.t list
val relation : t -> string -> Mdqa_relational.Rel_schema.t option

val category_pred : string -> string
(** Predicate name for a category: lowercased with [_] between words
    ([MonthDay] ↦ [month_day]). *)

val parent_child_pred : parent:string -> child:string -> string

val category_of_pred : t -> string -> (string * string) option
(** Inverse of {!category_pred}: [(dimension, category)]. *)

val parent_child_of_pred : t -> string -> (string * string * string) option
(** Inverse of {!parent_child_pred}: [(dimension, parent, child)]. *)

type position_kind =
  | Plain_pos
  | Category_pos of { dimension : string; category : string }

val position_kind : t -> string -> int -> position_kind option
(** Kind of position [(pred, i)] across R, K and O predicates; [None]
    for unknown predicates (e.g. contextual quality predicates). *)

val categorical_positions : t -> (string * int) list
(** All positions ranging over category members: every K and O
    position, and the categorical positions of the relations.  These
    have closed finite domains — the set handed to
    {!Mdqa_datalog.Separability.within_positions}. *)

val to_dot : t -> string
(** Graphviz rendering in the style of the paper's Figure 1: one
    cluster per dimension (roll-up arrows bottom-to-top) and one node
    per categorical relation, linked to the categories of its
    categorical attributes. *)

val pp : Format.formatter -> t -> unit
