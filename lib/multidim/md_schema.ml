module Rel_schema = Mdqa_relational.Rel_schema
module Attribute = Mdqa_relational.Attribute

type t = {
  dimensions : Dim_schema.t list;
  relations : Rel_schema.t list;
  (* predicate name -> origin *)
  cat_preds : (string, string * string) Hashtbl.t;  (* pred -> dim, category *)
  pc_preds : (string, string * string * string) Hashtbl.t;
      (* pred -> dim, parent, child *)
}

(* CamelCase -> snake_case: "MonthDay" -> "month_day". *)
let snake s =
  let buf = Buffer.create (String.length s + 4) in
  String.iteri
    (fun i c ->
      if c >= 'A' && c <= 'Z' then begin
        if i > 0 then Buffer.add_char buf '_';
        Buffer.add_char buf (Char.lowercase_ascii c)
      end
      else Buffer.add_char buf c)
    s;
  Buffer.contents buf

let category_pred c = snake c

let parent_child_pred ~parent ~child = snake parent ^ "_" ^ snake child

let proper_categories d =
  List.filter (fun c -> c <> Dim_schema.all) (Dim_schema.categories d)

let proper_edges d =
  List.filter (fun (_, p) -> p <> Dim_schema.all) (Dim_schema.edges d)

type conflict = {
  subject : string;  (** the dimension / relation declaration at fault *)
  message : string;
}

(* All schema-level conflicts, in declaration order — the non-raising
   substrate of [make], also consumed by the semantic validator so one
   pass reports every clash with its declaration's location. *)
let conflicts ~dimensions ~relations =
  let out = ref [] in
  let push subject message = out := { subject; message } :: !out in
  (* Unique dimension names and globally unique category names. *)
  let seen_dim = Hashtbl.create 8 and seen_cat = Hashtbl.create 16 in
  List.iter
    (fun d ->
      let n = Dim_schema.name d in
      if Hashtbl.mem seen_dim n then
        push n (Printf.sprintf "Md_schema: duplicate dimension %s" n)
      else begin
        Hashtbl.add seen_dim n ();
        List.iter
          (fun c ->
            match Hashtbl.find_opt seen_cat c with
            | Some other ->
              push n
                (Printf.sprintf
                   "Md_schema: category %s appears in dimensions %s and %s" c
                   other n)
            | None -> Hashtbl.add seen_cat c n)
          (proper_categories d)
      end)
    dimensions;
  let cat_preds = Hashtbl.create 16 and pc_preds = Hashtbl.create 16 in
  List.iter
    (fun d ->
      let dim = Dim_schema.name d in
      List.iter
        (fun c -> Hashtbl.replace cat_preds (category_pred c) (dim, c))
        (proper_categories d);
      List.iter
        (fun (child, parent) ->
          let pred = parent_child_pred ~parent ~child in
          if Hashtbl.mem cat_preds pred || Hashtbl.mem pc_preds pred then
            push dim
              (Printf.sprintf "Md_schema: generated predicate %s is ambiguous"
                 pred)
          else Hashtbl.replace pc_preds pred (dim, parent, child))
        (proper_edges d))
    dimensions;
  (* Relation validation. *)
  let seen_rel = Hashtbl.create 8 in
  List.iter
    (fun r ->
      let n = Rel_schema.name r in
      if Hashtbl.mem seen_rel n then
        push n (Printf.sprintf "Md_schema: duplicate relation %s" n);
      Hashtbl.add seen_rel n ();
      if Hashtbl.mem cat_preds n || Hashtbl.mem pc_preds n then
        push n
          (Printf.sprintf
             "Md_schema: relation %s collides with a generated predicate" n);
      List.iter
        (fun a ->
          match Attribute.kind a with
          | Attribute.Plain -> ()
          | Attribute.Categorical { dimension; category } -> (
            match
              List.find_opt
                (fun d -> String.equal (Dim_schema.name d) dimension)
                dimensions
            with
            | None ->
              push n
                (Printf.sprintf
                   "Md_schema: relation %s references unknown dimension %s" n
                   dimension)
            | Some d ->
              if
                (not (Dim_schema.mem_category d category))
                || String.equal category Dim_schema.all
              then
                push n
                  (Printf.sprintf
                     "Md_schema: relation %s references unknown category \
                      %s.%s"
                     n dimension category)))
        (Rel_schema.attributes r))
    relations;
  List.rev !out

let make ~dimensions ~relations =
  (match conflicts ~dimensions ~relations with
   | [] -> ()
   | c :: _ -> invalid_arg c.message);
  let cat_preds = Hashtbl.create 16 and pc_preds = Hashtbl.create 16 in
  List.iter
    (fun d ->
      let dim = Dim_schema.name d in
      List.iter
        (fun c -> Hashtbl.replace cat_preds (category_pred c) (dim, c))
        (proper_categories d);
      List.iter
        (fun (child, parent) ->
          Hashtbl.replace pc_preds
            (parent_child_pred ~parent ~child)
            (dim, parent, child))
        (proper_edges d))
    dimensions;
  { dimensions; relations; cat_preds; pc_preds }

let dimensions t = t.dimensions

let dimension t name =
  List.find_opt (fun d -> String.equal (Dim_schema.name d) name) t.dimensions

let relations t = t.relations

let relation t name =
  List.find_opt
    (fun r -> String.equal (Rel_schema.name r) name)
    t.relations

let category_of_pred t pred = Hashtbl.find_opt t.cat_preds pred
let parent_child_of_pred t pred = Hashtbl.find_opt t.pc_preds pred

type position_kind =
  | Plain_pos
  | Category_pos of { dimension : string; category : string }

let position_kind t pred i =
  match relation t pred with
  | Some r ->
    if i < 0 || i >= Rel_schema.arity r then None
    else (
      match Attribute.kind (Rel_schema.attribute r i) with
      | Attribute.Plain -> Some Plain_pos
      | Attribute.Categorical { dimension; category } ->
        Some (Category_pos { dimension; category }))
  | None -> (
    match category_of_pred t pred with
    | Some (dimension, category) ->
      if i = 0 then Some (Category_pos { dimension; category }) else None
    | None -> (
      match parent_child_of_pred t pred with
      | Some (dimension, parent, child) ->
        if i = 0 then Some (Category_pos { dimension; category = parent })
        else if i = 1 then Some (Category_pos { dimension; category = child })
        else None
      | None -> None))

let categorical_positions t =
  let k =
    Hashtbl.fold (fun pred _ acc -> (pred, 0) :: acc) t.cat_preds []
  in
  let o =
    Hashtbl.fold
      (fun pred _ acc -> (pred, 0) :: (pred, 1) :: acc)
      t.pc_preds []
  in
  let r =
    List.concat_map
      (fun rel ->
        List.map
          (fun i -> (Rel_schema.name rel, i))
          (Rel_schema.categorical_positions rel))
      t.relations
  in
  List.sort_uniq compare (k @ o @ r)

let to_dot t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph md_model {\n  rankdir=BT;\n";
  List.iter (fun d -> Buffer.add_string buf (Dim_schema.dot_cluster d))
    t.dimensions;
  List.iter
    (fun r ->
      let name = Rel_schema.name r in
      Buffer.add_string buf
        (Printf.sprintf
           "  \"%s\" [shape=ellipse, style=filled, fillcolor=lightgrey];\n"
           name);
      List.iter
        (fun a ->
          match Attribute.kind a with
          | Attribute.Plain -> ()
          | Attribute.Categorical { dimension; category } ->
            Buffer.add_string buf
              (Printf.sprintf
                 "  \"%s\" -> \"%s.%s\" [style=dashed, arrowhead=none, \
                  label=\"%s\"];\n"
                 name dimension category (Attribute.name a)))
        (Rel_schema.attributes r))
    t.relations;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i d ->
      if i > 0 then Format.pp_print_cut ppf ();
      Dim_schema.pp ppf d)
    t.dimensions;
  List.iter
    (fun r -> Format.fprintf ppf "@,categorical relation %a" Rel_schema.pp r)
    t.relations;
  Format.fprintf ppf "@]"
