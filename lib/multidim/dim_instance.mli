(** Dimension instances: members for each category plus the child →
    parent member relation, paralleling the schema's category DAG.

    Members are {!Mdqa_relational.Value.t} symbols.  The top category
    [All] always has the single member [all].  Roll-up between
    arbitrary (not just adjacent) categories is the transitive closure
    of the member links.

    The HM summarizability conditions are exposed:
    - {e strictness}: every member rolls up to at most one member of
      each ancestor category;
    - {e homogeneity} (covering): every member of a category has at
      least one parent in each immediate parent category. *)

type t

val all_member : Mdqa_relational.Value.t
(** [Sym "all"], the unique member of category [All]. *)

val make :
  Dim_schema.t ->
  members:(string * string list) list ->
  links:(string * string) list ->
  t
(** [make schema ~members ~links]: [members] maps categories to member
    names; [links] are (child member, parent member) pairs between
    members of adjacent categories.  Members of maximal proper
    categories are linked to [all] automatically.
    @raise Invalid_argument on unknown categories, duplicate member
    names across categories of the same dimension, or links whose
    endpoints are not members of adjacent categories. *)

val schema : t -> Dim_schema.t

val members : t -> string -> Mdqa_relational.Value.t list
(** Members of a category (sorted). @raise Not_found on unknown. *)

val category_of : t -> Mdqa_relational.Value.t -> string option
(** The category a member belongs to. *)

val member_parents : t -> Mdqa_relational.Value.t -> Mdqa_relational.Value.t list
(** Immediate parents of a member (across all parent categories). *)

val member_children : t -> Mdqa_relational.Value.t -> Mdqa_relational.Value.t list

val rollup :
  t -> Mdqa_relational.Value.t -> to_category:string ->
  Mdqa_relational.Value.t list
(** Ancestors of the member within [to_category] (transitive).  Under
    strictness this is empty or a singleton. *)

val drilldown :
  t -> Mdqa_relational.Value.t -> to_category:string ->
  Mdqa_relational.Value.t list
(** Descendants of the member within [to_category]. *)

val is_strict : t -> bool
val is_homogeneous : t -> bool

val strictness_violations :
  t -> (string * string * Mdqa_relational.Value.t list) list
(** Witnesses of non-strictness: [(member, ancestor category, the ≥ 2
    distinct members it rolls up to there)].  Empty iff {!is_strict}. *)

val homogeneity_violations : t -> (string * string) list
(** Witnesses of non-homogeneity (non-total roll-up): [(member, parent
    category in which it has no parent member)].  Empty iff
    {!is_homogeneous}. *)

val size : t -> int
(** Total number of members, excluding [all]. *)

val pp : Format.formatter -> t -> unit
