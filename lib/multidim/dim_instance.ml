module Value = Mdqa_relational.Value
module Smap = Map.Make (String)
module Sset = Set.Make (String)

let all_member = Value.sym "all"

type t = {
  schema : Dim_schema.t;
  by_category : Sset.t Smap.t;  (* category -> member names *)
  category_of : string Smap.t;  (* member name -> category *)
  up : Sset.t Smap.t;  (* member -> parent members *)
  down : Sset.t Smap.t;  (* member -> child members *)
}

let find_set m k = Option.value ~default:Sset.empty (Smap.find_opt k m)

let make schema ~members ~links =
  let dim = Dim_schema.name schema in
  (* Collect members and their categories. *)
  let by_category, category_of =
    List.fold_left
      (fun (bc, co) (cat, names) ->
        if not (Dim_schema.mem_category schema cat) then
          invalid_arg
            (Printf.sprintf "Dim_instance %s: unknown category %s" dim cat);
        List.fold_left
          (fun (bc, co) n ->
            (match Smap.find_opt n co with
             | Some other ->
               invalid_arg
                 (Printf.sprintf
                    "Dim_instance %s: member %s in both %s and %s" dim n other
                    cat)
             | None -> ());
            (Smap.add cat (Sset.add n (find_set bc cat)) bc, Smap.add n cat co))
          (bc, co) names)
      (Smap.empty, Smap.empty) members
  in
  let by_category =
    Smap.add Dim_schema.all (Sset.singleton "all") by_category
  in
  let category_of = Smap.add "all" Dim_schema.all category_of in
  (* Validate and record the links. *)
  let add_link (up, down) (child, parent) =
    let cc =
      match Smap.find_opt child category_of with
      | Some c -> c
      | None ->
        invalid_arg
          (Printf.sprintf "Dim_instance %s: unknown member %s" dim child)
    in
    let pc =
      match Smap.find_opt parent category_of with
      | Some c -> c
      | None ->
        invalid_arg
          (Printf.sprintf "Dim_instance %s: unknown member %s" dim parent)
    in
    if not (List.mem pc (Dim_schema.parents schema cc)) then
      invalid_arg
        (Printf.sprintf
           "Dim_instance %s: link %s -> %s does not follow a schema edge \
            (%s -> %s)"
           dim child parent cc pc);
    ( Smap.add child (Sset.add parent (find_set up child)) up,
      Smap.add parent (Sset.add child (find_set down parent)) down )
  in
  let up, down = List.fold_left add_link (Smap.empty, Smap.empty) links in
  (* Members of categories whose only parent is All link to [all]. *)
  let up, down =
    Smap.fold
      (fun member cat acc ->
        if
          cat <> Dim_schema.all
          && List.mem Dim_schema.all (Dim_schema.parents schema cat)
        then add_link acc (member, "all")
        else acc)
      category_of (up, down)
  in
  { schema; by_category; category_of; up; down }

let schema t = t.schema

let members t cat =
  if not (Dim_schema.mem_category t.schema cat) then raise Not_found;
  List.map Value.sym (Sset.elements (find_set t.by_category cat))

let name_of v =
  match v with Value.Sym s -> Some s | _ -> None

let category_of t v =
  Option.bind (name_of v) (fun n -> Smap.find_opt n t.category_of)

let neighbors field t v =
  match name_of v with
  | None -> []
  | Some n -> List.map Value.sym (Sset.elements (find_set (field t) n))

let member_parents = neighbors (fun t -> t.up)
let member_children = neighbors (fun t -> t.down)

let transitive step t v ~to_category =
  let rec go frontier seen acc =
    match frontier with
    | [] -> acc
    | x :: rest ->
      if Sset.mem (Value.to_string x) seen then go rest seen acc
      else
        let seen = Sset.add (Value.to_string x) seen in
        let acc =
          match category_of t x with
          | Some c when String.equal c to_category -> x :: acc
          | _ -> acc
        in
        go (step t x @ rest) seen acc
  in
  List.sort_uniq Value.compare (go (step t v) Sset.empty [])

let rollup t v ~to_category = transitive member_parents t v ~to_category
let drilldown t v ~to_category = transitive member_children t v ~to_category

let is_strict t =
  Smap.for_all
    (fun member cat ->
      if String.equal cat Dim_schema.all then true
      else
        List.for_all
          (fun anc ->
            List.length (rollup t (Value.sym member) ~to_category:anc) <= 1)
          (Dim_schema.ancestors t.schema cat))
    t.category_of

let is_homogeneous t =
  Smap.for_all
    (fun member cat ->
      if String.equal cat Dim_schema.all then true
      else
        List.for_all
          (fun pcat ->
            List.exists
              (fun p -> category_of t p = Some pcat)
              (member_parents t (Value.sym member)))
          (Dim_schema.parents t.schema cat))
    t.category_of

(* Witness-producing variants of [is_strict] / [is_homogeneous], for
   diagnostics: which member breaks the property, and how. *)
let strictness_violations t =
  Smap.fold
    (fun member cat acc ->
      if String.equal cat Dim_schema.all then acc
      else
        List.fold_left
          (fun acc anc ->
            let ups = rollup t (Value.sym member) ~to_category:anc in
            if List.length ups > 1 then (member, anc, ups) :: acc else acc)
          acc
          (Dim_schema.ancestors t.schema cat))
    t.category_of []
  |> List.rev

let homogeneity_violations t =
  Smap.fold
    (fun member cat acc ->
      if String.equal cat Dim_schema.all then acc
      else
        List.fold_left
          (fun acc pcat ->
            if
              List.exists
                (fun p -> category_of t p = Some pcat)
                (member_parents t (Value.sym member))
            then acc
            else (member, pcat) :: acc)
          acc
          (Dim_schema.parents t.schema cat))
    t.category_of []
  |> List.rev

let size t = Smap.cardinal t.category_of - 1

let pp ppf t =
  Format.fprintf ppf "@[<v>instance of %a:" Dim_schema.pp t.schema;
  List.iter
    (fun cat ->
      if cat <> Dim_schema.all then
        Format.fprintf ppf "@,  %s = {%s}" cat
          (String.concat ", "
             (List.map Value.to_string (members t cat))))
    (Dim_schema.categories t.schema);
  Format.fprintf ppf "@]"
