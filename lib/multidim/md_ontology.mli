(** Multidimensional ontologies M = (SM, DM, ΣM) and their compilation
    to Datalog± (paper §III).

    An ontology bundles:
    - the schema SM = K ∪ O ∪ R ({!Md_schema});
    - the instance DM: one {!Dim_instance} per dimension plus the
      extensions of the categorical relations;
    - the intentional part ΣM: dimensional rules (TGDs of forms (4) and
      (10)), dimensional constraints (EGDs of form (2), negative
      constraints of form (3)), and the referential constraints (1).

    {b Compilation.}  {!program} emits the Datalog± rule set;
    {!instance} materializes the extensional instance: category
    membership facts ([ward(w1)]), parent-child facts
    ([unit_ward(standard, w1)]) and the categorical relation data.

    {b Referential constraints (1).}  The paper writes them with a
    negated category atom, which has no positive Datalog± encoding.
    Because dimension instances are fixed and finite (the paper's own
    assumption), they are checked directly against the closed category
    extensions by {!referential_violations} — same semantics, checked
    procedurally (documented substitution; see DESIGN.md §3/§5). *)

type t = private {
  schema : Md_schema.t;
  dim_instances : Dim_instance.t list;
  data : Mdqa_relational.Instance.t;
  rules : Mdqa_datalog.Tgd.t list;
  rule_infos : Dim_rule.info list;  (** analysis of each rule, in order *)
  egds : Mdqa_datalog.Egd.t list;
  ncs : Mdqa_datalog.Nc.t list;
}

val problems :
  schema:Md_schema.t ->
  dim_instances:Dim_instance.t list ->
  ?data:Mdqa_relational.Instance.t ->
  ?rules:Mdqa_datalog.Tgd.t list ->
  unit ->
  string list
(** Every well-formedness problem of a prospective ontology, in
    detection order: dimensions lacking an instance (or with several),
    instances for undeclared dimensions, data relations undeclared or
    with mismatched arity, rules failing {!Dim_rule.analyze}.  Empty
    iff {!make} succeeds. *)

val make :
  schema:Md_schema.t ->
  dim_instances:Dim_instance.t list ->
  ?data:Mdqa_relational.Instance.t ->
  ?rules:Mdqa_datalog.Tgd.t list ->
  ?egds:Mdqa_datalog.Egd.t list ->
  ?ncs:Mdqa_datalog.Nc.t list ->
  unit ->
  t
(** @raise Invalid_argument with the first of {!problems} when any
    exist. *)

val program : t -> Mdqa_datalog.Program.t
(** ΣM as a Datalog± program (rules, EGDs, NCs — no facts). *)

val instance : t -> Mdqa_relational.Instance.t
(** A fresh copy of DM: category facts, parent-child facts, categorical
    relation data. *)

type referential_violation = {
  relation : string;
  position : int;
  tuple : Mdqa_relational.Tuple.t;
  expected : string * string;  (** dimension, category *)
}

val referential_violations : t -> referential_violation list
(** Closed-world check of the form-(1) constraints: every value at a
    categorical position must be a member of the linked category. *)

val chase :
  ?variant:Mdqa_datalog.Chase.variant ->
  ?guard:Mdqa_datalog.Guard.t ->
  ?max_steps:int ->
  ?max_nulls:int ->
  t ->
  Mdqa_datalog.Chase.result
(** The guard (or the step/null budgets) governs the chase as in
    {!Mdqa_datalog.Chase.run}. *)

val certain_answers :
  ?guard:Mdqa_datalog.Guard.t ->
  t -> Mdqa_datalog.Query.t ->
  Mdqa_relational.Tuple.t list Mdqa_datalog.Query.outcome

val proof_answers : t -> Mdqa_datalog.Query.t -> Mdqa_datalog.Proof.result
(** Answer via the top-down {!Mdqa_datalog.Proof} search (no chase). *)

val rewrite_answers :
  ?guard:Mdqa_datalog.Guard.t ->
  t -> Mdqa_datalog.Query.t ->
  Mdqa_relational.Tuple.t list Mdqa_datalog.Guard.outcome
(** Answer via FO rewriting — sound for upward-only ontologies.
    [Degraded] answers are the disjuncts evaluated before the guard
    tripped. *)

val is_upward_only : t -> bool

val classes : t -> Mdqa_datalog.Classes.report
(** Datalog± class report of the compiled rule set (experiment C1). *)

val separability : t -> Mdqa_datalog.Separability.verdict
(** {!Mdqa_datalog.Separability.within_positions} with the schema's
    categorical positions as the closed set (experiment C2). *)

val pp_violation : Format.formatter -> referential_violation -> unit
