open Mdqa_datalog
module R = Mdqa_relational

type t = {
  schema : Md_schema.t;
  dim_instances : Dim_instance.t list;
  data : R.Instance.t;
  rules : Tgd.t list;
  rule_infos : Dim_rule.info list;
  egds : Egd.t list;
  ncs : Nc.t list;
}

(* Every well-formedness problem of a prospective ontology, in
   detection order — the non-raising substrate of [make], also consumed
   by the semantic validator for multi-error reports. *)
let problems ~schema ~dim_instances ?data ?(rules = []) () =
  let out = ref [] in
  let push m = out := m :: !out in
  (* Exactly one instance per dimension. *)
  let dims = Md_schema.dimensions schema in
  List.iter
    (fun d ->
      let n = Dim_schema.name d in
      match
        List.filter
          (fun i -> String.equal (Dim_schema.name (Dim_instance.schema i)) n)
          dim_instances
      with
      | [ _ ] -> ()
      | [] ->
        push (Printf.sprintf "Md_ontology: no instance for dimension %s" n)
      | _ ->
        push
          (Printf.sprintf "Md_ontology: several instances for dimension %s" n))
    dims;
  List.iter
    (fun i ->
      let n = Dim_schema.name (Dim_instance.schema i) in
      if
        not
          (List.exists (fun d -> String.equal (Dim_schema.name d) n) dims)
      then
        push
          (Printf.sprintf
             "Md_ontology: instance for an undeclared dimension %s" n))
    dim_instances;
  (* Data relations must match declared schemas. *)
  (match data with
   | None -> ()
   | Some data ->
     List.iter
       (fun r ->
         match Md_schema.relation schema (R.Relation.name r) with
         | Some declared ->
           if R.Rel_schema.arity declared <> R.Relation.arity r then
             push
               (Printf.sprintf "Md_ontology: arity mismatch for relation %s"
                  (R.Relation.name r))
         | None ->
           push
             (Printf.sprintf "Md_ontology: undeclared relation %s in data"
                (R.Relation.name r)))
       (R.Instance.relations data));
  List.iter
    (fun (tgd : Tgd.t) ->
      match Dim_rule.analyze schema tgd with
      | Ok _ -> ()
      | Error e ->
        push (Printf.sprintf "Md_ontology: rule %s: %s" tgd.Tgd.name e))
    rules;
  List.rev !out

let make ~schema ~dim_instances ?data ?(rules = []) ?(egds = []) ?(ncs = [])
    () =
  (match problems ~schema ~dim_instances ?data ~rules () with
   | [] -> ()
   | m :: _ -> invalid_arg m);
  let data =
    match data with Some d -> d | None -> R.Instance.create ()
  in
  let rule_infos =
    List.map
      (fun tgd ->
        match Dim_rule.analyze schema tgd with
        | Ok info -> info
        | Error e ->
          invalid_arg
            (Printf.sprintf "Md_ontology: rule %s: %s" tgd.Tgd.name e))
      rules
  in
  { schema; dim_instances; data; rules; rule_infos; egds; ncs }

let program t = Program.make ~tgds:t.rules ~egds:t.egds ~ncs:t.ncs ()

let instance t =
  let inst = R.Instance.copy t.data in
  (* Declare all categorical relations (some may hold no data yet). *)
  List.iter
    (fun rs -> ignore (R.Instance.declare inst rs))
    (Md_schema.relations t.schema);
  (* Category membership facts. *)
  List.iter
    (fun di ->
      let ds = Dim_instance.schema di in
      List.iter
        (fun cat ->
          if cat <> Dim_schema.all then begin
            let pred = Md_schema.category_pred cat in
            let rel =
              R.Instance.declare inst (R.Rel_schema.of_names pred [ "member" ])
            in
            List.iter
              (fun m -> ignore (R.Relation.add rel (R.Tuple.of_list [ m ])))
              (Dim_instance.members di cat)
          end)
        (Dim_schema.categories ds);
      (* Parent-child facts per schema edge. *)
      List.iter
        (fun (child, parent) ->
          if parent <> Dim_schema.all then begin
            let pred = Md_schema.parent_child_pred ~parent ~child in
            let rel =
              R.Instance.declare inst
                (R.Rel_schema.of_names pred [ "parent"; "child" ])
            in
            List.iter
              (fun m ->
                List.iter
                  (fun p ->
                    if Dim_instance.category_of di p = Some parent then
                      ignore (R.Relation.add rel (R.Tuple.of_list [ p; m ])))
                  (Dim_instance.member_parents di m))
              (Dim_instance.members di child)
          end)
        (Dim_schema.edges ds))
    t.dim_instances;
  inst

type referential_violation = {
  relation : string;
  position : int;
  tuple : R.Tuple.t;
  expected : string * string;
}

let referential_violations t =
  let out = ref [] in
  List.iter
    (fun rel ->
      let name = R.Relation.name rel in
      match Md_schema.relation t.schema name with
      | None -> ()
      | Some rs ->
        List.iter
          (fun i ->
            match R.Attribute.kind (R.Rel_schema.attribute rs i) with
            | R.Attribute.Plain -> ()
            | R.Attribute.Categorical { dimension; category } ->
              let di =
                List.find_opt
                  (fun d ->
                    String.equal
                      (Dim_schema.name (Dim_instance.schema d))
                      dimension)
                  t.dim_instances
              in
              R.Relation.iter
                (fun tuple ->
                  let v = R.Tuple.get tuple i in
                  let ok =
                    match di with
                    | Some d -> Dim_instance.category_of d v = Some category
                    | None -> false
                  in
                  if not ok then
                    out :=
                      { relation = name;
                        position = i;
                        tuple;
                        expected = (dimension, category) }
                      :: !out)
                rel)
          (R.Rel_schema.categorical_positions rs))
    (R.Instance.relations t.data);
  List.rev !out

let chase ?variant ?guard ?max_steps ?max_nulls t =
  Chase.run ?variant ?guard ?max_steps ?max_nulls (program t) (instance t)

let certain_answers ?guard t q =
  Query.certain_answers ?guard (program t) (instance t) q

let proof_answers t q = Proof.answer (program t) (instance t) q

let rewrite_answers ?guard t q =
  Rewrite.answers ?guard (program t) (instance t) q

let is_upward_only t = Dim_rule.is_upward_only t.schema t.rules

let classes t = Classes.classify (program t)

let separability t =
  Separability.within_positions (program t)
    ~closed:(Md_schema.categorical_positions t.schema)

let pp_violation ppf v =
  Format.fprintf ppf "%s%a: position %d not a member of %s.%s" v.relation
    R.Tuple.pp v.tuple v.position (fst v.expected) (snd v.expected)
