type action =
  | Crash
  | Exit of int
  | Hang of float
  | Delay of float
  | Err
  | Off

type trigger = Always | At of int | From of int

type entry = { action : action; trigger : trigger }

exception Injected of string

type site = { mutable entry : entry; mutable count : int }

let table : (string, site) Hashtbl.t = Hashtbl.create 8
let armed = ref false
let registry : Metrics.t option ref = ref None

(* --- spec parsing ----------------------------------------------------- *)

let parse_action s =
  let num what conv part =
    match conv part with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "%s wants a number, got %S" what part)
  in
  match String.index_opt s ':' with
  | None -> (
    match s with
    | "crash" -> Ok Crash
    | "err" -> Ok Err
    | "off" -> Ok Off
    | other -> Error (Printf.sprintf "unknown failpoint action %S" other))
  | Some i -> (
    let name = String.sub s 0 i in
    let arg = String.sub s (i + 1) (String.length s - i - 1) in
    match name with
    | "exit" -> Result.map (fun c -> Exit c) (num "exit" int_of_string_opt arg)
    | "hang" ->
      Result.map (fun v -> Hang v) (num "hang" float_of_string_opt arg)
    | "delay" ->
      Result.map
        (fun v -> Delay (v /. 1000.))
        (num "delay" float_of_string_opt arg)
    | other -> Error (Printf.sprintf "unknown failpoint action %S" other))

let parse_trigger s =
  if s = "" then Ok Always
  else if s.[0] <> '@' then Error (Printf.sprintf "bad trigger %S" s)
  else
    let body = String.sub s 1 (String.length s - 1) in
    let from = String.length body > 0 && body.[String.length body - 1] = '+' in
    let digits =
      if from then String.sub body 0 (String.length body - 1) else body
    in
    match int_of_string_opt digits with
    | Some n when n >= 1 -> Ok (if from then From n else At n)
    | _ -> Error (Printf.sprintf "bad trigger %S (want @N or @N+, N >= 1)" s)

let parse_entry s =
  match String.index_opt s '=' with
  | None -> Error (Printf.sprintf "failpoint entry %S has no '='" s)
  | Some i -> (
    let name = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    if name = "" then Error (Printf.sprintf "failpoint entry %S has no name" s)
    else
      let action_str, trigger_str =
        match String.index_opt rest '@' with
        | None -> (rest, "")
        | Some j ->
          (String.sub rest 0 j, String.sub rest j (String.length rest - j))
      in
      match (parse_action action_str, parse_trigger trigger_str) with
      | Ok action, Ok trigger -> Ok (name, { action; trigger })
      | (Error _ as e), _ | _, (Error _ as e) -> e)

let parse_spec s =
  let parts =
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun p -> p <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest -> (
      match parse_entry p with
      | Ok e -> go (e :: acc) rest
      | Error _ as e -> e)
  in
  go [] parts

(* --- arming ----------------------------------------------------------- *)

let arm name entry =
  (match Hashtbl.find_opt table name with
  | Some site -> site.entry <- entry
  | None -> Hashtbl.add table name { entry; count = 0 });
  armed := true

let arm_spec s =
  match parse_spec s with
  | Error _ as e -> e
  | Ok entries ->
    List.iter (fun (name, e) -> arm name e) entries;
    Ok ()

let arm_env () =
  match Sys.getenv_opt "MDQA_FAILPOINTS" with
  | None | Some "" -> Ok ()
  | Some spec -> arm_spec spec

let disarm_all () =
  Hashtbl.reset table;
  armed := false

(* --- metrics mirroring ------------------------------------------------ *)

let fp_counter m name =
  Metrics.counter m ~help:"failpoint hits, by site name"
    ~labels:[ ("name", name) ]
    "mdqa_failpoint_hits_total"

let record_in m ~name n = if n > 0 then Metrics.add (fp_counter m name) n

let attach_metrics m =
  registry := Some m;
  (* backfill hits recorded before the registry existed *)
  Hashtbl.iter
    (fun name site -> if site.count > 0 then Metrics.add (fp_counter m name) site.count)
    table

let count site name =
  site.count <- site.count + 1;
  match !registry with
  | Some m -> Metrics.inc (fp_counter m name)
  | None -> ()

(* --- the site --------------------------------------------------------- *)

(* EINTR-proof sleep: a drain signal or SIGCHLD must not cut a scripted
   hang short, or the watchdog test becomes racy again. *)
let sleep_for duration =
  let until = Unix.gettimeofday () +. duration in
  let rec go () =
    let remaining = until -. Unix.gettimeofday () in
    if remaining > 0. then (
      (try Unix.sleepf remaining
       with Unix.Unix_error (Unix.EINTR, _, _) -> ());
      go ())
  in
  go ()

let fires trigger n =
  match trigger with Always -> true | At k -> n = k | From k -> n >= k

let perform name = function
  | Off -> ()
  | Delay d -> sleep_for d
  | Hang d -> sleep_for d
  | Err -> raise (Injected name)
  | Exit code -> Unix._exit code
  | Crash -> (
    (try Sys.set_signal Sys.sigabrt Sys.Signal_default
     with Invalid_argument _ | Sys_error _ -> ());
    Unix.kill (Unix.getpid ()) Sys.sigabrt;
    (* kill is asynchronous in principle; never fall through *)
    Unix._exit 134)

let hit name =
  if !armed then
    match Hashtbl.find_opt table name with
    | None -> ()
    | Some site ->
      count site name;
      if fires site.entry.trigger site.count then perform name site.entry.action

let hits () =
  Hashtbl.fold (fun name site acc -> (name, site.count) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
