(* Counters, gauges and log2 histograms behind a by-name registry.
   Everything is stdlib-only so the instrumented layers (datalog,
   store, server) pay no new dependencies. *)

type counter = { mutable c : int }
type gauge = { mutable g : float }

type histogram = {
  mutable hn : int;
  mutable hs : float;
  hb : (int, int ref) Hashtbl.t;
}

type instrument = C of counter | G of gauge | H of histogram

type key = { kname : string; klabels : (string * string) list }

type t = {
  tbl : (key, instrument) Hashtbl.t;
  help : (string, string) Hashtbl.t;
}

let create () = { tbl = Hashtbl.create 64; help = Hashtbl.create 16 }

let key name labels =
  {
    kname = name;
    klabels = List.sort (fun (a, _) (b, _) -> String.compare a b) labels;
  }

let register t ?help ?(labels = []) name mk classify kind =
  let k = key name labels in
  (match help with
  | Some h when not (Hashtbl.mem t.help name) -> Hashtbl.add t.help name h
  | _ -> ());
  match Hashtbl.find_opt t.tbl k with
  | Some i -> (
    match classify i with
    | Some x -> x
    | None ->
      invalid_arg
        (Printf.sprintf "Metrics: %s already registered as another kind (%s)"
           name kind))
  | None ->
    let x, i = mk () in
    Hashtbl.add t.tbl k i;
    x

let counter t ?help ?labels name =
  register t ?help ?labels name
    (fun () ->
      let c = { c = 0 } in
      (c, C c))
    (function C c -> Some c | _ -> None)
    "counter"

let gauge t ?help ?labels name =
  register t ?help ?labels name
    (fun () ->
      let g = { g = 0. } in
      (g, G g))
    (function G g -> Some g | _ -> None)
    "gauge"

let histogram t ?help ?labels name =
  register t ?help ?labels name
    (fun () ->
      let h = { hn = 0; hs = 0.; hb = Hashtbl.create 8 } in
      (h, H h))
    (function H h -> Some h | _ -> None)
    "histogram"

let inc c = c.c <- c.c + 1

let add c n =
  if n < 0 then invalid_arg "Metrics.add: negative increment";
  c.c <- c.c + n

let counter_value c = c.c
let set g v = g.g <- v
let gauge_value g = g.g

(* Bucket index for [v]: the exponent [e] with 2^(e-1) <= v < 2^e
   (frexp gives v = m * 2^e with m in [0.5, 1)).  Non-positive and
   non-finite-below-zero observations share one sentinel bucket so
   [observe] is total. *)
let sentinel_bucket = min_int

let bucket_of v =
  if v > 0. && Float.is_finite v then snd (Float.frexp v) else sentinel_bucket

let bucket_upper e = if e = sentinel_bucket then 0. else Float.ldexp 1. e

let observe h v =
  h.hn <- h.hn + 1;
  h.hs <- h.hs +. v;
  let b = bucket_of v in
  match Hashtbl.find_opt h.hb b with
  | Some r -> incr r
  | None -> Hashtbl.add h.hb b (ref 1)

(* ------------------------------------------------------------ snapshots *)

type histogram_snapshot = {
  hcount : int;
  hsum : float;
  hbuckets : (int * int) list;
}

type snapshot = {
  counters : ((string * (string * string) list) * int) list;
  gauges : ((string * (string * string) list) * float) list;
  histograms : ((string * (string * string) list) * histogram_snapshot) list;
  shelp : (string * string) list;
}

let compare_key (n1, l1) (n2, l2) =
  match String.compare n1 n2 with 0 -> compare l1 l2 | c -> c

let sort_assoc l = List.sort (fun (k1, _) (k2, _) -> compare_key k1 k2) l

let snapshot t =
  let cs = ref [] and gs = ref [] and hs = ref [] in
  Hashtbl.iter
    (fun k i ->
      let key = (k.kname, k.klabels) in
      match i with
      | C c -> cs := (key, c.c) :: !cs
      | G g -> gs := (key, g.g) :: !gs
      | H h ->
        let buckets =
          Hashtbl.fold (fun e r acc -> (e, !r) :: acc) h.hb []
          |> List.sort (fun (a, _) (b, _) -> compare a b)
        in
        hs := (key, { hcount = h.hn; hsum = h.hs; hbuckets = buckets }) :: !hs)
    t.tbl;
  {
    counters = sort_assoc !cs;
    gauges = sort_assoc !gs;
    histograms = sort_assoc !hs;
    shelp =
      Hashtbl.fold (fun n h acc -> (n, h) :: acc) t.help []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b);
  }

(* Merge two sorted assoc lists, combining values under equal keys.
   Output stays sorted, so merge is order-insensitive on the result. *)
let rec merge_assoc f a b =
  match (a, b) with
  | [], l | l, [] -> l
  | (ka, va) :: ta, (kb, vb) :: tb -> (
    match compare_key ka kb with
    | 0 -> (ka, f va vb) :: merge_assoc f ta tb
    | c when c < 0 -> (ka, va) :: merge_assoc f ta b
    | _ -> (kb, vb) :: merge_assoc f a tb)

let rec merge_buckets a b =
  match (a, b) with
  | [], l | l, [] -> l
  | (ea, ca) :: ta, (eb, cb) :: tb ->
    if ea = eb then (ea, ca + cb) :: merge_buckets ta tb
    else if ea < eb then (ea, ca) :: merge_buckets ta b
    else (eb, cb) :: merge_buckets a tb

let merge_histo a b =
  {
    hcount = a.hcount + b.hcount;
    hsum = a.hsum +. b.hsum;
    hbuckets = merge_buckets a.hbuckets b.hbuckets;
  }

let merge a b =
  {
    counters = merge_assoc ( + ) a.counters b.counters;
    gauges = merge_assoc Float.max a.gauges b.gauges;
    histograms = merge_assoc merge_histo a.histograms b.histograms;
    shelp =
      List.sort_uniq
        (fun (n1, _) (n2, _) -> String.compare n1 n2)
        (a.shelp @ b.shelp);
  }

(* --------------------------------------------------------- expositions *)

let escape_label v =
  let buf = Buffer.create (String.length v + 4) in
  String.iter
    (fun ch ->
      match ch with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | ch -> Buffer.add_char buf ch)
    v;
  Buffer.contents buf

let label_block ?extra labels =
  let labels = match extra with None -> labels | Some kv -> labels @ [ kv ] in
  match labels with
  | [] -> ""
  | l ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v)) l)
    ^ "}"

let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let to_prometheus s =
  let buf = Buffer.create 1024 in
  let typed = Hashtbl.create 16 in
  let header name kind =
    if not (Hashtbl.mem typed name) then begin
      Hashtbl.add typed name ();
      (match List.assoc_opt name s.shelp with
      | Some h -> Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name h)
      | None -> ());
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  List.iter
    (fun ((name, labels), v) ->
      header name "counter";
      Buffer.add_string buf
        (Printf.sprintf "%s%s %d\n" name (label_block labels) v))
    s.counters;
  List.iter
    (fun ((name, labels), v) ->
      header name "gauge";
      Buffer.add_string buf
        (Printf.sprintf "%s%s %s\n" name (label_block labels) (float_str v)))
    s.gauges;
  List.iter
    (fun ((name, labels), h) ->
      header name "histogram";
      let cum = ref 0 in
      List.iter
        (fun (e, n) ->
          cum := !cum + n;
          let le = float_str (bucket_upper e) in
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket%s %d\n" name
               (label_block ~extra:("le", le) labels)
               !cum))
        h.hbuckets;
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket%s %d\n" name
           (label_block ~extra:("le", "+Inf") labels)
           h.hcount);
      Buffer.add_string buf
        (Printf.sprintf "%s_sum%s %s\n" name (label_block labels)
           (float_str h.hsum));
      Buffer.add_string buf
        (Printf.sprintf "%s_count%s %d\n" name (label_block labels) h.hcount))
    s.histograms;
  Buffer.contents buf

let json_escape v =
  let buf = Buffer.create (String.length v + 4) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | ch when Char.code ch < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char buf ch)
    v;
  Buffer.contents buf

let json_key (name, labels) =
  match labels with
  | [] -> name
  | l ->
    name ^ "{"
    ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) l)
    ^ "}"

let json_float v =
  if Float.is_finite v then float_str v
  else Printf.sprintf "\"%s\"" (float_str v)

let to_json s =
  let buf = Buffer.create 512 in
  Buffer.add_char buf '{';
  let first = ref true in
  let field k v =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf (Printf.sprintf "\"%s\":%s" (json_escape k) v)
  in
  List.iter (fun (k, v) -> field (json_key k) (string_of_int v)) s.counters;
  List.iter (fun (k, v) -> field (json_key k) (json_float v)) s.gauges;
  List.iter
    (fun (k, h) ->
      field (json_key k)
        (Printf.sprintf "{\"count\":%d,\"sum\":%s,\"buckets\":[%s]}" h.hcount
           (json_float h.hsum)
           (String.concat ","
              (List.map
                 (fun (e, n) ->
                   Printf.sprintf "[%s,%d]" (json_float (bucket_upper e)) n)
                 h.hbuckets))))
    s.histograms;
  Buffer.add_char buf '}';
  Buffer.contents buf

(* ------------------------------------------------------------- lookups *)

let norm_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let find_counter s ?(labels = []) name =
  List.assoc_opt (name, norm_labels labels) s.counters

let counter_total s name =
  List.fold_left
    (fun acc ((n, _), v) -> if String.equal n name then acc + v else acc)
    0 s.counters

let find_gauge s ?(labels = []) name =
  List.assoc_opt (name, norm_labels labels) s.gauges

let find_histogram s ?(labels = []) name =
  List.assoc_opt (name, norm_labels labels) s.histograms
