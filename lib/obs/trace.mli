(** Span-based tracer with a bounded in-memory ring buffer and Chrome
    trace-event JSON export.

    A tracer is installed process-globally ([install]); instrumented
    code calls [with_span] (or the manual [span_begin]/[span_end] pair
    on hot paths) and pays only a ref read when no tracer is installed.
    [with_span] closes its span even when the wrapped function raises
    (via [Fun.protect]), so begin/end pairs are always well formed. *)

type t

type span
(** An open span, returned by [span_begin] and consumed by [span_end]. *)

type event = {
  name : string;
  ts : float;  (** seconds since the tracer's epoch *)
  dur : float;  (** seconds; [0.] for instants *)
  depth : int;  (** nesting depth at emission, >= 1 for spans *)
  attrs : (string * string) list;
}

val create : ?capacity:int -> ?clock:(unit -> float) -> unit -> t
(** [capacity] bounds the ring buffer (default 65536 events; older
    events are dropped and counted).  [clock] defaults to a monotonic
    wall clock (non-decreasing wrapper over [Unix.gettimeofday]). *)

val install : t -> unit
val uninstall : unit -> unit

val installed : unit -> t option

val active : unit -> bool
(** [active () = (installed () <> None)] — cheap hot-path check. *)

val with_span :
  ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the function under a span on the installed tracer; with no
    tracer installed this is just a call to the function. *)

val span_begin : t -> ?attrs:(string * string) list -> string -> span
val span_end : t -> ?attrs:(string * string) list -> span -> unit
(** Manual pair for hot loops where a closure per iteration would
    show up in profiles.  Extra [attrs] given at [span_end] are
    appended to the ones from [span_begin]. *)

val instant : ?attrs:(string * string) list -> string -> unit
(** Zero-duration marker event on the installed tracer (no-op when
    none is installed). *)

val events : t -> event list
(** Buffered events, oldest first. *)

val dropped : t -> int
(** Events evicted from the ring so far. *)

val depth : t -> int
(** Current open-span nesting depth (0 when all spans are closed). *)

val clear : t -> unit

val export_json : t -> string
(** Chrome trace-event JSON ([{"traceEvents":[...]}], `ph:"X"`
    complete events, timestamps in microseconds) — loadable by
    chrome://tracing and Perfetto. *)

val export_file : t -> string -> unit
(** [export_file t path] writes [export_json t] to [path]. *)
