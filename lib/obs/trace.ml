(* Ring-buffered span tracer.  The design mirrors Guard's clock: a
   monotonic wrapper over [Unix.gettimeofday] by default, injectable
   for tests, so traces are deterministic under a fake clock. *)

type event = {
  name : string;
  ts : float;
  dur : float;
  depth : int;
  attrs : (string * string) list;
}

type span = {
  sp_name : string;
  sp_t0 : float;
  sp_depth : int;
  sp_attrs : (string * string) list;
}

type t = {
  clock : unit -> float;
  epoch : float;
  cap : int;
  ring : event option array;
  mutable written : int;  (* total events ever recorded *)
  mutable open_depth : int;
}

let monotonic () =
  let last = ref 0. in
  fun () ->
    let t = Unix.gettimeofday () in
    if t > !last then last := t;
    !last

let create ?(capacity = 65536) ?clock () =
  let capacity = max 1 capacity in
  let clock = match clock with Some c -> c | None -> monotonic () in
  {
    clock;
    epoch = clock ();
    cap = capacity;
    ring = Array.make capacity None;
    written = 0;
    open_depth = 0;
  }

let record t ev =
  t.ring.(t.written mod t.cap) <- Some ev;
  t.written <- t.written + 1

let span_begin t ?(attrs = []) name =
  t.open_depth <- t.open_depth + 1;
  { sp_name = name; sp_t0 = t.clock (); sp_depth = t.open_depth; sp_attrs = attrs }

let span_end t ?(attrs = []) sp =
  let now = t.clock () in
  record t
    {
      name = sp.sp_name;
      ts = sp.sp_t0 -. t.epoch;
      dur = Float.max 0. (now -. sp.sp_t0);
      depth = sp.sp_depth;
      attrs = sp.sp_attrs @ attrs;
    };
  t.open_depth <- max 0 (t.open_depth - 1)

let instant_on t ?(attrs = []) name =
  record t
    {
      name;
      ts = t.clock () -. t.epoch;
      dur = 0.;
      depth = t.open_depth;
      attrs;
    }

(* ------------------------------------------------- global installation *)

let current : t option ref = ref None
let install t = current := Some t
let uninstall () = current := None
let installed () = !current
let active () = !current <> None

let with_span ?attrs name f =
  match !current with
  | None -> f ()
  | Some t ->
    let sp = span_begin t ?attrs name in
    Fun.protect ~finally:(fun () -> span_end t sp) f

let instant ?attrs name =
  match !current with None -> () | Some t -> instant_on t ?attrs name

(* -------------------------------------------------------------- export *)

let events t =
  let n = min t.written t.cap in
  let first = t.written - n in
  List.init n (fun i ->
      match t.ring.((first + i) mod t.cap) with
      | Some e -> e
      | None -> assert false)

let dropped t = max 0 (t.written - t.cap)
let depth t = t.open_depth

let clear t =
  Array.fill t.ring 0 t.cap None;
  t.written <- 0;
  t.open_depth <- 0

let micros s = s *. 1e6

let json_escape v =
  let buf = Buffer.create (String.length v + 4) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | ch when Char.code ch < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char buf ch)
    v;
  Buffer.contents buf

let event_json ev =
  let args =
    String.concat ","
      (Printf.sprintf "\"depth\":%d" ev.depth
      :: List.map
           (fun (k, v) ->
             Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
           ev.attrs)
  in
  if ev.dur = 0. && ev.depth = 0 then
    Printf.sprintf
      "{\"name\":\"%s\",\"cat\":\"mdqa\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\"pid\":1,\"tid\":1,\"args\":{%s}}"
      (json_escape ev.name) (micros ev.ts) args
  else
    Printf.sprintf
      "{\"name\":\"%s\",\"cat\":\"mdqa\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":1,\"args\":{%s}}"
      (json_escape ev.name) (micros ev.ts) (micros ev.dur) args

let export_json t =
  let evs = events t in
  Printf.sprintf
    "{\"traceEvents\":[%s],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":\"%d\"}}"
    (String.concat "," (List.map event_json evs))
    (dropped t)

let export_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (export_json t);
      output_char oc '\n')
