(** Leveled structured logger.

    One line per record on the configured output (stderr by default),
    either human-readable text or JSONL; both carry an ISO-8601 UTC
    timestamp, the level, the message, and flat key/value fields.
    Replaces ad-hoc [Printf.eprintf] in the server and CLI so stderr
    is machine-parseable end to end. *)

type level = Debug | Info | Warn | Error

type field = Str of string | Int of int | Float of float | Bool of bool

val set_level : level -> unit
val level : unit -> level
val level_of_string : string -> level option
val level_name : level -> string

val set_json : bool -> unit
(** [true] switches to JSONL records; default is the text format. *)

val set_output : (string -> unit) -> unit
(** Redirect formatted lines (newline not included); default writes to
    stderr and flushes.  Used by the tests to capture output. *)

val set_clock : (unit -> float) -> unit
(** Inject the wall clock (epoch seconds) for deterministic tests. *)

val log : level -> ?fields:(string * field) list -> string -> unit

val debug : ?fields:(string * field) list -> string -> unit
val info : ?fields:(string * field) list -> string -> unit
val warn : ?fields:(string * field) list -> string -> unit
val error : ?fields:(string * field) list -> string -> unit

val logf :
  level ->
  ?fields:(string * field) list ->
  ('a, Format.formatter, unit, unit) format4 ->
  'a
(** Format-string convenience over [log]. *)
