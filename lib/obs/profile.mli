(** Cost-attribution profiler for the chase engine.

    Where {!Metrics} answers "how much, in total" and {!Trace} answers
    "when, in what order", the profiler answers "which rule, which body
    atom, which query" — the attribution needed to pick join orders and
    name hot rules.  It is always compiled in and off by default: a
    profiler is installed process-globally ([install]) exactly like a
    {!Trace} tracer, instrumented code pays a single ref read when none
    is installed, and the hot chase loop works against pre-resolved
    per-rule handles so the profiled path stays within the overhead
    budget (≤1.05x on an unprofiled assessment).

    Everything is keyed on stable identifiers: rule name (the TGD name
    from the program text), body-atom source position within the rule
    (index 0 is the first written atom, regardless of the join order
    the evaluator actually picked), query name, chase round number and
    phase name.  Collected state is read out as an immutable
    {!snapshot} whose {!merge} is associative and commutative, so
    snapshots from different runs or processes combine like {!Metrics}
    snapshots do. *)

type t
(** A mutable collector. *)

type rule
(** Pre-resolved per-rule accumulator handle; incrementing through a
    handle is a field write, not a table lookup. *)

(** {1 Aggregated statistics} *)

type rule_stat = {
  fires : int;  (** firings that derived at least one new fact *)
  triggers : int;  (** deduplicated triggers checked *)
  matches : int;  (** body matches enumerated (before trigger dedup) *)
  rule_seconds : float;
      (** wall time attributed to the rule: trigger enumeration,
          applicability checks and head instantiation *)
}

type atom_stat = {
  scanned : int;  (** candidate tuples iterated at this atom *)
  matched : int;  (** substitutions surviving unification here *)
}

type round_stat = {
  round_count : int;  (** runs contributing to this round number *)
  round_seconds : float;
  minor_collections : int;  (** GC minor collections during the round *)
  major_collections : int;  (** GC major collections during the round *)
  heap_words : int;  (** max heap size observed at a round boundary *)
}

type query_stat = {
  evals : int;
  query_seconds : float;
}

type phase_stat = {
  calls : int;
  phase_seconds : float;
}

type snapshot = {
  rules : (string * rule_stat) list;  (** sorted by rule name *)
  atoms : ((string * int * string) * atom_stat) list;
      (** keyed [(rule_or_query, atom_index, predicate)], sorted *)
  rounds : (int * round_stat) list;  (** keyed by round number, sorted *)
  queries : (string * query_stat) list;  (** sorted by query name *)
  phases : (string * phase_stat) list;  (** sorted by phase name *)
}

(** {1 Collector lifecycle} *)

val create : ?clock:(unit -> float) -> unit -> t
(** [clock] defaults to a monotonic wall clock (non-decreasing wrapper
    over [Unix.gettimeofday]); inject a fake for deterministic tests. *)

val install : t -> unit
val uninstall : unit -> unit
val installed : unit -> t option

val active : unit -> bool
(** [active () = (installed () <> None)] — cheap hot-path check. *)

val clear : t -> unit
(** Drop all accumulated statistics (the clock is kept). *)

(** {1 Collection hooks}

    The [with_]* wrappers act on the installed profiler and reduce to a
    plain call when none is installed; the handle-based increments are
    for the chase hot loop, which resolves handles once per rule. *)

val now : t -> float
(** Read the collector's clock. *)

val rule : t -> string -> rule
(** Resolve (creating on first use) the accumulator for a rule name. *)

val add_trigger : rule -> unit
val add_fire : rule -> unit
val add_matches : rule -> int -> unit
val add_rule_seconds : rule -> float -> unit

val with_scope : t -> string -> (unit -> 'a) -> 'a
(** Run [f] with atom-level statistics attributed to the given rule or
    query name; the previous scope is restored even on exceptions. *)

val scoped : unit -> t option
(** The installed profiler, but only while some [with_scope] (or
    [with_query]) is dynamically active — evaluation outside any
    attribution scope (EGD checks, applicability probes) reports
    nothing. *)

val atom_visit : t -> idx:int -> pred:string -> scanned:int -> matched:int -> unit
(** Credit one visit of body atom [idx] ([pred]) under the current
    scope; no-op when no scope is active. *)

val with_round : int -> (unit -> 'a) -> 'a
(** Time a chase round and sample [Gc.quick_stat] deltas at its
    boundaries, keyed by round number. *)

val with_query : string -> (unit -> 'a) -> 'a
(** Time one evaluation of a named query; also opens an attribution
    scope with the query's name, so its body atoms land in [atoms]. *)

val with_phase : string -> (unit -> 'a) -> 'a
(** Time a coarse engine phase ("chase", "assess", ...). *)

(** {1 Snapshots} *)

val snapshot : t -> snapshot
(** Immutable copy of the current statistics, all lists sorted. *)

val merge : snapshot -> snapshot -> snapshot
(** Pointwise combination: counters and seconds add, [heap_words]
    takes the max.  Associative and commutative, so snapshots can be
    folded in any order. *)

val empty : snapshot

val find_rule : snapshot -> string -> rule_stat option
val find_atom : snapshot -> string * int * string -> atom_stat option
val find_query : snapshot -> string -> query_stat option
val find_phase : snapshot -> string -> phase_stat option

val selectivity : atom_stat -> float
(** [matched / scanned] ([0.] when nothing was scanned). *)

val total_rule_seconds : snapshot -> float
val total_query_seconds : snapshot -> float

val to_json : snapshot -> string
(** Self-contained JSON object with ["rules"], ["atoms"] (each row
    carrying a derived ["selectivity"]), ["rounds"], ["queries"] and
    ["phases"] arrays, each sorted by key. *)
