type level = Debug | Info | Warn | Error
type field = Str of string | Int of int | Float of float | Bool of bool

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii s with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

let current_level = ref Info
let json_mode = ref false

let output =
  ref (fun line ->
      prerr_string line;
      prerr_newline ();
      flush stderr)

let clock = ref Unix.gettimeofday

let set_level l = current_level := l
let level () = !current_level
let set_json b = json_mode := b
let set_output f = output := f
let set_clock f = clock := f

let timestamp now =
  let tm = Unix.gmtime now in
  let ms = int_of_float (Float.rem now 1. *. 1000.) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec (max 0 ms)

let json_escape v =
  let buf = Buffer.create (String.length v + 4) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | ch when Char.code ch < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char buf ch)
    v;
  Buffer.contents buf

let field_json = function
  | Str s -> Printf.sprintf "\"%s\"" (json_escape s)
  | Int i -> string_of_int i
  | Float f ->
    if Float.is_finite f then Printf.sprintf "%.9g" f
    else Printf.sprintf "\"%h\"" f
  | Bool b -> string_of_bool b

let field_text = function
  | Str s ->
    if String.contains s ' ' || String.contains s '"' then
      Printf.sprintf "%S" s
    else s
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.9g" f
  | Bool b -> string_of_bool b

let render lvl ts msg fields =
  if !json_mode then begin
    let buf = Buffer.create 128 in
    Buffer.add_string buf
      (Printf.sprintf "{\"ts\":\"%s\",\"level\":\"%s\",\"msg\":\"%s\"" ts
         (level_name lvl) (json_escape msg));
    List.iter
      (fun (k, v) ->
        Buffer.add_string buf
          (Printf.sprintf ",\"%s\":%s" (json_escape k) (field_json v)))
      fields;
    Buffer.add_char buf '}';
    Buffer.contents buf
  end
  else begin
    let buf = Buffer.create 128 in
    Buffer.add_string buf
      (Printf.sprintf "%s %-5s %s" ts (level_name lvl) msg);
    List.iter
      (fun (k, v) ->
        Buffer.add_string buf (Printf.sprintf " %s=%s" k (field_text v)))
      fields;
    Buffer.contents buf
  end

let log lvl ?(fields = []) msg =
  if severity lvl >= severity !current_level then
    !output (render lvl (timestamp (!clock ())) msg fields)

let debug ?fields msg = log Debug ?fields msg
let info ?fields msg = log Info ?fields msg
let warn ?fields msg = log Warn ?fields msg
let error ?fields msg = log Error ?fields msg

let logf lvl ?fields fmt =
  Format.kasprintf (fun msg -> log lvl ?fields msg) fmt
