(** Deterministic failpoints.

    A failpoint is a named site in the code ({!hit}) that normally does
    nothing and costs one ref read.  Arming it — programmatically or
    through the [MDQA_FAILPOINTS] environment variable — makes the site
    perform a scripted fault: crash the process, exit with a code, hang,
    delay, or raise.  Faults fire on exact hit numbers, so a chaos
    harness can script "the worker's third request dies" instead of
    racing an external [kill] against request timing.

    Spec grammar (entries separated by [,]):
    {v
      spec    := entry ("," entry)*
      entry   := name "=" action trigger?
      action  := "crash"            abort the process with SIGABRT
               | "exit:" CODE       exit immediately with CODE
               | "hang:" SECS       sleep SECS (trips hang watchdogs)
               | "delay:" MS        sleep MS milliseconds, then continue
               | "err"              raise Injected (in-process fault)
               | "off"              armed but inert (hits still counted)
      trigger := "@" N              fire only on the N-th hit (1-based)
               | "@" N "+"          fire on the N-th hit and after
    v}
    Example: [MDQA_FAILPOINTS=worker.request=crash@3,store.checkpoint=err]

    Hit counters are per-process: a forked child starts from a copy of
    the parent's counts at fork time. *)

type action =
  | Crash  (** SIGABRT to self: dies as a signal, like a real crash *)
  | Exit of int  (** immediate [Unix._exit] with the given code *)
  | Hang of float  (** sleep this many seconds *)
  | Delay of float  (** sleep this many seconds, then continue *)
  | Err  (** raise {!Injected} at the site *)
  | Off  (** count hits, inject nothing *)

type trigger =
  | Always
  | At of int  (** only the N-th hit, 1-based *)
  | From of int  (** the N-th hit and every one after *)

type entry = { action : action; trigger : trigger }

exception Injected of string
(** Raised at a site armed with [err]; the argument is the site name. *)

val parse_spec : string -> ((string * entry) list, string) result
(** Parse a full spec string.  [Error msg] names the first bad entry. *)

val arm : string -> entry -> unit
(** Arm (or re-arm) one site.  Hit counts survive re-arming. *)

val arm_spec : string -> (unit, string) result
(** Parse and arm a full spec string. *)

val arm_env : unit -> (unit, string) result
(** Arm from [MDQA_FAILPOINTS] if set; [Ok ()] when unset. *)

val disarm_all : unit -> unit
(** Disarm every site and forget all hit counts. *)

val attach_metrics : Metrics.t -> unit
(** Mirror hit counts into [mdqa_failpoint_hits_total{name=...}] in the
    given registry: existing counts are backfilled, later hits increment
    directly.  At most one registry is attached at a time. *)

val record_in : Metrics.t -> name:string -> int -> unit
(** Add [n] hits for site [name] to [mdqa_failpoint_hits_total] in the
    given registry directly (no local site involved).  The supervisor
    uses this to fold the deltas a worker piggybacks on its replies
    into the parent's registry.  Negative or zero [n] is a no-op. *)

val hit : string -> unit
(** The instrumented site.  A no-op (one ref read) while nothing is
    armed; when [name] is armed the hit is counted and the scripted
    action fires if its trigger matches. *)

val hits : unit -> (string * int) list
(** Hit counts of every armed site, sorted by name.  A worker process
    piggybacks these on reply frames so the supervisor can aggregate
    hit counters across the pool. *)
