(** Metrics registry: counters, gauges, and log2-bucketed histograms.

    Zero dependencies beyond the stdlib.  Instruments are registered by
    name (plus optional labels) and are idempotent: asking twice for the
    same name/labels returns the same instrument; asking with a
    different kind raises [Invalid_argument].

    Snapshots are plain sorted data and merge deterministically:
    counters and histograms add, gauges take the maximum.  This makes a
    snapshot of [merge a b] independent of evaluation order, which the
    property tests rely on. *)

type t
(** A registry. *)

type counter
type gauge
type histogram

val create : unit -> t

val counter :
  t -> ?help:string -> ?labels:(string * string) list -> string -> counter
(** Register (or fetch) a monotonic counter. *)

val gauge :
  t -> ?help:string -> ?labels:(string * string) list -> string -> gauge

val histogram :
  t -> ?help:string -> ?labels:(string * string) list -> string -> histogram
(** Histogram with log2 buckets: an observation [v > 0] lands in the
    bucket indexed by the exponent [e] with [2^(e-1) <= v < 2^e];
    observations [<= 0] land in a single sentinel bucket. *)

val inc : counter -> unit
val add : counter -> int -> unit
(** [add c n] adds [n]; raises [Invalid_argument] if [n < 0]. *)

val counter_value : counter -> int
val set : gauge -> float -> unit
val gauge_value : gauge -> float
val observe : histogram -> float -> unit

(** {1 Snapshots} *)

type histogram_snapshot = {
  hcount : int;
  hsum : float;
  hbuckets : (int * int) list;  (** exponent -> count, sorted *)
}

type snapshot = {
  counters : ((string * (string * string) list) * int) list;
  gauges : ((string * (string * string) list) * float) list;
  histograms : ((string * (string * string) list) * histogram_snapshot) list;
  shelp : (string * string) list;  (** family name -> help text *)
}
(** All lists sorted by key ([name], then sorted labels). *)

val snapshot : t -> snapshot

val merge : snapshot -> snapshot -> snapshot
(** Counters and histogram buckets/counts/sums add; gauges take the
    max; help is left-biased.  Associative and commutative. *)

val bucket_upper : int -> float
(** Upper bound [2^e] of bucket [e]. *)

val to_prometheus : snapshot -> string
(** Prometheus text exposition: [# HELP]/[# TYPE] lines per family,
    counters as integers, histograms as cumulative [_bucket{le=...}]
    series with [_sum] and [_count]. *)

val to_json : snapshot -> string
(** Single-line JSON rendering of the snapshot (for BENCH_*.json). *)

(** {1 Lookup helpers (tests, bench)} *)

val find_counter :
  snapshot -> ?labels:(string * string) list -> string -> int option

val counter_total : snapshot -> string -> int
(** Sum of a counter family across all label sets (0 if absent). *)

val find_gauge :
  snapshot -> ?labels:(string * string) list -> string -> float option

val find_histogram :
  snapshot -> ?labels:(string * string) list -> string -> histogram_snapshot option
