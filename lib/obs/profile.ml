(* Cost-attribution profiler.  Mirrors Trace's installation idiom (a
   global [current] ref, one ref read on the disabled path) and
   Metrics' snapshot algebra (immutable sorted association lists with
   an associative, commutative merge).  The chase hot loop increments
   through pre-resolved mutable records so the enabled path costs a
   few field writes per trigger, not a hash lookup. *)

type rule = {
  mutable r_fires : int;
  mutable r_triggers : int;
  mutable r_matches : int;
  mutable r_seconds : float;
}

type atom_cell = { mutable a_scanned : int; mutable a_matched : int }

type round_cell = {
  mutable rd_count : int;
  mutable rd_seconds : float;
  mutable rd_minor : int;
  mutable rd_major : int;
  mutable rd_heap : int;
}

type query_cell = { mutable q_evals : int; mutable q_seconds : float }
type phase_cell = { mutable p_calls : int; mutable p_seconds : float }

type t = {
  clock : unit -> float;
  rules : (string, rule) Hashtbl.t;
  atoms : (string * int * string, atom_cell) Hashtbl.t;
  rounds : (int, round_cell) Hashtbl.t;
  queries : (string, query_cell) Hashtbl.t;
  phases : (string, phase_cell) Hashtbl.t;
  mutable scope : string option;
}

let monotonic () =
  let last = ref 0. in
  fun () ->
    let t = Unix.gettimeofday () in
    if t > !last then last := t;
    !last

let create ?clock () =
  let clock = match clock with Some c -> c | None -> monotonic () in
  {
    clock;
    rules = Hashtbl.create 16;
    atoms = Hashtbl.create 64;
    rounds = Hashtbl.create 16;
    queries = Hashtbl.create 16;
    phases = Hashtbl.create 8;
    scope = None;
  }

let clear t =
  Hashtbl.reset t.rules;
  Hashtbl.reset t.atoms;
  Hashtbl.reset t.rounds;
  Hashtbl.reset t.queries;
  Hashtbl.reset t.phases;
  t.scope <- None

(* ------------------------------------------------- global installation *)

let current : t option ref = ref None
let install t = current := Some t
let uninstall () = current := None
let installed () = !current
let active () = !current <> None

(* ------------------------------------------------------------- hooks *)

let now t = t.clock ()

let rule t name =
  match Hashtbl.find_opt t.rules name with
  | Some r -> r
  | None ->
    let r = { r_fires = 0; r_triggers = 0; r_matches = 0; r_seconds = 0. } in
    Hashtbl.add t.rules name r;
    r

let add_trigger r = r.r_triggers <- r.r_triggers + 1
let add_fire r = r.r_fires <- r.r_fires + 1
let add_matches r n = r.r_matches <- r.r_matches + n
let add_rule_seconds r s = r.r_seconds <- r.r_seconds +. s

let with_scope t name f =
  let saved = t.scope in
  t.scope <- Some name;
  Fun.protect ~finally:(fun () -> t.scope <- saved) f

let scoped () =
  match !current with
  | Some t when t.scope <> None -> Some t
  | _ -> None

let atom_visit t ~idx ~pred ~scanned ~matched =
  match t.scope with
  | None -> ()
  | Some scope ->
    let cell =
      let key = (scope, idx, pred) in
      match Hashtbl.find_opt t.atoms key with
      | Some c -> c
      | None ->
        let c = { a_scanned = 0; a_matched = 0 } in
        Hashtbl.add t.atoms key c;
        c
    in
    cell.a_scanned <- cell.a_scanned + scanned;
    cell.a_matched <- cell.a_matched + matched

let with_round n f =
  match !current with
  | None -> f ()
  | Some t ->
    let g0 = Gc.quick_stat () in
    let t0 = t.clock () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = t.clock () in
        let g1 = Gc.quick_stat () in
        let cell =
          match Hashtbl.find_opt t.rounds n with
          | Some c -> c
          | None ->
            let c =
              { rd_count = 0; rd_seconds = 0.; rd_minor = 0; rd_major = 0;
                rd_heap = 0 }
            in
            Hashtbl.add t.rounds n c;
            c
        in
        cell.rd_count <- cell.rd_count + 1;
        cell.rd_seconds <- cell.rd_seconds +. Float.max 0. (t1 -. t0);
        cell.rd_minor <-
          cell.rd_minor
          + max 0 (g1.Gc.minor_collections - g0.Gc.minor_collections);
        cell.rd_major <-
          cell.rd_major
          + max 0 (g1.Gc.major_collections - g0.Gc.major_collections);
        cell.rd_heap <- max cell.rd_heap g1.Gc.heap_words)
      f

let with_query name f =
  match !current with
  | None -> f ()
  | Some t ->
    let t0 = t.clock () in
    Fun.protect
      ~finally:(fun () ->
        let dt = Float.max 0. (t.clock () -. t0) in
        let cell =
          match Hashtbl.find_opt t.queries name with
          | Some c -> c
          | None ->
            let c = { q_evals = 0; q_seconds = 0. } in
            Hashtbl.add t.queries name c;
            c
        in
        cell.q_evals <- cell.q_evals + 1;
        cell.q_seconds <- cell.q_seconds +. dt)
      (fun () -> with_scope t name f)

let with_phase name f =
  match !current with
  | None -> f ()
  | Some t ->
    let t0 = t.clock () in
    Fun.protect
      ~finally:(fun () ->
        let dt = Float.max 0. (t.clock () -. t0) in
        let cell =
          match Hashtbl.find_opt t.phases name with
          | Some c -> c
          | None ->
            let c = { p_calls = 0; p_seconds = 0. } in
            Hashtbl.add t.phases name c;
            c
        in
        cell.p_calls <- cell.p_calls + 1;
        cell.p_seconds <- cell.p_seconds +. dt)
      f

(* --------------------------------------------------------- snapshots *)

type rule_stat = {
  fires : int;
  triggers : int;
  matches : int;
  rule_seconds : float;
}

type atom_stat = { scanned : int; matched : int }

type round_stat = {
  round_count : int;
  round_seconds : float;
  minor_collections : int;
  major_collections : int;
  heap_words : int;
}

type query_stat = { evals : int; query_seconds : float }
type phase_stat = { calls : int; phase_seconds : float }

type snapshot = {
  rules : (string * rule_stat) list;
  atoms : ((string * int * string) * atom_stat) list;
  rounds : (int * round_stat) list;
  queries : (string * query_stat) list;
  phases : (string * phase_stat) list;
}

let empty = { rules = []; atoms = []; rounds = []; queries = []; phases = [] }

let sorted_bindings cmp tbl f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> cmp a b)

let snapshot (t : t) =
  {
    rules =
      sorted_bindings String.compare t.rules (fun r ->
          { fires = r.r_fires; triggers = r.r_triggers;
            matches = r.r_matches; rule_seconds = r.r_seconds });
    atoms =
      sorted_bindings compare t.atoms (fun c ->
          { scanned = c.a_scanned; matched = c.a_matched });
    rounds =
      sorted_bindings compare t.rounds (fun c ->
          { round_count = c.rd_count; round_seconds = c.rd_seconds;
            minor_collections = c.rd_minor; major_collections = c.rd_major;
            heap_words = c.rd_heap });
    queries =
      sorted_bindings String.compare t.queries (fun c ->
          { evals = c.q_evals; query_seconds = c.q_seconds });
    phases =
      sorted_bindings String.compare t.phases (fun c ->
          { calls = c.p_calls; phase_seconds = c.p_seconds });
  }

(* Merge two sorted association lists, combining values under equal
   keys with [f]; keys only in one side pass through, so the result is
   sorted and the operation inherits [f]'s associativity. *)
let rec merge_assoc cmp f a b =
  match (a, b) with
  | [], l | l, [] -> l
  | (ka, va) :: ra, (kb, vb) :: rb ->
    let c = cmp ka kb in
    if c < 0 then (ka, va) :: merge_assoc cmp f ra b
    else if c > 0 then (kb, vb) :: merge_assoc cmp f a rb
    else (ka, f va vb) :: merge_assoc cmp f ra rb

let merge a b =
  {
    rules =
      merge_assoc String.compare
        (fun x y ->
          { fires = x.fires + y.fires;
            triggers = x.triggers + y.triggers;
            matches = x.matches + y.matches;
            rule_seconds = x.rule_seconds +. y.rule_seconds })
        a.rules b.rules;
    atoms =
      merge_assoc compare
        (fun x y ->
          { scanned = x.scanned + y.scanned; matched = x.matched + y.matched })
        a.atoms b.atoms;
    rounds =
      merge_assoc compare
        (fun x y ->
          { round_count = x.round_count + y.round_count;
            round_seconds = x.round_seconds +. y.round_seconds;
            minor_collections = x.minor_collections + y.minor_collections;
            major_collections = x.major_collections + y.major_collections;
            heap_words = max x.heap_words y.heap_words })
        a.rounds b.rounds;
    queries =
      merge_assoc String.compare
        (fun x y ->
          { evals = x.evals + y.evals;
            query_seconds = x.query_seconds +. y.query_seconds })
        a.queries b.queries;
    phases =
      merge_assoc String.compare
        (fun x y ->
          { calls = x.calls + y.calls;
            phase_seconds = x.phase_seconds +. y.phase_seconds })
        a.phases b.phases;
  }

let find_rule s name = List.assoc_opt name s.rules
let find_atom s key = List.assoc_opt key s.atoms
let find_query s name = List.assoc_opt name s.queries
let find_phase s name = List.assoc_opt name s.phases

let selectivity a =
  if a.scanned = 0 then 0. else float_of_int a.matched /. float_of_int a.scanned

let total_rule_seconds s =
  List.fold_left (fun acc (_, r) -> acc +. r.rule_seconds) 0. s.rules

let total_query_seconds s =
  List.fold_left (fun acc (_, q) -> acc +. q.query_seconds) 0. s.queries

(* ------------------------------------------------------------ export *)

let json_escape v =
  let buf = Buffer.create (String.length v + 4) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | ch when Char.code ch < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char buf ch)
    v;
  Buffer.contents buf

let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.9g" f

let to_json s =
  let arr l f = "[" ^ String.concat "," (List.map f l) ^ "]" in
  let rules =
    arr s.rules (fun (name, r) ->
        Printf.sprintf
          "{\"rule\":\"%s\",\"fires\":%d,\"triggers\":%d,\"matches\":%d,\"seconds\":%s}"
          (json_escape name) r.fires r.triggers r.matches
          (json_float r.rule_seconds))
  and atoms =
    arr s.atoms (fun ((scope, idx, pred), a) ->
        Printf.sprintf
          "{\"rule\":\"%s\",\"atom\":%d,\"pred\":\"%s\",\"scanned\":%d,\"matched\":%d,\"selectivity\":%s}"
          (json_escape scope) idx (json_escape pred) a.scanned a.matched
          (json_float (selectivity a)))
  and rounds =
    arr s.rounds (fun (n, r) ->
        Printf.sprintf
          "{\"round\":%d,\"count\":%d,\"seconds\":%s,\"minor_collections\":%d,\"major_collections\":%d,\"heap_words\":%d}"
          n r.round_count
          (json_float r.round_seconds)
          r.minor_collections r.major_collections r.heap_words)
  and queries =
    arr s.queries (fun (name, q) ->
        Printf.sprintf "{\"query\":\"%s\",\"evals\":%d,\"seconds\":%s}"
          (json_escape name) q.evals
          (json_float q.query_seconds))
  and phases =
    arr s.phases (fun (name, p) ->
        Printf.sprintf "{\"phase\":\"%s\",\"calls\":%d,\"seconds\":%s}"
          (json_escape name) p.calls
          (json_float p.phase_seconds))
  in
  Printf.sprintf
    "{\"rules\":%s,\"atoms\":%s,\"rounds\":%s,\"queries\":%s,\"phases\":%s}"
    rules atoms rounds queries phases
