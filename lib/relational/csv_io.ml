let needs_quote s =
  String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let cell_of_value v =
  let s = Value.to_string v in
  if needs_quote s then quote s else s

let value_of_cell s = Value.of_string s

(* Split one CSV line honouring double-quoted cells. *)
let split_line line =
  let n = String.length line in
  let cells = ref [] in
  let buf = Buffer.create 16 in
  let rec go i in_quotes =
    if i >= n then begin
      cells := Buffer.contents buf :: !cells
    end
    else
      let c = line.[i] in
      if in_quotes then
        if c = '"' then
          if i + 1 < n && line.[i + 1] = '"' then begin
            Buffer.add_char buf '"';
            go (i + 2) true
          end
          else go (i + 1) false
        else begin
          Buffer.add_char buf c;
          go (i + 1) true
        end
      else if c = '"' then go (i + 1) true
      else if c = ',' then begin
        cells := Buffer.contents buf :: !cells;
        Buffer.clear buf;
        go (i + 1) false
      end
      else begin
        Buffer.add_char buf c;
        go (i + 1) false
      end
  in
  go 0 false;
  List.rev !cells

let relation_to_string r =
  let s = Relation.schema r in
  let buf = Buffer.create 256 in
  let header =
    List.map
      (fun a ->
        let n = Attribute.name a in
        if needs_quote n then quote n else n)
      (Rel_schema.attributes s)
  in
  Buffer.add_string buf (String.concat "," header);
  Buffer.add_char buf '\n';
  Relation.iter
    (fun t ->
      Buffer.add_string buf
        (String.concat "," (List.map cell_of_value (Tuple.to_list t)));
      Buffer.add_char buf '\n')
    r;
  Buffer.contents buf

type error = {
  row : int;  (* 1-based file line; the header is line 1 *)
  col : int;  (* 1-based cell index; 0 when the whole row is at fault *)
  message : string;
}

let relation_of_string_result ~name text =
  let lines =
    String.split_on_char '\n' text
    |> List.mapi (fun i l ->
           (* tolerate CRLF; keep the absolute line number *)
           let l =
             if l <> "" && l.[String.length l - 1] = '\r' then
               String.sub l 0 (String.length l - 1)
             else l
           in
           (i + 1, l))
    |> List.filter (fun (_, l) -> l <> "")
  in
  match lines with
  | [] ->
    Error [ { row = 1; col = 0; message = "empty input: a header line with attribute names is required" } ]
  | (hrow, header) :: rows -> (
    let attrs = List.map Attribute.plain (split_line header) in
    match Rel_schema.make name attrs with
    | exception Invalid_argument m -> Error [ { row = hrow; col = 0; message = m } ]
    | schema ->
      let arity = Rel_schema.arity schema in
      let r = Relation.create schema in
      let errs = ref [] in
      List.iter
        (fun (row, line) ->
          let cells = split_line line in
          let k = List.length cells in
          if k <> arity then
            errs :=
              { row;
                col = min k arity + 1;
                message =
                  Printf.sprintf
                    "row has %d cells but the header (line %d) declares %d"
                    k hrow arity }
              :: !errs
          else
            ignore
              (Relation.add r (Tuple.of_list (List.map value_of_cell cells))))
        rows;
      (match List.rev !errs with [] -> Ok r | errs -> Error errs))

let pp_error ppf e =
  Format.fprintf ppf "row %d, column %d: %s" e.row e.col e.message

let relation_of_string ~name text =
  match relation_of_string_result ~name text with
  | Ok r -> r
  | Error (e :: _) ->
    failwith
      (Printf.sprintf "Csv_io.relation_of_string: row %d: %s" e.row e.message)
  | Error [] -> assert false

let save_relation path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (relation_to_string r))

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      really_input_string ic n)

let load_relation_result ~name path =
  relation_of_string_result ~name (read_file path)

let load_relation ~name path = relation_of_string ~name (read_file path)
