(** Minimal CSV-style persistence for relations and instances.

    Format: one header line with attribute names, then one line per
    tuple.  Cells are separated by commas; cells containing commas,
    quotes or newlines are double-quoted with ["" ] escaping.  Values
    are parsed back with {!Value.of_string} (so numbers round-trip as
    numbers, nulls as nulls). *)

val cell_of_value : Value.t -> string
val value_of_cell : string -> Value.t

val relation_to_string : Relation.t -> string

type error = {
  row : int;  (** 1-based file line number; the header is line 1 *)
  col : int;  (** 1-based cell index; 0 when the whole row is at fault *)
  message : string;
}

val relation_of_string_result :
  name:string -> string -> (Relation.t, error list) result
(** Parse a relation from CSV text; the schema is all-plain attributes
    named by the header.  [Error] carries {e every} problem (empty
    input, a bad header, each ragged row) with its file line and the
    first offending cell — never raises. *)

val relation_of_string : name:string -> string -> Relation.t
(** Compatibility only — new code should use
    {!relation_of_string_result}, which reports {e every} problem with
    its location instead of aborting on the first.  Fail-fast wrapper:
    @raise Failure with the first error on ragged rows or empty
    input. *)

val pp_error : Format.formatter -> error -> unit

val save_relation : string -> Relation.t -> unit
(** [save_relation path r] writes [r] to [path]. *)

val load_relation_result :
  name:string -> string -> (Relation.t, error list) result
(** @raise Sys_error on I/O failure only. *)

val load_relation : name:string -> string -> Relation.t
(** Compatibility only — new code should use {!load_relation_result}.
    [load_relation ~name path]. @raise Sys_error / Failure. *)
