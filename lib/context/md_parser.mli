(** Textual format for complete multidimensional quality contexts
    (conventionally [.mdq] files).

    The format extends the Datalog± surface syntax of
    {!Mdqa_datalog.Parser} with declarations:

    {v
    % dimensions: categories (child -> parent) and members
    dimension Hospital {
      category Ward -> Unit.
      category Unit -> Institution.
      member "W1" in Ward -> "Standard".
      member "Standard" in Unit -> "H1".
      member "H1" in Institution.
    }

    % categorical relations: attributes typed by Dimension.Category
    relation patient_ward(ward in Hospital.Ward, day in Time.Day, patient).

    % the schema of a relation under assessment (the instance D)
    source measurements(time, patient, value).

    % a closed external source (Fig. 2's E_i)
    external certified_nurses(nurse).

    % context wiring: D-relation -> contextual copy / quality version
    map measurements -> measurements_c.
    quality measurements -> measurements_q.

    % plus ordinary statements: facts, rules, constraints, queries
    patient_ward("W1", "Sep/5", "Tom Waits").
    patient_unit(U, D, P) :- patient_ward(W, D, P), unit_ward(U, W).
    ! :- patient_ward(W, D, P), unit_ward("Intensive", W).
    ?q(U) :- patient_unit(U, "Sep/5", "Tom Waits").
    v}

    Statement classification:
    - facts over [relation]-declared predicates populate the ontology's
      data; facts over [source]-declared predicates populate the
      instance under assessment; facts over [external]-declared
      predicates populate closed external sources injected into the
      context; other facts are errors;
    - TGDs whose predicates are all known to the MD schema must pass
      {!Mdqa_multidim.Dim_rule.analyze} and become dimensional rules;
      TGDs mentioning any other predicate become contextual rules;
    - EGDs and negative constraints must be dimensional (all predicates
      known to the MD schema);
    - parent-child predicates are referred to by their generated names
      ([unit_ward], [day_time], ...; see
      {!Mdqa_multidim.Md_schema.parent_child_pred}).

    Keywords ([dimension], [category], [member], [in], [relation],
    [source], [map], [quality]) are only reserved in declaration
    position; [->] must be surrounded by spaces. *)

type parsed = {
  ontology : Mdqa_multidim.Md_ontology.t;
  context : Context.t;
  source : Mdqa_relational.Instance.t;
  queries : Mdqa_datalog.Query.t list;
}

type checked = {
  parsed : parsed option;
      (** [Some] iff no error-severity diagnostic was produced *)
  diags : Mdqa_datalog.Diag.t list;  (** in source order *)
}

val check_string : ?file:string -> string -> checked
(** Validate a whole [.mdq] input in one pass, never raising: the
    parser recovers at statement boundaries (and inside dimension
    bodies), so every lexical/syntax error is reported, and the
    semantic pass then accumulates every declaration-level problem —
    duplicate declarations ([E010]), arity clashes ([E011]), unknown
    predicates in rule/query bodies ([E012]), facts over undeclared
    predicates ([E013]), ill-formed dimensions ([E014]–[E017]),
    ill-formed relations ([E018]), invalid dimensional rules ([E019]),
    non-dimensional constraints ([E020]) and dangling [map]/[quality]
    wiring ([E021]) — each at the source line of the declaration at
    fault.  On error-free inputs the advisory analyses also run:
    hierarchy quality ([W043]/[W044]), closed-world referential
    violations ([W045]), empty quality versions ([W042]), unused
    mapped copies ([H051]) and the weak-stickiness certificate
    ([W041]/[H050]). *)

val check_file : string -> checked
(** @raise Sys_error on I/O failure only. *)

exception Error of { line : int; message : string }
(** [line] is the source line of the offending declaration or
    statement (1-based). *)

val parse_string : string -> parsed
(** Fail-fast wrapper over {!check_string}: returns the parsed context
    or raises {!Error} with the {e first} error diagnostic, located at
    its real source line.
    @raise Error on syntax errors, unknown categories/dimensions,
    invalid dimensional rules, or facts over undeclared predicates. *)

val parse_file : string -> parsed
(** @raise Sys_error on I/O failure; {!Error} as {!parse_string}. *)
