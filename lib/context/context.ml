open Mdqa_datalog
module R = Mdqa_relational
module Md_ontology = Mdqa_multidim.Md_ontology

type mapping = { source : string; target : string }

type t = {
  ontology : Md_ontology.t;
  mappings : mapping list;
  rules : Tgd.t list;
  externals : R.Relation.t list;
  quality_versions : (string * string) list;
}

let duplicates what names =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun n ->
      if Hashtbl.mem seen n then
        Some (Printf.sprintf "Context: duplicate %s %s" what n)
      else begin
        Hashtbl.add seen n ();
        None
      end)
    names

(* Every wiring problem, in declaration order — the non-raising
   substrate of [make], also consumed by the semantic validator. *)
let problems ?(mappings = []) ?(quality_versions = []) () =
  duplicates "mapping source" (List.map (fun m -> m.source) mappings)
  @ duplicates "quality version" (List.map fst quality_versions)

let make ~ontology ?(mappings = []) ?(rules = []) ?(externals = [])
    ?(quality_versions = []) () =
  (match problems ~mappings ~quality_versions () with
   | [] -> ()
   | m :: _ -> invalid_arg m);
  { ontology; mappings; rules; externals; quality_versions }

type assessment = {
  context : t;
  chase : Chase.result;
  source : R.Instance.t;
}

let program t =
  let p = Md_ontology.program t.ontology in
  Program.make
    ~tgds:(p.Program.tgds @ t.rules)
    ~egds:p.Program.egds ~ncs:p.Program.ncs ()

let prepare t ~source =
  let inst = Md_ontology.instance t.ontology in
  (* Externals. *)
  List.iter
    (fun e ->
      let r = R.Instance.declare inst (R.Relation.schema e) in
      R.Relation.iter (fun tup -> ignore (R.Relation.add r tup)) e)
    t.externals;
  (* Mapped copies of the original relations. *)
  List.iter
    (fun { source = s; target } ->
      match R.Instance.find source s with
      | None -> ()
      | Some rel ->
        let schema =
          R.Rel_schema.make target
            (R.Rel_schema.attributes (R.Relation.schema rel))
        in
        let copy = R.Instance.declare inst schema in
        R.Relation.iter (fun tup -> ignore (R.Relation.add copy tup)) rel)
    t.mappings;
  inst

let assess_prepared ?provenance ?guard ?max_steps ?max_nulls ?metrics t
    ~source ~prepared =
  let chase =
    Chase.run ?provenance ?guard ?max_steps ?max_nulls ?metrics (program t)
      prepared
  in
  { context = t; chase; source }

let assess ?provenance ?guard ?max_steps ?max_nulls ?metrics t ~source =
  Mdqa_obs.Profile.with_phase "assess" @@ fun () ->
  assess_prepared ?provenance ?guard ?max_steps ?max_nulls ?metrics t ~source
    ~prepared:(prepare t ~source)

let degradation a =
  match a.chase.Chase.outcome with
  | Chase.Out_of_budget e -> Some e
  | _ -> None

let assess_incremental ?guard ?max_steps ?max_nulls (a : assessment) ~added =
  (* extend the original instance D *)
  let source = R.Instance.copy a.source in
  List.iter
    (fun (rel, t) ->
      match R.Instance.find source rel with
      | Some r -> ignore (R.Relation.add r t)
      | None ->
        invalid_arg
          (Printf.sprintf "assess_incremental: unknown source relation %s" rel))
    added;
  (* new facts as seen by the context: the mapped copies *)
  let delta =
    List.concat_map
      (fun (rel, t) ->
        match
          List.find_opt (fun (m : mapping) -> String.equal m.source rel)
            a.context.mappings
        with
        | Some m -> [ (m.target, t) ]
        | None -> [])
      added
  in
  let chase =
    Chase.extend ?guard ?max_steps ?max_nulls (program a.context) a.chase
      ~facts:delta
  in
  { context = a.context; chase; source }

(* A degraded chase still holds a well-formed partial instance; with
   [partial] its null-free quality versions are exposed (an
   under-approximation of the saturated ones).  A [Failed] chase never
   yields quality versions. *)
let chase_usable ~partial (a : assessment) =
  match a.chase.Chase.outcome with
  | Chase.Saturated -> true
  | Chase.Out_of_budget _ -> partial
  | Chase.Failed _ -> false

let quality_version ?(partial = false) a name =
  match List.assoc_opt name a.context.quality_versions with
  | None -> None
  | Some qpred ->
    if not (chase_usable ~partial a) then None
    else (
      match R.Instance.find a.chase.Chase.instance qpred with
      | None -> None
      | Some qrel ->
        (* Present the null-free extension under the original schema
           when available (same arity), else under the chased one. *)
        let schema =
          match R.Instance.find a.source name with
          | Some orig_rel
            when R.Relation.arity orig_rel = R.Relation.arity qrel ->
            R.Rel_schema.make
              (R.Rel_schema.name (R.Relation.schema qrel))
              (R.Rel_schema.attributes (R.Relation.schema orig_rel))
          | _ -> R.Relation.schema qrel
        in
        let out = R.Relation.create schema in
        R.Relation.iter
          (fun tup ->
            if not (R.Tuple.has_null tup) then
              ignore (R.Relation.add out tup))
          qrel;
        Some out)

let rewrite_query t (q : Query.t) =
  let subst_pred p =
    match List.assoc_opt p t.quality_versions with
    | Some qp -> qp
    | None -> p
  in
  let body =
    List.map (fun a -> Atom.make (subst_pred (Atom.pred a)) (Atom.args a))
      q.Query.body
  in
  Query.make ~name:(q.Query.name ^ "_q") ~cmps:q.Query.cmps ~head:q.Query.head
    body

let clean_answers ?(partial = false) a q =
  if not (chase_usable ~partial a) then None
  else
    Some (Query.certain a.chase.Chase.instance (rewrite_query a.context q))

let explain a name tuple =
  match List.assoc_opt name a.context.quality_versions with
  | None -> Error (Printf.sprintf "%s has no declared quality version" name)
  | Some qpred -> Explain.why a.chase qpred tuple

let pp_mapping ppf (m : mapping) =
  Format.fprintf ppf "%s ↦ %s" m.source m.target
