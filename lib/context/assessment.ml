module R = Mdqa_relational

type relation_report = {
  relation : string;
  original_size : int;
  quality_size : int;
  kept : int;
  removed : int;
  added : int;
  ratio : float;
}

let compare_relations ~original ~quality =
  if R.Relation.arity original <> R.Relation.arity quality then
    invalid_arg "Assessment.compare_relations: arity mismatch";
  let o = R.Relation.to_set original and q = R.Relation.to_set quality in
  let kept = R.Tuple.Set.cardinal (R.Tuple.Set.inter o q) in
  let removed = R.Tuple.Set.cardinal (R.Tuple.Set.diff o q) in
  let added = R.Tuple.Set.cardinal (R.Tuple.Set.diff q o) in
  let original_size = R.Tuple.Set.cardinal o in
  { relation = R.Relation.name original;
    original_size;
    quality_size = R.Tuple.Set.cardinal q;
    kept;
    removed;
    added;
    ratio =
      (if original_size = 0 then 1.0
       else float_of_int kept /. float_of_int original_size) }

let quality_ratio ~original ~quality =
  (compare_relations ~original ~quality).ratio

let departure ~original ~quality =
  let r = compare_relations ~original ~quality in
  r.removed + r.added

let report ?(partial = false) (a : Context.assessment) =
  List.filter_map
    (fun (orig_name, _) ->
      match
        ( R.Instance.find a.Context.source orig_name,
          Context.quality_version ~partial a orig_name )
      with
      | Some original, Some quality
        when R.Relation.arity original = R.Relation.arity quality ->
        Some (compare_relations ~original ~quality)
      | _ -> None)
    a.Context.context.Context.quality_versions

let pp_relation_report ppf r =
  Format.fprintf ppf
    "%s: %d tuples, %d up to quality (ratio %.2f), %d removed, %d added"
    r.relation r.original_size r.kept r.ratio r.removed r.added

let pp_report ppf rs =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i r ->
      if i > 0 then Format.pp_print_cut ppf ();
      pp_relation_report ppf r)
    rs;
  Format.fprintf ppf "@]"
