(** Subset repairs for denial constraints.

    The paper's Example 1 notes that the inter-dimensional constraint
    "no patient was in intensive care after August 2005" means the
    offending PatientWard tuple "should be discarded".  This module
    implements that semantics: given the negative constraints of a
    program, a {e repair} is a minimal set of deletions of {e deletable}
    tuples (categorical relation data, mapped source copies — never the
    fixed dimension facts) that removes every constraint violation, as
    in consistent query answering (Bertossi 2011, the paper's [3]).

    Scope: violations are detected on the extensional instance (before
    TGD completion).  Constraints whose bodies mention a TGD-derived
    predicate cannot be repaired by extensional deletions in general
    and are rejected with [Error].  EGD violations between two
    constants are treated as denial violations over the pair of
    offending tuples. *)

type deletion = { relation : string; tuple : Mdqa_relational.Tuple.t }

type witness = {
  constraint_name : string;
  deletions : deletion list;
      (** the deletable tuples of one violation; removing any one of
          them resolves it *)
}

val violations :
  Mdqa_datalog.Program.t ->
  Mdqa_relational.Instance.t ->
  deletable:(string -> bool) ->
  (witness list, string) result
(** All violation witnesses of the program's negative constraints and
    EGDs over the instance.  [Error] if some constraint involves a
    derived predicate, or if a violation has no deletable tuple at all
    (it cannot be repaired by deletions). *)

val repairs :
  ?guard:Mdqa_datalog.Guard.t ->
  ?max_repairs:int ->
  witness list ->
  deletion list list Mdqa_datalog.Guard.outcome
(** All minimal hitting sets of the witnesses — each is the deletion
    set of one subset repair.  At most [max_repairs] (default 64) are
    returned; deterministic order.  The guard bounds the branch-and-
    cover search (default branch budget: [max_repairs * 64]); on a trip
    the outcome is [Degraded] with the minimal repairs found so far —
    each still a valid repair, but the enumeration may be incomplete. *)

val greedy_repair : witness list -> deletion list
(** One repair, greedily deleting the tuple covering the most unsolved
    violations (not guaranteed minimum-cardinality, but minimal). *)

val apply :
  Mdqa_relational.Instance.t -> deletion list -> Mdqa_relational.Instance.t
(** A fresh copy of the instance with the deletions applied. *)

val assess_repaired :
  ?guard:Mdqa_datalog.Guard.t ->
  ?max_steps:int ->
  ?max_nulls:int ->
  Context.t ->
  source:Mdqa_relational.Instance.t ->
  (Context.assessment * deletion list, string) result
(** Like {!Context.assess}, but if the extensional data violates the
    denial constraints, first discard a {!greedy_repair} of the
    ontology's categorical data and the mapped copies, then assess.
    Returns the assessment together with the discarded tuples.  The
    guard governs the assessment chase; a trip surfaces through
    {!Context.degradation} on the returned assessment. *)

val cautious_answers :
  ?guard:Mdqa_datalog.Guard.t ->
  ?max_repairs:int ->
  ?max_steps:int ->
  ?max_nulls:int ->
  Context.t ->
  source:Mdqa_relational.Instance.t ->
  Mdqa_datalog.Query.t ->
  (Mdqa_relational.Tuple.t list Mdqa_datalog.Guard.outcome, string) result
(** Consistent quality answers: quality answers that hold under {e
    every} repair (the intersection over {!repairs}) — the
    consistent-query-answering semantics the paper points to.  One
    guard governs the repair enumeration and every per-repair chase;
    on any trip the outcome is [Degraded] with the intersection over
    the work completed (answers from partial chases under-approximate;
    an incomplete repair enumeration intersects fewer repairs), and
    the exhaustion report says which resource ran out. *)

val pp_deletion : Format.formatter -> deletion -> unit
