(** Multidimensional contexts for data quality assessment (paper §V,
    Fig. 2).

    A context [C] is the formal theory a database under assessment is
    mapped into.  It bundles:

    - the multidimensional ontology M ({!Mdqa_multidim.Md_ontology});
    - {e mappings} sending each relation [S_i] of the original instance
      D to a contextual copy (the paper's [Measurementsᶜ]; D is a
      footprint of the broader contextual relation);
    - {e contextual rules}: Datalog± TGDs defining auxiliary contextual
      predicates, quality predicates [P_i] (e.g. [TakenByNurse],
      [TakenWithTherm]) and the {e quality versions} [S_i^q];
    - {e external sources} [E_i]: closed relations injected into the
      contextual instance.

    Assessment runs the chase of M ∪ contextual rules over the combined
    instance; quality versions and quality query answers are read off
    the chased instance.  Queries over the original schema are
    rewritten by substituting each [S_i] with [S_i^q] ({!rewrite_query}
    — the paper's [Q ↦ Q^q]). *)

type mapping = {
  source : string;  (** relation name in the original instance D *)
  target : string;  (** its contextual copy's predicate name *)
}

type t = private {
  ontology : Mdqa_multidim.Md_ontology.t;
  mappings : mapping list;
  rules : Mdqa_datalog.Tgd.t list;
  externals : Mdqa_relational.Relation.t list;
  quality_versions : (string * string) list;
      (** (original relation, its quality-version predicate) *)
}

val problems :
  ?mappings:mapping list ->
  ?quality_versions:(string * string) list ->
  unit ->
  string list
(** Every wiring problem (duplicate mapping sources, duplicate
    quality-version entries), in declaration order.  Empty iff {!make}
    succeeds. *)

val make :
  ontology:Mdqa_multidim.Md_ontology.t ->
  ?mappings:mapping list ->
  ?rules:Mdqa_datalog.Tgd.t list ->
  ?externals:Mdqa_relational.Relation.t list ->
  ?quality_versions:(string * string) list ->
  unit ->
  t
(** @raise Invalid_argument with the first of {!problems} when any
    exist. *)

val program : t -> Mdqa_datalog.Program.t
(** M's rules plus the contextual rules (no facts). *)

val prepare : t -> source:Mdqa_relational.Instance.t -> Mdqa_relational.Instance.t
(** The combined pre-chase contextual instance: M's compiled instance,
    the external sources and the mapped copies of [source].  This is
    what {!assess} chases; exposed so repairs can edit it first. *)

type assessment = {
  context : t;
  chase : Mdqa_datalog.Chase.result;
  source : Mdqa_relational.Instance.t;  (** the assessed instance D *)
}

val assess :
  ?provenance:bool ->
  ?guard:Mdqa_datalog.Guard.t ->
  ?max_steps:int ->
  ?max_nulls:int ->
  ?metrics:Mdqa_obs.Metrics.t ->
  t ->
  source:Mdqa_relational.Instance.t ->
  assessment
(** Combine M's instance, the mapped copies of [source] and the
    external sources; chase under M's program plus the contextual
    rules.  The chase outcome (including constraint violations) is in
    [chase].  With [provenance], {!explain} can reconstruct why a tuple
    is in a quality version.

    Resource governance: the [guard] (or the step/null budgets) bounds
    the whole assessment chase.  On any trip the assessment is still
    returned — {!degradation} reports the exhausted resource, and
    {!quality_version} / {!clean_answers} with [~partial:true] read the
    partial chase. *)

val assess_prepared :
  ?provenance:bool ->
  ?guard:Mdqa_datalog.Guard.t ->
  ?max_steps:int ->
  ?max_nulls:int ->
  ?metrics:Mdqa_obs.Metrics.t ->
  t ->
  source:Mdqa_relational.Instance.t ->
  prepared:Mdqa_relational.Instance.t ->
  assessment
(** Like {!assess} but chases a caller-supplied combined instance
    (normally an edited {!prepare} result). *)

val degradation : assessment -> Mdqa_datalog.Guard.exhaustion option
(** The exhaustion report if the assessment chase ran out of a
    resource; [None] when it saturated or failed on a constraint. *)

val assess_incremental :
  ?guard:Mdqa_datalog.Guard.t ->
  ?max_steps:int ->
  ?max_nulls:int ->
  assessment ->
  added:(string * Mdqa_relational.Tuple.t) list ->
  assessment
(** Incremental re-assessment after new tuples arrive in the original
    instance D: [added] pairs relation names of D with new tuples.  The
    mapped contextual copies are computed and the chase is {e extended}
    from the prior result ({!Mdqa_datalog.Chase.extend}) — work is
    proportional to the consequences of the new data.  The prior
    assessment must be saturated; otherwise a full {!assess} runs. *)

val quality_version :
  ?partial:bool ->
  assessment -> string -> Mdqa_relational.Relation.t option
(** [quality_version a s] is the computed extension [S^q] for original
    relation [s]: the null-free tuples of its quality-version
    predicate in the chased instance, presented under [s]'s schema
    (problem (a) of §V).  [None] if [s] has no declared quality
    version or the chase failed.  With [partial] (off by default), a
    budget-degraded chase yields the quality version computed so far —
    a sound under-approximation; a constraint-failed chase still
    yields [None]. *)

val rewrite_query : t -> Mdqa_datalog.Query.t -> Mdqa_datalog.Query.t
(** Substitute quality-version predicates for original ones ([Q^q]). *)

val clean_answers :
  ?partial:bool ->
  assessment -> Mdqa_datalog.Query.t -> Mdqa_relational.Tuple.t list option
(** Quality answers to a query over the original schema: rewrite with
    {!rewrite_query}, evaluate certain answers on the chased instance
    (problem (b) of §V).  [None] if the chase failed.  With [partial],
    a budget-degraded chase yields the answers supported so far. *)

val explain :
  assessment ->
  string ->
  Mdqa_relational.Tuple.t ->
  (Mdqa_datalog.Explain.tree, string) result
(** [explain a s t]: the derivation of tuple [t] of [s]'s quality
    version — why the tuple was deemed up to quality.  Requires the
    assessment to have been run with [~provenance:true]. *)

val pp_mapping : Format.formatter -> mapping -> unit
