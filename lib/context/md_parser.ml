open Mdqa_datalog
open Mdqa_multidim
module R = Mdqa_relational
module Raw = Parser.Raw

type parsed = {
  ontology : Md_ontology.t;
  context : Context.t;
  source : R.Instance.t;
  queries : Query.t list;
}

type checked = {
  parsed : parsed option;
  diags : Diag.t list;
}

exception Error of { line : int; message : string }

(* Intermediate, pre-assembly representation of the declarations.
   Every item carries the position of its declaration, so each
   validation failure is reported at its real source line — never at
   line 0. *)
type dim_decl = {
  dim_name : string;
  dim_pos : Lexer.pos;
  mutable cat_edges : (string * string * Lexer.pos) list;  (* child, parent *)
  mutable standalone : (string * Lexer.pos) list;
  mutable dmembers : (string * string * Lexer.pos) list;  (* member, category *)
  mutable links : (string * string * Lexer.pos) list;
      (* child member, parent member *)
}

type decls = {
  mutable dims : dim_decl list;
  mutable relations : (R.Rel_schema.t * Lexer.pos) list;
  mutable sources : (R.Rel_schema.t * Lexer.pos) list;
  mutable externals : (R.Rel_schema.t * Lexer.pos) list;
  mutable maps : (string * string * Lexer.pos) list;
  mutable qualities : (string * string * Lexer.pos) list;
  mutable facts : (Atom.t * Lexer.pos) list;
  mutable tgds : (Tgd.t * Lexer.pos) list;
  mutable egds : (Egd.t * Lexer.pos) list;
  mutable ncs : (Nc.t * Lexer.pos) list;
  mutable queries : (Query.t * Lexer.pos) list;
}

let fail st message = Raw.error st message

(* a name usable as a category / member / dimension *)
let name_token st what =
  match Raw.peek st with
  | Lexer.VAR s, _ | Lexer.IDENT s, _ | Lexer.STRING s, _ ->
    Raw.advance st;
    s
  | t, _ ->
    fail st
      (Printf.sprintf "expected %s, found %s" what (Lexer.token_to_string t))

let dotted_category st =
  let s = name_token st "Dimension.Category" in
  match String.split_on_char '.' s with
  | [ d; c ] when d <> "" && c <> "" -> (d, c)
  | _ ->
    fail st
      (Printf.sprintf "expected Dimension.Category, found %S" s)

let comma_list st parse_one =
  let rec go acc =
    let x = parse_one st in
    match Raw.peek st with
    | Lexer.COMMA, _ ->
      Raw.advance st;
      go (x :: acc)
    | _ -> List.rev (x :: acc)
  in
  go []

let keyword st = function
  | Lexer.IDENT k -> (
    match k with
    | "dimension" | "relation" | "source" | "external" | "map" | "quality"
    | "category" | "member" ->
      (* a declaration only when not immediately a predicate call *)
      (match Raw.peek2 st with Lexer.LPAREN -> None | _ -> Some k)
    | _ -> None)
  | _ -> None

let record_parse_error ?file diags (pe : exn) =
  match pe with
  | Parser.Error { line; col; code; message } ->
    Diag.error diags ?file ~line ~col ~code message
  | e -> raise e

let parse_dimension st ?file diags decls ~start =
  Raw.advance st (* 'dimension' *);
  let dim_name = name_token st "a dimension name" in
  Raw.expect st Lexer.LBRACE "'{'";
  let d =
    { dim_name; dim_pos = start; cat_edges = []; standalone = [];
      dmembers = []; links = [] }
  in
  let item () =
    match Raw.peek st with
    | Lexer.IDENT "category", pos ->
      Raw.advance st;
      let child = name_token st "a category name" in
      (match Raw.peek st with
       | Lexer.ARROW, _ ->
         Raw.advance st;
         let parents = comma_list st (fun st -> name_token st "a category") in
         d.cat_edges <-
           d.cat_edges @ List.map (fun p -> (child, p, pos)) parents
       | _ -> d.standalone <- (child, pos) :: d.standalone);
      Raw.expect st Lexer.PERIOD "'.'"
    | Lexer.IDENT "member", pos ->
      Raw.advance st;
      let m = name_token st "a member name" in
      (match Raw.peek st with
       | Lexer.IDENT "in", _ -> Raw.advance st
       | t, _ ->
         fail st
           (Printf.sprintf "expected 'in', found %s"
              (Lexer.token_to_string t)));
      let cat = name_token st "a category" in
      d.dmembers <- (m, cat, pos) :: d.dmembers;
      (match Raw.peek st with
       | Lexer.ARROW, _ ->
         Raw.advance st;
         let parents = comma_list st (fun st -> name_token st "a member") in
         d.links <- d.links @ List.map (fun p -> (m, p, pos)) parents
       | _ -> ());
      Raw.expect st Lexer.PERIOD "'.'"
    | t, _ ->
      fail st
        (Printf.sprintf
           "expected 'category', 'member' or '}' in dimension body, found %s"
           (Lexer.token_to_string t))
  in
  (* Per-item recovery: one bad category/member line is reported and
     skipped; the rest of the dimension body still parses. *)
  let rec body () =
    match Raw.peek st with
    | Lexer.RBRACE, _ -> Raw.advance st
    | Lexer.EOF, _ -> fail st "unexpected end of input in dimension body"
    | _ ->
      let before = Raw.pos st in
      (try item ()
       with Parser.Error _ as pe ->
         record_parse_error ?file diags pe;
         if Raw.pos st = before then Raw.advance st;
         Raw.recover st);
      body ()
  in
  body ();
  decls.dims <- decls.dims @ [ d ]

let parse_relation st decls ~kind ~start =
  Raw.advance st (* 'relation' | 'source' | 'external' *);
  let name =
    match Raw.peek st with
    | Lexer.IDENT n, _ ->
      Raw.advance st;
      n
    | t, _ ->
      fail st
        (Printf.sprintf "expected a relation name, found %s"
           (Lexer.token_to_string t))
  in
  Raw.expect st Lexer.LPAREN "'('";
  let parse_attr st =
    match Raw.peek st with
    | Lexer.IDENT a, _ ->
      Raw.advance st;
      (match Raw.peek st with
       | Lexer.IDENT "in", _ ->
         Raw.advance st;
         let dimension, category = dotted_category st in
         R.Attribute.categorical a ~dimension ~category
       | _ -> R.Attribute.plain a)
    | t, _ ->
      fail st
        (Printf.sprintf "expected an attribute name, found %s"
           (Lexer.token_to_string t))
  in
  let attrs = comma_list st parse_attr in
  Raw.expect st Lexer.RPAREN "')'";
  Raw.expect st Lexer.PERIOD "'.'";
  let schema =
    try R.Rel_schema.make name attrs
    with Invalid_argument m ->
      raise
        (Parser.Error
           { line = start.Lexer.line; col = start.Lexer.col; code = "E018";
             message = m })
  in
  match kind with
  | `Source -> decls.sources <- decls.sources @ [ (schema, start) ]
  | `External -> decls.externals <- decls.externals @ [ (schema, start) ]
  | `Relation -> decls.relations <- decls.relations @ [ (schema, start) ]

let parse_wiring st decls ~quality ~start =
  Raw.advance st (* 'map' | 'quality' *);
  let from = name_token st "a relation name" in
  Raw.expect st Lexer.ARROW "'->'";
  let target = name_token st "a predicate name" in
  Raw.expect st Lexer.PERIOD "'.'";
  if quality then decls.qualities <- decls.qualities @ [ (from, target, start) ]
  else decls.maps <- decls.maps @ [ (from, target, start) ]

(* Collect every declaration, recovering at statement boundaries so
   one pass reports all syntax errors. *)
let collect ?file diags st =
  let decls =
    { dims = []; relations = []; sources = []; externals = []; maps = [];
      qualities = []; facts = []; tgds = []; egds = []; ncs = [];
      queries = [] }
  in
  let rec go () =
    if not (Raw.at_eof st) then begin
      let start = Raw.pos st in
      (try
         match keyword st (fst (Raw.peek st)) with
         | Some "dimension" -> parse_dimension st ?file diags decls ~start
         | Some "relation" -> parse_relation st decls ~kind:`Relation ~start
         | Some "source" -> parse_relation st decls ~kind:`Source ~start
         | Some "external" -> parse_relation st decls ~kind:`External ~start
         | Some "map" -> parse_wiring st decls ~quality:false ~start
         | Some "quality" -> parse_wiring st decls ~quality:true ~start
         | Some k ->
           fail st (Printf.sprintf "'%s' is only allowed inside a dimension" k)
         | None -> (
           match Raw.statement st with
           | Raw.S_fact f -> decls.facts <- decls.facts @ [ (f, start) ]
           | Raw.S_tgd t -> decls.tgds <- decls.tgds @ [ (t, start) ]
           | Raw.S_egd e -> decls.egds <- decls.egds @ [ (e, start) ]
           | Raw.S_nc n -> decls.ncs <- decls.ncs @ [ (n, start) ]
           | Raw.S_query q -> decls.queries <- decls.queries @ [ (q, start) ])
       with Parser.Error { code; _ } as pe ->
         record_parse_error ?file diags pe;
         if Raw.pos st = start then Raw.advance st;
         (* statement-level semantic errors (E003) are raised after
            the whole statement was consumed, '.' included —
            resyncing would swallow the next declaration *)
         if code <> "E003" then begin
           Raw.recover st;
           (* a '}' left over from a broken dimension body would
              otherwise cascade into a statement error *)
           match Raw.peek st with
           | Lexer.RBRACE, _ -> Raw.advance st
           | _ -> ()
         end);
      go ()
    end
  in
  go ();
  decls

(* --- semantic validation ------------------------------------------- *)

module Smap = Map.Make (String)

type artifacts = {
  dim_schemas : Dim_schema.t Smap.t;
  dim_instances : Dim_instance.t Smap.t;  (* only error-free dimensions *)
  md_schema : Md_schema.t option;
}

let err ?file diags (pos : Lexer.pos) code fmt =
  Diag.errorf diags ?file ~line:pos.Lexer.line ~col:pos.Lexer.col ~code fmt

let warn ?file diags (pos : Lexer.pos) code fmt =
  Diag.warningf diags ?file ~line:pos.Lexer.line ~col:pos.Lexer.col ~code fmt

let validate_dimension ?file diags (d : dim_decl) =
  let ok = ref true in
  let schema =
    let edges =
      List.map (fun (c, p, _) -> (c, p)) d.cat_edges
      @ List.filter_map
          (fun (c, _) ->
            if
              List.exists (fun (a, b, _) -> a = c || b = c) d.cat_edges
            then None
            else Some (c, Dim_schema.all))
          (List.rev d.standalone)
    in
    match Dim_schema.make ~name:d.dim_name ~edges with
    | s -> Some s
    | exception Invalid_argument m ->
      err ?file diags d.dim_pos "E014" "%s" m;
      ok := false;
      None
  in
  (match schema with
   | None -> ()
   | Some schema ->
     (* members: known categories, no duplicates *)
     let seen = Hashtbl.create 16 in
     List.iter
       (fun (m, cat, pos) ->
         if not (Dim_schema.mem_category schema cat) then begin
           err ?file diags pos "E015"
             "dimension %s has no category %s (member %s)" d.dim_name cat m;
           ok := false
         end;
         (match Hashtbl.find_opt seen m with
          | Some other_cat ->
            err ?file diags pos "E016"
              "member %s already declared in category %s of dimension %s" m
              other_cat d.dim_name;
            ok := false
          | None -> Hashtbl.add seen m cat))
       (List.rev d.dmembers);
     (* links: known members, along a schema edge *)
     List.iter
       (fun (child, parent, pos) ->
         match Hashtbl.find_opt seen child, Hashtbl.find_opt seen parent with
         | None, _ ->
           err ?file diags pos "E017"
             "link references unknown member %s of dimension %s" child
             d.dim_name;
           ok := false
         | _, None ->
           if parent <> "all" then begin
             err ?file diags pos "E017"
               "link references unknown member %s of dimension %s" parent
               d.dim_name;
             ok := false
           end
         | Some cc, Some pc ->
           if not (List.mem pc (Dim_schema.parents schema cc)) then begin
             err ?file diags pos "E017"
               "link %s -> %s does not follow a schema edge (%s -> %s) in \
                dimension %s"
               child parent cc pc d.dim_name;
             ok := false
           end)
       d.links);
  let instance =
    if not !ok then None
    else
      match schema with
      | None -> None
      | Some schema -> (
        let members_by_cat =
          List.fold_left
            (fun acc (m, cat, _) ->
              let cur = Option.value ~default:[] (List.assoc_opt cat acc) in
              (cat, m :: cur) :: List.remove_assoc cat acc)
            []
            d.dmembers
        in
        match
          Dim_instance.make schema ~members:members_by_cat
            ~links:(List.rev_map (fun (c, p, _) -> (c, p)) (List.rev d.links))
        with
        | i -> Some i
        | exception Invalid_argument m ->
          (* pre-empted by the checks above; located safety net *)
          err ?file diags d.dim_pos "E014" "%s" m;
          None)
  in
  (* hierarchy quality warnings: strictness and homogeneity *)
  (match instance with
   | None -> ()
   | Some i ->
     let pos_of_member m =
       match
         List.find_opt (fun (n, _, _) -> String.equal n m) d.dmembers
       with
       | Some (_, _, pos) -> pos
       | None -> d.dim_pos
     in
     List.iter
       (fun (m, anc, ups) ->
         warn ?file diags (pos_of_member m) "W043"
           "dimension %s is not strict: member %s rolls up to %d members of \
            %s (%s)"
           d.dim_name m (List.length ups) anc
           (String.concat ", " (List.map R.Value.to_string ups)))
       (Dim_instance.strictness_violations i);
     List.iter
       (fun (m, pcat) ->
         warn ?file diags (pos_of_member m) "W044"
           "dimension %s is not homogeneous: member %s has no parent in \
            category %s (roll-up is not total)"
           d.dim_name m pcat)
       (Dim_instance.homogeneity_violations i));
  (schema, instance)

(* Classify an [Md_schema] conflict message onto a stable code. *)
let schema_conflict_code message =
  let contains sub =
    let n = String.length sub and m = String.length message in
    let rec go i = i + n <= m && (String.sub message i n = sub || go (i + 1)) in
    go 0
  in
  if contains "unknown dimension" then "E018"
  else if contains "unknown category" then "E015"
  else "E010"

let validate ?file diags (decls : decls) =
  (* 1. dimensions *)
  let dim_schemas = ref Smap.empty and dim_instances = ref Smap.empty in
  List.iter
    (fun (d : dim_decl) ->
      if Smap.mem d.dim_name !dim_schemas then
        err ?file diags d.dim_pos "E010" "duplicate dimension %s" d.dim_name
      else begin
        let schema, instance = validate_dimension ?file diags d in
        (match schema with
         | Some s -> dim_schemas := Smap.add d.dim_name s !dim_schemas
         | None -> ());
        match instance with
        | Some i -> dim_instances := Smap.add d.dim_name i !dim_instances
        | None -> ()
      end)
    decls.dims;
  (* 2. relation / source / external namespaces are disjoint *)
  let decl_pos = Hashtbl.create 16 in
  List.iter
    (fun (what, schemas) ->
      List.iter
        (fun (s, pos) ->
          let n = R.Rel_schema.name s in
          (match Hashtbl.find_opt decl_pos n with
           | Some (other, (first : Lexer.pos)) ->
             err ?file diags pos "E010"
               "%s %s already declared as a %s at line %d" what n other
               first.Lexer.line
           | None -> ());
          Hashtbl.replace decl_pos n (what, pos))
        schemas)
    [ ("relation", decls.relations); ("source", decls.sources);
      ("external", decls.externals) ];
  (* 3. the MD schema itself *)
  let dims_in_order =
    (* first declaration of each name, when its schema built *)
    let seen = Hashtbl.create 8 in
    List.filter_map
      (fun (d : dim_decl) ->
        if Hashtbl.mem seen d.dim_name then None
        else begin
          Hashtbl.add seen d.dim_name ();
          Smap.find_opt d.dim_name !dim_schemas
        end)
      decls.dims
  in
  let relations = List.map fst decls.relations in
  let conflicts =
    Md_schema.conflicts ~dimensions:dims_in_order ~relations
  in
  List.iter
    (fun { Md_schema.subject; message } ->
      let pos =
        match Hashtbl.find_opt decl_pos subject with
        | Some (_, pos) -> pos
        | None -> (
          match
            List.find_opt
              (fun (d : dim_decl) -> String.equal d.dim_name subject)
              decls.dims
          with
          | Some d -> d.dim_pos
          | None -> { Lexer.line = 1; col = 0 })
      in
      err ?file diags pos (schema_conflict_code message) "%s" message)
    conflicts;
  let md_schema =
    if
      conflicts = []
      && List.length dims_in_order = List.length decls.dims
    then
      match Md_schema.make ~dimensions:dims_in_order ~relations with
      | s -> Some s
      | exception Invalid_argument m ->
        err ?file diags { Lexer.line = 1; col = 0 } "E014" "%s" m;
        None
    else None
  in
  (* 4. facts: declared predicates only *)
  let find_schema n =
    List.find_map
      (fun (s, _) ->
        if String.equal (R.Rel_schema.name s) n then Some s else None)
      (decls.relations @ decls.sources @ decls.externals)
  in
  List.iter
    (fun (f, pos) ->
      let p = Atom.pred f in
      match find_schema p with
      | Some _ -> ()
      | None ->
        err ?file diags pos "E013"
          "fact over undeclared predicate %s (declare it with 'relation', \
           'source' or 'external')"
          p)
    decls.facts;
  (* 5. global arity consistency: declarations, then facts, then rules,
     constraints and queries — each clash located at its statement *)
  let seen_arity = Hashtbl.create 32 in
  let check_entry what pos p k =
    match Hashtbl.find_opt seen_arity p with
    | None -> Hashtbl.add seen_arity p (k, pos)
    | Some (k', (first : Lexer.pos)) ->
      if k <> k' then
        err ?file diags pos "E011"
          "%s uses predicate %s with arity %d but it has arity %d (line %d)"
          what p k k' first.Lexer.line
  in
  (match md_schema with
   | Some s ->
     List.iter
       (fun d ->
         List.iter
           (fun c ->
             if c <> Dim_schema.all then
               check_entry "category" { Lexer.line = 1; col = 0 }
                 (Md_schema.category_pred c) 1)
           (Dim_schema.categories d);
         List.iter
           (fun (child, parent) ->
             if parent <> Dim_schema.all then
               check_entry "roll-up" { Lexer.line = 1; col = 0 }
                 (Md_schema.parent_child_pred ~parent ~child) 2)
           (Dim_schema.edges d))
       (Md_schema.dimensions s)
   | None -> ());
  List.iter
    (fun (s, pos) ->
      check_entry "declaration" pos (R.Rel_schema.name s)
        (R.Rel_schema.arity s))
    (decls.relations @ decls.sources @ decls.externals);
  List.iter
    (fun (f, pos) -> check_entry "fact" pos (Atom.pred f) (Atom.arity f))
    decls.facts;
  let atoms_arities what atoms pos =
    List.iter (fun a -> check_entry what pos (Atom.pred a) (Atom.arity a)) atoms
  in
  List.iter
    (fun ((t : Tgd.t), pos) ->
      atoms_arities "rule" (t.Tgd.body @ t.Tgd.head) pos)
    decls.tgds;
  List.iter
    (fun ((e : Egd.t), pos) -> atoms_arities "EGD" e.Egd.body pos)
    decls.egds;
  List.iter
    (fun ((n : Nc.t), pos) -> atoms_arities "constraint" n.Nc.body pos)
    decls.ncs;
  List.iter
    (fun ((q : Query.t), pos) -> atoms_arities "query" q.Query.body pos)
    decls.queries;
  (* 6. rules and constraints against the MD schema *)
  (match md_schema with
   | None -> ()
   | Some schema ->
     let md_pred p =
       Md_schema.relation schema p <> None
       || Md_schema.category_of_pred schema p <> None
       || Md_schema.parent_child_of_pred schema p <> None
     in
     let md_rules, _ctx_rules =
       List.partition
         (fun ((t : Tgd.t), _) ->
           List.for_all md_pred (Tgd.body_preds t @ Tgd.head_preds t))
         decls.tgds
     in
     List.iter
       (fun ((t : Tgd.t), pos) ->
         match Dim_rule.analyze schema t with
         | Ok _ -> ()
         | Error e ->
           err ?file diags pos "E019" "dimensional rule %s: %s" t.Tgd.name e)
       md_rules;
     List.iter
       (fun ((e : Egd.t), pos) ->
         if not (List.for_all md_pred (List.map Atom.pred e.Egd.body)) then
           err ?file diags pos "E020"
             "EGD %s mentions non-dimensional predicates" e.Egd.name)
       decls.egds;
     List.iter
       (fun ((n : Nc.t), pos) ->
         if not (List.for_all md_pred (List.map Atom.pred n.Nc.body)) then
           err ?file diags pos "E020"
             "constraint %s mentions non-dimensional predicates" n.Nc.name)
       decls.ncs;
     (* unknown predicates in rule and query bodies *)
     let known = Hashtbl.create 64 in
     let know n = Hashtbl.replace known n () in
     List.iter
       (fun (s, _) -> know (R.Rel_schema.name s))
       (decls.relations @ decls.sources @ decls.externals);
     List.iter (fun (_, t, _) -> know t) decls.maps;
     List.iter (fun (_, t, _) -> know t) decls.qualities;
     List.iter
       (fun ((t : Tgd.t), _) -> List.iter know (Tgd.head_preds t))
       decls.tgds;
     List.iter (fun (f, _) -> know (Atom.pred f)) decls.facts;
     let check_known what name preds pos =
       List.iter
         (fun p ->
           if not (md_pred p || Hashtbl.mem known p) then
             err ?file diags pos "E012"
               "%s %s references unknown predicate %s (not a declared \
                relation, a generated category/roll-up predicate, a mapped \
                copy, or the head of any rule)"
               what name p)
         preds
     in
     List.iter
       (fun ((t : Tgd.t), pos) ->
         check_known "rule" t.Tgd.name (Tgd.body_preds t) pos)
       decls.tgds;
     List.iter
       (fun ((q : Query.t), pos) ->
         check_known "query" q.Query.name
           (List.map Atom.pred q.Query.body)
           pos)
       decls.queries);
  (* 7. wiring: map / quality sources must be declared sources *)
  let source_names =
    List.map (fun (s, _) -> R.Rel_schema.name s) decls.sources
  in
  let check_wiring what entries =
    let seen = Hashtbl.create 8 in
    List.iter
      (fun (from, _target, pos) ->
        if not (List.mem from source_names) then
          err ?file diags pos "E021"
            "%s %s -> ... does not refer to a declared source relation" what
            from;
        if Hashtbl.mem seen from then
          err ?file diags pos "E010" "duplicate %s for source %s" what from;
        Hashtbl.replace seen from ())
      entries
  in
  check_wiring "map" decls.maps;
  check_wiring "quality" decls.qualities;
  let head_preds =
    List.concat_map (fun ((t : Tgd.t), _) -> Tgd.head_preds t) decls.tgds
  in
  let body_preds =
    List.concat_map (fun ((t : Tgd.t), _) -> Tgd.body_preds t) decls.tgds
    @ List.concat_map
        (fun ((q : Query.t), _) -> List.map Atom.pred q.Query.body)
        decls.queries
  in
  List.iter
    (fun (from, target, pos) ->
      if not (List.mem target head_preds) then
        warn ?file diags pos "W042"
          "quality version %s of %s is not the head of any rule: it will \
           always be empty"
          target from)
    decls.qualities;
  List.iter
    (fun (from, target, (pos : Lexer.pos)) ->
      if not (List.mem target body_preds) then
        Diag.hintf diags ?file ~line:pos.Lexer.line ~col:pos.Lexer.col
          ~code:"H051"
          "mapped copy %s of %s is never used in a rule or query body" target
          from)
    decls.maps;
  { dim_schemas = !dim_schemas;
    dim_instances = !dim_instances;
    md_schema }

(* --- assembly (validated declarations only) ------------------------- *)

let build (decls : decls) (arts : artifacts) =
  let md_schema =
    match arts.md_schema with
    | Some s -> s
    | None -> invalid_arg "Md_parser.build: unvalidated declarations"
  in
  let dim_instances =
    List.map
      (fun (d : dim_decl) -> Smap.find d.dim_name arts.dim_instances)
      decls.dims
  in
  let relation_named n =
    List.find_opt
      (fun (s, _) -> R.Rel_schema.name s = n)
      decls.relations
  in
  let source_named n =
    List.find_opt (fun (s, _) -> R.Rel_schema.name s = n) decls.sources
  in
  let external_named n =
    List.find_opt (fun (s, _) -> R.Rel_schema.name s = n) decls.externals
  in
  (* Facts. *)
  let data = R.Instance.create () in
  let source = R.Instance.create () in
  let externals = R.Instance.create () in
  List.iter
    (fun (s, _) -> ignore (R.Instance.declare source s))
    decls.sources;
  List.iter
    (fun (s, _) -> ignore (R.Instance.declare externals s))
    decls.externals;
  List.iter
    (fun (f, _) ->
      let p = Atom.pred f in
      match relation_named p, source_named p, external_named p with
      | Some (schema, _), _, _ ->
        ignore (R.Instance.declare data schema);
        ignore (R.Instance.add_tuple data p (Atom.to_tuple f))
      | None, Some _, _ ->
        ignore (R.Instance.add_tuple source p (Atom.to_tuple f))
      | None, None, Some _ ->
        ignore (R.Instance.add_tuple externals p (Atom.to_tuple f))
      | None, None, None ->
        invalid_arg
          (Printf.sprintf "fact over undeclared predicate %s" p))
    decls.facts;
  (* Rules: dimensional when every predicate is an MD predicate. *)
  let md_pred p =
    Md_schema.relation md_schema p <> None
    || Md_schema.category_of_pred md_schema p <> None
    || Md_schema.parent_child_of_pred md_schema p <> None
  in
  let md_rules, ctx_rules =
    List.partition
      (fun (t : Tgd.t) ->
        List.for_all md_pred (Tgd.body_preds t @ Tgd.head_preds t))
      (List.map fst decls.tgds)
  in
  let ontology =
    Md_ontology.make ~schema:md_schema ~dim_instances ~data ~rules:md_rules
      ~egds:(List.map fst decls.egds) ~ncs:(List.map fst decls.ncs) ()
  in
  let context =
    Context.make ~ontology
      ~mappings:
        (List.map
           (fun (s, t, _) -> { Context.source = s; target = t })
           decls.maps)
      ~rules:ctx_rules
      ~externals:(R.Instance.relations externals)
      ~quality_versions:(List.map (fun (f, t, _) -> (f, t)) decls.qualities)
      ()
  in
  { ontology; context; source; queries = List.map fst decls.queries }

(* Post-build advisory analyses: the weak-stickiness certificate and
   the closed-world referential check, as warnings/hints. *)
let advisory ?file diags (decls : decls) (p : parsed) =
  let program = Context.program p.context in
  let statements =
    List.map
      (fun (t, pos) -> { Parser.stmt = Raw.S_tgd t; pos })
      decls.tgds
  in
  Validate.check_certificate ?file diags statements program;
  List.iter
    (fun (v : Md_ontology.referential_violation) ->
      let pos =
        List.find_map
          (fun (f, pos) ->
            if
              String.equal (Atom.pred f) v.Md_ontology.relation
              && R.Tuple.equal (Atom.to_tuple f) v.Md_ontology.tuple
            then Some pos
            else None)
          decls.facts
      in
      let line = Option.map (fun p -> p.Lexer.line) pos in
      let col = Option.map (fun p -> p.Lexer.col) pos in
      Diag.warningf diags ?file ?line ?col ~code:"W045" "%s"
        (Format.asprintf "referential violation: %a" Md_ontology.pp_violation
           v))
    (Md_ontology.referential_violations p.ontology)

let check_string ?file input =
  let diags = Diag.collector ?file () in
  let decls =
    let st = Raw.init ~diags input in
    collect ?file diags st
  in
  let arts = validate ?file diags decls in
  let parsed =
    if Diag.has_errors diags then None
    else
      match build decls arts with
      | p ->
        advisory ?file diags decls p;
        Some p
      | exception Invalid_argument m ->
        (* validation pre-empts every assembly failure; located net *)
        Diag.error diags ?file ~line:1 ~code:"E003" m;
        None
  in
  { parsed; diags = Diag.to_list diags }

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      really_input_string ic n)

let check_file path = check_string ~file:path (read_file path)

let parse_string input =
  let { parsed; diags } = check_string input in
  match parsed with
  | Some p -> p
  | None -> (
    match List.find_opt (fun d -> d.Diag.severity = Diag.Error) diags with
    | Some d ->
      raise
        (Error { line = d.Diag.span.Diag.line; message = d.Diag.message })
    | None ->
      raise (Error { line = 1; message = "invalid context file" }))

let parse_file path = parse_string (read_file path)
