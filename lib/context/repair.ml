open Mdqa_datalog
module R = Mdqa_relational
module Md_ontology = Mdqa_multidim.Md_ontology

type deletion = { relation : string; tuple : R.Tuple.t }

type witness = {
  constraint_name : string;
  deletions : deletion list;
}

let deletion_compare a b =
  let c = String.compare a.relation b.relation in
  if c <> 0 then c else R.Tuple.compare a.tuple b.tuple

let deletion_equal a b = deletion_compare a b = 0

(* Ground instantiations of a constraint body that are deletable. *)
let witness_of ~deletable ~name body subst =
  let deletions =
    List.filter_map
      (fun atom ->
        let ground = Subst.apply_atom subst atom in
        if Atom.is_ground ground && deletable (Atom.pred ground) then
          Some { relation = Atom.pred ground; tuple = Atom.to_tuple ground }
        else None)
      body
    |> List.sort_uniq deletion_compare
  in
  { constraint_name = name; deletions }

let violations (program : Program.t) inst ~deletable =
  let idb = Program.idb_predicates program in
  let derived_in body =
    List.find_opt (fun a -> List.mem (Atom.pred a) idb) body
  in
  let ( let* ) = Result.bind in
  let check_body ~name body collect =
    match derived_in body with
    | Some a ->
      Error
        (Printf.sprintf
           "constraint %s involves derived predicate %s: deletions on the \
            extensional data cannot repair it in general"
           name (Atom.pred a))
    | None -> Ok (collect ())
  in
  let* nc_witnesses =
    List.fold_left
      (fun acc (nc : Nc.t) ->
        let* acc = acc in
        let* ws =
          check_body ~name:nc.Nc.name nc.Nc.body (fun () ->
              List.map
                (witness_of ~deletable ~name:nc.Nc.name nc.Nc.body)
                (Eval.answers ~cmps:nc.Nc.cmps inst nc.Nc.body))
        in
        Ok (ws @ acc))
      (Ok []) program.Program.ncs
  in
  let* egd_witnesses =
    List.fold_left
      (fun acc (egd : Egd.t) ->
        let* acc = acc in
        let* ws =
          check_body ~name:egd.Egd.name egd.Egd.body (fun () ->
              List.filter_map
                (fun s ->
                  match
                    (Subst.apply_term s egd.Egd.lhs,
                     Subst.apply_term s egd.Egd.rhs)
                  with
                  | Term.Const x, Term.Const y
                    when (not (R.Value.equal x y))
                         && R.Value.is_constant x && R.Value.is_constant y ->
                    Some (witness_of ~deletable ~name:egd.Egd.name egd.Egd.body s)
                  | _ -> None)
                (Eval.answers inst egd.Egd.body))
        in
        Ok (ws @ acc))
      (Ok []) program.Program.egds
  in
  let all = nc_witnesses @ egd_witnesses in
  match List.find_opt (fun w -> w.deletions = []) all with
  | Some w ->
    Error
      (Printf.sprintf
         "violation of %s involves no deletable tuple: not repairable"
         w.constraint_name)
  | None ->
    (* drop duplicate witnesses (same deletion options) *)
    let key w = List.map (fun d -> (d.relation, d.tuple)) w.deletions in
    let seen = Hashtbl.create 16 in
    Ok
      (List.filter
         (fun w ->
           let k = key w in
           if Hashtbl.mem seen k then false
           else begin
             Hashtbl.add seen k ();
             true
           end)
         all)

let hits deletion witness = List.exists (deletion_equal deletion) witness.deletions

(* All minimal hitting sets via branching on the first uncovered
   witness; non-minimal candidates are filtered at the end.  The guard
   bounds the branch count (and deadline / memory / cancellation); on a
   trip the hitting sets found so far still yield well-formed, minimal
   repairs. *)
let repairs ?guard ?(max_repairs = 64) witnesses =
  let guard =
    match guard with
    | Some g -> g
    | None -> Guard.create ~max_repair_branches:(max_repairs * 64) ()
  in
  let results = ref [] in
  let rec go chosen remaining =
    let body () = go_body chosen remaining in
    if Mdqa_obs.Trace.active () then
      Mdqa_obs.Trace.with_span "repair.branch"
        ~attrs:[ ("chosen", string_of_int (List.length chosen)) ]
        body
    else body ()
  and go_body chosen remaining =
    Guard.count_repair_branch guard;
    match remaining with
    | [] -> results := List.rev chosen :: !results
    | w :: _ ->
      List.iter
        (fun d ->
          if not (List.exists (deletion_equal d) chosen) then
            let remaining' =
              List.filter (fun w' -> not (hits d w')) remaining
            in
            go (d :: chosen) remaining')
        w.deletions
  in
  let finish () =
    let as_sorted r = List.sort_uniq deletion_compare r in
    let candidates =
      List.sort_uniq compare (List.map as_sorted !results)
    in
    let subset a b =
      List.for_all (fun d -> List.exists (deletion_equal d) b) a
    in
    let minimal =
      List.filter
        (fun r ->
          not
            (List.exists
               (fun r' -> r' <> r && subset r' r)
               candidates))
        candidates
    in
    let rec take n = function
      | [] -> []
      | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest
    in
    take max_repairs minimal
  in
  match go [] witnesses with
  | () -> Guard.Complete (finish ())
  | exception Guard.Exhausted e -> Guard.Degraded (finish (), e)

let greedy_repair witnesses =
  let rec go acc remaining =
    match remaining with
    | [] -> List.rev acc
    | _ ->
      (* pick the deletion hitting the most remaining witnesses *)
      let best = ref None in
      List.iter
        (fun w ->
          List.iter
            (fun d ->
              let count =
                List.length (List.filter (hits d) remaining)
              in
              match !best with
              | Some (_, c) when c >= count -> ()
              | _ -> best := Some (d, count))
            w.deletions)
        remaining;
      (match !best with
       | None -> List.rev acc
       | Some (d, _) ->
         go (d :: acc) (List.filter (fun w -> not (hits d w)) remaining))
  in
  go [] witnesses

let apply inst deletions =
  let out = R.Instance.copy inst in
  List.iter
    (fun d ->
      match R.Instance.find out d.relation with
      | Some rel -> ignore (R.Relation.remove rel d.tuple)
      | None -> ())
    deletions;
  out

(* The deletable predicates of a context: the ontology's categorical
   relation data and the mapped copies — never dimension facts or
   external sources. *)
let context_deletable (ctx : Context.t) =
  let data_preds =
    List.map R.Relation.name
      (R.Instance.relations ctx.Context.ontology.Md_ontology.data)
  in
  let mapped = List.map (fun m -> m.Context.target) ctx.Context.mappings in
  fun pred -> List.mem pred data_preds || List.mem pred mapped

let assess_repaired ?guard ?max_steps ?max_nulls ctx ~source =
  let prepared = Context.prepare ctx ~source in
  let program = Context.program ctx in
  match violations program prepared ~deletable:(context_deletable ctx) with
  | Error _ as e -> e
  | Ok [] ->
    Ok
      ( Context.assess_prepared ?guard ?max_steps ?max_nulls ctx ~source
          ~prepared,
        [] )
  | Ok witnesses ->
    let fix = greedy_repair witnesses in
    let repaired = apply prepared fix in
    Ok
      ( Context.assess_prepared ?guard ?max_steps ?max_nulls ctx ~source
          ~prepared:repaired,
        fix )

let cautious_answers ?guard ?max_repairs ?max_steps ?max_nulls ctx ~source q =
  let prepared = Context.prepare ctx ~source in
  let program = Context.program ctx in
  match violations program prepared ~deletable:(context_deletable ctx) with
  | Error e -> Error e
  | Ok witnesses ->
    let repair_sets =
      match witnesses with
      | [] -> Guard.Complete [ [] ]
      | _ -> repairs ?guard ?max_repairs witnesses
    in
    (* the same guard governs every per-repair assessment, so the
       budget is global to the whole cautious-answering run; a chase
       trip surfaces through the assessment outcome, never an
       exception *)
    let degraded = ref (Guard.degraded repair_sets) in
    let note_degraded a =
      match (!degraded, Context.degradation a) with
      | None, Some e -> degraded := Some e
      | _ -> ()
    in
    let answer_sets =
      List.map
        (fun dels ->
          let a =
            Context.assess_prepared ?guard ?max_steps ?max_nulls ctx ~source
              ~prepared:(apply prepared dels)
          in
          note_degraded a;
          match Context.clean_answers ~partial:true a q with
          | Some answers -> R.Tuple.Set.of_list answers
          | None -> R.Tuple.Set.empty)
        (Guard.value repair_sets)
    in
    let inter =
      match answer_sets with
      | [] -> []
      | first :: rest ->
        R.Tuple.Set.elements (List.fold_left R.Tuple.Set.inter first rest)
    in
    Ok
      (match !degraded with
       | None -> Guard.Complete inter
       | Some e -> Guard.Degraded (inter, e))

let pp_deletion ppf d =
  Format.fprintf ppf "%s%a" d.relation R.Tuple.pp d.tuple
