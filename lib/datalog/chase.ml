let log_src = Logs.Src.create "mdqa.chase" ~doc:"Datalog± chase engine"

module Log = (val Logs.src_log log_src)

module Instance = Mdqa_relational.Instance
module Relation = Mdqa_relational.Relation
module Tuple = Mdqa_relational.Tuple
module Value = Mdqa_relational.Value
module Metrics = Mdqa_obs.Metrics
module Trace = Mdqa_obs.Trace
module Profile = Mdqa_obs.Profile

type variant = Restricted | Oblivious

type failure =
  | Egd_clash of { egd : Egd.t; left : Value.t; right : Value.t }
  | Nc_violation of { nc : Nc.t; witness : Subst.t }

type outcome =
  | Saturated
  | Out_of_budget of Guard.exhaustion
  | Failed of failure

type stats = {
  rounds : int;
  tgd_fires : int;
  triggers_checked : int;
  nulls_created : int;
  egd_merges : int;
}

type derivation = {
  rule : string;
  premises : (string * Tuple.t) list;
}

type result = {
  instance : Instance.t;
  outcome : outcome;
  stats : stats;
  provenance : ((string * Tuple.t), derivation) Hashtbl.t option;
}

type checkpoint = {
  on_start : Instance.t -> unit;
  on_fact : string -> Tuple.t -> unit;
  on_merge : from_:Value.t -> into:Value.t -> unit;
  on_round :
    instance:Instance.t ->
    frontier:(string * Tuple.t list) list option ->
    stats ->
    unit;
  on_done : instance:Instance.t -> outcome -> stats -> unit;
}

let zero_stats =
  { rounds = 0;
    tgd_fires = 0;
    triggers_checked = 0;
    nulls_created = 0;
    egd_merges = 0 }

exception Stop of outcome

(* Largest null label in the instance, so fresh nulls never collide. *)
let max_null_id inst =
  let m = ref 0 in
  Instance.iter_facts
    (fun _ t ->
      List.iter
        (function Value.Null k -> m := max !m k | _ -> ())
        (Tuple.to_list t))
    inst;
  !m

(* A trigger identity for the oblivious chase: rule name plus the image
   of its body under the match. *)
let trigger_key (tgd : Tgd.t) subst =
  ( tgd.Tgd.name,
    List.map
      (fun a -> Atom.to_tuple (Subst.apply_atom subst a))
      tgd.Tgd.body )

let run_internal ?(variant = Restricted) ?(semi_naive = true)
    ?(provenance = false) ?resume_delta ?prior_provenance ?guard ?max_steps
    ?max_nulls ?checkpoint ?null_base ?prior_stats ?metrics program start =
  let guard =
    match guard with
    | Some g -> g
    | None ->
      Guard.create
        ~max_steps:(Option.value ~default:1_000_000 max_steps)
        ~max_nulls:(Option.value ~default:100_000 max_nulls)
        ()
  in
  let inst = Instance.copy start in
  Program.declare_predicates program inst;
  List.iter
    (fun f -> ignore (Instance.add_tuple inst (Atom.pred f) (Atom.to_tuple f)))
    program.Program.facts;
  (* Fresh nulls must dodge both the nulls visible in the instance and
     (on resume) every null the prior run ever invented — a persisted
     [null_base] covers nulls that were merged away. *)
  let fresh =
    Value.Fresh.create
      ~start:(max (max_null_id inst + 1) (Option.value ~default:0 null_base))
      ()
  in
  let prior = Option.value ~default:zero_stats prior_stats in
  let ck f = match checkpoint with Some c -> f c | None -> () in
  let prov : ((string * Tuple.t), derivation) Hashtbl.t option =
    match prior_provenance with
    | Some tbl -> Some (Hashtbl.copy tbl)
    | None -> if provenance then Some (Hashtbl.create 256) else None
  in
  let fired : (string * Tuple.t list, unit) Hashtbl.t = Hashtbl.create 256 in
  (* All chase accounting lives in the metrics registry; [stats] is
     derived from per-run baselines so a shared (service-lifetime)
     registry still yields correct per-run numbers. *)
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  let c_rounds =
    Metrics.counter metrics ~help:"chase rounds completed"
      "mdqa_chase_rounds_total"
  and c_triggers =
    Metrics.counter metrics ~help:"chase triggers checked"
      "mdqa_chase_triggers_total"
  and c_fires =
    Metrics.counter metrics ~help:"TGD firings that derived a new fact"
      "mdqa_chase_tgd_fires_total"
  and c_nulls =
    Metrics.counter metrics ~help:"labelled nulls minted"
      "mdqa_chase_nulls_total"
  and c_merges =
    Metrics.counter metrics ~help:"EGD null merges applied"
      "mdqa_chase_egd_merges_total"
  and c_facts =
    Metrics.counter metrics ~help:"facts derived by TGD heads"
      "mdqa_chase_facts_total"
  in
  let rule_fire_counter =
    let cache = Hashtbl.create 16 in
    fun rule ->
      match Hashtbl.find_opt cache rule with
      | Some c -> c
      | None ->
        let c =
          Metrics.counter metrics ~help:"TGD firings per rule"
            ~labels:[ ("rule", rule) ] "mdqa_chase_rule_fires_total"
        in
        Hashtbl.add cache rule c;
        c
  in
  let base_rounds = Metrics.counter_value c_rounds
  and base_triggers = Metrics.counter_value c_triggers
  and base_fires = Metrics.counter_value c_fires
  and base_merges = Metrics.counter_value c_merges in
  (* Cost attribution: resolve the per-rule accumulator once per rule
     so the trigger loop pays field writes, not lookups.  [prof] is
     sampled once per run — installing a profiler mid-chase attributes
     from the next run on. *)
  let prof = Profile.installed () in
  let prof_rule =
    match prof with
    | None -> fun _ -> None
    | Some p -> fun name -> Some (Profile.rule p name)
  in
  (* Delta of the previous round, per predicate. *)
  let delta : (string, Tuple.Set.t) Hashtbl.t = Hashtbl.create 16 in
  let delta_mem pred t =
    match Hashtbl.find_opt delta pred with
    | Some s -> Tuple.Set.mem t s
    | None -> false
  in
  let delta_tuples pred =
    match Hashtbl.find_opt delta pred with
    | Some s -> Tuple.Set.elements s
    | None -> []
  in
  (* Instantiate the head of [tgd] under [subst], inventing fresh nulls
     for existential variables; returns the ground head atoms. *)
  let instantiate_head (tgd : Tgd.t) subst =
    let subst =
      Term.Var_set.fold
        (fun v s ->
          Guard.count_null guard;
          Metrics.inc c_nulls;
          Subst.bind_exn s v (Term.Const (Value.Fresh.next fresh)))
        (Tgd.existential_vars tgd) subst
    in
    List.map (Subst.apply_atom subst) tgd.Tgd.head
  in

  (* Restricted-chase applicability: is there an extension of the match
     sending every head atom into the instance? *)
  let head_satisfied (tgd : Tgd.t) subst =
    Eval.exists ~guard inst (List.map (Subst.apply_atom subst) tgd.Tgd.head)
  in

  let fire_trigger added prof_h (tgd : Tgd.t) subst =
    Metrics.inc c_triggers;
    Guard.count_step guard;
    (match prof_h with Some h -> Profile.add_trigger h | None -> ());
    let proceed =
      match variant with
      | Restricted -> not (head_satisfied tgd subst)
      | Oblivious ->
        let key = trigger_key tgd subst in
        if Hashtbl.mem fired key then false
        else begin
          Hashtbl.add fired key ();
          true
        end
    in
    if proceed then begin
      let do_fire () =
        let head = instantiate_head tgd subst in
        let new_fact = ref false in
        let premises =
          lazy
            (List.map
               (fun a ->
                 let ga = Subst.apply_atom subst a in
                 (Atom.pred ga, Atom.to_tuple ga))
               tgd.Tgd.body)
        in
        List.iter
          (fun a ->
            let t = Atom.to_tuple a in
            if Instance.add_tuple inst (Atom.pred a) t then begin
              new_fact := true;
              Metrics.inc c_facts;
              ck (fun c -> c.on_fact (Atom.pred a) t);
              (match prov with
               | Some tbl ->
                 if not (Hashtbl.mem tbl (Atom.pred a, t)) then
                   Hashtbl.replace tbl (Atom.pred a, t)
                     { rule = tgd.Tgd.name; premises = Lazy.force premises }
               | None -> ());
              let prev =
                Option.value ~default:Tuple.Set.empty
                  (Hashtbl.find_opt added (Atom.pred a))
              in
              Hashtbl.replace added (Atom.pred a) (Tuple.Set.add t prev)
            end)
          head;
        if !new_fact then begin
          Metrics.inc c_fires;
          Metrics.inc (rule_fire_counter tgd.Tgd.name);
          match prof_h with Some h -> Profile.add_fire h | None -> ()
        end
      in
      if Trace.active () then
        Trace.with_span "rule.fire"
          ~attrs:[ ("rule", tgd.Tgd.name) ]
          do_fire
      else do_fire ()
    end
  in

  (* Enforce EGDs to fixpoint.  Returns true if any value was merged
     (in which case semi-naive deltas are no longer valid). *)
  let rec apply_egds merged =
    let violation =
      List.find_map
        (fun (egd : Egd.t) ->
          List.find_map
            (fun s ->
              let a = Subst.apply_term s egd.Egd.lhs
              and b = Subst.apply_term s egd.Egd.rhs in
              match a, b with
              | Term.Const x, Term.Const y when not (Value.equal x y) ->
                Some (egd, x, y)
              | _ -> None)
            (Eval.answers ~guard inst egd.Egd.body))
        program.Program.egds
    in
    match violation with
    | None -> merged
    | Some (egd, x, y) ->
      let replace_work ~from ~into =
        Instance.map_values inst (fun v ->
            if Value.equal v from then into else v);
        ck (fun c -> c.on_merge ~from_:from ~into);
        (* keep recorded provenance keyed by the merged facts *)
        match prov with
        | None -> ()
        | Some tbl ->
          let remap_tuple t =
            Tuple.map (fun v -> if Value.equal v from then into else v) t
          in
          let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
          Hashtbl.reset tbl;
          List.iter
            (fun ((pred, t), d) ->
              Hashtbl.replace tbl
                (pred, remap_tuple t)
                { d with
                  premises =
                    List.map
                      (fun (p', t') -> (p', remap_tuple t'))
                      d.premises })
            entries
      in
      let replace ~from ~into =
        if Trace.active () then
          Trace.with_span "egd.merge"
            ~attrs:[ ("egd", egd.Egd.name) ]
            (fun () -> replace_work ~from ~into)
        else replace_work ~from ~into
      in
      (match Value.is_null x, Value.is_null y with
       | true, _ -> replace ~from:x ~into:y
       | false, true -> replace ~from:y ~into:x
       | false, false ->
         raise (Stop (Failed (Egd_clash { egd; left = x; right = y }))));
      Metrics.inc c_merges;
      Log.debug (fun m ->
          m "EGD %s merged %a into %a" egd.Egd.name Value.pp x Value.pp y);
      apply_egds true
  in

  let check_ncs () =
    List.iter
      (fun (nc : Nc.t) ->
        match Eval.first ~guard ~cmps:nc.Nc.cmps inst nc.Nc.body with
        | Some witness ->
          Log.info (fun m ->
              m "constraint %s violated under %a" nc.Nc.name Subst.pp witness);
          raise (Stop (Failed (Nc_violation { nc; witness })))
        | None -> ())
      program.Program.ncs
  in

  let current_stats () =
    { rounds = prior.rounds + (Metrics.counter_value c_rounds - base_rounds);
      tgd_fires = prior.tgd_fires + (Metrics.counter_value c_fires - base_fires);
      triggers_checked =
        prior.triggers_checked
        + (Metrics.counter_value c_triggers - base_triggers);
      nulls_created = prior.nulls_created + Value.Fresh.count fresh;
      egd_merges =
        prior.egd_merges + (Metrics.counter_value c_merges - base_merges) }
  in
  let outcome =
    Profile.with_phase "chase" @@ fun () ->
    try
      (* The durable base image: everything below is journaled as a
         delta against the instance at this point. *)
      ck (fun c -> c.on_start inst);
      (* EGDs and NCs must hold of the extensional data too. *)
      let merged0 = apply_egds false in
      if merged0 then Hashtbl.reset delta;
      check_ncs ();
      let continue = ref true in
      let first_round = ref true in
      (* Incremental mode: seed the delta with the resumed facts and
         start semi-naive immediately.  An initial EGD merge rewrites
         values the seeded tuples may still mention, so it invalidates
         the frontier: fall back to a full first round. *)
      (match resume_delta with
       | Some new_facts when semi_naive && not merged0 ->
         List.iter
           (fun (pred, t) ->
             if Instance.add_tuple inst pred t then
               ck (fun c -> c.on_fact pred t);
             let prev =
               Option.value ~default:Tuple.Set.empty
                 (Hashtbl.find_opt delta pred)
             in
             Hashtbl.replace delta pred (Tuple.Set.add t prev))
           new_facts;
         first_round := false
       | Some new_facts ->
         List.iter
           (fun (pred, t) ->
             if Instance.add_tuple inst pred t then
               ck (fun c -> c.on_fact pred t))
           new_facts
       | None -> ());
      while !continue do
        Mdqa_obs.Failpoint.hit "chase.round";
        Metrics.inc c_rounds;
        let round_no = Metrics.counter_value c_rounds - base_rounds in
        Log.debug (fun m ->
            m "round %d (%d facts so far)" round_no
              (Instance.total_tuples inst));
        Trace.with_span "chase.round"
          ~attrs:[ ("round", string_of_int round_no) ]
        @@ fun () ->
        Profile.with_round round_no
        @@ fun () ->
        let added : (string, Tuple.Set.t) Hashtbl.t = Hashtbl.create 16 in
        List.iter
          (fun (tgd : Tgd.t) ->
            let ph = prof_rule tgd.Tgd.name in
            let t0 = match prof with Some p -> Profile.now p | None -> 0. in
            let enumerate () =
              if semi_naive && not !first_round then
                Eval.delta_answers ~guard inst ~delta:delta_mem ~delta_tuples
                  tgd.Tgd.body
              else Eval.answers ~guard inst tgd.Tgd.body
            in
            (* Atom-level scan/match statistics attribute to this rule
               only during its own body enumeration — applicability
               probes and EGD checks stay out of the tables. *)
            let triggers =
              match prof with
              | Some p -> Profile.with_scope p tgd.Tgd.name enumerate
              | None -> enumerate ()
            in
            (match ph with
             | Some h -> Profile.add_matches h (List.length triggers)
             | None -> ());
            (* For the restricted chase, matches differing only on
               head-irrelevant body variables are the same trigger;
               dedup on the frontier to avoid redundant head checks.
               The oblivious chase fires per full body match. *)
            let key_vars =
              match variant with
              | Restricted -> Tgd.frontier tgd
              | Oblivious -> Tgd.body_vars tgd
            in
            let seen = Hashtbl.create 16 in
            List.iter
              (fun s ->
                let key =
                  List.filter_map
                    (fun v -> Subst.value_of s v)
                    (Term.Var_set.elements key_vars)
                in
                if not (Hashtbl.mem seen key) then begin
                  Hashtbl.add seen key ();
                  fire_trigger added ph tgd s
                end)
              triggers;
            match prof, ph with
            | Some p, Some h ->
              Profile.add_rule_seconds h (Profile.now p -. t0)
            | _ -> ())
          program.Program.tgds;
        let merged = apply_egds false in
        check_ncs ();
        let grew = Hashtbl.length added > 0 in
        if merged then begin
          (* Null merges invalidate deltas: fall back to full
             enumeration next round. *)
          Hashtbl.reset delta;
          first_round := true;
          continue := true
        end
        else begin
          Hashtbl.reset delta;
          Hashtbl.iter (fun k v -> Hashtbl.replace delta k v) added;
          first_round := false;
          continue := grew
        end;
        (* Round boundary: a durable point.  The frontier is the delta
           just installed; [None] after a merge, which invalidated it. *)
        ck (fun c ->
            let frontier =
              if merged then None
              else
                Some
                  (Hashtbl.fold
                     (fun pred s acc -> (pred, Tuple.Set.elements s) :: acc)
                     delta []
                  |> List.sort (fun (a, _) (b, _) -> String.compare a b))
            in
            c.on_round ~instance:inst ~frontier (current_stats ()))
      done;
      Saturated
    with
    | Stop o -> o
    | Guard.Exhausted e -> Out_of_budget e
  in
  let stats = current_stats () in
  ck (fun c -> c.on_done ~instance:inst outcome stats);
  { instance = inst; outcome; provenance = prov; stats }

let run ?variant ?semi_naive ?provenance ?guard ?max_steps ?max_nulls
    ?checkpoint ?metrics program start =
  run_internal ?variant ?semi_naive ?provenance ?guard ?max_steps ?max_nulls
    ?checkpoint ?metrics program start

let resume ?variant ?semi_naive ?guard ?max_steps ?max_nulls ?checkpoint
    ?frontier ?null_base ?prior_stats ?metrics program image =
  (* An empty frontier would make the seeded semi-naive loop terminate
     immediately whatever the image contains; a full first round is the
     safe (and cheap, if truly saturated) interpretation. *)
  let resume_delta =
    match frontier with Some (_ :: _ as l) -> Some l | _ -> None
  in
  run_internal ?variant ?semi_naive ?guard ?max_steps ?max_nulls ?checkpoint
    ?resume_delta ?null_base ?prior_stats ?metrics program image

let extend ?guard ?max_steps ?max_nulls ?metrics program (prior : result)
    ~facts =
  match prior.outcome with
  | Saturated ->
    run_internal ~resume_delta:facts ?prior_provenance:prior.provenance
      ?guard ?max_steps ?max_nulls ?metrics program prior.instance
  | _ ->
    let inst = Instance.copy prior.instance in
    List.iter (fun (pred, t) -> ignore (Instance.add_tuple inst pred t)) facts;
    run_internal ?guard ?max_steps ?max_nulls ?metrics
      ~provenance:(prior.provenance <> None)
      program inst

let pp_outcome ppf = function
  | Saturated -> Format.pp_print_string ppf "saturated"
  | Out_of_budget e ->
    Format.fprintf ppf "out of budget: %a" Guard.pp_exhaustion e
  | Failed (Egd_clash { egd; left; right }) ->
    Format.fprintf ppf "failed: EGD %s equates distinct constants %a and %a"
      egd.Egd.name Value.pp left Value.pp right
  | Failed (Nc_violation { nc; witness }) ->
    Format.fprintf ppf "failed: constraint %s violated under %a" nc.Nc.name
      Subst.pp witness
