(** The sticky-marking procedure of Calì–Gottlob–Pieris and the
    stickiness / weak-stickiness tests built on it.

    Marking works on variable occurrences in TGD bodies:
    - {e base step}: in each TGD, mark every occurrence of each body
      variable that does not appear in the head;
    - {e propagation}: if a variable [x] appears in the head of a TGD
      at a position that is marked somewhere (i.e. some marked body
      occurrence of any TGD sits at that position), mark every body
      occurrence of [x] in that TGD; repeat to fixpoint.

    A program is {e sticky} if no marked variable occurs more than once
    in a body.  A program is {e weakly sticky} if every variable that
    occurs more than once in a body is either unmarked or occurs at
    least once at a position of finite rank (∏_F). *)

type occurrence = {
  tgd : Tgd.t;
  atom_index : int;  (** index in the body *)
  arg_index : int;
  var : string;
}

type marking

val mark : Program.t -> marking

val marked_occurrences : marking -> occurrence list

val marked_positions : marking -> (string * int) list
(** Positions carrying at least one marked body occurrence. *)

val is_marked : marking -> Tgd.t -> string -> bool
(** Is the variable marked in that TGD's body? *)

val is_sticky : Program.t -> bool

val is_weakly_sticky : Program.t -> bool

val weak_stickiness_violations : Program.t -> (Tgd.t * string) list
(** Pairs (rule, variable) witnessing non-weak-stickiness: marked
    variables with ≥ 2 body occurrences, none at a finite-rank
    position. *)

(** {1 The weak-stickiness certificate}

    The paper's quality-assessment algorithms are justified by class
    membership: FO rewriting needs a rule set whose unfolding
    terminates; the deterministic top-down search (DeterministicWSQAns)
    needs weak stickiness for its PTIME guarantee; anything else must
    fall back to the budget-governed chase.  {!certify} bundles the
    tests into one report consumed by the semantic validator
    ([mdqa check]). *)

type qa_path =
  | Fo_rewriting  (** {!Program.predicate_graph_acyclic} holds *)
  | Deterministic_ws  (** weakly sticky but not unfolding-rewritable *)
  | Chase_only  (** outside WS: only the governed chase applies *)

type certificate = {
  sticky : bool;
  weakly_sticky : bool;
  rewritable : bool;  (** acyclic predicate graph *)
  violations : (Tgd.t * string) list;
      (** weak-stickiness witnesses, as in
          {!weak_stickiness_violations} *)
  path : qa_path;  (** the strongest justified answering path *)
}

val certify : Program.t -> certificate

val pp_qa_path : Format.formatter -> qa_path -> unit
