(** First-order (UCQ) rewriting of conjunctive queries, for the
    "upward-only" ontologies of §IV of the paper.

    The query is repeatedly {e unfolded}: an atom is resolved against a
    TGD head (renamed apart) and replaced by the TGD body.  Every
    intermediate query is kept in the output union, because a predicate
    may carry extensional facts as well as derived ones.  The resulting
    UCQ is evaluated directly on the extensional database — no chase.

    Unfolding an atom against a head with existential variables is only
    {e applicable} when each existential position meets an unshared,
    non-answer variable of the query (the standard single-piece
    condition); otherwise that unfolding is skipped.

    Termination: when the program's predicate graph is acyclic —
    syntactically guaranteed for upward-only multidimensional
    ontologies, where rules only move data to strictly higher category
    levels — unfolding terminates.  A {!Guard.t} (CQ budget, deadline,
    memory, cancellation) bounds cyclic or explosive inputs: the
    rewriting degrades to the disjuncts produced so far instead of
    diverging. *)

type rewriting = {
  ucq : Query.t list;  (** the union of conjunctive queries *)
  expansions : int;  (** unfolding steps performed *)
  pruned : int;  (** disjuncts removed by containment pruning *)
}

val rewritable : Program.t -> bool
(** Sufficient syntactic test: the predicate graph is acyclic. *)

val rewrite :
  ?guard:Guard.t -> ?max_cqs:int -> ?prune:bool -> Program.t -> Query.t ->
  rewriting Guard.outcome
(** Without a [guard], one is created with [max_cqs] (default 10_000)
    as its CQ budget.  With [prune] (the default), disjuncts contained
    in another disjunct are removed via {!Containment} before
    evaluation.  [Degraded] carries the (pruned) disjuncts produced
    before the budget ran out — each one a sound member of the union. *)

val answers :
  ?guard:Guard.t ->
  ?max_cqs:int ->
  ?prune:bool ->
  Program.t ->
  Mdqa_relational.Instance.t ->
  Query.t ->
  Mdqa_relational.Tuple.t list Guard.outcome
(** Rewrite, then evaluate each disjunct on the extensional instance;
    null-free answers only, sorted and deduplicated.  [Degraded]
    answers are a sound under-approximation (the disjuncts evaluated
    so far). *)

val pp_rewriting : Format.formatter -> rewriting -> unit
