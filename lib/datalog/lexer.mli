(** Hand-rolled lexer for the Datalog± surface syntax.

    Lexical classes:
    - variables: identifiers starting with an uppercase letter or [_];
    - symbols: identifiers starting with a lowercase letter (may
      contain letters, digits, [_], [-], [/], [:], [.] after the first
      character when not terminating the clause), or double-quoted
      strings;
    - numbers: integer and float literals;
    - punctuation: [( ) , . ! ? :- { } -> :] and comparison
      operators [= != < <= > >=];
    - comments: from [%] or [#] to end of line. *)

type token =
  | IDENT of string  (** lowercase-initial identifier *)
  | VAR of string  (** uppercase-initial identifier or [_...] *)
  | STRING of string
  | INT of int
  | FLOAT of float
  | LPAREN
  | RPAREN
  | COMMA
  | PERIOD
  | TURNSTILE  (** [:-] *)
  | BANG  (** [!] *)
  | QMARK  (** [?] *)
  | LBRACE  (** [{] *)
  | RBRACE  (** [}] *)
  | ARROW  (** [->] *)
  | COLON  (** [:] not followed by [-] *)
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | EOF

type pos = { line : int; col : int }  (** both 1-based *)

exception Error of { line : int; col : int; message : string }

val tokens_pos : ?diags:Diag.collector -> string -> (token * pos) list
(** Tokenize a whole input; each token is paired with the position of
    its first character.  With [diags], lexical errors (unrecognized
    characters, unterminated strings) are recorded as [E001]
    diagnostics and skipped, so one pass reports them all; without it
    the first one raises {!Error}. *)

val tokens : string -> (token * int) list
(** Tokenize a whole input; each token is paired with its line number.
    @raise Error on an unrecognized character or unterminated string. *)

val token_to_string : token -> string
