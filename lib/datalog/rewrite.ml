module Tuple = Mdqa_relational.Tuple

type rewriting = {
  ucq : Query.t list;
  expansions : int;
  pruned : int;
}

let rewritable = Program.predicate_graph_acyclic

(* A canonical key for a CQ: variables renamed in first-occurrence
   order over head, body and comparisons.  Two alpha-equivalent CQs
   with the same atom order map to the same key. *)
let canonical_key (head : Term.t list) (body : Atom.t list)
    (cmps : Atom.Cmp.t list) =
  let mapping = Hashtbl.create 16 in
  let counter = ref 0 in
  let rename t =
    match t with
    | Term.Const _ -> t
    | Term.Var v -> (
      match Hashtbl.find_opt mapping v with
      | Some v' -> Term.Var v'
      | None ->
        incr counter;
        let v' = Printf.sprintf "X%d" !counter in
        Hashtbl.add mapping v v';
        Term.Var v')
  in
  let head' = List.map rename head in
  let body' =
    List.map (fun a -> Atom.make (Atom.pred a) (List.map rename (Atom.args a)))
      body
  in
  let cmps' =
    List.map
      (fun (c : Atom.Cmp.t) ->
        Atom.Cmp.make c.Atom.Cmp.op (rename c.Atom.Cmp.lhs)
          (rename c.Atom.Cmp.rhs))
      cmps
  in
  Format.asprintf "%a|%a|%a"
    (Format.pp_print_list Term.pp)
    head'
    (Format.pp_print_list Atom.pp)
    body'
    (Format.pp_print_list Atom.Cmp.pp)
    cmps'

(* Count variable occurrences over body atoms and head terms. *)
let occurrence_counts head body =
  let counts = Hashtbl.create 16 in
  let bump = function
    | Term.Var v ->
      Hashtbl.replace counts v
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
    | Term.Const _ -> ()
  in
  List.iter bump head;
  List.iter (fun a -> List.iter bump (Atom.args a)) body;
  counts

(* Unfolding applicability: each existential position of the head must
   meet an unshared non-answer variable of the query. *)
let applicable ~ex_vars ~counts (goal : Atom.t) (head_atom : Atom.t) =
  List.for_all2
    (fun g h ->
      match h with
      | Term.Var v when Term.Var_set.mem v ex_vars -> (
        match g with
        | Term.Var gv ->
          Option.value ~default:0 (Hashtbl.find_opt counts gv) = 1
        | Term.Const _ -> false)
      | _ -> true)
    (Atom.args goal) (Atom.args head_atom)

let rewrite ?guard ?(max_cqs = 10_000) ?(prune = true) (program : Program.t)
    (q : Query.t) =
  let guard =
    match guard with Some g -> g | None -> Guard.create ~max_cqs ()
  in
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  let expansions = ref 0 in
  let counter = ref 0 in
  let rec add (head, body, cmps) =
    let key = canonical_key head body cmps in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      Guard.count_cq guard;
      out := (head, body, cmps) :: !out;
      expand (head, body, cmps)
    end
  and expand (head, body, cmps) =
    let counts = occurrence_counts head body in
    List.iteri
      (fun i goal ->
        List.iter
          (fun tgd ->
            incr counter;
            Guard.tick guard;
            let tgd' =
              Tgd.rename ~suffix:(Printf.sprintf "~%d" !counter) tgd
            in
            let ex_vars = Tgd.existential_vars tgd' in
            List.iter
              (fun h ->
                if
                  String.equal (Atom.pred h) (Atom.pred goal)
                  && Atom.arity h = Atom.arity goal
                  && applicable ~ex_vars ~counts goal h
                then
                  match Unify.unify goal h with
                  | None -> ()
                  | Some s ->
                    incr expansions;
                    let body' =
                      List.filteri (fun j _ -> j <> i) body
                      |> List.map (Subst.apply_atom s)
                    in
                    let new_atoms = Subst.apply_atoms s tgd'.Tgd.body in
                    let head' = List.map (Subst.apply_term s) head in
                    let cmps' = List.map (Subst.apply_cmp s) cmps in
                    add (head', new_atoms @ body', cmps'))
              tgd'.Tgd.head)
          (Program.tgds_with_head program (Atom.pred goal)))
      body
  in
  let finish () =
    let ucq =
      List.rev_map
        (fun (head, body, cmps) ->
          Query.make ~name:q.Query.name ~cmps ~head body)
        !out
      |> List.rev
    in
    let kept = if prune then Containment.prune_ucq ucq else ucq in
    { ucq = kept;
      expansions = !expansions;
      pruned = List.length ucq - List.length kept }
  in
  Mdqa_obs.Trace.with_span "rewrite"
    ~attrs:[ ("query", q.Query.name) ]
  @@ fun () ->
  match add (q.Query.head, q.Query.body, q.Query.cmps) with
  | () -> Guard.Complete (finish ())
  | exception Guard.Exhausted e -> Guard.Degraded (finish (), e)

let answers ?guard ?max_cqs ?prune program inst q =
  let eval ucq =
    let all = ref Tuple.Set.empty in
    let add_cq cq =
      List.iter
        (fun t -> all := Tuple.Set.add t !all)
        (Query.certain ?guard inst cq)
    in
    match List.iter add_cq ucq with
    | () -> Guard.Complete (Tuple.Set.elements !all)
    | exception Guard.Exhausted e ->
      Guard.Degraded (Tuple.Set.elements !all, e)
  in
  match rewrite ?guard ?max_cqs ?prune program q with
  | Guard.Complete { ucq; _ } -> eval ucq
  | Guard.Degraded ({ ucq; _ }, e) ->
    (* evaluate the partial UCQ unguarded: the guard already tripped,
       and each disjunct is a plain CQ over the extensional data *)
    Guard.Degraded (Tuple.Set.elements (
      List.fold_left
        (fun acc cq ->
          List.fold_left
            (fun acc t -> Tuple.Set.add t acc)
            acc (Query.certain inst cq))
        Tuple.Set.empty ucq), e)

let pp_rewriting ppf r =
  Format.fprintf ppf "@[<v>UCQ with %d disjuncts (%d expansions, %d pruned):"
    (List.length r.ucq) r.expansions r.pruned;
  List.iter (fun cq -> Format.fprintf ppf "@,  %a" Query.pp cq) r.ucq;
  Format.fprintf ppf "@]"
