(** Located, severity-tagged diagnostics with multi-error accumulation.

    The front door of the pipeline (lexing, parsing, declaration
    assembly, semantic validation, CSV loading) reports problems as
    {!t} values pushed into a {!collector} instead of aborting on the
    first [failwith].  One run of [mdqa check] therefore surfaces
    {e every} problem in an input, each with a stable code and a real
    source location.

    Severity conventions:
    - [Error]: the input is ill-formed; the engine must not run on it.
    - [Warning]: the input is accepted but falls outside a guarantee
      (e.g. a non-strict hierarchy, a program outside weakly-sticky
      Datalog±) — results may be partial or intractable.
    - [Hint]: advisory only (e.g. which QA algorithm is justified).

    Stable codes (see {!describe}):
    - [E001] lexical-error, [E002] syntax-error, [E003]
      invalid-statement;
    - [E010] duplicate-declaration, [E011] arity-mismatch, [E012]
      unknown-predicate, [E013] undeclared-fact-predicate;
    - [E014] invalid-dimension, [E015] unknown-category, [E016]
      duplicate-member, [E017] invalid-link, [E018] invalid-relation;
    - [E019] invalid-rule, [E020] non-dimensional-constraint, [E021]
      dangling-wiring, [E022] csv-error, [E023] store-corrupt;
    - [E024] invalid-request, [E025] oversized-request, [E026]
      request-timeout, [E027] request-crashed, [E028] repair-failed,
      [E029] worker-crashed (the server front door, repair pipeline
      and worker pool);
    - [E030] replication-divergence, [E031] replication-refused (the
      primary/standby replication layer);
    - [E032] unrepairable-store (the {!Mdqa_store.Fsck} salvage chain
      exhausted every stage);
    - [W040] undefined-predicate, [W041] not-weakly-sticky, [W042]
      quality-version-undefined, [W043] non-strict-hierarchy, [W044]
      non-homogeneous-hierarchy, [W045] referential-violation, [W046]
      store-truncated, [W047] overload-shed, [W048] breaker-open,
      [W049] watchdog-kill, [W050] stale-read, [W051]
      salvaged-from-generation, [W052] journal-records-dropped;
    - [H050] qa-path, [H051] unused-map-target, [H052]
      stale-checkpoint-temp, [H053] server-drain, [H054]
      workers-unavailable, [H055] promoted, [H056] quarantined-file. *)

type severity = Error | Warning | Hint

type span = {
  file : string option;
  line : int;  (** 1-based; never 0 — every diagnostic is located *)
  col : int;  (** 1-based; 0 when only the line is known *)
}

type t = {
  code : string;  (** stable code, e.g. ["E012"] *)
  severity : severity;
  span : span;
  message : string;
}

val make :
  ?file:string -> ?line:int -> ?col:int -> severity -> code:string ->
  string -> t
(** [make severity ~code message].  [line] defaults to 1 and is clamped
    to ≥ 1, so a diagnostic can never be location-less. *)

val describe : string -> string option
(** Short mnemonic for a stable code ([describe "E012" =
    Some "unknown-predicate"]). *)

val codes : (string * string) list
(** The full code registry, sorted: [(code, mnemonic)]. *)

val compare : t -> t -> int
(** Source order: file, line, column, then severity (errors first) and
    code. *)

(** {1 Accumulation} *)

type collector

val collector : ?file:string -> unit -> collector
(** A fresh, empty collector.  [file] is stamped on every diagnostic
    added through the helpers below (an explicit [?file] wins). *)

val add : collector -> t -> unit

val error :
  collector -> ?file:string -> ?line:int -> ?col:int -> code:string ->
  string -> unit

val warning :
  collector -> ?file:string -> ?line:int -> ?col:int -> code:string ->
  string -> unit

val hint :
  collector -> ?file:string -> ?line:int -> ?col:int -> code:string ->
  string -> unit

val errorf :
  collector -> ?file:string -> ?line:int -> ?col:int -> code:string ->
  ('a, unit, string, unit) format4 -> 'a

val warningf :
  collector -> ?file:string -> ?line:int -> ?col:int -> code:string ->
  ('a, unit, string, unit) format4 -> 'a

val hintf :
  collector -> ?file:string -> ?line:int -> ?col:int -> code:string ->
  ('a, unit, string, unit) format4 -> 'a

val to_list : collector -> t list
(** All accumulated diagnostics in source order ({!compare}),
    deduplicated. *)

val error_count : collector -> int
val warning_count : collector -> int
val has_errors : collector -> bool

(** {1 Presentation} *)

val exit_code : t list -> int
(** The CLI convention: [1] if any error, [2] if any warning (but no
    error), [0] otherwise (clean or hints only). *)

val pp : Format.formatter -> t -> unit
(** [FILE:LINE:COL: error E012 (unknown-predicate): message] — the
    grep-able one-diagnostic-per-line format. *)

val pp_summary : Format.formatter -> t list -> unit
(** ["3 errors, 1 warning"]-style one-line summary. *)

val to_json : ?file:string -> t list -> string
(** The whole report as one JSON object:
    [{"file": ..., "errors": N, "warnings": N, "hints": N,
      "diagnostics": [{"severity": "error", "code": "E012",
      "mnemonic": "unknown-predicate", "line": L, "col": C,
      "file": ..., "message": ...}, ...]}]. *)
