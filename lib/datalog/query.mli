(** Conjunctive queries and certain-answer semantics.

    A query [Q(x̄) ← φ(x̄,ȳ), χ] has distinguished head terms [x̄]
    (variables or constants), a conjunctive body and comparison side
    conditions.  Over a chased instance, {e certain answers} are the
    matches whose head terms are bound to non-null constants: for
    TGD-only (and separable) programs the chase is a universal model,
    so null-free answers on it coincide with certain answers. *)

type t = private {
  name : string;
  head : Term.t list;
  body : Atom.t list;
  cmps : Atom.Cmp.t list;
}

val make :
  ?name:string ->
  ?cmps:Atom.Cmp.t list ->
  head:Term.t list ->
  Atom.t list ->
  t
(** @raise Invalid_argument if the body is empty, a head variable does
    not occur in the body, or a comparison variable does not occur in
    the body. *)

val boolean : ?name:string -> ?cmps:Atom.Cmp.t list -> Atom.t list -> t
(** A boolean conjunctive query (empty head). *)

val is_boolean : t -> bool
val answer_vars : t -> Term.Var_set.t

val matches :
  ?guard:Guard.t ->
  Mdqa_relational.Instance.t -> t -> Mdqa_relational.Tuple.t list
(** All head images over the given instance, including those containing
    labeled nulls; sorted, deduplicated.
    @raise Guard.Exhausted when the guard trips. *)

val certain :
  ?guard:Guard.t ->
  Mdqa_relational.Instance.t -> t -> Mdqa_relational.Tuple.t list
(** Null-free head images over the given (chased) instance.
    @raise Guard.Exhausted when the guard trips. *)

val holds : ?guard:Guard.t -> Mdqa_relational.Instance.t -> t -> bool
(** Boolean entailment over the given (chased) instance.
    @raise Guard.Exhausted when the guard trips. *)

(** End-to-end answering: chase then evaluate. *)

type 'a outcome =
  | Ok of 'a
  | Inconsistent of Chase.failure
      (** the chase failed; every tuple is entailed in classical
          semantics, so no meaningful answer set exists *)
  | Degraded of {
      partial : 'a;
          (** answers supported by the work done before the trip — a
              sound under-approximation of the complete answer set *)
      exhaustion : Guard.exhaustion;  (** which resource ran out *)
      stats : Chase.stats;
    }  (** a guard resource ran out during the chase or evaluation *)

val value : 'a outcome -> 'a option
(** The (possibly partial) answers; [None] on [Inconsistent]. *)

val certain_answers :
  ?guard:Guard.t ->
  ?chase_variant:Chase.variant ->
  ?goal_directed:bool ->
  ?max_steps:int ->
  ?max_nulls:int ->
  Program.t ->
  Mdqa_relational.Instance.t ->
  t ->
  Mdqa_relational.Tuple.t list outcome
(** With [goal_directed] (off by default), the program is first
    restricted to the rules relevant to the query's predicates
    ({!Program.restrict_to_goals}) — same answers, smaller chase.
    The guard governs the chase {e and} the final evaluation; on any
    trip the result is [Degraded] with the partial answers, never an
    exception or a hang. *)

val entails :
  ?guard:Guard.t ->
  ?chase_variant:Chase.variant ->
  ?goal_directed:bool ->
  ?max_steps:int ->
  ?max_nulls:int ->
  Program.t ->
  Mdqa_relational.Instance.t ->
  t ->
  bool outcome
(** Boolean conjunctive query answering via the chase.  [Degraded]
    carries [false] when the evaluation itself was cut short. *)

val pp : Format.formatter -> t -> unit
