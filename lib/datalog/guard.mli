(** Unified resource governance for the whole QA pipeline.

    The paper's tractability results (weakly-sticky Datalog± keeps BCQ
    answering PTIME) promise an engine that never hangs; this module
    makes that promise operational.  A {!t} bundles every budget the
    engine enforces — chase steps, invented nulls, join rows, rewriting
    disjuncts, repair branches — together with a wall-clock deadline, a
    heap watermark and a cooperative cancellation flag.  One guard is
    threaded through a whole pipeline run ({!Chase.run}, {!Eval},
    {!Rewrite}, {!Query}, repairs, context assessment), so the budgets
    are global to the run, not per-stage.

    Engines consume resources through the [count_*] functions; when a
    budget is exceeded the guard records an {!exhaustion} report and
    raises {!Exhausted}.  Public entry points catch the exception and
    return the partial result computed so far alongside the report —
    degradation, never a hang or a bare failure.

    The clock and heap sampler are injectable so tests can
    deterministically fault-inject every exhaustion path
    ([~clock:(fun () -> ...)], [~check_every:1]). *)

type resource =
  | Steps  (** chase trigger budget *)
  | Nulls  (** invented labeled nulls *)
  | Rows  (** join rows emitted by {!Eval} *)
  | Cqs  (** conjunctive queries produced by {!Rewrite} *)
  | Repair_branches  (** hitting-set search branches in repairs *)
  | Checkpoint_bytes  (** bytes written to a chase checkpoint store *)
  | Deadline  (** wall-clock timeout *)
  | Memory  (** heap watermark *)
  | Cancelled  (** cooperative cancellation was requested *)

type exhaustion = {
  resource : resource;  (** which resource ran out *)
  limit : float;  (** the configured cap, in the resource's unit *)
  used : float;  (** consumption at the moment the guard tripped *)
}

type consumption = {
  steps : int;
  nulls : int;
  rows : int;
  cqs : int;
  repair_branches : int;
  checkpoint_bytes : int;
      (** snapshot + journal bytes written by the durability layer
          ([lib/store]), so [--timeout] / [--max-memory] runs report
          checkpoint I/O alongside the compute budgets *)
  elapsed : float;  (** seconds since the guard was created *)
  heap_mb : float;  (** heap size at the last sample, in MiB *)
}

(** Outcome of a governed computation: the result, possibly partial. *)
type 'a outcome =
  | Complete of 'a
  | Degraded of 'a * exhaustion
      (** a budget ran out; the carried value is the well-formed
          partial result computed before the trip *)

type t

exception Exhausted of exhaustion

(** Monotonic wall-clock time in seconds.  The system clock is wrapped
    so the reported time never decreases, making deadline checks (and
    benchmark timings) robust to clock steps. *)
module Clock : sig
  val now : unit -> float
end

val create :
  ?max_steps:int ->
  ?max_nulls:int ->
  ?max_rows:int ->
  ?max_cqs:int ->
  ?max_repair_branches:int ->
  ?max_checkpoint_bytes:int ->
  ?timeout:float ->
  ?max_memory_mb:float ->
  ?clock:(unit -> float) ->
  ?heap_sampler:(unit -> float) ->
  ?check_every:int ->
  unit ->
  t
(** A fresh guard.  Omitted budgets are unlimited.  [timeout] is in
    seconds from creation; [max_memory_mb] is a heap watermark in MiB.
    [clock] defaults to {!Clock.now}; [heap_sampler] (returning MiB)
    defaults to sampling [Gc.quick_stat].  Deadline, memory and
    cancellation are checked every [check_every] ticks (default 64;
    use [1] in tests for deterministic fault injection). *)

val unlimited : unit -> t
(** A guard with no limits — still tracks consumption and supports
    cancellation. *)

val fork :
  ?max_steps:int ->
  ?max_nulls:int ->
  ?max_rows:int ->
  ?max_cqs:int ->
  ?max_repair_branches:int ->
  ?max_checkpoint_bytes:int ->
  ?timeout:float ->
  t ->
  t
(** [fork parent] is a child guard for one unit of work inside a
    long-running service: each child budget is the requested value
    capped by what {e remains} of the parent's corresponding budget
    (so a request can never spend more than the server has left), and
    the child's deadline is the earlier of [timeout] seconds from now
    and the parent's own deadline.  The clock, heap sampler, memory
    watermark and [check_every] are inherited; consumption counters
    start at zero.  Fold the child's spending back into the parent
    with {!absorb} when the work finishes. *)

val absorb : t -> t -> unit
(** [absorb parent child] adds the child's counted consumption
    (steps, nulls, rows, cqs, repair branches, checkpoint bytes) into
    the parent's counters.  Never raises — a service charging request
    work back must not be torn down mid-reply; if a parent budget is
    now exceeded, the parent's next [count_*] call trips it. *)

val cancel : t -> unit
(** Request cooperative cancellation: the next check trips the guard
    with resource {!Cancelled}. *)

val is_cancelled : t -> bool

val check : t -> unit
(** Unconditionally check deadline, memory watermark and cancellation.
    @raise Exhausted when one of them is exceeded. *)

val tick : t -> unit
(** Cheap cooperative check: runs {!check} every [check_every] calls.
    Engines call this in inner loops (per candidate tuple, per
    unfolding attempt). *)

val count_step : t -> unit
(** Consume one chase step. @raise Exhausted past [max_steps]. *)

val count_null : t -> unit
(** Consume one invented null. @raise Exhausted past [max_nulls]. *)

val count_row : t -> unit
(** Consume one emitted join row. @raise Exhausted past [max_rows]. *)

val count_cq : t -> unit
(** Consume one rewriting disjunct. @raise Exhausted past [max_cqs]. *)

val count_repair_branch : t -> unit
(** Consume one repair-search branch.
    @raise Exhausted past [max_repair_branches]. *)

val count_checkpoint_bytes : t -> int -> unit
(** [count_checkpoint_bytes g n] consumes [n] bytes of checkpoint I/O
    (snapshot or journal writes).
    @raise Exhausted past [max_checkpoint_bytes]. *)

val consumption : t -> consumption
(** Current consumption — usable as per-run stats by the bench
    harness and the CLI. *)

val record_metrics : t -> Mdqa_obs.Metrics.t -> unit
(** Publish the guard's current {!consumption} into a metrics registry
    as [mdqa_guard_*] gauges (steps, nulls, rows, cqs, repair branches,
    checkpoint bytes, elapsed seconds, heap MiB). *)

val exhaustion : t -> exhaustion option
(** The recorded report if the guard has tripped. *)

val protect : t -> (unit -> 'a) -> partial:(unit -> 'a) -> 'a outcome
(** [protect g f ~partial] runs [f ()]; if it raises {!Exhausted}, the
    trip is absorbed and [Degraded (partial (), e)] is returned. *)

val value : 'a outcome -> 'a
(** The carried value, complete or partial. *)

val degraded : 'a outcome -> exhaustion option

val map : ('a -> 'b) -> 'a outcome -> 'b outcome

val resource_name : resource -> string
val pp_resource : Format.formatter -> resource -> unit
val pp_exhaustion : Format.formatter -> exhaustion -> unit
val pp_consumption : Format.formatter -> consumption -> unit
