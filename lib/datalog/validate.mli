(** Semantic validation of Datalog± programs — the analysis behind
    [mdqa check] for plain program files.

    Validation composes with the recovering parser
    ({!Parser.parse_statements}): one pass accumulates {e all} lexical,
    syntax and semantic diagnostics.  Semantic checks:

    - arity consistency of every predicate across facts, rules,
      constraints and queries ([E011] per clashing statement, each with
      its source line — where [Program.make] would abort on the first);
    - predicates used in rule/constraint/query bodies that have no
      facts and no defining rule ([W040]: a forever-empty extension,
      almost always a typo);
    - the weak-stickiness certificate ({!Stickiness.certify}): [W041]
      per rule breaking weak stickiness, and an [H050] hint naming the
      strongest justified query-answering path (FO rewriting /
      DeterministicWSQAns / budgeted chase).

    Statement-level well-formedness (ground facts, safe queries, ...)
    is enforced during parsing and surfaces as [E003]. *)

type checked = {
  parsed : Parser.parsed option;
      (** [Some] iff no error-severity diagnostic was produced; the
          engine must not run otherwise *)
  diags : Diag.t list;  (** in source order *)
}

val check_string : ?file:string -> string -> checked
(** Never raises: every problem is a diagnostic. *)

val check_file : string -> checked
(** @raise Sys_error on I/O failure only. *)

val check_statements :
  ?file:string -> Diag.collector -> Parser.located_statement list -> unit
(** The arity and undefined-predicate checks alone, for callers that
    manage their own parse (e.g. the [.mdq] validator). *)

val check_certificate :
  ?file:string ->
  Diag.collector ->
  Parser.located_statement list ->
  Program.t ->
  unit
(** The weak-stickiness certificate as diagnostics ([W041]/[H050]),
    locating violations at their rule's statement when it appears in
    [statements]. *)
