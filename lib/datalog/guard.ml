type resource =
  | Steps
  | Nulls
  | Rows
  | Cqs
  | Repair_branches
  | Checkpoint_bytes
  | Deadline
  | Memory
  | Cancelled

type exhaustion = {
  resource : resource;
  limit : float;
  used : float;
}

type consumption = {
  steps : int;
  nulls : int;
  rows : int;
  cqs : int;
  repair_branches : int;
  checkpoint_bytes : int;
  elapsed : float;
  heap_mb : float;
}

type 'a outcome =
  | Complete of 'a
  | Degraded of 'a * exhaustion

exception Exhausted of exhaustion

module Clock = struct
  (* The system wall clock can step backwards (NTP); deadline checks
     and benchmark timings need a non-decreasing view of it. *)
  let last = ref 0.

  let now () =
    let t = Unix.gettimeofday () in
    if t > !last then last := t;
    !last
end

let word_bytes = float_of_int (Sys.word_size / 8)

let default_heap_sampler () =
  let s = Gc.quick_stat () in
  float_of_int s.Gc.heap_words *. word_bytes /. 1_048_576.

type t = {
  max_steps : int option;
  max_nulls : int option;
  max_rows : int option;
  max_cqs : int option;
  max_repair_branches : int option;
  max_checkpoint_bytes : int option;
  deadline : float option;  (* absolute, in the guard's clock *)
  timeout : float option;  (* the configured relative limit, for reports *)
  max_memory_mb : float option;
  clock : unit -> float;
  heap_sampler : unit -> float;
  check_every : int;
  started : float;
  mutable steps : int;
  mutable nulls : int;
  mutable rows : int;
  mutable cqs : int;
  mutable repair_branches : int;
  mutable checkpoint_bytes : int;
  mutable ticks : int;
  mutable heap_mb : float;
  mutable cancelled : bool;
  mutable tripped : exhaustion option;
}

let create ?max_steps ?max_nulls ?max_rows ?max_cqs ?max_repair_branches
    ?max_checkpoint_bytes ?timeout ?max_memory_mb ?clock ?heap_sampler
    ?(check_every = 64) () =
  if check_every < 1 then invalid_arg "Guard.create: check_every < 1";
  let clock = Option.value ~default:Clock.now clock in
  let heap_sampler = Option.value ~default:default_heap_sampler heap_sampler in
  let started = clock () in
  { max_steps;
    max_nulls;
    max_rows;
    max_cqs;
    max_repair_branches;
    max_checkpoint_bytes;
    deadline = Option.map (fun s -> started +. s) timeout;
    timeout;
    max_memory_mb;
    clock;
    heap_sampler;
    check_every;
    started;
    steps = 0;
    nulls = 0;
    rows = 0;
    cqs = 0;
    repair_branches = 0;
    checkpoint_bytes = 0;
    ticks = 0;
    heap_mb = 0.;
    cancelled = false;
    tripped = None }

let unlimited () = create ()

(* Child budgets are capped by what remains of the parent's: a forked
   request can never spend more than the enclosing service has left. *)
let fork ?max_steps ?max_nulls ?max_rows ?max_cqs ?max_repair_branches
    ?max_checkpoint_bytes ?timeout g =
  let rem limit used requested =
    let remaining = Option.map (fun l -> max 0 (l - used)) limit in
    match (remaining, requested) with
    | None, r -> r
    | (Some _ as r), None -> r
    | Some r, Some q -> Some (min r q)
  in
  let started = g.clock () in
  let deadline =
    let requested = Option.map (fun s -> started +. s) timeout in
    match (g.deadline, requested) with
    | None, d | d, None -> d
    | Some a, Some b -> Some (Float.min a b)
  in
  { g with
    max_steps = rem g.max_steps g.steps max_steps;
    max_nulls = rem g.max_nulls g.nulls max_nulls;
    max_rows = rem g.max_rows g.rows max_rows;
    max_cqs = rem g.max_cqs g.cqs max_cqs;
    max_repair_branches =
      rem g.max_repair_branches g.repair_branches max_repair_branches;
    max_checkpoint_bytes =
      rem g.max_checkpoint_bytes g.checkpoint_bytes max_checkpoint_bytes;
    deadline;
    timeout = Option.map (fun d -> d -. started) deadline;
    started;
    steps = 0;
    nulls = 0;
    rows = 0;
    cqs = 0;
    repair_branches = 0;
    checkpoint_bytes = 0;
    ticks = 0;
    heap_mb = 0.;
    tripped = None }

let absorb parent child =
  parent.steps <- parent.steps + child.steps;
  parent.nulls <- parent.nulls + child.nulls;
  parent.rows <- parent.rows + child.rows;
  parent.cqs <- parent.cqs + child.cqs;
  parent.repair_branches <- parent.repair_branches + child.repair_branches;
  parent.checkpoint_bytes <- parent.checkpoint_bytes + child.checkpoint_bytes;
  if child.heap_mb > parent.heap_mb then parent.heap_mb <- child.heap_mb

let cancel g = g.cancelled <- true
let is_cancelled g = g.cancelled

let trip g resource ~limit ~used =
  let e = { resource; limit; used } in
  g.tripped <- Some e;
  raise (Exhausted e)

(* A trip is sticky: a guard shared across pipeline stages keeps
   re-raising the original report, so later stages stop immediately
   instead of consuming a fresh budget. *)
let reraise_if_tripped g =
  match g.tripped with Some e -> raise (Exhausted e) | None -> ()

let check g =
  reraise_if_tripped g;
  if g.cancelled then trip g Cancelled ~limit:0. ~used:0.;
  (match g.deadline with
   | Some d ->
     let now = g.clock () in
     if now > d then
       trip g Deadline
         ~limit:(Option.value ~default:0. g.timeout)
         ~used:(now -. g.started)
   | None -> ());
  match g.max_memory_mb with
  | Some m ->
    let heap = g.heap_sampler () in
    g.heap_mb <- heap;
    if heap > m then trip g Memory ~limit:m ~used:heap
  | None -> ()

let tick g =
  reraise_if_tripped g;
  g.ticks <- g.ticks + 1;
  if g.ticks >= g.check_every then begin
    g.ticks <- 0;
    check g
  end

let count ~resource ~limit ~get ~set g =
  reraise_if_tripped g;
  set g (get g + 1);
  (match limit g with
   | Some l when get g > l ->
     trip g resource ~limit:(float_of_int l) ~used:(float_of_int (get g))
   | _ -> ());
  tick g

let count_step g =
  count g ~resource:Steps
    ~limit:(fun g -> g.max_steps)
    ~get:(fun g -> g.steps)
    ~set:(fun g n -> g.steps <- n)

let count_null g =
  count g ~resource:Nulls
    ~limit:(fun g -> g.max_nulls)
    ~get:(fun g -> g.nulls)
    ~set:(fun g n -> g.nulls <- n)

let count_row g =
  count g ~resource:Rows
    ~limit:(fun g -> g.max_rows)
    ~get:(fun g -> g.rows)
    ~set:(fun g n -> g.rows <- n)

let count_cq g =
  count g ~resource:Cqs
    ~limit:(fun g -> g.max_cqs)
    ~get:(fun g -> g.cqs)
    ~set:(fun g n -> g.cqs <- n)

let count_repair_branch g =
  count g ~resource:Repair_branches
    ~limit:(fun g -> g.max_repair_branches)
    ~get:(fun g -> g.repair_branches)
    ~set:(fun g n -> g.repair_branches <- n)

(* Checkpoint I/O arrives in multi-byte chunks, so this counter takes
   an increment instead of assuming 1 like the others. *)
let count_checkpoint_bytes g n =
  if n < 0 then invalid_arg "Guard.count_checkpoint_bytes: negative";
  reraise_if_tripped g;
  g.checkpoint_bytes <- g.checkpoint_bytes + n;
  (match g.max_checkpoint_bytes with
   | Some l when g.checkpoint_bytes > l ->
     trip g Checkpoint_bytes ~limit:(float_of_int l)
       ~used:(float_of_int g.checkpoint_bytes)
   | _ -> ());
  tick g

let consumption g =
  { steps = g.steps;
    nulls = g.nulls;
    rows = g.rows;
    cqs = g.cqs;
    repair_branches = g.repair_branches;
    checkpoint_bytes = g.checkpoint_bytes;
    elapsed = g.clock () -. g.started;
    heap_mb = (if g.heap_mb > 0. then g.heap_mb else g.heap_sampler ()) }

let exhaustion g = g.tripped

(* Publish the current consumption as gauges.  Gauges (not counters):
   a guard is per-run state and [Metrics.merge] takes the max, which is
   the right reading for watermark-style quantities. *)
let record_metrics g m =
  let set name help v =
    Mdqa_obs.Metrics.set (Mdqa_obs.Metrics.gauge m ~help name) v
  in
  let c = consumption g in
  set "mdqa_guard_steps" "chase steps consumed" (float_of_int c.steps);
  set "mdqa_guard_nulls" "nulls consumed" (float_of_int c.nulls);
  set "mdqa_guard_rows" "join rows consumed" (float_of_int c.rows);
  set "mdqa_guard_cqs" "rewriting CQs consumed" (float_of_int c.cqs);
  set "mdqa_guard_repair_branches" "repair branches consumed"
    (float_of_int c.repair_branches);
  set "mdqa_guard_checkpoint_bytes" "checkpoint bytes consumed"
    (float_of_int c.checkpoint_bytes);
  set "mdqa_guard_elapsed_seconds" "seconds since the guard was created"
    c.elapsed;
  set "mdqa_guard_heap_mb" "heap watermark in MiB" c.heap_mb

let protect g f ~partial =
  match f () with
  | v -> Complete v
  | exception Exhausted e ->
    if g.tripped = None then g.tripped <- Some e;
    Degraded (partial (), e)

let value = function Complete v | Degraded (v, _) -> v
let degraded = function Complete _ -> None | Degraded (_, e) -> Some e
let map f = function
  | Complete v -> Complete (f v)
  | Degraded (v, e) -> Degraded (f v, e)

let resource_name = function
  | Steps -> "steps"
  | Nulls -> "nulls"
  | Rows -> "rows"
  | Cqs -> "cqs"
  | Repair_branches -> "repair branches"
  | Checkpoint_bytes -> "checkpoint bytes"
  | Deadline -> "deadline"
  | Memory -> "memory"
  | Cancelled -> "cancelled"

let pp_resource ppf r = Format.pp_print_string ppf (resource_name r)

let pp_exhaustion ppf e =
  match e.resource with
  | Cancelled -> Format.pp_print_string ppf "cancelled"
  | Deadline ->
    Format.fprintf ppf "deadline exceeded (%.3fs elapsed, limit %.3fs)"
      e.used e.limit
  | Memory ->
    Format.fprintf ppf "memory watermark exceeded (%.1f MiB, limit %.1f MiB)"
      e.used e.limit
  | r ->
    Format.fprintf ppf "%s budget exhausted (%.0f used, limit %.0f)"
      (resource_name r) e.used e.limit

let pp_consumption ppf (c : consumption) =
  Format.fprintf ppf
    "steps %d, nulls %d, rows %d, cqs %d, repair branches %d, checkpoint \
     bytes %d, %.3fs, %.1f MiB"
    c.steps c.nulls c.rows c.cqs c.repair_branches c.checkpoint_bytes
    c.elapsed c.heap_mb
