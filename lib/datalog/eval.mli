(** Evaluation of conjunctive atom lists over an instance.

    This is the workhorse shared by conjunctive-query answering, TGD
    trigger enumeration, and EGD / negative-constraint checking: find
    all substitutions θ such that every atom of the body, instantiated
    by θ, is a fact of the instance, and every comparison holds.

    Evaluation performs an index-backed backtracking join: atoms are
    matched left to right, each candidate set retrieved through
    {!Mdqa_relational.Relation.scan} with the positions already bound.
    Atoms are reordered greedily at each step to bind the most
    selective atom first.

    Every entry point takes an optional {!Guard.t}: each emitted match
    consumes one row of the guard's row budget and every candidate
    tuple ticks the deadline / memory / cancellation check, so a join
    explosion surfaces as {!Guard.Exhausted} (or a [Degraded] outcome
    from {!answers_guarded}) instead of unbounded time or memory. *)

val answers :
  ?guard:Guard.t ->
  ?cmps:Atom.Cmp.t list ->
  Mdqa_relational.Instance.t ->
  Atom.t list ->
  Subst.t list
(** All matching substitutions (deterministic order, no duplicates
    modulo the body's variables).  Comparisons are applied as soon as
    both sides are ground.  Atoms over predicates absent from the
    instance yield no answers.
    @raise Guard.Exhausted when the guard trips — used by engines that
    thread one guard through a whole pipeline and catch the trip at
    their own entry point.  Use {!answers_guarded} for the structured
    form. *)

val answers_guarded :
  ?guard:Guard.t ->
  ?cmps:Atom.Cmp.t list ->
  Mdqa_relational.Instance.t ->
  Atom.t list ->
  Subst.t list Guard.outcome
(** Like {!answers}, but a guard trip is absorbed: [Degraded] carries
    the matches found before the budget ran out, together with the
    exhaustion report.  Never raises {!Guard.Exhausted}. *)

val exists :
  ?guard:Guard.t ->
  ?cmps:Atom.Cmp.t list ->
  Mdqa_relational.Instance.t ->
  Atom.t list ->
  bool
(** Is there at least one match? (short-circuiting)
    @raise Guard.Exhausted when the guard trips. *)

val first :
  ?guard:Guard.t ->
  ?cmps:Atom.Cmp.t list ->
  Mdqa_relational.Instance.t ->
  Atom.t list ->
  Subst.t option

val holds_fact : Mdqa_relational.Instance.t -> Atom.t -> bool
(** Ground-atom membership. @raise Invalid_argument on non-ground. *)

val delta_answers :
  ?guard:Guard.t ->
  ?cmps:Atom.Cmp.t list ->
  Mdqa_relational.Instance.t ->
  delta:(string -> Mdqa_relational.Tuple.t -> bool) ->
  ?delta_tuples:(string -> Mdqa_relational.Tuple.t list) ->
  Atom.t list ->
  Subst.t list
(** Like {!answers} but keeps only matches in which at least one body
    atom is instantiated to a fact satisfying [delta] — the semi-naive
    restriction used by the chase to enumerate only new triggers.  When
    [delta_tuples] lists the delta per predicate, the delta-constrained
    atom is evaluated directly over that list instead of scanning the
    relation, making small-delta rounds proportional to the delta.
    @raise Guard.Exhausted when the guard trips. *)
