type occurrence = {
  tgd : Tgd.t;
  atom_index : int;
  arg_index : int;
  var : string;
}

module Pos_set = Set.Make (struct
  type t = string * int
  let compare = compare
end)

type marking = {
  program : Program.t;
  (* marked variables per TGD name *)
  marked : (string, Term.Var_set.t) Hashtbl.t;
}

let marked_vars m (tgd : Tgd.t) =
  Option.value ~default:Term.Var_set.empty
    (Hashtbl.find_opt m.marked tgd.Tgd.name)

let is_marked m tgd v = Term.Var_set.mem v (marked_vars m tgd)

(* Positions at which a variable occurs in a list of atoms. *)
let occ_positions atoms v =
  List.concat_map
    (fun a -> List.map (fun i -> (Atom.pred a, i)) (Atom.var_positions a v))
    atoms

let marked_positions_set m =
  List.fold_left
    (fun acc (tgd : Tgd.t) ->
      Term.Var_set.fold
        (fun v acc ->
          List.fold_left
            (fun acc p -> Pos_set.add p acc)
            acc
            (occ_positions tgd.Tgd.body v))
        (marked_vars m tgd) acc)
    Pos_set.empty m.program.Program.tgds

let mark program =
  let m = { program; marked = Hashtbl.create 16 } in
  let add (tgd : Tgd.t) v =
    let cur = marked_vars m tgd in
    if Term.Var_set.mem v cur then false
    else begin
      Hashtbl.replace m.marked tgd.Tgd.name (Term.Var_set.add v cur);
      true
    end
  in
  (* Base step: body variables absent from the head. *)
  List.iter
    (fun (tgd : Tgd.t) ->
      let hv = Tgd.head_vars tgd in
      Term.Var_set.iter
        (fun v -> if not (Term.Var_set.mem v hv) then ignore (add tgd v))
        (Tgd.body_vars tgd))
    program.Program.tgds;
  (* Propagation to fixpoint. *)
  let changed = ref true in
  while !changed do
    changed := false;
    let mp = marked_positions_set m in
    List.iter
      (fun (tgd : Tgd.t) ->
        Term.Var_set.iter
          (fun x ->
            let head_pos = occ_positions tgd.Tgd.head x in
            if List.exists (fun p -> Pos_set.mem p mp) head_pos then
              if add tgd x then changed := true)
          (Tgd.frontier tgd))
      program.Program.tgds
  done;
  m

let marked_occurrences m =
  List.concat_map
    (fun (tgd : Tgd.t) ->
      let mv = marked_vars m tgd in
      List.concat
        (List.mapi
           (fun atom_index a ->
             List.concat
               (List.mapi
                  (fun arg_index t ->
                    match t with
                    | Term.Var v when Term.Var_set.mem v mv ->
                      [ { tgd; atom_index; arg_index; var = v } ]
                    | _ -> [])
                  (Atom.args a)))
           tgd.Tgd.body))
    m.program.Program.tgds

let marked_positions m = Pos_set.elements (marked_positions_set m)

let is_sticky program =
  let m = mark program in
  List.for_all
    (fun (tgd : Tgd.t) ->
      let repeated = Tgd.repeated_body_vars tgd in
      Term.Var_set.is_empty
        (Term.Var_set.inter repeated (marked_vars m tgd)))
    program.Program.tgds

let weak_stickiness_violations program =
  let m = mark program in
  let g = Position_graph.build program in
  let finite = Pos_set.of_list (Position_graph.finite_rank_positions g) in
  List.concat_map
    (fun (tgd : Tgd.t) ->
      let repeated = Tgd.repeated_body_vars tgd in
      Term.Var_set.fold
        (fun v acc ->
          if not (is_marked m tgd v) then acc
          else if
            List.exists
              (fun p -> Pos_set.mem p finite)
              (occ_positions tgd.Tgd.body v)
          then acc
          else (tgd, v) :: acc)
        repeated [])
    program.Program.tgds

let is_weakly_sticky program = weak_stickiness_violations program = []

(* --- the weak-stickiness certificate ------------------------------- *)

type qa_path =
  | Fo_rewriting
  | Deterministic_ws
  | Chase_only

type certificate = {
  sticky : bool;
  weakly_sticky : bool;
  rewritable : bool;
  violations : (Tgd.t * string) list;
  path : qa_path;
}

let certify program =
  let violations = weak_stickiness_violations program in
  let weakly_sticky = violations = [] in
  let sticky = weakly_sticky && is_sticky program in
  let rewritable = Program.predicate_graph_acyclic program in
  let path =
    if rewritable then Fo_rewriting
    else if weakly_sticky then Deterministic_ws
    else Chase_only
  in
  { sticky; weakly_sticky; rewritable; violations; path }

let pp_qa_path ppf = function
  | Fo_rewriting ->
    Format.pp_print_string ppf
      "FO rewriting (acyclic predicate graph: unfolding terminates)"
  | Deterministic_ws ->
    Format.pp_print_string ppf
      "DeterministicWSQAns (weakly sticky: PTIME certain answers)"
  | Chase_only ->
    Format.pp_print_string ppf
      "budgeted chase only (outside weakly-sticky Datalog±: no \
       tractability guarantee)"
