module Tuple = Mdqa_relational.Tuple
module Instance = Mdqa_relational.Instance
module Relation = Mdqa_relational.Relation

type tree = {
  fact : string * Tuple.t;
  rule : string option;
  premises : tree list;
}

module Fact_set = Set.Make (struct
  type t = string * Tuple.t
  let compare (p1, t1) (p2, t2) =
    let c = String.compare p1 p2 in
    if c <> 0 then c else Tuple.compare t1 t2
end)

let why (result : Chase.result) pred tuple =
  match result.Chase.provenance with
  | None -> Error "chase was run without ~provenance:true"
  | Some tbl ->
    let in_instance (p, t) =
      match Instance.find result.Chase.instance p with
      | Some rel -> Relation.mem rel t
      | None -> false
    in
    if not (in_instance (pred, tuple)) then
      Error
        (Format.asprintf "%s%a is not in the chased instance" pred Tuple.pp
           tuple)
    else begin
      (* the provenance table is acyclic by construction (a derivation
         only references facts present before the firing), but guard
         against pathological EGD remappings with a visited set *)
      let rec build visited fact =
        if Fact_set.mem fact visited then
          { fact; rule = None; premises = [] }
        else
          match Hashtbl.find_opt tbl fact with
          | None -> { fact; rule = None; premises = [] }
          | Some d ->
            let visited = Fact_set.add fact visited in
            { fact;
              rule = Some d.Chase.rule;
              premises = List.map (build visited) d.Chase.premises }
      in
      Ok (build Fact_set.empty (pred, tuple))
    end

let rec depth t =
  match t.rule with
  | None -> 0
  | Some _ -> 1 + List.fold_left (fun m p -> max m (depth p)) 0 t.premises

let rules_used t =
  let rec go acc t =
    let acc = match t.rule with Some r -> r :: acc | None -> acc in
    List.fold_left go acc t.premises
  in
  List.sort_uniq String.compare (go [] t)

let extensional_support t =
  let rec go acc t =
    match t.rule with
    | None -> Fact_set.add t.fact acc
    | Some _ -> List.fold_left go acc t.premises
  in
  Fact_set.elements (go Fact_set.empty t)

(* ------------------------------------------------- cost explanation *)

module Profile = Mdqa_obs.Profile

type atom_cost = {
  atom : Atom.t;
  atom_idx : int;
  scanned : int;
  matched : int;
}

type rule_cost = {
  rule_name : string;
  fires : int;
  triggers : int;
  matches : int;
  seconds : float;
  body : atom_cost list;
}

let cost snap (tgds : Tgd.t list) =
  let of_tgd (tgd : Tgd.t) =
    let name = tgd.Tgd.name in
    let fires, triggers, matches, seconds =
      match Profile.find_rule snap name with
      | Some r ->
        ( r.Profile.fires, r.Profile.triggers, r.Profile.matches,
          r.Profile.rule_seconds )
      | None -> (0, 0, 0, 0.)
    in
    let body =
      List.mapi
        (fun i a ->
          let scanned, matched =
            match Profile.find_atom snap (name, i, Atom.pred a) with
            | Some s -> (s.Profile.scanned, s.Profile.matched)
            | None -> (0, 0)
          in
          { atom = a; atom_idx = i; scanned; matched })
        tgd.Tgd.body
    in
    { rule_name = name; fires; triggers; matches; seconds; body }
  in
  List.map of_tgd tgds
  |> List.sort (fun a b -> compare (b.seconds, b.rule_name) (a.seconds, a.rule_name))

let atom_selectivity a =
  if a.scanned = 0 then 0.
  else float_of_int a.matched /. float_of_int a.scanned

let pp_rule_cost ppf rc =
  Format.fprintf ppf "@[<v>%s  fires=%d triggers=%d matches=%d time=%.6fs@,"
    rc.rule_name rc.fires rc.triggers rc.matches rc.seconds;
  List.iter
    (fun ac ->
      Format.fprintf ppf "  [%d] %a  scanned=%d matched=%d selectivity=%.3f@,"
        ac.atom_idx Atom.pp ac.atom ac.scanned ac.matched
        (atom_selectivity ac))
    rc.body;
  Format.fprintf ppf "@]"

let pp_cost ppf costs =
  Format.fprintf ppf "@[<v>";
  List.iter (fun rc -> pp_rule_cost ppf rc) costs;
  Format.fprintf ppf "@]"

let pp ppf tree =
  let rec go indent t =
    let pred, tuple = t.fact in
    Format.fprintf ppf "%s%s%a   %s@," indent pred Tuple.pp tuple
      (match t.rule with
       | Some r -> "[" ^ r ^ "]"
       | None -> "(extensional)");
    List.iter (go (indent ^ "  ")) t.premises
  in
  Format.fprintf ppf "@[<v>";
  go "" tree;
  Format.fprintf ppf "@]"
