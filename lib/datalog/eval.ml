module Instance = Mdqa_relational.Instance
module Relation = Mdqa_relational.Relation
module Tuple = Mdqa_relational.Tuple

(* Positions of an atom whose argument is ground under [s], paired with
   the value, in {!Relation.scan} binding format. *)
let bound_positions s (a : Atom.t) =
  let acc = ref [] in
  List.iteri
    (fun i t ->
      match Subst.walk s t with
      | Term.Const c -> acc := (i, c) :: !acc
      | Term.Var _ -> ())
    (Atom.args a);
  List.rev !acc

(* A body atom tagged with its evaluation constraints: an optional
   explicit candidate list with its length (the semi-naive delta), and
   a tuple filter.  The candidate list is an upper bound: evaluation
   may instead use an indexed scan when the current bindings are more
   selective (the [keep] filter preserves the delta restriction). *)
type tagged = {
  t_atom : Atom.t;
  t_idx : int;  (* source position in the rule body: the stable atom id *)
  keep : Tuple.t -> bool;
  candidates : (int * Tuple.t list) option;  (* None: scan the relation *)
}

(* Greedy selectivity score: the estimated number of candidate tuples
   the atom would enumerate right now — the smaller of the explicit
   (delta) candidate list and the index-bucket estimate of the bound
   positions.  Ties broken towards more bound positions. *)
let score inst s tg =
  let bound = bound_positions s tg.t_atom in
  let scan_est =
    match Instance.find inst (Atom.pred tg.t_atom) with
    | Some r -> Relation.scan_estimate r bound
    | None -> 0
  in
  let estimate =
    match tg.candidates with
    | Some (len, _) -> min len scan_est
    | None -> scan_est
  in
  (estimate, -List.length bound)

let pick_next inst s atoms =
  let rec go best best_score rest = function
    | [] -> (best, List.rev rest)
    | x :: xs ->
      let sc = score inst s x in
      if sc < best_score then go x sc (best :: rest) xs
      else go best best_score (x :: rest) xs
  in
  match atoms with
  | [] -> invalid_arg "Eval.pick_next: empty"
  | x :: xs -> go x (score inst s x) [] xs

(* Comparisons whose two sides are ground under [s] must hold; the rest
   are kept pending. *)
let check_cmps s cmps =
  let rec go pending = function
    | [] -> Some (List.rev pending)
    | c :: rest -> (
      match Atom.Cmp.eval (Subst.apply_cmp s c) with
      | Some true -> go pending rest
      | Some false -> None
      | None -> go (c :: pending) rest)
  in
  go [] cmps

(* Backtracking join over atoms tagged with a per-atom tuple filter.
   [emit] is called on every complete match; a safe body grounds every
   comparison by the end.  With a guard, every emitted match consumes a
   row and every candidate tuple ticks the cooperative deadline /
   memory / cancellation check, so a join explosion trips the guard
   instead of exhausting time or memory. *)
let search ?guard ?(cmps = []) inst tagged_atoms ~emit =
  let tick, count_row =
    match guard with
    | Some g -> ((fun () -> Guard.tick g), fun () -> Guard.count_row g)
    | None -> (ignore, ignore)
  in
  let rec go s atoms cmps =
    match check_cmps s cmps with
    | None -> ()
    | Some pending -> (
      match atoms with
      | [] ->
        if pending = [] then begin
          count_row ();
          emit s
        end
      | _ -> (
        let tg, rest = pick_next inst s atoms in
        let atom = tg.t_atom in
        match Instance.find inst (Atom.pred atom) with
        | None -> ()
        | Some r ->
          let pattern = Subst.apply_atom s atom in
          let bound = bound_positions s atom in
          let candidates =
            match tg.candidates with
            | Some (len, l) ->
              if Relation.scan_estimate r bound < len then
                Relation.scan r bound
              else l
            | None -> Relation.scan r bound
          in
          (* With an attribution scope open (chase rule body or named
             query), count tuples scanned and substitutions surviving
             this atom; the counters flush once per atom visit so the
             per-tuple loop stays allocation-free. *)
          (match Mdqa_obs.Profile.scoped () with
           | None ->
             List.iter
               (fun tuple ->
                 tick ();
                 if tg.keep tuple then
                   match
                     Unify.match_against ~init:s ~pattern
                       (Atom.of_fact (Atom.pred atom) tuple)
                   with
                   | Some s' -> go s' rest pending
                   | None -> ())
               candidates
           | Some p ->
             let scanned = ref 0 and matched = ref 0 in
             List.iter
               (fun tuple ->
                 tick ();
                 incr scanned;
                 if tg.keep tuple then
                   match
                     Unify.match_against ~init:s ~pattern
                       (Atom.of_fact (Atom.pred atom) tuple)
                   with
                   | Some s' ->
                     incr matched;
                     go s' rest pending
                   | None -> ())
               candidates;
             Mdqa_obs.Profile.atom_visit p ~idx:tg.t_idx
               ~pred:(Atom.pred atom) ~scanned:!scanned ~matched:!matched)))
  in
  go Subst.empty tagged_atoms cmps

let no_filter _ = true

let plain i a = { t_atom = a; t_idx = i; keep = no_filter; candidates = None }

let answers ?guard ?cmps inst atoms =
  let out = ref [] in
  search ?guard ?cmps inst (List.mapi plain atoms)
    ~emit:(fun s -> out := s :: !out);
  List.rev !out

let answers_guarded ?guard ?cmps inst atoms =
  let out = ref [] in
  match
    search ?guard ?cmps inst (List.mapi plain atoms)
      ~emit:(fun s -> out := s :: !out)
  with
  | () -> Guard.Complete (List.rev !out)
  | exception Guard.Exhausted e -> Guard.Degraded (List.rev !out, e)

exception Found of Subst.t

let first ?guard ?cmps inst atoms =
  try
    search ?guard ?cmps inst (List.mapi plain atoms)
      ~emit:(fun s -> raise (Found s));
    None
  with Found s -> Some s

let exists ?guard ?cmps inst atoms =
  Option.is_some (first ?guard ?cmps inst atoms)

let holds_fact inst a =
  if not (Atom.is_ground a) then
    invalid_arg "Eval.holds_fact: atom is not ground";
  match Instance.find inst (Atom.pred a) with
  | None -> false
  | Some r -> Relation.mem r (Atom.to_tuple a)

(* Semi-naive enumeration: exactly the matches using at least one
   delta fact, partitioned so no match is produced twice: for each atom
   index i, atom i matches delta facts only, atoms before i old facts
   only, atoms after i are unrestricted. *)
let delta_answers ?guard ?cmps inst ~delta ?delta_tuples atoms =
  let out = ref [] in
  let n = List.length atoms in
  for i = 0 to n - 1 do
    let tagged =
      List.mapi
        (fun j a ->
          if j = i then
            { t_atom = a;
              t_idx = j;
              keep = (fun tuple -> delta (Atom.pred a) tuple);
              candidates =
                (match delta_tuples with
                 | Some f ->
                   let l = f (Atom.pred a) in
                   Some (List.length l, l)
                 | None -> None) }
          else if j < i then
            { t_atom = a;
              t_idx = j;
              keep = (fun tuple -> not (delta (Atom.pred a) tuple));
              candidates = None }
          else plain j a)
        atoms
    in
    search ?guard ?cmps inst tagged ~emit:(fun s -> out := s :: !out)
  done;
  List.rev !out
