(** Recursive-descent parser for the Datalog± surface syntax.

    Statement forms (each terminated by [.]):

    {v
    % comment                      # comment
    p(a, "Tom Waits", 3).          fact (must be ground)
    h(X, Y) :- p(X, Z), q(Z, Y).   TGD; head vars not in the body are
                                   existential; multi-atom heads:
                                   h1(X), h2(X) :- p(X).
    X = Y :- p(X), p(Y).           EGD
    ! :- p(X), q(X), X >= 5.       negative constraint (comparisons ok)
    ?ans(X) :- p(X, Y), Y != b.    named query
    ? :- p(X).                     boolean query
    v}

    Constants are lowercase identifiers, quoted strings or numbers;
    variables start with an uppercase letter or [_].

    Two entry styles are provided: the historical fail-fast one
    ({!parse_string}, raising {!Error} on the first problem) and the
    recovering one ({!parse_statements}), which resynchronizes on ['.']
    after an error and accumulates every problem in a
    {!Diag.collector} — the substrate of [mdqa check]. *)

type parsed = {
  program : Program.t;
  queries : Query.t list;  (** in source order *)
}

exception
  Error of { line : int; col : int; code : string; message : string }
(** [code] is the stable diagnostic code ({!Diag.codes}): [E001]
    lexical, [E002] syntax, [E003] statement-level semantic error. *)

val parse_string : string -> parsed
(** @raise Error on syntax errors, non-ground facts, unsafe rules. *)

val parse_file : string -> parsed
(** @raise Sys_error on I/O failure, {!Error} on syntax errors. *)

val parse_query : string -> Query.t
(** Parse a single query statement (with or without the leading [?]).
    @raise Error if the input is not exactly one query. *)

(** Lower-level parsing toolkit, for layers that extend the surface
    syntax with their own declarations (e.g. the multidimensional
    context format of [Mdqa_context.Md_parser]) while reusing the
    statement grammar above. *)
module Raw : sig
  type state

  val init : ?diags:Diag.collector -> string -> state
  (** Tokenize an input.  With [diags], lexical errors are collected
      and skipped (see {!Lexer.tokens_pos}); without it they raise
      {!Error}. *)

  val at_eof : state -> bool

  val peek : state -> Lexer.token * Lexer.pos
  (** Current token and its position, without consuming. *)

  val peek2 : state -> Lexer.token
  (** One token of extra lookahead. *)

  val pos : state -> Lexer.pos
  (** Position of the current token. *)

  val advance : state -> unit
  val expect : state -> Lexer.token -> string -> unit

  val recover : state -> unit
  (** Skip to the next statement boundary: consume up to and including
      the next ['.'], stopping (without consuming) at ['}'] or EOF. *)

  val error : state -> string -> 'a
  (** @raise Error at the current position. *)

  type statement =
    | S_fact of Atom.t
    | S_tgd of Tgd.t
    | S_egd of Egd.t
    | S_nc of Nc.t
    | S_query of Query.t

  val statement : state -> statement
  (** Parse one datalog statement (as documented above).
      @raise Error on syntax errors. *)
end

(** {1 Recovering entry points} *)

type located_statement = {
  stmt : Raw.statement;
  pos : Lexer.pos;  (** position of the statement's first token *)
}

val parse_statements :
  ?file:string -> Diag.collector -> string -> located_statement list
(** Parse a whole input, accumulating every lexical and syntax error in
    the collector (resynchronizing on ['.']) instead of raising.
    Returns the statements that did parse, each with its source
    position.  Never raises {!Error}. *)

val program_of_statements :
  ?file:string ->
  Diag.collector ->
  located_statement list ->
  parsed option
(** Assemble parsed statements into a program.  [None] (with a
    diagnostic) if assembly fails — e.g. inconsistent arities not
    caught earlier. *)
