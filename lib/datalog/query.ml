module Tuple = Mdqa_relational.Tuple
module Instance = Mdqa_relational.Instance

type t = {
  name : string;
  head : Term.t list;
  body : Atom.t list;
  cmps : Atom.Cmp.t list;
}

let counter = ref 0

let make ?name ?(cmps = []) ~head body =
  if body = [] then invalid_arg "Query.make: empty body";
  let bv =
    List.fold_left
      (fun acc a -> Term.Var_set.union acc (Atom.vars a))
      Term.Var_set.empty body
  in
  List.iter
    (function
      | Term.Var v when not (Term.Var_set.mem v bv) ->
        invalid_arg
          (Printf.sprintf "Query.make: head variable %s not in body" v)
      | _ -> ())
    head;
  List.iter
    (fun c ->
      Term.Var_set.iter
        (fun v ->
          if not (Term.Var_set.mem v bv) then
            invalid_arg
              (Printf.sprintf "Query.make: comparison variable %s not in body"
                 v))
        (Atom.Cmp.vars c))
    cmps;
  let name =
    match name with
    | Some n -> n
    | None ->
      incr counter;
      Printf.sprintf "q%d" !counter
  in
  { name; head; body; cmps }

let boolean ?name ?cmps body = make ?name ?cmps ~head:[] body

let is_boolean q = q.head = []

let answer_vars q =
  List.fold_left
    (fun acc t ->
      match t with
      | Term.Var v -> Term.Var_set.add v acc
      | Term.Const _ -> acc)
    Term.Var_set.empty q.head

let head_image q s =
  Tuple.of_list
    (List.map
       (fun t ->
         match Subst.walk s t with
         | Term.Const c -> c
         | Term.Var v ->
           invalid_arg
             (Printf.sprintf "Query: unbound head variable %s" v))
       q.head)

let images_of q subs =
  List.fold_left
    (fun acc s -> Tuple.Set.add (head_image q s) acc)
    Tuple.Set.empty subs

let matches ?guard inst q =
  Mdqa_obs.Trace.with_span "eval" ~attrs:[ ("query", q.name) ] @@ fun () ->
  Mdqa_obs.Profile.with_query q.name @@ fun () ->
  Tuple.Set.elements (images_of q (Eval.answers ?guard ~cmps:q.cmps inst q.body))

let certain ?guard inst q =
  List.filter (fun t -> not (Tuple.has_null t)) (matches ?guard inst q)

let holds ?guard inst q = Eval.exists ?guard ~cmps:q.cmps inst q.body

type 'a outcome =
  | Ok of 'a
  | Inconsistent of Chase.failure
  | Degraded of {
      partial : 'a;
      exhaustion : Guard.exhaustion;
      stats : Chase.stats;
    }

let value = function
  | Ok v -> Some v
  | Degraded { partial; _ } -> Some partial
  | Inconsistent _ -> None

(* Chase, then evaluate with [eval] — an evaluation that itself returns
   a (possibly degraded) outcome.  When the chase trips the guard, the
   query is still evaluated over the well-formed partial instance
   (unguarded: the instance is finite and the guard has already
   tripped), so callers always get the answers supported so far. *)
let with_chase ?guard ?chase_variant ?(goal_directed = false) ?max_steps
    ?max_nulls program inst q ~eval =
  let program =
    if goal_directed then
      Program.restrict_to_goals program
        ~goals:(List.map Atom.pred q.body)
    else program
  in
  let result =
    Chase.run ?variant:chase_variant ?guard ?max_steps ?max_nulls program inst
  in
  let stats = result.Chase.stats in
  let eval ?guard i =
    Mdqa_obs.Trace.with_span "eval" ~attrs:[ ("query", q.name) ] @@ fun () ->
    Mdqa_obs.Profile.with_query q.name @@ fun () -> eval ?guard i
  in
  match result.Chase.outcome with
  | Chase.Saturated -> (
    match eval ?guard result.Chase.instance with
    | Guard.Complete v -> Ok v
    | Guard.Degraded (v, e) ->
      Degraded { partial = v; exhaustion = e; stats })
  | Chase.Failed failure -> Inconsistent failure
  | Chase.Out_of_budget e ->
    let partial = Guard.value (eval ?guard:None result.Chase.instance) in
    Degraded { partial; exhaustion = e; stats }

let certain_answers ?guard ?chase_variant ?goal_directed ?max_steps ?max_nulls
    program inst q =
  with_chase ?guard ?chase_variant ?goal_directed ?max_steps ?max_nulls
    program inst q ~eval:(fun ?guard i ->
      Guard.map
        (fun subs ->
          List.filter
            (fun t -> not (Tuple.has_null t))
            (Tuple.Set.elements (images_of q subs)))
        (Eval.answers_guarded ?guard ~cmps:q.cmps i q.body))

let entails ?guard ?chase_variant ?goal_directed ?max_steps ?max_nulls program
    inst q =
  with_chase ?guard ?chase_variant ?goal_directed ?max_steps ?max_nulls
    program inst q ~eval:(fun ?guard i ->
      match Eval.exists ?guard ~cmps:q.cmps i q.body with
      | b -> Guard.Complete b
      | exception Guard.Exhausted e -> Guard.Degraded (false, e))

let pp ppf q =
  Format.fprintf ppf "%s(%a) :- %a" q.name
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Term.pp)
    q.head
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Atom.pp)
    q.body;
  List.iter (fun c -> Format.fprintf ppf ", %a" Atom.Cmp.pp c) q.cmps
