(** The Datalog± chase.

    Starting from an extensional instance, TGDs are fired to generate
    missing data (inventing labeled nulls for existential variables),
    EGDs are enforced by equating values (merging nulls, failing on a
    constant clash), and negative constraints are checked.

    Two variants are provided:

    - {e restricted} (standard) chase: a TGD fires on a body match only
      if no extension of the match already satisfies its head in the
      current instance;
    - {e oblivious} chase: every body match fires exactly once,
      regardless of head satisfaction (kept for the ablation benchmark:
      it invents many more nulls).

    Trigger enumeration is semi-naive by default: after the first
    round, only matches involving a fact derived in the previous round
    are considered.

    For weakly-sticky programs over a fixed dimensional structure the
    chase terminates; resource budgets (steps, nulls, wall-clock
    deadline, memory watermark, cancellation — see {!Guard}) are
    enforced regardless, so a non-terminating rule set or a hostile
    input surfaces as [Out_of_budget] with an exhaustion report and a
    well-formed partial instance, instead of a hang. *)

type variant = Restricted | Oblivious

type failure =
  | Egd_clash of {
      egd : Egd.t;
      left : Mdqa_relational.Value.t;
      right : Mdqa_relational.Value.t;
    }  (** an EGD tried to equate two distinct constants *)
  | Nc_violation of { nc : Nc.t; witness : Subst.t }
      (** a negative constraint has a match *)

type outcome =
  | Saturated  (** fixpoint reached, all constraints satisfied *)
  | Out_of_budget of Guard.exhaustion
      (** a guard resource ran out; the report says which and how much
          was consumed.  The result's instance is the well-formed
          partial chase at the point of the trip. *)
  | Failed of failure

type stats = {
  rounds : int;
  tgd_fires : int;  (** number of TGD applications that added facts *)
  triggers_checked : int;
  nulls_created : int;
  egd_merges : int;
}

type derivation = {
  rule : string;  (** name of the TGD that produced the fact *)
  premises : (string * Mdqa_relational.Tuple.t) list;
      (** the instantiated body facts of the firing *)
}

type result = {
  instance : Mdqa_relational.Instance.t;
      (** the chased instance (meaningful even on failure: the state at
          the point of failure) *)
  outcome : outcome;
  stats : stats;
  provenance : ((string * Mdqa_relational.Tuple.t), derivation) Hashtbl.t option;
      (** when requested: for every fact {e derived} by a TGD firing,
          its first derivation.  Facts absent from the table are
          extensional.  EGD merges remap recorded facts consistently. *)
}

type checkpoint = {
  on_start : Mdqa_relational.Instance.t -> unit;
      (** called once, before the first round, with the fully
          initialized working instance (program facts merged, all
          predicates declared): the durable base image *)
  on_fact : string -> Mdqa_relational.Tuple.t -> unit;
      (** a fact was added ({e after} the instance mutation) *)
  on_merge :
    from_:Mdqa_relational.Value.t -> into:Mdqa_relational.Value.t -> unit;
      (** an EGD merge rewrote every [from_] to [into] *)
  on_round :
    instance:Mdqa_relational.Instance.t ->
    frontier:(string * Mdqa_relational.Tuple.t list) list option ->
    stats ->
    unit;
      (** a round completed; [frontier] is the semi-naive delta for the
          next round, [None] when an EGD merge invalidated it *)
  on_done : instance:Mdqa_relational.Instance.t -> outcome -> stats -> unit;
      (** the run ended (saturated, degraded or failed).  Implementors
          must not raise: exceptions here would mask the outcome. *)
}
(** Durability hooks, called synchronously in mutation order so that a
    listener (the [Mdqa_store] write-ahead journal) always holds a
    prefix of the chase's own mutation sequence.  [on_fact]/[on_merge]
    may raise {!Guard.Exhausted} (e.g. a checkpoint byte budget): the
    run then degrades to [Out_of_budget] like any other trip. *)

val run :
  ?variant:variant ->
  ?semi_naive:bool ->
  ?provenance:bool ->
  ?guard:Guard.t ->
  ?max_steps:int ->
  ?max_nulls:int ->
  ?checkpoint:checkpoint ->
  ?metrics:Mdqa_obs.Metrics.t ->
  Program.t ->
  Mdqa_relational.Instance.t ->
  result
(** [run program instance] chases a {e copy} of [instance] (merged with
    the program's bundled facts); the input is never mutated.
    Defaults: [Restricted], semi-naive on, no provenance.

    Resource governance: when [guard] is given it is consumed for every
    trigger (a step), invented null, and join row, and its deadline /
    memory / cancellation checks run cooperatively — [max_steps] and
    [max_nulls] are then ignored.  Without a guard one is created from
    [max_steps] (default 1_000_000) and [max_nulls] (default 100_000).
    A guard trip never raises out of [run]: it returns the partial
    instance with [Out_of_budget].

    Observability: all chase accounting (rounds, triggers, fires per
    rule, nulls, EGD merges, derived facts) is recorded in [metrics]
    when given — [stats] is derived from the same registry against a
    per-run baseline, so a long-lived shared registry (e.g. the
    server's) accumulates across runs while each result still reports
    its own run.  When a {!Mdqa_obs.Trace} tracer is installed,
    [chase.round], [rule.fire] and [egd.merge] spans are emitted. *)

val resume :
  ?variant:variant ->
  ?semi_naive:bool ->
  ?guard:Guard.t ->
  ?max_steps:int ->
  ?max_nulls:int ->
  ?checkpoint:checkpoint ->
  ?frontier:(string * Mdqa_relational.Tuple.t) list ->
  ?null_base:int ->
  ?prior_stats:stats ->
  ?metrics:Mdqa_obs.Metrics.t ->
  Program.t ->
  Mdqa_relational.Instance.t ->
  result
(** Continue an interrupted chase from a recovered image (see
    [Mdqa_store.Store]): chases a copy of [image] to the same fixpoint
    an uninterrupted run reaches — same facts up to the labels of nulls
    invented after the interruption, same outcome.

    [frontier] (if non-empty) seeds the semi-naive delta so the first
    round only considers triggers involving facts added since the last
    completed round; without it the first round evaluates every rule
    body in full — always sound, just slower.  [null_base] lower-bounds
    fresh null labels so resumed runs never re-issue a label the prior
    run used (even one merged away by an EGD); [prior_stats] are folded
    into the reported statistics.  Provenance does not survive a resume
    (it is not persisted). *)

val extend :
  ?guard:Guard.t ->
  ?max_steps:int ->
  ?max_nulls:int ->
  ?metrics:Mdqa_obs.Metrics.t ->
  Program.t ->
  result ->
  facts:(string * Mdqa_relational.Tuple.t) list ->
  result
(** Incremental chase: add [facts] to an already-saturated chase result
    and continue semi-naive rounds with exactly those facts as the
    initial delta — the work is proportional to the consequences of the
    new facts, not to the whole instance.  The given result's instance
    is not mutated; its provenance table (if any) is carried over and
    extended.  Precondition: [result] was produced by {!run} on the
    same program and is [Saturated] (otherwise the outcome of a full
    {!run} is returned instead). *)

val pp_outcome : Format.formatter -> outcome -> unit
