module Smap = Map.Make (String)

type checked = {
  parsed : Parser.parsed option;
  diags : Diag.t list;
}

let statement_atoms = function
  | Parser.Raw.S_fact f -> [ f ]
  | Parser.Raw.S_tgd t -> t.Tgd.body @ t.Tgd.head
  | Parser.Raw.S_egd e -> e.Egd.body
  | Parser.Raw.S_nc n -> n.Nc.body
  | Parser.Raw.S_query q -> q.Query.body

(* Arity consistency across every atom of the input, reported per
   clashing statement — unlike [Program.make], which aborts on the
   first inconsistency with no location. *)
let check_arities ?file diags statements =
  ignore
    (List.fold_left
       (fun seen { Parser.stmt; pos } ->
         List.fold_left
           (fun seen a ->
             let p = Atom.pred a and k = Atom.arity a in
             match Smap.find_opt p seen with
             | None -> Smap.add p (k, pos) seen
             | Some (k', first) ->
               if k <> k' then
                 Diag.errorf diags ?file ~line:pos.Lexer.line
                   ~col:pos.Lexer.col ~code:"E011"
                   "predicate %s used with arity %d here but arity %d at \
                    line %d"
                   p k k' first.Lexer.line;
               seen)
           seen (statement_atoms stmt))
       Smap.empty statements)

(* A body/query predicate with no facts and no defining rule has a
   forever-empty extension: legal, but almost always a typo. *)
let check_undefined ?file diags statements =
  let defined =
    List.fold_left
      (fun s { Parser.stmt; _ } ->
        match stmt with
        | Parser.Raw.S_fact f -> Smap.add (Atom.pred f) () s
        | Parser.Raw.S_tgd t ->
          List.fold_left
            (fun s a -> Smap.add (Atom.pred a) () s)
            s t.Tgd.head
        | _ -> s)
      Smap.empty statements
  in
  List.iter
    (fun { Parser.stmt; pos } ->
      let used =
        match stmt with
        | Parser.Raw.S_fact _ -> []
        | Parser.Raw.S_tgd t -> t.Tgd.body
        | Parser.Raw.S_egd e -> e.Egd.body
        | Parser.Raw.S_nc n -> n.Nc.body
        | Parser.Raw.S_query q -> q.Query.body
      in
      List.iter
        (fun a ->
          let p = Atom.pred a in
          if not (Smap.mem p defined) then
            Diag.warningf diags ?file ~line:pos.Lexer.line
              ~col:pos.Lexer.col ~code:"W040"
              "predicate %s has no facts and no defining rule (its \
               extension is always empty)"
              p)
        used)
    statements

let check_certificate ?file diags statements (program : Program.t) =
  if program.Program.tgds <> [] then begin
    let cert = Stickiness.certify program in
    let pos_of_rule name =
      List.find_map
        (fun { Parser.stmt; pos } ->
          match stmt with
          | Parser.Raw.S_tgd t when String.equal t.Tgd.name name -> Some pos
          | _ -> None)
        statements
    in
    if not cert.Stickiness.weakly_sticky then
      List.iter
        (fun ((tgd : Tgd.t), var) ->
          let pos = pos_of_rule tgd.Tgd.name in
          Diag.warningf diags ?file
            ?line:(Option.map (fun p -> p.Lexer.line) pos)
            ?col:(Option.map (fun p -> p.Lexer.col) pos)
            ~code:"W041"
            "rule %s breaks weak stickiness: marked variable %s repeats \
             in the body with no finite-rank occurrence"
            tgd.Tgd.name var)
        cert.Stickiness.violations;
    Diag.hintf diags ?file ~line:1 ~code:"H050" "%s"
      (Format.asprintf "justified QA path: %a" Stickiness.pp_qa_path
         cert.Stickiness.path)
  end

let check_statements ?file diags statements =
  check_arities ?file diags statements;
  check_undefined ?file diags statements

let check_string ?file input =
  Mdqa_obs.Trace.with_span "validate" @@ fun () ->
  let diags = Diag.collector ?file () in
  let statements = Parser.parse_statements ?file diags input in
  check_statements ?file diags statements;
  let parsed =
    if Diag.has_errors diags then None
    else Parser.program_of_statements ?file diags statements
  in
  (match parsed with
   | Some { Parser.program; _ } ->
     check_certificate ?file diags statements program
   | None -> ());
  { parsed; diags = Diag.to_list diags }

let check_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      check_string ~file:path (really_input_string ic n))
