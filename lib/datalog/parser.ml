module Value = Mdqa_relational.Value

type parsed = {
  program : Program.t;
  queries : Query.t list;
}

exception
  Error of { line : int; col : int; code : string; message : string }

type state = {
  mutable toks : (Lexer.token * Lexer.pos) list;
  mutable last_pos : Lexer.pos;
}

let fail_at ?(code = "E002") (pos : Lexer.pos) message =
  raise (Error { line = pos.Lexer.line; col = pos.Lexer.col; code; message })

let peek st =
  match st.toks with
  | (t, pos) :: _ -> (t, pos)
  | [] -> (Lexer.EOF, st.last_pos)

let advance st =
  match st.toks with
  | (_, pos) :: rest ->
    st.last_pos <- pos;
    st.toks <- rest
  | [] -> ()

let expect st tok what =
  let t, pos = peek st in
  if t = tok then advance st
  else
    fail_at pos
      (Printf.sprintf "expected %s but found %s" what
         (Lexer.token_to_string t))

(* term := VAR | IDENT | STRING | INT | FLOAT *)
let parse_term st =
  let t, pos = peek st in
  match t with
  | Lexer.VAR v ->
    advance st;
    Term.Var v
  | Lexer.IDENT s ->
    advance st;
    Term.Const (Value.sym s)
  | Lexer.STRING s ->
    advance st;
    Term.Const (Value.sym s)
  | Lexer.INT i ->
    advance st;
    Term.Const (Value.int i)
  | Lexer.FLOAT f ->
    advance st;
    Term.Const (Value.real f)
  | other ->
    fail_at pos
      (Printf.sprintf "expected a term but found %s"
         (Lexer.token_to_string other))

let parse_term_list st =
  let rec go acc =
    let t = parse_term st in
    match peek st with
    | Lexer.COMMA, _ ->
      advance st;
      go (t :: acc)
    | _ -> List.rev (t :: acc)
  in
  go []

(* atom := IDENT '(' terms ')' *)
let parse_atom st =
  let t, pos = peek st in
  match t with
  | Lexer.IDENT pred ->
    advance st;
    expect st Lexer.LPAREN "'('";
    let args =
      match peek st with
      | Lexer.RPAREN, _ -> []
      | _ -> parse_term_list st
    in
    expect st Lexer.RPAREN "')'";
    Atom.make pred args
  | other ->
    fail_at pos
      (Printf.sprintf "expected a predicate but found %s"
         (Lexer.token_to_string other))

let cmp_op_of_token = function
  | Lexer.EQ -> Some Atom.Cmp.Eq
  | Lexer.NEQ -> Some Atom.Cmp.Neq
  | Lexer.LT -> Some Atom.Cmp.Lt
  | Lexer.LE -> Some Atom.Cmp.Le
  | Lexer.GT -> Some Atom.Cmp.Gt
  | Lexer.GE -> Some Atom.Cmp.Ge
  | _ -> None

(* literal := atom | term op term *)
let parse_literal st =
  let t, _ = peek st in
  match t with
  | Lexer.IDENT _ -> (
    (* could still be a comparison whose lhs is a symbol constant:
       look ahead past the identifier *)
    match st.toks with
    | (Lexer.IDENT _, _) :: (Lexer.LPAREN, _) :: _ -> `Atom (parse_atom st)
    | _ ->
      let lhs = parse_term st in
      let op_tok, pos = peek st in
      (match cmp_op_of_token op_tok with
       | Some op ->
         advance st;
         let rhs = parse_term st in
         `Cmp (Atom.Cmp.make op lhs rhs)
       | None ->
         fail_at pos
           (Printf.sprintf "expected a comparison operator, found %s"
              (Lexer.token_to_string op_tok))))
  | _ ->
    let lhs = parse_term st in
    let op_tok, pos = peek st in
    (match cmp_op_of_token op_tok with
     | Some op ->
       advance st;
       let rhs = parse_term st in
       `Cmp (Atom.Cmp.make op lhs rhs)
     | None ->
       fail_at pos
         (Printf.sprintf "expected a comparison operator, found %s"
            (Lexer.token_to_string op_tok)))

let parse_body st =
  let rec go atoms cmps =
    (match parse_literal st with
     | `Atom a -> go_next (a :: atoms) cmps
     | `Cmp c -> go_next atoms (c :: cmps))
  and go_next atoms cmps =
    match peek st with
    | Lexer.COMMA, _ ->
      advance st;
      go atoms cmps
    | _ -> (List.rev atoms, List.rev cmps)
  in
  go [] []

type statement =
  | S_fact of Atom.t
  | S_tgd of Tgd.t
  | S_egd of Egd.t
  | S_nc of Nc.t
  | S_query of Query.t

(* Construction-time failures (non-ground facts, unsafe queries, empty
   bodies) are statement-level semantic errors: code E003, located at
   the statement's first token. *)
let wrap_invalid pos f =
  try f () with Invalid_argument m -> fail_at ~code:"E003" pos m

(* Parsed rules are named after their head predicate (for readable
   diagnostics and provenance), suffixed for uniqueness. *)
let rule_counter = ref 0

let rule_name head =
  incr rule_counter;
  match head with
  | a :: _ -> Printf.sprintf "%s/%d" (Atom.pred a) !rule_counter
  | [] -> Printf.sprintf "rule/%d" !rule_counter

(* statement :=
   | '!' ':-' body '.'
   | '?' [atom] ':-' body '.'  |  '?' atom-with-head-vars ':-' body '.'
   | VAR '=' term ':-' body '.'
   | atoms '.'                        (fact, single ground atom)
   | atoms ':-' body '.'              (TGD, multi-atom head) *)
let parse_statement st =
  let t, pos = peek st in
  match t with
  | Lexer.BANG ->
    advance st;
    expect st Lexer.TURNSTILE "':-'";
    let atoms, cmps = parse_body st in
    expect st Lexer.PERIOD "'.'";
    if atoms = [] then
      fail_at ~code:"E003" pos "constraint body needs at least one atom";
    wrap_invalid pos (fun () -> S_nc (Nc.make ~cmps atoms))
  | Lexer.QMARK ->
    advance st;
    let name, head =
      match peek st with
      | Lexer.TURNSTILE, _ -> (None, [])
      | Lexer.IDENT _, _ ->
        let a = parse_atom st in
        (Some (Atom.pred a), Atom.args a)
      | other, p ->
        fail_at p
          (Printf.sprintf "expected query head or ':-', found %s"
             (Lexer.token_to_string other))
    in
    expect st Lexer.TURNSTILE "':-'";
    let atoms, cmps = parse_body st in
    expect st Lexer.PERIOD "'.'";
    if atoms = [] then
      fail_at ~code:"E003" pos "query body needs at least one atom";
    wrap_invalid pos (fun () -> S_query (Query.make ?name ~cmps ~head atoms))
  | Lexer.VAR v ->
    advance st;
    expect st Lexer.EQ "'='";
    let rhs = parse_term st in
    expect st Lexer.TURNSTILE "':-'";
    let atoms, cmps = parse_body st in
    expect st Lexer.PERIOD "'.'";
    if cmps <> [] then
      fail_at ~code:"E003" pos "EGD bodies cannot contain comparisons";
    wrap_invalid pos (fun () -> S_egd (Egd.make ~body:atoms (Term.Var v) rhs))
  | Lexer.IDENT _ -> (
    let first = parse_atom st in
    let rec more acc =
      match peek st with
      | Lexer.COMMA, _ ->
        advance st;
        more (parse_atom st :: acc)
      | _ -> List.rev acc
    in
    let head = first :: more [] in
    match peek st with
    | Lexer.PERIOD, _ ->
      advance st;
      (match head with
       | [ a ] when Atom.is_ground a -> S_fact a
       | [ _ ] -> fail_at ~code:"E003" pos "facts must be ground"
       | _ -> fail_at ~code:"E003" pos "a fact is a single ground atom")
    | Lexer.TURNSTILE, _ ->
      advance st;
      let atoms, cmps = parse_body st in
      expect st Lexer.PERIOD "'.'";
      if cmps <> [] then
        fail_at ~code:"E003" pos "TGD bodies cannot contain comparisons";
      if atoms = [] then
        fail_at ~code:"E003" pos "TGD body needs at least one atom";
      wrap_invalid pos (fun () ->
          S_tgd (Tgd.make ~name:(rule_name head) ~body:atoms ~head ()))
    | other, p ->
      fail_at p
        (Printf.sprintf "expected '.' or ':-', found %s"
           (Lexer.token_to_string other)))
  | other ->
    fail_at pos
      (Printf.sprintf "expected a statement but found %s"
         (Lexer.token_to_string other))

(* Resynchronization point for error recovery: consume tokens up to
   and including the next '.', but stop (without consuming) at '}' or
   EOF so enclosing parsers — e.g. a dimension body — can close. *)
let recover st =
  let rec go () =
    match peek st with
    | Lexer.EOF, _ | Lexer.RBRACE, _ -> ()
    | Lexer.PERIOD, _ -> advance st
    | _ ->
      advance st;
      go ()
  in
  go ()

module Raw = struct
  type nonrec state = state

  let init ?diags input =
    let toks =
      match diags with
      | Some c -> Lexer.tokens_pos ~diags:c input
      | None -> (
        try Lexer.tokens_pos input
        with Lexer.Error { line; col; message } ->
          raise (Error { line; col; code = "E001"; message }))
    in
    { toks; last_pos = { Lexer.line = 1; col = 1 } }

  let at_eof st = match peek st with Lexer.EOF, _ -> true | _ -> false
  let peek = peek

  let peek2 st =
    match st.toks with _ :: (t, _) :: _ -> t | _ -> Lexer.EOF

  let pos st = snd (peek st)
  let advance = advance
  let expect = expect
  let recover = recover
  let error st message = fail_at (pos st) message

  type nonrec statement = statement =
    | S_fact of Atom.t
    | S_tgd of Tgd.t
    | S_egd of Egd.t
    | S_nc of Nc.t
    | S_query of Query.t

  let statement = parse_statement
end

type located_statement = { stmt : statement; pos : Lexer.pos }

(* Recovery-mode parse: every syntax error becomes a diagnostic and
   parsing resumes at the next '.', so a single pass reports them all.
   Lexical errors were already collected by {!Raw.init}. *)
let parse_statements ?file diags input =
  let st = Raw.init ~diags input in
  let out = ref [] in
  let rec go () =
    if not (Raw.at_eof st) then begin
      let start = Raw.pos st in
      (match parse_statement st with
       | s -> out := { stmt = s; pos = start } :: !out
       | exception Error { line; col; code; message } ->
         Diag.error diags ?file ~line ~col ~code message;
         (* if no token was consumed (e.g. a stray '}'), drop one so
            recovery always makes progress *)
         if Raw.pos st = start then Raw.advance st;
         (* statement-level semantic errors (E003) are raised after
            the whole statement was consumed, '.' included — resyncing
            would swallow the next statement *)
         if code <> "E003" then recover st);
      go ()
    end
  in
  go ();
  List.rev !out

let program_of_statements ?file diags statements =
  let facts = ref [] and tgds = ref [] and egds = ref [] in
  let ncs = ref [] and queries = ref [] in
  List.iter
    (fun { stmt; _ } ->
      match stmt with
      | S_fact f -> facts := f :: !facts
      | S_tgd t -> tgds := t :: !tgds
      | S_egd e -> egds := e :: !egds
      | S_nc n -> ncs := n :: !ncs
      | S_query q -> queries := q :: !queries)
    statements;
  match
    Program.make ~tgds:(List.rev !tgds) ~egds:(List.rev !egds)
      ~ncs:(List.rev !ncs) ~facts:(List.rev !facts) ()
  with
  | p -> Some { program = p; queries = List.rev !queries }
  | exception Invalid_argument m ->
    (* normally pre-empted by per-statement arity checks; a safety net
       so assembly failures still surface as located diagnostics *)
    Diag.error diags ?file ~line:1 ~code:"E003" m;
    None

let parse_string input =
  Mdqa_obs.Trace.with_span "parse" @@ fun () ->
  let st = Raw.init input in
  let rec go facts tgds egds ncs queries =
    match peek st with
    | Lexer.EOF, pos -> (
      let mk () =
        Program.make ~tgds:(List.rev tgds) ~egds:(List.rev egds)
          ~ncs:(List.rev ncs) ~facts:(List.rev facts) ()
      in
      match mk () with
      | p -> { program = p; queries = List.rev queries }
      | exception Invalid_argument m -> fail_at ~code:"E003" pos m)
    | _ -> (
      match parse_statement st with
      | S_fact f -> go (f :: facts) tgds egds ncs queries
      | S_tgd t -> go facts (t :: tgds) egds ncs queries
      | S_egd e -> go facts tgds (e :: egds) ncs queries
      | S_nc n -> go facts tgds egds (n :: ncs) queries
      | S_query q -> go facts tgds egds ncs (q :: queries))
  in
  go [] [] [] [] []

let parse_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      parse_string (really_input_string ic n))

let parse_query input =
  let input = String.trim input in
  let input =
    if String.length input > 0 && input.[0] = '?' then input
    else "?" ^ input
  in
  let input =
    if String.length input > 0 && input.[String.length input - 1] = '.' then
      input
    else input ^ "."
  in
  match parse_string input with
  | { queries = [ q ]; program }
    when program.Program.tgds = [] && program.Program.facts = [] ->
    q
  | _ ->
    raise
      (Error
         { line = 1; col = 0; code = "E002";
           message = "expected exactly one query" })
