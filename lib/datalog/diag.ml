type severity = Error | Warning | Hint

type span = { file : string option; line : int; col : int }

type t = {
  code : string;
  severity : severity;
  span : span;
  message : string;
}

let registry =
  [ ("E001", "lexical-error");
    ("E002", "syntax-error");
    ("E003", "invalid-statement");
    ("E010", "duplicate-declaration");
    ("E011", "arity-mismatch");
    ("E012", "unknown-predicate");
    ("E013", "undeclared-fact-predicate");
    ("E014", "invalid-dimension");
    ("E015", "unknown-category");
    ("E016", "duplicate-member");
    ("E017", "invalid-link");
    ("E018", "invalid-relation");
    ("E019", "invalid-rule");
    ("E020", "non-dimensional-constraint");
    ("E021", "dangling-wiring");
    ("E022", "csv-error");
    ("E023", "store-corrupt");
    ("E024", "invalid-request");
    ("E025", "oversized-request");
    ("E026", "request-timeout");
    ("E027", "request-crashed");
    ("E028", "repair-failed");
    ("E029", "worker-crashed");
    ("E030", "replication-divergence");
    ("E031", "replication-refused");
    ("E032", "unrepairable-store");
    ("W040", "undefined-predicate");
    ("W041", "not-weakly-sticky");
    ("W042", "quality-version-undefined");
    ("W043", "non-strict-hierarchy");
    ("W044", "non-homogeneous-hierarchy");
    ("W045", "referential-violation");
    ("W046", "store-truncated");
    ("W047", "overload-shed");
    ("W048", "breaker-open");
    ("W049", "watchdog-kill");
    ("W050", "stale-read");
    ("W051", "salvaged-from-generation");
    ("W052", "journal-records-dropped");
    ("H050", "qa-path");
    ("H051", "unused-map-target");
    ("H052", "stale-checkpoint-temp");
    ("H053", "server-drain");
    ("H054", "workers-unavailable");
    ("H055", "promoted");
    ("H056", "quarantined-file") ]

let describe code = List.assoc_opt code registry
let codes = registry

let make ?file ?(line = 1) ?(col = 0) severity ~code message =
  let line = max 1 line and col = max 0 col in
  { code; severity; span = { file; line; col }; message }

let severity_rank = function Error -> 0 | Warning -> 1 | Hint -> 2

let compare a b =
  let c = Option.compare String.compare a.span.file b.span.file in
  if c <> 0 then c
  else
    let c = Int.compare a.span.line b.span.line in
    if c <> 0 then c
    else
      let c = Int.compare a.span.col b.span.col in
      if c <> 0 then c
      else
        let c =
          Int.compare (severity_rank a.severity) (severity_rank b.severity)
        in
        if c <> 0 then c
        else
          let c = String.compare a.code b.code in
          if c <> 0 then c else String.compare a.message b.message

type collector = { default_file : string option; mutable rev : t list }

let collector ?file () = { default_file = file; rev = [] }
let add c d = c.rev <- d :: c.rev

let add_sev c severity ?file ?line ?col ~code message =
  let file = match file with Some _ as f -> f | None -> c.default_file in
  add c (make ?file ?line ?col severity ~code message)

let error c ?file ?line ?col ~code message =
  add_sev c Error ?file ?line ?col ~code message

let warning c ?file ?line ?col ~code message =
  add_sev c Warning ?file ?line ?col ~code message

let hint c ?file ?line ?col ~code message =
  add_sev c Hint ?file ?line ?col ~code message

let errorf c ?file ?line ?col ~code fmt =
  Printf.ksprintf (error c ?file ?line ?col ~code) fmt

let warningf c ?file ?line ?col ~code fmt =
  Printf.ksprintf (warning c ?file ?line ?col ~code) fmt

let hintf c ?file ?line ?col ~code fmt =
  Printf.ksprintf (hint c ?file ?line ?col ~code) fmt

let to_list c = List.sort_uniq compare (List.rev c.rev)

let count sev c =
  List.length (List.filter (fun d -> d.severity = sev) (to_list c))

let error_count = count Error
let warning_count = count Warning
let has_errors c = List.exists (fun d -> d.severity = Error) c.rev

let exit_code ds =
  if List.exists (fun d -> d.severity = Error) ds then 1
  else if List.exists (fun d -> d.severity = Warning) ds then 2
  else 0

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Hint -> "hint"

let pp ppf d =
  (match d.span.file with
   | Some f -> Format.fprintf ppf "%s:" f
   | None -> ());
  Format.fprintf ppf "%d:" d.span.line;
  if d.span.col > 0 then Format.fprintf ppf "%d:" d.span.col;
  Format.fprintf ppf " %s %s" (severity_to_string d.severity) d.code;
  (match describe d.code with
   | Some m -> Format.fprintf ppf " (%s)" m
   | None -> ());
  Format.fprintf ppf ": %s" d.message

let pp_summary ppf ds =
  let n sev = List.length (List.filter (fun d -> d.severity = sev) ds) in
  let plural k = if k = 1 then "" else "s" in
  let e = n Error and w = n Warning and h = n Hint in
  if e = 0 && w = 0 && h = 0 then Format.fprintf ppf "no diagnostics"
  else begin
    let parts =
      List.filter_map
        (fun (k, what) ->
          if k = 0 then None
          else Some (Printf.sprintf "%d %s%s" k what (plural k)))
        [ (e, "error"); (w, "warning"); (h, "hint") ]
    in
    Format.fprintf ppf "%s" (String.concat ", " parts)
  end

(* Minimal JSON emission — no external dependency. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json ?file ds =
  let buf = Buffer.create 512 in
  let n sev = List.length (List.filter (fun d -> d.severity = sev) ds) in
  Buffer.add_char buf '{';
  (match file with
   | Some f -> Buffer.add_string buf (Printf.sprintf "\"file\":\"%s\"," (json_escape f))
   | None -> ());
  Buffer.add_string buf
    (Printf.sprintf "\"errors\":%d,\"warnings\":%d,\"hints\":%d,"
       (n Error) (n Warning) (n Hint));
  Buffer.add_string buf "\"diagnostics\":[";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '{';
      Buffer.add_string buf
        (Printf.sprintf "\"severity\":\"%s\",\"code\":\"%s\","
           (severity_to_string d.severity) (json_escape d.code));
      (match describe d.code with
       | Some m ->
         Buffer.add_string buf
           (Printf.sprintf "\"mnemonic\":\"%s\"," (json_escape m))
       | None -> ());
      (match d.span.file with
       | Some f ->
         Buffer.add_string buf
           (Printf.sprintf "\"file\":\"%s\"," (json_escape f))
       | None -> ());
      Buffer.add_string buf
        (Printf.sprintf "\"line\":%d,\"col\":%d,\"message\":\"%s\"}"
           d.span.line d.span.col (json_escape d.message)))
    ds;
  Buffer.add_string buf "]}";
  Buffer.contents buf
