type token =
  | IDENT of string
  | VAR of string
  | STRING of string
  | INT of int
  | FLOAT of float
  | LPAREN
  | RPAREN
  | COMMA
  | PERIOD
  | TURNSTILE
  | BANG
  | QMARK
  | LBRACE
  | RBRACE
  | ARROW
  | COLON
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | EOF

type pos = { line : int; col : int }

exception Error of { line : int; col : int; message : string }

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

(* Identifier continuation characters; '.' is handled separately so a
   trailing period terminates the clause instead of gluing on. *)
let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '/' || c = ':'

let is_digit c = c >= '0' && c <= '9'

(* The workhorse.  With [diags], lexical errors are recorded in the
   collector and skipped (the offending character is dropped, an
   unterminated string yields its partial contents), so one pass
   reports every lexical problem.  Without it, the first problem
   raises {!Error} — the historical behaviour. *)
let tokens_pos ?diags input =
  let n = String.length input in
  let line = ref 1 in
  let line_start = ref 0 in
  let col_of i = i - !line_start + 1 in
  let fail i message =
    match diags with
    | Some c ->
      Diag.error c ~line:!line ~col:(col_of i) ~code:"E001" message
    | None -> raise (Error { line = !line; col = col_of i; message })
  in
  let out = ref [] in
  let emit_at i t = out := (t, { line = !line; col = col_of i }) :: !out in
  let i = ref 0 in
  while !i < n do
    let c = input.[!i] in
    if c = '\n' then begin
      incr line;
      incr i;
      line_start := !i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '%' || c = '#' then begin
      while !i < n && input.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '(' then (emit_at !i LPAREN; incr i)
    else if c = ')' then (emit_at !i RPAREN; incr i)
    else if c = ',' then (emit_at !i COMMA; incr i)
    else if c = '!' then
      if !i + 1 < n && input.[!i + 1] = '=' then (emit_at !i NEQ; i := !i + 2)
      else (emit_at !i BANG; incr i)
    else if c = '?' then (emit_at !i QMARK; incr i)
    else if c = '=' then (emit_at !i EQ; incr i)
    else if c = '<' then
      if !i + 1 < n && input.[!i + 1] = '=' then (emit_at !i LE; i := !i + 2)
      else (emit_at !i LT; incr i)
    else if c = '>' then
      if !i + 1 < n && input.[!i + 1] = '=' then (emit_at !i GE; i := !i + 2)
      else (emit_at !i GT; incr i)
    else if c = ':' then
      if !i + 1 < n && input.[!i + 1] = '-' then
        (emit_at !i TURNSTILE; i := !i + 2)
      else (emit_at !i COLON; incr i)
    else if c = '{' then (emit_at !i LBRACE; incr i)
    else if c = '}' then (emit_at !i RBRACE; incr i)
    else if c = '-' && !i + 1 < n && input.[!i + 1] = '>' then
      (emit_at !i ARROW; i := !i + 2)
    else if c = '"' then begin
      let start = !i in
      let buf = Buffer.create 16 in
      let j = ref (!i + 1) in
      let closed = ref false in
      while (not !closed) && !j < n do
        if input.[!j] = '"' then
          if !j + 1 < n && input.[!j + 1] = '"' then begin
            Buffer.add_char buf '"';
            j := !j + 2
          end
          else begin
            closed := true;
            incr j
          end
        else begin
          Buffer.add_char buf input.[!j];
          incr j
        end
      done;
      if not !closed then fail start "unterminated string";
      emit_at start (STRING (Buffer.contents buf));
      i := !j
    end
    else if is_digit c || (c = '-' && !i + 1 < n && is_digit input.[!i + 1])
    then begin
      let j = ref !i in
      if input.[!j] = '-' then incr j;
      while !j < n && is_digit input.[!j] do
        incr j
      done;
      let is_float =
        !j + 1 < n && input.[!j] = '.' && is_digit input.[!j + 1]
      in
      if is_float then begin
        incr j;
        while !j < n && is_digit input.[!j] do
          incr j
        done
      end;
      let text = String.sub input !i (!j - !i) in
      if is_float then emit_at !i (FLOAT (float_of_string text))
      else emit_at !i (INT (int_of_string text));
      i := !j
    end
    else if is_ident_start c then begin
      let j = ref !i in
      while
        !j < n
        && (is_ident_char input.[!j]
           (* a '.' inside an identifier is kept only when followed by
              another identifier character (e.g. "v1.2"); a '.' at the
              end of a word is the clause terminator *)
           || (input.[!j] = '.' && !j + 1 < n && is_ident_char input.[!j + 1])
           )
      do
        incr j
      done;
      let text = String.sub input !i (!j - !i) in
      (match text.[0] with
       | 'A' .. 'Z' | '_' -> emit_at !i (VAR text)
       | _ -> emit_at !i (IDENT text));
      i := !j
    end
    else if c = '.' then (emit_at !i PERIOD; incr i)
    else begin
      fail !i (Printf.sprintf "unexpected character %C" c);
      incr i  (* recovery path only: skip the offending character *)
    end
  done;
  emit_at (max 0 (n - 1)) EOF;
  List.rev !out

let tokens input =
  List.map (fun (t, p) -> (t, p.line)) (tokens_pos input)

let token_to_string = function
  | IDENT s -> s
  | VAR s -> s
  | STRING s -> Printf.sprintf "%S" s
  | INT i -> string_of_int i
  | FLOAT f -> string_of_float f
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | PERIOD -> "."
  | TURNSTILE -> ":-"
  | BANG -> "!"
  | QMARK -> "?"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | ARROW -> "->"
  | COLON -> ":"
  | EQ -> "="
  | NEQ -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EOF -> "<eof>"
