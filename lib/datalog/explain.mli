(** Derivation trees: why is a fact in the chased instance?

    Built from the provenance recorded by
    [Chase.run ~provenance:true ...].  In a quality-assessment context
    this answers "why was this measurement deemed up to quality": the
    tree bottoms out in extensional facts (the recorded data, the
    dimension structure) and each internal node names the dimensional
    or contextual rule that fired. *)

type tree = {
  fact : string * Mdqa_relational.Tuple.t;
  rule : string option;
      (** [None] for extensional facts, [Some rule_name] otherwise *)
  premises : tree list;
}

val why :
  Chase.result -> string -> Mdqa_relational.Tuple.t -> (tree, string) result
(** [why result pred tuple] reconstructs the derivation of the fact.
    [Error] if the chase was run without provenance or the fact is not
    in the chased instance. *)

val depth : tree -> int
(** Longest rule chain in the tree (an extensional fact has depth 0). *)

val rules_used : tree -> string list
(** Rule names appearing in the tree, deduplicated, sorted. *)

val extensional_support : tree -> (string * Mdqa_relational.Tuple.t) list
(** The extensional leaves the fact ultimately rests on (deduplicated,
    sorted). *)

(** {1 Cost explanation}

    The same vocabulary pointed at cost instead of derivation: where
    [why] explains why a fact holds, [cost] explains where evaluation
    time and join work went, per rule and per body atom, from a
    {!Mdqa_obs.Profile} snapshot. *)

type atom_cost = {
  atom : Atom.t;
  atom_idx : int;  (** source position in the rule body *)
  scanned : int;  (** candidate tuples iterated at this atom *)
  matched : int;  (** substitutions surviving unification here *)
}

type rule_cost = {
  rule_name : string;
  fires : int;
  triggers : int;
  matches : int;
  seconds : float;
  body : atom_cost list;  (** in body order *)
}

val cost : Mdqa_obs.Profile.snapshot -> Tgd.t list -> rule_cost list
(** One {!rule_cost} per TGD (zeroed when the profiler never saw the
    rule), hottest first. *)

val atom_selectivity : atom_cost -> float
(** [matched / scanned] ([0.] when nothing was scanned). *)

val pp_rule_cost : Format.formatter -> rule_cost -> unit
val pp_cost : Format.formatter -> rule_cost list -> unit
(** EXPLAIN-style plan view:
    {v
    rule7_patient_unit  fires=12 triggers=40 matches=40 time=0.000412s
      [0] PatientUnit(p, u)  scanned=120 matched=40 selectivity=0.333
      ...
    v} *)

val pp : Format.formatter -> tree -> unit
(** Indented rendering:
    {v
    measurements_q(Sep/5-12:10, Tom Waits, 38.2)   [measurements_q]
      measurements_ext(...)                        [measurements_ext]
        measurements_c(...)                        (extensional)
        ...
    v} *)
